// Package e2e holds the multi-process cluster test: real gcroot/gcworker OS
// processes wired by a roster file, a SIGKILLed root, a promoted standby, and
// a bit-identity assertion against an uninterrupted in-process run.
//
// The test is expensive (it builds binaries and spawns seven processes), so
// it only runs when HETGC_E2E_PROCS=1 — `make e2e-procs` is the entry point.
// Set HETGC_E2E_ARTIFACTS to a directory to keep every process log and the
// /debug/events journal tails (CI uploads them on failure).
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/fleet"
	"github.com/hetgc/hetgc/internal/node"
	"github.com/hetgc/hetgc/internal/obs"
)

const (
	k         = 8
	s         = 0
	seed      = 5
	iters     = 30
	workers   = 4
	killAfter = 10 // durable iteration after which the root is SIGKILLed
)

// TestProcClusterFailover is the acceptance test of the multi-machine
// deployment: one root, one standby and four workers as separate OS
// processes, shards fetched over the wire, the root killed cold
// mid-training — and the standby's final parameters bit-identical to an
// uninterrupted single-process run of the same configuration.
func TestProcClusterFailover(t *testing.T) {
	if os.Getenv("HETGC_E2E_PROCS") == "" {
		t.Skip("set HETGC_E2E_PROCS=1 (or run `make e2e-procs`) to run the multi-process e2e")
	}

	bin := buildBinaries(t)
	artifacts := artifactDir(t)
	ckpt := t.TempDir()

	rootAddr, standbyAddr := freeAddr(t), freeAddr(t)
	rootMetrics, standbyMetrics := freeAddr(t), freeAddr(t)
	workerMetrics := freeAddr(t)
	roster := filepath.Join(t.TempDir(), "cluster.toml")
	rosterBody := fmt.Sprintf("root = %q\nstandbys = [%q]\nworkers = %d\nmetrics = [%q, %q, %q]\n",
		rootAddr, standbyAddr, workers, rootMetrics, standbyMetrics, workerMetrics)
	if err := os.WriteFile(roster, []byte(rosterBody), 0o644); err != nil {
		t.Fatal(err)
	}

	sharedFlags := []string{
		"-roster", roster,
		"-k", strconv.Itoa(k), "-s", strconv.Itoa(s),
		"-iters", strconv.Itoa(iters), "-seed", strconv.Itoa(seed),
		"-pin-estimates",
		"-checkpoint-dir", ckpt, "-snapshot-every", "4",
		"-lease-ttl", "1s", "-iter-timeout", "20s", "-wait", "60s",
	}
	root := spawn(t, artifacts, "root", bin["gcroot"],
		append(sharedFlags, "-metrics-addr", rootMetrics)...)
	standby := spawn(t, artifacts, "standby", bin["gcroot"],
		append(sharedFlags, "-role", "standby", "-listen", standbyAddr, "-metrics-addr", standbyMetrics)...)
	for i := 0; i < workers; i++ {
		args := []string{
			"-roster", roster,
			"-k", strconv.Itoa(k), "-seed", strconv.Itoa(seed),
			"-slow-ms", "75",
			"-checkpoint-dir", ckpt,
			"-dial-timeout", "2s",
		}
		if i == 0 { // one worker joins the scrapeable fleet
			args = append(args, "-metrics-addr", workerMetrics)
		}
		spawn(t, artifacts, fmt.Sprintf("worker-%d", i), bin["gcworker"], args...)
	}
	defer func() {
		if t.Failed() {
			dumpEvents(t, artifacts, "root", rootMetrics)
			dumpEvents(t, artifacts, "standby", standbyMetrics)
		}
	}()

	// Kill the root cold — no shutdown handshake — once iteration killAfter
	// is durable in the shared checkpoint directory.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st, err := checkpoint.Recover(ckpt); err == nil && st.LastIter >= killAfter {
			break
		}
		if root.done() {
			t.Fatalf("root exited before the kill window (wanted to kill it after iteration %d):\n%s", killAfter, root.output())
		}
		if time.Now().After(deadline) {
			t.Fatalf("root never reached durable iteration %d:\n%s", killAfter, root.output())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := root.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL root: %v", err)
	}
	t.Logf("root killed after durable iteration %d", killAfter)

	// While the standby takes over and finishes the run, the fleet
	// aggregator must tell the failover as one merged, node-attributed
	// story — and the promoted root's /debug/trace must serve stitched
	// per-worker phase spans.
	assertGcctlSeesFailover(t, artifacts, bin["gcctl"], roster, ckpt, standbyMetrics)
	assertStitchedTraces(t, standbyMetrics)

	if err := standby.wait(120 * time.Second); err != nil {
		t.Fatalf("standby did not finish the run: %v\n%s", err, standby.output())
	}

	out := standby.output()
	resumed := regexp.MustCompile(`promoted — resumed at iteration (\d+)`).FindStringSubmatch(out)
	if resumed == nil {
		t.Fatalf("standby output does not report a promotion:\n%s", out)
	}
	if n, _ := strconv.Atoi(resumed[1]); n <= 0 {
		t.Fatalf("standby resumed at iteration %s — it trained from scratch instead of promoting", resumed[1])
	}
	digest := regexp.MustCompile(`params digest: ([0-9a-f]+)`).FindStringSubmatch(out)
	if digest == nil {
		t.Fatalf("standby output carries no params digest:\n%s", out)
	}

	want := baselineDigest(t)
	if digest[1] != want {
		t.Fatalf("failover params digest %s != uninterrupted baseline %s\nstandby output:\n%s", digest[1], want, out)
	}
	t.Logf("failover run bit-identical to baseline (digest %s), standby resumed at iteration %s", want, resumed[1])
}

// assertGcctlSeesFailover polls the gcctl binary against the shared roster
// until its merged timeline carries both the failover and the fence event
// attributed to the promoted standby's node. gcctl's exit status is
// deliberately ignored: the dead root's endpoint is still in the roster, so
// every sweep rightly reports it unhealthy — the JSON snapshot on stdout is
// the deliverable. The last snapshot lands in the artifact dir on failure.
func assertGcctlSeesFailover(t *testing.T, artifacts, gcctl, roster, ckpt, standbyMetrics string) {
	t.Helper()
	var lastOut []byte
	var lastErr string
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var stdout, stderr bytes.Buffer
		cmd := exec.Command(gcctl, "-roster", roster, "-checkpoint-dir", ckpt, "-json", "-timeout", "2s")
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		_ = cmd.Run() // non-zero exit = unhealthy nodes, expected with the root dead
		lastOut, lastErr = stdout.Bytes(), stderr.String()

		var snap fleet.Snapshot
		if err := json.Unmarshal(lastOut, &snap); err == nil {
			sawFailover, sawFence := false, false
			for _, ev := range snap.Timeline {
				if ev.Node != standbyMetrics {
					continue
				}
				switch ev.Kind {
				case obs.EvFailover:
					sawFailover = true
				case obs.EvFence:
					sawFence = true
				}
			}
			if sawFailover && sawFence {
				if snap.Root == nil || snap.Root.Gen < 2 {
					t.Errorf("gcctl timeline shows the failover but the lease names no promoted root: %+v", snap.Root)
				}
				t.Logf("gcctl merged timeline shows failover + fence from %s (%d events, %d nodes)",
					standbyMetrics, len(snap.Timeline), len(snap.Nodes))
				return
			}
		}
		time.Sleep(150 * time.Millisecond)
	}
	path := filepath.Join(artifacts, "gcctl-snapshot.json")
	_ = os.WriteFile(path, lastOut, 0o644)
	t.Fatalf("gcctl never merged failover + fence events from %s into the timeline; last snapshot in %s\nstderr: %s",
		standbyMetrics, path, lastErr)
}

// assertStitchedTraces reads the promoted root's /debug/trace and requires at
// least one iteration whose member child spans carry wire-echoed worker
// phases — proof the trace context made the round trip over the wire.
func assertStitchedTraces(t *testing.T, metricsAddr string) {
	t.Helper()
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(30 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := client.Get("http://" + metricsAddr + "/debug/trace?n=10")
		if err == nil {
			var traces []obs.IterTrace
			err = json.NewDecoder(resp.Body).Decode(&traces)
			resp.Body.Close()
			if err == nil {
				for _, tr := range traces {
					for _, ms := range tr.Members {
						for _, sp := range ms.Spans {
							if sp.Phase == obs.PhaseCompute && sp.Seconds > 0 {
								t.Logf("stitched trace: iter %d member %d echoed %d phase spans over the wire",
									tr.Iter, ms.Member, len(ms.Spans))
								return
							}
						}
					}
				}
				last = fmt.Sprintf("%d traces, none with echoed member compute spans", len(traces))
			} else {
				last = err.Error()
			}
		} else {
			last = err.Error()
		}
		time.Sleep(150 * time.Millisecond)
	}
	t.Fatalf("promoted root's /debug/trace never served wire-echoed member phase spans: %s", last)
}

// baselineDigest trains the identical configuration uninterrupted in-process
// and digests the final parameters.
func baselineDigest(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := node.ClusterConfig{
		Roster:       node.Roster{Root: "127.0.0.1:1", Workers: workers},
		Listen:       "127.0.0.1:0",
		K:            k,
		S:            s,
		Iterations:   iters,
		Seed:         seed,
		IterTimeout:  20 * time.Second,
		PinEstimates: true,
	}
	cfg.CheckpointDir = dir
	cfg.SnapshotEvery = 4
	cfg.LeaseTTL = time.Second
	root, err := node.StartRoot(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	defer close(stop)
	for i := 0; i < workers; i++ {
		go func() {
			_ = node.RunWorker(node.WorkerConfig{
				Roster: node.Roster{Root: root.Addr(), Workers: workers},
				K:      k,
				Seed:   seed,
			}, stop)
		}()
	}
	res, err := root.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return node.ParamsDigest(res.Params)
}

// buildBinaries compiles gcroot, gcworker and gcctl once into a temp dir.
func buildBinaries(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "../cmd/gcroot", "../cmd/gcworker", "../cmd/gcctl")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return map[string]string{
		"gcroot":   filepath.Join(dir, "gcroot"),
		"gcworker": filepath.Join(dir, "gcworker"),
		"gcctl":    filepath.Join(dir, "gcctl"),
	}
}

// artifactDir is where process logs and journal tails land; CI points
// HETGC_E2E_ARTIFACTS at an upload path.
func artifactDir(t *testing.T) string {
	if dir := os.Getenv("HETGC_E2E_ARTIFACTS"); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	return t.TempDir()
}

// proc is one spawned cluster member with its combined output tee'd to an
// artifact file.
type proc struct {
	cmd  *exec.Cmd
	log  string
	exit chan error
}

func spawn(t *testing.T, artifacts, name, bin string, args ...string) *proc {
	t.Helper()
	logPath := filepath.Join(artifacts, name+".log")
	f, err := os.Create(logPath)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = f
	cmd.Stderr = f
	if err := cmd.Start(); err != nil {
		f.Close()
		t.Fatalf("start %s: %v", name, err)
	}
	p := &proc{cmd: cmd, log: logPath, exit: make(chan error, 1)}
	go func() {
		p.exit <- cmd.Wait()
		f.Close()
	}()
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGKILL)
		select {
		case <-p.exit:
		case <-time.After(5 * time.Second):
		}
	})
	return p
}

func (p *proc) done() bool {
	select {
	case err := <-p.exit:
		p.exit <- err
		return true
	default:
		return false
	}
}

func (p *proc) wait(timeout time.Duration) error {
	select {
	case err := <-p.exit:
		p.exit <- err
		return err
	case <-time.After(timeout):
		return fmt.Errorf("still running after %s", timeout)
	}
}

func (p *proc) output() string {
	b, err := os.ReadFile(p.log)
	if err != nil {
		return fmt.Sprintf("<no output: %v>", err)
	}
	return string(b)
}

// dumpEvents tails a live process's /debug/events journal into the artifact
// dir and the test log — the first thing to read when the e2e fails.
func dumpEvents(t *testing.T, artifacts, name, metricsAddr string) {
	client := &http.Client{Timeout: 2 * time.Second}
	resp, err := client.Get("http://" + metricsAddr + "/debug/events")
	if err != nil {
		t.Logf("%s: no /debug/events (%v) — process likely dead; see %s.log", name, err, name)
		return
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	path := filepath.Join(artifacts, name+"-events.json")
	_ = os.WriteFile(path, b, 0o644)
	t.Logf("%s /debug/events tail:\n%s", name, b)
}

// freeAddr reserves a loopback port and releases it for a child process to
// bind. The race between release and rebind is real but tolerable in a test
// that binds four ports on a quiet loopback.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}
