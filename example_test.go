package hetgc_test

import (
	"fmt"

	"github.com/hetgc/hetgc"
)

// ExampleNewHeterAware reproduces Example 1 of the paper: five workers with
// relative speeds 1,2,3,4,4 receive loads proportional to speed, and any
// single straggler can be tolerated.
func ExampleNewHeterAware() {
	st, err := hetgc.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, hetgc.NewRand(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("loads:", st.Allocation().Loads)
	coeffs, err := st.Decode(hetgc.AliveFromStragglers(st.M(), []int{0}))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("straggler 0 coefficient:", coeffs[0])
	// Output:
	// loads: [1 2 3 4 4]
	// straggler 0 coefficient: 0
}

// ExampleNewGroupBased shows the decode groups found on the Example 1
// allocation: {W3,W4} and {W1,W2,W5} (0-based: {2,3} and {0,1,4}) each tile
// the seven partitions, so either group's plain sum is the full gradient.
func ExampleNewGroupBased() {
	st, err := hetgc.NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, hetgc.NewRand(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("groups:", st.Groups())
	// Output:
	// groups: [[0 1 4] [2 3]]
}

// ExampleStrategy_Decode decodes with one straggler and verifies aᵀB = 1ᵀ.
func ExampleStrategy_Decode() {
	st, err := hetgc.NewCyclic(4, 1, hetgc.NewRand(2))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	coeffs, err := st.Decode(hetgc.AliveFromStragglers(4, []int{2}))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	row, err := st.B().VecMul(coeffs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	allOnes := true
	for _, v := range row {
		if v < 0.999999 || v > 1.000001 {
			allOnes = false
		}
	}
	fmt.Println("aᵀB = 1ᵀ:", allOnes)
	// Output:
	// aᵀB = 1ᵀ: true
}

// ExampleSimulate runs a deterministic timing simulation at the Theorem 5
// optimum: with exact estimates every worker finishes at (s+1)/Σr seconds.
func ExampleSimulate() {
	st, err := hetgc.NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, hetgc.NewRand(3))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := hetgc.Simulate(hetgc.SimConfig{
		Strategy:    st,
		Throughputs: []float64{1, 2, 3, 4, 4},
		Iterations:  3,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("avg iteration: %.4fs\n", res.AvgIterTime())
	// Output:
	// avg iteration: 0.1429s
}
