package hetgc_test

// Metrics smoke tests: each runtime trains a small loopback cluster with the
// full durable-state stack enabled (checkpoint dir + HA lease) while a
// telemetry server is live, scrapes /metrics *during* the run, and asserts
// after the run that every family the acceptance bar names carries a
// non-zero sample: iteration counters, per-worker throughput estimates,
// decode-cache hit rate, checkpoint snapshot activity and the lease
// generation. `make metrics-smoke` runs exactly these tests.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hetgc/hetgc"
)

// scrape fetches url and returns the exposition body.
func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("scrape %s: %v", url, err)
	}
	return string(b)
}

// familyMax returns the largest sample value of the family in an exposition
// body (samples are `name value` or `name{labels} value` lines), and whether
// any sample line was present at all.
func familyMax(body, family string) (float64, bool) {
	max, found := 0.0, false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family) {
			continue
		}
		rest := line[len(family):]
		if rest == "" || (rest[0] != ' ' && rest[0] != '{') {
			continue // longer family sharing the prefix
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		found = true
		if v > max {
			max = v
		}
	}
	return max, found
}

// requireNonZero asserts the family has at least one sample > 0.
func requireNonZero(t *testing.T, body, family string) {
	t.Helper()
	v, ok := familyMax(body, family)
	if !ok {
		t.Errorf("family %s: no samples in scrape", family)
		return
	}
	if v <= 0 {
		t.Errorf("family %s: max sample %v, want > 0", family, v)
	}
}

// watchDuringRun polls /metrics until it observes a scrape taken mid-training
// (non-zero iteration counter) or done is closed. It returns a flag that
// reports whether such a scrape succeeded.
func watchDuringRun(url string, done <-chan struct{}) *atomic.Bool {
	saw := &atomic.Bool{}
	go func() {
		for {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
			}
			resp, err := http.Get(url)
			if err != nil {
				continue
			}
			b, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				continue
			}
			if v, ok := familyMax(string(b), "hetgc_iterations_total"); ok && v > 0 {
				saw.Store(true)
				return
			}
		}
	}()
	return saw
}

// assertSmokeFamilies checks the acceptance-bar families on a final scrape.
func assertSmokeFamilies(t *testing.T, body string) {
	t.Helper()
	requireNonZero(t, body, "hetgc_iterations_total")
	requireNonZero(t, body, "hetgc_worker_throughput_estimate")
	requireNonZero(t, body, "hetgc_decode_cache_hit_ratio")
	requireNonZero(t, body, "hetgc_checkpoint_snapshot_seconds_count")
	requireNonZero(t, body, "hetgc_ha_lease_generation")
	// Age may legitimately round to ~0 right after a snapshot; presence is
	// what the scrape contract guarantees.
	if _, ok := familyMax(body, "hetgc_checkpoint_snapshot_age_seconds"); !ok {
		t.Error("family hetgc_checkpoint_snapshot_age_seconds: no samples in scrape")
	}
}

func TestMetricsSmokeElastic(t *testing.T) {
	const k, workers, iters = 8, 4, 16
	rng := hetgc.NewRand(1)
	data, err := hetgc.GaussianMixture(k*10, 4, 3, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(k)
	if err != nil {
		t.Fatal(err)
	}
	model := &hetgc.Softmax{InputDim: 4, NumClasses: 3}

	tel := hetgc.NewTelemetry()
	srv, err := hetgc.ServeTelemetry(tel, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	master, err := hetgc.NewElasticMaster(hetgc.ElasticConfig{
		K: k, S: 1,
		Model:         model,
		Optimizer:     &hetgc.SGD{LR: 0.5},
		InitialParams: model.InitParams(nil),
		Iterations:    iters,
		SampleCount:   data.N(),
		IterTimeout:   10 * time.Second,
		MinWorkers:    workers,
		Seed:          1,
		CheckpointDir: t.TempDir(),
		SnapshotEvery: 2,
		LeaseTTL:      2 * time.Second,
		Obs:           tel,
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		w, err := hetgc.DialElasticWorker(master.Addr(), hetgc.ElasticWorkerConfig{
			Model:             model,
			PartitionData:     func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
			DelayPerPartition: func(int) time.Duration { return 2 * time.Millisecond },
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	sawLive := watchDuringRun(srv.URL()+"/metrics", done)
	res, err := master.Run()
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Count == 0 {
		t.Fatal("run recorded no iterations")
	}

	if !sawLive.Load() {
		t.Error("no successful /metrics scrape observed during training")
	}
	assertSmokeFamilies(t, scrape(t, srv.URL()+"/metrics"))
}

func TestMetricsSmokeSharded(t *testing.T) {
	const k, m, iters = 8, 4, 16
	rng := hetgc.NewRand(1)
	data, err := hetgc.GaussianMixture(k*10, 4, 3, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(k)
	if err != nil {
		t.Fatal(err)
	}
	model := &hetgc.Softmax{InputDim: 4, NumClasses: 3}
	throughputs := make([]float64, m)
	for i := range throughputs {
		throughputs[i] = 500
	}

	tel := hetgc.NewTelemetry()
	srv, err := hetgc.ServeTelemetry(tel, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cfg := hetgc.ShardedConfig{
		K: k, S: 1, GroupSize: 2, FanIn: 2,
		Throughputs:     throughputs,
		Model:           model,
		Optimizer:       &hetgc.SGD{LR: 0.5},
		InitialParams:   model.InitParams(nil),
		Iterations:      iters,
		SampleCount:     data.N(),
		IterTimeout:     10 * time.Second,
		Alpha:           0.7,
		DriftThreshold:  0.5,
		MinObservations: 2,
		CooldownIters:   2,
		Seed:            1,
		CheckpointDir:   t.TempDir(),
		SnapshotEvery:   2,
		LeaseTTL:        2 * time.Second,
		Obs:             tel,
	}

	done := make(chan struct{})
	sawLive := watchDuringRun(srv.URL()+"/metrics", done)
	var wg sync.WaitGroup
	res, err := hetgc.RunSharded(cfg, "127.0.0.1:0", 5*time.Second, func(root *hetgc.ShardedRoot) {
		addrs := root.GroupAddrs()
		for g, grp := range root.Plan().Groups {
			for range grp.Workers {
				w, err := hetgc.DialElasticWorker(addrs[g], hetgc.ElasticWorkerConfig{
					Model:             model,
					PartitionData:     func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
					DelayPerPartition: func(int) time.Duration { return 2 * time.Millisecond },
				})
				if err != nil {
					panic(fmt.Sprintf("dial group %d: %v", g, err))
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = w.Run()
				}()
			}
		}
	})
	close(done)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterTimes) == 0 {
		t.Fatal("run recorded no iterations")
	}

	if !sawLive.Load() {
		t.Error("no successful /metrics scrape observed during training")
	}
	assertSmokeFamilies(t, scrape(t, srv.URL()+"/metrics"))
}
