package hetgc

import (
	"math"
	"testing"
)

// Benchmarks regenerating the paper's tables and figures (see DESIGN.md's
// experiment index and EXPERIMENTS.md for paper-vs-measured shapes). Each
// b.N loop runs the full experiment at a reduced iteration count; run
// `cmd/gcsim` for the full-size tables.

// BenchmarkTable2Clusters builds all four Table II clusters and their
// strategies.
func BenchmarkTable2Clusters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cl := range []*Cluster{ClusterA(), ClusterB(), ClusterC(), ClusterD()} {
			rng := NewRand(int64(i))
			k := ChooseK(cl, 1)
			if _, err := BuildStrategy(HeterAware, cl, cl.Throughputs(), k, 1, rng); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchDelaySweep(b *testing.B, s int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := RunFig2Sweep(DelaySweepConfig{
			Cluster:        ClusterA(),
			S:              s,
			Delays:         []float64{0, 4, 8, math.Inf(1)},
			Iterations:     30,
			FluctuationStd: 0.05,
			Seed:           int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		sp, err := SpeedupVsCyclic(rows[len(rows)-1])
		if err != nil {
			b.Fatal(err)
		}
		if sp < 1.5 {
			b.Fatalf("fault speedup collapsed: %v", sp)
		}
	}
}

// BenchmarkFig2a regenerates Fig. 2a (Cluster-A, s=1 delay sweep).
func BenchmarkFig2a(b *testing.B) { benchDelaySweep(b, 1) }

// BenchmarkFig2b regenerates Fig. 2b (Cluster-A, s=2 delay sweep).
func BenchmarkFig2b(b *testing.B) { benchDelaySweep(b, 2) }

func benchCluster(b *testing.B, cl *Cluster) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rows, err := RunFig3Clusters(ClusterSweepConfig{
			Clusters:       []*Cluster{cl},
			S:              1,
			Iterations:     20,
			TransientProb:  0.02,
			TransientMean:  2,
			FluctuationStd: 0.05,
			Seed:           int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = rows
	}
}

// BenchmarkFig3ClusterB regenerates the Cluster-B panel of Fig. 3.
func BenchmarkFig3ClusterB(b *testing.B) { benchCluster(b, ClusterB()) }

// BenchmarkFig3ClusterC regenerates the Cluster-C panel of Fig. 3.
func BenchmarkFig3ClusterC(b *testing.B) { benchCluster(b, ClusterC()) }

// BenchmarkFig3ClusterD regenerates the Cluster-D panel of Fig. 3.
func BenchmarkFig3ClusterD(b *testing.B) { benchCluster(b, ClusterD()) }

// BenchmarkFig4LossCurves regenerates Fig. 4 (loss vs time incl. SSP) on a
// reduced horizon.
func BenchmarkFig4LossCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lc, err := RunFig4LossCurves(LossCurveConfig{
			Cluster:             ClusterA(),
			S:                   1,
			Iterations:          25,
			SamplesPerPartition: 8,
			FeatureDim:          5,
			Classes:             3,
			TransientProb:       0.02,
			TransientMean:       2,
			Seed:                int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(lc.Curves) != 5 {
			b.Fatalf("curves = %d", len(lc.Curves))
		}
	}
}

// BenchmarkFig5Usage regenerates Fig. 5 (resource usage per scheme).
func BenchmarkFig5Usage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := RunFig3Clusters(ClusterSweepConfig{
			Clusters:       []*Cluster{ClusterA(), ClusterB()},
			S:              1,
			Iterations:     20,
			TransientProb:  0.02,
			TransientMean:  2,
			FluctuationStd: 0.05,
			CommOverhead:   0.3,
			Seed:           int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = UsageTable(rows)
	}
}

// BenchmarkMisestimation runs the group-based ablation (strategy built from
// noisy estimates, simulated against truth).
func BenchmarkMisestimation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunMisestimation(MisestimationConfig{
			Cluster:    ClusterA(),
			S:          1,
			Epsilons:   []float64{0, 0.3},
			Iterations: 20,
			Trials:     2,
			Seed:       int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicationSweep runs the s ablation.
func BenchmarkReplicationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RunReplicationSweep(ReplicationSweepConfig{
			Cluster:    ClusterA(),
			SValues:    []int{1, 2},
			Delay:      5,
			Iterations: 15,
			Seed:       int64(i + 1),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstructHeterAware measures Alg. 1 code construction on the
// largest cluster (Table II Cluster-D).
func BenchmarkConstructHeterAware(b *testing.B) {
	cl := ClusterD()
	ths := cl.Throughputs()
	k := ChooseK(cl, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewHeterAware(ths, k, 1, NewRand(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConstructGroupBased measures Alg. 2/3 construction (group search
// included) on Cluster-B.
func BenchmarkConstructGroupBased(b *testing.B) {
	cl := ClusterB()
	ths := cl.Throughputs()
	k := ChooseK(cl, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewGroupBased(ths, k, 1, NewRand(int64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeFastPath measures the O(s³) null-space decoding path used
// by heter-aware codes.
func BenchmarkDecodeFastPath(b *testing.B) {
	cl := ClusterB()
	st, err := NewHeterAware(cl.Throughputs(), ChooseK(cl, 2), 2, NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	m := st.M()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the pattern so the memo cache doesn't absorb the work.
		stragglers := []int{i % m, (i + 7) % m}
		if stragglers[0] == stragglers[1] {
			stragglers = stragglers[:1]
		}
		if _, err := st.Decode(AliveFromStragglers(m, stragglers)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeGroupBroken measures group-based decoding when every group
// is broken, forcing the Ē sub-code path (requires a configuration with
// P ≤ s groups; skips otherwise). The finer decode-path ablation lives in
// internal/core's benchmarks (BenchmarkDecodeNullSpacePath vs
// BenchmarkDecodeGenericPath).
func BenchmarkDecodeGroupBroken(b *testing.B) {
	var st *Strategy
search:
	for _, cl := range []*Cluster{ClusterA(), ClusterB(), ClusterC(), ClusterD()} {
		for _, s := range []int{1, 2, 3} {
			cand, err := BuildStrategy(GroupBased, cl, cl.Throughputs(), ChooseK(cl, s), s, NewRand(1))
			if err != nil {
				continue
			}
			if p := len(cand.Groups()); p > 0 && p <= s {
				st = cand
				break search
			}
		}
	}
	if st == nil {
		b.Skip("no Table II configuration with P ≤ s groups")
	}
	m := st.M()
	groups := st.Groups()
	var stragglers []int
	for _, g := range groups {
		stragglers = append(stragglers, g[0])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Decode(AliveFromStragglers(m, stragglers)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPartials(dim, n int) []Gradient {
	partials := make([]Gradient, n)
	rng := NewRand(1)
	for i := range partials {
		partials[i] = make(Gradient, dim)
		for j := range partials[i] {
			partials[i][j] = rng.NormFloat64()
		}
	}
	return partials
}

// BenchmarkEncodeGradient measures steady-state worker-side encoding of a
// 100k-parameter gradient over 4 partitions — the per-iteration hot path,
// using the pooled in-place kernel exactly as the runtime worker does.
func BenchmarkEncodeGradient(b *testing.B) {
	const dim = 100_000
	partials := benchPartials(dim, 4)
	coeffs := []float64{0.3, -1.2, 2.4, 0.9}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := GetGradientBuffer(dim)
		if err := EncodeGradientInto(out, coeffs, partials); err != nil {
			b.Fatal(err)
		}
		PutGradientBuffer(out)
	}
}

// BenchmarkEncodeGradientAlloc measures the allocating Encode wrapper (one
// fresh gradient per call) for comparison with the pooled path above.
func BenchmarkEncodeGradientAlloc(b *testing.B) {
	const dim = 100_000
	partials := benchPartials(dim, 4)
	coeffs := []float64{0.3, -1.2, 2.4, 0.9}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeGradient(coeffs, partials); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCombineGradients measures master-side recombination of 8 coded
// 100k-parameter gradients through the pooled in-place kernel.
func BenchmarkCombineGradients(b *testing.B) {
	const dim = 100_000
	coded := benchPartials(dim, 8)
	coeffs := make([]float64, 8)
	for i := range coeffs {
		coeffs[i] = 0.25 * float64(i+1)
	}
	coeffs[3] = 0 // one straggler whose gradient is ignored
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := GetGradientBuffer(dim)
		if err := CombineGradientsInto(out, coeffs, coded); err != nil {
			b.Fatal(err)
		}
		PutGradientBuffer(out)
	}
}

// BenchmarkSSP measures the SSP baseline simulation.
func BenchmarkSSP(b *testing.B) {
	data, err := GaussianMixture(200, 4, 3, 3, NewRand(1))
	if err != nil {
		b.Fatal(err)
	}
	ths := ClusterA().Throughputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunSSP(SSPConfig{
			Throughputs:         ths,
			Staleness:           3,
			Model:               &Softmax{InputDim: 4, NumClasses: 3},
			Data:                data,
			Optimizer:           &SGD{LR: 0.05},
			IterationsPerWorker: 20,
			Name:                "ssp",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchShardedSim runs the sharded co-simulation at a given scale; groupSize
// = m degenerates to the flat single-master runtime, so the pair measures
// flat-vs-sharded per-iteration wall-clock on identical fleets (including
// real plan construction and decode work).
func benchShardedSim(b *testing.B, m, groupSize int) {
	b.Helper()
	rates := make([]float64, m)
	for i := range rates {
		rates[i] = 100
	}
	cfg := ShardedSimConfig{
		K: 2 * m, S: 1, GroupSize: groupSize, FanIn: 4,
		Rates:         rates,
		Iterations:    10,
		IngestSeconds: 0.002,
		HopSeconds:    0.005,
		Seed:          7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SimulateSharded(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Summary.Mean
	}
}

// benchIterRate reports end-to-end training throughput of the sharded
// co-simulation at fleet scale as an explicit "iter/s" metric. The
// bench-regression gate (gcbench -compare, IterRate in the default filter)
// gates throughput-style units on a drop, so a collapse in iterations/sec
// fails CI even if per-op wall time shifts in a way ns/op tolerates.
func benchIterRate(b *testing.B, m int) {
	b.Helper()
	rates := make([]float64, m)
	for i := range rates {
		rates[i] = 100
	}
	const iters = 10
	cfg := ShardedSimConfig{
		K: 2 * m, S: 1, GroupSize: 10, FanIn: 4,
		Rates:         rates,
		Iterations:    iters,
		IngestSeconds: 0.002,
		HopSeconds:    0.005,
		Seed:          7,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateSharded(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(iters*b.N)/b.Elapsed().Seconds(), "iter/s")
}

// End-to-end iterations/sec at 200 and 500 simulated workers (gated).
func BenchmarkIterRate200Workers(b *testing.B) { benchIterRate(b, 200) }
func BenchmarkIterRate500Workers(b *testing.B) { benchIterRate(b, 500) }

// Flat vs sharded iteration latency at 50–500 simulated workers: the
// hierarchical runtime builds many small codes and decodes many small
// systems instead of one large one.
func BenchmarkSimFlat50(b *testing.B)     { benchShardedSim(b, 50, 50) }
func BenchmarkSimSharded50(b *testing.B)  { benchShardedSim(b, 50, 10) }
func BenchmarkSimFlat200(b *testing.B)    { benchShardedSim(b, 200, 200) }
func BenchmarkSimSharded200(b *testing.B) { benchShardedSim(b, 200, 10) }
func BenchmarkSimFlat500(b *testing.B)    { benchShardedSim(b, 500, 500) }
func BenchmarkSimSharded500(b *testing.B) { benchShardedSim(b, 500, 10) }
