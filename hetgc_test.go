package hetgc

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

// TestPublicAPIQuickstart walks the documented core loop end to end through
// the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	rng := NewRand(1)
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRobustness(st, 0, nil); err != nil {
		t.Fatal(err)
	}

	// Fake partial gradients: g_j = [j+1] so the exact sum is known.
	dim := 1
	partials := make([]Gradient, 7)
	var wantSum float64
	for j := range partials {
		partials[j] = Gradient{float64(j + 1)}
		wantSum += float64(j + 1)
	}
	// Each worker encodes with its coding row.
	coded := make([]Gradient, st.M())
	alloc := st.Allocation()
	for w := 0; w < st.M(); w++ {
		row := st.Row(w)
		var mine []Gradient
		var coeffs []float64
		for _, p := range alloc.Parts[w] {
			mine = append(mine, partials[p])
			coeffs = append(coeffs, row[p])
		}
		enc, err := EncodeGradient(coeffs, mine)
		if err != nil {
			t.Fatal(err)
		}
		coded[w] = enc
	}
	// Worker 3 is a straggler: decode from the rest.
	alive := AliveFromStragglers(st.M(), []int{3})
	dcoeffs, err := st.Decode(alive)
	if err != nil {
		t.Fatal(err)
	}
	coded[3] = nil
	got, err := CombineGradients(dcoeffs, coded, dim)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[0]-wantSum) > 1e-8 {
		t.Fatalf("decoded sum %v, want %v", got[0], wantSum)
	}
}

func TestPublicAPISimulation(t *testing.T) {
	cl := ClusterA()
	rng := NewRand(2)
	st, err := BuildStrategy(HeterAware, cl, cl.Throughputs(), ChooseK(cl, 1), 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{
		Strategy:    st,
		Throughputs: cl.Throughputs(),
		Injector:    FixedStragglers{Count: 1, Delay: 5, Rng: rng},
		Iterations:  10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failures: %d", res.Failed)
	}
	if res.AvgIterTime() <= 0 {
		t.Fatal("no time recorded")
	}
}

func TestPublicAPITableRunners(t *testing.T) {
	if out := Table2().String(); len(out) == 0 {
		t.Fatal("empty Table II")
	}
	rows, err := RunFig2Sweep(DelaySweepConfig{
		Cluster:    ClusterA(),
		S:          1,
		Delays:     []float64{0, math.Inf(1)},
		Iterations: 5,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpeedupVsCyclic(rows[len(rows)-1])
	if err != nil {
		t.Fatal(err)
	}
	if sp <= 1 {
		t.Fatalf("fault speedup = %v", sp)
	}
}

func TestNewClusterFacade(t *testing.T) {
	cl, err := NewCluster("tiny", map[int]int{4: 3}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if cl.M() != 3 {
		t.Fatalf("m = %d", cl.M())
	}
}

func TestSeedFromTimeMoves(t *testing.T) {
	if SeedFromTime() == 0 {
		t.Fatal("zero seed")
	}
}

func TestPublicAPIPlannerAndDecodingMatrix(t *testing.T) {
	rng := NewRand(9)
	pl, err := NewPlanner(PlannerConfig{K: 7, S: 1}, []float64{1, 2, 3, 4, 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Strategy()
	// Pre-store decoding rows for the chronically slow workers 0 and 1.
	dm, err := st.PrecomputePatterns(RegularPatterns([]int{0, 1}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dm.Size() != 3 { // {}, {0}, {1}
		t.Fatalf("size = %d", dm.Size())
	}
	row, ok := dm.Lookup([]int{0})
	if !ok || row[0] != 0 {
		t.Fatalf("lookup = %v %v", row, ok)
	}
	// The stored row must agree with a live decode.
	live, err := st.Decode(AliveFromStragglers(st.M(), []int{0}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if math.Abs(row[i]-live[i]) > 1e-12 {
			t.Fatalf("stored row diverges from live decode at %d: %v vs %v", i, row[i], live[i])
		}
	}
}

func TestPublicAPICSVExports(t *testing.T) {
	var sb strings.Builder
	if err := Table2().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "vCPUs,Cluster-A") {
		t.Fatalf("csv = %q", sb.String())
	}
	cl := ClusterA()
	rng := NewRand(10)
	st, err := BuildStrategy(HeterAware, cl, cl.Throughputs(), ChooseK(cl, 1), 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{Strategy: st, Throughputs: cl.Throughputs(), Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := WriteTimelineCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "iteration,worker") {
		t.Fatalf("timeline csv = %q", sb.String())
	}
}

// Fractional repetition performs comparably to cyclic on a homogeneous
// cluster (the paper's §VI justification for not evaluating it separately).
func TestFractionalRepetitionComparableToCyclic(t *testing.T) {
	m, s := 8, 1
	ths := make([]float64, m)
	for i := range ths {
		ths[i] = 0.08 // homogeneous
	}
	rng := NewRand(11)
	fr, err := NewFractionalRepetition(m, s)
	if err != nil {
		t.Fatal(err)
	}
	cy, err := NewCyclic(m, s, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(st *Strategy) float64 {
		res, err := Simulate(SimConfig{
			Strategy:    st,
			Throughputs: ths,
			Injector:    FixedStragglers{Count: 1, Delay: 10, Rng: NewRand(12)},
			Iterations:  30,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("%v failed %d iterations", st.Kind(), res.Failed)
		}
		return res.AvgIterTime()
	}
	tFR, tCY := run(fr), run(cy)
	if tFR > tCY*1.3 || tCY > tFR*1.3 {
		t.Fatalf("frac-rep (%v) and cyclic (%v) should be comparable on homogeneous clusters", tFR, tCY)
	}
}

func TestPublicAPITrainingSimulations(t *testing.T) {
	rng := NewRand(20)
	data, err := GaussianMixture(70, 4, 2, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TrainSimulated(TrainSimConfig{
		Sim: SimConfig{
			Strategy:    st,
			Throughputs: []float64{1, 2, 3, 4, 4},
			Iterations:  10,
		},
		Model:     &Softmax{InputDim: 4, NumClasses: 2},
		Data:      data,
		Optimizer: &SGD{LR: 0.5},
		Name:      "demo",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalLoss >= res.Curve.Points[0].Y {
		t.Fatalf("loss did not drop: %v -> %v", res.Curve.Points[0].Y, res.FinalLoss)
	}
	ssp, err := RunSSP(SSPConfig{
		Throughputs:         []float64{0.1, 0.4},
		Staleness:           1,
		Model:               &Softmax{InputDim: 4, NumClasses: 2},
		Data:                data,
		Optimizer:           &SGD{LR: 0.2},
		IterationsPerWorker: 10,
		Name:                "ssp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if ssp.TotalTime <= 0 {
		t.Fatal("ssp did not advance time")
	}
}

func TestPublicAPIMiscWrappers(t *testing.T) {
	rng := NewRand(21)
	reg, err := LinearData(20, 3, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := &LinearRegression{InputDim: 3}
	if _, err := MeanLoss(m, m.InitParams(nil), reg); err != nil {
		t.Fatal(err)
	}
	sum, err := SumGradients([]Gradient{{1, 2}, {3, 4}})
	if err != nil || sum[1] != 6 {
		t.Fatalf("sum = %v err = %v", sum, err)
	}
	noisy := MisestimateThroughputs([]float64{1, 2}, 0.2, rng)
	if len(noisy) != 2 {
		t.Fatalf("noisy = %v", noisy)
	}
	var ewma ThroughputEWMA
	ewma.Alpha = 0.5
	if err := ewma.Observe(2, 1); err != nil {
		t.Fatal(err)
	}
	if v, err := ewma.Estimate(); err != nil || v != 2 {
		t.Fatalf("ewma = %v err = %v", v, err)
	}
	if _, err := NewFractionalRepetition(6, 1); err != nil {
		t.Fatal(err)
	}
	if st, err := NewNaive(3); err != nil || st.Kind() != Naive {
		t.Fatalf("naive: %v %v", st, err)
	}
}

// TestElasticFacade exercises the public elastic control-plane surface: the
// deterministic churn simulation, the controller, the throughput meter and
// the imbalance predictor.
func TestElasticFacade(t *testing.T) {
	cfg := ElasticSimConfig{
		K: 6, S: 1,
		InitialRates: []float64{400, 400, 400},
		Events: []ChurnEvent{
			{Iter: 5, Kind: ChurnSpeedStep, Member: 1, Factor: 0.1},
			{Iter: 8, Kind: ChurnJoin, Rate: 400},
		},
		Iterations:      16,
		MinObservations: 2,
		CooldownIters:   2,
		Seed:            3,
	}
	a, err := SimulateElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Times) != 16 || a.Epochs[15] < 1 || len(a.Replans) < 2 {
		t.Fatalf("sim result = %+v", a)
	}
	for i := range a.Times {
		if a.Times[i] != b.Times[i] || a.Epochs[i] != b.Epochs[i] {
			t.Fatal("churn simulation not deterministic via facade")
		}
	}

	ctrl, err := NewElasticController(ElasticControllerConfig{K: 6, S: 1}, NewRand(4))
	if err != nil {
		t.Fatal(err)
	}
	ctrl.AddMember(1, 1)
	ctrl.AddMember(2, 1)
	plan, err := ctrl.Replan(0, "initial")
	if err != nil || plan.Epoch != 0 || plan.Strategy.M() != 2 {
		t.Fatalf("plan = %+v err = %v", plan, err)
	}

	meter := NewThroughputMeter(0.5, 2)
	if meter.Rate(1) != 2 {
		t.Fatalf("cold meter rate = %v, want prior 2", meter.Rate(1))
	}
	if err := meter.Observe(4, 1); err != nil {
		t.Fatal(err)
	}
	if meter.Rate(1) != 4 {
		t.Fatalf("warm meter rate = %v, want 4", meter.Rate(1))
	}
	st, err := NewHeterAware([]float64{1, 2, 3}, 6, 1, NewRand(6))
	if err != nil {
		t.Fatal(err)
	}
	if im := PredictedImbalance(st, []float64{1, 2, 3}); im < 1-1e-9 || im > 2 {
		t.Fatalf("imbalance = %v", im)
	}
}

// TestHAFacade drives the high-availability surface through the facade
// only: acquire, read back, expire, standby promotion, fencing error.
func TestHAFacade(t *testing.T) {
	dir := t.TempDir()
	lease, err := AcquireLease(dir, "root-a", "addr-a", 40*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Gen() != 1 {
		t.Fatalf("generation = %d, want 1", lease.Gen())
	}
	tok, err := ReadLeaseToken(dir)
	if err != nil || tok.Holder != "root-a" {
		t.Fatalf("token = %+v, %v", tok, err)
	}
	if _, err := AcquireLease(dir, "root-b", "addr-b", time.Hour); err == nil || !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("steal of a live lease = %v, want ErrLeaseHeld", err)
	}
	// Never renewed: the standby sees the lapse and promotes.
	prom, err := NewStandby(StandbyConfig{Dir: dir, Poll: 5 * time.Millisecond}).Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if prom.Deposed == nil || prom.Deposed.Gen != 1 {
		t.Fatalf("promotion = %+v, want deposed generation 1", prom)
	}
	b, err := AcquireLease(dir, "root-b", "addr-b", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if b.Gen() != 2 {
		t.Fatalf("successor generation = %d, want 2", b.Gen())
	}
	if err := lease.Renew(); !errors.Is(err, ErrFenced) {
		t.Fatalf("deposed renew = %v, want ErrFenced", err)
	}
}
