// Recovery: durable training state on a live loopback TCP cluster. An
// elastic master checkpoints into a directory (write-ahead journal + atomic
// model snapshots) while four workers train a softmax model. Mid-training
// the master process is killed cold — no goodbye frames, no final snapshot,
// exactly a crash. A second master is then constructed FROM the checkpoint
// directory: it restores the model and optimizer state from the newest
// snapshot, reserves the old member identities, and raises its plan-epoch
// base above everything the journal recorded. The same worker processes —
// which have been re-dialing the whole time — rejoin through the ordinary
// ResumeID handshake, one of them replays a pre-crash upload to show the
// epoch fence rejecting it, and training runs to completion.
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetgc/hetgc"
)

const (
	k, s       = 8, 1
	iters      = 30
	numWorkers = 4
	killAfter  = 10 // crash once this iteration is durably journaled
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "hetgc-recovery-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rng := hetgc.NewRand(1)
	data, err := hetgc.GaussianMixture(k*20, 4, 3, 3, rng)
	if err != nil {
		return err
	}
	parts, err := data.Split(k)
	if err != nil {
		return err
	}
	model := &hetgc.Softmax{InputDim: 4, NumClasses: 3}
	config := func(resume bool) hetgc.ElasticConfig {
		return hetgc.ElasticConfig{
			K: k, S: s,
			Model:         model,
			Optimizer:     &hetgc.SGD{LR: 0.5, Momentum: 0.5},
			InitialParams: model.InitParams(nil),
			Iterations:    iters,
			SampleCount:   data.N(),
			IterTimeout:   10 * time.Second,
			MinWorkers:    numWorkers,
			Seed:          1,
			LossEvery:     5,
			LossFn: func(p []float64) (float64, error) {
				return hetgc.MeanLoss(model, p, data)
			},
			CheckpointDir: dir,
			SnapshotEvery: 3,
			Resume:        resume,
		}
	}

	// Phase 1: a checkpointing master, killed cold mid-training.
	master, err := hetgc.NewElasticMaster(config(false), "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: master on %s, checkpointing into %s\n", master.Addr(), dir)

	// The workers outlive the master: each runs a reconnect loop that
	// re-dials the current address with its old member ID after any
	// connection loss — the shape of a real production worker.
	var addr atomic.Value
	addr.Store(master.Addr())
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < numWorkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resumeID := 0
			for !stop.Load() {
				w, err := hetgc.DialElasticWorker(addr.Load().(string), hetgc.ElasticWorkerConfig{
					Model:         model,
					PartitionData: func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
					Delay:         func(int) time.Duration { return 2 * time.Millisecond },
					ResumeID:      resumeID,
					DialTimeout:   time.Second,
				})
				if err != nil {
					time.Sleep(20 * time.Millisecond)
					continue
				}
				resumeID = w.ID()
				if w.Run() == nil {
					return // clean shutdown from the master
				}
				// Connection lost (the crash): retry until the resumed
				// master answers.
				time.Sleep(20 * time.Millisecond)
			}
		}(i)
	}

	if err := master.WaitForWorkers(10 * time.Second); err != nil {
		return err
	}
	runErr := make(chan error, 1)
	go func() {
		_, err := master.Run()
		runErr <- err
	}()
	// Kill once iteration killAfter is durable in the journal.
	for {
		st, err := hetgc.RecoverCheckpoint(dir)
		if err == nil && st.LastIter >= killAfter {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	master.Close() // cold: the crash
	<-runErr
	state, err := hetgc.RecoverCheckpoint(dir)
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: KILLED after iteration %d (snapshot at iter %d, max epoch %d, members %v)\n",
		state.LastIter, state.Snap.Iter, state.MaxEpoch(), state.GroupMembers[0])

	// Phase 2: reconstruct from the directory and finish the job.
	resumed, err := hetgc.NewElasticMaster(config(true), "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("phase 2: resumed master on %s from iteration %d; workers re-dialing\n",
		resumed.Addr(), resumed.StartIter())
	addr.Store(resumed.Addr())
	if err := resumed.WaitForWorkers(10 * time.Second); err != nil {
		return err
	}
	res, err := resumed.Run()
	if err != nil {
		return err
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("phase 2: iterations %d..%d complete; epochs resumed at %d (> pre-crash max %d: stale uploads fenced)\n",
		res.StartIter, iters, res.Epochs[0], state.MaxEpoch())
	fmt.Printf("rejoins: %d  stale-epoch uploads fenced: %d\n", res.Joins, res.StaleEpochRejected)
	fmt.Println("loss curve across the crash (time s, mean loss):")
	for _, p := range res.Curve.Points {
		fmt.Printf("  %8.3f  %.4f\n", p.X, p.Y)
	}
	return nil
}
