// Telemetry: a live loopback training run observed from the outside. Four
// workers train a softmax model on the elastic runtime while the run serves
// its telemetry plane over HTTP; once training finishes, the program scrapes
// its own /metrics endpoint exactly as Prometheus would and prints the hetgc
// families — iteration counters and latency, per-worker throughput
// estimates, decode-cache hit rate, roster membership — followed by the
// structured event journal from /debug/events. The same *Telemetry bundle
// can be handed to SimulateElastic to produce a byte-comparable sim scrape.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/hetgc/hetgc"
)

const (
	k, s  = 8, 1
	iters = 20
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := hetgc.NewRand(1)
	data, err := hetgc.GaussianMixture(k*20, 4, 3, 3, rng)
	if err != nil {
		return err
	}
	parts, err := data.Split(k)
	if err != nil {
		return err
	}
	model := &hetgc.Softmax{InputDim: 4, NumClasses: 3}

	// The telemetry plane: one bundle, one HTTP server. Port 0 picks a free
	// port; a deployment would pin one and point Prometheus at it.
	tel := hetgc.NewTelemetry()
	srv, err := hetgc.ServeTelemetry(tel, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("telemetry plane on %s\n", srv.URL())

	master, err := hetgc.NewElasticMaster(hetgc.ElasticConfig{
		K: k, S: s,
		Model:         model,
		Optimizer:     &hetgc.SGD{LR: 0.5},
		InitialParams: model.InitParams(nil),
		Iterations:    iters,
		SampleCount:   data.N(),
		IterTimeout:   10 * time.Second,
		MinWorkers:    4,
		Seed:          1,
		Obs:           tel,
	}, "127.0.0.1:0")
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		w, err := hetgc.DialElasticWorker(master.Addr(), hetgc.ElasticWorkerConfig{
			Model:             model,
			PartitionData:     func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
			DelayPerPartition: func(int) time.Duration { return 2 * time.Millisecond },
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}
	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		return err
	}
	res, err := master.Run()
	wg.Wait()
	if err != nil {
		return err
	}
	fmt.Printf("trained %d iterations, mean %.1fms\n\n", res.Summary.Count, res.Summary.Mean*1e3)

	// Scrape our own /metrics, as Prometheus would.
	fmt.Println("curl " + srv.URL() + "/metrics:")
	body, err := get(srv.URL() + "/metrics")
	if err != nil {
		return err
	}
	shown := 0
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		// Show the sample lines of a few representative families; the full
		// exposition carries every hetgc_* metric plus HELP/TYPE metadata.
		for _, fam := range []string{
			"hetgc_iterations_total", "hetgc_iteration_seconds_count",
			"hetgc_worker_throughput_estimate", "hetgc_decode_cache_hit_ratio",
			"hetgc_roster_members", "hetgc_replans_total", "hetgc_wire_bytes_out_total",
		} {
			if strings.HasPrefix(line, fam) {
				fmt.Println("  " + line)
				shown++
			}
		}
	}
	fmt.Printf("  ... (%d lines total)\n\n", strings.Count(body, "\n"))
	if shown == 0 {
		return fmt.Errorf("scrape returned no hetgc samples")
	}

	// And the structured event journal.
	fmt.Println("curl " + srv.URL() + "/debug/events:")
	body, err = get(srv.URL() + "/debug/events")
	if err != nil {
		return err
	}
	var events []hetgc.TelemetryEvent
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		return err
	}
	for _, ev := range events {
		fmt.Printf("  #%-3d %-7s iter=%d member=%d %s\n", ev.Seq, ev.Kind, ev.Iter, ev.Member, ev.Detail)
	}
	return nil
}

// get fetches a URL and returns its body.
func get(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
