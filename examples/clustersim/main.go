// Clustersim: reproduce the paper's headline experiment (Fig. 2a) on the
// simulated Cluster-A — four schemes under an injected-delay sweep — and
// print the resource-usage comparison of Fig. 5.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/hetgc/hetgc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl := hetgc.ClusterA()
	fmt.Printf("cluster %s: %d workers, total rate %.2f datasets/s\n\n",
		cl.Name, cl.M(), cl.TotalThroughput())

	rows, err := hetgc.RunFig2Sweep(hetgc.DelaySweepConfig{
		Cluster:        cl,
		S:              1,
		Delays:         []float64{0, 2, 4, 6, 8, math.Inf(1)},
		Iterations:     60,
		FluctuationStd: 0.05,
		Seed:           7,
	})
	if err != nil {
		return err
	}
	fmt.Println("Fig. 2a — avg time per iteration (s) vs injected straggler delay:")
	fmt.Print(hetgc.DelayTable(rows).String())

	speedup, err := hetgc.SpeedupVsCyclic(rows[len(rows)-1])
	if err != nil {
		return err
	}
	fmt.Printf("\nat the fault point, heter-aware is %.2fx faster than cyclic coding\n", speedup)

	usage, err := hetgc.RunFig3Clusters(hetgc.ClusterSweepConfig{
		Clusters:       []*hetgc.Cluster{cl},
		S:              1,
		Iterations:     60,
		TransientProb:  0.02,
		TransientMean:  2,
		FluctuationStd: 0.05,
		CommOverhead:   0.3,
		Seed:           7,
	})
	if err != nil {
		return err
	}
	fmt.Println("\nFig. 5 — computing-resource usage:")
	fmt.Print(hetgc.UsageTable(usage).String())
	return nil
}
