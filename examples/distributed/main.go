// Distributed: train a softmax classifier with real master/worker processes
// talking gradient-coded BSP over TCP loopback. Worker 0 is artificially
// slowed every iteration; the coded master decodes without waiting for it.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/hetgc/hetgc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	throughputs := []float64{1, 2, 3, 4, 4}
	const k, s, iters = 7, 1, 25
	rng := hetgc.NewRand(3)

	strategy, err := hetgc.NewGroupBased(throughputs, k, s, rng)
	if err != nil {
		return err
	}
	data, err := hetgc.GaussianMixture(k*30, 6, 3, 3, rng)
	if err != nil {
		return err
	}
	parts, err := data.Split(k)
	if err != nil {
		return err
	}
	model := &hetgc.Softmax{InputDim: 6, NumClasses: 3}

	master, err := hetgc.NewMaster(hetgc.MasterConfig{
		Strategy:      strategy,
		Model:         model,
		Optimizer:     &hetgc.SGD{LR: 0.5, Momentum: 0.5},
		InitialParams: model.InitParams(nil),
		Iterations:    iters,
		SampleCount:   data.N(),
		IterTimeout:   10 * time.Second,
		LossEvery:     5,
		LossFn:        func(p []float64) (float64, error) { return hetgc.MeanLoss(model, p, data) },
	}, "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("master on %s, scheme %v with groups %v\n",
		master.Addr(), strategy.Kind(), strategy.Groups())

	var wg sync.WaitGroup
	for i := 0; i < strategy.M(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := hetgc.WorkerConfig{
				Model:         model,
				PartitionData: func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
			}
			if i == 0 {
				cfg.Delay = func(int) time.Duration { return 150 * time.Millisecond }
			}
			w, err := hetgc.DialWorker(master.Addr(), cfg)
			if err != nil {
				return
			}
			_ = w.Run() // exits on shutdown; races at teardown are benign
		}(i)
	}
	if err := master.WaitForWorkers(10 * time.Second); err != nil {
		return err
	}
	res, err := master.Run()
	wg.Wait()
	if err != nil {
		return err
	}
	fmt.Printf("ran %d iterations, mean %.1fms (worker 0 was 150ms late each time)\n",
		res.Summary.Count, res.Summary.Mean*1e3)
	fmt.Println("loss curve:")
	for _, p := range res.Curve.Points {
		fmt.Printf("  t=%6.3fs  loss=%.4f\n", p.X, p.Y)
	}
	return nil
}
