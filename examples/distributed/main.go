// Distributed: a true multi-process cluster on one machine, driven by the
// real gcroot/gcworker binaries. The example builds the binaries, writes the
// roster file every cluster member shares, then spawns one training root,
// one warm standby and four workers as separate OS processes — the workers
// fetch their training shards from the root over the wire, so nothing but
// the roster and the (seed, k) pair is configured on them.
//
// Halfway through training the root is SIGKILLed, cold. The standby's lease
// watch notices, promotes, resumes from the shared checkpoint directory and
// finishes the run — and because the planner is pinned, the final parameter
// digest it prints is bit-identical to what the uninterrupted run would have
// produced.
//
// Run from the repository root:
//
//	go run ./examples/distributed
package main

import (
	"bufio"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"github.com/hetgc/hetgc"
)

const (
	k, s, iters = 8, 0, 30
	seed        = 5
	workers     = 4
	killAfter   = 10 // durable iteration after which the root dies
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	work, err := os.MkdirTemp("", "hetgc-distributed-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	fmt.Println("building gcroot and gcworker ...")
	build := exec.Command("go", "build", "-o", work+string(os.PathSeparator), "./cmd/gcroot", "./cmd/gcworker")
	if out, err := build.CombinedOutput(); err != nil {
		return fmt.Errorf("go build (run this example from the repository root): %v\n%s", err, out)
	}

	rootAddr, err := freeAddr()
	if err != nil {
		return err
	}
	standbyAddr, err := freeAddr()
	if err != nil {
		return err
	}
	roster := filepath.Join(work, "cluster.toml")
	body := fmt.Sprintf("root = %q\nstandbys = [%q]\nworkers = %d\n", rootAddr, standbyAddr, workers)
	if err := os.WriteFile(roster, []byte(body), 0o644); err != nil {
		return err
	}
	fmt.Printf("cluster.toml — the one file every machine shares:\n%s\n", body)

	ckpt := filepath.Join(work, "ckpt")
	shared := []string{
		"-roster", roster,
		"-k", fmt.Sprint(k), "-s", fmt.Sprint(s),
		"-iters", fmt.Sprint(iters), "-seed", fmt.Sprint(seed),
		"-pin-estimates",
		"-checkpoint-dir", ckpt, "-snapshot-every", "4", "-lease-ttl", "1s",
	}
	root, err := spawn("root   ", filepath.Join(work, "gcroot"), shared...)
	if err != nil {
		return err
	}
	standby, err := spawn("standby", filepath.Join(work, "gcroot"),
		append(shared, "-role", "standby", "-listen", standbyAddr)...)
	if err != nil {
		return err
	}
	var workerProcs []*exec.Cmd
	for i := 0; i < workers; i++ {
		w, err := spawn(fmt.Sprintf("work-%d ", i), filepath.Join(work, "gcworker"),
			"-roster", roster,
			"-k", fmt.Sprint(k), "-seed", fmt.Sprint(seed),
			"-slow-ms", "75",
			"-checkpoint-dir", ckpt)
		if err != nil {
			return err
		}
		workerProcs = append(workerProcs, w)
	}
	defer func() {
		for _, p := range append(workerProcs, root, standby) {
			if p.Process != nil {
				_ = p.Process.Signal(syscall.SIGKILL)
			}
		}
	}()

	// Kill the root cold — no shutdown handshake — once iteration killAfter
	// is durable in the shared checkpoint directory.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st, err := hetgc.RecoverCheckpoint(ckpt); err == nil && st.LastIter >= killAfter {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("root never reached durable iteration %d", killAfter)
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("\n*** SIGKILL the root (durable iteration >= %d); the standby takes over ***\n\n", killAfter)
	if err := root.Process.Signal(syscall.SIGKILL); err != nil {
		return err
	}
	_ = root.Wait()

	// The standby promotes, finishes the run and prints the params digest —
	// run the cluster again without the kill to see the same digest.
	done := make(chan error, 1)
	go func() { done <- standby.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			return fmt.Errorf("standby: %v", err)
		}
	case <-time.After(120 * time.Second):
		return fmt.Errorf("standby never finished")
	}
	for _, w := range workerProcs {
		_ = w.Wait()
	}
	fmt.Println("\ncluster run complete: the promoted standby finished the deposed root's job")
	return nil
}

// spawn starts a binary with its output line-prefixed onto ours. The child
// writes into an OS pipe whose read side a goroutine drains; the parent
// drops its write end right after the fork so the drain sees EOF the moment
// the child exits.
func spawn(prefix, bin string, args ...string) (*exec.Cmd, error) {
	pr, pw, err := os.Pipe()
	if err != nil {
		return nil, err
	}
	cmd := exec.Command(bin, args...)
	cmd.Stdout = pw
	cmd.Stderr = pw
	if err := cmd.Start(); err != nil {
		pr.Close()
		pw.Close()
		return nil, fmt.Errorf("start %s: %w", bin, err)
	}
	pw.Close()
	go func() {
		defer pr.Close()
		sc := bufio.NewScanner(pr)
		for sc.Scan() {
			fmt.Printf("[%s] %s\n", prefix, sc.Text())
		}
	}()
	return cmd, nil
}

// freeAddr reserves a loopback port and releases it for a child to bind.
func freeAddr() (string, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	defer l.Close()
	return l.Addr().String(), nil
}
