// Quickstart: build a heterogeneity-aware gradient code for five workers of
// unequal speed, encode per-worker gradients, kill a straggler, and decode
// the exact aggregated gradient from the survivors.
package main

import (
	"fmt"
	"log"

	"github.com/hetgc/hetgc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Five workers with relative speeds 1,2,3,4,4 (Example 1 of the paper):
	// 7 data partitions, each replicated twice, tolerating s=1 straggler.
	throughputs := []float64{1, 2, 3, 4, 4}
	const k, s = 7, 1
	rng := hetgc.NewRand(42)

	strategy, err := hetgc.NewHeterAware(throughputs, k, s, rng)
	if err != nil {
		return err
	}
	fmt.Printf("built %v code: m=%d workers, k=%d partitions, s=%d straggler budget\n",
		strategy.Kind(), strategy.M(), strategy.K(), strategy.S())
	alloc := strategy.Allocation()
	for w := 0; w < strategy.M(); w++ {
		fmt.Printf("  worker %d computes partitions %v (load ∝ speed %.0f)\n",
			w, alloc.Parts[w], throughputs[w])
	}

	// Pretend partial gradients: partition j's gradient is the 2-vector
	// [j, 2j]. The true aggregate is the sum over all partitions.
	partials := make([]hetgc.Gradient, k)
	truth := hetgc.Gradient{0, 0}
	for j := range partials {
		partials[j] = hetgc.Gradient{float64(j), float64(2 * j)}
		truth[0] += partials[j][0]
		truth[1] += partials[j][1]
	}

	// Each worker encodes the partial gradients it holds with its row of B.
	coded := make([]hetgc.Gradient, strategy.M())
	for w := 0; w < strategy.M(); w++ {
		row := strategy.Row(w)
		var mine []hetgc.Gradient
		var coeffs []float64
		for _, p := range alloc.Parts[w] {
			mine = append(mine, partials[p])
			coeffs = append(coeffs, row[p])
		}
		coded[w], err = hetgc.EncodeGradient(coeffs, mine)
		if err != nil {
			return err
		}
	}

	// Worker 4 (one of the fastest!) crashes. Decode from the rest.
	const straggler = 4
	alive := hetgc.AliveFromStragglers(strategy.M(), []int{straggler})
	decodeCoeffs, err := strategy.Decode(alive)
	if err != nil {
		return err
	}
	coded[straggler] = nil // its result never arrived
	got, err := hetgc.CombineGradients(decodeCoeffs, coded, 2)
	if err != nil {
		return err
	}
	fmt.Printf("\nworker %d crashed; decoded aggregate = [%.4f %.4f], truth = [%.0f %.0f]\n",
		straggler, got[0], got[1], truth[0], truth[1])
	return nil
}
