// Adaptive: the estimate → allocate → re-code loop. The planner starts with
// wrong (uniform) throughput guesses on a strongly heterogeneous cluster,
// observes one epoch of per-worker timings, detects the load imbalance and
// rebuilds the coding strategy — cutting the simulated iteration time.
package main

import (
	"fmt"
	"log"

	"github.com/hetgc/hetgc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// True speeds (partitions/second): an 18x spread the operator does not
	// know yet.
	truth := []float64{0.5, 1, 2, 4, 4.5, 9}
	const k, s = 21, 1
	rng := hetgc.NewRand(11)

	pl, err := hetgc.NewPlanner(hetgc.PlannerConfig{
		K: k, S: s,
		MinObservations: 1,
		ReplanThreshold: 0.15,
	}, []float64{1, 1, 1, 1, 1, 1}, rng) // uniform guess
	if err != nil {
		return err
	}

	simulate := func(label string, seed int64) (float64, error) {
		rates := make([]float64, len(truth))
		for i, v := range truth {
			rates[i] = v / float64(k) // datasets/second
		}
		// One random transient straggler per iteration: the setting the
		// s=1 code is built for (without stragglers, a lucky misallocation
		// can win the average case — Theorem 5 is about the worst case).
		srng := hetgc.NewRand(seed)
		res, err := hetgc.Simulate(hetgc.SimConfig{
			Strategy:    pl.Strategy(),
			Throughputs: rates,
			Injector:    hetgc.FixedStragglers{Count: 1, Delay: 10, Rng: srng},
			Iterations:  50,
		})
		if err != nil {
			return 0, err
		}
		fmt.Printf("%-22s loads=%v  avg iteration %.3fs\n",
			label, pl.Strategy().Allocation().Loads, res.AvgIterTime())
		return res.AvgIterTime(), nil
	}

	before, err := simulate("epoch 0 (uniform plan)", 101)
	if err != nil {
		return err
	}

	// One epoch of observations: each worker reports how long its assigned
	// load took at its true speed.
	loads := pl.Strategy().Allocation().Loads
	for w, c := range truth {
		if loads[w] == 0 {
			continue
		}
		if err := pl.Observe(w, loads[w], float64(loads[w])/c); err != nil {
			return err
		}
	}
	fmt.Printf("predicted imbalance after epoch 0: %.2fx optimal\n", pl.Imbalance())

	replanned, err := pl.MaybeReplan(rng)
	if err != nil {
		return err
	}
	if !replanned {
		return fmt.Errorf("expected a replan")
	}
	after, err := simulate("epoch 1 (re-coded plan)", 101)
	if err != nil {
		return err
	}
	fmt.Printf("\nadaptive re-coding cut iteration time by %.1fx\n", before/after)
	return nil
}
