// Elastic: the live estimate → replan → migrate loop on a real loopback TCP
// cluster. Four workers train a softmax model; mid-training two of them slow
// down 10x and a fifth worker joins. The control plane sees the drift in the
// workers' telemetry, rebuilds the coding strategy over the live membership
// and migrates every worker to the new plan with an epoch-versioned atomic
// handover — iteration times recover instead of staying hostage to the slow
// machines. A deterministic, socket-free replay of the same scenario
// (hetgc.SimulateElastic) is printed alongside.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/hetgc/hetgc"
)

const (
	k, s      = 8, 1
	iters     = 30
	slowAt    = 6 // iteration at which workers 1 and 3 slow 10x
	fastDelay = 2 * time.Millisecond
	slowDelay = 20 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := hetgc.NewRand(1)
	data, err := hetgc.GaussianMixture(k*20, 4, 3, 3, rng)
	if err != nil {
		return err
	}
	parts, err := data.Split(k)
	if err != nil {
		return err
	}
	model := &hetgc.Softmax{InputDim: 4, NumClasses: 3}

	master, err := hetgc.NewElasticMaster(hetgc.ElasticConfig{
		K: k, S: s,
		Model:           model,
		Optimizer:       &hetgc.SGD{LR: 0.5},
		InitialParams:   model.InitParams(nil),
		Iterations:      iters,
		SampleCount:     data.N(),
		IterTimeout:     10 * time.Second,
		MinWorkers:      4,
		Alpha:           0.5,
		MinObservations: 2,
		CooldownIters:   3,
		DriftThreshold:  0.5,
		Seed:            1,
	}, "127.0.0.1:0")
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	var progress sync.Map // latest iteration seen by worker goroutine 0
	progress.Store("iter", 0)
	for i := 0; i < 4; i++ {
		i := i
		// Workers 0 and 2 (dialled sequentially, so slots 0 and 2 of the
		// initial uniform plan) slow down 10x at iteration slowAt.
		perPart := func(iter int) time.Duration {
			if i == 0 {
				progress.Store("iter", iter)
			}
			if i%2 == 0 && iter >= slowAt {
				return slowDelay
			}
			return fastDelay
		}
		w, err := hetgc.DialElasticWorker(master.Addr(), hetgc.ElasticWorkerConfig{
			Model:             model,
			PartitionData:     func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
			DelayPerPartition: perPart,
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run()
		}()
	}
	// A fifth worker joins once the slowdown is under way.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			v, _ := progress.Load("iter")
			if v.(int) >= slowAt+4 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		w, err := hetgc.DialElasticWorker(master.Addr(), hetgc.ElasticWorkerConfig{
			Model:             model,
			PartitionData:     func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
			DelayPerPartition: func(int) time.Duration { return fastDelay },
		})
		if err != nil {
			return
		}
		fmt.Printf("worker %d joined mid-training\n", w.ID())
		_ = w.Run()
	}()

	if err := master.WaitForWorkers(5 * time.Second); err != nil {
		return err
	}
	res, err := master.Run()
	wg.Wait()
	if err != nil {
		return err
	}

	fmt.Println("\nlive elastic run:")
	for _, ev := range res.Replans {
		fmt.Printf("  iter %2d  epoch %d  replan (%s, %d workers)\n", ev.Iter, ev.Epoch, ev.Reason, ev.Members)
	}
	phase := func(from, to int) float64 {
		sum := 0.0
		for _, t := range res.IterTimes[from:to] {
			sum += t
		}
		return sum / float64(to-from) * 1000
	}
	lastEpoch := res.Epochs[len(res.Epochs)-1]
	migrated := len(res.Epochs)
	for i, e := range res.Epochs {
		if e == lastEpoch {
			migrated = i
			break
		}
	}
	fmt.Printf("  mean iteration before slowdown: %.1fms\n", phase(0, slowAt))
	if migrated < iters {
		fmt.Printf("  mean iteration after final migration: %.1fms (epoch %d)\n", phase(migrated, iters), lastEpoch)
	}
	fmt.Printf("  stale-epoch uploads fenced: %d, telemetry samples: %d, joins: %d\n",
		res.StaleEpochRejected, res.TelemetrySamples, res.Joins)

	// The same scenario, replayed deterministically without sockets.
	simRes, err := hetgc.SimulateElastic(hetgc.ElasticSimConfig{
		K: k, S: s,
		InitialRates: []float64{500, 500, 500, 500},
		Events: []hetgc.ChurnEvent{
			{Iter: slowAt, Kind: hetgc.ChurnSpeedStep, Member: 1, Factor: 0.1},
			{Iter: slowAt, Kind: hetgc.ChurnSpeedStep, Member: 3, Factor: 0.1},
			{Iter: slowAt + 4, Kind: hetgc.ChurnJoin, Rate: 500},
		},
		Iterations:      iters,
		Alpha:           0.5,
		DriftThreshold:  0.5,
		MinObservations: 2,
		CooldownIters:   3,
		Seed:            7,
	})
	if err != nil {
		return err
	}
	fmt.Println("\ndeterministic churn simulation of the same scenario:")
	for _, ev := range simRes.Replans {
		fmt.Printf("  iter %2d  epoch %d  replan (%s, %d workers)\n", ev.Iter, ev.Epoch, ev.Reason, ev.Members)
	}
	fmt.Printf("  mean iteration: %.2fms (min %.2f, max %.2f)\n",
		simRes.Summary.Mean*1000, simRes.Summary.Min*1000, simRes.Summary.Max*1000)
	return nil
}
