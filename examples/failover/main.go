// Failover: warm-standby root takeover on a live loopback cluster. A root
// holding the HA lease checkpoints while four workers train; a standby
// process tails the same directory. Mid-training the root is wedged — it
// keeps computing but stops renewing its lease, the failure mode of a long
// GC pause or a network partition, indistinguishable from death to everyone
// else. The lease lapses, the standby promotes, and a successor root
// resumes from the directory at the next lease generation. The wedged root
// is now a zombie: its next journal write is rejected typed (ErrFenced,
// naming the generation that deposed it) and it exits without corrupting
// anything, while the workers defect to the successor and training runs to
// completion. A cold kill behaves identically, except nobody is left to be
// fenced.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetgc/hetgc"
)

const (
	k, s       = 8, 1
	iters      = 60
	numWorkers = 4
	wedgeAfter = 12 // wedge the root once this iteration is durable
	leaseTTL   = 400 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "hetgc-failover-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	rng := hetgc.NewRand(1)
	data, err := hetgc.GaussianMixture(k*20, 4, 3, 3, rng)
	if err != nil {
		return err
	}
	parts, err := data.Split(k)
	if err != nil {
		return err
	}
	model := &hetgc.Softmax{InputDim: 4, NumClasses: 3}
	config := func(resume bool, holder string) hetgc.ElasticConfig {
		return hetgc.ElasticConfig{
			K: k, S: s,
			Model:         model,
			Optimizer:     &hetgc.SGD{LR: 0.5, Momentum: 0.5},
			InitialParams: model.InitParams(nil),
			Iterations:    iters,
			SampleCount:   data.N(),
			IterTimeout:   10 * time.Second,
			MinWorkers:    numWorkers,
			Seed:          1,
			LossEvery:     10,
			LossFn: func(p []float64) (float64, error) {
				return hetgc.MeanLoss(model, p, data)
			},
			CheckpointDir: dir,
			SnapshotEvery: 4,
			Resume:        resume,
			LeaseTTL:      leaseTTL,
			Holder:        holder,
		}
	}

	// The generation-1 root: checkpoints into dir and holds its lease.
	root, err := hetgc.NewElasticMaster(config(false, "root-a"), "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("root-a on %s: lease generation %d over %s (ttl %s)\n",
		root.Addr(), root.RootGen(), dir, leaseTTL)

	// The warm standby tails the same directory. Run blocks until the lease
	// lapses, then hands over the deposed token and the freshest durable
	// state it has been tailing.
	promc := make(chan *hetgc.Promotion, 1)
	standbyErr := make(chan error, 1)
	go func() {
		prom, err := hetgc.NewStandby(hetgc.StandbyConfig{Dir: dir}).Run(nil)
		promc <- prom
		standbyErr <- err
	}()

	// Workers outlive any single root: each re-dials the current address
	// with its old member ID after a connection loss.
	var addr atomic.Value
	addr.Store(root.Addr())
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < numWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resumeID := 0
			for !stop.Load() {
				w, err := hetgc.DialElasticWorker(addr.Load().(string), hetgc.ElasticWorkerConfig{
					Model:         model,
					PartitionData: func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
					Delay:         func(int) time.Duration { return 25 * time.Millisecond },
					ResumeID:      resumeID,
					DialTimeout:   time.Second,
				})
				if err != nil {
					time.Sleep(20 * time.Millisecond)
					continue
				}
				resumeID = w.ID()
				if w.Run() == nil {
					return // clean shutdown
				}
				time.Sleep(20 * time.Millisecond)
			}
		}()
	}

	if err := root.WaitForWorkers(10 * time.Second); err != nil {
		return err
	}
	rootErr := make(chan error, 1)
	go func() {
		_, err := root.Run()
		rootErr <- err
	}()

	// Wedge the root once iteration wedgeAfter is durable: it keeps
	// training, but its lease silently lapses.
	for {
		st, err := hetgc.RecoverCheckpoint(dir)
		if err == nil && st.LastIter >= wedgeAfter {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	root.SuspendLeaseRenewal()
	fmt.Printf("root-a WEDGED after iteration %d: still training, no longer renewing\n", wedgeAfter)

	// The standby notices the lapse and promotes.
	prom := <-promc
	if err := <-standbyErr; err != nil {
		return err
	}
	fmt.Printf("standby PROMOTED: generation %d (%q) lapsed; freshest durable iteration %d\n",
		prom.Deposed.Gen, prom.Deposed.Holder, prom.State.LastIter)

	// The successor resumes from the directory at generation 2. The zombie
	// is still running — the lease fence is what keeps this safe.
	successor, err := hetgc.NewElasticMaster(config(true, "root-b"), "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("root-b on %s: lease generation %d, resuming at iteration %d\n",
		successor.Addr(), successor.RootGen(), successor.StartIter())
	addr.Store(successor.Addr())

	// The zombie's next journal write is rejected by the generation fence:
	// a typed error naming its usurper, not a corrupted directory.
	zerr := <-rootErr
	if zerr == nil {
		return errors.New("the deposed root finished cleanly — fencing failed")
	}
	fmt.Printf("root-a FENCED (ErrFenced: %v):\n  %v\n", errors.Is(zerr, hetgc.ErrFenced), zerr)
	root.Close() // frees any worker still attached to the zombie

	if err := successor.WaitForWorkers(10 * time.Second); err != nil {
		return err
	}
	res, err := successor.Run()
	if err != nil {
		return err
	}
	stop.Store(true)
	wg.Wait()

	fmt.Printf("root-b finished iterations %d..%d under generation %d; rejoins: %d, stale-generation uploads fenced: %d\n",
		res.StartIter, iters, res.RootGen, res.Joins, res.FencedUploads)
	fmt.Println("loss curve across the failover (time s, mean loss):")
	for _, p := range res.Curve.Points {
		fmt.Printf("  %8.3f  %.4f\n", p.X, p.Y)
	}
	return nil
}
