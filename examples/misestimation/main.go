// Misestimation: the §V motivation for the group-based scheme. Strategies
// are built from *noisy* throughput estimates but run against the true
// speeds; as the estimation error grows, pure heter-aware decoding (which
// must hear from m−s workers) degrades faster than group-based decoding
// (which finishes as soon as any worker group completes).
package main

import (
	"fmt"
	"log"

	"github.com/hetgc/hetgc"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cl := hetgc.ClusterA()
	fmt.Printf("cluster %s (%d workers), s=1, strategies built from noisy estimates\n\n",
		cl.Name, cl.M())

	rows, err := hetgc.RunMisestimation(hetgc.MisestimationConfig{
		Cluster:    cl,
		S:          1,
		Epsilons:   []float64{0, 0.1, 0.2, 0.3, 0.5},
		Iterations: 50,
		Trials:     5,
		Seed:       99,
	})
	if err != nil {
		return err
	}
	fmt.Println("avg iteration time (s) vs relative estimation error eps:")
	fmt.Print(hetgc.MisestimationTable(rows).String())

	// Show what a sampling estimator would have produced.
	fmt.Println("\nexample: estimating a worker's speed by sampling 5 noisy iterations")
	var sampler hetgc.ThroughputSampler
	rng := hetgc.NewRand(5)
	const trueRate = 0.08 // datasets/second
	for i := 0; i < 5; i++ {
		elapsed := (1.0 / trueRate) * (0.9 + 0.2*rng.Float64())
		if err := sampler.Observe(1, elapsed); err != nil {
			return err
		}
	}
	est, err := sampler.Estimate()
	if err != nil {
		return err
	}
	fmt.Printf("true rate %.4f, sampled estimate %.4f (%.1f%% error)\n",
		trueRate, est, 100*(est-trueRate)/trueRate)
	return nil
}
