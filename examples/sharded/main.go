// Sharded: the hierarchical group-sharded runtime live on loopback TCP.
// Twelve workers are partitioned into four coding groups of three; each
// group master admits its own workers, decodes its group's gradient sum
// locally and streams it to the root as one coalesced batch of
// length-prefixed chunks; the root reduces the four group sums along a
// fan-in-2 tree and steps the optimizer. Mid-run one worker of group 0
// slows down 12x: its group's control plane detects the drift in telemetry
// and migrates *that group alone* — the other three groups finish the whole
// run on their initial epoch. A deterministic flat-vs-sharded comparison at
// 200 simulated workers (hetgc.SimulateSharded) is printed alongside.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/hetgc/hetgc"
)

const (
	k, s      = 16, 1
	m         = 12
	iters     = 24
	slowAt    = 6 // iteration at which one group-0 worker slows 12x
	fastDelay = 2 * time.Millisecond
	slowDelay = 24 * time.Millisecond
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := hetgc.NewRand(1)
	data, err := hetgc.GaussianMixture(k*20, 4, 3, 3, rng)
	if err != nil {
		return err
	}
	parts, err := data.Split(k)
	if err != nil {
		return err
	}
	model := &hetgc.Softmax{InputDim: 4, NumClasses: 3}

	throughputs := make([]float64, m)
	for i := range throughputs {
		throughputs[i] = 500 // ~2ms per partition
	}
	cfg := hetgc.ShardedConfig{
		K: k, S: s, GroupSize: 3, FanIn: 2,
		Throughputs:     throughputs,
		Model:           model,
		Optimizer:       &hetgc.SGD{LR: 0.5},
		InitialParams:   model.InitParams(nil),
		Iterations:      iters,
		SampleCount:     data.N(),
		IterTimeout:     5 * time.Second,
		LossEvery:       4,
		LossFn:          func(p []float64) (float64, error) { return hetgc.MeanLoss(model, p, data) },
		Alpha:           0.7,
		DriftThreshold:  0.5,
		MinObservations: 2,
		CooldownIters:   2,
		ChunkLen:        8, // small model: force multi-chunk batched uplinks anyway
		Seed:            1,
	}

	var wg sync.WaitGroup
	res, err := hetgc.RunSharded(cfg, "127.0.0.1:0", 5*time.Second, func(root *hetgc.ShardedRoot) {
		plan := root.Plan()
		addrs := root.GroupAddrs()
		fmt.Printf("hierarchy: %d workers -> %d groups -> fan-in-%d tree (depth %d) -> root\n",
			m, plan.NumGroups(), plan.Tree.FanIn, plan.Tree.Depth())
		for g, grp := range plan.Groups {
			fmt.Printf("  group %d: workers %v own partitions %v at %s\n",
				g, grp.Workers, grp.Parts, addrs[g])
		}
		for g, grp := range plan.Groups {
			for idx := 0; idx < len(grp.Workers); idx++ {
				g, idx := g, idx
				w, err := hetgc.DialElasticWorker(addrs[g], hetgc.ElasticWorkerConfig{
					Model:         model,
					PartitionData: func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
					DelayPerPartition: func(iter int) time.Duration {
						if g == 0 && idx == 0 && iter >= slowAt {
							return slowDelay
						}
						return fastDelay
					},
				})
				if err != nil {
					log.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = w.Run()
				}()
			}
		}
	})
	if err != nil {
		return err
	}
	wg.Wait()

	fmt.Printf("\ntrained %d iterations, mean %.1fms/iter; %d group uploads, %d of them coalesced batches\n",
		len(res.IterTimes), res.Summary.Mean*1000, res.GroupUploads, res.BatchedFrames)
	for _, gs := range res.Groups {
		final := gs.Epochs[len(gs.Epochs)-1]
		fmt.Printf("group %d: final epoch %d, %d replans, %d stale-epoch uploads fenced\n",
			gs.Group, final, len(gs.Replans), gs.StaleEpochRejected)
		for _, ev := range gs.Replans {
			if ev.Reason != "initial" {
				fmt.Printf("  iter %2d  epoch %d  %-5s (%d workers)\n", ev.Iter, ev.Epoch, ev.Reason, ev.Members)
			}
		}
	}
	if len(res.Curve.Points) > 0 {
		first := res.Curve.Points[0].Y
		last := res.Curve.Points[len(res.Curve.Points)-1].Y
		fmt.Printf("loss %.4f -> %.4f\n", first, last)
	}

	// The deterministic co-simulation: flat vs sharded at 200 workers.
	fmt.Println("\nco-simulation, 200 workers (2ms/upload ingest, 5ms/hop):")
	rates := make([]float64, 200)
	for i := range rates {
		rates[i] = 100
	}
	simCfg := hetgc.ShardedSimConfig{
		K: 400, S: 1, GroupSize: 10, FanIn: 4,
		Rates: rates, Iterations: 25,
		IngestSeconds: 0.002, HopSeconds: 0.005, Seed: 7,
	}
	sh, err := hetgc.SimulateSharded(simCfg)
	if err != nil {
		return err
	}
	flatCfg := simCfg
	flatCfg.GroupSize = 200
	fl, err := hetgc.SimulateSharded(flatCfg)
	if err != nil {
		return err
	}
	fmt.Printf("flat %0.1fms/iter vs sharded %0.1fms/iter: %.1fx faster\n",
		fl.Summary.Mean*1000, sh.Summary.Mean*1000, fl.Summary.Mean/sh.Summary.Mean)
	return nil
}
