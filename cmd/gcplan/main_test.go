package main

import (
	"strings"
	"testing"
)

func TestRunWithThroughputs(t *testing.T) {
	for _, scheme := range []string{"heter", "group", "cyclic", "naive"} {
		args := []string{"-throughputs", "1,2,3,4,4", "-k", "7", "-s", "1", "-scheme", scheme}
		if err := run(args); err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
	}
}

func TestRunFractionalRepetition(t *testing.T) {
	if err := run([]string{"-throughputs", "1,1,1,1", "-s", "1", "-scheme", "fracrep"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCluster(t *testing.T) {
	if err := run([]string{"-cluster", "A", "-s", "1", "-scheme", "heter"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                      // neither cluster nor throughputs
		{"-cluster", "Z"},                       // unknown cluster
		{"-throughputs", "1,x"},                 // bad float
		{"-throughputs", "1,1", "-scheme", "?"}, // unknown scheme
	}
	for i, args := range cases {
		if err := run(args); err == nil {
			t.Fatalf("case %d (%v): expected error", i, args)
		}
	}
}

func TestResolveThroughputs(t *testing.T) {
	ths, err := resolveThroughputs("", " 1, 2 ,3 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ths) != 3 || ths[1] != 2 {
		t.Fatalf("ths = %v", ths)
	}
	for _, cl := range []string{"a", "B", "c", "D"} {
		ths, err := resolveThroughputs(cl, "")
		if err != nil || len(ths) == 0 {
			t.Fatalf("cluster %s: %v", cl, err)
		}
	}
}

func TestAutoK(t *testing.T) {
	// Integral throughputs summing to 14, s=1 → k = 7.
	if k := autoK([]float64{1, 2, 3, 4, 4}, 1, 5); k != 7 {
		t.Fatalf("autoK = %d, want 7", k)
	}
	// Non-integral: falls back to 2m.
	if k := autoK([]float64{1.5, 2.5}, 1, 2); k != 4 {
		t.Fatalf("autoK = %d, want 4", k)
	}
}

func TestUnknownFlag(t *testing.T) {
	err := run([]string{"-nope"})
	if err == nil || !strings.Contains(err.Error(), "flag") {
		t.Fatalf("err = %v", err)
	}
}
