// Command gcplan computes and prints a gradient coding plan: the
// data-partition allocation, the coding matrix B, the decode groups (for the
// group-based scheme) and a robustness verification.
//
// Examples:
//
//	gcplan -throughputs 1,2,3,4,4 -k 7 -s 1 -scheme heter
//	gcplan -cluster A -s 1 -scheme group
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/hetgc/hetgc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gcplan:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gcplan", flag.ContinueOnError)
	var (
		throughputs = fs.String("throughputs", "", "comma-separated worker throughputs (e.g. 1,2,3,4,4)")
		clusterName = fs.String("cluster", "", "Table II cluster: A, B, C or D (overrides -throughputs)")
		k           = fs.Int("k", 0, "number of data partitions (0 = auto)")
		s           = fs.Int("s", 1, "straggler budget")
		scheme      = fs.String("scheme", "heter", "scheme: heter, group, cyclic, naive, fracrep")
		seed        = fs.Int64("seed", 1, "random seed for code construction")
		showB       = fs.Bool("matrix", true, "print the coding matrix B")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ths, err := resolveThroughputs(*clusterName, *throughputs)
	if err != nil {
		return err
	}
	m := len(ths)
	if *k <= 0 {
		*k = autoK(ths, *s, m)
	}
	rng := hetgc.NewRand(*seed)

	var st *hetgc.Strategy
	switch *scheme {
	case "heter":
		st, err = hetgc.NewHeterAware(ths, *k, *s, rng)
	case "group":
		st, err = hetgc.NewGroupBased(ths, *k, *s, rng)
	case "cyclic":
		st, err = hetgc.NewCyclic(m, *s, rng)
	case "naive":
		st, err = hetgc.NewNaive(m)
	case "fracrep":
		st, err = hetgc.NewFractionalRepetition(m, *s)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	if err != nil {
		return err
	}

	fmt.Printf("scheme=%v m=%d k=%d s=%d\n\n", st.Kind(), st.M(), st.K(), st.S())
	alloc := st.Allocation()
	fmt.Println("allocation (worker: load partitions):")
	for w := 0; w < st.M(); w++ {
		fmt.Printf("  W%-3d n=%-4d %v\n", w, alloc.Loads[w], alloc.Parts[w])
	}
	if groups := st.Groups(); len(groups) > 0 {
		fmt.Println("\ndecode groups (each tiles the dataset):")
		for i, g := range groups {
			fmt.Printf("  G%d: %v\n", i+1, g)
		}
	}
	if *showB && st.K() <= 40 && st.M() <= 40 {
		fmt.Println("\ncoding matrix B:")
		fmt.Print(st.B().String())
	}
	if err := hetgc.VerifyRobustness(st, 200, rng); err != nil {
		return fmt.Errorf("robustness verification FAILED: %w", err)
	}
	fmt.Printf("\nrobustness: verified against straggler patterns of size %d\n", st.S())
	return nil
}

func resolveThroughputs(clusterName, list string) ([]float64, error) {
	switch strings.ToUpper(clusterName) {
	case "A":
		return hetgc.ClusterA().Throughputs(), nil
	case "B":
		return hetgc.ClusterB().Throughputs(), nil
	case "C":
		return hetgc.ClusterC().Throughputs(), nil
	case "D":
		return hetgc.ClusterD().Throughputs(), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown cluster %q (want A, B, C or D)", clusterName)
	}
	if list == "" {
		return nil, errors.New("one of -cluster or -throughputs is required")
	}
	parts := strings.Split(list, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad throughput %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// autoK picks a partition count that keeps proportional loads near-integral:
// the smallest multiple of Σc/(s+1) covering m, falling back to 2m.
func autoK(ths []float64, s, m int) int {
	var sum float64
	allInt := true
	for _, v := range ths {
		sum += v
		if v != float64(int(v)) {
			allInt = false
		}
	}
	if allInt {
		total := int(sum)
		if total%(s+1) == 0 {
			k := total / (s + 1)
			for k < m {
				k += total / (s + 1)
			}
			return k
		}
	}
	return 2 * m
}
