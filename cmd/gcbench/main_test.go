package main

import (
	"errors"
	"os"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/hetgc/hetgc/internal/grad
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeInto-8   	    7915	    160755 ns/op	       0 B/op	       0 allocs/op
BenchmarkSumInto        	    5000	    250000 ns/op
--- SKIP: BenchmarkDecodeGroupBroken
PASS
ok  	github.com/hetgc/hetgc/internal/grad	5.954s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkEncodeInto" {
		t.Fatalf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Package != "github.com/hetgc/hetgc/internal/grad" {
		t.Fatalf("package = %q", r.Package)
	}
	if r.Iterations != 7915 || r.NsPerOp != 160755 {
		t.Fatalf("result: %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields: %+v", r)
	}
	r2 := rep.Results[1]
	if r2.Name != "BenchmarkSumInto" || r2.BytesPerOp != nil {
		t.Fatalf("plain result: %+v", r2)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBroken abc def\nnot a line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("results = %+v", rep.Results)
	}
}

func TestRunEmitJSON(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"BenchmarkEncodeInto"`) {
		t.Fatalf("json output: %s", out.String())
	}
}

func TestCompareGate(t *testing.T) {
	pkg := "github.com/hetgc/hetgc/internal/grad"
	baseline := &Report{Results: []Result{
		{Name: "BenchmarkEncodeInto", Package: pkg, NsPerOp: 100},
		{Name: "BenchmarkDecodeFastPath", Package: pkg, NsPerOp: 50},
		{Name: "BenchmarkUnrelated", Package: pkg, NsPerOp: 10},
	}}

	var out strings.Builder
	// Within tolerance: +20% on one, improvement on the other.
	current := &Report{Results: []Result{
		{Name: "BenchmarkEncodeInto", Package: pkg, NsPerOp: 120},
		{Name: "BenchmarkDecodeFastPath", Package: pkg, NsPerOp: 40},
		{Name: "BenchmarkUnrelated", Package: pkg, NsPerOp: 1e9}, // ignored by filter
		{Name: "BenchmarkDecodeBrandNew", Package: pkg, NsPerOp: 5},
	}}
	if err := Compare(&out, current, baseline, "Decode|Encode", 0.25); err != nil {
		t.Fatalf("within tolerance: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "NEW") {
		t.Fatalf("new benchmark not reported:\n%s", out.String())
	}

	// Beyond tolerance must fail.
	out.Reset()
	current.Results[0].NsPerOp = 130
	if err := Compare(&out, current, baseline, "Decode|Encode", 0.25); err == nil {
		t.Fatalf("expected regression failure, output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}

	// No matches at all is an error (misconfigured gate).
	if err := Compare(&out, &Report{}, baseline, "Decode|Encode", 0.25); err == nil {
		t.Fatal("expected error when nothing matches the gate")
	}

	// Bad filter regexp surfaces.
	if err := Compare(&out, current, baseline, "(", 0.25); err == nil {
		t.Fatal("expected regexp error")
	}
}

// TestCompareGatesExtraMetrics: custom b.ReportMetric units recorded in the
// baseline are gated alongside ns/op — lower-is-better by default, with "/s"
// units treated as throughput (a drop regresses), and a vanished metric
// failing like a vanished benchmark.
func TestCompareGatesExtraMetrics(t *testing.T) {
	pkg := "github.com/hetgc/hetgc/internal/transport"
	mk := func(wire, rate float64) *Report {
		return &Report{Results: []Result{{
			Name: "BenchmarkBatchedUplink", Package: pkg, NsPerOp: 100,
			Extra: map[string]float64{"wire-B/iter": wire, "iter/s": rate},
		}}}
	}
	baseline := mk(8000, 50)

	var out strings.Builder
	// Within tolerance both ways.
	if err := Compare(&out, mk(9000, 45), baseline, "Uplink", 0.25); err != nil {
		t.Fatalf("within tolerance: %v\n%s", err, out.String())
	}

	// Bytes-per-iteration blowing up must fail (lower is better).
	out.Reset()
	if err := Compare(&out, mk(20000, 50), baseline, "Uplink", 0.25); err == nil {
		t.Fatalf("wire-bytes regression passed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "wire-B/iter") {
		t.Fatalf("regressed unit not named:\n%s", out.String())
	}

	// A throughput collapse must fail (higher is better for "/s" units) —
	// even though the value went DOWN.
	out.Reset()
	if err := Compare(&out, mk(8000, 10), baseline, "Uplink", 0.25); err == nil {
		t.Fatalf("iter/s collapse passed:\n%s", out.String())
	}

	// A throughput improvement must pass.
	out.Reset()
	if err := Compare(&out, mk(8000, 500), baseline, "Uplink", 0.25); err != nil {
		t.Fatalf("iter/s improvement failed: %v\n%s", err, out.String())
	}

	// A metric that vanished from the current run fails like a vanished
	// benchmark.
	out.Reset()
	current := mk(8000, 50)
	delete(current.Results[0].Extra, "iter/s")
	if err := Compare(&out, current, baseline, "Uplink", 0.25); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("vanished metric: err = %v\n%s", err, out.String())
	}
}

func TestRunCompareAgainstFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/base.json"
	base := `{"results":[{"name":"BenchmarkEncodeInto","package":"github.com/hetgc/hetgc/internal/grad","iterations":1,"ns_per_op":200000}]}`
	if err := writeFile(path, base); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"-compare", path}, strings.NewReader(sample), &out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "within 25% of baseline") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestRunCompareMissingBaseline: a missing baseline file is a distinct,
// actionable failure — the error names the remediation (make bench-baseline)
// and wraps ErrNoBaseline so main exits with code 2 instead of 1.
func TestRunCompareMissingBaseline(t *testing.T) {
	path := t.TempDir() + "/does-not-exist.json"
	var out strings.Builder
	err := run([]string{"-compare", path}, strings.NewReader(sample), &out)
	if !errors.Is(err, ErrNoBaseline) {
		t.Fatalf("err = %v, want ErrNoBaseline", err)
	}
	if !strings.Contains(err.Error(), "make bench-baseline") {
		t.Fatalf("error lacks remediation hint: %v", err)
	}
	if !strings.Contains(err.Error(), path) {
		t.Fatalf("error lacks the missing path: %v", err)
	}

	// Other read failures (e.g. the path is a directory) stay generic.
	err = run([]string{"-compare", t.TempDir()}, strings.NewReader(sample), &out)
	if err == nil || errors.Is(err, ErrNoBaseline) {
		t.Fatalf("directory baseline: err = %v, want a non-ErrNoBaseline failure", err)
	}
}

func TestCompareFlagsMissingBaselineBenches(t *testing.T) {
	pkg := "github.com/hetgc/hetgc/internal/core"
	baseline := &Report{Results: []Result{
		{Name: "BenchmarkDecodeFastPath", Package: pkg, NsPerOp: 50},
		{Name: "BenchmarkEncodeInto", Package: pkg, NsPerOp: 100},
	}}
	// The Decode benchmark vanished (e.g. its package stopped compiling):
	// the gate must fail rather than silently shrink.
	current := &Report{Results: []Result{
		{Name: "BenchmarkEncodeInto", Package: pkg, NsPerOp: 100},
	}}
	var out strings.Builder
	err := Compare(&out, current, baseline, "Decode|Encode", 0.25)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v, output:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "MISSING") || !strings.Contains(out.String(), "BenchmarkDecodeFastPath") {
		t.Fatalf("missing bench not reported:\n%s", out.String())
	}
}
