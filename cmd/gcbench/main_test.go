package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/hetgc/hetgc/internal/grad
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeInto-8   	    7915	    160755 ns/op	       0 B/op	       0 allocs/op
BenchmarkSumInto        	    5000	    250000 ns/op
--- SKIP: BenchmarkDecodeGroupBroken
PASS
ok  	github.com/hetgc/hetgc/internal/grad	5.954s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoOS != "linux" || rep.GoArch != "amd64" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(rep.Results))
	}
	r := rep.Results[0]
	if r.Name != "BenchmarkEncodeInto" {
		t.Fatalf("name = %q (GOMAXPROCS suffix should be stripped)", r.Name)
	}
	if r.Package != "github.com/hetgc/hetgc/internal/grad" {
		t.Fatalf("package = %q", r.Package)
	}
	if r.Iterations != 7915 || r.NsPerOp != 160755 {
		t.Fatalf("result: %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Fatalf("benchmem fields: %+v", r)
	}
	r2 := rep.Results[1]
	if r2.Name != "BenchmarkSumInto" || r2.BytesPerOp != nil {
		t.Fatalf("plain result: %+v", r2)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep, err := Parse(strings.NewReader("BenchmarkBroken abc def\nnot a line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 0 {
		t.Fatalf("results = %+v", rep.Results)
	}
}
