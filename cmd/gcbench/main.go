// Command gcbench converts `go test -bench` text output into the JSON
// benchmark-trajectory format tracked in BENCH_*.json, so perf PRs can diff
// against the committed baseline:
//
//	go test -run '^$' -bench . -benchmem ./... | gcbench > BENCH_baseline.json
//
// (or `make bench-baseline`). Lines that are not benchmark results (pkg
// headers, PASS/ok, skips) are ignored.
//
// With -compare it becomes a regression gate instead: it parses the current
// bench output from stdin, matches it against the committed baseline and
// fails when any benchmark selected by -filter regressed by more than
// -tolerance (relative ns/op):
//
//	go test -run '^$' -bench 'Decode|Encode|Uplink|IterRate' ./... | \
//	    gcbench -compare BENCH_baseline.json
//
// (or `make bench-compare`).
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// ErrNoBaseline is returned by -compare when the baseline file does not
// exist; main exits with code 2 (instead of the generic 1) so callers can
// distinguish "no baseline recorded yet" from a real regression.
var ErrNoBaseline = errors.New("gcbench: baseline file not found")

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with any -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark came from (the preceding
	// "pkg:" header), when present.
	Package string `json:"package,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is bytes allocated per operation (-benchmem only).
	BytesPerOp *float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is allocations per operation (-benchmem only).
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the batched uplink
	// benches' "wire-B/iter" — bytes on the wire per iteration), keyed by
	// unit string.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted document.
type Report struct {
	// GoOS/GoArch/CPU echo the bench header for context, when present.
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Results lists every parsed benchmark line in input order.
	Results []Result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
		if errors.Is(err, ErrNoBaseline) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("gcbench", flag.ContinueOnError)
	var (
		compare   = fs.String("compare", "", "baseline BENCH_*.json to gate against (default: emit JSON)")
		tolerance = fs.Float64("tolerance", 0.25, "maximum allowed relative ns/op regression")
		filter    = fs.String("filter", "Decode|Encode|Uplink|IterRate", "regexp selecting benchmarks to gate")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	report, err := Parse(in)
	if err != nil {
		return err
	}
	if *compare == "" {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	baseRaw, err := os.ReadFile(*compare)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("%w: %s — record one with `make bench-baseline` (and commit it) before gating",
				ErrNoBaseline, *compare)
		}
		return err
	}
	var baseline Report
	if err := json.Unmarshal(baseRaw, &baseline); err != nil {
		return fmt.Errorf("baseline %s: %w", *compare, err)
	}
	return Compare(out, report, &baseline, *filter, *tolerance)
}

// Compare gates current results against a baseline: benchmarks matching the
// filter regexp that regressed by more than tolerance (relative ns/op) fail
// the run, and so do gated baseline benchmarks that are missing from the
// current run — a silently vanished benchmark (e.g. a package whose benches
// stopped compiling) must not read as a pass. Custom b.ReportMetric units
// recorded in the baseline ("wire-B/iter", "iter/s", ...) are gated with the
// same tolerance: throughput-style units (containing "/s") regress when the
// current value drops below baseline, everything else when it rises above —
// and an extra that vanished from the current run fails too. Benchmarks
// absent from the baseline are reported but don't fail.
func Compare(out io.Writer, current, baseline *Report, filter string, tolerance float64) error {
	re, err := regexp.Compile(filter)
	if err != nil {
		return fmt.Errorf("filter: %w", err)
	}
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Package+"."+r.Name] = r
	}
	seen := make(map[string]bool)
	gated, regressed, missing := 0, 0, 0
	for _, r := range current.Results {
		if !re.MatchString(r.Name) {
			continue
		}
		key := r.Package + "." + r.Name
		b, ok := base[key]
		if !ok {
			fmt.Fprintf(out, "NEW      %-40s %12.1f ns/op (not in baseline)\n", r.Name, r.NsPerOp)
			continue
		}
		seen[key] = true
		gated++
		delta := (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		status := "ok"
		if delta > tolerance {
			status = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(out, "%-9s %-40s %12.1f -> %12.1f ns/op (%+.1f%%)\n",
			status, r.Name, b.NsPerOp, r.NsPerOp, delta*100)
		for _, unit := range sortedKeys(b.Extra) {
			bv := b.Extra[unit]
			cv, ok := r.Extra[unit]
			if !ok {
				missing++
				fmt.Fprintf(out, "MISSING  %-40s baseline %12.1f %s, absent from current run\n", r.Name, bv, unit)
				continue
			}
			if bv == 0 {
				continue // no relative delta to gate against
			}
			delta := (cv - bv) / bv
			bad := delta > tolerance // lower-is-better units (bytes, B/iter)
			if strings.Contains(unit, "/s") {
				bad = delta < -tolerance // throughput units: a drop regresses
			}
			status := "ok"
			if bad {
				status = "REGRESSED"
				regressed++
			}
			fmt.Fprintf(out, "%-9s %-40s %12.1f -> %12.1f %s (%+.1f%%)\n",
				status, r.Name, bv, cv, unit, delta*100)
		}
	}
	for _, b := range baseline.Results {
		if !re.MatchString(b.Name) || seen[b.Package+"."+b.Name] {
			continue
		}
		missing++
		fmt.Fprintf(out, "MISSING  %-40s baseline %12.1f ns/op, absent from current run\n", b.Name, b.NsPerOp)
	}
	if gated == 0 {
		return fmt.Errorf("no benchmarks matched filter %q against the baseline", filter)
	}
	if missing > 0 {
		return fmt.Errorf("%d gated baseline benchmarks (or their reported metrics) missing from the current run", missing)
	}
	if regressed > 0 {
		return fmt.Errorf("%d of %d gated benchmarks regressed beyond %.0f%%", regressed, gated, tolerance*100)
	}
	fmt.Fprintf(out, "all %d gated benchmarks within %.0f%% of baseline\n", gated, tolerance*100)
	return nil
}

// sortedKeys returns m's keys in sorted order so gate output is stable.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Parse reads `go test -bench` output and collects benchmark results.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				res.Package = pkg
				report.Results = append(report.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkEncodeInto-8   7915   160755 ns/op   0 B/op   0 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		default:
			// Custom b.ReportMetric units (MB/s, wire-B/iter, ...).
			if res.Extra == nil {
				res.Extra = make(map[string]float64)
			}
			res.Extra[fields[i+1]] = val
		}
	}
	if !seenNs {
		return Result{}, false
	}
	return res, true
}
