// Command gcbench converts `go test -bench` text output into the JSON
// benchmark-trajectory format tracked in BENCH_*.json, so perf PRs can diff
// against the committed baseline:
//
//	go test -run '^$' -bench . -benchmem ./... | gcbench > BENCH_baseline.json
//
// (or `make bench-baseline`). Lines that are not benchmark results (pkg
// headers, PASS/ok, skips) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with any -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the Go package the benchmark came from (the preceding
	// "pkg:" header), when present.
	Package string `json:"package,omitempty"`
	// Iterations is the measured b.N.
	Iterations int64 `json:"iterations"`
	// NsPerOp is nanoseconds per operation.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp is bytes allocated per operation (-benchmem only).
	BytesPerOp *float64 `json:"bytes_per_op,omitempty"`
	// AllocsPerOp is allocations per operation (-benchmem only).
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	// GoOS/GoArch/CPU echo the bench header for context, when present.
	GoOS   string `json:"goos,omitempty"`
	GoArch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	// Results lists every parsed benchmark line in input order.
	Results []Result `json:"results"`
}

func main() {
	report, err := Parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "gcbench: %v\n", err)
		os.Exit(1)
	}
}

// Parse reads `go test -bench` output and collects benchmark results.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if ok {
				res.Package = pkg
				report.Results = append(report.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

// parseBenchLine parses one result line, e.g.
//
//	BenchmarkEncodeInto-8   7915   160755 ns/op   0 B/op   0 allocs/op
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: name, Iterations: iters}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			res.BytesPerOp = &v
		case "allocs/op":
			v := val
			res.AllocsPerOp = &v
		}
	}
	if !seenNs {
		return Result{}, false
	}
	return res, true
}
