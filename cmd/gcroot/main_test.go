package main

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc"
)

func writeRoster(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.toml")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagValidation(t *testing.T) {
	roster := writeRoster(t, "root = \"127.0.0.1:7000\"\nworkers = 2\n")
	dir := t.TempDir()
	cases := []struct {
		name string
		args []string
		hint string
	}{
		{"bad flag", []string{"-wat"}, ""},
		{"missing roster", []string{"-checkpoint-dir", dir, "-lease-ttl", "2s"}, "-roster"},
		{"missing checkpoint dir", []string{"-roster", roster, "-lease-ttl", "2s"}, "-checkpoint-dir"},
		{"missing lease", []string{"-roster", roster, "-checkpoint-dir", dir}, "-lease-ttl"},
		{"negative lease", []string{"-roster", roster, "-checkpoint-dir", dir, "-lease-ttl", "-1s"}, "-lease-ttl"},
		{"bad role", []string{"-roster", roster, "-checkpoint-dir", dir, "-lease-ttl", "2s", "-role", "observer"}, "root or standby"},
		{"standby without listen", []string{"-roster", roster, "-checkpoint-dir", dir, "-lease-ttl", "2s", "-role", "standby"}, "-listen"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatal("run accepted an invalid flag set")
			}
			if tc.hint != "" && !strings.Contains(err.Error(), tc.hint) {
				t.Fatalf("error %q lacks hint %q", err, tc.hint)
			}
		})
	}
}

func TestRunRejectsBadRosterFile(t *testing.T) {
	roster := writeRoster(t, "gibberish")
	err := run([]string{"-roster", roster, "-checkpoint-dir", t.TempDir(), "-lease-ttl", "2s"})
	if !errors.Is(err, hetgc.ErrRoster) {
		t.Fatalf("err = %v, want ErrRoster", err)
	}
}

func TestRunRejectsMissingRosterFile(t *testing.T) {
	err := run([]string{"-roster", filepath.Join(t.TempDir(), "absent.toml"),
		"-checkpoint-dir", t.TempDir(), "-lease-ttl", "2s"})
	if !errors.Is(err, hetgc.ErrRoster) {
		t.Fatalf("err = %v, want ErrRoster", err)
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// spawnWorkers runs n in-process worker loops against the roster addrs.
func spawnWorkers(t *testing.T, n int, rootAddr, standbyAddr, dir string) (stop chan struct{}, wg *sync.WaitGroup) {
	t.Helper()
	stop = make(chan struct{})
	wg = &sync.WaitGroup{}
	roster := hetgc.Roster{Root: rootAddr, Workers: n}
	if standbyAddr != "" {
		roster.Standbys = []string{standbyAddr}
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = hetgc.RunWorkerNode(hetgc.WorkerNodeConfig{
				Roster:        roster,
				K:             4,
				Seed:          3,
				CheckpointDir: dir,
				DialTimeout:   500 * time.Millisecond,
			}, stop)
		}()
	}
	return stop, wg
}

// TestRunRootTrainsCluster drives the full root role through run(): a real
// listener on a roster address, two worker loops fetching shards over the
// wire, training to completion.
func TestRunRootTrainsCluster(t *testing.T) {
	dir := t.TempDir()
	addr := freeAddr(t)
	roster := writeRoster(t, "root = \""+addr+"\"\nworkers = 2\n")
	stop, wg := spawnWorkers(t, 2, addr, "", dir)
	defer func() { close(stop); wg.Wait() }()
	err := run([]string{"-roster", roster, "-k", "4", "-s", "0", "-iters", "6", "-seed", "3",
		"-pin-estimates", "-checkpoint-dir", dir, "-snapshot-every", "2", "-lease-ttl", "5s",
		"-wait", "15s"})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunStandbyPromotesAndFinishes drives the standby role through run():
// a lapsed lease in the directory, promotion, and a full training run on the
// standby's own address.
func TestRunStandbyPromotesAndFinishes(t *testing.T) {
	dir := t.TempDir()
	if _, err := hetgc.AcquireLease(dir, "old-root", "127.0.0.1:1", 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	addr := freeAddr(t)
	roster := writeRoster(t, "root = \"127.0.0.1:1\"\nstandbys = [\""+addr+"\"]\nworkers = 2\n")
	stop, wg := spawnWorkers(t, 2, "127.0.0.1:1", addr, dir)
	defer func() { close(stop); wg.Wait() }()
	err := run([]string{"-roster", roster, "-role", "standby", "-listen", addr,
		"-k", "4", "-s", "0", "-iters", "6", "-seed", "3",
		"-pin-estimates", "-checkpoint-dir", dir, "-snapshot-every", "2", "-lease-ttl", "500ms",
		"-wait", "15s"})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := hetgc.ReadLeaseToken(dir)
	if err != nil || tok.Gen < 2 {
		t.Fatalf("lease after promotion = %+v, %v — want generation >= 2", tok, err)
	}
}
