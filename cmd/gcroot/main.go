// Command gcroot runs the standalone training root of a multi-machine hetgc
// cluster — or, with -role standby, the warm standby that takes over when the
// root's lease lapses. Every machine shares one roster file (static
// discovery) and, for failover, one checkpoint directory (shared storage):
//
//	# cluster.toml — shared by every machine
//	root = "10.0.0.1:7000"
//	standbys = ["10.0.0.2:7000"]
//	workers = 4
//
//	machine1$ gcroot -roster cluster.toml -checkpoint-dir /shared/ckpt -lease-ttl 2s -iters 50
//	machine2$ gcroot -roster cluster.toml -role standby -listen 10.0.0.2:7000 \
//	              -checkpoint-dir /shared/ckpt -lease-ttl 2s -iters 50
//	machine3$ gcworker -roster cluster.toml -k 8 -seed 1
//
// The root serves training-data shards to workers over its data plane, so
// workers need nothing but the roster and the (seed, k) pair. Kill the root
// mid-run and the standby promotes, resumes from the last durable iteration
// and finishes the job; with -pin-estimates the failed-over run's final
// parameters are bit-identical to an uninterrupted one.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hetgc/hetgc/internal/cliflags"
	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/node"
	"github.com/hetgc/hetgc/internal/runtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gcroot:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gcroot", flag.ContinueOnError)
	var (
		rosterPath  = fs.String("roster", "", "roster file (TOML or JSON) naming the root, standbys and worker count")
		role        = fs.String("role", "root", "role: root (train) or standby (tail the checkpoint directory, take over on lease lapse)")
		listen      = fs.String("listen", "", "address this node binds; defaults to the roster's root entry (a standby must pass its own roster entry)")
		k           = fs.Int("k", 8, "data partition count")
		s           = fs.Int("s", 0, "straggler budget")
		iters       = fs.Int("iters", 30, "training iterations")
		seed        = fs.Int64("seed", 1, "random seed; every machine derives the identical workload from (seed, k)")
		pin         = fs.Bool("pin-estimates", false, "freeze the planner on the seeded initial strategy — bit-deterministic runs, including across failover")
		resume      = fs.Bool("resume", false, "resume from the state in -checkpoint-dir instead of starting fresh")
		iterTimeout = fs.Duration("iter-timeout", 30*time.Second, "per-iteration timeout")
		wait        = fs.Duration("wait", 60*time.Second, "how long to wait for the roster's worker quorum")
		holder      = fs.String("holder", "", "name this node carries in the lease token (default gcroot or gcroot-standby)")
		shared      cliflags.Cluster
	)
	cliflags.Register(fs, &shared)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := shared.Validate(); err != nil {
		return err
	}
	if *rosterPath == "" {
		return errors.New("-roster is required — every cluster member shares one roster file (see gcroot -h for the schema)")
	}
	if shared.CheckpointDir == "" || shared.LeaseTTL <= 0 {
		return errors.New("a cluster root requires -checkpoint-dir and -lease-ttl: failover needs a durable directory and a lease over it")
	}
	if *role != "root" && *role != "standby" {
		return fmt.Errorf("unknown -role %q: gcroot runs as root or standby", *role)
	}
	if *role == "standby" && *listen == "" {
		return errors.New("-role standby requires -listen (the standby binds its own roster entry, not the root's)")
	}
	roster, err := node.LoadRoster(*rosterPath)
	if err != nil {
		return err
	}
	if *holder == "" {
		*holder = "gcroot"
		if *role == "standby" {
			*holder = "gcroot-standby"
		}
	}

	tel, srv, err := shared.StartTelemetry(os.Stderr, os.Stdout)
	if err != nil {
		return err
	}
	if srv != nil {
		defer srv.Close()
	}

	cfg := node.ClusterConfig{
		Roster:           *roster,
		Listen:           *listen,
		K:                *k,
		S:                *s,
		Iterations:       *iters,
		Seed:             *seed,
		IterTimeout:      *iterTimeout,
		PinEstimates:     *pin,
		DurabilityConfig: shared.Durability(),
		HAConfig:         shared.HA(*holder),
		TelemetryConfig:  clustercfg.TelemetryConfig{Obs: tel},
		Wire:             shared.Wire(),
	}

	if *role == "standby" {
		return runStandby(cfg, *iters)
	}
	return runRoot(cfg, *resume, *iters, *wait)
}

// runRoot trains as the active root. SIGINT/SIGTERM tears the root down cold
// — exactly the failure the standby is there to absorb.
func runRoot(cfg node.ClusterConfig, resume bool, iters int, wait time.Duration) error {
	root, err := node.StartRoot(cfg, resume)
	if err != nil {
		return err
	}
	if resume {
		fmt.Printf("resumed from checkpoint %s at iteration %d\n", cfg.CheckpointDir, root.StartIter())
	}
	fmt.Printf("gcroot: training root on %s; k=%d s=%d iters=%d waiting for %d workers\n",
		root.Addr(), cfg.K, cfg.S, iters, cfg.Roster.Workers)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		if sig, ok := <-sigs; ok {
			fmt.Fprintf(os.Stderr, "gcroot: %v — tearing down cold (the standby takes over)\n", sig)
			root.Close()
		}
	}()

	res, err := root.Run(wait)
	if err != nil {
		return err
	}
	report(res, iters)
	return nil
}

// runStandby tails the checkpoint directory, promotes when the lease lapses
// and finishes the deposed root's run. SIGINT/SIGTERM before promotion exits
// cleanly.
func runStandby(cfg node.ClusterConfig, iters int) error {
	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		if _, ok := <-sigs; ok {
			close(stop)
		}
	}()

	fmt.Printf("gcroot: standby tailing %s, waiting for the root lease to lapse\n", cfg.CheckpointDir)
	res, err := node.RunStandby(cfg, stop)
	if err != nil {
		return err
	}
	if res == nil {
		fmt.Println("gcroot: standby stopped before promotion")
		return nil
	}
	fmt.Printf("gcroot: promoted — resumed at iteration %d on %s\n", res.StartIter, cfg.Listen)
	report(res, iters)
	return nil
}

// report prints the completion line both humans and the process e2e read; the
// params digest is what two runs compare for bit-identity.
func report(res *runtime.ElasticResult, iters int) {
	fmt.Printf("done: iterations %d..%d  root generation %d  fenced uploads %d\n",
		res.StartIter, iters, res.RootGen, res.FencedUploads)
	fmt.Printf("params digest: %s\n", node.ParamsDigest(res.Params))
}
