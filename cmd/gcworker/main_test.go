package main

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc"
	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/node"
)

func writeRoster(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.toml")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-wat"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "-roster") {
		t.Fatalf("missing roster: %v", err)
	}
	if err := run([]string{"-roster", "x", "-lease-ttl", "2s"}); err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("shared block validation must run: %v", err)
	}
}

func TestRunRejectsBadRosterFile(t *testing.T) {
	roster := writeRoster(t, "workers = 0")
	if err := run([]string{"-roster", roster}); !errors.Is(err, hetgc.ErrRoster) {
		t.Fatalf("err = %v, want ErrRoster", err)
	}
}

func TestRunGivesUpAfterMaxCycles(t *testing.T) {
	// A roster of dead addresses with bounded cycles must exit with the dial
	// error instead of spinning forever.
	roster := writeRoster(t, "root = \"127.0.0.1:1\"\nworkers = 1\n")
	err := run([]string{"-roster", roster, "-k", "4", "-max-cycles", "2", "-dial-timeout", "100ms"})
	if err == nil {
		t.Fatal("worker with an unreachable roster returned nil")
	}
}

// TestRunWorkerTrainsAgainstRoot drives the full worker path through run():
// two workers join an in-process root, fetch their shards over the wire and
// exit nil when training finishes.
func TestRunWorkerTrainsAgainstRoot(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	roster := writeRoster(t, "root = \""+addr+"\"\nworkers = 2\n")
	root, err := node.StartRoot(node.ClusterConfig{
		Roster:     node.Roster{Root: addr, Workers: 2},
		K:          4,
		Iterations: 5,
		Seed:       3,
		DurabilityConfig: clustercfg.DurabilityConfig{
			CheckpointDir: t.TempDir(),
			SnapshotEvery: 2,
		},
		HAConfig: clustercfg.HAConfig{LeaseTTL: 5 * time.Second},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()
	rootDone := make(chan error, 1)
	go func() { _, err := root.Run(15 * time.Second); rootDone <- err }()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run([]string{"-roster", roster, "-k", "4", "-seed", "3", "-dial-timeout", "2s"})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-rootDone; err != nil {
		t.Fatalf("root: %v", err)
	}
}
