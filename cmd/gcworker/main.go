// Command gcworker runs a standalone training worker of a multi-machine
// hetgc cluster. It needs only the shared roster file and the cluster's
// (seed, k) pair — the model comes from the seed-derived workload and the
// training shards arrive over the root's data plane:
//
//	gcworker -roster cluster.toml -k 8 -seed 1
//
// The worker dials the roster's root, trains until the connection drops, then
// re-resolves and rejoins under the same member identity — trying the lease
// token's address first when -checkpoint-dir points at storage shared with
// the root (it names the live generation after a failover), then the
// roster's root and standbys in order. It exits cleanly when the root
// finishes training.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hetgc/hetgc/internal/cliflags"
	"github.com/hetgc/hetgc/internal/node"
	"github.com/hetgc/hetgc/internal/runtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gcworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gcworker", flag.ContinueOnError)
	var (
		rosterPath  = fs.String("roster", "", "roster file (TOML or JSON) naming the root, standbys and worker count")
		k           = fs.Int("k", 8, "data partition count; must match the root's")
		seed        = fs.Int64("seed", 1, "random seed; must match the root's — (seed, k) derives the workload")
		slowMs      = fs.Int("slow-ms", 0, "artificial per-iteration compute delay (straggler/fault simulation)")
		dialTimeout = fs.Duration("dial-timeout", 2*time.Second, "timeout for one dial attempt")
		attempts    = fs.Int("reconnect-attempts", 1, "dial attempts per address per resolve cycle")
		backoff     = fs.Duration("reconnect-backoff", 250*time.Millisecond, "initial backoff between dial attempts (doubles per retry)")
		maxCycles   = fs.Int("max-cycles", 0, "bound on full passes over the roster before giving up (0 = keep trying)")
		shared      cliflags.Cluster
	)
	cliflags.Register(fs, &shared)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := shared.Validate(); err != nil {
		return err
	}
	if *rosterPath == "" {
		return errors.New("-roster is required — every cluster member shares one roster file (see gcworker -h for the schema)")
	}
	roster, err := node.LoadRoster(*rosterPath)
	if err != nil {
		return err
	}

	// A worker has no iteration pipeline of its own, but -metrics-addr still
	// serves /healthz and /debug/pprof/ — enough to tell "worker wedged" from
	// "worker waiting for a root".
	_, srv, err := shared.StartTelemetry(os.Stderr, os.Stdout)
	if err != nil {
		return err
	}
	if srv != nil {
		defer srv.Close()
	}

	cfg := node.WorkerConfig{
		Roster:        *roster,
		K:             *k,
		Seed:          *seed,
		Codec:         shared.Codec,
		CheckpointDir: shared.CheckpointDir,
		DialTimeout:   *dialTimeout,
		MaxCycles:     *maxCycles,
		Reconnect: runtime.ReconnectPolicy{
			MaxAttempts: *attempts,
			Backoff:     *backoff,
		},
	}
	if *slowMs > 0 {
		cfg.Delay = func(int) time.Duration { return time.Duration(*slowMs) * time.Millisecond }
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	go func() {
		if _, ok := <-sigs; ok {
			close(stop)
		}
	}()

	fmt.Printf("gcworker: joining cluster (root %s, %d standbys); shards fetched over the wire\n",
		roster.Root, len(roster.Standbys))
	if err := node.RunWorker(cfg, stop); err != nil {
		return err
	}
	fmt.Println("gcworker: training finished, shutting down")
	return nil
}
