package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	// Keep iteration counts tiny: this validates wiring, not statistics.
	for _, exp := range []string{"table2", "fig2a", "ablation-s"} {
		if err := run([]string{"-exp", exp, "-iters", "4", "-seed", "2"}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunChurn(t *testing.T) {
	// The churn runner internally verifies bit-identical replay.
	if err := run([]string{"-exp", "churn", "-iters", "28", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSharded(t *testing.T) {
	// The sharded runner internally verifies the 2x flat-vs-sharded bar and
	// bit-identical replay.
	if err := run([]string{"-exp", "sharded", "-iters", "24", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFig4Small(t *testing.T) {
	if err := run([]string{"-exp", "fig4", "-iters", "8", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"-exp", "nope"})
	if err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	// The error must teach the valid vocabulary, not just reject.
	for _, name := range []string{"table2", "fig4", "churn", "sharded", "all"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list experiment %q", err, name)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunRemainingExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster sweep is slow")
	}
	for _, exp := range []string{"fig2b", "fig5", "ablation-misest"} {
		if err := run([]string{"-exp", exp, "-iters", "3", "-seed", "5"}); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}
