// Command gcsim regenerates the paper's evaluation tables and figures on the
// simulated clusters. Each -exp value corresponds to one table/figure (see
// DESIGN.md's experiment index):
//
//	gcsim -exp table2                 # Table II cluster configurations
//	gcsim -exp fig2a                  # Fig. 2a delay sweep, Cluster-A, s=1
//	gcsim -exp fig2b                  # Fig. 2b delay sweep, Cluster-A, s=2
//	gcsim -exp fig3                   # Fig. 3 clusters B/C/D iteration times
//	gcsim -exp fig4                   # Fig. 4 loss-vs-time incl. SSP
//	gcsim -exp fig5                   # Fig. 5 computing-resource usage
//	gcsim -exp ablation-misest        # group-based vs heter under bad estimates
//	gcsim -exp ablation-s             # replication-factor sweep
//	gcsim -exp churn                  # elastic control loop under seeded churn
//	gcsim -exp sharded                # hierarchical group-sharded runtime vs flat at 200 workers
//	gcsim -exp all                    # everything above
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/hetgc/hetgc"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gcsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gcsim", flag.ContinueOnError)
	var (
		exp   = fs.String("exp", "all", "experiment: table2, fig2a, fig2b, fig3, fig4, fig5, ablation-misest, ablation-s, churn, sharded, all")
		iters = fs.Int("iters", 100, "iterations per simulation cell")
		seed  = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	run := func(name string, f func() error) error {
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fmt.Println()
		return nil
	}
	all := *exp == "all"
	type entry struct {
		name string
		f    func() error
	}
	entries := []entry{
		{"table2", func() error { return table2() }},
		{"fig2a", func() error { return fig2(1, *iters, *seed) }},
		{"fig2b", func() error { return fig2(2, *iters, *seed) }},
		{"fig3", func() error { return fig3(*iters, *seed) }},
		{"fig4", func() error { return fig4(*iters, *seed) }},
		{"fig5", func() error { return fig5(*iters, *seed) }},
		{"ablation-misest", func() error { return misest(*iters, *seed) }},
		{"ablation-s", func() error { return replication(*iters, *seed) }},
		{"churn", func() error { return churn(*iters, *seed) }},
		{"sharded", func() error { return sharded(*iters, *seed) }},
	}
	matched := false
	for _, e := range entries {
		if all || e.name == *exp {
			matched = true
			if err := run(e.name, e.f); err != nil {
				return err
			}
		}
	}
	if !matched {
		names := make([]string, 0, len(entries)+1)
		for _, e := range entries {
			names = append(names, e.name)
		}
		names = append(names, "all")
		return fmt.Errorf("unknown experiment %q (valid: %s)", *exp, strings.Join(names, ", "))
	}
	return nil
}

func table2() error {
	fmt.Println("Table II: cluster configurations (machines per vCPU class)")
	fmt.Print(hetgc.Table2().String())
	return nil
}

func fig2(s, iters int, seed int64) error {
	fmt.Printf("Fig. 2%c: avg time per iteration (s) on Cluster-A, s=%d, injected delay sweep\n",
		'a'+rune(s-1), s)
	rows, err := hetgc.RunFig2Sweep(hetgc.DelaySweepConfig{
		Cluster:        hetgc.ClusterA(),
		S:              s,
		Delays:         []float64{0, 2, 4, 6, 8, math.Inf(1)},
		Iterations:     iters,
		FluctuationStd: 0.05,
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(hetgc.DelayTable(rows).String())
	sp, err := hetgc.SpeedupVsCyclic(rows[len(rows)-1])
	if err != nil {
		return err
	}
	fmt.Printf("headline: heter-aware speedup over cyclic at fault = %.2fx (paper: up to 3x)\n", sp)
	return nil
}

func fig3(iters int, seed int64) error {
	fmt.Println("Fig. 3: avg time per iteration (s) on Clusters B/C/D under transient interference")
	rows, err := hetgc.RunFig3Clusters(hetgc.ClusterSweepConfig{
		Clusters:       []*hetgc.Cluster{hetgc.ClusterB(), hetgc.ClusterC(), hetgc.ClusterD()},
		S:              1,
		Iterations:     iters,
		TransientProb:  0.02,
		TransientMean:  2,
		FluctuationStd: 0.05,
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(hetgc.ClusterTable(rows).String())
	return nil
}

func fig4(iters int, seed int64) error {
	fmt.Println("Fig. 4: training loss vs simulated wall-clock on Cluster-C (softmax on synthetic mixture)")
	lc, err := hetgc.RunFig4LossCurves(hetgc.LossCurveConfig{
		Cluster:             hetgc.ClusterC(),
		S:                   1,
		Iterations:          iters,
		SamplesPerPartition: 10,
		TransientProb:       0.02,
		TransientMean:       2,
		Seed:                seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(lc.LossTable(8).String())
	fmt.Println()
	fmt.Print(hetgc.AsciiPlot(lc.Curves, 72, 16))
	fmt.Println("final loss per scheme:")
	for _, c := range lc.Curves {
		fmt.Printf("  %-12s %.4f\n", c.Name, lc.FinalLoss[c.Name])
	}
	return nil
}

func fig5(iters int, seed int64) error {
	fmt.Println("Fig. 5: computing-resource usage per scheme")
	rows, err := hetgc.RunFig3Clusters(hetgc.ClusterSweepConfig{
		Clusters:       []*hetgc.Cluster{hetgc.ClusterA(), hetgc.ClusterB(), hetgc.ClusterC()},
		S:              1,
		Iterations:     iters,
		TransientProb:  0.02,
		TransientMean:  2,
		FluctuationStd: 0.05,
		CommOverhead:   0.3,
		Seed:           seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(hetgc.UsageTable(rows).String())
	return nil
}

func misest(iters int, seed int64) error {
	fmt.Println("Ablation: throughput mis-estimation (heter-aware vs group-based, Cluster-A, s=1)")
	rows, err := hetgc.RunMisestimation(hetgc.MisestimationConfig{
		Cluster:    hetgc.ClusterA(),
		S:          1,
		Epsilons:   []float64{0, 0.1, 0.2, 0.4, 0.6},
		Iterations: iters,
		Trials:     5,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(hetgc.MisestimationTable(rows).String())
	return nil
}

func churn(iters int, seed int64) error {
	fmt.Println("Elastic control loop under seeded churn: 2 of 4 workers slow 10x, a 5th joins, one dies and rejoins")
	if iters < 24 {
		iters = 24 // the schedule needs room for every event
	}
	cfg := hetgc.ElasticSimConfig{
		K: 8, S: 1,
		InitialRates: []float64{500, 500, 500, 500},
		Events: []hetgc.ChurnEvent{
			{Iter: iters / 4, Kind: hetgc.ChurnSpeedStep, Member: 1, Factor: 0.1},
			{Iter: iters / 4, Kind: hetgc.ChurnSpeedStep, Member: 3, Factor: 0.1},
			{Iter: iters / 3, Kind: hetgc.ChurnJoin, Rate: 500},
			{Iter: iters / 2, Kind: hetgc.ChurnKill, Member: 3},
			{Iter: iters * 3 / 4, Kind: hetgc.ChurnRejoin, Member: 3, Rate: 500},
		},
		Iterations:      iters,
		Alpha:           0.5,
		DriftThreshold:  0.5,
		MinObservations: 2,
		CooldownIters:   3,
		Seed:            seed,
	}
	res, err := hetgc.SimulateElastic(cfg)
	if err != nil {
		return err
	}
	// Determinism is part of the contract: a second run must be identical.
	res2, err := hetgc.SimulateElastic(cfg)
	if err != nil {
		return err
	}
	identical := len(res.Times) == len(res2.Times)
	for i := range res.Times {
		if !identical || res.Times[i] != res2.Times[i] || res.Epochs[i] != res2.Epochs[i] {
			identical = false
			break
		}
	}
	fmt.Println("migration timeline:")
	for _, ev := range res.Replans {
		fmt.Printf("  iter %3d  epoch %2d  %-7s  %d workers  (imbalance %.2f)\n",
			ev.Iter, ev.Epoch, ev.Reason, ev.Members, ev.Imbalance)
	}
	fmt.Printf("mean iteration %.2fms (min %.2f, max %.2f), final epoch %d\n",
		res.Summary.Mean*1000, res.Summary.Min*1000, res.Summary.Max*1000,
		res.Epochs[len(res.Epochs)-1])
	fmt.Printf("replay bit-identical: %v\n", identical)
	if !identical {
		return fmt.Errorf("churn simulation is not deterministic")
	}
	return nil
}

func sharded(iters int, seed int64) error {
	fmt.Println("Hierarchical group-sharded runtime vs flat single master, 200 workers")
	const m = 200
	if iters > 50 {
		// The comparison stabilises quickly; keep -exp all fast.
		fmt.Printf("(clamping -iters %d to 50 for the sharded comparison)\n", iters)
		iters = 50
	}
	rates := make([]float64, m)
	for i := range rates {
		rates[i] = 100
	}
	base := hetgc.ShardedSimConfig{
		K: 2 * m, S: 1, FanIn: 4,
		Rates:      rates,
		Iterations: iters,
		// 2ms to ingest one gradient upload, 5ms per reduction-tree hop:
		// the flat master serialises behind 200 uploads, each group master
		// ingests ~10 in parallel and ships one coalesced batch upward.
		IngestSeconds: 0.002,
		HopSeconds:    0.005,
		// A slow third of the fleet plus a mid-run slowdown exercises the
		// group-local control planes.
		Events: []hetgc.ChurnEvent{
			{Iter: iters / 3, Kind: hetgc.ChurnSpeedStep, Member: 1, Factor: 0.25},
			{Iter: iters / 3, Kind: hetgc.ChurnSpeedStep, Member: 2, Factor: 0.25},
		},
		Alpha:           0.5,
		DriftThreshold:  0.5,
		MinObservations: 2,
		CooldownIters:   3,
		Seed:            seed,
	}
	shardedCfg := base
	shardedCfg.GroupSize = 10
	flatCfg := base
	flatCfg.GroupSize = m // one group = the flat runtime, same code path

	sh, err := hetgc.SimulateSharded(shardedCfg)
	if err != nil {
		return err
	}
	fl, err := hetgc.SimulateSharded(flatCfg)
	if err != nil {
		return err
	}
	fmt.Printf("flat:    1 master, %d uploads/iter               mean %.1fms/iter\n",
		m, fl.Summary.Mean*1000)
	fmt.Printf("sharded: %d groups, tree depth %d (fan-in 4)     mean %.1fms/iter  (%.1fx faster)\n",
		sh.Groups, sh.Depth, sh.Summary.Mean*1000, fl.Summary.Mean/sh.Summary.Mean)
	fmt.Println("group-local migration timeline:")
	for _, ev := range sh.Replans {
		if ev.Reason == "initial" {
			continue
		}
		fmt.Printf("  iter %3d  group %2d  epoch %2d  %-7s  %d workers\n",
			ev.Iter, ev.Group, ev.Epoch, ev.Reason, ev.Members)
	}
	// Determinism is part of the contract: a second run must be identical.
	sh2, err := hetgc.SimulateSharded(shardedCfg)
	if err != nil {
		return err
	}
	identical := len(sh.Times) == len(sh2.Times)
	for i := 0; identical && i < len(sh.Times); i++ {
		if sh.Times[i] != sh2.Times[i] {
			identical = false
		}
	}
	fmt.Printf("replay bit-identical: %v\n", identical)
	if !identical {
		return fmt.Errorf("sharded simulation is not deterministic")
	}
	if fl.Summary.Mean < 2*sh.Summary.Mean {
		return fmt.Errorf("sharded speedup below 2x: flat %.4fs vs sharded %.4fs", fl.Summary.Mean, sh.Summary.Mean)
	}
	return nil
}

func replication(iters int, seed int64) error {
	fmt.Println("Ablation: replication factor s sweep (avg iteration time, Cluster-A)")
	rows, err := hetgc.RunReplicationSweep(hetgc.ReplicationSweepConfig{
		Cluster:    hetgc.ClusterA(),
		SValues:    []int{1, 2, 3},
		Delay:      5,
		Iterations: iters,
		Seed:       seed,
	})
	if err != nil {
		return err
	}
	fmt.Print(hetgc.ReplicationTable(rows).String())
	return nil
}
