// Command gcctl is the fleet aggregator: one command that answers "what is
// the cluster doing right now". It discovers every node's telemetry
// endpoint from the shared roster file (metrics = ["host:port", ...]),
// scrapes each /metrics and /debug/events, and renders one merged view —
// a globally ordered node-labeled event timeline plus cluster-wide gauges
// (iterations/sec, wire bytes by codec, stalest snapshot, lease generation
// skew). With -checkpoint-dir it also reads the HA lease token, so the
// dashboard names the live root's generation and address even mid-failover.
//
//	gcctl -roster cluster.toml                     # one-shot dashboard
//	gcctl -roster cluster.toml -watch 2s           # refresh every 2s
//	gcctl -roster cluster.toml -json               # machine-readable snapshot
//	gcctl -roster cluster.toml -checkpoint-dir /shared/ckpt
//
// Exit status is non-zero when any node fails to scrape; the unhealthy
// nodes are named on stderr, and the dashboard (or JSON snapshot, which
// carries per-node health) still covers the surviving nodes.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/hetgc/hetgc/internal/fleet"
	"github.com/hetgc/hetgc/internal/node"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gcctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gcctl", flag.ContinueOnError)
	var (
		rosterPath = fs.String("roster", "", "roster file (TOML or JSON); its metrics key lists the endpoints to scrape")
		ckptDir    = fs.String("checkpoint-dir", "", "read the HA lease token from this directory to name the live root")
		asJSON     = fs.Bool("json", false, "emit the full snapshot as JSON instead of the text dashboard")
		watch      = fs.Duration("watch", 0, "re-scrape and re-render at this interval (0 = one shot)")
		timeout    = fs.Duration("timeout", 5*time.Second, "per-node scrape timeout")
		tail       = fs.Int("tail", 15, "timeline events to show in the text dashboard (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rosterPath == "" {
		return errors.New("-roster is required — gcctl discovers the fleet from the roster's metrics key")
	}
	roster, err := node.LoadRoster(*rosterPath)
	if err != nil {
		return err
	}
	nodes, _, err := fleet.Discover(roster, *ckptDir)
	if err != nil {
		return err
	}
	sc := &fleet.Scraper{Timeout: *timeout}

	sweep := func() (*fleet.Snapshot, error) {
		// Re-read the lease each sweep: a failover moves it between scrapes.
		_, root, err := fleet.Discover(roster, *ckptDir)
		if err != nil {
			return nil, err
		}
		snap := sc.Collect(nodes, root)
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(snap); err != nil {
				return nil, err
			}
		} else {
			snap.WriteText(os.Stdout, *tail)
		}
		return snap, nil
	}

	if *watch <= 0 {
		snap, err := sweep()
		if err != nil {
			return err
		}
		if down := snap.Unhealthy(); len(down) > 0 {
			return fmt.Errorf("unhealthy nodes: %v", down)
		}
		return nil
	}

	for {
		if _, err := sweep(); err != nil {
			return err
		}
		if !*asJSON {
			fmt.Println()
		}
		time.Sleep(*watch)
	}
}
