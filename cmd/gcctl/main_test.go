package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/obs"
)

func writeRoster(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.toml")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunFlagValidation(t *testing.T) {
	if err := run([]string{"-wat"}); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run(nil); err == nil || !strings.Contains(err.Error(), "-roster") {
		t.Fatalf("missing roster: %v", err)
	}
	if err := run([]string{"-roster", filepath.Join(t.TempDir(), "nope.toml")}); err == nil {
		t.Fatal("unreadable roster accepted")
	}
}

func TestRunRejectsRosterWithoutMetrics(t *testing.T) {
	roster := writeRoster(t, "root = \"10.0.0.1:7000\"\nworkers = 2\n")
	if err := run([]string{"-roster", roster}); err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Fatalf("roster without metrics key: %v", err)
	}
}

// TestRunOneShot drives the full one-shot path against a real telemetry
// server and a real lease token: healthy fleet renders and exits nil, both
// as text and as JSON; adding a dead endpoint turns the sweep into the
// non-zero "unhealthy nodes" exit naming it.
func TestRunOneShot(t *testing.T) {
	m := obs.New()
	m.OnIteration(0, 0.05)
	m.Event(obs.Event{Kind: obs.EvReplan, Iter: 0})
	srv, err := obs.NewServer("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ckpt := t.TempDir()
	if _, err := ha.Acquire(ckpt, "gcroot-1", "10.0.0.1:7000", time.Minute); err != nil {
		t.Fatal(err)
	}

	roster := writeRoster(t,
		"root = \"10.0.0.1:7000\"\nworkers = 2\nmetrics = [\""+srv.Addr()+"\"]\n")
	for _, args := range [][]string{
		{"-roster", roster, "-checkpoint-dir", ckpt, "-tail", "5"},
		{"-roster", roster, "-checkpoint-dir", ckpt, "-json"},
	} {
		if err := run(args); err != nil {
			t.Fatalf("run(%v) on a healthy fleet: %v", args, err)
		}
	}

	down := writeRoster(t,
		"root = \"10.0.0.1:7000\"\nworkers = 2\nmetrics = [\""+srv.Addr()+"\", \"127.0.0.1:1\"]\n")
	err = run([]string{"-roster", down, "-timeout", "1s"})
	if err == nil || !strings.Contains(err.Error(), "127.0.0.1:1") {
		t.Fatalf("dead node must fail the one-shot naming it: %v", err)
	}
}
