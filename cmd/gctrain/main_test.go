package main

import "testing"

func TestRunSmallTraining(t *testing.T) {
	if err := run([]string{"-scheme", "heter", "-iters", "5", "-straggler-ms", "0", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGroupScheme(t *testing.T) {
	if err := run([]string{"-scheme", "group", "-iters", "4", "-straggler-ms", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-wat"}); err == nil {
		t.Fatal("expected flag error")
	}
}
