package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hetgc/hetgc"
)

func TestRunSmallTraining(t *testing.T) {
	if err := run([]string{"-scheme", "heter", "-iters", "5", "-straggler-ms", "0", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGroupScheme(t *testing.T) {
	if err := run([]string{"-scheme", "group", "-iters", "4", "-straggler-ms", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownScheme(t *testing.T) {
	if err := run([]string{"-scheme", "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-wat"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestResumeWithoutCheckpointDir(t *testing.T) {
	err := run([]string{"-resume"})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("error %q does not name the missing flag", err)
	}
}

func TestResumeMissingCheckpoint(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never-created")
	err := run([]string{"-checkpoint-dir", dir, "-resume"})
	if !errors.Is(err, hetgc.ErrNoCheckpoint) {
		t.Fatalf("resume from missing dir: %v, want ErrNoCheckpoint", err)
	}
	if !strings.Contains(err.Error(), "hint:") {
		t.Fatalf("error %q carries no remediation hint", err)
	}
}

func TestDurableFreshRefusesExistingState(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := run([]string{"-checkpoint-dir", dir, "-iters", "4", "-snapshot-every", "2", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-checkpoint-dir", dir, "-iters", "4", "-seed", "4"})
	if !errors.Is(err, hetgc.ErrCheckpointExists) {
		t.Fatalf("fresh run over existing state: %v, want ErrCheckpointExists", err)
	}
	if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("error %q does not suggest -resume", err)
	}
}

func TestResumeCorruptSnapshot(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := run([]string{"-checkpoint-dir", dir, "-iters", "4", "-snapshot-every", "2", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshots written (%v)", err)
	}
	for _, p := range snaps {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			data[i] ^= 0x5a
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	err = run([]string{"-checkpoint-dir", dir, "-iters", "8", "-resume", "-seed", "4"})
	if !errors.Is(err, hetgc.ErrCheckpointCorrupt) {
		t.Fatalf("resume over corrupt snapshots: %v, want ErrCheckpointCorrupt", err)
	}
	if !strings.Contains(err.Error(), "hint:") {
		t.Fatalf("error %q carries no remediation hint", err)
	}
}

func TestResumeHappyPath(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := run([]string{"-checkpoint-dir", dir, "-iters", "6", "-snapshot-every", "2", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	// Continue the same run for more iterations from its final snapshot.
	if err := run([]string{"-checkpoint-dir", dir, "-iters", "10", "-snapshot-every", "2", "-resume", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	st, err := hetgc.RecoverCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastIter != 9 {
		t.Fatalf("checkpoint records last iteration %d, want 9", st.LastIter)
	}
}

func TestResumeAlreadyComplete(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := run([]string{"-checkpoint-dir", dir, "-iters", "4", "-snapshot-every", "2", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	// Resuming with the same -iters has nothing left to run: must report
	// that cleanly, not panic or error.
	if err := run([]string{"-checkpoint-dir", dir, "-iters", "4", "-resume", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestHAFlagValidation(t *testing.T) {
	if err := run([]string{"-lease-ttl", "-1s"}); err == nil || !strings.Contains(err.Error(), "-lease-ttl") {
		t.Fatalf("negative ttl: %v", err)
	}
	if err := run([]string{"-lease-ttl", "2s"}); err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("lease without dir: %v", err)
	}
	if err := run([]string{"-standby"}); err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("standby without dir: %v", err)
	}
}

func TestRunLeased(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	if err := run([]string{"-checkpoint-dir", dir, "-iters", "4", "-snapshot-every", "2", "-lease-ttl", "5s", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	tok, err := hetgc.ReadLeaseToken(dir)
	if err != nil || tok.Gen != 1 {
		t.Fatalf("lease after run = %+v, %v, want generation 1", tok, err)
	}
}

func TestStandByPromotes(t *testing.T) {
	dir := t.TempDir()
	lease, err := hetgc.AcquireLease(dir, "root-x", "addr-x", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	_ = lease // never renewed: the lease lapses and the standby promotes
	if err := standBy(dir, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemediateHA(t *testing.T) {
	dir := t.TempDir()
	if _, err := hetgc.AcquireLease(dir, "root-b", "addr-b", time.Hour); err != nil {
		t.Fatal(err)
	}
	err := remediate(fmt.Errorf("run: %w", hetgc.ErrFenced), dir)
	if !errors.Is(err, hetgc.ErrFenced) || !strings.Contains(err.Error(), `generation 1 ("root-b" at addr-b)`) {
		t.Fatalf("fenced remediation %q does not name the usurper", err)
	}
	err = remediate(fmt.Errorf("run: %w", hetgc.ErrFenced), filepath.Join(dir, "nope"))
	if !errors.Is(err, hetgc.ErrFenced) || !strings.Contains(err.Error(), "hint:") {
		t.Fatalf("fenced remediation without a token: %q", err)
	}
	err = remediate(fmt.Errorf("run: %w", hetgc.ErrLeaseHeld), dir)
	if !errors.Is(err, hetgc.ErrLeaseHeld) || !strings.Contains(err.Error(), "-standby") {
		t.Fatalf("lease-held remediation: %q", err)
	}
}
