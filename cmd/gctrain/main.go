// Command gctrain runs a real distributed training job over TCP loopback:
// one master plus m in-process workers, gradient coding end to end —
// broadcast, compute, encode, upload, decode, step. A configurable artificial
// delay turns one worker into a straggler, reproducing the paper's fault
// simulation on a real wire protocol.
//
//	gctrain -scheme heter -iters 30 -straggler-ms 200
//
// With -checkpoint-dir the job runs on the elastic runtime with durable
// state: a write-ahead journal plus periodic model snapshots. Kill the
// process mid-run, rerun with -resume, and training continues from the last
// snapshot with every pre-crash upload fenced:
//
//	gctrain -checkpoint-dir /tmp/ckpt -iters 50
//	gctrain -checkpoint-dir /tmp/ckpt -iters 50 -resume
//
// With -lease-ttl the master additionally holds the HA root lease over the
// checkpoint directory, and -standby runs a warm standby that tails the
// directory and takes over training the moment the lease lapses:
//
//	gctrain -checkpoint-dir /tmp/ckpt -iters 50 -lease-ttl 2s
//	gctrain -checkpoint-dir /tmp/ckpt -iters 50 -lease-ttl 2s -standby
//
// With -metrics-addr the run serves live telemetry over HTTP — Prometheus
// metrics at /metrics, the structured event journal at /debug/events,
// iteration phase traces at /debug/trace and pprof at /debug/pprof/ — and
// -trace streams each iteration's phase breakdown to stderr as JSON lines.
// Both route the job through the elastic runtime:
//
//	gctrain -metrics-addr 127.0.0.1:9090 -iters 50
//	curl -s http://127.0.0.1:9090/metrics | grep hetgc_
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"github.com/hetgc/hetgc"
	"github.com/hetgc/hetgc/internal/cliflags"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gctrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gctrain", flag.ContinueOnError)
	var (
		scheme      = fs.String("scheme", "heter", "scheme: heter, group, cyclic, naive")
		iters       = fs.Int("iters", 30, "training iterations")
		s           = fs.Int("s", 1, "straggler budget")
		stragglerMs = fs.Int("straggler-ms", 200, "artificial delay of worker 0 per iteration (ms)")
		seed        = fs.Int64("seed", 1, "random seed")
		resume      = fs.Bool("resume", false, "resume from the state in -checkpoint-dir instead of starting fresh")
		standby     = fs.Bool("standby", false, "run as a warm standby: tail -checkpoint-dir and take over training when the lease lapses")
		shared      cliflags.Cluster
	)
	cliflags.Register(fs, &shared)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := shared.Validate(); err != nil {
		return err
	}
	if *resume && shared.CheckpointDir == "" {
		return errors.New("-resume requires -checkpoint-dir (the directory holding the journal and snapshots of the run to continue)")
	}
	if *standby && shared.CheckpointDir == "" {
		return errors.New("-standby requires -checkpoint-dir (the lease lives in the checkpoint directory)")
	}
	tel, srv, err := shared.StartTelemetry(os.Stderr, os.Stdout)
	if err != nil {
		return err
	}
	if srv != nil {
		defer srv.Close()
	}
	if *standby {
		if err := standBy(shared.CheckpointDir, tel); err != nil {
			return err
		}
		// Promoted: continue the deposed root's run at the next generation.
		*resume = true
	}
	if shared.CheckpointDir != "" || tel != nil {
		// Durable state and telemetry both live on the elastic runtime.
		return runDurable(*scheme, *iters, *s, *stragglerMs, *seed, shared, *resume, tel)
	}

	// A small heterogeneous fleet (relative speeds 1..4, as in Example 1).
	throughputs := []float64{1, 2, 3, 4, 4}
	m := len(throughputs)
	k := 7
	rng := hetgc.NewRand(*seed)

	var st *hetgc.Strategy
	switch *scheme {
	case "heter":
		st, err = hetgc.NewHeterAware(throughputs, k, *s, rng)
	case "group":
		st, err = hetgc.NewGroupBased(throughputs, k, *s, rng)
	case "cyclic":
		st, err = hetgc.NewCyclic(m, *s, rng)
	case "naive":
		st, err = hetgc.NewNaive(m)
	default:
		return fmt.Errorf("unknown scheme %q", *scheme)
	}
	if err != nil {
		return err
	}

	data, err := hetgc.GaussianMixture(st.K()*30, 8, 3, 3, rng)
	if err != nil {
		return err
	}
	parts, err := data.Split(st.K())
	if err != nil {
		return err
	}
	model := &hetgc.Softmax{InputDim: 8, NumClasses: 3}

	master, err := hetgc.NewMaster(hetgc.MasterConfig{
		Strategy:      st,
		Model:         model,
		Optimizer:     &hetgc.SGD{LR: 0.5},
		InitialParams: model.InitParams(nil),
		Iterations:    *iters,
		SampleCount:   data.N(),
		IterTimeout:   10 * time.Second,
		LossEvery:     5,
		LossFn: func(p []float64) (float64, error) {
			return hetgc.MeanLoss(model, p, data)
		},
	}, "127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("master listening on %s; scheme=%v m=%d k=%d s=%d\n",
		master.Addr(), st.Kind(), st.M(), st.K(), st.S())

	var wg sync.WaitGroup
	for i := 0; i < st.M(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := hetgc.WorkerConfig{
				Model:         model,
				PartitionData: func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
			}
			if i == 0 && *stragglerMs > 0 {
				cfg.Delay = func(int) time.Duration {
					return time.Duration(*stragglerMs) * time.Millisecond
				}
			}
			w, err := hetgc.DialWorker(master.Addr(), cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "worker %d: %v\n", i, err)
				return
			}
			// Run exits with a connection error when the master tears the
			// session down mid-iteration (e.g. a delayed worker still
			// uploading at shutdown); that race is benign, so don't report.
			_ = w.Run()
		}(i)
	}
	if err := master.WaitForWorkers(10 * time.Second); err != nil {
		return err
	}
	res, err := master.Run()
	wg.Wait()
	if err != nil {
		return err
	}

	fmt.Printf("\niterations: %d  mean %.1fms  p95 %.1fms  stale uploads discarded: %d\n",
		res.Summary.Count, res.Summary.Mean*1e3, res.Summary.P95*1e3, res.StragglersSkipped)
	fmt.Println("loss curve (time s, mean loss):")
	for _, p := range res.Curve.Points {
		fmt.Printf("  %8.3f  %.4f\n", p.X, p.Y)
	}
	return nil
}

// runDurable trains on the elastic runtime with a checkpoint directory:
// journaled iterations, periodic snapshots, and — with resume — exact
// continuation from the last snapshot. The flag surface routes through
// ClusterConfig — the same assembly the standalone gcroot binary uses — so
// an in-process gctrain run and a multi-machine cluster are configured by
// the identical code path.
func runDurable(scheme string, iters, s, stragglerMs int, seed int64, shared cliflags.Cluster, resume bool, tel *hetgc.Telemetry) error {
	var kind hetgc.Kind
	switch scheme {
	case "heter":
		kind = hetgc.HeterAware
	case "group":
		kind = hetgc.GroupBased
	default:
		return fmt.Errorf("the elastic runtime (-checkpoint-dir, -metrics-addr, -trace) plans heter or group schemes, not %q", scheme)
	}
	dir := shared.CheckpointDir

	// The workload is derived from the seed, so a resumed process rebuilds
	// the identical dataset and partitioning.
	throughputs := []float64{1, 2, 3, 4, 4}
	m := len(throughputs)
	k := 7
	rng := hetgc.NewRand(seed)
	data, err := hetgc.GaussianMixture(k*30, 8, 3, 3, rng)
	if err != nil {
		return err
	}
	parts, err := data.Split(k)
	if err != nil {
		return err
	}
	model := &hetgc.Softmax{InputDim: 8, NumClasses: 3}

	ecfg, err := hetgc.ClusterConfig{
		// The "cluster" is this process: m loopback workers, quorum m.
		Roster: hetgc.Roster{Root: "127.0.0.1:0", Workers: m},
		K:      k, S: s, Scheme: kind,
		Iterations:  iters,
		Seed:        seed,
		IterTimeout: 10 * time.Second,
		Workload: &hetgc.Workload{
			Model:     model,
			Optimizer: &hetgc.SGD{LR: 0.5, Momentum: 0.5},
			Data:      data,
			Parts:     parts,
		},
		DurabilityConfig: shared.Durability(),
		HAConfig:         shared.HA(""),
		TelemetryConfig:  hetgc.TelemetryConfig{Obs: tel},
		Wire:             shared.Wire(),
	}.ElasticConfig(resume)
	if err != nil {
		return err
	}
	ecfg.LossEvery = 5
	ecfg.LossFn = func(p []float64) (float64, error) {
		return hetgc.MeanLoss(model, p, data)
	}
	master, err := hetgc.NewElasticMaster(ecfg, "127.0.0.1:0")
	if err != nil {
		return remediate(err, dir)
	}
	if resume {
		fmt.Printf("resumed from checkpoint %s at iteration %d\n", dir, master.StartIter())
	}
	if gen := master.RootGen(); gen > 0 {
		fmt.Printf("holding root lease: generation %d, ttl %s\n", gen, shared.LeaseTTL)
	}
	if dir != "" {
		fmt.Printf("elastic master on %s; scheme=%s k=%d s=%d checkpoint-dir=%s snapshot-every=%d\n",
			master.Addr(), scheme, k, s, dir, shared.SnapshotEvery)
	} else {
		fmt.Printf("elastic master on %s; scheme=%s k=%d s=%d\n", master.Addr(), scheme, k, s)
	}

	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wcfg := hetgc.ElasticWorkerConfig{
				Model:         model,
				PartitionData: func(p int) (*hetgc.Dataset, error) { return parts[p], nil },
			}
			if i == 0 && stragglerMs > 0 {
				wcfg.Delay = func(int) time.Duration {
					return time.Duration(stragglerMs) * time.Millisecond
				}
			}
			w, err := hetgc.DialElasticWorker(master.Addr(), wcfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "worker %d: %v\n", i, err)
				return
			}
			_ = w.Run()
		}(i)
	}
	if err := master.WaitForWorkers(10 * time.Second); err != nil {
		master.Close()
		return err
	}
	res, err := master.Run()
	wg.Wait()
	if err != nil {
		return remediate(err, dir)
	}
	if len(res.Epochs) == 0 {
		fmt.Printf("\nnothing to do: the checkpoint already covers all %d iterations (raise -iters to continue training)\n", iters)
		return nil
	}
	fmt.Printf("\niterations %d..%d done  mean %.1fms  final epoch %d  stale-epoch fenced: %d\n",
		res.StartIter, iters, res.Summary.Mean*1e3, res.Epochs[len(res.Epochs)-1], res.StaleEpochRejected)
	if res.RootGen > 0 {
		fmt.Printf("high availability: root generation %d  stale-generation uploads fenced: %d\n",
			res.RootGen, res.FencedUploads)
		if res.RootGen > 1 {
			fmt.Printf("  this run took over from a deposed root (generation %d) and kept its progress\n", res.RootGen-1)
		}
	}
	fmt.Println("loss curve (time s, mean loss):")
	for _, p := range res.Curve.Points {
		fmt.Printf("  %8.3f  %.4f\n", p.X, p.Y)
	}
	if tel != nil {
		if rep := tel.StragglerReport(0); rep.Slowest != nil {
			sl := rep.Slowest
			fmt.Printf("\nstraggler attribution (window: %d traced iterations):\n", rep.WindowIters)
			fmt.Printf("  slowest: member %d  mean contribution %.1fms  gated %d iterations  slowest phase %s (%.1fms)  trend %s\n",
				sl.Member, sl.MeanSeconds*1e3, sl.GatedIters, sl.SlowestPhase, sl.SlowestPhaseSeconds*1e3, sl.Trend)
			for i, mr := range rep.Members {
				if i >= 5 {
					fmt.Printf("  … %d more members at /debug/stragglers\n", len(rep.Members)-i)
					break
				}
				fmt.Printf("  member %-3d contribs %-3d erasures %-2d mean %7.1fms  last %7.1fms  %s\n",
					mr.Member, mr.Contribs, mr.Erasures, mr.MeanSeconds*1e3, mr.LastSeconds*1e3, mr.Trend)
			}
		}
		if evs := tel.Journal().Recent(20); len(evs) > 0 {
			fmt.Println("\nevent journal (most recent):")
			for _, ev := range evs {
				line := fmt.Sprintf("  #%-4d %-9s iter=%d", ev.Seq, ev.Kind, ev.Iter)
				if ev.Member != 0 {
					line += fmt.Sprintf(" member=%d", ev.Member)
				}
				if ev.Detail != "" {
					line += " " + ev.Detail
				}
				fmt.Println(line)
			}
		}
	}
	if dir != "" {
		fmt.Printf("rerun with -resume to continue from the last snapshot in %s\n", dir)
	}
	return nil
}

// standBy tails the checkpoint directory until its root lease lapses, then
// returns so the caller can take over at the next generation.
func standBy(dir string, tel *hetgc.Telemetry) error {
	fmt.Printf("standby: tailing %s, waiting for the root lease to lapse\n", dir)
	prom, err := hetgc.NewStandby(hetgc.StandbyConfig{Dir: dir}).Run(nil)
	if err != nil {
		return fmt.Errorf("standby: %w", err)
	}
	last := -1
	if prom.State != nil {
		last = prom.State.LastIter
	}
	// The promoted master's own Acquire claims the next generation; record
	// the takeover now, at the moment the standby decides to promote.
	tel.OnPromotion(uint64(prom.Deposed.Gen+1), last)
	fmt.Printf("standby: promoted — generation %d (%q) lapsed; freshest durable iteration: %d\n",
		prom.Deposed.Gen, prom.Deposed.Holder, last)
	return nil
}

// remediate attaches an actionable hint to the typed checkpoint and
// high-availability failures.
func remediate(err error, dir string) error {
	switch {
	case errors.Is(err, hetgc.ErrFenced):
		hint := "let it finish, or restart this process with -standby to queue as its successor"
		if tok, terr := hetgc.ReadLeaseToken(dir); terr == nil {
			return fmt.Errorf("%w\n  hint: root generation %d (%q at %s) now owns %s — %s",
				err, tok.Gen, tok.Holder, tok.Addr, dir, hint)
		}
		return fmt.Errorf("%w\n  hint: a newer root generation owns %s — %s", err, dir, hint)
	case errors.Is(err, hetgc.ErrLeaseHeld):
		return fmt.Errorf("%w\n  hint: another live root holds the lease on %s — run this process with -standby to wait for it, or stop the other root first", err, dir)
	case errors.Is(err, hetgc.ErrNoCheckpoint):
		return fmt.Errorf("%w\n  hint: %s holds no checkpoint state — drop -resume to start a fresh run there", err, dir)
	case errors.Is(err, hetgc.ErrCheckpointCorrupt):
		return fmt.Errorf("%w\n  hint: every snapshot in %s failed its integrity check — restore the directory from a backup, or start fresh in an empty -checkpoint-dir", err, dir)
	case errors.Is(err, hetgc.ErrCheckpointExists):
		return fmt.Errorf("%w\n  hint: %s already holds a run's durable state — pass -resume to continue it, or point -checkpoint-dir at an empty directory", err, dir)
	default:
		return err
	}
}
