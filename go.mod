module github.com/hetgc/hetgc

go 1.21
