// Package hetgc is a Go implementation of heterogeneity-aware gradient
// coding for straggler tolerance (Wang et al., ICDCS 2019). It provides:
//
//   - Coding strategies: the paper's heter-aware (Alg. 1) and group-based
//     (Alg. 2/3) schemes, plus the naive, cyclic and fractional-repetition
//     baselines of Tandon et al. — see NewHeterAware, NewGroupBased,
//     NewCyclic, NewNaive, NewFractionalRepetition.
//   - Encoding/decoding of gradient vectors (EncodeGradient,
//     CombineGradients) and the data-partition allocation machinery.
//   - A discrete-event cluster simulator (Simulate, TrainSimulated, RunSSP)
//     reproducing the paper's evaluation, with the Table II clusters
//     (ClusterA…ClusterD) and straggler injectors.
//   - A real TCP master/worker runtime (NewMaster, DialWorker), its elastic
//     variant (RunElastic), and a hierarchical group-sharded runtime that
//     scales the scheme to hundreds of workers (RunSharded, SimulateSharded).
//   - Experiment runners regenerating every figure and table of the paper
//     (the Fig2/Fig3/Fig4/Fig5/Table2 family).
//
// The quickstart in examples/quickstart shows the core loop: build a
// strategy from worker throughputs, have each worker send a coded gradient,
// and decode the exact aggregated gradient from any m−s workers.
package hetgc

import (
	"math/rand"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/cluster"
	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/estimate"
	"github.com/hetgc/hetgc/internal/experiments"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/node"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/partition"
	"github.com/hetgc/hetgc/internal/planner"
	"github.com/hetgc/hetgc/internal/runtime"
	"github.com/hetgc/hetgc/internal/shard"
	"github.com/hetgc/hetgc/internal/sim"
	"github.com/hetgc/hetgc/internal/straggler"
)

// Core coding types.
type (
	// Strategy is a gradient coding strategy: allocation + coding matrix +
	// decoder. See the Kind constants for the five families.
	Strategy = core.Strategy
	// Kind identifies a strategy family.
	Kind = core.Kind
	// Allocation maps data partitions to workers.
	Allocation = partition.Allocation
	// Gradient is a flat gradient vector.
	Gradient = grad.Gradient
)

// Strategy kinds.
const (
	Naive                = core.Naive
	Cyclic               = core.Cyclic
	FractionalRepetition = core.FractionalRepetition
	HeterAware           = core.HeterAware
	GroupBased           = core.GroupBased
)

// Strategy construction errors.
var (
	// ErrUndecodable is returned when an alive set cannot decode.
	ErrUndecodable = core.ErrUndecodable
	// ErrConstruction is returned when code construction fails.
	ErrConstruction = core.ErrConstruction
)

// NewHeterAware builds the paper's heterogeneity-aware strategy (Alg. 1):
// k data partitions replicated s+1 times, loads proportional to the worker
// throughputs, robust to any s stragglers and makespan-optimal (Thm. 4/5).
func NewHeterAware(throughputs []float64, k, s int, rng *rand.Rand) (*Strategy, error) {
	return core.NewHeterAware(throughputs, k, s, rng)
}

// NewGroupBased builds the paper's group-based strategy (Alg. 2/3), which
// additionally decodes by plain summation from any fully-finished worker
// group — faster in practice when throughput estimates are imperfect.
func NewGroupBased(throughputs []float64, k, s int, rng *rand.Rand) (*Strategy, error) {
	return core.NewGroupBased(throughputs, k, s, rng)
}

// NewCyclic builds Tandon et al.'s homogeneous cyclic gradient code.
func NewCyclic(m, s int, rng *rand.Rand) (*Strategy, error) {
	return core.NewCyclic(m, s, rng)
}

// NewNaive builds the uncoded baseline requiring every worker.
func NewNaive(m int) (*Strategy, error) { return core.NewNaive(m) }

// NewFractionalRepetition builds Tandon et al.'s fractional repetition code
// (requires (s+1) | m).
func NewFractionalRepetition(m, s int) (*Strategy, error) {
	return core.NewFractionalRepetition(m, s)
}

// VerifyRobustness checks that a strategy decodes under every straggler
// pattern of size s (exhaustively for small clusters, sampled otherwise).
func VerifyRobustness(st *Strategy, samples int, rng *rand.Rand) error {
	return core.VerifyRobustness(st, samples, rng)
}

// AliveFromStragglers builds an alive mask with the given stragglers dead.
func AliveFromStragglers(m int, stragglers []int) []bool {
	return core.AliveFromStragglers(m, stragglers)
}

// EncodeGradient forms a worker's coded gradient Σ coeff_j·partial_j.
func EncodeGradient(coeffs []float64, partials []Gradient) (Gradient, error) {
	return grad.Encode(coeffs, partials)
}

// CombineGradients recombines coded gradients with decoding coefficients.
func CombineGradients(coeffs []float64, coded []Gradient, dim int) (Gradient, error) {
	return grad.Combine(coeffs, coded, dim)
}

// SumGradients returns the plain sum of gradients.
func SumGradients(gs []Gradient) (Gradient, error) { return grad.Sum(gs) }

// Allocation-free kernel variants: each overwrites dst (whose length fixes
// the gradient dimension) instead of allocating. Pair them with
// GetGradientBuffer/PutGradientBuffer for zero-alloc steady-state loops.

// EncodeGradientInto forms a worker's coded gradient in place.
func EncodeGradientInto(dst Gradient, coeffs []float64, partials []Gradient) error {
	return grad.EncodeInto(dst, coeffs, partials)
}

// CombineGradientsInto recombines coded gradients in place.
func CombineGradientsInto(dst Gradient, coeffs []float64, coded []Gradient) error {
	return grad.CombineInto(dst, coeffs, coded)
}

// SumGradientsInto sums gradients in place.
func SumGradientsInto(dst Gradient, gs []Gradient) error { return grad.SumInto(dst, gs) }

// GetGradientBuffer returns a length-dim gradient from the shared buffer
// pool; its contents are unspecified (the *Into kernels overwrite fully).
func GetGradientBuffer(dim int) Gradient { return grad.GetBuffer(dim) }

// PutGradientBuffer recycles a gradient obtained from GetGradientBuffer. The
// caller must not use it afterwards.
func PutGradientBuffer(g Gradient) { grad.PutBuffer(g) }

// Cluster modelling.
type (
	// Cluster is a heterogeneous worker fleet.
	Cluster = cluster.Cluster
	// ClusterWorker describes one machine.
	ClusterWorker = cluster.Worker
)

// Table II clusters of the paper.
var (
	ClusterA = cluster.ClusterA
	ClusterB = cluster.ClusterB
	ClusterC = cluster.ClusterC
	ClusterD = cluster.ClusterD
)

// NewCluster builds a cluster from a vCPU histogram.
func NewCluster(name string, vcpuCounts map[int]int, baseThroughput float64) (*Cluster, error) {
	return cluster.FromHistogram(name, vcpuCounts, baseThroughput)
}

// Straggler injectors for simulations.
type (
	// StragglerInjector produces per-iteration extra delays.
	StragglerInjector = straggler.Injector
	// FixedStragglers delays a fixed number of random workers.
	FixedStragglers = straggler.Fixed
	// PinnedStragglers delays a fixed worker set.
	PinnedStragglers = straggler.Pinned
	// TransientStragglers models probabilistic interference.
	TransientStragglers = straggler.Transient
)

// Simulation API.
type (
	// SimConfig parameterises a timing simulation.
	SimConfig = sim.Config
	// SimResult aggregates a simulation run.
	SimResult = sim.Result
	// TrainSimConfig couples timing simulation with real training.
	TrainSimConfig = sim.TrainConfig
	// TrainSimResult is a coded-training outcome.
	TrainSimResult = sim.TrainResult
	// SSPConfig parameterises the stale-synchronous baseline.
	SSPConfig = sim.SSPConfig
	// SSPResult is the SSP outcome.
	SSPResult = sim.SSPResult
)

// Simulate runs a timing-only simulation (Figs. 2, 3, 5).
func Simulate(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// TrainSimulated runs the coded-training co-simulation (Fig. 4).
func TrainSimulated(cfg TrainSimConfig) (*TrainSimResult, error) { return sim.Train(cfg) }

// RunSSP runs the SSP baseline simulation (Fig. 4).
func RunSSP(cfg SSPConfig) (*SSPResult, error) { return sim.RunSSP(cfg) }

// ML substrate.
type (
	// Model is a differentiable model over flat parameters.
	Model = ml.Model
	// Dataset holds features and labels.
	Dataset = ml.Dataset
	// LinearRegression, LogisticRegression, Softmax and MLP are the built-in
	// models.
	LinearRegression   = ml.LinearRegression
	LogisticRegression = ml.LogisticRegression
	Softmax            = ml.Softmax
	MLP                = ml.MLP
	// SGD and Adam are the built-in optimizers.
	SGD  = ml.SGD
	Adam = ml.Adam
	// Optimizer updates parameters from gradients.
	Optimizer = ml.Optimizer
)

// GaussianMixture generates a synthetic classification dataset.
func GaussianMixture(n, dim, classes int, sep float64, rng *rand.Rand) (*Dataset, error) {
	return ml.GaussianMixture(n, dim, classes, sep, rng)
}

// LinearData generates a synthetic regression dataset.
func LinearData(n, dim int, noise float64, rng *rand.Rand) (*Dataset, error) {
	return ml.LinearData(n, dim, noise, rng)
}

// MeanLoss evaluates a model's mean loss on a dataset.
func MeanLoss(m Model, params []float64, d *Dataset) (float64, error) {
	return ml.MeanLoss(m, params, d)
}

// Distributed runtime.
type (
	// Master drives the BSP loop over TCP workers.
	Master = runtime.Master
	// MasterConfig configures a master.
	MasterConfig = runtime.MasterConfig
	// MasterResult summarises a run.
	MasterResult = runtime.MasterResult
	// WorkerConfig configures a worker process.
	WorkerConfig = runtime.WorkerConfig
	// RuntimeWorker is a connected worker.
	RuntimeWorker = runtime.Worker
)

// NewMaster starts a master listening on addr.
func NewMaster(cfg MasterConfig, addr string) (*Master, error) {
	return runtime.NewMaster(cfg, addr)
}

// DialWorker connects a worker to a master and performs the assignment
// handshake.
func DialWorker(addr string, cfg WorkerConfig) (*RuntimeWorker, error) {
	return runtime.DialWorker(addr, cfg)
}

// Durable training state: the checkpoint + journal subsystem behind
// ElasticConfig.CheckpointDir / ShardedConfig.CheckpointDir. A master with a
// checkpoint directory journals every migration, iteration and membership
// event and snapshots the model atomically; Resume reconstructs it after a
// crash with pre-crash uploads fenced by epoch.
type (
	// CheckpointState is the recovered view of a checkpoint directory.
	CheckpointState = checkpoint.State
	// CheckpointSnapshot is one durable model snapshot.
	CheckpointSnapshot = checkpoint.Snapshot
)

// Checkpoint recovery errors.
var (
	// ErrNoCheckpoint is returned when a directory holds no checkpoint state.
	ErrNoCheckpoint = checkpoint.ErrNoCheckpoint
	// ErrCheckpointCorrupt is returned when no snapshot in the directory
	// passes its integrity checks.
	ErrCheckpointCorrupt = checkpoint.ErrCorrupt
	// ErrCheckpointExists is returned when a fresh (non-resume) run names a
	// directory that already holds checkpoint state.
	ErrCheckpointExists = checkpoint.ErrExists
)

// RecoverCheckpoint reads a checkpoint directory without opening it for
// writing — inspection and tooling.
func RecoverCheckpoint(dir string) (*CheckpointState, error) { return checkpoint.Recover(dir) }

// Elastic control plane: live telemetry, online re-planning and
// epoch-versioned mid-training strategy migration.
type (
	// ElasticMaster drives elastic BSP training over workers that may join,
	// die and rejoin mid-run, migrating the coding strategy on drift/churn.
	ElasticMaster = runtime.ElasticMaster
	// ElasticConfig configures an elastic master (coding parameters plus the
	// control plane's drift/cooldown knobs).
	ElasticConfig = runtime.ElasticConfig
	// ElasticResult summarises an elastic run: iteration times, per-iteration
	// epochs, migration history, stale-epoch rejections.
	ElasticResult = runtime.ElasticResult
	// ElasticWorker is a migration-aware, telemetry-reporting worker.
	ElasticWorker = runtime.ElasticWorker
	// ElasticWorkerConfig configures an elastic worker (set ResumeID to
	// reclaim a member slot after a reconnect).
	ElasticWorkerConfig = runtime.ElasticWorkerConfig
	// ReplanEvent records one migration (iteration, epoch, trigger).
	ReplanEvent = elastic.ReplanEvent
	// ElasticController is the transport-agnostic control plane shared by
	// the live runtime and the churn simulator.
	ElasticController = elastic.Controller
	// ElasticControllerConfig parameterises an ElasticController.
	ElasticControllerConfig = elastic.Config
)

// NewElasticMaster starts an elastic master accepting workers on addr.
func NewElasticMaster(cfg ElasticConfig, addr string) (*ElasticMaster, error) {
	return runtime.NewElasticMaster(cfg, addr)
}

// DialElasticWorker connects an elastic worker to a master; it receives its
// assignments via epoch-versioned reassignment messages.
func DialElasticWorker(addr string, cfg ElasticWorkerConfig) (*ElasticWorker, error) {
	return runtime.DialElasticWorker(addr, cfg)
}

// RunElastic starts an elastic master on addr, waits for the worker quorum
// and trains to completion.
func RunElastic(cfg ElasticConfig, addr string, waitTimeout time.Duration) (*ElasticResult, error) {
	return runtime.RunElastic(cfg, addr, waitTimeout)
}

// High availability: a root with ElasticConfig.LeaseTTL (or
// ShardedConfig.LeaseTTL) set holds a monotonic lease over its checkpoint
// directory. Every broadcast carries the lease generation, every upload
// echoes it, and every journal write verifies it — so when a standby takes
// over the directory at the next generation, the deposed root's writes are
// rejected typed (ErrFenced) instead of corrupting the successor's run.
type (
	// HALease is an acquired root lease: a monotonic generation over a
	// checkpoint directory, renewed while the holder is healthy.
	HALease = ha.Lease
	// HAToken is the durable claim a lease writes: generation, holder,
	// address, expiry.
	HAToken = ha.Token
	// Standby tails a root's checkpoint directory and reports when the
	// lease lapses — the warm half of a failover pair.
	Standby = ha.Standby
	// StandbyConfig parameterises a Standby (directory, poll cadence,
	// post-expiry grace).
	StandbyConfig = ha.StandbyConfig
	// Promotion is what a standby hands over when the lease lapses: the
	// deposed token and the freshest durable state it tailed.
	Promotion = ha.Promotion
)

// High-availability errors.
var (
	// ErrFenced marks a write or run rejected because a higher lease
	// generation has claimed the root's checkpoint directory.
	ErrFenced = ha.ErrFenced
	// ErrLeaseHeld is returned by AcquireLease while another holder's
	// unexpired claim stands.
	ErrLeaseHeld = ha.ErrLeaseHeld
)

// AcquireLease claims dir's root lease for holder at the next generation,
// advertising addr to group masters and standbys. It fails typed
// (ErrLeaseHeld) while another holder's claim is unexpired.
func AcquireLease(dir, holder, addr string, ttl time.Duration) (*HALease, error) {
	return ha.Acquire(dir, holder, addr, ttl)
}

// NewStandby builds a warm standby over a root's checkpoint directory; its
// Run blocks until the lease lapses and the standby should take over.
func NewStandby(cfg StandbyConfig) *Standby { return ha.NewStandby(cfg) }

// ReadLeaseToken reads dir's current lease token without claiming anything
// — discovery and monitoring.
func ReadLeaseToken(dir string) (*HAToken, error) { return ha.ReadToken(dir) }

// NewElasticController builds the control plane directly (for custom
// runtimes or simulators).
func NewElasticController(cfg ElasticControllerConfig, rng *rand.Rand) (*ElasticController, error) {
	return elastic.NewController(cfg, rng)
}

// Deterministic elastic churn simulation.
type (
	// ElasticSimConfig parameterises a socket-free elastic control-loop
	// simulation over a seeded churn schedule.
	ElasticSimConfig = sim.ElasticSimConfig
	// ElasticSimResult aggregates an elastic simulation run.
	ElasticSimResult = sim.ElasticSimResult
	// ChurnEvent is one scheduled speed step, kill, join or rejoin.
	ChurnEvent = sim.ChurnEvent
	// ChurnKind enumerates churn event kinds.
	ChurnKind = sim.ChurnKind
)

// Churn event kinds.
const (
	ChurnSpeedStep = sim.SpeedStep
	ChurnKill      = sim.Kill
	ChurnJoin      = sim.Join
	ChurnRejoin    = sim.Rejoin
)

// SimulateElastic runs the deterministic elastic co-simulation — the same
// control plane as the live runtime, bit-identical for a fixed seed.
func SimulateElastic(cfg ElasticSimConfig) (*ElasticSimResult, error) {
	return sim.RunElastic(cfg)
}

// Hierarchical group-sharded runtime: the worker fleet is partitioned into
// independently-coded groups, each with its own group master (local decode,
// group-local elastic control plane, per-group epochs) and its own slice of
// the global partitions; group sums are streamed upward as coalesced chunked
// batches and reduced along a configurable fan-in tree into a root master.
type (
	// ShardedConfig configures a sharded training run.
	ShardedConfig = shard.Config
	// ShardedResult summarises a sharded run (per-group stats included).
	ShardedResult = shard.Result
	// ShardedRoot is the hierarchy's root master; workers dial the group
	// addresses it exposes (GroupAddrs/Plan).
	ShardedRoot = shard.Root
	// ShardGroupStats is one group's run summary.
	ShardGroupStats = shard.GroupStats
	// ShardPlan is a sharded deployment plan (groups, partition ownership,
	// reduction tree).
	ShardPlan = shard.Plan
	// ShardPlanConfig parameterises the sharding planner.
	ShardPlanConfig = shard.PlanConfig
	// ReductionTree is the cross-group aggregation topology.
	ReductionTree = shard.Tree
)

// NewShardedRoot builds the shard plan, starts the root on addr and spawns
// one group master per coding group, each on its own loopback address.
func NewShardedRoot(cfg ShardedConfig, addr string) (*ShardedRoot, error) {
	return shard.NewRoot(cfg, addr)
}

// RunSharded is the one-call sharded entry point: it builds the hierarchy on
// addr, invokes onListen (dial workers at root.GroupAddrs() there), waits
// for every group's worker quorum and trains to completion.
func RunSharded(cfg ShardedConfig, addr string, waitTimeout time.Duration, onListen func(*ShardedRoot)) (*ShardedResult, error) {
	return shard.RunSharded(cfg, addr, waitTimeout, onListen)
}

// BuildShardPlan shards workers into coding groups with per-group strategies
// and a reduction tree — the planning step of the hierarchical runtime,
// usable standalone.
func BuildShardPlan(throughputs []float64, cfg ShardPlanConfig, rng *rand.Rand) (*ShardPlan, error) {
	return shard.BuildPlan(throughputs, cfg, rng)
}

// NewReductionTree builds a fan-in-ary aggregation tree over the given leaf
// count.
func NewReductionTree(leaves, fanIn int) *ReductionTree { return shard.NewTree(leaves, fanIn) }

// Deterministic sharded co-simulation.
type (
	// ShardedSimConfig parameterises a socket-free sharded simulation over
	// optional churn schedules and straggler injectors.
	ShardedSimConfig = sim.ShardedSimConfig
	// ShardedSimResult aggregates a sharded simulation run.
	ShardedSimResult = sim.ShardedSimResult
	// GroupReplanEvent is one group-local migration of a sharded simulation.
	GroupReplanEvent = sim.GroupReplanEvent
)

// SimulateSharded runs the deterministic sharded co-simulation — the same
// group-local control planes as the live hierarchy, bit-identical for a
// fixed seed. A GroupSize covering every worker degenerates to the flat
// single-master runtime, which makes flat-vs-sharded comparisons exact.
func SimulateSharded(cfg ShardedSimConfig) (*ShardedSimResult, error) {
	return sim.RunSharded(cfg)
}

// Throughput estimation.
type (
	// ThroughputSampler estimates worker speed by sampling.
	ThroughputSampler = estimate.Sampler
	// ThroughputEWMA estimates worker speed with exponential smoothing.
	ThroughputEWMA = estimate.EWMA
	// ThroughputMeter is a count-gated EWMA with a prior — the elastic
	// control plane's per-worker estimator.
	ThroughputMeter = estimate.Meter
)

// NewThroughputMeter builds a count-gated EWMA throughput estimator with
// the given smoothing factor and prior rate guess.
func NewThroughputMeter(alpha, prior float64) *ThroughputMeter {
	return estimate.NewMeter(alpha, prior)
}

// PredictedImbalance predicts a strategy's iteration time relative to the
// optimal makespan under throughput estimates (1.0 = balanced) — the drift
// signal of the online replanning loop.
func PredictedImbalance(st *Strategy, estimates []float64) float64 {
	return planner.PredictedImbalance(st, estimates)
}

// MisestimateThroughputs perturbs true speeds with relative noise eps.
func MisestimateThroughputs(truth []float64, eps float64, rng *rand.Rand) []float64 {
	return estimate.Misestimate(truth, eps, rng)
}

// Experiments (paper figures and tables).
type (
	// DelaySweepConfig parameterises Fig. 2.
	DelaySweepConfig = experiments.DelaySweepConfig
	// DelayRow is one Fig. 2 sweep row.
	DelayRow = experiments.DelayRow
	// ClusterSweepConfig parameterises Figs. 3 and 5.
	ClusterSweepConfig = experiments.ClusterSweepConfig
	// ClusterRow is one Fig. 3/5 row.
	ClusterRow = experiments.ClusterRow
	// LossCurveConfig parameterises Fig. 4.
	LossCurveConfig = experiments.LossCurveConfig
	// LossCurves is the Fig. 4 result.
	LossCurves = experiments.LossCurves
	// MisestimationConfig parameterises the estimation ablation.
	MisestimationConfig = experiments.MisestimationConfig
	// MisestimationRow is one estimation-ablation row.
	MisestimationRow = experiments.MisestimationRow
	// ReplicationSweepConfig parameterises the s ablation.
	ReplicationSweepConfig = experiments.ReplicationSweepConfig
	// ReplicationRow is one s-ablation row.
	ReplicationRow = experiments.ReplicationRow
	// MetricsTable is a renderable result table.
	MetricsTable = metrics.Table
	// LossSeries is a named (time, loss) curve.
	LossSeries = metrics.Series
)

// Experiment runners (see DESIGN.md experiment index).
var (
	RunFig2Sweep        = experiments.RunDelaySweep
	RunFig3Clusters     = experiments.RunClusterSweep
	RunFig4LossCurves   = experiments.RunLossCurves
	RunMisestimation    = experiments.RunMisestimation
	RunReplicationSweep = experiments.RunReplicationSweep
	Table2              = experiments.Table2
	DelayTable          = experiments.DelayTable
	ClusterTable        = experiments.ClusterTable
	UsageTable          = experiments.UsageTable
	MisestimationTable  = experiments.MisestimationTable
	ReplicationTable    = experiments.ReplicationTable
	SpeedupVsCyclic     = experiments.SpeedupVsCyclic
	ChooseK             = experiments.ChooseK
	BuildStrategy       = experiments.BuildStrategy
	DefaultSchemes      = experiments.DefaultSchemes
)

// Decoding-matrix precomputation (paper §III.B: "A could be partially
// stored specially for regular stragglers").
type (
	// DecodingMatrix stores precomputed decoding rows per straggler pattern.
	DecodingMatrix = core.DecodingMatrix
	// StragglerPattern is a sorted straggler worker set.
	StragglerPattern = core.Pattern
	// DecodeCacheStats snapshots a strategy's decode-plan cache counters
	// (see Strategy.DecodeCacheStats, Strategy.InstallDecodingMatrix).
	DecodeCacheStats = metrics.CacheStats
)

// RegularPatterns enumerates straggler patterns of size ≤ s over a suspect
// worker set, for pre-storing their decoding rows.
func RegularPatterns(suspects []int, s int) []StragglerPattern {
	return core.RegularPatterns(suspects, s)
}

// Adaptive planning (estimate → allocate → re-code loop).
type (
	// Planner tracks throughput estimates and rebuilds strategies on drift.
	Planner = planner.Planner
	// PlannerConfig configures a Planner.
	PlannerConfig = planner.Config
)

// NewPlanner builds a planner with an initial strategy from throughput
// guesses; feed it Observe() samples and call MaybeReplan between epochs.
func NewPlanner(cfg PlannerConfig, initialThroughputs []float64, rng *rand.Rand) (*Planner, error) {
	return planner.New(cfg, initialThroughputs, rng)
}

// WriteTimelineCSV exports a simulation's per-worker timeline as CSV.
var WriteTimelineCSV = sim.WriteTimelineCSV

// AsciiPlot renders loss/time series as a terminal chart (Fig. 4 style).
var AsciiPlot = metrics.AsciiPlot

// MergeSeriesCSV writes several series as one wide CSV aligned on x.
var MergeSeriesCSV = metrics.MergeSeries

// Live telemetry plane: a dependency-free metrics registry with Prometheus
// text exposition, an HTTP server (/metrics, /healthz, /debug/events,
// /debug/trace, /debug/pprof), per-iteration phase tracing and a structured
// control-plane event journal. Set ElasticConfig.Obs / ShardedConfig.Obs /
// ElasticSimConfig.Obs / ShardedSimConfig.Obs to the same *Telemetry to
// instrument a run; nil (the default) disables everything. The sim and live
// runtimes emit the same metric families, so their scrapes are diffable.
type (
	// Telemetry is the canonical hetgc metric bundle plus the event journal
	// and iteration tracer.
	Telemetry = obs.Metrics
	// TelemetryServer is the HTTP server exposing a Telemetry bundle.
	TelemetryServer = obs.Server
	// TelemetryRegistry is the underlying metric registry (usable standalone
	// for custom metrics).
	TelemetryRegistry = obs.Registry
	// TelemetryEvent is one structured control-plane event (replan,
	// join/death, failover, fence, ...).
	TelemetryEvent = obs.Event
	// IterTrace is one traced iteration: phase spans from broadcast to
	// persist.
	IterTrace = obs.IterTrace
)

// NewTelemetry builds a Telemetry bundle on a fresh registry with
// default-capacity event journal and iteration tracer.
func NewTelemetry() *Telemetry { return obs.New() }

// ServeTelemetry starts the telemetry HTTP server on addr (host:port; port 0
// picks a free one) exposing m. Close the returned server when done.
func ServeTelemetry(m *Telemetry, addr string) (*TelemetryServer, error) {
	return obs.NewServer(addr, m)
}

// Cluster deployment: the configuration blocks and node assembly behind the
// standalone gcroot/gcworker binaries. A cluster is described once — a
// Roster for static discovery plus the composable durability/HA/telemetry
// blocks — and every process role (training root, warm standby, worker) is
// assembled from that one ClusterConfig. Workers fetch their training shards
// from the root's data plane, so a worker machine needs nothing but the
// roster file and the cluster's (seed, k) pair.
type (
	// DurabilityConfig selects checkpointing (journal + snapshots); embedded
	// by ElasticConfig, ShardedConfig, StandbyConfig and ClusterConfig.
	DurabilityConfig = clustercfg.DurabilityConfig
	// HAConfig selects lease-fenced high availability.
	HAConfig = clustercfg.HAConfig
	// TelemetryConfig plugs a Telemetry bundle into a runtime.
	TelemetryConfig = clustercfg.TelemetryConfig
	// WireConfig selects the gradient wire codec a master prefers; negotiated
	// per connection, with raw float64 as the universal fallback.
	WireConfig = clustercfg.WireConfig
	// Roster is a cluster's static discovery plan: root address, standby
	// addresses in promotion order, expected worker count.
	Roster = node.Roster
	// ClusterConfig is the single declarative configuration a cluster node
	// runs from.
	ClusterConfig = node.ClusterConfig
	// Workload is the training job a cluster runs (model, optimizer, data).
	Workload = node.Workload
	// RootNode is a standalone training root (see StartRoot).
	RootNode = node.Root
	// WorkerNodeConfig configures a standalone worker process.
	WorkerNodeConfig = node.WorkerConfig
	// ReconnectPolicy bounds a worker's dial retry sequence.
	ReconnectPolicy = runtime.ReconnectPolicy
)

// Cluster configuration errors.
var (
	// ErrRoster marks an unusable roster file; every instance carries a
	// remediation hint.
	ErrRoster = node.ErrRoster
	// ErrBadNode marks an unusable cluster node configuration.
	ErrBadNode = node.ErrBadNode
)

// LoadRoster reads and parses a roster file (TOML or JSON, sniffed by
// content).
func LoadRoster(path string) (*Roster, error) { return node.LoadRoster(path) }

// ParseRoster parses a roster from TOML or JSON bytes.
func ParseRoster(b []byte) (*Roster, error) { return node.ParseRoster(b) }

// DefaultWorkload builds the seed-derived synthetic workload shared by the
// gcroot/gcworker binaries: the same (seed, k) yields bit-identical data on
// every machine.
func DefaultWorkload(seed int64, k int) (*Workload, error) {
	return node.DefaultWorkload(seed, k)
}

// StartRoot builds a cluster training root and starts accepting workers.
func StartRoot(cfg ClusterConfig, resume bool) (*RootNode, error) {
	return node.StartRoot(cfg, resume)
}

// RunStandby tails the checkpoint directory until the active root's lease
// lapses, then promotes and finishes the run. A nil result (with nil error)
// means stop was closed before promotion.
func RunStandby(cfg ClusterConfig, stop <-chan struct{}) (*ElasticResult, error) {
	return node.RunStandby(cfg, stop)
}

// RunWorkerNode runs the standalone worker loop: resolve the live root,
// dial, train until the connection drops, re-resolve and rejoin.
func RunWorkerNode(cfg WorkerNodeConfig, stop <-chan struct{}) error {
	return node.RunWorker(cfg, stop)
}

// ParamsDigest returns a short hex digest of a parameter vector, for
// comparing two runs for bit-identity.
func ParamsDigest(params []float64) string { return node.ParamsDigest(params) }

// NewRand returns a deterministic rand.Rand for the given seed — the only
// randomness source the library uses.
func NewRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SeedFromTime returns a time-based seed for interactive use.
func SeedFromTime() int64 { return time.Now().UnixNano() }
