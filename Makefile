GO ?= go

.PHONY: all build test vet lint race cover cover-gate cover-check \
	fuzz-smoke smoke-examples metrics-smoke e2e-procs bench bench-smoke \
	bench-baseline bench-compare bench-json

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Lint: formatting must be clean, vet must pass, and staticcheck runs when
# installed (CI installs it; locally it is optional). The final grep pins
# every "hetgc_ metric name literal in production code to
# internal/obs/names.go, so the sim and live runtimes cannot drift apart on
# naming. Tests and examples are exempt: they assert on the text exposition
# deliberately, as black-box scrape consumers.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@bad=$$(grep -rn '"hetgc_' --include='*.go' --exclude='*_test.go' \
		--exclude-dir=examples . | grep -v 'internal/obs/names.go'); \
	if [ -n "$$bad" ]; then \
		echo "metric name literals outside internal/obs/names.go (use the obs.M* constants):"; \
		echo "$$bad"; exit 1; \
	fi
	@echo "metric names: single-sourced in internal/obs/names.go"

race:
	$(GO) test -race ./...

# COVERAGE_FLOOR is the minimum total statement coverage (percent) the test
# suite must reach; cover-check fails below it. Raise it as coverage grows.
COVERAGE_FLOOR ?= 80.0

cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# cover-gate checks an existing coverage.out against the floor without
# re-running the suite (CI produces the profile in its race-test step).
cover-gate:
	@test -f coverage.out || { echo "coverage.out missing; run 'make cover' first"; exit 1; }
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {gsub("%","",$$3); print $$3}'); \
	awk -v t="$$total" -v floor="$(COVERAGE_FLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "total coverage %.1f%% is below the %.1f%% floor\n", t, floor; exit 1 } \
		printf "total coverage %.1f%% >= %.1f%% floor\n", t, floor }'

cover-check: cover cover-gate

# Short fuzz smoke over every defensive decode path: the join/rejoin
# handshake (any byte stream a peer opens with must yield a valid hello or a
# typed transport.ErrMalformed), the checkpoint snapshot/journal decoders
# (truncated, bit-flipped or garbage bytes must yield typed
# checkpoint.ErrCorrupt — never a panic, never a silent mis-decode), the
# lease-token codec (arbitrary LEASE file bytes must yield an error wrapping
# checkpoint.ErrCorrupt), the adoption-handshake frames and the quantized
# gradient sub-frame (arbitrary codec bytes, corrupt scale headers and
# truncated payloads must yield transport.ErrMalformed — never a panic). A
# failing input is written to the package's testdata/fuzz; rerun it with
# `go test -run 'Fuzz<Target>/<name>' ./internal/<pkg>`.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReadHello$$' -fuzztime $(FUZZTIME) ./internal/roster
	$(GO) test -run '^$$' -fuzz '^FuzzSnapshot$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzJournal$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzLease$$' -fuzztime $(FUZZTIME) ./internal/ha
	$(GO) test -run '^$$' -fuzz '^FuzzAdoption$$' -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz '^FuzzQuantizedFrame$$' -fuzztime $(FUZZTIME) ./internal/transport
	$(GO) test -run '^$$' -fuzz '^FuzzRoster$$' -fuzztime $(FUZZTIME) ./internal/node

# Smoke-run the quickstart example: a panic in example main paths must fail
# the build pipeline, not linger unnoticed (5s budget where `timeout` exists
# — stock macOS ships without coreutils).
smoke-examples:
	$(GO) build ./examples/...
	@if command -v timeout >/dev/null 2>&1; then \
		timeout 5 $(GO) run ./examples/quickstart; \
	else \
		$(GO) run ./examples/quickstart; \
	fi

# Live telemetry smoke: each runtime (elastic and sharded) trains a loopback
# cluster with checkpointing and the HA lease on while serving /metrics; the
# tests scrape mid-run and assert the acceptance families carry non-zero
# samples — iteration counters, throughput estimates, decode-cache hit rate,
# snapshot activity and the lease generation. `make test` runs these too;
# this named target is the CI entry point.
metrics-smoke:
	$(GO) test -run 'TestMetricsSmoke' -v .

# Multi-process failover e2e: builds the gcroot/gcworker binaries, spawns a
# real cluster (1 root + 1 standby + 4 workers as separate OS processes, with
# training shards fetched over the wire), SIGKILLs the root mid-training and
# asserts the promoted standby finishes with parameters bit-identical to an
# uninterrupted in-process run. Point HETGC_E2E_ARTIFACTS at a directory to
# keep the per-process logs and /debug/events journal tails.
e2e-procs:
	HETGC_E2E_PROCS=1 $(GO) test -v -run '^TestProcClusterFailover$$' -timeout 300s ./e2e

# Full benchmark sweep with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One-iteration smoke pass (CI): checks every benchmark still runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Emit the machine-readable benchmark baseline tracked in BENCH_baseline.json.
# Future perf PRs regenerate it and diff the trajectory.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/gcbench > BENCH_baseline.json
	@echo wrote BENCH_baseline.json

# Regression gate: rerun the gated benchmarks — decode/encode hot paths, the
# quantized batched-uplink wire benches (gating their wire-B/iter extras) and
# the fleet-scale IterRate end-to-end throughput benches (gating iter/s) —
# and fail when any regressed beyond BENCH_TOLERANCE versus the committed
# baseline. Override the tolerance when the hardware differs from the
# baseline machine (CI does).
BENCH_TOLERANCE ?= 0.25
bench-compare:
	$(GO) test -run '^$$' -bench 'Decode|Encode|Uplink|IterRate' -benchmem ./... > /tmp/hetgc-bench-current.txt
	$(GO) run ./cmd/gcbench -compare BENCH_baseline.json -tolerance $(BENCH_TOLERANCE) < /tmp/hetgc-bench-current.txt

# Emit the current benchmark sweep as JSON (BENCH_current.json) without
# touching the committed baseline — CI uploads it as a workflow artifact.
# Two commands, not a pipe: a bench build failure or panic must fail the
# target instead of being masked by gcbench's exit status.
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem ./... > /tmp/hetgc-bench-json.txt
	$(GO) run ./cmd/gcbench < /tmp/hetgc-bench-json.txt > BENCH_current.json
	@echo wrote BENCH_current.json
