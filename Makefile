GO ?= go

.PHONY: all build test vet race bench bench-smoke bench-baseline

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One-iteration smoke pass (CI): checks every benchmark still runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Emit the machine-readable benchmark baseline tracked in BENCH_baseline.json.
# Future perf PRs regenerate it and diff the trajectory.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/gcbench > BENCH_baseline.json
	@echo wrote BENCH_baseline.json
