GO ?= go

.PHONY: all build test vet race bench bench-smoke bench-baseline bench-compare

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# One-iteration smoke pass (CI): checks every benchmark still runs.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Emit the machine-readable benchmark baseline tracked in BENCH_baseline.json.
# Future perf PRs regenerate it and diff the trajectory.
bench-baseline:
	$(GO) test -run '^$$' -bench . -benchmem ./... | $(GO) run ./cmd/gcbench > BENCH_baseline.json
	@echo wrote BENCH_baseline.json

# Regression gate: rerun the decode/encode hot-path benchmarks and fail when
# any of them regressed beyond BENCH_TOLERANCE (relative ns/op) versus the
# committed baseline. Override the tolerance when the hardware differs from
# the baseline machine (CI does).
BENCH_TOLERANCE ?= 0.25
bench-compare:
	$(GO) test -run '^$$' -bench 'Decode|Encode' -benchmem ./... > /tmp/hetgc-bench-current.txt
	$(GO) run ./cmd/gcbench -compare BENCH_baseline.json -tolerance $(BENCH_TOLERANCE) < /tmp/hetgc-bench-current.txt
