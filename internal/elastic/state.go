// Control-plane state capture and restore: the pieces of a Controller a
// checkpoint must carry so a crashed master can be reconstructed. Two
// fidelity levels share one mechanism:
//
//   - The live runtimes snapshot membership and throughput estimates only.
//     A resumed master restores every member as dead-awaiting-rejoin (their
//     warm meters become the planning priors when they reconnect with their
//     old ResumeID) and raises the epoch base above every epoch the journal
//     ever recorded, so gradient uploads encoded before the crash are fenced
//     by the ordinary stale-epoch check.
//   - The deterministic simulator additionally snapshots the current plan's
//     provenance — the estimates it was built from and the RNG draw count
//     consumed before it was built. Because strategy construction is the
//     control plane's only randomness, replaying the seeded source to
//     DrawsBefore and rebuilding from the recorded estimates reproduces the
//     plan bit-for-bit, which is what makes crash-at-k + resume
//     indistinguishable from an uninterrupted run.
package elastic

import (
	"fmt"

	"github.com/hetgc/hetgc/internal/estimate"
	"github.com/hetgc/hetgc/internal/planner"
)

// MemberState is one member's serialisable control-plane state.
type MemberState struct {
	// ID is the stable member ID.
	ID int
	// Alive records whether the member was alive at capture time. A live
	// resume forces it false — every connection died with the master.
	Alive bool
	// Meter is the member's throughput-estimator state.
	Meter estimate.MeterState
}

// PlanState is the provenance needed to rebuild the current plan exactly:
// the inputs of the strategy construction plus the RNG position before it
// ran. Captured only when the controller has a draw counter (SetDrawCounter),
// because without one the RNG cannot be repositioned.
type PlanState struct {
	// Iter is the iteration the plan was built at (the cooldown anchor).
	Iter int
	// Epoch is the plan's version.
	Epoch int
	// Members maps strategy slots to member IDs.
	Members []int
	// Est are the throughput estimates the strategy was built from, aligned
	// with Members.
	Est []float64
	// DrawsBefore is the seeded source's draw count immediately before the
	// strategy construction consumed from it.
	DrawsBefore uint64
}

// ControllerState is the serialisable control-plane snapshot.
type ControllerState struct {
	// Members lists every member ever seen, in join order (join order is the
	// controller's deterministic iteration order, so it must survive).
	Members []MemberState
	// LastReplan is the iteration of the most recent replan (-1 before any).
	LastReplan int
	// Plan, when set, allows bit-identical plan reconstruction (simulator
	// checkpoints only; nil in live snapshots).
	Plan *PlanState
	// Events is the replan history up to the capture.
	Events []ReplanEvent
}

// SetDrawCounter hands the controller a view of its RNG source's draw count
// (checkpoint.CountingSource.Draws). With a counter set, Replan records the
// draw position before each strategy construction and State includes the
// PlanState needed for exact reconstruction.
func (ct *Controller) SetDrawCounter(draws func() uint64) { ct.draws = draws }

// SetEpochBase raises the floor for the next plan's epoch. A resumed master
// sets it above every epoch its journal ever recorded, so plans built after
// the restart can never collide with — and are never older than — uploads
// encoded before the crash.
func (ct *Controller) SetEpochBase(epoch int) {
	if epoch > ct.epochBase {
		ct.epochBase = epoch
	}
}

// maxStateEvents bounds the replan history carried in a snapshot: recovery
// needs membership, estimates and plan provenance, not the full audit
// trail, and an unbounded history would grow every snapshot of a long
// churny run linearly with its age.
const maxStateEvents = 64

// State captures the controller for a checkpoint snapshot. The returned
// state shares nothing with the controller. The replan history is capped at
// its most recent maxStateEvents entries.
func (ct *Controller) State() *ControllerState {
	events := ct.Events()
	if len(events) > maxStateEvents {
		events = events[len(events)-maxStateEvents:]
	}
	st := &ControllerState{
		Members:    make([]MemberState, 0, len(ct.order)),
		LastReplan: ct.lastReplan,
		Events:     events,
	}
	for _, id := range ct.order {
		ms := ct.members[id]
		st.Members = append(st.Members, MemberState{ID: id, Alive: ms.alive, Meter: ms.meter.State()})
	}
	if ct.draws != nil && ct.planState != nil {
		p := *ct.planState
		p.Members = append([]int(nil), ct.planState.Members...)
		p.Est = append([]float64(nil), ct.planState.Est...)
		st.Plan = &p
	}
	return st
}

// Restore revives a freshly constructed controller from a captured state.
// Members are restored with their meter state in join order; when st.Plan is
// set the current plan is rebuilt by re-running the strategy construction
// over the recorded estimates — the caller must have positioned the
// controller's RNG source at Plan.DrawsBefore first (see PlanState).
func (ct *Controller) Restore(st *ControllerState) error {
	if len(ct.members) != 0 || ct.plan != nil {
		return fmt.Errorf("%w: restore requires a fresh controller", ErrBadConfig)
	}
	if st == nil {
		return fmt.Errorf("%w: nil controller state", ErrBadConfig)
	}
	for _, ms := range st.Members {
		if ms.ID <= 0 {
			return fmt.Errorf("%w: restored member id %d", ErrBadConfig, ms.ID)
		}
		if _, dup := ct.members[ms.ID]; dup {
			return fmt.Errorf("%w: duplicate restored member %d", ErrBadConfig, ms.ID)
		}
		meter := ms.Meter
		if meter.Prior <= 0 {
			// Journal-only members carry no estimate; plan them at the
			// configured prior until telemetry corrects it.
			meter.Prior = ct.cfg.InitialRate
		}
		ct.members[ms.ID] = &memberState{
			id:    ms.ID,
			meter: estimate.NewMeterFromState(ct.cfg.Alpha, meter),
			alive: ms.Alive,
		}
		ct.order = append(ct.order, ms.ID)
	}
	ct.lastReplan = st.LastReplan
	ct.events = append([]ReplanEvent(nil), st.Events...)
	if st.Plan == nil {
		return nil
	}
	p := st.Plan
	if len(p.Members) != len(p.Est) || len(p.Members) == 0 {
		return fmt.Errorf("%w: plan state has %d members but %d estimates", ErrBadConfig, len(p.Members), len(p.Est))
	}
	for _, id := range p.Members {
		ms, ok := ct.members[id]
		if !ok || !ms.alive {
			return fmt.Errorf("%w: plan member %d absent or dead in restored membership", ErrBadConfig, id)
		}
	}
	strat, err := planner.BuildStrategy(ct.cfg.Scheme, p.Est, ct.cfg.K, ct.cfg.S, ct.rng)
	if err != nil {
		return fmt.Errorf("%w: rebuilding plan epoch %d: %v", ErrBadConfig, p.Epoch, err)
	}
	plan := &Plan{
		Epoch:    p.Epoch,
		Strategy: strat,
		Members:  append([]int(nil), p.Members...),
		slotOf:   make(map[int]int, len(p.Members)),
	}
	for slot, id := range plan.Members {
		plan.slotOf[id] = slot
	}
	ct.plan = plan
	ct.planState = &PlanState{
		Iter: p.Iter, Epoch: p.Epoch,
		Members:     append([]int(nil), p.Members...),
		Est:         append([]float64(nil), p.Est...),
		DrawsBefore: p.DrawsBefore,
	}
	ct.churned = false
	return nil
}
