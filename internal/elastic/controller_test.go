package elastic

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/hetgc/hetgc/internal/core"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newTestController(t *testing.T, cfg Config, seed int64) *Controller {
	t.Helper()
	ct, err := NewController(cfg, rng(seed))
	if err != nil {
		t.Fatal(err)
	}
	return ct
}

func TestControllerConfigValidation(t *testing.T) {
	if _, err := NewController(Config{K: 0, S: 1}, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("k=0: err = %v", err)
	}
	if _, err := NewController(Config{K: 4, S: -1}, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("s<0: err = %v", err)
	}
	if _, err := NewController(Config{K: 4, S: 1, Scheme: core.Naive}, rng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("naive scheme: err = %v", err)
	}
	if _, err := NewController(Config{K: 4, S: 1}, nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil rng: err = %v", err)
	}
}

func TestInitialPlanAndSlots(t *testing.T) {
	ct := newTestController(t, Config{K: 8, S: 1}, 2)
	for id := 0; id < 4; id++ {
		ct.AddMember(id, 1)
	}
	replan, reason := ct.ShouldReplan(0)
	if !replan || reason != "initial" {
		t.Fatalf("ShouldReplan = %v %q", replan, reason)
	}
	plan, err := ct.Replan(0, reason)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epoch != 0 || plan.Strategy.M() != 4 || len(plan.Members) != 4 {
		t.Fatalf("plan = %+v", plan)
	}
	for slot, id := range plan.Members {
		if plan.SlotOf(id) != slot {
			t.Fatalf("SlotOf(%d) = %d, want %d", id, plan.SlotOf(id), slot)
		}
	}
	if plan.SlotOf(99) != -1 {
		t.Fatal("unknown member must map to slot -1")
	}
	if replan, _ := ct.ShouldReplan(1); replan {
		t.Fatal("fresh balanced plan must not replan")
	}
}

func TestChurnTriggersImmediateReplan(t *testing.T) {
	ct := newTestController(t, Config{K: 8, S: 1, CooldownIters: 100}, 3)
	for id := 0; id < 4; id++ {
		ct.AddMember(id, 1)
	}
	if _, err := ct.Replan(0, "initial"); err != nil {
		t.Fatal(err)
	}
	// A join is churn and must override any cooldown.
	ct.AddMember(7, 2)
	replan, reason := ct.ShouldReplan(1)
	if !replan || reason != "churn" {
		t.Fatalf("join: ShouldReplan = %v %q", replan, reason)
	}
	plan, err := ct.Replan(1, reason)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epoch != 1 || len(plan.Members) != 5 || plan.SlotOf(7) == -1 {
		t.Fatalf("post-join plan = %+v", plan)
	}
	// A death is churn too.
	ct.RemoveMember(0)
	replan, reason = ct.ShouldReplan(2)
	if !replan || reason != "churn" {
		t.Fatalf("death: ShouldReplan = %v %q", replan, reason)
	}
	plan, err = ct.Replan(2, reason)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epoch != 2 || len(plan.Members) != 4 || plan.SlotOf(0) != -1 {
		t.Fatalf("post-death plan = %+v", plan)
	}
}

func TestDriftTriggersReplanAfterWarmup(t *testing.T) {
	ct := newTestController(t, Config{K: 12, S: 1, MinObservations: 2, CooldownIters: 1, DriftThreshold: 0.25}, 4)
	for id := 0; id < 4; id++ {
		ct.AddMember(id, 4) // uniform prior: balanced initial plan
	}
	if _, err := ct.Replan(0, "initial"); err != nil {
		t.Fatal(err)
	}
	loads := ct.plan.Strategy.Allocation().Loads
	// Everyone reports at the prior rate except member 0, which runs 8x slow.
	for iter := 0; iter < 3; iter++ {
		for slot, id := range ct.plan.Members {
			rate := 4.0
			if id == 0 {
				rate = 0.5
			}
			if loads[slot] == 0 {
				continue
			}
			if err := ct.Observe(id, loads[slot], float64(loads[slot])/rate); err != nil {
				t.Fatal(err)
			}
		}
	}
	if im := ct.Imbalance(); im < 1.25 {
		t.Fatalf("imbalance = %v, want drifted", im)
	}
	replan, reason := ct.ShouldReplan(3)
	if !replan || reason != "drift" {
		t.Fatalf("ShouldReplan = %v %q (imbalance %v)", replan, reason, ct.Imbalance())
	}
	plan, err := ct.Replan(3, reason)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt plan must shift load off the slow member.
	slot := plan.SlotOf(0)
	newLoads := plan.Strategy.Allocation().Loads
	maxOther := 0
	for s, n := range newLoads {
		if s != slot && n > maxOther {
			maxOther = n
		}
	}
	if newLoads[slot] >= maxOther {
		t.Fatalf("slow member load %d not reduced below fastest %d (loads %v)", newLoads[slot], maxOther, newLoads)
	}
	events := ct.Events()
	if len(events) != 2 || events[1].Reason != "drift" || events[1].Imbalance < 1.25 {
		t.Fatalf("events = %+v", events)
	}
}

func TestDriftRespectsCooldownAndWarmup(t *testing.T) {
	ct := newTestController(t, Config{K: 8, S: 1, MinObservations: 5, CooldownIters: 10, DriftThreshold: 0.1}, 5)
	for id := 0; id < 4; id++ {
		ct.AddMember(id, 1)
	}
	if _, err := ct.Replan(0, "initial"); err != nil {
		t.Fatal(err)
	}
	// One extreme sample, but below MinObservations: priors still rule, so no
	// drift is visible and no replan fires.
	if err := ct.Observe(0, 2, 100); err != nil {
		t.Fatal(err)
	}
	if replan, _ := ct.ShouldReplan(1); replan {
		t.Fatal("cold meters must not trigger drift replans")
	}
	// Warm everyone up with drifted rates — still inside the cooldown window.
	for i := 0; i < 5; i++ {
		for id := 0; id < 4; id++ {
			rate := 1.0
			if id == 0 {
				rate = 0.05
			}
			if err := ct.Observe(id, 2, 2/rate); err != nil {
				t.Fatal(err)
			}
		}
	}
	if replan, _ := ct.ShouldReplan(5); replan {
		t.Fatal("cooldown must defer drift replans")
	}
	replan, reason := ct.ShouldReplan(10)
	if !replan || reason != "drift" {
		t.Fatalf("after cooldown: ShouldReplan = %v %q", replan, reason)
	}
}

func TestRejoinKeepsEstimateHistory(t *testing.T) {
	ct := newTestController(t, Config{K: 8, S: 1, MinObservations: 1}, 6)
	ct.AddMember(0, 1)
	ct.AddMember(1, 1)
	for i := 0; i < 4; i++ {
		if err := ct.Observe(0, 8, 1); err != nil { // 8 partitions/s
			t.Fatal(err)
		}
	}
	ct.RemoveMember(0)
	if got := ct.AliveMembers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("alive = %v", got)
	}
	ct.AddMember(0, 0) // rejoin
	if got := ct.AliveMembers(); len(got) != 2 {
		t.Fatalf("alive after rejoin = %v", got)
	}
	rate, err := ct.Rate(0)
	if err != nil || rate != 8 {
		t.Fatalf("rejoined rate = %v err %v, want warm 8", rate, err)
	}
}

func TestReplanFailsBelowQuorum(t *testing.T) {
	ct := newTestController(t, Config{K: 8, S: 2}, 7)
	ct.AddMember(0, 1)
	ct.AddMember(1, 1)
	if _, err := ct.Replan(0, "initial"); !errors.Is(err, ErrNotEnoughMembers) {
		t.Fatalf("err = %v, want ErrNotEnoughMembers", err)
	}
}

func TestObserveUnknownMember(t *testing.T) {
	ct := newTestController(t, Config{K: 8, S: 1}, 8)
	if err := ct.Observe(3, 1, 1); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v", err)
	}
	if _, err := ct.Rate(3); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("err = %v", err)
	}
}

// TestJoinerPriorIsFleetMean: a worker joining a warm cluster without a
// prior guess must be seeded with the fleet's mean estimated rate — a cold
// default prior would starve it of load, and a zero-load member never
// reports telemetry to correct the estimate.
func TestJoinerPriorIsFleetMean(t *testing.T) {
	ct := newTestController(t, Config{K: 8, S: 1, MinObservations: 1, InitialRate: 1}, 9)
	ct.AddMember(1, 0)
	ct.AddMember(2, 0)
	// Warm both incumbents up to ~400 partitions/s.
	for i := 0; i < 4; i++ {
		if err := ct.Observe(1, 400, 1); err != nil {
			t.Fatal(err)
		}
		if err := ct.Observe(2, 400, 1); err != nil {
			t.Fatal(err)
		}
	}
	ct.AddMember(3, 0)
	rate, err := ct.Rate(3)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 400 {
		t.Fatalf("joiner prior = %v, want fleet mean 400", rate)
	}
	// The joiner must receive a real share of load in the next plan.
	plan, err := ct.Replan(0, "churn")
	if err != nil {
		t.Fatal(err)
	}
	if slot := plan.SlotOf(3); plan.Strategy.Allocation().Loads[slot] == 0 {
		t.Fatalf("joiner starved of load: %v", plan.Strategy.Allocation().Loads)
	}
}
