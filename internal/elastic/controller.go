// Package elastic is the control plane that closes the paper's
// estimate → allocate → re-code loop on a *live* cluster. The paper assumes
// worker throughputs c_i "can be estimated by sampling" (§III.C) and §V
// motivates the group-based scheme with exactly the failure mode this package
// removes: estimates drift. The Controller ingests per-iteration worker
// telemetry, maintains count-gated EWMA throughput estimates, watches two
// replan triggers — drift (the running strategy's predicted makespan falls
// too far from optimal) and churn (membership changed: a worker joined, died
// or rejoined) — and, when either fires, builds a fresh strategy over the
// live membership as an epoch-versioned Plan. Epochs make migration atomic:
// the runtime tags parameter broadcasts and gradient uploads with the plan
// epoch and rejects stale-epoch uploads before they can reach decode.
//
// The Controller is deliberately transport-agnostic: the TCP runtime
// (internal/runtime) and the deterministic churn simulator (internal/sim)
// drive the same code, so the whole control loop is testable without
// sockets.
package elastic

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/estimate"
	"github.com/hetgc/hetgc/internal/partition"
	"github.com/hetgc/hetgc/internal/planner"
)

// Errors returned by the control plane.
var (
	// ErrBadConfig marks invalid controller configurations.
	ErrBadConfig = errors.New("elastic: invalid config")
	// ErrUnknownMember is returned for observations about members never added.
	ErrUnknownMember = errors.New("elastic: unknown member")
	// ErrNotEnoughMembers is returned by Replan when the live membership
	// cannot support any strategy (fewer than s+1 alive workers).
	ErrNotEnoughMembers = errors.New("elastic: not enough alive members to plan")
)

// Config parameterises a Controller.
type Config struct {
	// K is the data-partition count, S the straggler budget. Both are fixed
	// across migrations (partitions are global, stable indices — only their
	// placement moves between epochs).
	K, S int
	// Scheme is the strategy family to build: core.HeterAware (default) or
	// core.GroupBased.
	Scheme core.Kind
	// Alpha is the EWMA smoothing factor for throughput estimates
	// (default 0.3).
	Alpha float64
	// DriftThreshold triggers a replan when the current plan's predicted
	// imbalance exceeds 1+DriftThreshold (default 0.25 — replan when
	// iterations are predicted ≥ 25% slower than the achievable optimum).
	DriftThreshold float64
	// MinObservations gates each member's EWMA: until a member has reported
	// that many iterations of telemetry its prior guess is used (default 3).
	MinObservations int
	// CooldownIters is the minimum number of iterations between drift-driven
	// replans, damping oscillation (default 5). Churn-driven replans are
	// never delayed: a membership change invalidates the plan outright.
	CooldownIters int
	// InitialRate is the prior throughput (partitions/second) for members
	// that joined without a caller-provided guess (default 1).
	InitialRate float64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Scheme == 0 {
		out.Scheme = core.HeterAware
	}
	if out.Alpha <= 0 || out.Alpha > 1 {
		out.Alpha = 0.3
	}
	if out.DriftThreshold <= 0 {
		out.DriftThreshold = 0.25
	}
	if out.MinObservations <= 0 {
		out.MinObservations = 3
	}
	if out.CooldownIters <= 0 {
		out.CooldownIters = 5
	}
	if out.InitialRate <= 0 {
		out.InitialRate = 1
	}
	return out
}

// Plan is one epoch of the elastic schedule: a coding strategy over the
// members alive when it was built. Strategy slot i belongs to member
// Members[i]; members outside the plan idle until the next migration.
type Plan struct {
	// Epoch is the monotonically increasing plan version.
	Epoch int
	// Strategy is the coding strategy for this epoch (m = len(Members)).
	Strategy *core.Strategy
	// Members maps strategy slots to stable member IDs.
	Members []int

	slotOf map[int]int
}

// SlotOf returns the strategy slot of a member, or -1 when the member is not
// part of this plan.
func (p *Plan) SlotOf(member int) int {
	if s, ok := p.slotOf[member]; ok {
		return s
	}
	return -1
}

// ReplanEvent records one migration for audit and experiments.
type ReplanEvent struct {
	// Iter is the training iteration at which the plan was built.
	Iter int
	// Epoch is the new plan's version.
	Epoch int
	// Reason is "initial", "churn" or "drift".
	Reason string
	// Members is the number of workers in the new plan.
	Members int
	// Imbalance is the old plan's predicted imbalance at decision time
	// (0 for the initial plan).
	Imbalance float64
}

type memberState struct {
	id    int
	meter *estimate.Meter
	alive bool
}

// Controller tracks membership and telemetry and owns the epoch-versioned
// plan. Not safe for concurrent use; drive it from a single control loop
// (the runtime master serialises on its iteration loop, the simulator is
// single-threaded).
type Controller struct {
	cfg     Config
	rng     *rand.Rand
	members map[int]*memberState
	order   []int // member IDs in join order — the deterministic iteration order
	plan    *Plan
	churned bool
	// lastReplan is the iteration of the most recent replan, -1 before any.
	lastReplan int
	events     []ReplanEvent
	// epochBase floors the next plan's epoch (SetEpochBase): a resumed
	// master fences every pre-crash epoch by starting above them.
	epochBase int
	// draws reads the RNG source's draw counter when set (SetDrawCounter);
	// planState then records each plan's construction provenance for
	// bit-identical restore.
	draws     func() uint64
	planState *PlanState
}

// NewController validates the config and builds an empty controller; add
// members, observe telemetry, then Replan for the initial plan.
func NewController(cfg Config, rng *rand.Rand) (*Controller, error) {
	c := cfg.withDefaults()
	if c.K <= 0 || c.S < 0 {
		return nil, fmt.Errorf("%w: k=%d s=%d", ErrBadConfig, c.K, c.S)
	}
	if c.Scheme != core.HeterAware && c.Scheme != core.GroupBased {
		return nil, fmt.Errorf("%w: scheme %v", ErrBadConfig, c.Scheme)
	}
	if rng == nil {
		return nil, fmt.Errorf("%w: rng required (determinism)", ErrBadConfig)
	}
	return &Controller{
		cfg:        c,
		rng:        rng,
		members:    make(map[int]*memberState),
		lastReplan: -1,
	}, nil
}

// AddMember registers a joining worker with a prior throughput guess
// (partitions/second). When no guess is given (<= 0), the prior is the mean
// of the alive members' current estimates — a joiner is most plausibly
// fleet-average, and a too-low prior would starve it of load, leaving it
// with no partitions, hence no telemetry, hence no way to ever correct the
// estimate. Config.InitialRate is the fallback when no estimates exist yet.
// Re-adding a dead member revives it, keeping its estimate history — the
// rejoin path. Adding an already-alive member is a no-op.
func (ct *Controller) AddMember(id int, prior float64) {
	if ms, ok := ct.members[id]; ok {
		if !ms.alive {
			ms.alive = true
			ct.churned = true
		}
		return
	}
	if prior <= 0 {
		prior = ct.cfg.InitialRate
		if avg := ct.meanAliveRate(); avg > 0 {
			prior = avg
		}
	}
	ct.members[id] = &memberState{id: id, meter: estimate.NewMeter(ct.cfg.Alpha, prior), alive: true}
	ct.order = append(ct.order, id)
	ct.churned = true
}

// meanAliveRate averages the alive members' current rate estimates
// (0 when there are none).
func (ct *Controller) meanAliveRate() float64 {
	sum, n := 0.0, 0
	for _, id := range ct.order {
		if ms := ct.members[id]; ms.alive {
			sum += ms.meter.Rate(ct.cfg.MinObservations)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// RemoveMember marks a worker dead (connection lost or kill event). Its
// estimate history is kept so a rejoin resumes warm.
func (ct *Controller) RemoveMember(id int) {
	ms, ok := ct.members[id]
	if !ok || !ms.alive {
		return
	}
	ms.alive = false
	ct.churned = true
}

// AliveMembers returns the alive member IDs in join order.
func (ct *Controller) AliveMembers() []int {
	out := make([]int, 0, len(ct.order))
	for _, id := range ct.order {
		if ct.members[id].alive {
			out = append(out, id)
		}
	}
	return out
}

// Observe ingests one telemetry sample: member id processed `partitions`
// partition gradients in `seconds` of compute time.
func (ct *Controller) Observe(id, partitions int, seconds float64) error {
	ms, ok := ct.members[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownMember, id)
	}
	return ms.meter.Observe(partitions, seconds)
}

// Rate returns the controller's current throughput estimate for a member
// (the prior until MinObservations samples arrived).
func (ct *Controller) Rate(id int) (float64, error) {
	ms, ok := ct.members[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrUnknownMember, id)
	}
	return ms.meter.Rate(ct.cfg.MinObservations), nil
}

// Plan returns the current plan (nil before the first Replan).
func (ct *Controller) Plan() *Plan { return ct.plan }

// Epoch returns the current plan epoch, -1 before the first plan.
func (ct *Controller) Epoch() int {
	if ct.plan == nil {
		return -1
	}
	return ct.plan.Epoch
}

// Events returns the replan history.
func (ct *Controller) Events() []ReplanEvent {
	return append([]ReplanEvent(nil), ct.events...)
}

// Imbalance predicts the current plan's iteration time relative to the
// optimum under the latest estimates (1.0 = balanced). Members of the plan
// that died contribute rate 0 — but death also raises the churn flag, which
// replans regardless.
func (ct *Controller) Imbalance() float64 {
	if ct.plan == nil {
		return 1
	}
	est := make([]float64, len(ct.plan.Members))
	for slot, id := range ct.plan.Members {
		if ms, ok := ct.members[id]; ok && ms.alive {
			est[slot] = ms.meter.Rate(ct.cfg.MinObservations)
		}
	}
	return planner.PredictedImbalance(ct.plan.Strategy, est)
}

// DriftGain predicts how much faster iterations would run under a freshly
// planned allocation versus the current plan, given the latest estimates
// (1.0 = replanning cannot help). Unlike Imbalance — which compares to the
// continuous optimum that integer load rounding can never reach — the gain
// compares achievable-to-achievable, so it converges to ~1 once the plan
// matches the estimates and cannot oscillate on the rounding floor.
func (ct *Controller) DriftGain() float64 {
	if ct.plan == nil {
		return 1
	}
	loads := ct.plan.Strategy.Allocation().Loads
	cur := 0.0
	for slot, id := range ct.plan.Members {
		ms, ok := ct.members[id]
		if !ok || !ms.alive {
			continue
		}
		rate := ms.meter.Rate(ct.cfg.MinObservations)
		if rate <= 0 {
			continue
		}
		if t := float64(loads[slot]) / rate; t > cur {
			cur = t
		}
	}
	alive := ct.AliveMembers()
	est := make([]float64, len(alive))
	for i, id := range alive {
		est[i] = ct.members[id].meter.Rate(ct.cfg.MinObservations)
	}
	// The candidate uses the same proportional allocator the heter-aware
	// builder uses (an approximation for group-based plans).
	candLoads, err := partition.ProportionalLoads(est, ct.cfg.K, ct.cfg.S)
	if err != nil {
		return 1
	}
	cand := 0.0
	for i, n := range candLoads {
		if est[i] <= 0 {
			continue
		}
		if t := float64(n) / est[i]; t > cand {
			cand = t
		}
	}
	if cand <= 0 || cur <= 0 {
		return 1
	}
	return cur / cand
}

// ShouldReplan decides whether to migrate at the given iteration boundary
// and names the trigger: "initial" (no plan yet), "churn" (membership
// changed since the plan was built) or "drift" (a fresh plan is predicted
// to beat the current one by more than the threshold, at least one plan
// member's estimate warmed up, and the cooldown elapsed).
func (ct *Controller) ShouldReplan(iter int) (bool, string) {
	if ct.plan == nil {
		return true, "initial"
	}
	if ct.churned {
		return true, "churn"
	}
	if ct.lastReplan >= 0 && iter-ct.lastReplan < ct.cfg.CooldownIters {
		return false, ""
	}
	warmed := false
	for _, id := range ct.plan.Members {
		if ms, ok := ct.members[id]; ok && ms.meter.Ready(ct.cfg.MinObservations) {
			warmed = true
			break
		}
	}
	if !warmed {
		return false, ""
	}
	if ct.DriftGain() > 1+ct.cfg.DriftThreshold {
		return true, "drift"
	}
	return false, ""
}

// Replan builds the next epoch's plan over the alive membership from the
// current estimates. On success the new plan becomes current, the churn flag
// clears and the migration is recorded. The caller (runtime master or
// simulator) is responsible for delivering the new assignments and fencing
// stale uploads by epoch.
func (ct *Controller) Replan(iter int, reason string) (*Plan, error) {
	alive := ct.AliveMembers()
	if len(alive) < ct.cfg.S+1 {
		return nil, fmt.Errorf("%w: %d alive, need ≥ s+1=%d", ErrNotEnoughMembers, len(alive), ct.cfg.S+1)
	}
	est := make([]float64, len(alive))
	for i, id := range alive {
		est[i] = ct.members[id].meter.Rate(ct.cfg.MinObservations)
	}
	imbalance := 0.0
	if ct.plan != nil {
		imbalance = ct.Imbalance()
	}
	var drawsBefore uint64
	if ct.draws != nil {
		drawsBefore = ct.draws()
	}
	st, err := planner.BuildStrategy(ct.cfg.Scheme, est, ct.cfg.K, ct.cfg.S, ct.rng)
	if err != nil {
		return nil, fmt.Errorf("elastic replan at iter %d: %w", iter, err)
	}
	epoch := ct.epochBase
	if ct.plan != nil && ct.plan.Epoch+1 > epoch {
		epoch = ct.plan.Epoch + 1
	}
	plan := &Plan{
		Epoch:    epoch,
		Strategy: st,
		Members:  alive,
		slotOf:   make(map[int]int, len(alive)),
	}
	for slot, id := range alive {
		plan.slotOf[id] = slot
	}
	ct.plan = plan
	ct.planState = &PlanState{
		Iter: iter, Epoch: epoch,
		Members:     append([]int(nil), alive...),
		Est:         append([]float64(nil), est...),
		DrawsBefore: drawsBefore,
	}
	ct.churned = false
	ct.lastReplan = iter
	ct.events = append(ct.events, ReplanEvent{
		Iter: iter, Epoch: epoch, Reason: reason, Members: len(alive), Imbalance: imbalance,
	})
	return plan, nil
}
