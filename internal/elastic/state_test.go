package elastic

import (
	"errors"
	"math/rand"
	"testing"
)

// countingSource is a minimal draw-counting rand source for state tests
// (the production one lives in internal/checkpoint, which this package must
// not import).
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func newCountingSource(seed int64) *countingSource {
	return &countingSource{src: rand.NewSource(seed).(rand.Source64)}
}
func (s *countingSource) Int63() int64 { s.draws++; return s.src.Int63() }
func (s *countingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}
func (s *countingSource) Seed(seed int64) { s.src.Seed(seed); s.draws = 0 }
func (s *countingSource) fastForward(n uint64) {
	for s.draws < n {
		_ = s.Uint64()
	}
}

// driveController runs a controller through joins, telemetry and replans,
// returning it mid-story.
func driveController(t *testing.T, src rand.Source) *Controller {
	t.Helper()
	ct, err := NewController(Config{K: 8, S: 1, Alpha: 0.5, MinObservations: 2, CooldownIters: 2}, rand.New(src))
	if err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		ct.AddMember(id, float64(100*id))
	}
	if _, err := ct.Replan(0, "initial"); err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 6; iter++ {
		for id := 1; id <= 4; id++ {
			if err := ct.Observe(id, 2, 0.01*float64(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ct.RemoveMember(3)
	if _, err := ct.Replan(5, "churn"); err != nil {
		t.Fatal(err)
	}
	return ct
}

// TestStateRestoreRebuildsPlanExactly is the core of bit-identical resume:
// capture a controller mid-run, restore it onto a fresh controller whose
// seeded source is fast-forwarded to the recorded draw position, and the
// rebuilt plan must match the original slot for slot, coefficient for
// coefficient.
func TestStateRestoreRebuildsPlanExactly(t *testing.T) {
	// Drive a controller with the counter attached from the start, as the
	// simulator does.
	src := newCountingSource(7)
	ct, err := NewController(Config{K: 8, S: 1, Alpha: 0.5, MinObservations: 2, CooldownIters: 2}, rand.New(src))
	if err != nil {
		t.Fatal(err)
	}
	ct.SetDrawCounter(func() uint64 { return src.draws })
	for id := 1; id <= 4; id++ {
		ct.AddMember(id, float64(100*id))
	}
	if _, err := ct.Replan(0, "initial"); err != nil {
		t.Fatal(err)
	}
	for id := 1; id <= 4; id++ {
		if err := ct.Observe(id, 2, 0.01*float64(id)); err != nil {
			t.Fatal(err)
		}
		if err := ct.Observe(id, 2, 0.01*float64(id)); err != nil {
			t.Fatal(err)
		}
	}
	ct.RemoveMember(3)
	plan, err := ct.Replan(5, "churn")
	if err != nil {
		t.Fatal(err)
	}

	st := ct.State()
	if st.Plan == nil {
		t.Fatal("state carries no plan despite the draw counter")
	}
	src2 := newCountingSource(7)
	ct2, err := NewController(Config{K: 8, S: 1, Alpha: 0.5, MinObservations: 2, CooldownIters: 2}, rand.New(src2))
	if err != nil {
		t.Fatal(err)
	}
	src2.fastForward(st.Plan.DrawsBefore)
	if err := ct2.Restore(st); err != nil {
		t.Fatal(err)
	}
	plan2 := ct2.Plan()
	if plan2.Epoch != plan.Epoch {
		t.Fatalf("rebuilt epoch %d, want %d", plan2.Epoch, plan.Epoch)
	}
	if len(plan2.Members) != len(plan.Members) {
		t.Fatalf("rebuilt members %v, want %v", plan2.Members, plan.Members)
	}
	for slot, id := range plan.Members {
		if plan2.Members[slot] != id {
			t.Fatalf("slot %d member %d, want %d", slot, plan2.Members[slot], id)
		}
		r1 := plan.Strategy.Row(slot)
		r2 := plan2.Strategy.Row(slot)
		for p := range r1 {
			if r1[p] != r2[p] {
				t.Fatalf("slot %d coefficient %d drifted: %v vs %v", slot, p, r2[p], r1[p])
			}
		}
	}
	// Estimates survive: the rebuilt controller plans from the same rates.
	for id := 1; id <= 4; id++ {
		a, err1 := ct.Rate(id)
		b, err2 := ct2.Rate(id)
		if err1 != nil || err2 != nil || a != b {
			t.Fatalf("member %d rate %v/%v (%v, %v)", id, a, b, err1, err2)
		}
	}
}

// TestStateWithoutCounterOmitsPlan pins the live-runtime shape: no draw
// counter, no plan provenance (the live resume replans fresh instead).
func TestStateWithoutCounterOmitsPlan(t *testing.T) {
	ct := driveController(t, rand.NewSource(3))
	st := ct.State()
	if st.Plan != nil {
		t.Fatalf("state carries plan provenance without a draw counter: %+v", st.Plan)
	}
	if len(st.Members) != 4 {
		t.Fatalf("state carries %d members, want 4", len(st.Members))
	}
	alive := 0
	for _, ms := range st.Members {
		if ms.Alive {
			alive++
		}
	}
	if alive != 3 {
		t.Fatalf("state records %d alive members, want 3", alive)
	}
}

// TestRestoreDeadMembershipAndEpochBase pins the live resume shape: every
// member restored dead, epoch base above the journaled max, first replan
// marked "initial" and numbered at the base.
func TestRestoreDeadMembershipAndEpochBase(t *testing.T) {
	ct := driveController(t, rand.NewSource(3))
	st := ct.State()
	for i := range st.Members {
		st.Members[i].Alive = false
	}
	st.Plan = nil
	st.LastReplan = -1

	ct2 := newTestController(t, Config{K: 8, S: 1}, 4)
	if err := ct2.Restore(st); err != nil {
		t.Fatal(err)
	}
	ct2.SetEpochBase(5)
	if got := len(ct2.AliveMembers()); got != 0 {
		t.Fatalf("%d alive members after dead restore", got)
	}
	if _, err := ct2.Replan(0, "resume"); !errors.Is(err, ErrNotEnoughMembers) {
		t.Fatalf("replan over dead membership: %v, want ErrNotEnoughMembers", err)
	}
	// Rejoins revive the restored identities with their warm meters.
	for id := 1; id <= 2; id++ {
		ct2.AddMember(id, 0)
	}
	replan, reason := ct2.ShouldReplan(0)
	if !replan || reason != "initial" {
		t.Fatalf("ShouldReplan = %v %q, want initial replan", replan, reason)
	}
	plan, err := ct2.Replan(0, reason)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Epoch != 5 {
		t.Fatalf("resumed epoch %d, want the base 5", plan.Epoch)
	}
	next, err := ct2.Replan(1, "churn")
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 6 {
		t.Fatalf("epoch after base %d, want 6", next.Epoch)
	}
}

// TestRestoreRejectsBadState pins the validation.
func TestRestoreRejectsBadState(t *testing.T) {
	fresh := func() *Controller { return newTestController(t, Config{K: 8, S: 1}, 1) }
	if err := fresh().Restore(nil); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("nil state: %v", err)
	}
	if err := fresh().Restore(&ControllerState{Members: []MemberState{{ID: 0}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero id: %v", err)
	}
	if err := fresh().Restore(&ControllerState{Members: []MemberState{{ID: 1}, {ID: 1}}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("duplicate id: %v", err)
	}
	st := &ControllerState{
		Members: []MemberState{{ID: 1, Alive: true}},
		Plan:    &PlanState{Epoch: 1, Members: []int{2}, Est: []float64{1}},
	}
	if err := fresh().Restore(st); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("plan member outside membership: %v", err)
	}
	used := fresh()
	used.AddMember(1, 1)
	if err := used.Restore(&ControllerState{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("restore onto used controller: %v", err)
	}
}
