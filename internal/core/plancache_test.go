package core

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/hetgc/hetgc/internal/linalg"
)

func cacheTestStrategy(t *testing.T, seed int64) *Strategy {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4, 2, 1, 3}, 10, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestDecodeCacheHitMissCounters(t *testing.T) {
	st := cacheTestStrategy(t, 1)
	alive := AliveFromStragglers(st.M(), []int{1, 5})

	if _, err := st.Decode(alive); err != nil {
		t.Fatal(err)
	}
	stats := st.DecodeCacheStats()
	if stats.Misses != 1 || stats.Hits != 0 || stats.Size != 1 {
		t.Fatalf("after first decode: %+v", stats)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Decode(alive); err != nil {
			t.Fatal(err)
		}
	}
	stats = st.DecodeCacheStats()
	if stats.Hits != 5 || stats.Misses != 1 {
		t.Fatalf("after repeats: %+v", stats)
	}
	if hr := stats.HitRate(); hr < 0.83 || hr > 0.84 {
		t.Fatalf("hit rate = %v", hr)
	}
}

// TestDecodeCacheMissMatchesOnlineSolve pins the fallback contract: a miss
// must produce byte-identical coefficients to the online solve.
func TestDecodeCacheMissMatchesOnlineSolve(t *testing.T) {
	st := cacheTestStrategy(t, 2)
	for _, stragglers := range [][]int{nil, {0}, {3}, {2, 6}, {0, 7}} {
		alive := AliveFromStragglers(st.M(), stragglers)
		online, err := st.decode(alive) // uncached scheme dispatch
		if err != nil {
			t.Fatalf("pattern %v: %v", stragglers, err)
		}
		cached, err := st.Decode(alive) // populates + reads the cache
		if err != nil {
			t.Fatalf("pattern %v: %v", stragglers, err)
		}
		if !linalg.VecEqual(online, cached, 0) {
			t.Fatalf("pattern %v: cached coefficients differ from online solve", stragglers)
		}
		again, err := st.Decode(alive) // guaranteed hit
		if err != nil {
			t.Fatal(err)
		}
		if !linalg.VecEqual(online, again, 0) {
			t.Fatalf("pattern %v: cache hit differs from online solve", stragglers)
		}
	}
}

func TestDecodeCacheBounded(t *testing.T) {
	st := cacheTestStrategy(t, 3)
	st.SetDecodeCacheCapacity(4)
	m := st.M()
	// More distinct patterns than capacity.
	for a := 0; a < m; a++ {
		for b := a + 1; b < m; b++ {
			if _, err := st.Decode(AliveFromStragglers(m, []int{a, b})); err != nil {
				t.Fatal(err)
			}
		}
	}
	stats := st.DecodeCacheStats()
	if stats.Size > 4 {
		t.Fatalf("cache size %d exceeds capacity 4", stats.Size)
	}
	if stats.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	if stats.Capacity != 4 {
		t.Fatalf("capacity = %d", stats.Capacity)
	}
	// Shrinking an over-full cache evicts down to the new bound.
	st.SetDecodeCacheCapacity(2)
	if got := st.DecodeCacheStats().Size; got > 2 {
		t.Fatalf("size %d after shrink", got)
	}
	// Restoring the default keeps working.
	st.SetDecodeCacheCapacity(0)
	if got := st.DecodeCacheStats().Capacity; got != DefaultDecodeCacheCapacity {
		t.Fatalf("capacity = %d", got)
	}
}

func TestDecodeCacheErrorsMemoised(t *testing.T) {
	st := cacheTestStrategy(t, 4)
	m := st.M()
	// Too many stragglers: undecodable, and the error result is cached too.
	alive := AliveFromStragglers(m, []int{0, 1, 2, 3, 4})
	if _, err := st.Decode(alive); err == nil {
		t.Fatal("want undecodable")
	}
	before := st.DecodeCacheStats()
	if _, err := st.Decode(alive); err == nil {
		t.Fatal("want undecodable")
	}
	after := st.DecodeCacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("error result not served from cache: %+v -> %+v", before, after)
	}
}

// TestDecodeCacheConcurrentHammer drives the cache from many goroutines over
// overlapping patterns; run with -race this doubles as the data-race check
// required for the RWMutex fast path.
func TestDecodeCacheConcurrentHammer(t *testing.T) {
	st := cacheTestStrategy(t, 5)
	st.SetDecodeCacheCapacity(8) // force concurrent evictions too
	m := st.M()
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				var stragglers []int
				for len(stragglers) < rng.Intn(3) {
					w := rng.Intn(m)
					if !containsInt(stragglers, w) {
						stragglers = append(stragglers, w)
					}
				}
				coeffs, err := st.Decode(AliveFromStragglers(m, stragglers))
				if err != nil {
					errs <- err
					return
				}
				// Light read of the shared row (the ownership contract says
				// read-only, so reads from many goroutines must be safe).
				var sum float64
				for _, c := range coeffs {
					sum += c
				}
				_ = sum
				if i%50 == 0 {
					_ = st.DecodeCacheStats()
				}
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestInstallDecodingMatrix(t *testing.T) {
	st := cacheTestStrategy(t, 6)
	m := st.M()
	patterns := RegularPatterns([]int{1, 4, 6}, 2)
	dm, err := st.PrecomputePatterns(patterns)
	if err != nil {
		t.Fatal(err)
	}
	// Install into a freshly built identical strategy so its cache is cold.
	st2 := cacheTestStrategy(t, 6)
	if err := st2.InstallDecodingMatrix(dm); err != nil {
		t.Fatal(err)
	}
	for _, p := range patterns {
		coeffs, err := st2.Decode(AliveFromStragglers(m, p))
		if err != nil {
			t.Fatalf("pattern %v: %v", p, err)
		}
		want, ok := dm.Lookup(p)
		if !ok {
			t.Fatalf("pattern %v missing from dm", p)
		}
		if !linalg.VecEqual(coeffs, want, 0) {
			t.Fatalf("pattern %v: installed row differs", p)
		}
	}
	stats := st2.DecodeCacheStats()
	if stats.Misses != 0 {
		t.Fatalf("installed patterns should all hit: %+v", stats)
	}
	if err := st2.InstallDecodingMatrix(nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
}

func TestWarmCache(t *testing.T) {
	st := cacheTestStrategy(t, 7)
	patterns := RegularPatterns([]int{0, 2}, 2)
	if err := st.WarmCache(patterns); err != nil {
		t.Fatal(err)
	}
	warm := st.DecodeCacheStats()
	for _, p := range patterns {
		if _, err := st.Decode(AliveFromStragglers(st.M(), p)); err != nil {
			t.Fatal(err)
		}
	}
	after := st.DecodeCacheStats()
	if after.Misses != warm.Misses {
		t.Fatalf("warmed patterns missed: %+v -> %+v", warm, after)
	}
}

func TestMakePlanKeyWideMasks(t *testing.T) {
	// 100 workers exercises the packed key's hi word.
	a := make([]bool, 100)
	for i := range a {
		a[i] = i%3 != 0
	}
	if k1, k2 := makePlanKey(a), makePlanKey(a); k1 != k2 {
		t.Fatal("packed keys not stable")
	}
	k1 := makePlanKey(a)
	a[99] = !a[99]
	if makePlanKey(a) == k1 {
		t.Fatal("distinct packed masks collide")
	}
	// 200 workers exercises the string spill.
	w := make([]bool, 200)
	for i := range w {
		w[i] = i%2 == 0
	}
	if s1, s2 := makeWidePlanKey(w), makeWidePlanKey(w); s1 != s2 {
		t.Fatal("wide keys not stable")
	}
	s1 := makeWidePlanKey(w)
	w[199] = !w[199]
	if makeWidePlanKey(w) == s1 {
		t.Fatal("distinct wide masks collide")
	}
}

// TestDecodeCacheWideCluster drives Decode through the string-keyed spill map
// with a 130-worker naive strategy.
func TestDecodeCacheWideCluster(t *testing.T) {
	st, err := NewNaive(planKeyWidth + 2)
	if err != nil {
		t.Fatal(err)
	}
	alive := AliveFromStragglers(st.M(), nil)
	if _, err := st.Decode(alive); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Decode(alive); err != nil {
		t.Fatal(err)
	}
	stats := st.DecodeCacheStats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Size != 1 {
		t.Fatalf("wide-cluster cache stats: %+v", stats)
	}
}
