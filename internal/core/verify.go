package core

import (
	"fmt"
	"math/rand"
)

// exhaustiveLimit bounds the number of straggler patterns checked
// exhaustively; beyond it VerifyRobustness samples patterns.
const exhaustiveLimit = 20000

// VerifyRobustness checks Condition 1 operationally: for straggler patterns
// of size exactly s (the worst case — smaller patterns only add rows), the
// strategy must produce valid decoding coefficients. All C(m,s) patterns are
// checked when that count is at most exhaustiveLimit; otherwise `samples`
// random patterns are drawn with rng (which must be non-nil in that case).
// Returns nil when every checked pattern decodes.
func VerifyRobustness(st *Strategy, samples int, rng *rand.Rand) error {
	m, s := st.M(), st.S()
	if s == 0 {
		alive := AliveFromStragglers(m, nil)
		if _, err := st.Decode(alive); err != nil {
			return fmt.Errorf("verify s=0: %w", err)
		}
		return nil
	}
	if binomialAtMost(m, s, exhaustiveLimit) {
		return verifyAllPatterns(st, m, s)
	}
	if rng == nil {
		return fmt.Errorf("%w: sampling verification requires rng", ErrBadInput)
	}
	if samples <= 0 {
		samples = 200
	}
	for trial := 0; trial < samples; trial++ {
		stragglers := samplePattern(m, s, rng)
		alive := AliveFromStragglers(m, stragglers)
		if _, err := st.Decode(alive); err != nil {
			return fmt.Errorf("pattern %v: %w", stragglers, err)
		}
	}
	return nil
}

func verifyAllPatterns(st *Strategy, m, s int) error {
	stragglers := make([]int, s)
	var walk func(start, depth int) error
	walk = func(start, depth int) error {
		if depth == s {
			alive := AliveFromStragglers(m, stragglers)
			if _, err := st.Decode(alive); err != nil {
				return fmt.Errorf("pattern %v: %w", append([]int(nil), stragglers...), err)
			}
			return nil
		}
		for i := start; i < m; i++ {
			stragglers[depth] = i
			if err := walk(i+1, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(0, 0)
}

func samplePattern(m, s int, rng *rand.Rand) []int {
	perm := rng.Perm(m)
	out := append([]int(nil), perm[:s]...)
	return out
}

// binomialAtMost reports whether C(m,s) ≤ limit without overflow.
func binomialAtMost(m, s int, limit int) bool {
	if s < 0 || s > m {
		return true
	}
	if s > m-s {
		s = m - s
	}
	res := 1
	for i := 1; i <= s; i++ {
		res = res * (m - s + i) / i
		if res > limit {
			return false
		}
	}
	return res <= limit
}
