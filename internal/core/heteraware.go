package core

import (
	"fmt"
	"math/rand"

	"github.com/hetgc/hetgc/internal/linalg"
	"github.com/hetgc/hetgc/internal/partition"
)

// maxConstructionAttempts bounds re-randomisation when a random C draw is
// numerically unlucky (probability ~0 per Lemma 3, but float arithmetic can
// produce ill-conditioned C_i).
const maxConstructionAttempts = 16

// NewHeterAware builds the paper's heterogeneity-aware strategy (Alg. 1):
// loads n_i ∝ throughputs c_i with Σn_i = k(s+1), cyclic placement, and a
// coding matrix derived from a random auxiliary matrix C with CB = 1.
// The result is robust to any s stragglers (Theorem 4) and optimal for the
// worst-case makespan objective (Theorem 5).
func NewHeterAware(throughputs []float64, k, s int, rng *rand.Rand) (*Strategy, error) {
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadInput)
	}
	alloc, err := partition.Proportional(throughputs, k, s)
	if err != nil {
		return nil, fmt.Errorf("heter-aware allocation: %w", err)
	}
	return NewHeterAwareFromAllocation(alloc, rng)
}

// NewHeterAwareFromAllocation builds the Alg. 1 code on a caller-supplied
// allocation (used by the cyclic baseline and by tests with hand-rolled
// supports).
func NewHeterAwareFromAllocation(alloc *partition.Allocation, rng *rand.Rand) (*Strategy, error) {
	if err := alloc.Validate(); err != nil {
		return nil, err
	}
	b, c, err := buildCode(alloc, alloc.S, rng)
	if err != nil {
		return nil, err
	}
	return &Strategy{kind: HeterAware, alloc: alloc, b: b, c: c}, nil
}

// NewCyclic builds Tandon et al.'s cyclic gradient code: the uniform
// allocation (k = m, s+1 consecutive partitions each) with an Alg. 1 coding
// matrix — the homogeneous special case of heter-aware coding.
func NewCyclic(m, s int, rng *rand.Rand) (*Strategy, error) {
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadInput)
	}
	alloc, err := partition.Uniform(m, s)
	if err != nil {
		return nil, err
	}
	b, c, err := buildCode(alloc, s, rng)
	if err != nil {
		return nil, err
	}
	return &Strategy{kind: Cyclic, alloc: alloc, b: b, c: c}, nil
}

// NewNaive builds the uncoded baseline: k = m partitions, B = I, every
// worker required each iteration.
func NewNaive(m int) (*Strategy, error) {
	alloc, err := partition.Naive(m)
	if err != nil {
		return nil, err
	}
	return &Strategy{kind: Naive, alloc: alloc, b: linalg.Identity(m)}, nil
}

// NewFractionalRepetition builds Tandon et al.'s fractional repetition code:
// s+1 replication groups each covering the dataset disjointly, all-ones
// coding rows, decoding by picking one alive replica per block.
func NewFractionalRepetition(m, s int) (*Strategy, error) {
	alloc, err := partition.FractionalRepetition(m, s)
	if err != nil {
		return nil, err
	}
	b := linalg.NewMatrix(m, alloc.K)
	for w, parts := range alloc.Parts {
		for _, p := range parts {
			b.Set(w, p, 1)
		}
	}
	// Blocks: workers with identical partition sets replicate one another.
	workersPerGroup := m / (s + 1)
	blocks := make([][]int, workersPerGroup)
	for j := 0; j < workersPerGroup; j++ {
		replicas := make([]int, 0, s+1)
		for g := 0; g <= s; g++ {
			replicas = append(replicas, g*workersPerGroup+j)
		}
		blocks[j] = replicas
	}
	return &Strategy{kind: FractionalRepetition, alloc: alloc, b: b, blocks: blocks}, nil
}

// buildCode constructs B (and the auxiliary C) from an allocation whose
// per-partition coverage is at least s+1, following Lemma 2's construction:
// for each partition i, solve C_i·d'_i = 1 over the columns of C belonging
// to its holders and embed d'_i into B's i-th column. For coverage exactly
// s+1 the solve is the exact inverse of the paper; for larger coverage the
// minimum-norm solution is used (the proof of Lemma 2 only requires
// CB = 1, so Condition 1 still follows).
func buildCode(alloc *partition.Allocation, s int, rng *rand.Rand) (*linalg.Matrix, *linalg.Matrix, error) {
	if rng == nil {
		return nil, nil, fmt.Errorf("%w: nil rng", ErrBadInput)
	}
	m := alloc.M()
	holders := alloc.Holders()
	for p, hs := range holders {
		if len(hs) < s+1 {
			return nil, nil, fmt.Errorf("%w: partition %d covered %d times, need ≥ %d", ErrBadInput, p, len(hs), s+1)
		}
	}

	var lastErr error
	for attempt := 0; attempt < maxConstructionAttempts; attempt++ {
		c := randomC(s+1, m, rng)
		b := linalg.NewMatrix(m, alloc.K)
		ok := true
		for p, hs := range holders {
			ci := c.SelectCols(hs)
			ones := linalg.OnesVec(s + 1)
			var d []float64
			var err error
			if len(hs) == s+1 {
				d, err = linalg.Solve(ci, ones)
			} else {
				d, err = linalg.SolveLeastSquaresMinNorm(ci, ones)
			}
			if err != nil {
				lastErr = fmt.Errorf("partition %d: %w", p, err)
				ok = false
				break
			}
			for pos, w := range hs {
				b.Set(w, p, d[pos])
			}
		}
		if !ok {
			continue
		}
		if err := verifyCB(c, b); err != nil {
			lastErr = err
			continue
		}
		return b, c, nil
	}
	return nil, nil, fmt.Errorf("%w: %v", ErrConstruction, lastErr)
}

// verifyCB asserts CB = 1 within tolerance.
func verifyCB(c, b *linalg.Matrix) error {
	prod, err := c.Mul(b)
	if err != nil {
		return err
	}
	if !prod.Equal(linalg.Ones(c.Rows(), b.Cols()), 1e-7) {
		return fmt.Errorf("%w: CB != 1", ErrConstruction)
	}
	return nil
}
