package core

import (
	"math/rand"
	"testing"
)

// Decode-path ablation (DESIGN.md): the paper's O(s³) null-space decoding
// versus the generic Gaussian fallback on the same strategy and patterns.

func benchStrategy(b *testing.B, m, s int) *Strategy {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	c := make([]float64, m)
	for i := range c {
		c[i] = float64(2 + 2*(i%4)) // vCPU-like heterogeneity 2,4,6,8
	}
	k := 0
	var sum float64
	for _, v := range c {
		sum += v
	}
	k = int(sum) / (s + 1)
	for k < m {
		k += int(sum) / (s + 1)
	}
	st, err := NewHeterAware(c, k, s, rng)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkDecodeNullSpacePath measures the λC/Σλ path (proof of Lemma 2).
func BenchmarkDecodeNullSpacePath(b *testing.B) {
	st := benchStrategy(b, 16, 2)
	m := st.M()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alive := AliveFromStragglers(m, []int{i % m, (i + 5) % m})
		if _, err := st.decodeNullSpace(alive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeGenericPath measures the fallback Gaussian solve
// B_Iᵀx = 1 on identical alive sets.
func BenchmarkDecodeGenericPath(b *testing.B) {
	st := benchStrategy(b, 16, 2)
	m := st.M()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		alive := AliveFromStragglers(m, []int{i % m, (i + 5) % m})
		if _, err := st.decodeGeneric(alive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeCached measures the memoised path (steady-state master).
func BenchmarkDecodeCached(b *testing.B) {
	st := benchStrategy(b, 16, 2)
	alive := AliveFromStragglers(st.M(), []int{3, 9})
	if _, err := st.Decode(alive); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Decode(alive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeCacheHit measures the plan-cache hit path over a rotating
// set of repeated patterns (the steady-state master with regular
// stragglers): every lookup after warmup is a table hit.
func BenchmarkDecodeCacheHit(b *testing.B) {
	st := benchStrategy(b, 16, 2)
	m := st.M()
	// Warm every pattern the loop will visit.
	for i := 0; i < m; i++ {
		alive := AliveFromStragglers(m, []int{i % m, (i + 5) % m})
		if _, err := st.Decode(alive); err != nil {
			b.Fatal(err)
		}
	}
	alive := make([]bool, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range alive {
			alive[j] = true
		}
		alive[i%m] = false
		alive[(i+5)%m] = false
		if _, err := st.Decode(alive); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if stats := st.DecodeCacheStats(); stats.Hits == 0 {
		b.Fatalf("expected cache hits: %+v", stats)
	}
}

// BenchmarkDecodeCacheMiss measures the miss path (online solve + insert) by
// keeping the cache capacity below the pattern working set, so every decode
// evicts and re-solves.
func BenchmarkDecodeCacheMiss(b *testing.B) {
	st := benchStrategy(b, 16, 2)
	st.SetDecodeCacheCapacity(1)
	m := st.M()
	alive := make([]bool, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range alive {
			alive[j] = true
		}
		alive[i%m] = false
		alive[(i+5)%m] = false
		if _, err := st.Decode(alive); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindGroups measures the Alg. 2 exact-cover search.
func BenchmarkFindGroups(b *testing.B) {
	st := benchStrategy(b, 16, 1)
	alloc := st.Allocation()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if groups := FindGroups(alloc, 0); groups == nil {
			b.Fatal("nil groups")
		}
	}
}

// BenchmarkConstruction measures Alg. 1 end to end at m=32.
func BenchmarkConstruction(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	c := make([]float64, 32)
	for i := range c {
		c[i] = float64(1 + i%5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewHeterAware(c, 96, 2, rng); err != nil {
			b.Fatal(err)
		}
	}
}
