package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hetgc/hetgc/internal/partition"
)

// Property: every group returned by FindGroups is an exact cover (each
// partition covered exactly once), for random heterogeneous allocations.
func TestFindGroupsExactCoverProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 3 + r.Intn(8)
		s := r.Intn(2)
		if s+1 > m {
			s = m - 1
		}
		k := m + r.Intn(2*m)
		c := make([]float64, m)
		for i := range c {
			c[i] = 1 + float64(r.Intn(5))
		}
		alloc, err := partition.Proportional(c, k, s)
		if err != nil {
			return false
		}
		for _, g := range FindGroups(alloc, 0) {
			counts := make([]int, alloc.K)
			for _, w := range g {
				for _, p := range alloc.Parts[w] {
					counts[p]++
				}
			}
			for _, n := range counts {
				if n != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: PruneGroups always yields pairwise-disjoint groups and never
// invents workers.
func TestPruneGroupsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		groups := make([][]int, n)
		members := map[int]bool{}
		for i := range groups {
			size := 1 + r.Intn(4)
			seen := map[int]bool{}
			for len(seen) < size {
				w := r.Intn(12)
				seen[w] = true
				members[w] = true
			}
			g := make([]int, 0, size)
			for w := range seen {
				g = append(g, w)
			}
			// PruneGroups expects sorted groups (FindGroups sorts).
			for a := 1; a < len(g); a++ {
				for b := a; b > 0 && g[b] < g[b-1]; b-- {
					g[b], g[b-1] = g[b-1], g[b]
				}
			}
			groups[i] = g
		}
		pruned := PruneGroups(groups)
		for i := 0; i < len(pruned); i++ {
			for j := i + 1; j < len(pruned); j++ {
				if intersects(pruned[i], pruned[j]) {
					return false
				}
			}
			for _, w := range pruned[i] {
				if !members[w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: group-based construction on random shapes is robust to every
// straggler pattern (exhaustive when feasible).
func TestGroupBasedRandomShapesRobust(t *testing.T) {
	shapes := 0
	for seed := int64(0); shapes < 12 && seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(6)
		s := 1 + r.Intn(2)
		if s+1 > m {
			continue
		}
		k := m + r.Intn(m)
		c := make([]float64, m)
		for i := range c {
			c[i] = 1 + float64(r.Intn(4))
		}
		st, err := NewGroupBased(c, k, s, r)
		if err != nil {
			continue
		}
		if err := VerifyRobustness(st, 0, nil); err != nil {
			t.Fatalf("seed %d shape m=%d k=%d s=%d c=%v: %v", seed, m, k, s, c, err)
		}
		shapes++
	}
	if shapes < 8 {
		t.Fatalf("only %d shapes exercised", shapes)
	}
}
