// Package core implements the paper's primary contribution: gradient coding
// strategies for straggler tolerance on heterogeneous clusters.
//
// A strategy is an m×k coding matrix B together with the data-partition
// allocation that defines its support. Worker i computes the partial
// gradients of its partitions and sends the linear combination
// g̃_i = b_i·[g_1 … g_k]ᵀ. The master recovers the full gradient
// g = Σ_j g_j from any admissible subset of workers by finding decoding
// coefficients a with aᵀB = 1ᵀ supported on the alive workers (Lemma 1,
// Condition 1).
//
// Five strategies are provided:
//
//   - Naive: no replication, requires every worker (the BSP baseline).
//   - Cyclic: Tandon et al.'s homogeneous cyclic code (equal load, any
//     m−s workers decode).
//   - FractionalRepetition: Tandon et al.'s replication-group code
//     (requires (s+1) | m).
//   - HeterAware: the paper's Alg. 1 — loads proportional to worker
//     throughput, coding matrix built from a random auxiliary matrix C with
//     CB = 1 (Lemmas 2–3, Theorems 4–5).
//   - GroupBased: the paper's Alg. 2/3 — decode groups of workers whose
//     partitions exactly tile the dataset, falling back to an Alg. 1
//     sub-code on the remaining workers (Theorem 6).
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/hetgc/hetgc/internal/linalg"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/partition"
)

// Kind identifies a gradient coding strategy family.
type Kind int

// Strategy kinds.
const (
	Naive Kind = iota + 1
	Cyclic
	FractionalRepetition
	HeterAware
	GroupBased
)

// String returns the scheme name as used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case Naive:
		return "naive"
	case Cyclic:
		return "cyclic"
	case FractionalRepetition:
		return "frac-rep"
	case HeterAware:
		return "heter-aware"
	case GroupBased:
		return "group-based"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

var (
	// ErrUndecodable is returned when the alive worker set cannot recover the
	// aggregated gradient.
	ErrUndecodable = errors.New("core: alive set cannot decode the gradient")
	// ErrConstruction is returned when a coding matrix cannot be built (after
	// retries with fresh randomness).
	ErrConstruction = errors.New("core: coding matrix construction failed")
	// ErrBadInput mirrors invalid constructor arguments.
	ErrBadInput = errors.New("core: invalid input")
)

// decodeTol is the residual tolerance for accepting decoding coefficients.
const decodeTol = 1e-6

// Strategy is an immutable gradient coding strategy: the allocation, the
// coding matrix B and everything needed to decode. Safe for concurrent use.
type Strategy struct {
	kind  Kind
	alloc *partition.Allocation
	b     *linalg.Matrix // m×k coding matrix
	c     *linalg.Matrix // (s+1)×m auxiliary matrix (HeterAware/Cyclic), nil otherwise

	// Group-based state.
	groups [][]int        // pairwise-disjoint decode groups (sorted worker indices)
	ebar   []int          // workers outside every group, ascending
	ebarPo map[int]int    // worker index -> position in ebar
	subC   *linalg.Matrix // (subS+1)×|ebar| auxiliary matrix of the Ē sub-code
	subS   int            // straggler tolerance of the Ē sub-code (s − P)

	// Fractional repetition state: blocks[j] lists the workers holding
	// replica j's identical partition set.
	blocks [][]int

	// Decode-plan cache (see plancache.go): bounded, pattern-keyed memo of
	// decoding rows with hit/miss/eviction counters. Masks up to 128 workers
	// use the memhash-friendly packed key; wider clusters spill to the
	// string-keyed shard. A strategy's m is fixed, so only one shard is ever
	// populated. Steady-state hits read an immutable snapshot map without
	// taking planMu.
	planMu       sync.RWMutex
	plans        planShard
	plansWide    wideShard
	planCap      atomic.Int64
	planCounters metrics.CacheCounters
}

// Kind returns the strategy family.
func (st *Strategy) Kind() Kind { return st.kind }

// M returns the number of workers.
func (st *Strategy) M() int { return st.alloc.M() }

// K returns the number of data partitions.
func (st *Strategy) K() int { return st.alloc.K }

// S returns the straggler budget the strategy was built for.
func (st *Strategy) S() int { return st.alloc.S }

// Allocation returns the data-partition allocation. The caller must not
// modify the returned value.
func (st *Strategy) Allocation() *partition.Allocation { return st.alloc }

// B returns a copy of the m×k coding matrix.
func (st *Strategy) B() *linalg.Matrix { return st.b.Clone() }

// Row returns a copy of worker i's coding vector b_i.
func (st *Strategy) Row(i int) []float64 { return st.b.Row(i) }

// Groups returns copies of the decode groups (empty except for GroupBased).
func (st *Strategy) Groups() [][]int {
	out := make([][]int, len(st.groups))
	for i, g := range st.groups {
		out[i] = append([]int(nil), g...)
	}
	return out
}

// MinAlive returns the guaranteed-sufficient number of alive workers, m−s.
// Group-based strategies may decode from fewer (a single alive group).
func (st *Strategy) MinAlive() int { return st.M() - st.S() }

// CanDecode reports whether the given alive set can recover the gradient.
func (st *Strategy) CanDecode(alive []bool) bool {
	_, err := st.Decode(alive)
	return err == nil
}

// Decode returns decoding coefficients a (length m, zero outside the alive
// set) with aᵀB = 1ᵀ, or ErrUndecodable. Results are memoised in the bounded
// decode-plan cache, so recurring straggler patterns decode by table lookup.
//
// Ownership: the returned slice is shared with the plan cache and with every
// other caller that decoded the same pattern. Treat it as read-only; copy it
// (e.g. with append) before modifying.
func (st *Strategy) Decode(alive []bool) ([]float64, error) {
	if len(alive) != st.M() {
		return nil, fmt.Errorf("%w: alive length %d != m=%d", ErrBadInput, len(alive), st.M())
	}
	// Hot path: probe the immutable snapshot table without any lock, then
	// the recent-insert overflow under the read lock. The key is computed
	// once and reused by the miss path's re-check and insert.
	small := len(alive) <= planKeyWidth
	var key planKey
	var wideKey string
	if small {
		key = makePlanKey(alive)
		if t := st.plans.snap.Load(); t != nil {
			if res := t.get(key); res != nil {
				st.planCounters.Hit()
				return res.coeffs, res.err
			}
		}
		st.planMu.RLock()
		res, ok := st.plans.overflow[key]
		st.planMu.RUnlock()
		if ok {
			st.planCounters.Hit()
			return res.coeffs, res.err
		}
	} else {
		wideKey = makeWidePlanKey(alive)
		st.planMu.RLock()
		res, ok := st.plansWide.loadLocked(wideKey)
		st.planMu.RUnlock()
		if ok {
			st.planCounters.Hit()
			return res.coeffs, res.err
		}
	}
	st.planCounters.Miss()

	coeffs, err := st.decode(alive)
	if err == nil {
		if verr := st.verifyCoeffs(coeffs); verr != nil {
			coeffs, err = nil, verr
		}
	}

	st.planMu.Lock()
	// Another goroutine may have raced the solve; keep its entry so every
	// caller observes one canonical row per pattern.
	var evicted int
	if small {
		if prior, ok := st.plans.loadLocked(key); ok {
			st.planMu.Unlock()
			return prior.coeffs, prior.err
		}
		evicted = st.plans.store(key, &decodeResult{coeffs: coeffs, err: err}, st.planCapacity())
	} else {
		if prior, ok := st.plansWide.loadLocked(wideKey); ok {
			st.planMu.Unlock()
			return prior.coeffs, prior.err
		}
		evicted = st.plansWide.store(wideKey, &decodeResult{coeffs: coeffs, err: err}, st.planCapacity())
	}
	st.planMu.Unlock()
	st.planCounters.AddEvictions(evicted)
	return coeffs, err
}

// decode dispatches to the scheme-specific decoding paths.
func (st *Strategy) decode(alive []bool) ([]float64, error) {
	switch st.kind {
	case Naive:
		return st.decodeNaive(alive)
	case FractionalRepetition:
		return st.decodeFractional(alive)
	case Cyclic, HeterAware:
		if coeffs, err := st.decodeNullSpace(alive); err == nil {
			return coeffs, nil
		}
		return st.decodeGeneric(alive)
	case GroupBased:
		if coeffs, err := st.decodeGroup(alive); err == nil {
			return coeffs, nil
		}
		return st.decodeGeneric(alive)
	default:
		return st.decodeGeneric(alive)
	}
}

// verifyCoeffs checks aᵀB ≈ 1ᵀ.
func (st *Strategy) verifyCoeffs(coeffs []float64) error {
	row, err := st.b.VecMul(coeffs)
	if err != nil {
		return err
	}
	if !linalg.VecEqual(row, linalg.OnesVec(st.K()), decodeTol) {
		return fmt.Errorf("%w: decoding residual too large", ErrUndecodable)
	}
	return nil
}

// AliveFromStragglers builds an alive mask of length m with the given
// straggler indices set to false.
func AliveFromStragglers(m int, stragglers []int) []bool {
	alive := make([]bool, m)
	for i := range alive {
		alive[i] = true
	}
	for _, s := range stragglers {
		if s >= 0 && s < m {
			alive[s] = false
		}
	}
	return alive
}

// randomC fills an rows×cols matrix with independent Uniform(0,1) entries
// (Lemma 3: such a C has properties P1 and P2 with probability 1).
func randomC(rows, cols int, rng *rand.Rand) *linalg.Matrix {
	c := linalg.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			c.Set(i, j, rng.Float64())
		}
	}
	return c
}
