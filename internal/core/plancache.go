package core

import (
	"fmt"
	"sync/atomic"

	"github.com/hetgc/hetgc/internal/metrics"
)

// This file implements the decode-plan cache: the runtime realisation of the
// paper's §III.B observation that "the decoding matrix A could be partially
// stored specially for regular stragglers". Every alive-set pattern the
// master decodes is keyed and memoised, so recurring straggler patterns
// (chronically slow machines, repeated fault masks) decode by table lookup
// instead of re-running the O(s³)/O(n³) online solves. Irregular patterns
// still fall back to the online solve on miss — with byte-identical
// coefficients, since the cache stores exactly what the solve produced.
//
// Storage is two-level. Recent inserts land in a small overflow map guarded
// by Strategy.planMu; once the overflow outgrows a quarter of the snapshot
// it is folded into a fresh immutable open-addressing table published
// through an atomic pointer (geometric merging: amortized O(1) copies per
// insert). Steady-state hits probe the immutable table without taking any
// lock — the per-iteration master hot path.

// DefaultDecodeCacheCapacity bounds the number of cached decode plans per
// strategy. C(m,s) can be astronomically large, so the cache must be bounded;
// 4096 plans cover every pattern any realistic Table II-sized run revisits.
const DefaultDecodeCacheCapacity = 4096

// planKey is a comparable, allocation-free key for an alive mask of up to
// 128 workers. Clusters beyond 128 workers spill into a string-keyed shard
// (allocating, but still correct); a strategy's m is fixed, so each strategy
// only ever uses one of the two shards.
type planKey struct {
	lo, hi uint64
}

// planKeyWidth is the worker count the packed planKey covers.
const planKeyWidth = 128

// makePlanKey packs an alive mask with m ≤ planKeyWidth.
func makePlanKey(alive []bool) planKey {
	var k planKey
	for i, a := range alive {
		if !a {
			continue
		}
		if i < 64 {
			k.lo |= 1 << uint(i)
		} else {
			k.hi |= 1 << uint(i-64)
		}
	}
	return k
}

// makeWidePlanKey packs an alive mask of any width into a string.
func makeWidePlanKey(alive []bool) string {
	buf := make([]byte, (len(alive)+7)/8)
	for i, a := range alive {
		if a {
			buf[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return string(buf)
}

// decodeResult is one cached decode outcome: either the coefficient row or
// the (deterministic) decode error for that alive set.
type decodeResult struct {
	coeffs []float64
	err    error
}

// planMergeMin is the smallest overflow size that triggers a snapshot merge.
const planMergeMin = 8

// hashPlanKey is a 128→64 bit mix (splitmix64-style) good enough to spread
// alive masks across table slots.
func hashPlanKey(k planKey) uint64 {
	h := k.lo*0x9e3779b97f4a7c15 ^ k.hi*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// planTable is an immutable linear-probing hash table. Tables are built at
// ≤ 50% load so probes terminate at an empty slot; once published via the
// shard's atomic pointer a table is never mutated, making lock-free reads
// safe.
type planTable struct {
	mask  uint64
	slots []planSlot
	count int
}

type planSlot struct {
	key planKey
	res *decodeResult // nil marks an empty slot
}

// get probes for a key; nil means absent.
func (t *planTable) get(k planKey) *decodeResult {
	i := hashPlanKey(k) & t.mask
	for {
		s := &t.slots[i]
		if s.res == nil {
			return nil
		}
		if s.key == k {
			return s.res
		}
		i = (i + 1) & t.mask
	}
}

// newPlanTable builds a table holding the given entries at ≤ 50% load.
func newPlanTable(entries map[planKey]*decodeResult) *planTable {
	size := 8
	for size < 2*len(entries) {
		size *= 2
	}
	t := &planTable{mask: uint64(size - 1), slots: make([]planSlot, size), count: len(entries)}
	for k, res := range entries {
		i := hashPlanKey(k) & t.mask
		for t.slots[i].res != nil {
			i = (i + 1) & t.mask
		}
		t.slots[i] = planSlot{key: k, res: res}
	}
	return t
}

// planShard is the packed-key cache level pair. The snapshot is read without
// locks; the overflow map and all mutation are guarded by Strategy.planMu.
type planShard struct {
	snap     atomic.Pointer[planTable]
	overflow map[planKey]*decodeResult
}

// loadLocked checks both levels. Caller must hold planMu (read or write).
func (p *planShard) loadLocked(k planKey) (*decodeResult, bool) {
	if t := p.snap.Load(); t != nil {
		if res := t.get(k); res != nil {
			return res, true
		}
	}
	res, ok := p.overflow[k]
	return res, ok
}

// size returns the cached-entry count. Caller must hold planMu.
func (p *planShard) size() int {
	n := len(p.overflow)
	if t := p.snap.Load(); t != nil {
		n += t.count
	}
	return n
}

// store inserts a result the caller verified to be absent, evicting in batch
// at capacity and merging the overflow once it outgrows its share. Caller
// must hold planMu for writing. Returns the evicted count.
func (p *planShard) store(k planKey, res *decodeResult, capacity int) int {
	evicted := 0
	if p.size() >= capacity {
		// Rebuild at ~7/8 capacity so churn amortizes one O(n) rebuild over
		// capacity/8 misses instead of paying it per insert.
		evicted = p.shrinkTo(capacity - 1 - capacity/8)
	}
	if p.overflow == nil {
		p.overflow = make(map[planKey]*decodeResult, planMergeMin)
	}
	p.overflow[k] = res
	snapCount := 0
	if t := p.snap.Load(); t != nil {
		snapCount = t.count
	}
	if len(p.overflow) >= planMergeMin && len(p.overflow)*4 >= snapCount {
		p.merge()
	}
	return evicted
}

// entriesLocked collects every cached entry. Caller must hold planMu.
func (p *planShard) entriesLocked() map[planKey]*decodeResult {
	out := make(map[planKey]*decodeResult, p.size())
	if t := p.snap.Load(); t != nil {
		for _, s := range t.slots {
			if s.res != nil {
				out[s.key] = s.res
			}
		}
	}
	for k, res := range p.overflow {
		out[k] = res
	}
	return out
}

// merge folds the overflow into a fresh snapshot table. Caller must hold
// planMu for writing.
func (p *planShard) merge() {
	p.snap.Store(newPlanTable(p.entriesLocked()))
	p.overflow = nil
}

// shrinkTo drops arbitrary entries until at most target remain, publishing a
// rebuilt snapshot. Caller must hold planMu for writing. Returns the evicted
// count.
func (p *planShard) shrinkTo(target int) int {
	if target < 0 {
		target = 0
	}
	entries := p.entriesLocked()
	evicted := 0
	for k := range entries {
		if len(entries) <= target {
			break
		}
		delete(entries, k)
		evicted++
	}
	p.snap.Store(newPlanTable(entries))
	p.overflow = nil
	return evicted
}

// wideShard is the string-keyed spill for clusters beyond planKeyWidth
// workers. Large-m decodes are dominated by the solve itself, so a plain
// locked map is enough; planMu guards it.
type wideShard struct {
	m map[string]*decodeResult
}

func (p *wideShard) loadLocked(k string) (*decodeResult, bool) {
	res, ok := p.m[k]
	return res, ok
}

func (p *wideShard) store(k string, res *decodeResult, capacity int) int {
	evicted := 0
	if len(p.m) >= capacity {
		for victim := range p.m {
			delete(p.m, victim)
			evicted++
			if len(p.m) < capacity {
				break
			}
		}
	}
	if p.m == nil {
		p.m = make(map[string]*decodeResult)
	}
	p.m[k] = res
	return evicted
}

func (p *wideShard) shrinkTo(target int) int {
	if target < 0 {
		target = 0
	}
	evicted := 0
	for k := range p.m {
		if len(p.m) <= target {
			break
		}
		delete(p.m, k)
		evicted++
	}
	return evicted
}

// plansLocked re-checks an alive mask. Caller must hold st.planMu.
func (st *Strategy) plansLocked(alive []bool) (*decodeResult, bool) {
	if len(alive) <= planKeyWidth {
		return st.plans.loadLocked(makePlanKey(alive))
	}
	return st.plansWide.loadLocked(makeWidePlanKey(alive))
}

// storePlan inserts a decode result for an alive mask. Caller must hold
// st.planMu for writing and have checked the mask is not already present.
func (st *Strategy) storePlan(alive []bool, res *decodeResult) {
	var evicted int
	if len(alive) <= planKeyWidth {
		evicted = st.plans.store(makePlanKey(alive), res, st.planCapacity())
	} else {
		evicted = st.plansWide.store(makeWidePlanKey(alive), res, st.planCapacity())
	}
	st.planCounters.AddEvictions(evicted)
}

// cacheSizeLocked returns the total cached-plan count. Caller must hold
// st.planMu (read or write).
func (st *Strategy) cacheSizeLocked() int {
	return st.plans.size() + len(st.plansWide.m)
}

func (st *Strategy) planCapacity() int {
	if c := st.planCap.Load(); c > 0 {
		return int(c)
	}
	return DefaultDecodeCacheCapacity
}

// SetDecodeCacheCapacity bounds the decode-plan cache to n entries (n ≤ 0
// restores DefaultDecodeCacheCapacity). Shrinking evicts arbitrary entries.
func (st *Strategy) SetDecodeCacheCapacity(n int) {
	st.planMu.Lock()
	defer st.planMu.Unlock()
	st.planCap.Store(int64(n))
	capacity := st.planCapacity()
	if st.cacheSizeLocked() > capacity {
		evicted := st.plans.shrinkTo(capacity - len(st.plansWide.m))
		evicted += st.plansWide.shrinkTo(capacity - st.plans.size())
		st.planCounters.AddEvictions(evicted)
	}
}

// DecodeCacheStats snapshots the decode-plan cache counters: hits answer by
// table lookup, misses run the online solve (§III.B's irregular stragglers).
func (st *Strategy) DecodeCacheStats() metrics.CacheStats {
	st.planMu.RLock()
	size := st.cacheSizeLocked()
	st.planMu.RUnlock()
	return st.planCounters.Snapshot(size, st.planCapacity())
}

// InstallDecodingMatrix seeds the decode-plan cache with the precomputed rows
// of dm (the paper's partially-stored decoding matrix A), so those patterns
// hit on their very first Decode. Rows are installed without copying: the
// cache and dm share storage, which is safe because both treat rows as
// immutable.
func (st *Strategy) InstallDecodingMatrix(dm *DecodingMatrix) error {
	if dm == nil {
		return fmt.Errorf("%w: nil decoding matrix", ErrBadInput)
	}
	m := st.M()
	for i, p := range dm.Patterns {
		row, ok := dm.lookupRef(p)
		if !ok || len(row) != m {
			return fmt.Errorf("%w: decoding matrix row %d does not match m=%d", ErrBadInput, i, m)
		}
		if err := st.verifyCoeffs(row); err != nil {
			return fmt.Errorf("pattern %v: %w", p, err)
		}
		alive := AliveFromStragglers(m, p)
		st.planMu.Lock()
		if _, ok := st.plansLocked(alive); ok {
			// The pattern is already cached with identical semantics (both
			// sides are verified rows for the same B); keep the prior entry
			// so existing references stay canonical.
			st.planMu.Unlock()
			continue
		}
		st.storePlan(alive, &decodeResult{coeffs: row})
		st.planMu.Unlock()
	}
	return nil
}

// WarmCache decodes every given straggler pattern once so subsequent decodes
// hit the plan cache. It is a convenience wrapper equivalent to
// PrecomputePatterns + InstallDecodingMatrix without materialising A.
func (st *Strategy) WarmCache(patterns []Pattern) error {
	m := st.M()
	for _, p := range patterns {
		if _, err := st.Decode(AliveFromStragglers(m, p)); err != nil {
			return fmt.Errorf("pattern %v: %w", p, err)
		}
	}
	return nil
}
