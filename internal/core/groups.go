package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/hetgc/hetgc/internal/linalg"
	"github.com/hetgc/hetgc/internal/partition"
)

// defaultMaxGroups caps the exhaustive group enumeration: the pruning step
// keeps at most s+1 disjoint groups anyway, so a modest cap is ample.
const defaultMaxGroups = 128

// bitset is a fixed-size bitmask over partitions.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (uint(i) % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }
func (b bitset) clone() bitset  { return append(bitset(nil), b...) }
func (b bitset) or(o bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}
func (b bitset) disjoint(o bitset) bool {
	for i := range b {
		if b[i]&o[i] != 0 {
			return false
		}
	}
	return true
}
func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// FindGroups enumerates worker sets whose partition sets are pairwise
// disjoint and together cover every partition (condition ⋆ of §V) — the
// paper's Alg. 2 FindAllGroups, implemented as a canonical exact-cover
// search: at every step the holder of the lowest uncovered partition is
// chosen, so each group is produced exactly once. The search stops after
// maxGroups results (≤ 0 means the default cap).
func FindGroups(alloc *partition.Allocation, maxGroups int) [][]int {
	if maxGroups <= 0 {
		maxGroups = defaultMaxGroups
	}
	k := alloc.K
	m := alloc.M()
	sets := make([]bitset, m)
	for w := 0; w < m; w++ {
		bs := newBitset(k)
		for _, p := range alloc.Parts[w] {
			bs.set(p)
		}
		sets[w] = bs
	}
	full := newBitset(k)
	for p := 0; p < k; p++ {
		full.set(p)
	}
	holders := alloc.Holders()

	var (
		results [][]int
		chosen  []int
	)
	var search func(covered bitset)
	search = func(covered bitset) {
		if len(results) >= maxGroups {
			return
		}
		if covered.equal(full) {
			g := append([]int(nil), chosen...)
			sort.Ints(g)
			results = append(results, g)
			return
		}
		// Lowest uncovered partition: exactly one of its holders must be in
		// any completing group, so branching on them is exhaustive and
		// duplicate-free.
		low := -1
		for p := 0; p < k; p++ {
			if !covered.has(p) {
				low = p
				break
			}
		}
		for _, w := range holders[low] {
			if !sets[w].disjoint(covered) {
				continue
			}
			next := covered.clone()
			next.or(sets[w])
			chosen = append(chosen, w)
			search(next)
			chosen = chosen[:len(chosen)-1]
			if len(results) >= maxGroups {
				return
			}
		}
	}
	// Workers with no partitions never join a group.
	search(newBitset(k))
	return results
}

// PruneGroups enforces condition ⋆⋆ (pairwise-disjoint groups) by repeatedly
// removing the group that intersects the most other groups, as in Alg. 2's
// PruneGroups. Ties break toward the larger group, then the higher index,
// which keeps small fast groups preferentially.
func PruneGroups(groups [][]int) [][]int {
	kept := make([][]int, len(groups))
	copy(kept, groups)
	for {
		n := len(kept)
		overlaps := make([]int, n)
		conflict := false
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if intersects(kept[i], kept[j]) {
					overlaps[i]++
					overlaps[j]++
					conflict = true
				}
			}
		}
		if !conflict {
			return kept
		}
		worst := 0
		for i := 1; i < n; i++ {
			if overlaps[i] > overlaps[worst] ||
				(overlaps[i] == overlaps[worst] && len(kept[i]) > len(kept[worst])) ||
				(overlaps[i] == overlaps[worst] && len(kept[i]) == len(kept[worst]) && i > worst) {
				worst = i
			}
		}
		kept = append(kept[:worst], kept[worst+1:]...)
	}
}

func intersects(a, b []int) bool {
	// Both sorted ascending.
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// NewGroupBased builds the paper's group-based strategy (Alg. 3) on the
// heterogeneity-aware allocation: group workers get all-ones coding rows and
// decode by summation; the remaining workers Ē get an Alg. 1 sub-code with
// straggler budget s−P. Robust to any s stragglers (Theorem 6).
func NewGroupBased(throughputs []float64, k, s int, rng *rand.Rand) (*Strategy, error) {
	if rng == nil {
		return nil, fmt.Errorf("%w: nil rng", ErrBadInput)
	}
	alloc, err := partition.Proportional(throughputs, k, s)
	if err != nil {
		return nil, fmt.Errorf("group-based allocation: %w", err)
	}
	return NewGroupBasedFromAllocation(alloc, rng)
}

// NewGroupBasedFromAllocation builds the group-based code on a caller
// allocation. When no groups exist the result degenerates to a pure Alg. 1
// code (still robust to s stragglers, without the summation fast path).
func NewGroupBasedFromAllocation(alloc *partition.Allocation, rng *rand.Rand) (*Strategy, error) {
	if err := alloc.Validate(); err != nil {
		return nil, err
	}
	groups := PruneGroups(FindGroups(alloc, 0))
	p := len(groups)
	m := alloc.M()
	s := alloc.S

	if p == 0 {
		b, c, err := buildCode(alloc, s, rng)
		if err != nil {
			return nil, err
		}
		return &Strategy{kind: GroupBased, alloc: alloc, b: b, c: c}, nil
	}

	inGroup := make([]bool, m)
	for _, g := range groups {
		for _, w := range g {
			inGroup[w] = true
		}
	}
	b := linalg.NewMatrix(m, alloc.K)
	for w := 0; w < m; w++ {
		if !inGroup[w] {
			continue
		}
		for _, part := range alloc.Parts[w] {
			b.Set(w, part, 1)
		}
	}

	var ebar []int
	for w := 0; w < m; w++ {
		if !inGroup[w] {
			ebar = append(ebar, w)
		}
	}
	st := &Strategy{kind: GroupBased, alloc: alloc, b: b, groups: groups}
	if len(ebar) == 0 {
		return st, nil
	}
	// Coverage bookkeeping: every group holds exactly one copy of each
	// partition, so Ē covers each partition s+1−P times. If any Ē worker
	// holds data then P ≤ s and the sub-code tolerates s−P stragglers.
	ebarHasData := false
	for _, w := range ebar {
		if alloc.Loads[w] > 0 {
			ebarHasData = true
			break
		}
	}
	st.ebar = ebar
	if !ebarHasData {
		// Empty rows; nothing to code. (P > s ⇒ some group always survives.)
		return st, nil
	}
	subS := s - p
	if subS < 0 {
		return nil, fmt.Errorf("%w: %d groups but Ē workers hold data (coverage violated)", ErrConstruction, p)
	}
	subC, err := buildSubCode(alloc, ebar, subS, b, rng)
	if err != nil {
		return nil, err
	}
	st.subC = subC
	st.subS = subS
	st.ebarPo = make(map[int]int, len(ebar))
	for pos, w := range ebar {
		st.ebarPo[w] = pos
	}
	return st, nil
}

// buildSubCode runs the Alg. 1 construction restricted to the Ē workers and
// embeds the resulting rows into b. The sub-allocation covers every
// partition exactly subS+1 times.
func buildSubCode(alloc *partition.Allocation, ebar []int, subS int, b *linalg.Matrix, rng *rand.Rand) (*linalg.Matrix, error) {
	// Holders of each partition within Ē, by Ē position.
	holders := make([][]int, alloc.K)
	for pos, w := range ebar {
		for _, part := range alloc.Parts[w] {
			holders[part] = append(holders[part], pos)
		}
	}
	for part, hs := range holders {
		if len(hs) < subS+1 {
			return nil, fmt.Errorf("%w: partition %d covered %d times in Ē, need ≥ %d", ErrConstruction, part, len(hs), subS+1)
		}
	}
	var lastErr error
	for attempt := 0; attempt < maxConstructionAttempts; attempt++ {
		subC := randomC(subS+1, len(ebar), rng)
		ok := true
		rows := make([][]float64, len(ebar))
		for pos := range ebar {
			rows[pos] = make([]float64, alloc.K)
		}
		for part, hs := range holders {
			ci := subC.SelectCols(hs)
			ones := linalg.OnesVec(subS + 1)
			var d []float64
			var err error
			if len(hs) == subS+1 {
				d, err = linalg.Solve(ci, ones)
			} else {
				d, err = linalg.SolveLeastSquaresMinNorm(ci, ones)
			}
			if err != nil {
				lastErr = fmt.Errorf("partition %d: %w", part, err)
				ok = false
				break
			}
			for i, pos := range hs {
				rows[pos][part] = d[i]
			}
		}
		if !ok {
			continue
		}
		for pos, w := range ebar {
			b.SetRow(w, rows[pos])
		}
		return subC, nil
	}
	return nil, fmt.Errorf("%w: %v", ErrConstruction, lastErr)
}
