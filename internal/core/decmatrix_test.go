package core

import (
	"errors"
	"testing"
)

func TestPrecomputeAllAndVerify(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(41))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := st.PrecomputeAll(0)
	if err != nil {
		t.Fatal(err)
	}
	// C(5,1) = 5 patterns.
	if dm.Size() != 5 {
		t.Fatalf("size = %d, want 5", dm.Size())
	}
	if err := st.VerifyDecodingMatrix(dm); err != nil {
		t.Fatal(err)
	}
	a := dm.Matrix(st.M())
	if a.Rows() != 5 || a.Cols() != 5 {
		t.Fatalf("A shape %dx%d", a.Rows(), a.Cols())
	}
}

func TestPrecomputeAllS2(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 1, 2, 2, 3, 3}, 8, 2, newRng(42))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := st.PrecomputeAll(0)
	if err != nil {
		t.Fatal(err)
	}
	// C(6,2) = 15 patterns.
	if dm.Size() != 15 {
		t.Fatalf("size = %d, want 15", dm.Size())
	}
	if err := st.VerifyDecodingMatrix(dm); err != nil {
		t.Fatal(err)
	}
}

func TestPrecomputeAllBudget(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(43))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.PrecomputeAll(3); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput (budget)", err)
	}
}

func TestLookupHitAndMiss(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(44))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := st.PrecomputePatterns([]Pattern{{2}, {0}})
	if err != nil {
		t.Fatal(err)
	}
	row, ok := dm.Lookup([]int{2})
	if !ok {
		t.Fatal("expected hit")
	}
	if row[2] != 0 {
		t.Fatalf("straggler coefficient %v", row[2])
	}
	// Mutating the returned row must not poison the store.
	row[0] = 999
	row2, _ := dm.Lookup([]int{2})
	if row2[0] == 999 {
		t.Fatal("Lookup aliases storage")
	}
	if _, ok := dm.Lookup([]int{4}); ok {
		t.Fatal("expected miss")
	}
	// Lookup on nil matrix is a miss, not a panic.
	var nilDM *DecodingMatrix
	if _, ok := nilDM.Lookup([]int{0}); ok {
		t.Fatal("nil lookup must miss")
	}
	if nilDM.Size() != 0 {
		t.Fatal("nil size must be 0")
	}
}

func TestPrecomputePatternsValidation(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(45))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.PrecomputePatterns([]Pattern{{0, 1}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("oversized pattern err = %v", err)
	}
	if _, err := st.PrecomputePatterns([]Pattern{{9}}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("invalid worker err = %v", err)
	}
	// Duplicates collapse.
	dm, err := st.PrecomputePatterns([]Pattern{{1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Size() != 1 {
		t.Fatalf("size = %d, want 1", dm.Size())
	}
}

func TestRegularPatterns(t *testing.T) {
	ps := RegularPatterns([]int{3, 5}, 2)
	// {}, {3}, {5}, {3,5}
	if len(ps) != 4 {
		t.Fatalf("patterns = %v", ps)
	}
	ps1 := RegularPatterns([]int{3, 5, 7}, 1)
	// {}, {3}, {5}, {7}
	if len(ps1) != 4 {
		t.Fatalf("patterns = %v", ps1)
	}
}

func TestRegularPatternsDecodeOnGroupBased(t *testing.T) {
	st, err := NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(46))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := st.PrecomputePatterns(RegularPatterns([]int{0, 1}, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.VerifyDecodingMatrix(dm); err != nil {
		t.Fatal(err)
	}
}

func TestSampleDecodes(t *testing.T) {
	st, err := NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(47))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SampleDecodes(50, newRng(48)); err != nil {
		t.Fatal(err)
	}
	if err := st.SampleDecodes(1, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("nil rng err = %v", err)
	}
}
