package core

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/hetgc/hetgc/internal/linalg"
)

// This file implements the paper's §III.B decoding-matrix machinery: the
// full decoding matrix A ∈ R^{S×m} with one row per straggler pattern
// (A·B = 1, Eq. 2), and the storage strategy the paper describes — "the
// decoding matrix A could be partially stored specially for regular
// stragglers", with irregular patterns solved online.

// Pattern is a sorted straggler set (worker indices).
type Pattern []int

// key canonicalises a pattern for map storage.
func (p Pattern) key() string {
	buf := make([]byte, 0, len(p)*3)
	for _, w := range p {
		buf = append(buf, byte(w>>8), byte(w), ',')
	}
	return string(buf)
}

// normalize sorts and copies a pattern.
func normalizePattern(stragglers []int) Pattern {
	p := append(Pattern(nil), stragglers...)
	sort.Ints(p)
	return p
}

// DecodingMatrix stores precomputed decoding rows for a set of straggler
// patterns. Rows satisfy aᵀB = 1ᵀ with a zero on every straggler.
type DecodingMatrix struct {
	// Patterns lists the straggler patterns, aligned with Rows.
	Patterns []Pattern
	// Rows holds the decoding coefficient vectors (length m each).
	Rows [][]float64

	index map[string]int
}

// Lookup returns the decoding row for a straggler pattern, if stored. The
// row is copied, so callers own the result; the cache fast path uses the
// zero-copy lookupRef instead.
func (dm *DecodingMatrix) Lookup(stragglers []int) ([]float64, bool) {
	row, ok := dm.lookupRef(normalizePattern(stragglers))
	if !ok {
		return nil, false
	}
	return append([]float64(nil), row...), true
}

// lookupRef returns the stored decoding row without copying. Ownership
// contract: the returned slice is owned by the DecodingMatrix and shared with
// every other lookupRef caller — it must be treated as immutable. The input
// pattern must already be normalised (sorted).
func (dm *DecodingMatrix) lookupRef(p Pattern) ([]float64, bool) {
	if dm == nil || dm.index == nil {
		return nil, false
	}
	i, ok := dm.index[p.key()]
	if !ok {
		return nil, false
	}
	return dm.Rows[i], true
}

// Size returns the number of stored patterns.
func (dm *DecodingMatrix) Size() int {
	if dm == nil {
		return 0
	}
	return len(dm.Patterns)
}

// Matrix materialises A as a Size()×m matrix (Eq. 2: A·B = 1).
func (dm *DecodingMatrix) Matrix(m int) *linalg.Matrix {
	a := linalg.NewMatrix(dm.Size(), m)
	for i, row := range dm.Rows {
		a.SetRow(i, row)
	}
	return a
}

// PrecomputeAll builds the full decoding matrix over every straggler
// pattern of size exactly S (the paper's A ∈ R^{S×m} with S = C(m,s)).
// It refuses when C(m,s) exceeds maxPatterns (≤ 0 means 20000): for large
// clusters store only the regular patterns (PrecomputePatterns) and solve
// the rest online, exactly as §III.B prescribes.
func (st *Strategy) PrecomputeAll(maxPatterns int) (*DecodingMatrix, error) {
	if maxPatterns <= 0 {
		maxPatterns = exhaustiveLimit
	}
	m, s := st.M(), st.S()
	if !binomialAtMost(m, s, maxPatterns) {
		return nil, fmt.Errorf("%w: C(%d,%d) exceeds pattern budget %d", ErrBadInput, m, s, maxPatterns)
	}
	var patterns []Pattern
	cur := make([]int, s)
	var walk func(start, depth int)
	walk = func(start, depth int) {
		if depth == s {
			patterns = append(patterns, normalizePattern(cur))
			return
		}
		for i := start; i < m; i++ {
			cur[depth] = i
			walk(i+1, depth+1)
		}
	}
	walk(0, 0)
	return st.PrecomputePatterns(patterns)
}

// PrecomputePatterns builds decoding rows for the given straggler patterns
// (e.g. the "regular stragglers" the operator expects: the known-slow or
// flaky machines).
func (st *Strategy) PrecomputePatterns(patterns []Pattern) (*DecodingMatrix, error) {
	dm := &DecodingMatrix{index: make(map[string]int, len(patterns))}
	for _, p := range patterns {
		norm := normalizePattern(p)
		if len(norm) > st.S() {
			return nil, fmt.Errorf("%w: pattern %v larger than budget s=%d", ErrBadInput, norm, st.S())
		}
		for _, w := range norm {
			if w < 0 || w >= st.M() {
				return nil, fmt.Errorf("%w: pattern %v has invalid worker %d", ErrBadInput, norm, w)
			}
		}
		if _, dup := dm.index[norm.key()]; dup {
			continue
		}
		row, err := st.Decode(AliveFromStragglers(st.M(), norm))
		if err != nil {
			return nil, fmt.Errorf("pattern %v: %w", norm, err)
		}
		dm.index[norm.key()] = len(dm.Rows)
		dm.Patterns = append(dm.Patterns, norm)
		dm.Rows = append(dm.Rows, row)
	}
	return dm, nil
}

// VerifyDecodingMatrix checks A·B = 1 row by row.
func (st *Strategy) VerifyDecodingMatrix(dm *DecodingMatrix) error {
	ones := linalg.OnesVec(st.K())
	for i, row := range dm.Rows {
		prod, err := st.b.VecMul(row)
		if err != nil {
			return err
		}
		if !linalg.VecEqual(prod, ones, decodeTol) {
			return fmt.Errorf("%w: row %d (pattern %v) violates aᵀB = 1", ErrUndecodable, i, dm.Patterns[i])
		}
		for _, w := range dm.Patterns[i] {
			if row[w] != 0 {
				return fmt.Errorf("%w: row %d uses straggler %d", ErrUndecodable, i, w)
			}
		}
	}
	return nil
}

// RegularPatterns returns the straggler patterns of size ≤ s over the given
// suspect workers — the paper's "regular stragglers" to pre-store (e.g. the
// chronically slow machines). The empty pattern is included so the
// no-straggler decode is also cached.
func RegularPatterns(suspects []int, s int) []Pattern {
	var out []Pattern
	out = append(out, Pattern{})
	n := len(suspects)
	var walk func(start int, cur []int)
	walk = func(start int, cur []int) {
		if len(cur) > 0 {
			out = append(out, normalizePattern(cur))
		}
		if len(cur) == s {
			return
		}
		for i := start; i < n; i++ {
			walk(i+1, append(cur, suspects[i]))
		}
	}
	walk(0, nil)
	return out
}

// SampleDecodes exercises random patterns end to end (used by gcplan's
// verification and by fuzz-style tests).
func (st *Strategy) SampleDecodes(trials int, rng *rand.Rand) error {
	if rng == nil {
		return fmt.Errorf("%w: nil rng", ErrBadInput)
	}
	for t := 0; t < trials; t++ {
		n := rng.Intn(st.S() + 1)
		stragglers := samplePattern(st.M(), n, rng)
		if _, err := st.Decode(AliveFromStragglers(st.M(), stragglers)); err != nil {
			return fmt.Errorf("trial %d pattern %v: %w", t, stragglers, err)
		}
	}
	return nil
}
