package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/hetgc/hetgc/internal/linalg"
	"github.com/hetgc/hetgc/internal/partition"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Naive:                "naive",
		Cyclic:               "cyclic",
		FractionalRepetition: "frac-rep",
		HeterAware:           "heter-aware",
		GroupBased:           "group-based",
		Kind(99):             "Kind(99)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestNaiveDecode(t *testing.T) {
	st, err := NewNaive(4)
	if err != nil {
		t.Fatal(err)
	}
	coeffs, err := st.Decode(AliveFromStragglers(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.VecEqual(coeffs, []float64{1, 1, 1, 1}, 0) {
		t.Fatalf("coeffs = %v", coeffs)
	}
	if _, err := st.Decode(AliveFromStragglers(4, []int{2})); !errors.Is(err, ErrUndecodable) {
		t.Fatalf("err = %v, want ErrUndecodable", err)
	}
}

func TestNaiveProperties(t *testing.T) {
	st, _ := NewNaive(3)
	if st.Kind() != Naive || st.M() != 3 || st.K() != 3 || st.S() != 0 {
		t.Fatalf("unexpected shape: kind=%v m=%d k=%d s=%d", st.Kind(), st.M(), st.K(), st.S())
	}
	if st.MinAlive() != 3 {
		t.Fatalf("MinAlive = %d", st.MinAlive())
	}
}

func TestHeterAwarePaperExample(t *testing.T) {
	// Example 1: c = [1 2 3 4 4], k = 7, s = 1.
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.M() != 5 || st.K() != 7 || st.S() != 1 {
		t.Fatalf("shape: m=%d k=%d s=%d", st.M(), st.K(), st.S())
	}
	// Support must match the paper's supp(B5×7).
	wantSupport := [][]int{{0}, {1, 2}, {3, 4, 5}, {0, 1, 2, 6}, {3, 4, 5, 6}}
	b := st.B()
	for w := 0; w < 5; w++ {
		var got []int
		for j := 0; j < 7; j++ {
			if b.At(w, j) != 0 {
				got = append(got, j)
			}
		}
		if len(got) != len(wantSupport[w]) {
			t.Fatalf("worker %d support = %v, want %v", w, got, wantSupport[w])
		}
		for i := range got {
			if got[i] != wantSupport[w][i] {
				t.Fatalf("worker %d support = %v, want %v", w, got, wantSupport[w])
			}
		}
	}
	// Robust to any single straggler.
	if err := VerifyRobustness(st, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeterAwareDecodeEveryPattern(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(2))
	if err != nil {
		t.Fatal(err)
	}
	ones := linalg.OnesVec(7)
	for dead := 0; dead < 5; dead++ {
		coeffs, err := st.Decode(AliveFromStragglers(5, []int{dead}))
		if err != nil {
			t.Fatalf("straggler %d: %v", dead, err)
		}
		if coeffs[dead] != 0 {
			t.Fatalf("straggler %d got non-zero coefficient %v", dead, coeffs[dead])
		}
		row, err := st.B().VecMul(coeffs)
		if err != nil {
			t.Fatal(err)
		}
		if !linalg.VecEqual(row, ones, 1e-7) {
			t.Fatalf("aᵀB = %v, want all-ones", row)
		}
	}
}

func TestHeterAwareS2(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 1, 2, 2, 3, 3}, 8, 2, newRng(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRobustness(st, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeterAwareS0(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3}, 6, 0, newRng(4))
	if err != nil {
		t.Fatal(err)
	}
	coeffs, err := st.Decode(AliveFromStragglers(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	row, _ := st.B().VecMul(coeffs)
	if !linalg.VecEqual(row, linalg.OnesVec(6), 1e-7) {
		t.Fatalf("aᵀB = %v", row)
	}
}

func TestHeterAwareTooManyStragglers(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Decode(AliveFromStragglers(5, []int{0, 1})); !errors.Is(err, ErrUndecodable) {
		t.Fatalf("err = %v, want ErrUndecodable", err)
	}
}

func TestHeterAwareNilRng(t *testing.T) {
	if _, err := NewHeterAware([]float64{1, 1}, 2, 0, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}

func TestCyclicScheme(t *testing.T) {
	st, err := NewCyclic(5, 2, newRng(6))
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind() != Cyclic || st.K() != 5 {
		t.Fatalf("kind=%v k=%d", st.Kind(), st.K())
	}
	if err := VerifyRobustness(st, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Every worker has equal load s+1 = 3.
	for i, n := range st.Allocation().Loads {
		if n != 3 {
			t.Fatalf("worker %d load %d, want 3", i, n)
		}
	}
}

func TestFractionalRepetitionDecode(t *testing.T) {
	st, err := NewFractionalRepetition(6, 1) // 2 groups of 3 workers
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRobustness(st, 0, nil); err != nil {
		t.Fatal(err)
	}
	// Killing both replicas of one block is undecodable.
	if _, err := st.Decode(AliveFromStragglers(6, []int{0, 3})); !errors.Is(err, ErrUndecodable) {
		t.Fatalf("err = %v, want ErrUndecodable", err)
	}
	// Killing one replica of different blocks (within budget... this is 2 > s=1,
	// but block-wise decodable) still decodes via surviving replicas.
	coeffs, err := st.Decode(AliveFromStragglers(6, []int{0, 4}))
	if err != nil {
		t.Fatalf("cross-block stragglers should decode: %v", err)
	}
	row, _ := st.B().VecMul(coeffs)
	if !linalg.VecEqual(row, linalg.OnesVec(6), 1e-9) {
		t.Fatalf("aᵀB = %v", row)
	}
}

func TestFractionalRepetitionIndivisible(t *testing.T) {
	if _, err := NewFractionalRepetition(5, 1); err == nil {
		t.Fatal("expected error for (s+1) ∤ m")
	}
}

func TestGroupBasedPaperExample(t *testing.T) {
	// Example 1 allocation: groups {W3,W4} and {W1,W2,W5} tile the 7
	// partitions; indices 0-based: {2,3} and {0,1,4}.
	st, err := NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(7))
	if err != nil {
		t.Fatal(err)
	}
	groups := st.Groups()
	if len(groups) != 2 {
		t.Fatalf("groups = %v, want 2 disjoint groups", groups)
	}
	seen := map[int]bool{}
	for _, g := range groups {
		for _, w := range g {
			if seen[w] {
				t.Fatalf("groups overlap: %v", groups)
			}
			seen[w] = true
		}
	}
	if len(seen) != 5 {
		t.Fatalf("all 5 workers should be grouped, got %v", groups)
	}
	if err := VerifyRobustness(st, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBasedGroupRowsAreIndicators(t *testing.T) {
	st, err := NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(8))
	if err != nil {
		t.Fatal(err)
	}
	b := st.B()
	for _, g := range st.Groups() {
		for _, w := range g {
			for _, p := range st.Allocation().Parts[w] {
				if b.At(w, p) != 1 {
					t.Fatalf("group worker %d partition %d coeff = %v, want 1", w, p, b.At(w, p))
				}
			}
		}
	}
}

func TestGroupBasedDecodePrefersGroups(t *testing.T) {
	st, err := NewGroupBased([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(9))
	if err != nil {
		t.Fatal(err)
	}
	// All alive: decode must use a single group (0/1 coefficients).
	coeffs, err := st.Decode(AliveFromStragglers(5, nil))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range coeffs {
		if v != 0 && v != 1 {
			t.Fatalf("coeff[%d] = %v, want 0/1 indicator", i, v)
		}
	}
	row, _ := st.B().VecMul(coeffs)
	if !linalg.VecEqual(row, linalg.OnesVec(7), 1e-9) {
		t.Fatalf("aᵀB = %v", row)
	}
}

func TestGroupBasedWithEbarSubcode(t *testing.T) {
	// 7 workers, throughputs chosen so that not everyone fits in disjoint
	// groups; s = 2 gives room for an Ē sub-code.
	c := []float64{1, 1, 2, 2, 3, 3, 2}
	st, err := NewGroupBased(c, 7, 2, newRng(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRobustness(st, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGroupBasedManyShapes(t *testing.T) {
	shapes := []struct {
		c    []float64
		k, s int
	}{
		{[]float64{1, 1, 1, 1}, 4, 1},
		{[]float64{1, 2, 3, 4}, 10, 1},
		{[]float64{2, 2, 2, 2, 2, 2}, 6, 2},
		{[]float64{1, 2, 3, 4, 4, 5, 5, 4}, 14, 2},
		{[]float64{1, 1, 2, 2, 3, 3, 4, 4, 4, 4}, 16, 3},
	}
	for i, sh := range shapes {
		st, err := NewGroupBasedFromAllocationSeeded(t, sh.c, sh.k, sh.s, int64(100+i))
		if err != nil {
			t.Fatalf("shape %d: %v", i, err)
		}
		if err := VerifyRobustness(st, 0, nil); err != nil {
			t.Fatalf("shape %d (%v): %v", i, sh, err)
		}
	}
}

// NewGroupBasedFromAllocationSeeded is a test helper building the group
// scheme with a fixed seed.
func NewGroupBasedFromAllocationSeeded(t *testing.T, c []float64, k, s int, seed int64) (*Strategy, error) {
	t.Helper()
	return NewGroupBased(c, k, s, newRng(seed))
}

func TestFindGroupsPaperAllocation(t *testing.T) {
	alloc, err := partition.Proportional([]float64{1, 2, 3, 4, 4}, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	groups := FindGroups(alloc, 0)
	// Expect at least the two tilings {2,3} and {0,1,4}.
	want := map[string]bool{"2,3": false, "0,1,4": false}
	for _, g := range groups {
		key := intsKey(g)
		if _, ok := want[key]; ok {
			want[key] = true
		}
		// Check each found group is a valid exact cover.
		counts := make([]int, alloc.K)
		for _, w := range g {
			for _, p := range alloc.Parts[w] {
				counts[p]++
			}
		}
		for p, c := range counts {
			if c != 1 {
				t.Fatalf("group %v covers partition %d %d times", g, p, c)
			}
		}
	}
	for k, found := range want {
		if !found {
			t.Fatalf("expected group {%s} not found in %v", k, groups)
		}
	}
}

func intsKey(xs []int) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ","
		}
		out += string(rune('0' + x))
	}
	return out
}

func TestPruneGroupsDisjoint(t *testing.T) {
	groups := [][]int{{0, 1, 2}, {2, 3}, {1, 4}}
	pruned := PruneGroups(groups)
	for i := 0; i < len(pruned); i++ {
		for j := i + 1; j < len(pruned); j++ {
			if intersects(pruned[i], pruned[j]) {
				t.Fatalf("pruned groups overlap: %v", pruned)
			}
		}
	}
	// {0,1,2} intersects both others → removed; the two survivors remain.
	if len(pruned) != 2 {
		t.Fatalf("pruned = %v, want 2 groups", pruned)
	}
}

func TestPruneGroupsNoConflict(t *testing.T) {
	groups := [][]int{{0, 1}, {2, 3}}
	pruned := PruneGroups(groups)
	if len(pruned) != 2 {
		t.Fatalf("pruned = %v, want unchanged", pruned)
	}
}

func TestDecodeCacheConsistency(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(11))
	if err != nil {
		t.Fatal(err)
	}
	alive := AliveFromStragglers(5, []int{3})
	first, err := st.Decode(alive)
	if err != nil {
		t.Fatal(err)
	}
	second, err := st.Decode(alive)
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.VecEqual(first, second, 0) {
		t.Fatal("cached decode differs")
	}
	// The ownership contract: repeated decodes of the same pattern share one
	// canonical cached row (zero-copy hit path), so callers must copy before
	// mutating.
	if &first[0] != &second[0] {
		t.Fatal("cache hit should return the shared cached row")
	}
	mine := append([]float64(nil), second...)
	mine[0] = 1234
	third, _ := st.Decode(alive)
	if third[0] == 1234 {
		t.Fatal("copy-before-mutate leaked into the cache")
	}
}

func TestDecodeWrongLength(t *testing.T) {
	st, _ := NewNaive(3)
	if _, err := st.Decode([]bool{true}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("err = %v, want ErrBadInput", err)
	}
}

func TestDecodeConcurrent(t *testing.T) {
	st, err := NewHeterAware([]float64{1, 2, 3, 4, 4}, 7, 1, newRng(12))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error)
	for g := 0; g < 8; g++ {
		go func(g int) {
			alive := AliveFromStragglers(5, []int{g % 5})
			_, err := st.Decode(alive)
			done <- err
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestVerifyRobustnessSampled(t *testing.T) {
	st, err := NewHeterAware([]float64{3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13, 14, 14}, 60, 3, newRng(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRobustness(st, 40, newRng(14)); err != nil {
		t.Fatal(err)
	}
}

func TestAliveFromStragglers(t *testing.T) {
	alive := AliveFromStragglers(4, []int{1, 3, 9})
	want := []bool{true, false, true, false}
	for i := range want {
		if alive[i] != want[i] {
			t.Fatalf("alive = %v, want %v", alive, want)
		}
	}
}

func TestBinomialAtMost(t *testing.T) {
	if !binomialAtMost(10, 2, 45) {
		t.Fatal("C(10,2)=45 should be ≤ 45")
	}
	if binomialAtMost(10, 2, 44) {
		t.Fatal("C(10,2)=45 should exceed 44")
	}
	if !binomialAtMost(100, 0, 1) {
		t.Fatal("C(100,0)=1")
	}
}

// Property: heter-aware decoding recovers the exact gradient sum for random
// throughputs and straggler patterns.
func TestHeterAwareDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRng(seed)
		m := 4 + r.Intn(8)
		s := 1 + r.Intn(2)
		if s+1 > m {
			s = m - 1
		}
		k := m + r.Intn(2*m)
		c := make([]float64, m)
		for i := range c {
			c[i] = 1 + r.Float64()*6
		}
		st, err := NewHeterAware(c, k, s, r)
		if err != nil {
			return false
		}
		stragglers := samplePattern(m, s, r)
		coeffs, err := st.Decode(AliveFromStragglers(m, stragglers))
		if err != nil {
			return false
		}
		for _, w := range stragglers {
			if coeffs[w] != 0 {
				return false
			}
		}
		row, err := st.B().VecMul(coeffs)
		if err != nil {
			return false
		}
		return linalg.VecEqual(row, linalg.OnesVec(k), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: group-based decoding succeeds for any ≤ s stragglers.
func TestGroupBasedDecodeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := newRng(seed)
		m := 4 + r.Intn(6)
		s := 1 + r.Intn(2)
		if s+1 > m {
			s = m - 1
		}
		k := m + r.Intn(m)
		c := make([]float64, m)
		for i := range c {
			c[i] = 1 + float64(r.Intn(4))
		}
		st, err := NewGroupBased(c, k, s, r)
		if err != nil {
			return false
		}
		nDead := r.Intn(s + 1)
		stragglers := samplePattern(m, nDead, r)
		coeffs, err := st.Decode(AliveFromStragglers(m, stragglers))
		if err != nil {
			return false
		}
		row, err := st.B().VecMul(coeffs)
		if err != nil {
			return false
		}
		return linalg.VecEqual(row, linalg.OnesVec(k), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
