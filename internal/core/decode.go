package core

import (
	"fmt"
	"math"

	"github.com/hetgc/hetgc/internal/linalg"
)

// decodeNaive requires every worker; B = I so the coefficients are all ones.
func (st *Strategy) decodeNaive(alive []bool) ([]float64, error) {
	for i, a := range alive {
		if !a {
			return nil, fmt.Errorf("%w: naive scheme requires worker %d", ErrUndecodable, i)
		}
	}
	return linalg.OnesVec(st.M()), nil
}

// decodeFractional picks, for every replication block, one alive replica.
func (st *Strategy) decodeFractional(alive []bool) ([]float64, error) {
	coeffs := make([]float64, st.M())
	for j, replicas := range st.blocks {
		chosen := -1
		for _, w := range replicas {
			if alive[w] {
				chosen = w
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("%w: all replicas of block %d are stragglers", ErrUndecodable, j)
		}
		coeffs[chosen] = 1
	}
	return coeffs, nil
}

// decodeNullSpace is the paper's O(s³) decoding path for Alg. 1 codes
// (proof of Lemma 2): pick a straggler set S of size exactly s containing
// every dead worker, find λ ≠ 0 with λ·C_S = 0, and return a = λC / Σλ
// (zero on S by construction, and aᵀB = λ(CB)/Σλ = 1ᵀ).
func (st *Strategy) decodeNullSpace(alive []bool) ([]float64, error) {
	if st.c == nil {
		return nil, fmt.Errorf("%w: no auxiliary matrix", ErrUndecodable)
	}
	s := st.S()
	stragglers := make([]int, 0, s)
	for i, a := range alive {
		if !a {
			stragglers = append(stragglers, i)
		}
	}
	if len(stragglers) > s {
		return nil, fmt.Errorf("%w: %d stragglers exceed budget s=%d", ErrUndecodable, len(stragglers), s)
	}
	// Pad S with alive workers (their coefficients become zero; discarding a
	// surplus non-straggler is always safe).
	for i := 0; len(stragglers) < s; i++ {
		if alive[i] {
			stragglers = append(stragglers, i)
		}
	}
	return nullSpaceCoeffs(st.c, stragglers, st.M(), nil)
}

// nullSpaceCoeffs computes λC/Σλ for the straggler column set. When embed is
// non-nil, position p of the local result is written to global index
// embed[p] in a vector of length outLen; otherwise the result has length
// outLen directly.
func nullSpaceCoeffs(c *linalg.Matrix, stragglers []int, outLen int, embed []int) ([]float64, error) {
	var lambda []float64
	if len(stragglers) == 0 {
		// s = 0: any non-zero λ works; take e_1.
		lambda = make([]float64, c.Rows())
		lambda[0] = 1
	} else {
		cs := c.SelectCols(stragglers)
		var err error
		lambda, err = linalg.NullSpaceVector(cs)
		if err != nil {
			return nil, fmt.Errorf("%w: null-space computation: %v", ErrUndecodable, err)
		}
	}
	var sum float64
	for _, v := range lambda {
		sum += v
	}
	if math.Abs(sum) < 1e-12 {
		// Property P2 fails numerically for this pattern.
		return nil, fmt.Errorf("%w: Σλ ≈ 0 (property P2 violated numerically)", ErrUndecodable)
	}
	lc, err := c.VecMul(lambda)
	if err != nil {
		return nil, err
	}
	local := make([]float64, len(lc))
	for j, v := range lc {
		local[j] = v / sum
	}
	// Exact zeros on the straggler set (they are ~0 up to rounding already).
	for _, sIdx := range stragglers {
		local[sIdx] = 0
	}
	if embed == nil {
		if len(local) != outLen {
			return nil, fmt.Errorf("%w: coefficient length %d != %d", ErrBadInput, len(local), outLen)
		}
		return local, nil
	}
	out := make([]float64, outLen)
	for p, v := range local {
		out[embed[p]] = v
	}
	return out, nil
}

// decodeGroup is the group-based fast path: a fully-alive group decodes by
// plain summation (indicator coefficients, Eq. 8); otherwise every group is
// broken, which pins at least P stragglers inside group workers, so at most
// s−P stragglers remain in Ē and the Alg. 1 sub-code on Ē decodes alone
// (Theorem 6).
func (st *Strategy) decodeGroup(alive []bool) ([]float64, error) {
	for _, g := range st.groups {
		all := true
		for _, w := range g {
			if !alive[w] {
				all = false
				break
			}
		}
		if all {
			coeffs := make([]float64, st.M())
			for _, w := range g {
				coeffs[w] = 1
			}
			return coeffs, nil
		}
	}
	if st.subC == nil {
		return nil, fmt.Errorf("%w: no alive group and no Ē sub-code", ErrUndecodable)
	}
	// Stragglers within Ē, padded to exactly subS with alive Ē workers.
	stragglers := make([]int, 0, st.subS)
	for pos, w := range st.ebar {
		if !alive[w] {
			stragglers = append(stragglers, pos)
		}
	}
	if len(stragglers) > st.subS {
		return nil, fmt.Errorf("%w: %d Ē stragglers exceed sub-budget %d", ErrUndecodable, len(stragglers), st.subS)
	}
	for pos := range st.ebar {
		if len(stragglers) == st.subS {
			break
		}
		if alive[st.ebar[pos]] && !containsInt(stragglers, pos) {
			stragglers = append(stragglers, pos)
		}
	}
	return nullSpaceCoeffs(st.subC, stragglers, st.M(), st.ebar)
}

// decodeGeneric solves B_Iᵀ·x = 1 directly over the alive rows — the
// fallback for arbitrary alive sets (for example during simulation, when the
// master probes decodability after every arrival).
func (st *Strategy) decodeGeneric(alive []bool) ([]float64, error) {
	idx := make([]int, 0, st.M())
	for i, a := range alive {
		if a {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("%w: no alive workers", ErrUndecodable)
	}
	bi := st.b.SelectRows(idx)
	x, err := linalg.SolveConsistent(bi.T(), linalg.OnesVec(st.K()), 0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrUndecodable, err)
	}
	coeffs := make([]float64, st.M())
	for p, w := range idx {
		coeffs[w] = x[p]
	}
	return coeffs, nil
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
