package roster

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/dataplane"
	"github.com/hetgc/hetgc/internal/ml"
)

func TestDataPlaneSessionServesPartitions(t *testing.T) {
	d, err := ml.GaussianMixture(24, 5, 3, 2, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := d.Split(4)
	if err != nil {
		t.Fatal(err)
	}
	src := dataplane.NewSource(func(p int) (*ml.Dataset, error) { return parts[p], nil }, 4)
	eng, _ := newTestEngine(t, 4, 1, func(c *Config) {
		c.PartitionBlob = src.Blob
		c.PartitionChunkLen = 128 // force multi-chunk transfers
	})

	// A control-plane worker joins on the same listener the data plane uses.
	conn, id := dialJoin(t, eng.Addr(), 0)
	defer conn.Close()
	if id <= 0 {
		t.Fatalf("join assigned id %d", id)
	}

	c := dataplane.NewClient(eng.Addr(), 2*time.Second)
	defer c.Close()
	for _, p := range []int{3, 0, 3} {
		got, err := c.Fetch(p)
		if err != nil {
			t.Fatalf("fetch %d: %v", p, err)
		}
		if !reflect.DeepEqual(got, parts[p]) {
			t.Fatalf("partition %d mismatch", p)
		}
	}
	if _, err := c.Fetch(11); !errors.Is(err, dataplane.ErrNotServed) {
		t.Fatalf("out-of-range fetch err = %v, want ErrNotServed", err)
	}
	if got := eng.PartitionsServed(); got != 3 {
		t.Fatalf("PartitionsServed = %d, want 3", got)
	}
	// The data session never became a member.
	if eng.AliveCount() != 1 {
		t.Fatalf("alive members = %d, want 1", eng.AliveCount())
	}
}

func TestDataPlaneWithoutSourceRefuses(t *testing.T) {
	eng, _ := newTestEngine(t, 4, 1, nil)
	c := dataplane.NewClient(eng.Addr(), 2*time.Second)
	defer c.Close()
	if _, err := c.Fetch(0); !errors.Is(err, dataplane.ErrNotServed) {
		t.Fatalf("fetch err = %v, want ErrNotServed", err)
	}
}

func TestShutdownClosesDataSessions(t *testing.T) {
	eng, _ := newTestEngine(t, 4, 1, func(c *Config) {
		c.PartitionBlob = func(int) ([]byte, error) { return nil, errors.New("none") }
	})
	c := dataplane.NewClient(eng.Addr(), 2*time.Second)
	defer c.Close()
	if _, err := c.Fetch(0); !errors.Is(err, dataplane.ErrNotServed) {
		t.Fatalf("fetch err = %v", err)
	}
	done := make(chan struct{})
	go func() {
		eng.Shutdown(false)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown hung on a live data-plane session")
	}
}
