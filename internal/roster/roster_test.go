package roster

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/transport"
)

// newTestEngine builds an engine over a loopback listener with a k=4, s=1
// controller; mutate customises the config before construction.
func newTestEngine(t *testing.T, ctrlK, s int, mutate func(*Config)) (*Engine, *elastic.Controller) {
	t.Helper()
	ctrl, err := elastic.NewController(elastic.Config{K: ctrlK, S: s}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Controller: ctrl, WriteTimeout: time.Second, InboxSize: 256, K: ctrlK, S: s}
	if mutate != nil {
		mutate(&cfg)
	}
	eng, err := New(cfg, lis)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Shutdown(false) })
	return eng, ctrl
}

// dialJoin performs the worker side of the join handshake and returns the
// connection and the assigned member ID. resume 0 requests a fresh slot.
func dialJoin(t *testing.T, addr string, resume int) (*transport.Conn, int) {
	t.Helper()
	conn, err := transport.Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	helloID := transport.HelloNewWorker
	if resume > 0 {
		helloID = resume
	}
	if err := conn.Send(&transport.Envelope{Type: transport.MsgHello, WorkerID: helloID}); err != nil {
		t.Fatal(err)
	}
	ack, err := conn.Recv()
	if err != nil || ack.Type != transport.MsgHello {
		t.Fatalf("handshake ack: env=%v err=%v", ack, err)
	}
	return conn, ack.WorkerID
}

func TestConfigValidation(t *testing.T) {
	ctrl, err := elastic.NewController(elastic.Config{K: 4, S: 1}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	good := Config{Controller: ctrl, WriteTimeout: time.Second, K: 4, S: 1}
	bad := []struct {
		name   string
		mutate func(*Config)
		lis    *transport.Listener
	}{
		{"no controller", func(c *Config) { c.Controller = nil }, lis},
		{"no write timeout", func(c *Config) { c.WriteTimeout = 0 }, lis},
		{"bad k", func(c *Config) { c.K = 0 }, lis},
		{"bad s", func(c *Config) { c.S = -1 }, lis},
		{"no listener", nil, nil},
	}
	for _, tc := range bad {
		cfg := good
		if tc.mutate != nil {
			tc.mutate(&cfg)
		}
		if _, err := New(cfg, tc.lis); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v, want ErrBadConfig", tc.name, err)
		}
	}
}

func TestJoinAssignsStableIDs(t *testing.T) {
	eng, _ := newTestEngine(t, 4, 1, nil)
	_, id1 := dialJoin(t, eng.Addr(), 0)
	_, id2 := dialJoin(t, eng.Addr(), 0)
	if id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d, %d; want 1, 2", id1, id2)
	}
	if n := eng.AliveCount(); n != 2 {
		t.Fatalf("alive = %d, want 2", n)
	}
	if j := eng.Joins(); j != 2 {
		t.Fatalf("joins = %d, want 2", j)
	}
}

// TestRejoinResumesIdentity pins the rejoin path: a dead member's ID is
// resumed on a fresh connection generation, and the join/death bookkeeping
// counts both events.
func TestRejoinResumesIdentity(t *testing.T) {
	eng, _ := newTestEngine(t, 4, 1, nil)
	conn, id := dialJoin(t, eng.Addr(), 0)
	_ = conn.Close()
	// The engine learns of the death when something processes the reader's
	// report; tests stand in for the control loop by noting it directly.
	eng.noteDeath(id, 0)
	if d := eng.Deaths(); d != 1 {
		t.Fatalf("deaths = %d, want 1", d)
	}
	_, got := dialJoin(t, eng.Addr(), id)
	if got != id {
		t.Fatalf("rejoin resumed member %d, want old identity %d", got, id)
	}
	eng.mu.Lock()
	m := eng.members[id]
	alive, gen := m.alive, m.gen
	eng.mu.Unlock()
	if !alive || gen != 1 {
		t.Fatalf("after rejoin: alive=%v gen=%d, want alive gen 1", alive, gen)
	}
	if j := eng.Joins(); j != 2 {
		t.Fatalf("joins = %d, want 2 (initial + rejoin)", j)
	}
	// Rejoining an identity that is still alive must NOT steal it: the
	// dialer gets a fresh slot instead.
	_, fresh := dialJoin(t, eng.Addr(), id)
	if fresh == id {
		t.Fatalf("hello for a live identity %d was allowed to take it over", id)
	}
}

// TestStaleGenerationCannotEvictRaceHammer is the generation-fencing
// hammer: across many kill/rejoin rounds, packs of concurrent stale death
// reports (every superseded generation, repeatedly) race the rejoin
// handshake — and must never evict the new generation or inflate the death
// count. Run under -race in CI.
func TestStaleGenerationCannotEvictRaceHammer(t *testing.T) {
	eng, _ := newTestEngine(t, 4, 1, nil)
	_, id := dialJoin(t, eng.Addr(), 0)
	const rounds = 40
	for round := 1; round <= rounds; round++ {
		// Kill the current generation legitimately…
		eng.noteDeath(id, round-1)
		// …then hammer every stale generation from concurrent readers while
		// the member rejoins.
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := -1; i < round; i++ {
					eng.noteDeath(id, i-1)
				}
			}()
		}
		_, got := dialJoin(t, eng.Addr(), id)
		wg.Wait()
		if got != id {
			t.Fatalf("round %d: rejoin got id %d, want %d", round, got, id)
		}
		eng.mu.Lock()
		m := eng.members[id]
		alive, gen := m.alive, m.gen
		eng.mu.Unlock()
		if !alive || gen != round {
			t.Fatalf("round %d: alive=%v gen=%d — a stale reader evicted the new generation", round, alive, gen)
		}
	}
	if d := eng.Deaths(); d != rounds {
		t.Fatalf("deaths = %d, want exactly %d (stale reports must not count)", eng.Deaths(), rounds)
	}
	if n := eng.AliveCount(); n != 1 {
		t.Fatalf("alive = %d, want 1", n)
	}
}

// TestPriorHookSeedsController pins the unified prior policy: the Prior
// hook (the sharded runtime's planned-throughput lookup) feeds the
// controller's initial estimate per join sequence, and without a hook the
// controller picks its own prior.
func TestPriorHookSeedsController(t *testing.T) {
	priors := []float64{42, 7}
	eng, ctrl := newTestEngine(t, 4, 1, func(c *Config) {
		c.Prior = func(joinSeq int) float64 {
			if joinSeq < len(priors) {
				return priors[joinSeq]
			}
			return 0
		}
	})
	_, id1 := dialJoin(t, eng.Addr(), 0)
	_, id2 := dialJoin(t, eng.Addr(), 0)
	// The ack races the controller registration (bookkeeping lands after
	// the ack is sent); synchronise through the engine lock before touching
	// the controller directly.
	if err := eng.WaitForMembers(2, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	r1, err := ctrl.Rate(id1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ctrl.Rate(id2)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 42 || r2 != 7 {
		t.Fatalf("controller priors = %v, %v; want 42, 7", r1, r2)
	}
}

func TestWaitForMembersQuorum(t *testing.T) {
	eng, _ := newTestEngine(t, 4, 1, nil)
	err := eng.WaitForMembers(2, 50*time.Millisecond)
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
	_, _ = dialJoin(t, eng.Addr(), 0)
	_, _ = dialJoin(t, eng.Addr(), 0)
	if err := eng.WaitForMembers(2, 2*time.Second); err != nil {
		t.Fatalf("quorum reached but WaitForMembers failed: %v", err)
	}
}

// TestMigrateDeliversEpochTaggedAssignments checks the migration broadcast
// end to end: every plan member receives a MsgReassign carrying the plan
// epoch, the advertised global K/S, and partition IDs translated through
// the engine's PartitionMap (the sharded local→global path).
func TestMigrateDeliversEpochTaggedAssignments(t *testing.T) {
	pmap := []int{10, 11, 12, 13}
	eng, _ := newTestEngine(t, 4, 1, func(c *Config) {
		c.K = 20
		c.PartitionMap = pmap
	})
	conn1, _ := dialJoin(t, eng.Addr(), 0)
	conn2, _ := dialJoin(t, eng.Addr(), 0)

	for epoch := 0; epoch < 2; epoch++ {
		if epoch == 1 {
			// A join+death churns the membership → the replan bumps the
			// epoch (the phantom member is dead, so no plan includes it).
			eng.cfg.Controller.AddMember(99, 1)
			eng.cfg.Controller.RemoveMember(99)
		}
		plan, err := eng.Migrate(epoch, "test")
		if err != nil {
			t.Fatal(err)
		}
		if plan.Epoch != epoch {
			t.Fatalf("plan epoch = %d, want %d", plan.Epoch, epoch)
		}
		for _, conn := range []*transport.Conn{conn1, conn2} {
			env, err := conn.Recv()
			if err != nil || env.Type != transport.MsgReassign {
				t.Fatalf("expected reassign, got %v (err %v)", env, err)
			}
			if env.Epoch != epoch {
				t.Fatalf("reassign epoch = %d, want %d", env.Epoch, epoch)
			}
			if env.Assign.K != 20 || env.Assign.S != 1 {
				t.Fatalf("assignment advertises k=%d s=%d, want 20, 1", env.Assign.K, env.Assign.S)
			}
			if len(env.Assign.Partitions) != len(env.Assign.RowCoeffs) {
				t.Fatalf("assignment has %d partitions but %d coefficients", len(env.Assign.Partitions), len(env.Assign.RowCoeffs))
			}
			for _, p := range env.Assign.Partitions {
				if p < 10 || p > 13 {
					t.Fatalf("partition %d not translated through the map %v", p, pmap)
				}
			}
		}
	}
}

// TestCollectFencing pins the unified fencing order of the shared collect
// loop: stale epochs are rejected first, then malformed shapes — before
// the iteration fence, so a truncated frame straggling in late is counted
// malformed, not as a mere straggler (the two pre-roster runtimes raced
// here).
func TestCollectFencing(t *testing.T) {
	eng, _ := newTestEngine(t, 2, 1, nil)
	conn1, _ := dialJoin(t, eng.Addr(), 0)
	conn2, _ := dialJoin(t, eng.Addr(), 0)
	plan, err := eng.Migrate(0, "initial")
	if err != nil {
		t.Fatal(err)
	}
	drainReassign := func(conn *transport.Conn) {
		if env, err := conn.Recv(); err != nil || env.Type != transport.MsgReassign {
			t.Fatalf("expected reassign, got %v (err %v)", env, err)
		}
	}
	drainReassign(conn1)
	drainReassign(conn2)

	const dim = 4
	send := func(conn *transport.Conn, iter, epoch int, vec []float64) {
		t.Helper()
		if err := conn.Send(&transport.Envelope{Type: transport.MsgGradient, Iter: iter, Epoch: epoch, Vector: vec}); err != nil {
			t.Fatal(err)
		}
	}
	// Stale epoch, wrong-shape straggler, telemetry, then a decodable
	// current-epoch upload.
	send(conn1, 0, 99, []float64{1, 2, 3, 4})
	send(conn1, 5, 0, []float64{1, 2}) // truncated AND from the wrong iteration
	if err := conn1.Send(&transport.Envelope{Type: transport.MsgTelemetry, Telemetry: &transport.Telemetry{ComputeSeconds: 0.01, Partitions: 1}}); err != nil {
		t.Fatal(err)
	}
	send(conn1, 0, 0, []float64{1, 2, 3, 4})

	var st Stats
	coeffs, coded, ok := eng.Collect(plan, 0, dim, 5*time.Second, &st)
	if !ok {
		t.Fatalf("collect failed to decode; stats %+v", st)
	}
	if len(coeffs) == 0 || len(coded) != plan.Strategy.M() {
		t.Fatalf("collect returned coeffs=%v coded=%d", coeffs, len(coded))
	}
	if st.StaleEpochRejected != 1 {
		t.Errorf("stale rejected = %d, want 1", st.StaleEpochRejected)
	}
	if st.MalformedSkipped != 1 {
		t.Errorf("malformed = %d, want 1 (mis-sized frames are malformed regardless of iteration)", st.MalformedSkipped)
	}
	if st.StragglersSkipped != 0 {
		t.Errorf("stragglers = %d, want 0", st.StragglersSkipped)
	}
	if st.TelemetrySamples != 1 {
		t.Errorf("telemetry = %d, want 1", st.TelemetrySamples)
	}
}

// TestCollectFencesStaleGeneration pins the frame-level generation fence:
// a gradient that was already queued in the inbox when its member rejoined
// (so it carries a superseded connection generation) must be rejected, not
// credited to the live connection's slot — even when it is byte-for-byte a
// plausible current-epoch upload.
func TestCollectFencesStaleGeneration(t *testing.T) {
	eng, _ := newTestEngine(t, 2, 1, nil)
	conn1, id1 := dialJoin(t, eng.Addr(), 0)
	conn2, _ := dialJoin(t, eng.Addr(), 0)
	_ = conn1.Close()
	eng.noteDeath(id1, 0)
	conn1b, _ := dialJoin(t, eng.Addr(), id1) // rejoin: gen 1
	plan, err := eng.Migrate(0, "initial")
	if err != nil {
		t.Fatal(err)
	}
	for _, conn := range []*transport.Conn{conn1b, conn2} {
		if env, err := conn.Recv(); err != nil || env.Type != transport.MsgReassign {
			t.Fatalf("expected reassign, got %v (err %v)", env, err)
		}
	}
	const dim = 4
	// A poisoned upload from the superseded generation, injected as the old
	// readLoop would have queued it, racing the rejoin.
	eng.inbox <- msg{memberID: id1, gen: 0, env: &transport.Envelope{
		Type: transport.MsgGradient, Iter: 0, Epoch: 0, Vector: []float64{9e9, 9e9, 9e9, 9e9},
	}}
	eng.inbox <- msg{memberID: id1, gen: 0, malformed: true} // stale malformed marker
	// Honest current-generation uploads from both live connections.
	for _, conn := range []*transport.Conn{conn1b, conn2} {
		if err := conn.Send(&transport.Envelope{Type: transport.MsgGradient, Iter: 0, Epoch: 0, Vector: []float64{1, 1, 1, 1}}); err != nil {
			t.Fatal(err)
		}
	}
	var st Stats
	_, coded, ok := eng.Collect(plan, 0, dim, 5*time.Second, &st)
	if !ok {
		t.Fatalf("collect failed; stats %+v", st)
	}
	if st.StaleConnRejected != 1 {
		t.Errorf("stale-generation frames rejected = %d, want 1", st.StaleConnRejected)
	}
	if st.MalformedSkipped != 0 {
		t.Errorf("malformed = %d, want 0 (the marker came from a superseded connection)", st.MalformedSkipped)
	}
	for slot, g := range coded {
		if g == nil {
			continue
		}
		for _, v := range g {
			if v > 1e6 {
				t.Fatalf("slot %d holds the stale-generation payload %v", slot, g)
			}
		}
	}
}

// TestHandshakeRejectsMalformedHello: peers that open with anything but a
// well-formed hello are dropped without ever becoming members.
func TestHandshakeRejectsMalformedHello(t *testing.T) {
	eng, _ := newTestEngine(t, 4, 1, nil)
	bad := []*transport.Envelope{
		{Type: transport.MsgParams, Vector: []float64{1}},
		{Type: transport.MsgHello, WorkerID: 0},
		{Type: transport.MsgHello, WorkerID: -2},
		{Type: transport.MsgHello, WorkerID: transport.HelloNewWorker, Vector: []float64{1}},
		{Type: transport.MsgHello, WorkerID: 3, Epoch: 2},
	}
	for i, env := range bad {
		conn, err := transport.Dial(eng.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := conn.Send(env); err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Recv(); err == nil {
			t.Errorf("case %d: malformed hello %+v was acked", i, env)
		}
		_ = conn.Close()
	}
	if j := eng.Joins(); j != 0 {
		t.Fatalf("joins = %d after malformed hellos, want 0", j)
	}
	if n := eng.AliveCount(); n != 0 {
		t.Fatalf("alive = %d after malformed hellos, want 0", n)
	}
}
