// Fuzz coverage for the join/rejoin handshake decode path: whatever bytes a
// peer opens the connection with — truncated frames, duplicated frames,
// valid frames of the wrong type, garbage — ReadHello must either return a
// well-formed hello or an error wrapping transport.ErrMalformed. It must
// never panic, and a successful read must never hand the engine an invalid
// identity (the desync that would corrupt the roster).
//
// CI runs a short -fuzz smoke over this target (make fuzz-smoke); the seed
// corpus alone also runs as a regular test.
package roster_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/roster"
	"github.com/hetgc/hetgc/internal/transport"
)

// memConn is a read-only net.Conn over a byte slice: the fuzzer's stand-in
// for a peer that wrote data and went away. Writes vanish, deadlines are
// no-ops.
type memConn struct{ r *bytes.Reader }

func (c memConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c memConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c memConn) Close() error                     { return nil }
func (c memConn) LocalAddr() net.Addr              { return memAddr{} }
func (c memConn) RemoteAddr() net.Addr             { return memAddr{} }
func (c memConn) SetDeadline(time.Time) error      { return nil }
func (c memConn) SetReadDeadline(time.Time) error  { return nil }
func (c memConn) SetWriteDeadline(time.Time) error { return nil }

type memAddr struct{}

func (memAddr) Network() string { return "mem" }
func (memAddr) String() string  { return "mem" }

// encodeFrames gob-encodes envelopes back to back on one stream, exactly as
// a transport.Conn sender would.
func encodeFrames(envs ...*transport.Envelope) []byte {
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, env := range envs {
		if err := enc.Encode(env); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

func FuzzReadHello(f *testing.F) {
	valid := encodeFrames(&transport.Envelope{Type: transport.MsgHello, WorkerID: transport.HelloNewWorker})
	resume := encodeFrames(&transport.Envelope{Type: transport.MsgHello, WorkerID: 7})
	f.Add(valid)
	f.Add(resume)
	// Truncated frame: the sender died mid-write.
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:1])
	// Duplicated frame bytes: the stream replays its own prefix, including
	// the gob type definitions a second time.
	f.Add(append(append([]byte{}, valid...), valid...))
	// Two well-formed hellos on one stream (a legitimate double hello).
	f.Add(encodeFrames(
		&transport.Envelope{Type: transport.MsgHello, WorkerID: transport.HelloNewWorker},
		&transport.Envelope{Type: transport.MsgHello, WorkerID: 3},
	))
	// Well-formed frames of the wrong type or shape.
	f.Add(encodeFrames(&transport.Envelope{Type: transport.MsgParams, Vector: []float64{1, 2}}))
	f.Add(encodeFrames(&transport.Envelope{Type: transport.MsgHello, WorkerID: 0}))
	f.Add(encodeFrames(&transport.Envelope{Type: transport.MsgHello, WorkerID: 4, Epoch: 9}))
	f.Add([]byte{})
	f.Add([]byte("not gob at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip("oversized input")
		}
		conn := transport.NewConn(memConn{r: bytes.NewReader(data)})
		// Read a few hellos off the same stream: a malformed second frame
		// must fail typed, not desync into a bogus success.
		for i := 0; i < 4; i++ {
			env, err := roster.ReadHello(conn)
			if err != nil {
				if !errors.Is(err, transport.ErrMalformed) {
					t.Fatalf("handshake error not typed ErrMalformed: %v", err)
				}
				return
			}
			if env.Type != transport.MsgHello {
				t.Fatalf("ReadHello accepted a %v frame", env.Type)
			}
			if env.WorkerID < transport.HelloNewWorker || env.WorkerID == 0 {
				t.Fatalf("ReadHello accepted invalid member id %d", env.WorkerID)
			}
			if env.Assign != nil || env.Telemetry != nil || len(env.Vector) != 0 || len(env.Batch) != 0 {
				t.Fatalf("ReadHello accepted a hello with payload: %+v", env)
			}
		}
	})
}
