// Package roster is the shared membership engine behind every elastic
// master in the system. The flat runtime (runtime.ElasticMaster) and the
// sharded per-group masters (shard.groupMaster) run the same
// estimate → allocate → re-code loop over live TCP workers, and before this
// package existed each carried its own copy of the accept loop, the
// join/rejoin handshake, connection-generation fencing, the epoch-tagged
// migration broadcast and the death/timeout bookkeeping — so every fencing
// fix had to land twice. The Engine owns that skeleton once:
//
//   - Accept loop: workers may connect for the whole lifetime of a run.
//   - Join/rejoin handshake: a hello with WorkerID -1 gets a fresh stable
//     member ID; a hello naming a dead member's ID resumes that identity
//     (and its warm throughput estimate in the controller) on a new
//     connection generation.
//   - Generation fencing: every connection carries the member's generation
//     at registration time; frames and death reports from a superseded
//     connection are fenced out, so a stale reader can never evict a
//     healthy rejoined member.
//   - Migration: Migrate replans via the elastic controller and delivers
//     (epoch, assignment) to every plan member, translating local partition
//     indices to global IDs when the engine manages one shard of a larger
//     key space.
//   - Collection: Collect runs one epoch-fenced gather — stale-epoch
//     uploads are rejected before they can reach decode, malformed frames
//     are counted and skipped without killing the connection, and deaths
//     that make the epoch undecodable abort the attempt so the caller can
//     migrate and retry.
//
// The engine is deliberately policy-free: what to do when an epoch stalls
// (retry budgets, error sentinels, result bookkeeping) stays with the
// runtime that embeds it.
package roster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/dataplane"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/transport"
)

// Errors returned by the roster engine.
var (
	// ErrBadConfig marks invalid engine configurations.
	ErrBadConfig = errors.New("roster: invalid config")
	// ErrQuorum is returned by WaitForMembers when the quorum was not
	// reached before the timeout.
	ErrQuorum = errors.New("roster: quorum not reached")
	// ErrMigrationFailed is returned by Migrate when no stable membership
	// can be reassigned — planning became infeasible or every replan lost
	// another member mid-broadcast.
	ErrMigrationFailed = errors.New("roster: migration failed")
)

// Config parameterises an Engine.
type Config struct {
	// Controller is the elastic control plane the engine feeds: joins and
	// deaths update its membership, telemetry its estimates, Migrate its
	// plan. The engine serialises all controller access under its own lock.
	Controller *elastic.Controller
	// WriteTimeout bounds every per-member send, so a stalled (but not
	// disconnected) worker fails the send — and is handled as dead —
	// instead of blocking the control loop forever on a full socket buffer.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the hello/ack exchange (default 10s).
	HandshakeTimeout time.Duration
	// InboxSize is the capacity of the shared frame inbox (default 64).
	InboxSize int
	// Prior, when non-nil, supplies the controller prior (partitions/second)
	// for the n-th successful join of the run (rejoins included, matching
	// the join-order semantics of the sharded planner). Zero or a nil hook
	// lets the controller pick its own prior.
	Prior func(joinSeq int) float64
	// K and S are advertised in every assignment (the global partition
	// count and straggler budget the workers see).
	K, S int
	// PartitionMap translates the controller's local partition indices to
	// the global partition IDs carried in assignments; nil means the engine
	// manages the whole key space (identity mapping).
	PartitionMap []int
	// Recovered pre-registers member IDs restored from a checkpoint. They
	// start dead with no connection; a worker that dials in with one of
	// these IDs as its ResumeID resumes that identity through the ordinary
	// rejoin handshake. Fresh joins are numbered above every recovered ID.
	Recovered []int
	// Recorder, when non-nil, is notified after every durable membership
	// and plan event: a successful join (ack delivered), a death, a fully
	// delivered migration. It is invoked outside the engine lock and must
	// be safe for concurrent use (the checkpoint store's GroupRecorder is).
	Recorder Recorder
	// RootGen is the master's lease generation (the HA fencing token).
	// When positive, it is stamped on every parameter broadcast and migrate
	// reassign, workers echo it on their uploads, and Collect rejects
	// uploads carrying any other generation — so gradients encoded under a
	// deposed root can never decode into the new root's model. Zero
	// disables root-generation fencing (legacy single-root operation).
	RootGen int
	// PartitionBlob, when non-nil, enables the engine's data plane: a
	// connection whose FIRST frame is MsgPartitionReq never joins the
	// membership — it becomes a dedicated data-plane session answering
	// partition requests with PartitionBlob's encoded shards (see
	// internal/dataplane) until the peer hangs up. With a nil hook the
	// session protocol still works but every request gets the not-served
	// marker, so a misconfigured worker fails loudly instead of hanging.
	PartitionBlob func(p int) ([]byte, error)
	// PartitionChunkLen is the wire chunk size for partition blobs
	// (0 selects dataplane.DefaultChunkLen).
	PartitionChunkLen int
	// Codec is the master's preferred gradient upload codec (a grad.Codec
	// byte). A worker that advertises it in its hello is told to use it in
	// the handshake ack; workers that advertise nothing — peers from before
	// codec negotiation — or don't support it fall back to raw float64, so
	// mixed-version rosters interoperate. 0 (CodecRaw) disables
	// quantization.
	Codec byte
	// Obs, when non-nil, receives live telemetry: member counts,
	// join/death/rejoin events, fencing rejections mirroring Stats
	// field-for-field, per-member throughput estimates and replan events.
	// Nil disables instrumentation at the cost of one branch per event.
	Obs *obs.Metrics
	// ObsGroup is the group label stamped on this engine's metrics and
	// events (0 for the flat runtime; the coding-group index under a
	// sharded root).
	ObsGroup int
}

// Recorder receives the engine's durable events for write-ahead journaling.
type Recorder interface {
	// RecordJoin reports a successful join; rejoin marks a resumed identity.
	RecordJoin(id int, rejoin bool)
	// RecordDeath reports a member death.
	RecordDeath(id int)
	// RecordPlan reports a fully delivered migration.
	RecordPlan(iter, epoch int, members []int)
}

// member is one stable identity in the roster.
type member struct {
	id    int
	conn  *transport.Conn
	alive bool
	// gen counts reconnects: messages and death reports from a superseded
	// connection carry an older gen and are fenced out, so a stale reader
	// can never kill a healthy rejoined member.
	gen int
}

// msg is one inbox entry: a frame, a transport-level malformed marker, or a
// connection death, all tagged with the originating member and generation.
type msg struct {
	memberID  int
	gen       int
	env       *transport.Envelope
	err       error
	malformed bool
}

// Stats counts the fencing decisions of Collect. Callers accumulate one
// Stats across a run and surface the counters in their results.
type Stats struct {
	// StaleEpochRejected counts gradient uploads rejected because they were
	// encoded under a superseded plan epoch — fenced before decode.
	StaleEpochRejected int
	// StaleConnRejected counts frames rejected because they arrived from a
	// superseded connection generation — the member rejoined while they
	// were in flight.
	StaleConnRejected int
	// StragglersSkipped counts current-epoch uploads that arrived after
	// their iteration had already decoded (or from members outside the
	// plan).
	StragglersSkipped int
	// MalformedSkipped counts uploads rejected before decode (wrong length,
	// NaN/Inf, transport validation failures).
	MalformedSkipped int
	// FencedRejected counts uploads rejected by the root-generation fence —
	// frames tagged with (or encoded under) a deposed root's lease
	// generation.
	FencedRejected int
	// TelemetrySamples counts telemetry reports ingested by the controller.
	TelemetrySamples int
}

// Engine owns membership, fencing and migration for one elastic master.
type Engine struct {
	cfg Config
	lis *transport.Listener

	inbox chan msg

	mu      sync.Mutex
	members map[int]*member
	nextID  int
	joins   int
	deaths  int
	joinSeq int

	// Data-plane sessions (connections that never joined the membership).
	dataConns   map[*transport.Conn]struct{}
	partsServed int

	joined    chan struct{} // signalled on every successful join
	stop      chan struct{}
	readers   sync.WaitGroup
	accept    sync.WaitGroup // accept loop + in-flight handshakes
	closeOnce sync.Once

	// Double-buffered collect slabs: Collect hands out the two buffers
	// alternately, so the caller may keep using iteration k's coded uploads
	// (decode, combine) while iteration k+1's Collect fills the other slab —
	// the master half of the encode/decode pipeline overlap. Touched only by
	// the run-loop goroutine that calls Collect.
	collectBufs [2][]grad.Gradient
	collectFlip int

	// Stitched member child spans for the current iteration, accumulated by
	// Collect across migrate-and-retry attempts and drained by TakeContribs.
	// contribStart anchors arrival latency at the iteration's FIRST parameter
	// broadcast (a retry re-broadcast keeps the anchor — the member's real
	// wait includes the failed attempt). Touched only by the run-loop
	// goroutine, like collectBufs.
	contribs     []obs.MemberSpan
	contribIter  int
	contribStart time.Time
}

// New validates the config and starts the accept loop on lis. The engine
// takes ownership of the listener; Shutdown closes it.
func New(cfg Config, lis *transport.Listener) (*Engine, error) {
	if cfg.Controller == nil {
		return nil, fmt.Errorf("%w: controller required", ErrBadConfig)
	}
	if lis == nil {
		return nil, fmt.Errorf("%w: listener required", ErrBadConfig)
	}
	if cfg.WriteTimeout <= 0 {
		return nil, fmt.Errorf("%w: write timeout required", ErrBadConfig)
	}
	if cfg.K <= 0 || cfg.S < 0 {
		return nil, fmt.Errorf("%w: k=%d s=%d", ErrBadConfig, cfg.K, cfg.S)
	}
	if !grad.Codec(cfg.Codec).Valid() {
		return nil, fmt.Errorf("%w: unknown gradient codec %d", ErrBadConfig, cfg.Codec)
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = 10 * time.Second
	}
	if cfg.InboxSize <= 0 {
		cfg.InboxSize = 64
	}
	e := &Engine{
		cfg:       cfg,
		lis:       lis,
		inbox:     make(chan msg, cfg.InboxSize),
		members:   make(map[int]*member),
		nextID:    1, // IDs start at 1 so a zero ResumeID means "new worker"
		dataConns: make(map[*transport.Conn]struct{}),
		joined:    make(chan struct{}, 1),
		stop:      make(chan struct{}),

		contribIter: -1,
	}
	for _, id := range cfg.Recovered {
		if id <= 0 {
			return nil, fmt.Errorf("%w: recovered member id %d", ErrBadConfig, id)
		}
		// Reserved, dead, connection-less: a ResumeID hello revives it; a
		// fresh join can never collide with it.
		e.members[id] = &member{id: id}
		if id >= e.nextID {
			e.nextID = id + 1
		}
	}
	e.accept.Add(1)
	go e.acceptLoop()
	return e, nil
}

// Addr returns the address workers should dial.
func (e *Engine) Addr() string { return e.lis.Addr() }

// ReadHello reads and validates the join handshake frame. Every failure —
// a broken or truncated gob stream, a duplicated type definition, a frame
// of the wrong type, or a hello carrying payloads a hello must not carry —
// is reported as an error wrapping transport.ErrMalformed, so handshake
// code (and its fuzzers) can assert on one typed error for the whole
// decode path.
func ReadHello(conn *transport.Conn) (*transport.Envelope, error) {
	env, err := conn.Recv()
	if err != nil {
		if errors.Is(err, transport.ErrMalformed) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: handshake: %v", transport.ErrMalformed, err)
	}
	if err := validateHello(env); err != nil {
		return nil, err
	}
	return env, nil
}

// validateHello enforces the handshake frame shape on top of the
// transport-level envelope invariants: a hello is exactly a type and a
// member ID (HelloNewWorker or a positive resume ID) — anything else on the
// frame means the peer is not speaking the join protocol.
func validateHello(env *transport.Envelope) error {
	if env.Type != transport.MsgHello {
		return fmt.Errorf("%w: handshake expected hello, got %v", transport.ErrMalformed, env.Type)
	}
	if env.WorkerID < transport.HelloNewWorker || env.WorkerID == 0 {
		return fmt.Errorf("%w: hello with member id %d", transport.ErrMalformed, env.WorkerID)
	}
	if env.Iter != 0 || env.Epoch != 0 || env.Chunks != 0 {
		return fmt.Errorf("%w: hello with iter=%d epoch=%d chunks=%d", transport.ErrMalformed, env.Iter, env.Epoch, env.Chunks)
	}
	if env.Assign != nil || env.Telemetry != nil || len(env.Vector) != 0 || len(env.Batch) != 0 {
		return fmt.Errorf("%w: hello carries payload", transport.ErrMalformed)
	}
	return nil
}

// NegotiateCodec picks the gradient codec for one connection: the master's
// preference when the peer's handshake advertised it, CodecRaw otherwise.
// Raw needs no advertisement — every peer accepts it.
func NegotiateCodec(preferred byte, advertised []byte) byte {
	if preferred == 0 || !grad.Codec(preferred).Valid() {
		return 0
	}
	for _, c := range advertised {
		if c == preferred {
			return preferred
		}
	}
	return 0
}

// acceptLoop admits workers for the lifetime of the run.
func (e *Engine) acceptLoop() {
	defer e.accept.Done()
	for {
		conn, err := e.lis.Accept()
		if err != nil {
			return // listener closed: run over
		}
		e.accept.Add(1)
		go func() {
			defer e.accept.Done()
			e.handshake(conn)
		}()
	}
}

// handshake reads the first frame and routes the connection: a hello enters
// the membership handshake (fresh join or rejoin, registered with the control
// plane); a partition request makes this a data-plane session for its whole
// lifetime. The registration and the hello ack happen under the roster lock,
// serialising the ack with Shutdown's sweep — the connection never has two
// concurrent writers.
func (e *Engine) handshake(conn *transport.Conn) {
	_ = conn.SetDeadline(time.Now().Add(e.cfg.HandshakeTimeout))
	hello, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	if hello.Type == transport.MsgPartitionReq {
		e.serveData(conn, hello)
		return
	}
	if err := validateHello(hello); err != nil {
		_ = conn.Close()
		return
	}
	e.mu.Lock()
	id, gen := 0, 0
	rejoin := false
	if prev, ok := e.members[hello.WorkerID]; ok && !prev.alive {
		// Rejoin: resume the dead member's identity (and its warm throughput
		// estimate in the controller) on a new connection generation. Close
		// the superseded connection so its readLoop unblocks (its death
		// report is fenced by the old gen) and the fd is not leaked. A
		// checkpoint-recovered member has no superseded connection: the old
		// one died with the crashed master.
		id = hello.WorkerID
		rejoin = true
		if prev.conn != nil {
			_ = prev.conn.Close()
		}
		prev.conn = conn
		prev.alive = true
		prev.gen++
		gen = prev.gen
	} else {
		id = e.nextID
		e.nextID++
		e.members[id] = &member{id: id, conn: conn, alive: true}
	}
	// Ack the hello with the assigned member ID so the worker can resume
	// this slot after a reconnect, and the negotiated upload codec: the
	// master's preference when the worker advertised it, raw otherwise (an
	// old peer sends no advertisement and is never asked to quantize). Join
	// bookkeeping — the controller registration, the join counter, the
	// Prior slot — happens only after the ack lands: a peer that dies
	// mid-handshake was never a member, so it must not count as a join, a
	// death, or burn a planned-throughput prior.
	ack := &transport.Envelope{Type: transport.MsgHello, WorkerID: id, Codec: NegotiateCodec(e.cfg.Codec, hello.Codecs)}
	if err := conn.Send(ack); err != nil {
		e.members[id].alive = false
		e.mu.Unlock()
		_ = conn.Close()
		return
	}
	prior := 0.0
	if e.cfg.Prior != nil {
		prior = e.cfg.Prior(e.joinSeq)
	}
	e.joinSeq++
	e.cfg.Controller.AddMember(id, prior)
	e.joins++
	alive := len(e.cfg.Controller.AliveMembers())
	e.mu.Unlock()
	e.cfg.Obs.OnJoin(e.cfg.ObsGroup, id, rejoin, alive, 0)
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.RecordJoin(id, rejoin)
	}
	_ = conn.SetDeadline(time.Time{})

	select {
	case e.joined <- struct{}{}:
	default:
	}

	e.readers.Add(1)
	go e.readLoop(id, gen, conn)
}

// serveData runs a data-plane session: the connection opened with a
// partition request (already in hand as first) answers requests until the
// peer hangs up or Shutdown closes the conn. It runs inside the handshake
// goroutine, so Shutdown's accept.Wait also waits for data sessions — which
// is why Shutdown closes the tracked conns before waiting.
func (e *Engine) serveData(conn *transport.Conn, first *transport.Envelope) {
	_ = conn.SetDeadline(time.Time{})
	e.mu.Lock()
	e.dataConns[conn] = struct{}{}
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.dataConns, conn)
		e.mu.Unlock()
		_ = conn.Close()
	}()
	blob := e.cfg.PartitionBlob
	if blob == nil {
		blob = func(p int) ([]byte, error) {
			return nil, fmt.Errorf("%w: engine has no partition source", dataplane.ErrNotServed)
		}
	}
	counted := func(p int) ([]byte, error) {
		b, err := blob(p)
		if err == nil {
			e.mu.Lock()
			e.partsServed++
			e.mu.Unlock()
		}
		return b, err
	}
	if err := dataplane.Answer(conn, first, counted, e.cfg.PartitionChunkLen); err != nil {
		return
	}
	_ = dataplane.Serve(conn, counted, e.cfg.PartitionChunkLen)
}

// PartitionsServed returns the number of partition blobs delivered over the
// engine's data plane (not-served refusals excluded).
func (e *Engine) PartitionsServed() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.partsServed
}

// readLoop feeds one connection generation's frames into the shared inbox.
func (e *Engine) readLoop(id, gen int, conn *transport.Conn) {
	defer e.readers.Done()
	for {
		env, err := conn.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrMalformed) {
				select {
				case e.inbox <- msg{memberID: id, gen: gen, malformed: true}:
				case <-e.stop:
					return
				}
				continue
			}
			select {
			case e.inbox <- msg{memberID: id, gen: gen, err: err}:
			case <-e.stop:
			}
			return
		}
		switch env.Type {
		case transport.MsgGradient, transport.MsgTelemetry:
			select {
			case e.inbox <- msg{memberID: id, gen: gen, env: env}:
			case <-e.stop:
				return
			}
		}
	}
}

// sendTo writes one envelope under the configured write deadline.
func (e *Engine) sendTo(conn *transport.Conn, env *transport.Envelope) error {
	_ = conn.SetWriteDeadline(time.Now().Add(e.cfg.WriteTimeout))
	err := conn.Send(env)
	_ = conn.SetWriteDeadline(time.Time{})
	return err
}

// staleGen reports whether gen is a superseded connection generation for
// the member — the frame or report carrying it predates a rejoin.
func (e *Engine) staleGen(id, gen int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, ok := e.members[id]
	return !ok || m.gen != gen
}

// noteDeath marks a member dead in the roster and the control plane — but
// only if the report refers to the member's current connection generation;
// errors from a superseded connection are ignored (the member rejoined).
func (e *Engine) noteDeath(id, gen int) {
	e.mu.Lock()
	died := false
	alive := 0
	if m, ok := e.members[id]; ok && m.alive && m.gen == gen {
		m.alive = false
		e.deaths++
		e.cfg.Controller.RemoveMember(id)
		alive = len(e.cfg.Controller.AliveMembers())
		died = true
	}
	e.mu.Unlock()
	if !died {
		return
	}
	e.cfg.Obs.OnDeath(e.cfg.ObsGroup, id, alive, 0)
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.RecordDeath(id)
	}
}

// AliveCount returns the number of members currently alive in the control
// plane.
func (e *Engine) AliveCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cfg.Controller.AliveMembers())
}

// Joins returns the number of successful joins (rejoins included).
func (e *Engine) Joins() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.joins
}

// Deaths returns the number of member deaths observed.
func (e *Engine) Deaths() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.deaths
}

// Events returns the controller's replan history.
func (e *Engine) Events() []elastic.ReplanEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.Controller.Events()
}

// Epoch returns the controller's current plan epoch (-1 before any plan).
// Epochs are monotonic, so this is also the highest epoch the engine ever
// created — the fencing base a checkpoint must carry.
func (e *Engine) Epoch() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.Controller.Epoch()
}

// SetRootGen replaces the lease generation stamped on broadcasts and checked
// by Collect. An adopted group master calls it when a new root (a higher
// generation) adopts it mid-run. It must be called only from the goroutine
// that drives Migrate/BroadcastParams/Collect — the engine does not lock the
// generation against its own run loop.
func (e *Engine) SetRootGen(gen int) {
	if gen > e.cfg.RootGen {
		e.cfg.RootGen = gen
	}
}

// RaiseEpochBase raises the controller's epoch floor (no-op when base is not
// above the current floor) — the membership-reconciliation half of an
// adoption handshake: a re-adopting root hands the group the highest epoch it
// ever recorded for it, so plans built after adoption can never collide with
// uploads encoded before.
func (e *Engine) RaiseEpochBase(base int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg.Controller.SetEpochBase(base)
}

// MemberIDs returns every member ID the engine has admitted or reserved,
// ascending — what a group master reports in its adoption handshake.
func (e *Engine) MemberIDs() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]int, 0, len(e.members))
	for id := range e.members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// ControllerState captures the control plane for a checkpoint snapshot,
// serialised against the engine's own controller access (handshakes and
// collects mutate the controller under the same lock).
func (e *Engine) ControllerState() *elastic.ControllerState {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cfg.Controller.State()
}

// WaitForMembers blocks until min members are alive or the timeout expires.
func (e *Engine) WaitForMembers(min int, timeout time.Duration) error {
	deadline := time.After(timeout)
	for {
		n := e.AliveCount()
		if n >= min {
			return nil
		}
		select {
		case <-e.joined:
		case <-deadline:
			return fmt.Errorf("%w: %d of %d members joined before timeout", ErrQuorum, n, min)
		}
	}
}

// ShouldReplan asks the controller whether to migrate at this iteration
// boundary (see elastic.Controller.ShouldReplan).
func (e *Engine) ShouldReplan(iter int) (bool, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.Obs != nil {
		e.cfg.Obs.OnDrift(e.cfg.Controller.DriftGain())
	}
	return e.cfg.Controller.ShouldReplan(iter)
}

// Migrate builds the next plan and delivers (epoch, assignment) to every
// member of it, translating partition indices through PartitionMap. Members
// whose reassign send fails are marked dead; Migrate replans until a full
// delivery succeeds or planning becomes infeasible.
func (e *Engine) Migrate(iter int, reason string) (*elastic.Plan, error) {
	for attempt := 0; ; attempt++ {
		e.mu.Lock()
		total := len(e.members)
		var plan *elastic.Plan
		var err error
		if attempt <= total+1 {
			plan, err = e.cfg.Controller.Replan(iter, reason)
		}
		e.mu.Unlock()
		if attempt > total+1 {
			return nil, fmt.Errorf("%w: no stable membership after %d attempts", ErrMigrationFailed, attempt)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMigrationFailed, err)
		}
		alloc := plan.Strategy.Allocation()
		failed := false
		for slot, id := range plan.Members {
			e.mu.Lock()
			m := e.members[id]
			conn, gen := m.conn, m.gen
			e.mu.Unlock()
			row := plan.Strategy.Row(slot)
			local := alloc.Parts[slot]
			parts := make([]int, len(local))
			coeffs := make([]float64, len(local))
			for i, p := range local {
				parts[i] = p
				if e.cfg.PartitionMap != nil {
					parts[i] = e.cfg.PartitionMap[p] // local → global partition ID
				}
				coeffs[i] = row[p]
			}
			env := &transport.Envelope{
				Type:    transport.MsgReassign,
				Epoch:   plan.Epoch,
				RootGen: e.cfg.RootGen,
				Assign: &transport.Assignment{
					WorkerID:   slot,
					Partitions: parts,
					RowCoeffs:  coeffs,
					K:          e.cfg.K,
					S:          e.cfg.S,
				},
			}
			if err := e.sendTo(conn, env); err != nil {
				e.noteDeath(id, gen)
				failed = true
			}
		}
		if !failed {
			// Journal the migration only after full delivery: an undelivered
			// plan is retried under a fresh epoch and must not become the
			// recovered fencing base.
			if e.cfg.Recorder != nil {
				e.cfg.Recorder.RecordPlan(iter, plan.Epoch, plan.Members)
			}
			e.cfg.Obs.OnReplan(reason, iter, plan.Epoch, len(plan.Members))
			return plan, nil
		}
		reason = "churn"
	}
}

// BroadcastParams sends one iteration's parameters, tagged with the plan
// epoch, the root generation and the iteration's wire trace context, to
// every live plan member; members whose send fails are marked dead. The
// first broadcast of an iteration also resets the stitched-span accumulator
// and anchors the contribution-latency clock (a retry re-broadcast of the
// same iteration keeps both: the member's real wait spans the failed
// attempt too).
func (e *Engine) BroadcastParams(plan *elastic.Plan, iter int, params []float64) {
	if iter != e.contribIter {
		e.contribIter = iter
		e.contribs = e.contribs[:0]
		e.contribStart = time.Now()
	}
	trace := obs.TraceID(uint64(e.cfg.RootGen), plan.Epoch, iter)
	for _, id := range plan.Members {
		e.mu.Lock()
		m := e.members[id]
		conn, live, gen := m.conn, m.alive, m.gen
		e.mu.Unlock()
		if !live {
			continue
		}
		env := &transport.Envelope{Type: transport.MsgParams, Iter: iter, Epoch: plan.Epoch, RootGen: e.cfg.RootGen, Trace: trace, Vector: params}
		if err := e.sendTo(conn, env); err != nil {
			e.noteDeath(id, gen)
		}
	}
}

// convertSpans copies wire phase spans into trace spans.
func convertSpans(ws []transport.PhaseSpan) []obs.Span {
	if len(ws) == 0 {
		return nil
	}
	out := make([]obs.Span, len(ws))
	for i, sp := range ws {
		out[i] = obs.Span{Phase: sp.Phase, Seconds: sp.Seconds}
	}
	return out
}

// arrival is the contribution latency clock: seconds since the iteration's
// first parameter broadcast (zero when Collect ran without one, e.g. under
// a test harness that drives the inbox directly).
func (e *Engine) arrival() float64 {
	if e.contribStart.IsZero() {
		return 0
	}
	return time.Since(e.contribStart).Seconds()
}

// noteContribution records one full stitched member child span: the arrival
// latency the engine observed plus whatever phase spans the member echoed
// on its upload (none for peers from before trace propagation).
func (e *Engine) noteContribution(id int, spans []transport.PhaseSpan) {
	e.contribs = append(e.contribs, obs.MemberSpan{
		Member:  id,
		Group:   e.cfg.ObsGroup,
		Arrival: e.arrival(),
		Spans:   convertSpans(spans),
	})
}

// noteErased records a partial member child span for a contribution that was
// erased — fenced, malformed, skipped, or lost to a death — labeled with the
// erasure reason and carrying whatever spans the engine learned before the
// erasure.
func (e *Engine) noteErased(id int, reason string, spans []transport.PhaseSpan) {
	e.contribs = append(e.contribs, obs.MemberSpan{
		Member:  id,
		Group:   e.cfg.ObsGroup,
		Arrival: e.arrival(),
		Spans:   convertSpans(spans),
		Partial: true,
		Reason:  reason,
	})
}

// TakeContribs drains the stitched member child spans accumulated for iter
// (nil when the engine never saw that iteration). The master calls it once
// after its collect-and-retry loop and attaches the result to the iteration
// trace.
func (e *Engine) TakeContribs(iter int) []obs.MemberSpan {
	if iter != e.contribIter || len(e.contribs) == 0 {
		return nil
	}
	out := make([]obs.MemberSpan, len(e.contribs))
	copy(out, e.contribs)
	e.contribs = e.contribs[:0]
	return out
}

// RootGen returns the lease generation currently stamped on broadcasts —
// the generation half of the iteration's wire trace context. Call it only
// from the run-loop goroutine (see SetRootGen).
func (e *Engine) RootGen() int { return e.cfg.RootGen }

// EpochViable reports whether the plan can still decode if every live plan
// member eventually uploads (arrived marks slots already collected).
func (e *Engine) EpochViable(plan *elastic.Plan, arrived []bool) bool {
	mask := make([]bool, len(plan.Members))
	e.mu.Lock()
	for slot, id := range plan.Members {
		m, ok := e.members[id]
		mask[slot] = arrived[slot] || (ok && m.alive)
	}
	e.mu.Unlock()
	return plan.Strategy.CanDecode(mask)
}

// Collect runs one epoch-fenced gather for an iteration: it consumes inbox
// frames — ingesting telemetry, fencing stale-epoch and malformed uploads,
// noting deaths — until the strategy decodes (ok=true, with the decode
// coefficients and the coded uploads by slot), the timeout expires, or
// deaths make the epoch unviable (ok=false either way: the caller migrates
// and retries, or gives up). Fencing decisions are accumulated into st.
func (e *Engine) Collect(plan *elastic.Plan, iter, dim int, timeout time.Duration, st *Stats) (coeffs []float64, coded []grad.Gradient, ok bool) {
	m := plan.Strategy.M()
	coded = e.collectSlab(m)
	arrived := make([]bool, m)
	if iter != e.contribIter {
		// The caller skipped BroadcastParams (a test harness driving the
		// inbox directly): anchor the stitch accumulator here instead.
		e.contribIter = iter
		e.contribs = e.contribs[:0]
		e.contribStart = time.Now()
	}
	if !e.EpochViable(plan, arrived) {
		return nil, nil, false
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case in := <-e.inbox:
			// Generation fence: anything from a superseded connection —
			// a frame already queued when its member rejoined, a malformed
			// marker, a late death report — must not impersonate the live
			// connection. (Death reports are gen-fenced inside noteDeath
			// too; frames have no other fence.)
			if e.staleGen(in.memberID, in.gen) {
				if in.env != nil {
					st.StaleConnRejected++
					e.cfg.Obs.OnReject(obs.RStaleConn)
				}
				continue
			}
			if in.malformed {
				st.MalformedSkipped++
				e.cfg.Obs.OnReject(obs.RMalformed)
				e.noteErased(in.memberID, obs.RMalformed, nil)
				continue
			}
			if in.err != nil {
				// A plan member dying before its upload landed leaves an
				// explicitly-labeled partial child span in the trace.
				if slot := plan.SlotOf(in.memberID); slot >= 0 && !arrived[slot] {
					e.noteErased(in.memberID, obs.RDead, nil)
				}
				e.noteDeath(in.memberID, in.gen)
				if !e.EpochViable(plan, arrived) {
					return nil, nil, false
				}
				continue
			}
			env := in.env
			switch env.Type {
			case transport.MsgTelemetry:
				if env.Telemetry != nil && env.Telemetry.Partitions > 0 && env.Telemetry.ComputeSeconds > 0 {
					e.mu.Lock()
					err := e.cfg.Controller.Observe(in.memberID, env.Telemetry.Partitions, env.Telemetry.ComputeSeconds)
					rate := 0.0
					if err == nil && e.cfg.Obs != nil {
						rate, _ = e.cfg.Controller.Rate(in.memberID)
					}
					e.mu.Unlock()
					if err == nil {
						st.TelemetrySamples++
						e.cfg.Obs.OnEstimate(e.cfg.ObsGroup, in.memberID, rate)
					}
				}
			case transport.MsgGradient:
				// Root-generation fence: an upload tagged with a deposed
				// root's lease generation was encoded against parameters that
				// are no longer this run's truth — reject it before any other
				// consideration.
				if e.cfg.RootGen > 0 && env.RootGen != e.cfg.RootGen {
					st.FencedRejected++
					e.cfg.Obs.OnReject(obs.RFenced)
					e.noteErased(in.memberID, obs.RFenced, env.Spans)
					continue
				}
				// Epoch fence: uploads encoded under a superseded plan are
				// rejected before they can reach decode.
				if env.Epoch != plan.Epoch {
					st.StaleEpochRejected++
					e.cfg.Obs.OnReject(obs.RStaleEpoch)
					e.noteErased(in.memberID, obs.RStaleEpoch, env.Spans)
					continue
				}
				// Shape fence before the iteration fence: a mis-sized or
				// non-finite upload is malformed no matter which iteration
				// it straggled in from. (The two pre-roster runtimes raced
				// here — a truncated frame that arrived after its iteration
				// had decoded was miscounted as a mere straggler.)
				if len(env.Vector) != dim || grad.InfOrNaN(env.Vector) {
					st.MalformedSkipped++
					e.cfg.Obs.OnReject(obs.RMalformed)
					e.noteErased(in.memberID, obs.RMalformed, env.Spans)
					continue
				}
				if env.Iter != iter {
					// A late upload for an OLDER iteration: counted, but it is
					// not this iteration's child span, so no stitch record.
					st.StragglersSkipped++
					e.cfg.Obs.OnReject(obs.RStraggler)
					continue
				}
				slot := plan.SlotOf(in.memberID)
				if slot < 0 {
					st.StragglersSkipped++
					e.cfg.Obs.OnReject(obs.RStraggler)
					e.noteErased(in.memberID, obs.RStraggler, env.Spans)
					continue
				}
				if !arrived[slot] {
					e.noteContribution(in.memberID, env.Spans)
				}
				coded[slot] = env.Vector
				arrived[slot] = true
				if cs, err := plan.Strategy.Decode(arrived); err == nil {
					return cs, coded, true
				}
			}
		case <-deadline.C:
			return nil, nil, false
		}
	}
}

// collectSlab returns the next of the two alternating collect buffers,
// resized to m slots and cleared. The slab returned two Collect calls ago is
// recycled — by then the caller has decoded and discarded it.
func (e *Engine) collectSlab(m int) []grad.Gradient {
	e.collectFlip ^= 1
	buf := e.collectBufs[e.collectFlip]
	if cap(buf) < m {
		buf = make([]grad.Gradient, m)
	}
	buf = buf[:m]
	for i := range buf {
		buf[i] = nil
	}
	e.collectBufs[e.collectFlip] = buf
	return buf
}

// Shutdown stops the engine: the listener, every member connection and the
// reader goroutines. With graceful set, live members are sent a best-effort
// MsgShutdown frame first — callers may only do that from the goroutine
// that owns the member connections' writes (or after that goroutine
// exited); a concurrent teardown must close cold. Safe to call multiple
// times; later calls block until the first completes.
func (e *Engine) Shutdown(graceful bool) {
	e.closeOnce.Do(func() {
		e.mu.Lock()
		if graceful {
			for _, m := range e.members {
				if m.alive && m.conn != nil {
					// Best-effort shutdown with a short write deadline: a
					// stalled worker must not hang Shutdown.
					_ = m.conn.SetWriteDeadline(time.Now().Add(time.Second))
					_ = m.conn.Send(&transport.Envelope{Type: transport.MsgShutdown})
				}
			}
		}
		for _, m := range e.members {
			if m.conn != nil {
				_ = m.conn.Close()
			}
		}
		e.mu.Unlock()
		_ = e.lis.Close()
		// Data-plane sessions run inside handshake goroutines; close their
		// conns so accept.Wait below cannot deadlock on a live session.
		e.mu.Lock()
		for conn := range e.dataConns {
			_ = conn.Close()
		}
		e.mu.Unlock()
		e.accept.Wait()
		// Close conns registered by handshakes that raced the sweep above,
		// so every reader goroutine unblocks. (Checkpoint-recovered members
		// that never rejoined have no connection at all.)
		e.mu.Lock()
		for _, m := range e.members {
			if m.conn != nil {
				_ = m.conn.Close()
			}
		}
		e.mu.Unlock()
		close(e.stop)
		done := make(chan struct{})
		go func() {
			e.readers.Wait()
			close(done)
		}()
		for {
			select {
			case <-e.inbox:
			case <-done:
				return
			}
		}
	})
}
