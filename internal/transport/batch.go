// Frame batching: coalesce several envelopes into one wire frame so that
// high-fan-in senders (a group master streaming its aggregated gradient
// chunks up the reduction tree every iteration) pay one write per iteration
// instead of one per message. The batch payload is a flat byte sequence of
// length-prefixed sub-frames — a uint32 big-endian byte length, a codec
// byte, then the frame body: a compact fixed binary layout for plain
// gradient uploads (the hot path), a self-contained gob encoding for
// everything else — assembled in pooled buffers so steady-state batching
// does not allocate.
package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"math"
	"sync"

	"github.com/hetgc/hetgc/internal/grad"
)

// maxBatchFrames bounds the number of sub-frames Recv will unpack from one
// batch; an application-layer sanity cap like MaxVectorLen.
const maxBatchFrames = 1 << 20

// Sub-frame codecs. Plain gradient uploads — the hot path, dominated by
// their float payload — use a compact fixed binary layout instead of gob, so
// a batched upload costs one memcpy-speed pass per chunk rather than
// per-value gob processing and per-frame type descriptors. Everything else
// rides the general gob codec.
const (
	subFrameGob      = 0x00
	subFrameGradient = 0x01
	// subFrameQuant is the quantized-gradient layout: like subFrameGradient
	// but the payload is a grad.Codec-encoded byte string instead of raw
	// float64s, with the codec byte after the sub-frame marker.
	subFrameQuant = 0x02
)

// gradientHeaderLen is the binary gradient sub-frame header: codec byte,
// Iter/Epoch/WorkerID as uint32, Chunk/Chunks as uint32, RootGen, vector
// length.
const gradientHeaderLen = 1 + 4*7

// quantHeaderLen is the quantized gradient sub-frame header: sub-frame
// marker, gradient codec byte, then the same seven uint32 fields with the
// element count (QuantLen) in place of the vector length. The payload byte
// length is implied by the sub-frame length prefix.
const quantHeaderLen = 2 + 4*7

// batchBufPool recycles the scratch buffers used to assemble and encode
// batch payloads.
var batchBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// SendBatch coalesces the given envelopes into a single MsgBatch frame and
// writes it with one Send. Receivers observe the identical sub-frame
// sequence from consecutive Recv calls — batching is invisible above the
// transport. A single envelope is sent directly (no batch overhead); an
// empty slice is a no-op. Envelopes must be valid per the protocol
// invariants and must not themselves be batches.
func (c *Conn) SendBatch(envs []*Envelope) error {
	switch len(envs) {
	case 0:
		return nil
	case 1:
		// Enforce the same nested-batch rejection encodeBatch applies to
		// longer batches: a hand-built MsgBatch envelope must not ship
		// unvalidated through the single-frame shortcut.
		if envs[0].Type == MsgBatch {
			return fmt.Errorf("%w: nested batch (sub-frame 0)", ErrMalformed)
		}
		return c.Send(envs[0])
	}
	payload := batchBufPool.Get().(*bytes.Buffer)
	defer func() {
		payload.Reset()
		batchBufPool.Put(payload)
	}()
	payload.Reset()
	if err := encodeBatch(payload, envs); err != nil {
		return err
	}
	return c.Send(&Envelope{Type: MsgBatch, Batch: payload.Bytes()})
}

// encodeBatch assembles the length-prefixed sub-frame payload into buf —
// the inverse of decodeBatch. Each sub-frame is encoded directly into buf
// after a 4-byte placeholder that is backfilled with the frame length, so
// assembly makes no intermediate copies.
func encodeBatch(buf *bytes.Buffer, envs []*Envelope) error {
	var prefix [4]byte
	for i, e := range envs {
		if e.Type == MsgBatch {
			return fmt.Errorf("%w: nested batch (sub-frame %d)", ErrMalformed, i)
		}
		at := buf.Len()
		buf.Write(prefix[:])
		if e.Type == MsgGradient {
			countCodecOut(e)
		}
		if gradientFastPath(e) {
			encodeGradientFrame(buf, e)
		} else if quantFastPath(e) {
			encodeQuantFrame(buf, e)
		} else {
			buf.WriteByte(subFrameGob)
			if err := gob.NewEncoder(buf).Encode(e); err != nil {
				return fmt.Errorf("transport batch sub-frame %d (%v): %w", i, e.Type, err)
			}
		}
		binary.BigEndian.PutUint32(buf.Bytes()[at:at+4], uint32(buf.Len()-at-4))
	}
	return nil
}

// gradientFastPath reports whether a sub-frame fits the compact binary
// gradient layout (uint32 header fields, no auxiliary payloads). Chunk gets
// the same upper bound as every other header field — a larger value would be
// silently truncated by the uint32 conversion in encodeGradientFrame and
// decode as the wrong chunk index.
func gradientFastPath(e *Envelope) bool {
	return e.Type == MsgGradient && e.Assign == nil && e.Telemetry == nil && e.Batch == nil &&
		e.Adopt == nil && e.Blob == nil && e.Part == 0 &&
		e.Trace == 0 && e.Spans == nil &&
		e.Codec == 0 && e.Quant == nil && e.QuantLen == 0 && e.Codecs == nil &&
		e.Iter >= 0 && e.Iter <= math.MaxUint32>>1 &&
		e.Epoch >= 0 && e.Epoch <= math.MaxUint32>>1 &&
		e.WorkerID >= 0 && e.WorkerID <= math.MaxUint32>>1 &&
		e.RootGen >= 0 && e.RootGen <= math.MaxUint32>>1 &&
		e.Chunk >= 0 && e.Chunk <= math.MaxUint32>>1 &&
		e.Chunks >= 0 && e.Chunks <= math.MaxUint32>>1 &&
		len(e.Vector) <= MaxVectorLen
}

// quantFastPath reports whether a sub-frame fits the compact quantized
// gradient layout: a tagged quantized payload with no auxiliary fields and
// every header value in uint32 range.
func quantFastPath(e *Envelope) bool {
	return e.Type == MsgGradient && e.Assign == nil && e.Telemetry == nil && e.Batch == nil &&
		e.Adopt == nil && e.Blob == nil && e.Part == 0 &&
		e.Trace == 0 && e.Spans == nil &&
		e.Codec != 0 && grad.Codec(e.Codec).Valid() &&
		len(e.Quant) > 0 && len(e.Vector) == 0 && e.Codecs == nil &&
		e.QuantLen >= 1 && e.QuantLen <= math.MaxUint32>>1 &&
		e.Iter >= 0 && e.Iter <= math.MaxUint32>>1 &&
		e.Epoch >= 0 && e.Epoch <= math.MaxUint32>>1 &&
		e.WorkerID >= 0 && e.WorkerID <= math.MaxUint32>>1 &&
		e.RootGen >= 0 && e.RootGen <= math.MaxUint32>>1 &&
		e.Chunk >= 0 && e.Chunk <= math.MaxUint32>>1 &&
		e.Chunks >= 0 && e.Chunks <= math.MaxUint32>>1
}

// encodeGradientFrame writes the binary gradient layout: header fields then
// the raw little-endian float payload in one buffer-tail append pass.
func encodeGradientFrame(buf *bytes.Buffer, e *Envelope) {
	var hdr [gradientHeaderLen]byte
	hdr[0] = subFrameGradient
	binary.LittleEndian.PutUint32(hdr[1:], uint32(e.Iter))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(e.Epoch))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(e.WorkerID))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(e.Chunk))
	binary.LittleEndian.PutUint32(hdr[17:], uint32(e.Chunks))
	binary.LittleEndian.PutUint32(hdr[21:], uint32(e.RootGen))
	binary.LittleEndian.PutUint32(hdr[25:], uint32(len(e.Vector)))
	buf.Write(hdr[:])
	b := buf.AvailableBuffer()
	if cap(b) < 8*len(e.Vector) {
		b = make([]byte, 0, 8*len(e.Vector))
	}
	buf.Write(AppendFloat64s(b, e.Vector))
}

// encodeQuantFrame writes the quantized gradient layout: marker and codec
// bytes, the uint32 header fields, then the opaque codec payload.
func encodeQuantFrame(buf *bytes.Buffer, e *Envelope) {
	var hdr [quantHeaderLen]byte
	hdr[0] = subFrameQuant
	hdr[1] = e.Codec
	binary.LittleEndian.PutUint32(hdr[2:], uint32(e.Iter))
	binary.LittleEndian.PutUint32(hdr[6:], uint32(e.Epoch))
	binary.LittleEndian.PutUint32(hdr[10:], uint32(e.WorkerID))
	binary.LittleEndian.PutUint32(hdr[14:], uint32(e.Chunk))
	binary.LittleEndian.PutUint32(hdr[18:], uint32(e.Chunks))
	binary.LittleEndian.PutUint32(hdr[22:], uint32(e.RootGen))
	binary.LittleEndian.PutUint32(hdr[26:], uint32(e.QuantLen))
	buf.Write(hdr[:])
	buf.Write(e.Quant)
}

// decodeQuantFrame parses the quantized gradient layout. The payload is not
// copied — decodeBatch dequantizes it into a fresh Vector before the frame
// escapes the transport, so aliasing the batch buffer is transient.
func decodeQuantFrame(frame []byte) (*Envelope, error) {
	if len(frame) < quantHeaderLen {
		return nil, fmt.Errorf("%w: quantized sub-frame header truncated (%d bytes)", ErrMalformed, len(frame))
	}
	codec := grad.Codec(frame[1])
	if !codec.Valid() || codec == grad.CodecRaw {
		return nil, fmt.Errorf("%w: quantized sub-frame has unknown gradient codec %#x", ErrMalformed, frame[1])
	}
	e := &Envelope{
		Type:     MsgGradient,
		Iter:     int(binary.LittleEndian.Uint32(frame[2:])),
		Epoch:    int(binary.LittleEndian.Uint32(frame[6:])),
		WorkerID: int(binary.LittleEndian.Uint32(frame[10:])),
		Chunk:    int(binary.LittleEndian.Uint32(frame[14:])),
		Chunks:   int(binary.LittleEndian.Uint32(frame[18:])),
		RootGen:  int(binary.LittleEndian.Uint32(frame[22:])),
		Codec:    byte(codec),
		QuantLen: int(binary.LittleEndian.Uint32(frame[26:])),
		Quant:    frame[quantHeaderLen:],
	}
	if len(e.Quant) == 0 {
		return nil, fmt.Errorf("%w: quantized sub-frame with empty payload", ErrMalformed)
	}
	return e, nil
}

// decodeGradientFrame parses the binary gradient layout.
func decodeGradientFrame(frame []byte) (*Envelope, error) {
	if len(frame) < gradientHeaderLen {
		return nil, fmt.Errorf("%w: gradient sub-frame header truncated (%d bytes)", ErrMalformed, len(frame))
	}
	n := int(binary.LittleEndian.Uint32(frame[25:]))
	if len(frame) != gradientHeaderLen+8*n {
		return nil, fmt.Errorf("%w: gradient sub-frame holds %d bytes for %d elements", ErrMalformed, len(frame)-gradientHeaderLen, n)
	}
	e := &Envelope{
		Type:     MsgGradient,
		Iter:     int(binary.LittleEndian.Uint32(frame[1:])),
		Epoch:    int(binary.LittleEndian.Uint32(frame[5:])),
		WorkerID: int(binary.LittleEndian.Uint32(frame[9:])),
		Chunk:    int(binary.LittleEndian.Uint32(frame[13:])),
		Chunks:   int(binary.LittleEndian.Uint32(frame[17:])),
		RootGen:  int(binary.LittleEndian.Uint32(frame[21:])),
	}
	if n > 0 {
		vec, _, err := ReadFloat64s(frame[gradientHeaderLen:], n)
		if err != nil {
			return nil, err
		}
		e.Vector = vec
	}
	return e, nil
}

// decodeBatch splits a batch payload into its sub-frames and validates each.
// Truncated length prefixes or payloads, nested batches, trailing garbage and
// sub-frames violating protocol invariants all reject the whole batch with
// ErrMalformed.
func decodeBatch(batch []byte) ([]*Envelope, error) {
	var subs []*Envelope
	for off := 0; off < len(batch); {
		if len(batch)-off < 4 {
			return nil, fmt.Errorf("%w: batch truncated in length prefix at offset %d", ErrMalformed, off)
		}
		n := int(binary.BigEndian.Uint32(batch[off : off+4]))
		off += 4
		if n <= 0 || n > len(batch)-off {
			return nil, fmt.Errorf("%w: batch sub-frame length %d with %d bytes left", ErrMalformed, n, len(batch)-off)
		}
		if len(subs) == maxBatchFrames {
			return nil, fmt.Errorf("%w: batch exceeds %d sub-frames", ErrMalformed, maxBatchFrames)
		}
		frame := batch[off : off+n]
		var e *Envelope
		switch frame[0] {
		case subFrameGradient:
			var err error
			e, err = decodeGradientFrame(frame)
			if err != nil {
				return nil, err
			}
		case subFrameQuant:
			var err error
			e, err = decodeQuantFrame(frame)
			if err != nil {
				return nil, err
			}
		case subFrameGob:
			e = new(Envelope)
			if err := gob.NewDecoder(bytes.NewReader(frame[1:])).Decode(e); err != nil {
				return nil, fmt.Errorf("%w: batch sub-frame %d: %v", ErrMalformed, len(subs), err)
			}
		default:
			return nil, fmt.Errorf("%w: batch sub-frame %d has unknown codec %#x", ErrMalformed, len(subs), frame[0])
		}
		if e.Type == MsgBatch {
			return nil, fmt.Errorf("%w: nested batch (sub-frame %d)", ErrMalformed, len(subs))
		}
		if err := e.validate(); err != nil {
			return nil, fmt.Errorf("batch sub-frame %d: %w", len(subs), err)
		}
		if e.Type == MsgGradient {
			countCodecIn(e)
			if err := e.dequantize(); err != nil {
				return nil, fmt.Errorf("batch sub-frame %d: %w", len(subs), err)
			}
		}
		off += n
		subs = append(subs, e)
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrMalformed)
	}
	return subs, nil
}

// ChunkGradient splits one gradient upload into chunked MsgGradient
// sub-frames of at most chunkLen elements each, ready for SendBatch: the
// receiver reassembles them with JoinChunks. Every chunk shares the
// template's Iter/Epoch/WorkerID. A template's trace context and phase
// spans ride only the FINAL chunk: spans there is the protocol rule, and
// carrying both on one chunk keeps every earlier chunk on the compact
// binary fast path (the traced chunk falls back to the general gob
// sub-frame codec, whose field omission also keeps older peers compatible).
// chunkLen <= 0, or a vector that fits in a single chunk, yields one
// unchunked frame.
func ChunkGradient(tmpl Envelope, vec []float64, chunkLen int) []*Envelope {
	tmpl.Type = MsgGradient
	tmpl.Assign, tmpl.Telemetry, tmpl.Batch = nil, nil, nil
	trace, spans := tmpl.Trace, tmpl.Spans
	tmpl.Trace, tmpl.Spans = 0, nil
	if chunkLen <= 0 || len(vec) <= chunkLen {
		e := tmpl
		e.Vector = vec
		e.Chunk, e.Chunks = 0, 0
		e.Trace, e.Spans = trace, spans
		return []*Envelope{&e}
	}
	chunks := (len(vec) + chunkLen - 1) / chunkLen
	out := make([]*Envelope, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo := i * chunkLen
		hi := lo + chunkLen
		if hi > len(vec) {
			hi = len(vec)
		}
		e := tmpl
		e.Vector = vec[lo:hi]
		e.Chunk, e.Chunks = i, chunks
		if i == chunks-1 {
			e.Trace, e.Spans = trace, spans
		}
		out = append(out, &e)
	}
	return out
}

// ChunkGradientQuant splits one gradient upload into chunked MsgGradient
// sub-frames like ChunkGradient and encodes each chunk's payload with the
// negotiated codec into pooled buffers (ready for SendBatch; the receiver's
// transport dequantizes transparently, so it reassembles with JoinChunks as
// usual). Call ReleaseQuant on the frames once sent to recycle the payload
// buffers. CodecRaw yields plain ChunkGradient frames; an invalid codec is
// an error.
func ChunkGradientQuant(tmpl Envelope, vec []float64, chunkLen int, codec grad.Codec) ([]*Envelope, error) {
	if !codec.Valid() {
		return nil, fmt.Errorf("transport: unknown gradient codec %d", byte(codec))
	}
	frames := ChunkGradient(tmpl, vec, chunkLen)
	if codec == grad.CodecRaw {
		return frames, nil
	}
	for _, e := range frames {
		if len(e.Vector) == 0 {
			continue // empty uploads stay raw: QuantLen 0 is not framable
		}
		q, err := grad.AppendQuantized(grad.GetBytes(8*len(e.Vector)), codec, e.Vector)
		if err != nil {
			ReleaseQuant(frames)
			return nil, err
		}
		e.Codec, e.Quant, e.QuantLen = byte(codec), q, len(e.Vector)
		e.Vector = nil
	}
	return frames, nil
}

// ReleaseQuant returns the pooled quantized payload buffers of sent frames
// (as built by ChunkGradientQuant) to the codec byte pool. The frames must
// not be used afterwards.
func ReleaseQuant(envs []*Envelope) {
	for _, e := range envs {
		if e.Quant != nil {
			grad.PutBytes(e.Quant)
			e.Quant = nil
		}
	}
}

// ChunkBlob splits one data-plane payload into chunked MsgPartition frames
// of at most chunkLen bytes each; the receiver reassembles them with
// JoinBlobChunks. Every chunk shares the template's Part/Iter/RootGen. The
// result always has Chunks >= 1 (protocol rule: a MsgPartition carrying data
// is always chunk-framed; Chunks == 0 is the not-served marker), so chunkLen
// <= 0 or a blob that fits yields a single 1-of-1 chunk.
func ChunkBlob(tmpl Envelope, blob []byte, chunkLen int) []*Envelope {
	tmpl.Type = MsgPartition
	tmpl.Assign, tmpl.Telemetry, tmpl.Batch, tmpl.Vector = nil, nil, nil, nil
	if chunkLen <= 0 || len(blob) <= chunkLen {
		e := tmpl
		e.Blob = blob
		e.Chunk, e.Chunks = 0, 1
		return []*Envelope{&e}
	}
	chunks := (len(blob) + chunkLen - 1) / chunkLen
	out := make([]*Envelope, 0, chunks)
	for i := 0; i < chunks; i++ {
		lo := i * chunkLen
		hi := lo + chunkLen
		if hi > len(blob) {
			hi = len(blob)
		}
		e := tmpl
		e.Blob = blob[lo:hi]
		e.Chunk, e.Chunks = i, chunks
		out = append(out, &e)
	}
	return out
}

// JoinBlobChunks reassembles a chunked data-plane payload from its in-order
// MsgPartition frames (as produced by ChunkBlob): it concatenates the blob
// pieces and returns the full payload. It fails with ErrMalformed when the
// sequence is not exactly chunks 0..n-1 of a single partition (same
// Part/Chunks).
func JoinBlobChunks(envs []*Envelope) ([]byte, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("%w: no chunks to join", ErrMalformed)
	}
	first := envs[0]
	if len(envs) != first.Chunks {
		return nil, fmt.Errorf("%w: %d frames for %d chunks", ErrMalformed, len(envs), first.Chunks)
	}
	var dst []byte
	for i, e := range envs {
		if e.Type != MsgPartition || e.Chunk != i || e.Chunks != first.Chunks || e.Part != first.Part {
			return nil, fmt.Errorf("%w: partition chunk sequence broken at frame %d (%v part %d chunk %d/%d)", ErrMalformed, i, e.Type, e.Part, e.Chunk, e.Chunks)
		}
		dst = append(dst, e.Blob...)
	}
	return dst, nil
}

// JoinChunks reassembles a chunked gradient from its in-order sub-frames
// (as produced by ChunkGradient and delivered by Recv): it concatenates the
// chunk vectors into dst (grown as needed) and returns the full vector. It
// fails with ErrMalformed when the sequence is not exactly chunks 0..n-1 of
// a single upload (same Iter/Epoch/WorkerID/Chunks).
func JoinChunks(dst []float64, envs []*Envelope) ([]float64, error) {
	if len(envs) == 0 {
		return nil, fmt.Errorf("%w: no chunks to join", ErrMalformed)
	}
	first := envs[0]
	if first.Chunks == 0 {
		if len(envs) != 1 {
			return nil, fmt.Errorf("%w: %d frames for an unchunked upload", ErrMalformed, len(envs))
		}
		return append(dst[:0], first.Vector...), nil
	}
	if len(envs) != first.Chunks {
		return nil, fmt.Errorf("%w: %d frames for %d chunks", ErrMalformed, len(envs), first.Chunks)
	}
	dst = dst[:0]
	for i, e := range envs {
		if e.Type != MsgGradient || e.Chunk != i || e.Chunks != first.Chunks ||
			e.Iter != first.Iter || e.Epoch != first.Epoch || e.WorkerID != first.WorkerID {
			return nil, fmt.Errorf("%w: chunk sequence broken at frame %d (%v chunk %d/%d)", ErrMalformed, i, e.Type, e.Chunk, e.Chunks)
		}
		dst = append(dst, e.Vector...)
	}
	return dst, nil
}
