package transport

import (
	"net"
	"testing"
)

// TestWireCountersAdvance pins the process-wide wire snapshot: one framed
// round trip over a real socket must advance frames and bytes in both
// directions, and the counters must be monotonic (cumulative for the
// process, shared with every other test in the package).
func TestWireCountersAdvance(t *testing.T) {
	fi0, fo0, bi0, bo0, _, _ := Wire()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		srv := NewConn(conn)
		env, err := srv.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- srv.Send(env)
	}()

	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	cli := NewConn(raw)
	if err := cli.Send(&Envelope{Type: MsgTelemetry, Iter: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	fi1, fo1, bi1, bo1, _, _ := Wire()
	if fi1 < fi0+2 || fo1 < fo0+2 {
		t.Errorf("frames in/out advanced %d/%d, want >= 2 each", fi1-fi0, fo1-fo0)
	}
	if bi1 <= bi0 || bo1 <= bo0 {
		t.Errorf("bytes in/out did not advance: in %d->%d, out %d->%d", bi0, bi1, bo0, bo1)
	}
}
