package transport

import (
	"net"
	"sync/atomic"

	"github.com/hetgc/hetgc/internal/grad"
)

// Process-wide wire counters, always on: frame and byte counts are a
// handful of atomic adds per message, cheap enough to keep unconditional.
// The telemetry plane reads them at scrape time via Wire (bound with
// obs.Metrics.BindWire), and the uplink benchmarks use them to report
// bytes-per-iteration. transport deliberately does not import obs — the
// counters are plain atomics so the package stays a leaf.
var wire struct {
	framesIn  atomic.Uint64
	framesOut atomic.Uint64
	bytesIn   atomic.Uint64
	bytesOut  atomic.Uint64
	batches   atomic.Uint64
	malformed atomic.Uint64
}

// Wire snapshots the process-wide transport counters: frames received and
// sent, raw bytes read and written (counted at the net.Conn boundary, so
// gob framing overhead is included), batch frames sent, and frames
// rejected as malformed. Counters are cumulative for the process lifetime.
func Wire() (framesIn, framesOut, bytesIn, bytesOut, batches, malformed uint64) {
	return wire.framesIn.Load(), wire.framesOut.Load(),
		wire.bytesIn.Load(), wire.bytesOut.Load(),
		wire.batches.Load(), wire.malformed.Load()
}

// wireCodec counts gradient payload traffic per codec: frames and payload
// bytes (the float/quant payload itself, excluding framing), split by
// direction. Raw float64 gradients count under CodecRaw at 8 B/element, so
// the per-codec families directly expose each codec's wire savings.
var wireCodec [grad.NumCodecs]struct {
	framesIn, framesOut, bytesIn, bytesOut atomic.Uint64
}

// codecPayload classifies a gradient envelope's payload for the per-codec
// counters.
func codecPayload(e *Envelope) (codec byte, bytes uint64) {
	if len(e.Quant) > 0 {
		return e.Codec, uint64(len(e.Quant))
	}
	return byte(grad.CodecRaw), uint64(8 * len(e.Vector))
}

func countCodecIn(e *Envelope) {
	c, n := codecPayload(e)
	if int(c) >= len(wireCodec) {
		return
	}
	wireCodec[c].framesIn.Add(1)
	wireCodec[c].bytesIn.Add(n)
}

func countCodecOut(e *Envelope) {
	c, n := codecPayload(e)
	if int(c) >= len(wireCodec) {
		return
	}
	wireCodec[c].framesOut.Add(1)
	wireCodec[c].bytesOut.Add(n)
}

// WireCodec snapshots the process-wide gradient payload counters for one
// codec: frames received and sent and payload bytes read and written.
// Cumulative for the process lifetime; an out-of-range codec reads as zero.
func WireCodec(c byte) (framesIn, framesOut, bytesIn, bytesOut uint64) {
	if int(c) >= len(wireCodec) {
		return 0, 0, 0, 0
	}
	w := &wireCodec[c]
	return w.framesIn.Load(), w.framesOut.Load(), w.bytesIn.Load(), w.bytesOut.Load()
}

// countingConn counts raw bytes crossing a connection. Embedding forwards
// Close, deadlines and addresses untouched.
type countingConn struct {
	net.Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	wire.bytesIn.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	wire.bytesOut.Add(uint64(n))
	return n, err
}
