package transport

import (
	"net"
	"sync/atomic"
)

// Process-wide wire counters, always on: frame and byte counts are a
// handful of atomic adds per message, cheap enough to keep unconditional.
// The telemetry plane reads them at scrape time via Wire (bound with
// obs.Metrics.BindWire), and the uplink benchmarks use them to report
// bytes-per-iteration. transport deliberately does not import obs — the
// counters are plain atomics so the package stays a leaf.
var wire struct {
	framesIn  atomic.Uint64
	framesOut atomic.Uint64
	bytesIn   atomic.Uint64
	bytesOut  atomic.Uint64
	batches   atomic.Uint64
	malformed atomic.Uint64
}

// Wire snapshots the process-wide transport counters: frames received and
// sent, raw bytes read and written (counted at the net.Conn boundary, so
// gob framing overhead is included), batch frames sent, and frames
// rejected as malformed. Counters are cumulative for the process lifetime.
func Wire() (framesIn, framesOut, bytesIn, bytesOut, batches, malformed uint64) {
	return wire.framesIn.Load(), wire.framesOut.Load(),
		wire.bytesIn.Load(), wire.bytesOut.Load(),
		wire.batches.Load(), wire.malformed.Load()
}

// countingConn counts raw bytes crossing a connection. Embedding forwards
// Close, deadlines and addresses untouched.
type countingConn struct {
	net.Conn
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	wire.bytesIn.Add(uint64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	wire.bytesOut.Add(uint64(n))
	return n, err
}
