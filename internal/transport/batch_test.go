package transport

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/grad"
)

// randomEnvelope draws one valid non-batch envelope of a random flavour.
func randomEnvelope(rng *rand.Rand) *Envelope {
	vec := func(n int) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	switch rng.Intn(5) {
	case 0: // unchunked gradient
		return &Envelope{Type: MsgGradient, Iter: rng.Intn(100), Epoch: rng.Intn(5),
			WorkerID: rng.Intn(8), Vector: vec(1 + rng.Intn(16))}
	case 1: // chunked gradient
		chunks := 2 + rng.Intn(4)
		return &Envelope{Type: MsgGradient, Iter: rng.Intn(100), Epoch: rng.Intn(5),
			WorkerID: rng.Intn(8), Chunk: rng.Intn(chunks), Chunks: chunks,
			Vector: vec(1 + rng.Intn(16))}
	case 2:
		return &Envelope{Type: MsgParams, Iter: rng.Intn(100), Epoch: rng.Intn(5),
			Vector: vec(1 + rng.Intn(16))}
	case 3:
		return &Envelope{Type: MsgTelemetry, Iter: rng.Intn(100), WorkerID: rng.Intn(8),
			Telemetry: &Telemetry{ComputeSeconds: rng.Float64(), Partitions: 1 + rng.Intn(9)}}
	default:
		return &Envelope{Type: MsgReassign, Epoch: rng.Intn(5), Assign: &Assignment{
			WorkerID:   rng.Intn(8),
			Partitions: []int{0, 2},
			RowCoeffs:  []float64{rng.NormFloat64(), rng.NormFloat64()},
			K:          4, S: 1,
		}}
	}
}

// TestBatchRoundTripProperty is the batching contract: any sequence of
// sub-frames coalesced with SendBatch is observed by Recv exactly as if each
// envelope had been sent individually.
func TestBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		envs := make([]*Envelope, n)
		for i := range envs {
			envs[i] = randomEnvelope(rng)
		}

		batched, batchedPeer := pipePair(t)
		plain, plainPeer := pipePair(t)
		errc := make(chan error, 2)
		go func() { errc <- batched.SendBatch(envs) }()
		go func() {
			for _, e := range envs {
				if err := plain.Send(e); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}()
		for i := 0; i < n; i++ {
			got, err := batchedPeer.Recv()
			if err != nil {
				t.Fatalf("trial %d: batched recv %d: %v", trial, i, err)
			}
			want, err := plainPeer.Recv()
			if err != nil {
				t.Fatalf("trial %d: plain recv %d: %v", trial, i, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d frame %d:\nbatched %+v\nplain   %+v", trial, i, got, want)
			}
			if !reflect.DeepEqual(got, envs[i]) {
				t.Fatalf("trial %d frame %d: round-trip changed the envelope:\ngot  %+v\nsent %+v", trial, i, got, envs[i])
			}
		}
		if err := <-errc; err != nil {
			t.Fatalf("trial %d: send: %v", trial, err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("trial %d: send: %v", trial, err)
		}
	}
}

func TestSendBatchEmptyAndSingle(t *testing.T) {
	a, b := pipePair(t)
	if err := a.SendBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	one := &Envelope{Type: MsgParams, Iter: 3, Vector: []float64{1, 2}}
	go func() { _ = a.SendBatch([]*Envelope{one}) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if !reflect.DeepEqual(got, one) {
		t.Fatalf("single-envelope batch mangled: %+v", got)
	}
}

func TestSendBatchRejectsNested(t *testing.T) {
	a, _ := pipePair(t)
	err := a.SendBatch([]*Envelope{
		{Type: MsgParams, Vector: []float64{1}},
		{Type: MsgBatch, Batch: []byte{1, 2, 3}},
	})
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("nested batch error = %v, want ErrMalformed", err)
	}
}

// TestTruncatedSubFrames rejects batches cut anywhere inside a sub-frame —
// the whole batch fails with ErrMalformed and the connection survives.
func TestTruncatedSubFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	envs := []*Envelope{randomEnvelope(rng), randomEnvelope(rng), randomEnvelope(rng)}
	var payload bytes.Buffer
	if err := encodeBatch(&payload, envs); err != nil {
		t.Fatal(err)
	}
	full := payload.Bytes()
	// A cut exactly at a sub-frame boundary is a (valid) shorter batch; every
	// other cut lands inside a prefix or payload and must be rejected.
	boundary := map[int]bool{}
	for off := 0; off < len(full); {
		n := int(binary.BigEndian.Uint32(full[off : off+4]))
		off += 4 + n
		boundary[off] = true
	}
	for cut := 1; cut < len(full); cut++ {
		sub, err := decodeBatch(full[:cut])
		if boundary[cut] {
			if err != nil {
				t.Fatalf("boundary cut at %d/%d: unexpected err %v", cut, len(full), err)
			}
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("cut at %d/%d: err = %v (subs=%d), want ErrMalformed", cut, len(full), err, len(sub))
		}
	}

	// Over a live connection: the malformed batch is dropped, the stream
	// stays in sync and the next frame is delivered.
	a, b := pipePair(t)
	go func() {
		_ = a.Send(&Envelope{Type: MsgBatch, Batch: full[:len(full)-3]})
		_ = a.Send(&Envelope{Type: MsgParams, Iter: 9, Vector: []float64{4}})
	}()
	if _, err := b.Recv(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("truncated batch recv err = %v, want ErrMalformed", err)
	}
	got, err := b.Recv()
	if err != nil || got.Type != MsgParams || got.Iter != 9 {
		t.Fatalf("connection poisoned after malformed batch: %+v, %v", got, err)
	}
}

func TestBatchRejectsMalformedSubFrameAndEmpty(t *testing.T) {
	// A structurally intact sub-frame that violates protocol invariants
	// (chunk index out of range) poisons the whole batch.
	bad := &Envelope{Type: MsgGradient, Vector: []float64{1}, Chunk: 5, Chunks: 2}
	var payload bytes.Buffer
	var scratch bytes.Buffer
	if err := encodeBatch(&scratch, []*Envelope{{Type: MsgParams, Vector: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	payload.Write(scratch.Bytes())
	var raw bytes.Buffer
	if err := encodeBatchUnvalidated(&raw, bad); err != nil {
		t.Fatal(err)
	}
	payload.Write(raw.Bytes())
	if _, err := decodeBatch(payload.Bytes()); !errors.Is(err, ErrMalformed) {
		t.Fatalf("invalid sub-frame: err = %v, want ErrMalformed", err)
	}

	if _, err := decodeBatch(nil); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty batch: err = %v, want ErrMalformed", err)
	}

	a, b := pipePair(t)
	go func() { _ = a.Send(&Envelope{Type: MsgBatch}) }()
	if _, err := b.Recv(); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty MsgBatch recv err = %v, want ErrMalformed", err)
	}
}

// encodeBatchUnvalidated writes one sub-frame without send-side checks, to
// craft hostile payloads.
func encodeBatchUnvalidated(buf *bytes.Buffer, e *Envelope) error {
	var scratch bytes.Buffer
	if err := gob.NewEncoder(&scratch).Encode(e); err != nil {
		return err
	}
	var prefix [4]byte
	binary.BigEndian.PutUint32(prefix[:], uint32(scratch.Len()))
	buf.Write(prefix[:])
	buf.Write(scratch.Bytes())
	return nil
}

func TestChunkJoinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range []int{1, 5, 64, 257} {
		for _, chunkLen := range []int{0, 1, 7, 64, 1000} {
			vec := make([]float64, dim)
			for i := range vec {
				vec[i] = rng.NormFloat64()
			}
			tmpl := Envelope{Iter: 4, Epoch: 2, WorkerID: 3}
			envs := ChunkGradient(tmpl, vec, chunkLen)
			if chunkLen > 0 && dim > chunkLen {
				want := (dim + chunkLen - 1) / chunkLen
				if len(envs) != want {
					t.Fatalf("dim=%d chunkLen=%d: %d chunks, want %d", dim, chunkLen, len(envs), want)
				}
			} else if len(envs) != 1 || envs[0].Chunks != 0 {
				t.Fatalf("dim=%d chunkLen=%d: expected one unchunked frame, got %d (chunks=%d)", dim, chunkLen, len(envs), envs[0].Chunks)
			}
			for _, e := range envs {
				if err := e.validate(); err != nil {
					t.Fatalf("chunk fails validation: %v", err)
				}
			}
			got, err := JoinChunks(nil, envs)
			if err != nil {
				t.Fatalf("join: %v", err)
			}
			if !reflect.DeepEqual(got, vec) {
				t.Fatalf("dim=%d chunkLen=%d: join mismatch", dim, chunkLen)
			}
		}
	}
}

func TestJoinChunksRejectsBrokenSequences(t *testing.T) {
	vec := []float64{1, 2, 3, 4, 5}
	envs := ChunkGradient(Envelope{Iter: 1, WorkerID: 2}, vec, 2)
	cases := map[string][]*Envelope{
		"nil":           nil,
		"missing chunk": envs[:2],
		"reordered":     {envs[1], envs[0], envs[2]},
		"mixed iter": {envs[0], {Type: MsgGradient, Iter: 99, WorkerID: 2,
			Chunk: 1, Chunks: 3, Vector: []float64{9}}, envs[2]},
		"extra frame for unchunked": {
			{Type: MsgGradient, Vector: []float64{1}},
			{Type: MsgGradient, Vector: []float64{2}},
		},
	}
	for name, seq := range cases {
		if _, err := JoinChunks(nil, seq); !errors.Is(err, ErrMalformed) {
			t.Fatalf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

// FuzzDecodeBatch feeds arbitrary bytes to the batch splitter: it must never
// panic, and anything it accepts must be a valid sub-frame sequence that
// re-encodes to an equivalent batch.
func FuzzDecodeBatch(f *testing.F) {
	rng := rand.New(rand.NewSource(19))
	var seed bytes.Buffer
	if err := encodeBatch(&seed, []*Envelope{randomEnvelope(rng), randomEnvelope(rng)}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 200, 1, 2, 3})
	f.Add(seed.Bytes()[:seed.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		subs, err := decodeBatch(data)
		if err != nil {
			if !errors.Is(err, ErrMalformed) {
				t.Fatalf("non-ErrMalformed rejection: %v", err)
			}
			return
		}
		if len(subs) == 0 {
			t.Fatal("accepted batch with zero sub-frames")
		}
		for i, e := range subs {
			if e.Type == MsgBatch {
				t.Fatalf("sub-frame %d is a nested batch", i)
			}
			if err := e.validate(); err != nil {
				t.Fatalf("accepted invalid sub-frame %d: %v", i, err)
			}
		}
		var re bytes.Buffer
		if err := encodeBatch(&re, subs); err != nil {
			t.Fatalf("re-encode of accepted batch failed: %v", err)
		}
		again, err := decodeBatch(re.Bytes())
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(subs, again) {
			t.Fatal("decode/encode/decode not a fixed point")
		}
	})
}

// FuzzBatchRoundTrip drives the encode→decode pair with generated envelope
// sequences: the decoded sub-frames must equal the inputs exactly.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add(int64(1), 3)
	f.Add(int64(42), 1)
	f.Add(int64(7), 12)
	f.Fuzz(func(t *testing.T, seed int64, n int) {
		if n <= 0 || n > 64 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		envs := make([]*Envelope, n)
		for i := range envs {
			envs[i] = randomEnvelope(rng)
		}
		var payload bytes.Buffer
		if err := encodeBatch(&payload, envs); err != nil {
			t.Fatalf("encode: %v", err)
		}
		got, err := decodeBatch(payload.Bytes())
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(got, envs) {
			t.Fatal("round trip changed the sub-frame sequence")
		}
	})
}

// benchUplink measures a group master's per-iteration upload of a 64k-float
// gradient in 4k-element chunks over loopback TCP: 16 separate sends versus
// one coalesced batched write, with the payload optionally quantized by the
// given codec (the receiver dequantizes transparently inside Recv, so its
// decode cost is inside the measured loop).
func benchUplink(b *testing.B, batched bool, codec grad.Codec) {
	b.Helper()
	lis, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	done := make(chan *Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		done <- c
	}()
	sender, err := Dial(lis.Addr(), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer sender.Close()
	receiver := <-done
	defer receiver.Close()

	vec := make([]float64, 64*1024)
	for i := range vec {
		vec[i] = float64(i)
	}
	frames, err := ChunkGradientQuant(Envelope{WorkerID: 1}, vec, 4*1024, codec)
	if err != nil {
		b.Fatal(err)
	}
	recvErr := make(chan error, 1)
	go func() {
		joined := make([]float64, 0, len(vec))
		var chunk []*Envelope
		for i := 0; i < b.N*len(frames); i++ {
			e, err := receiver.Recv()
			if err != nil {
				recvErr <- err
				return
			}
			chunk = append(chunk, e)
			if e.Chunks != 0 && e.Chunk != e.Chunks-1 {
				continue
			}
			var jerr error
			joined, jerr = JoinChunks(joined, chunk)
			chunk = chunk[:0]
			if jerr != nil {
				recvErr <- jerr
				return
			}
		}
		recvErr <- nil
	}()

	b.ResetTimer()
	b.ReportAllocs()
	_, _, _, bytesBefore, _, _ := Wire()
	for i := 0; i < b.N; i++ {
		if batched {
			if err := sender.SendBatch(frames); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, f := range frames {
				if err := sender.Send(f); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	if err := <-recvErr; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	// Wire bytes per uploaded gradient, measured at the socket boundary by
	// the process-wide transport counters (the receiver goroutine has fully
	// drained, so every sent byte is accounted for).
	_, _, _, bytesAfter, _, _ := Wire()
	b.ReportMetric(float64(bytesAfter-bytesBefore)/float64(b.N), "wire-B/iter")
}

func BenchmarkBatchedUplink(b *testing.B)     { benchUplink(b, true, grad.CodecRaw) }
func BenchmarkUnbatchedUplink(b *testing.B)   { benchUplink(b, false, grad.CodecRaw) }
func BenchmarkBatchedUplinkInt8(b *testing.B) { benchUplink(b, true, grad.CodecInt8) }
func BenchmarkBatchedUplinkFP16(b *testing.B) { benchUplink(b, true, grad.CodecFP16) }

// BenchmarkBatchedUplinkTraced is BenchmarkBatchedUplink with the trace
// context stamped on the upload: the trace ID plus a full set of echoed
// member phase spans riding the final chunk, exactly what every worker sends
// per iteration when telemetry is live. Its ns/op and wire-B/iter deltas
// against the untraced bench are the whole cost of trace propagation.
func BenchmarkBatchedUplinkTraced(b *testing.B) {
	lis, err := Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	done := make(chan *Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		done <- c
	}()
	sender, err := Dial(lis.Addr(), time.Second)
	if err != nil {
		b.Fatal(err)
	}
	defer sender.Close()
	receiver := <-done
	defer receiver.Close()

	vec := make([]float64, 64*1024)
	for i := range vec {
		vec[i] = float64(i)
	}
	tmpl := Envelope{
		WorkerID: 1,
		Trace:    0x0002_0001_0000_002a,
		Spans: []PhaseSpan{
			{Phase: "fetch", Seconds: 0.001},
			{Phase: "compute", Seconds: 0.042},
			{Phase: "encode", Seconds: 0.002},
			{Phase: "upload", Seconds: 0.003},
		},
	}
	frames, err := ChunkGradientQuant(tmpl, vec, 4*1024, grad.CodecRaw)
	if err != nil {
		b.Fatal(err)
	}
	recvErr := make(chan error, 1)
	go func() {
		joined := make([]float64, 0, len(vec))
		var chunk []*Envelope
		for i := 0; i < b.N*len(frames); i++ {
			e, err := receiver.Recv()
			if err != nil {
				recvErr <- err
				return
			}
			chunk = append(chunk, e)
			if e.Chunks != 0 && e.Chunk != e.Chunks-1 {
				continue
			}
			if e.Trace == 0 || len(e.Spans) != len(tmpl.Spans) {
				recvErr <- fmt.Errorf("trace context lost on the final chunk: trace %#x, %d spans", e.Trace, len(e.Spans))
				return
			}
			var jerr error
			joined, jerr = JoinChunks(joined, chunk)
			chunk = chunk[:0]
			if jerr != nil {
				recvErr <- jerr
				return
			}
		}
		recvErr <- nil
	}()

	b.ResetTimer()
	b.ReportAllocs()
	_, _, _, bytesBefore, _, _ := Wire()
	for i := 0; i < b.N; i++ {
		if err := sender.SendBatch(frames); err != nil {
			b.Fatal(err)
		}
	}
	if err := <-recvErr; err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	_, _, _, bytesAfter, _, _ := Wire()
	b.ReportMetric(float64(bytesAfter-bytesBefore)/float64(b.N), "wire-B/iter")
}
