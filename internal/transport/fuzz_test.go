package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// memConn adapts a byte buffer to net.Conn so Recv can be driven from fuzz
// data without sockets; writes vanish.
type memConn struct{ r *bytes.Reader }

func (c *memConn) Read(p []byte) (int, error)       { return c.r.Read(p) }
func (c *memConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *memConn) Close() error                     { return nil }
func (c *memConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *memConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *memConn) SetDeadline(time.Time) error      { return nil }
func (c *memConn) SetReadDeadline(time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(time.Time) error { return nil }

// encodeFrames gob-encodes a sequence of envelopes into one byte stream, the
// exact bytes Send would put on the wire.
func encodeFrames(t testing.TB, envs ...*Envelope) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	for _, e := range envs {
		if err := enc.Encode(e); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzAdoption feeds arbitrary bytes into Recv where an adoption-handshake
// frame is expected: every outcome must be a structurally valid envelope or
// an error (malformed frames typed ErrMalformed; truncated gob streams
// surface as transport errors) — never a panic, never an invalid adoption
// reaching the caller.
func FuzzAdoption(f *testing.F) {
	valid := encodeFrames(f,
		&Envelope{Type: MsgAdopt, RootGen: 2, Adopt: &Adoption{Group: 1, Epoch: 4, Members: []int{1, 2, 5}}},
		&Envelope{Type: MsgAdopt, Iter: 17, RootGen: 3, Adopt: &Adoption{Group: 1, Epoch: -1}})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(encodeFrames(f, &Envelope{Type: MsgAdopt}))
	f.Add(encodeFrames(f, &Envelope{Type: MsgAdopt, RootGen: -2, Adopt: &Adoption{}}))
	f.Add(encodeFrames(f, &Envelope{Type: MsgAdopt, Adopt: &Adoption{Group: 0, Epoch: 0, Members: []int{9, 1}}}))
	f.Add(encodeFrames(f, &Envelope{Type: MsgParams, Adopt: &Adoption{Group: 0, Epoch: 0}}))
	f.Add([]byte("not gob at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(&memConn{r: bytes.NewReader(data)})
		for {
			env, err := c.Recv()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				// Anything else must be a typed rejection or a gob decode
				// error — both leave the caller a clean error path. Keep
				// scanning only on malformed frames (the stream is still in
				// sync); a broken gob stream ends the connection.
				if errors.Is(err, ErrMalformed) {
					continue
				}
				return
			}
			if err := env.validate(); err != nil {
				t.Fatalf("Recv returned an invalid envelope: %v", err)
			}
			if env.Type == MsgAdopt {
				a := env.Adopt
				if a == nil || a.Group < 0 || a.Epoch < -1 || len(a.Members) > MaxAdoptMembers {
					t.Fatalf("Recv returned an invalid adoption: %+v", a)
				}
			}
		}
	})
}
