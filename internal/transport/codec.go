// Shared compact float-vector codec. Gradient payloads dominate every frame
// this system persists or ships — batched uploads on the wire, model
// snapshots in a checkpoint directory — so the little-endian IEEE-754 layout
// used by the batch fast path is exported here for every component that
// frames float64 vectors (internal/checkpoint reuses it verbatim for
// snapshot params and optimizer state).
package transport

import (
	"encoding/binary"
	"fmt"
	"math"
)

// AppendFloat64s appends vec's compact binary encoding (8 bytes per element,
// little-endian IEEE-754) to dst and returns the extended slice.
func AppendFloat64s(dst []byte, vec []float64) []byte {
	for _, v := range vec {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// ReadFloat64s decodes n float64s from the front of b (as written by
// AppendFloat64s) and returns the vector and the remaining bytes. Short input
// is rejected with ErrMalformed — the caller framed the payload, so a
// truncated vector means the frame is corrupt.
func ReadFloat64s(b []byte, n int) ([]float64, []byte, error) {
	if n < 0 || n > MaxVectorLen {
		return nil, nil, fmt.Errorf("%w: vector length %d", ErrMalformed, n)
	}
	if len(b) < 8*n {
		return nil, nil, fmt.Errorf("%w: %d bytes for %d float64s", ErrMalformed, len(b), n)
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out, b[8*n:], nil
}
