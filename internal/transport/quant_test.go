package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"

	"github.com/hetgc/hetgc/internal/grad"
)

// TestGradientFastPathChunkBound pins the regression where a Chunk above the
// uint32 header range passed the fast-path check and was silently truncated
// by encodeGradientFrame, decoding as the wrong chunk index. Such a frame
// must now take the gob path, where the receiver rejects the out-of-range
// chunk sequence instead of mis-joining it.
func TestGradientFastPathChunkBound(t *testing.T) {
	huge := &Envelope{Type: MsgGradient, Chunk: math.MaxUint32>>1 + 1, Chunks: 10, Vector: []float64{1}}
	if gradientFastPath(huge) {
		t.Fatal("gradientFastPath accepted Chunk above the uint32 header range")
	}
	ok := &Envelope{Type: MsgGradient, Chunk: 3, Chunks: 10, Vector: []float64{1}}
	if !gradientFastPath(ok) {
		t.Fatal("gradientFastPath rejected a plain in-range gradient")
	}

	// End to end: the oversized chunk index must reach the receiver intact
	// (and be rejected as malformed), never truncated into a plausible one.
	var payload bytes.Buffer
	if err := encodeBatch(&payload, []*Envelope{ok, huge}); err != nil {
		t.Fatal(err)
	}
	_, err := decodeBatch(payload.Bytes())
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("decodeBatch(oversized chunk index) = %v, want ErrMalformed", err)
	}
}

// TestSendBatchSingleRejectsBatch pins the regression where SendBatch's
// single-envelope shortcut skipped the nested-batch rejection, letting a
// hand-built MsgBatch envelope ship unvalidated.
func TestSendBatchSingleRejectsBatch(t *testing.T) {
	a, _ := pipePair(t)
	err := a.SendBatch([]*Envelope{{Type: MsgBatch, Batch: []byte{1, 2, 3}}})
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("SendBatch(single MsgBatch) = %v, want ErrMalformed", err)
	}
}

// TestQuantRoundTripOverWire ships a chunked gradient through a real
// connection under every codec, both batched (compact sub-frames) and as
// single gob envelopes, and checks the receiver — which only ever sees
// dequantized Vectors — reassembles it within the codec's error model.
func TestQuantRoundTripOverWire(t *testing.T) {
	vec := make([]float64, 1000)
	for i := range vec {
		vec[i] = math.Sin(float64(i)) * float64(i%17)
	}
	for _, codec := range []grad.Codec{grad.CodecRaw, grad.CodecFP16, grad.CodecInt8, grad.CodecTopK, grad.CodecDelta} {
		for _, chunkLen := range []int{0, 64} { // 0: one frame (gob envelope path); 64: batched sub-frames
			a, b := pipePair(t)
			frames, err := ChunkGradientQuant(Envelope{WorkerID: 3, Iter: 7}, vec, chunkLen, codec)
			if err != nil {
				t.Fatal(err)
			}
			if codec != grad.CodecRaw {
				for _, f := range frames {
					if len(f.Quant) == 0 || f.Codec != byte(codec) || f.Vector != nil {
						t.Fatalf("%s: frame not quantized: %+v", codec, f)
					}
				}
			}
			if err := a.SendBatch(frames); err != nil {
				t.Fatal(err)
			}
			var got []*Envelope
			for range frames {
				e, err := b.Recv()
				if err != nil {
					t.Fatal(err)
				}
				if len(e.Quant) != 0 || e.QuantLen != 0 {
					t.Fatalf("%s: Recv leaked a quantized payload above the transport", codec)
				}
				got = append(got, e)
			}
			joined, err := JoinChunks(nil, got)
			if err != nil {
				t.Fatal(err)
			}
			if len(joined) != len(vec) {
				t.Fatalf("%s: joined %d elements, want %d", codec, len(joined), len(vec))
			}
			checkCodecError(t, codec, vec, joined, chunkLen)
			ReleaseQuant(frames)
			a.Close()
			b.Close()
		}
	}
}

// checkCodecError asserts the decoded vector against the codec's error
// model: bit-exact for lossless codecs, bounded relative error for the
// quantizers, exact-or-zero for the sparsifier.
func checkCodecError(t *testing.T, codec grad.Codec, want, got []float64, chunkLen int) {
	t.Helper()
	mx := 0.0
	for _, v := range want {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	for i := range want {
		switch codec {
		case grad.CodecRaw, grad.CodecDelta:
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: element %d not bit-exact: %v != %v", codec, i, got[i], want[i])
			}
		case grad.CodecFP16:
			if math.Abs(got[i]-want[i]) > 1e-3*mx {
				t.Fatalf("fp16: element %d error %v above 1e-3·maxabs", i, math.Abs(got[i]-want[i]))
			}
		case grad.CodecInt8:
			// Per-chunk bound is maxabs/254 of the int8 scale chunk; the
			// global maxabs bound is looser but always valid.
			if math.Abs(got[i]-want[i]) > mx/254+mx*1e-6 {
				t.Fatalf("int8: element %d error %v above maxabs/254", i, math.Abs(got[i]-want[i]))
			}
		case grad.CodecTopK:
			if got[i] != 0 && math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("topk: element %d neither dropped nor exact: %v != %v", i, got[i], want[i])
			}
		}
	}
}

// TestMixedVersionRawFallback covers the un-upgraded-peer path at the frame
// level: envelopes with no codec fields (what an old peer sends) round-trip
// as raw float64 against an upgraded receiver, and a hello without a codec
// advertisement still validates.
func TestMixedVersionRawFallback(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	if err := a.Send(&Envelope{Type: MsgHello, WorkerID: HelloNewWorker}); err != nil {
		t.Fatal(err)
	}
	hello, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(hello.Codecs) != 0 || hello.Codec != 0 {
		t.Fatalf("legacy hello grew codec fields: %+v", hello)
	}
	vec := []float64{1.5, -2.25, 0, 3.75}
	if err := a.Send(&Envelope{Type: MsgGradient, Iter: 1, WorkerID: 4, Vector: vec}); err != nil {
		t.Fatal(err)
	}
	e, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	for i := range vec {
		if math.Float64bits(e.Vector[i]) != math.Float64bits(vec[i]) {
			t.Fatalf("raw gradient element %d not bit-exact", i)
		}
	}
	// An upgraded peer's hello with an advertisement also validates.
	adv := &Envelope{Type: MsgHello, WorkerID: HelloNewWorker, Codecs: grad.AdvertiseCodecs()}
	if err := adv.validate(); err != nil {
		t.Fatalf("advertised hello rejected: %v", err)
	}
}

// TestQuantCorruptionRejected sends hostile quantized frames — unknown codec
// bytes, payloads that do not decode, advertisements on the wrong message
// types — and requires a typed ErrMalformed for each, with the connection
// still usable afterwards where the stream stays in sync.
func TestQuantCorruptionRejected(t *testing.T) {
	goodQuant := func() ([]byte, int) {
		q, err := grad.AppendQuantized(nil, grad.CodecFP16, []float64{1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		return q, 3
	}
	q, n := goodQuant()

	hostile := []struct {
		name string
		env  *Envelope
	}{
		{"unknown codec byte", &Envelope{Type: MsgGradient, Codec: 99, Quant: q, QuantLen: n}},
		{"raw codec with quant payload", &Envelope{Type: MsgGradient, Codec: 0, Quant: q, QuantLen: n}},
		{"undecodable payload", &Envelope{Type: MsgGradient, Codec: byte(grad.CodecInt8), Quant: q, QuantLen: n}},
		{"truncated payload", &Envelope{Type: MsgGradient, Codec: byte(grad.CodecFP16), Quant: q[:5], QuantLen: n}},
		{"both payloads", &Envelope{Type: MsgGradient, Codec: byte(grad.CodecFP16), Quant: q, QuantLen: n, Vector: []float64{1}}},
		{"zero quant length", &Envelope{Type: MsgGradient, Codec: byte(grad.CodecFP16), Quant: q}},
		{"oversized quant payload", &Envelope{Type: MsgGradient, Codec: byte(grad.CodecDelta), Quant: make([]byte, 200), QuantLen: 2}},
		{"advertisement on gradient", &Envelope{Type: MsgGradient, Vector: []float64{1}, Codecs: []byte{1}}},
		{"unknown advertised codec", &Envelope{Type: MsgHello, WorkerID: 1, Codecs: []byte{7}}},
		{"codec byte on params", &Envelope{Type: MsgParams, Vector: []float64{1}, Codec: byte(grad.CodecInt8)}},
	}
	for _, tc := range hostile {
		a, b := pipePair(t)
		if err := a.Send(tc.env); err != nil {
			t.Fatalf("%s: send failed locally: %v", tc.name, err)
		}
		if _, err := b.Recv(); !errors.Is(err, ErrMalformed) {
			t.Fatalf("%s: Recv = %v, want ErrMalformed", tc.name, err)
		}
		a.Close()
		b.Close()
	}

	// Batch-framed corruption: a 0x02 sub-frame with an unknown gradient
	// codec byte, and one whose payload fails to dequantize.
	valid, _ := ChunkGradientQuant(Envelope{WorkerID: 1}, []float64{1, 2, 3, 4}, 2, grad.CodecFP16)
	var payload bytes.Buffer
	if err := encodeBatch(&payload, valid); err != nil {
		t.Fatal(err)
	}
	raw := payload.Bytes()
	flip := func(mutate func(b []byte)) error {
		cp := append([]byte(nil), raw...)
		mutate(cp)
		_, err := decodeBatch(cp)
		return err
	}
	if err := flip(func(b []byte) { b[5] = 0x07 }); !errors.Is(err, ErrMalformed) {
		t.Fatalf("unknown sub-frame gradient codec: %v, want ErrMalformed", err)
	}
	if err := flip(func(b []byte) {
		// Shrink the first sub-frame's declared QuantLen so the fp16 payload
		// no longer matches its element count.
		binary.LittleEndian.PutUint32(b[4+26:], 9)
	}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("mismatched quant length: %v, want ErrMalformed", err)
	}
	if _, err := decodeBatch(raw[:len(raw)-3]); !errors.Is(err, ErrMalformed) {
		t.Fatal("truncated quant sub-frame accepted")
	}
}

// TestWireCodecCounters checks the per-codec gradient counters move with the
// payload that actually crossed the wire, raw and quantized.
func TestWireCodecCounters(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	vec := make([]float64, 256)
	for i := range vec {
		vec[i] = float64(i)
	}
	_, rawOutBefore, _, rawBytesOutBefore := WireCodec(byte(grad.CodecRaw))
	int8InBefore, _, int8BytesInBefore, _ := WireCodec(byte(grad.CodecInt8))

	frames, err := ChunkGradientQuant(Envelope{WorkerID: 1}, vec, 64, grad.CodecInt8)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendBatch(frames); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(&Envelope{Type: MsgGradient, WorkerID: 1, Vector: vec}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(frames)+1; i++ {
		if _, err := b.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	_, rawOut, _, rawBytesOut := WireCodec(byte(grad.CodecRaw))
	if rawOut-rawOutBefore < 1 || rawBytesOut-rawBytesOutBefore < uint64(8*len(vec)) {
		t.Fatalf("raw out counters did not advance: frames %d bytes %d", rawOut-rawOutBefore, rawBytesOut-rawBytesOutBefore)
	}
	int8In, _, int8BytesIn, _ := WireCodec(byte(grad.CodecInt8))
	if int8In-int8InBefore < uint64(len(frames)) || int8BytesIn == int8BytesInBefore {
		t.Fatalf("int8 in counters did not advance: frames %d", int8In-int8InBefore)
	}
	if fi, fo, bi, bo := WireCodec(200); fi|fo|bi|bo != 0 {
		t.Fatal("out-of-range codec reads nonzero")
	}
}

// FuzzQuantizedFrame feeds arbitrary bytes into Recv as a batch payload
// where quantized gradient sub-frames are expected: every outcome must be a
// fully dequantized, structurally valid envelope or a typed rejection —
// never a panic, never a quantized payload escaping the transport.
func FuzzQuantizedFrame(f *testing.F) {
	vec := []float64{1.5, -0.25, 3, 0, -7.125, 2, 2, 2}
	for _, codec := range []grad.Codec{grad.CodecFP16, grad.CodecInt8, grad.CodecTopK, grad.CodecDelta} {
		frames, err := ChunkGradientQuant(Envelope{WorkerID: 2, Iter: 5}, vec, 3, codec)
		if err != nil {
			f.Fatal(err)
		}
		var payload bytes.Buffer
		if err := encodeBatch(&payload, frames); err != nil {
			f.Fatal(err)
		}
		batch := append([]byte(nil), payload.Bytes()...)
		f.Add(encodeFrames(f, &Envelope{Type: MsgBatch, Batch: batch}))
	}
	f.Add(encodeFrames(f, &Envelope{Type: MsgGradient, Codec: byte(grad.CodecDelta), Quant: []byte{0, 0}, QuantLen: 2}))
	f.Add(encodeFrames(f, &Envelope{Type: MsgGradient, Codec: 99, Quant: []byte{1}, QuantLen: 1}))
	f.Add(encodeFrames(f, &Envelope{Type: MsgHello, WorkerID: 1, Codecs: grad.AdvertiseCodecs()}))
	f.Add([]byte{0x02, 0xff, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(&memConn{r: bytes.NewReader(data)})
		for {
			env, err := c.Recv()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					return
				}
				if errors.Is(err, ErrMalformed) {
					continue
				}
				return
			}
			if err := env.validate(); err != nil {
				t.Fatalf("Recv returned an invalid envelope: %v", err)
			}
			if len(env.Quant) != 0 || env.QuantLen != 0 {
				t.Fatalf("Recv leaked a quantized payload: %+v", env)
			}
			if len(env.Vector) > MaxVectorLen {
				t.Fatalf("Recv returned an oversized vector (%d elements)", len(env.Vector))
			}
		}
	})
}
