package transport

import (
	"bytes"
	"errors"
	"testing"
)

func TestPartitionFrameRoundTrip(t *testing.T) {
	client, server := pipePair(t)
	req := &Envelope{Type: MsgPartitionReq, Part: 3}
	if err := client.Send(req); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgPartitionReq || got.Part != 3 {
		t.Fatalf("got %v part %d, want partition-req part 3", got.Type, got.Part)
	}

	blob := bytes.Repeat([]byte{0xAB, 0x01, 0x7F}, 100)
	frames := ChunkBlob(Envelope{Part: 3, RootGen: 2}, blob, 64)
	if len(frames) != (len(blob)+63)/64 {
		t.Fatalf("ChunkBlob produced %d frames", len(frames))
	}
	for _, f := range frames {
		if err := server.Send(f); err != nil {
			t.Fatal(err)
		}
	}
	var recvd []*Envelope
	for range frames {
		e, err := client.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if e.RootGen != 2 {
			t.Fatalf("chunk lost RootGen: %d", e.RootGen)
		}
		recvd = append(recvd, e)
	}
	joined, err := JoinBlobChunks(recvd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(joined, blob) {
		t.Fatalf("reassembled blob differs: %d vs %d bytes", len(joined), len(blob))
	}
}

func TestChunkBlobSmallPayloadIsSingleChunk(t *testing.T) {
	frames := ChunkBlob(Envelope{Part: 1}, []byte("tiny"), 1<<16)
	if len(frames) != 1 || frames[0].Chunks != 1 || frames[0].Chunk != 0 {
		t.Fatalf("small blob: got %d frames, chunks=%d", len(frames), frames[0].Chunks)
	}
	if got, err := JoinBlobChunks(frames); err != nil || string(got) != "tiny" {
		t.Fatalf("join: %q, %v", got, err)
	}
}

func TestPartitionValidation(t *testing.T) {
	bad := []*Envelope{
		{Type: MsgPartitionReq, Part: -1},
		{Type: MsgPartitionReq, Part: MaxPartIndex + 1},
		{Type: MsgPartitionReq, Vector: []float64{1}},
		{Type: MsgPartitionReq, Chunks: 2, Chunk: 0},
		{Type: MsgGradient, Part: 4, Vector: []float64{1}},                  // partition index on a non-data-plane frame
		{Type: MsgHello, WorkerID: -1, Blob: []byte{1}},                     // blob on a non-partition frame
		{Type: MsgPartition, Part: 1, Chunks: 1, Chunk: 0},                  // chunked data frame with empty blob
		{Type: MsgPartition, Part: 1, Blob: []byte{1}},                      // data without chunk framing
		{Type: MsgPartition, Part: 1, Chunks: 2, Chunk: 2, Blob: []byte{1}}, // chunk out of range
	}
	client, server := pipePair(t)
	for i, e := range bad {
		if err := e.validate(); err == nil {
			t.Fatalf("case %d (%v): validate accepted invalid frame", i, e.Type)
		} else if !errors.Is(err, ErrMalformed) {
			t.Fatalf("case %d: error %v does not wrap ErrMalformed", i, err)
		}
		_ = client // frames rejected before any wire use
	}
	// The not-served marker is valid and survives the wire.
	marker := &Envelope{Type: MsgPartition, Part: 7}
	if err := marker.validate(); err != nil {
		t.Fatalf("not-served marker rejected: %v", err)
	}
	if err := client.Send(marker); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgPartition || got.Part != 7 || got.Chunks != 0 || len(got.Blob) != 0 {
		t.Fatalf("marker mangled: %+v", got)
	}
}

func TestPartitionFramesInBatch(t *testing.T) {
	client, server := pipePair(t)
	frames := ChunkBlob(Envelope{Part: 2}, bytes.Repeat([]byte{7}, 50), 16)
	if err := client.SendBatch(frames); err != nil {
		t.Fatal(err)
	}
	var got []*Envelope
	for range frames {
		e, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	joined, err := JoinBlobChunks(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(joined, bytes.Repeat([]byte{7}, 50)) {
		t.Fatal("batched partition chunks mangled")
	}
}
