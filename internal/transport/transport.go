// Package transport implements the wire protocol between the master and the
// workers: gob-encoded envelopes over TCP (or any net.Conn). The protocol is
// deliberately small — assignment, parameter broadcast, coded-gradient
// upload, shutdown — mirroring the BSP gradient-coding loop of the paper,
// plus the elastic control-plane extensions: per-iteration telemetry uploads
// and epoch-versioned reassignment for mid-training strategy migration.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"math"
	"net"
	"time"

	"github.com/hetgc/hetgc/internal/grad"
)

// MsgType enumerates protocol messages.
type MsgType int

// Protocol message types.
const (
	// MsgHello is sent by a worker right after connecting. An elastic worker
	// sets WorkerID to its previous member ID to resume its slot after a
	// reconnect, or to -1 (HelloNewWorker) to request a fresh one.
	MsgHello MsgType = iota + 1
	// MsgAssign carries a worker's data-partition assignment and coding row.
	MsgAssign
	// MsgParams broadcasts model parameters for one iteration.
	MsgParams
	// MsgGradient uploads a worker's coded gradient for one iteration.
	MsgGradient
	// MsgShutdown tells a worker to exit cleanly.
	MsgShutdown
	// MsgTelemetry uploads a worker's per-iteration timing telemetry to the
	// elastic control plane (compute seconds, partitions processed).
	MsgTelemetry
	// MsgReassign migrates a worker to a new coding strategy: it carries
	// (Epoch, Assignment) and atomically supersedes every earlier epoch.
	MsgReassign
	// MsgBatch coalesces several sub-frames into one write: its Batch payload
	// is a sequence of length-prefixed, individually gob-encoded envelopes.
	// Recv unpacks batches transparently, so receivers never see this type.
	MsgBatch
	// MsgAdopt is the group-master adoption handshake. A restartable group
	// master opens its uplink with MsgAdopt carrying its Adoption (group
	// index, current epoch base, admitted members); the root replies with
	// MsgAdopt carrying its RootGen and the iteration to serve next, so a
	// surviving group master attaches to a restarted or promoted root
	// without being respawned.
	MsgAdopt
	// MsgPartitionReq opens (or continues) a data-plane session: a worker
	// requests the training-data shard with global index Part. A connection
	// whose FIRST frame is MsgPartitionReq is a data-plane session for its
	// whole life — it never joins the membership.
	MsgPartitionReq
	// MsgPartition answers a MsgPartitionReq with the CRC-framed encoded
	// dataset in Blob, split across Chunks sub-frames (Chunk of Chunks, to be
	// reassembled in order). A reply with Chunks == 0 and an empty Blob means
	// the master does not serve that partition.
	MsgPartition
)

// HelloNewWorker is the MsgHello WorkerID requesting a fresh member slot.
const HelloNewWorker = -1

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgAssign:
		return "assign"
	case MsgParams:
		return "params"
	case MsgGradient:
		return "gradient"
	case MsgShutdown:
		return "shutdown"
	case MsgTelemetry:
		return "telemetry"
	case MsgReassign:
		return "reassign"
	case MsgBatch:
		return "batch"
	case MsgAdopt:
		return "adopt"
	case MsgPartitionReq:
		return "partition-req"
	case MsgPartition:
		return "partition"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Assignment is the master → worker task description.
type Assignment struct {
	// WorkerID is the worker's index in the coding strategy.
	WorkerID int
	// Partitions are the data partitions this worker computes.
	Partitions []int
	// RowCoeffs are the coding coefficients b_i over those partitions,
	// aligned with Partitions.
	RowCoeffs []float64
	// K is the global partition count.
	K int
	// S is the straggler budget (informational).
	S int
}

// Adoption is the MsgAdopt payload: the group master's side of the
// handshake describes the group it brings (its epoch base and admitted
// members, for membership reconciliation against the root's durable state);
// the root's ack reuses the struct with just the group index, its authority
// carried by the envelope's RootGen and Iter.
type Adoption struct {
	// Group is the coding-group index.
	Group int
	// Epoch is the group's current plan epoch base (-1 before any plan).
	Epoch int
	// Members are the member IDs the group has admitted, ascending.
	Members []int
}

// PhaseSpan is one compact member-local phase timing record (fetch,
// compute, encode, upload) piggybacked upstream on a gradient upload so the
// root can stitch per-member child spans into its iteration trace. Seconds
// must be finite and non-negative; Phase names are short label values.
type PhaseSpan struct {
	Phase   string
	Seconds float64
}

// Telemetry is a worker's per-iteration timing report, the raw input to the
// elastic control plane's throughput estimators.
type Telemetry struct {
	// ComputeSeconds is the wall time the worker spent computing and encoding
	// its partial gradients this iteration.
	ComputeSeconds float64
	// UploadSeconds is the wall time spent serialising the gradient upload
	// (0 when the worker does not measure it).
	UploadSeconds float64
	// Partitions is the number of data partitions processed.
	Partitions int
}

// Envelope is the single message frame exchanged on the wire.
type Envelope struct {
	Type     MsgType
	Iter     int
	WorkerID int
	// Epoch versions the coding strategy the frame belongs to. The master
	// bumps it on every migration; gradients tagged with a stale epoch are
	// rejected before decode.
	Epoch int
	// RootGen is the root's lease generation — the HA fencing token. The
	// root stamps it on every downlink frame and group masters echo it on
	// every group-sum upload, so frames from (or encoded under) a deposed
	// root are rejected typed instead of silently applied. 0 means the run
	// is not lease-fenced (legacy single-root operation).
	RootGen int
	// Chunk/Chunks split one large Vector across several sub-frames of a
	// batch: a chunked MsgGradient carries piece Chunk of Chunks, to be
	// concatenated in order by the receiver (JoinChunks). Chunks == 0 means
	// the frame is unchunked.
	Chunk, Chunks int
	Assign        *Assignment
	Vector        []float64 // parameters (MsgParams) or coded gradient (MsgGradient)
	Telemetry     *Telemetry
	// Adopt is the MsgAdopt payload.
	Adopt *Adoption
	// Batch is the MsgBatch payload: length-prefixed gob-encoded sub-frames.
	Batch []byte
	// Part is the global partition index of a data-plane frame
	// (MsgPartitionReq / MsgPartition); 0 otherwise.
	Part int
	// Blob is the MsgPartition payload: one piece of the CRC-framed encoded
	// dataset (see internal/dataplane).
	Blob []byte
	// Codecs advertises the sender's supported non-raw gradient codecs in a
	// handshake frame (MsgHello / MsgAdopt). A peer that predates codec
	// negotiation sends no advertisement — gob simply omits the unknown
	// field — and is served raw float64.
	Codecs []byte
	// Codec is the gradient codec byte (grad.Codec): on a handshake ack it
	// is the master's chosen codec for the connection; on a MsgGradient it
	// tags the Quant payload's encoding. 0 (CodecRaw) everywhere else.
	Codec byte
	// Quant is a quantized gradient payload of QuantLen elements, encoded
	// with Codec; mutually exclusive with Vector. Recv dequantizes it
	// transparently, so receivers above the transport always see Vector.
	Quant    []byte
	QuantLen int
	// Trace is the per-iteration trace-context identifier: the root derives
	// it from (root generation, epoch, iteration), stamps it on every
	// parameter broadcast, and members echo it on their uploads so span
	// records stitch to the right iteration even across migrations and
	// failovers. 0 means no trace context (a peer predating propagation —
	// gob omits the unknown field).
	Trace uint64
	// Spans carries the sender's member-local phase timing records,
	// piggybacked on an upload frame (the final chunk of a chunked upload).
	// Bounded by MaxSpans; legal only on MsgGradient and MsgTelemetry.
	Spans []PhaseSpan
}

// Errors returned by the transport layer.
var (
	// ErrClosed is returned on use of a closed connection.
	ErrClosed = errors.New("transport: connection closed")
	// ErrMalformed is returned by Recv for frames that violate protocol
	// invariants (mismatched assignment arrays, negative K/S, absurd vector
	// lengths); such frames never reach decode.
	ErrMalformed = errors.New("transport: malformed envelope")
)

// MaxVectorLen bounds the length of any Vector accepted by Recv, far above
// any real model dimension. Note this is an application-layer sanity check:
// gob has already decoded (and allocated) the frame by the time it runs, so
// it rejects absurd frames before they reach the runtime but does not bound
// the decoder's own allocation.
const MaxVectorLen = 1 << 30

// MaxAdoptMembers bounds the member list of an adoption handshake.
const MaxAdoptMembers = 1 << 20

// MaxBlobLen bounds the byte length of any data-plane Blob piece accepted by
// Recv (the same application-layer sanity check as MaxVectorLen).
const MaxBlobLen = 1 << 30

// MaxPartIndex bounds the partition index of a data-plane frame, far above
// any real partition count.
const MaxPartIndex = 1 << 30

// MaxCodecList bounds a handshake's codec advertisement, above any codec set
// a real peer version could support.
const MaxCodecList = 16

// maxQuantBytesPerElem bounds a quantized payload's size relative to its
// element count: delta's worst case is a 10-byte uvarint per element, plus a
// small per-payload header allowance.
const maxQuantBytesPerElem = 10

// MaxSpans bounds the phase-span records piggybacked on one upload frame —
// far above the handful of member-local phases a real sender times.
const MaxSpans = 16

// maxSpanPhaseLen bounds one span's phase name (they are metric label
// values, not free text).
const maxSpanPhaseLen = 64

// validate checks the structural invariants of a received envelope.
func (e *Envelope) validate() error {
	if e.Type < MsgHello || e.Type > MsgPartition {
		return fmt.Errorf("%w: unknown message type %d", ErrMalformed, int(e.Type))
	}
	if e.Iter < 0 || e.Epoch < 0 {
		return fmt.Errorf("%w: %v iter=%d epoch=%d", ErrMalformed, e.Type, e.Iter, e.Epoch)
	}
	if e.RootGen < 0 {
		return fmt.Errorf("%w: %v root generation %d", ErrMalformed, e.Type, e.RootGen)
	}
	if e.Part < 0 || e.Part > MaxPartIndex {
		return fmt.Errorf("%w: %v partition index %d", ErrMalformed, e.Type, e.Part)
	}
	if e.Part != 0 && e.Type != MsgPartitionReq && e.Type != MsgPartition {
		return fmt.Errorf("%w: %v carries a partition index", ErrMalformed, e.Type)
	}
	if !grad.Codec(e.Codec).Valid() {
		return fmt.Errorf("%w: %v unknown gradient codec %d", ErrMalformed, e.Type, e.Codec)
	}
	if e.Codec != 0 && e.Type != MsgHello && e.Type != MsgAdopt && e.Type != MsgGradient {
		return fmt.Errorf("%w: %v carries gradient codec %s", ErrMalformed, e.Type, grad.Codec(e.Codec))
	}
	if len(e.Codecs) > MaxCodecList {
		return fmt.Errorf("%w: %v advertises %d codecs (cap %d)", ErrMalformed, e.Type, len(e.Codecs), MaxCodecList)
	}
	if len(e.Codecs) > 0 && e.Type != MsgHello && e.Type != MsgAdopt {
		return fmt.Errorf("%w: %v carries a codec advertisement", ErrMalformed, e.Type)
	}
	for _, c := range e.Codecs {
		if !grad.Codec(c).Valid() {
			return fmt.Errorf("%w: %v advertises unknown codec %d", ErrMalformed, e.Type, c)
		}
	}
	if len(e.Quant) > 0 || e.QuantLen != 0 {
		if e.Type != MsgGradient {
			return fmt.Errorf("%w: %v carries a quantized payload", ErrMalformed, e.Type)
		}
		if e.Codec == 0 {
			return fmt.Errorf("%w: quantized gradient without a codec byte", ErrMalformed)
		}
		if len(e.Quant) == 0 {
			return fmt.Errorf("%w: quantized gradient of %d elements with no payload", ErrMalformed, e.QuantLen)
		}
		if e.QuantLen < 1 || e.QuantLen > MaxVectorLen {
			return fmt.Errorf("%w: quantized gradient length %d", ErrMalformed, e.QuantLen)
		}
		if len(e.Quant) > maxQuantBytesPerElem*e.QuantLen+16 {
			return fmt.Errorf("%w: quantized payload %d B for %d elements", ErrMalformed, len(e.Quant), e.QuantLen)
		}
		if len(e.Vector) != 0 {
			return fmt.Errorf("%w: gradient with both raw and quantized payloads", ErrMalformed)
		}
	}
	if len(e.Spans) > 0 {
		if e.Type != MsgGradient && e.Type != MsgTelemetry {
			return fmt.Errorf("%w: %v carries phase spans", ErrMalformed, e.Type)
		}
		if len(e.Spans) > MaxSpans {
			return fmt.Errorf("%w: %v carries %d phase spans (cap %d)", ErrMalformed, e.Type, len(e.Spans), MaxSpans)
		}
		if e.Chunks > 0 && e.Chunk != e.Chunks-1 {
			return fmt.Errorf("%w: phase spans on chunk %d of %d (final chunk only)", ErrMalformed, e.Chunk, e.Chunks)
		}
		for _, sp := range e.Spans {
			if sp.Phase == "" || len(sp.Phase) > maxSpanPhaseLen {
				return fmt.Errorf("%w: phase span name %q", ErrMalformed, sp.Phase)
			}
			if sp.Seconds < 0 || math.IsNaN(sp.Seconds) || math.IsInf(sp.Seconds, 0) {
				return fmt.Errorf("%w: phase span %q seconds %v", ErrMalformed, sp.Phase, sp.Seconds)
			}
		}
	}
	if e.Type == MsgBatch {
		if len(e.Batch) == 0 {
			return fmt.Errorf("%w: empty batch", ErrMalformed)
		}
		if e.Assign != nil || e.Vector != nil || e.Telemetry != nil || e.Adopt != nil || e.Blob != nil {
			return fmt.Errorf("%w: batch with non-batch payload", ErrMalformed)
		}
		return nil
	}
	if len(e.Batch) > 0 {
		return fmt.Errorf("%w: %v carries a batch payload", ErrMalformed, e.Type)
	}
	if e.Chunks < 0 || (e.Chunks == 0 && e.Chunk != 0) ||
		(e.Chunks > 0 && (e.Chunk < 0 || e.Chunk >= e.Chunks)) {
		return fmt.Errorf("%w: %v chunk %d of %d", ErrMalformed, e.Type, e.Chunk, e.Chunks)
	}
	if e.Chunks > 0 && e.Type != MsgGradient && e.Type != MsgPartition {
		return fmt.Errorf("%w: %v cannot be chunked", ErrMalformed, e.Type)
	}
	if len(e.Vector) > MaxVectorLen {
		return fmt.Errorf("%w: %v vector length %d exceeds cap %d", ErrMalformed, e.Type, len(e.Vector), MaxVectorLen)
	}
	if len(e.Blob) > MaxBlobLen {
		return fmt.Errorf("%w: %v blob length %d exceeds cap %d", ErrMalformed, e.Type, len(e.Blob), MaxBlobLen)
	}
	if len(e.Blob) > 0 && e.Type != MsgPartition {
		return fmt.Errorf("%w: %v carries a blob payload", ErrMalformed, e.Type)
	}
	if e.Type == MsgPartitionReq && (e.Assign != nil || e.Vector != nil || e.Telemetry != nil || e.Chunks != 0) {
		return fmt.Errorf("%w: partition-req with payload", ErrMalformed)
	}
	if e.Type == MsgPartition {
		if e.Chunks > 0 && len(e.Blob) == 0 {
			return fmt.Errorf("%w: partition chunk %d of %d with empty blob", ErrMalformed, e.Chunk, e.Chunks)
		}
		if e.Chunks == 0 && len(e.Blob) > 0 {
			return fmt.Errorf("%w: partition data without chunk framing", ErrMalformed)
		}
	}
	if a := e.Assign; a != nil {
		if len(a.Partitions) != len(a.RowCoeffs) {
			return fmt.Errorf("%w: assignment has %d partitions but %d coefficients", ErrMalformed, len(a.Partitions), len(a.RowCoeffs))
		}
		if a.K <= 0 || a.S < 0 {
			return fmt.Errorf("%w: assignment k=%d s=%d", ErrMalformed, a.K, a.S)
		}
		if len(a.Partitions) > a.K {
			return fmt.Errorf("%w: assignment holds %d partitions with k=%d", ErrMalformed, len(a.Partitions), a.K)
		}
		for _, p := range a.Partitions {
			if p < 0 || p >= a.K {
				return fmt.Errorf("%w: assignment partition %d outside [0,%d)", ErrMalformed, p, a.K)
			}
		}
	}
	if (e.Type == MsgAssign || e.Type == MsgReassign) && e.Assign == nil {
		return fmt.Errorf("%w: %v without assignment payload", ErrMalformed, e.Type)
	}
	if e.Type == MsgAdopt && e.Adopt == nil {
		return fmt.Errorf("%w: adopt without adoption payload", ErrMalformed)
	}
	if e.Type != MsgAdopt && e.Adopt != nil {
		return fmt.Errorf("%w: %v carries an adoption payload", ErrMalformed, e.Type)
	}
	if a := e.Adopt; a != nil {
		if a.Group < 0 {
			return fmt.Errorf("%w: adoption group %d", ErrMalformed, a.Group)
		}
		if a.Epoch < -1 {
			return fmt.Errorf("%w: adoption epoch %d", ErrMalformed, a.Epoch)
		}
		if len(a.Members) > MaxAdoptMembers {
			return fmt.Errorf("%w: adoption with %d members exceeds cap %d", ErrMalformed, len(a.Members), MaxAdoptMembers)
		}
		prev := 0
		for _, m := range a.Members {
			if m <= prev {
				return fmt.Errorf("%w: adoption members not ascending positive IDs (%d after %d)", ErrMalformed, m, prev)
			}
			prev = m
		}
	}
	if t := e.Telemetry; t != nil {
		if t.Partitions < 0 || t.ComputeSeconds < 0 || t.UploadSeconds < 0 {
			return fmt.Errorf("%w: negative telemetry %+v", ErrMalformed, *t)
		}
	}
	return nil
}

// Conn is a gob-framed bidirectional message stream. Send and Recv are each
// safe for one concurrent user (one reader, one writer).
type Conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	// pending holds sub-frames of the last received batch still owed to Recv
	// callers (only the reader touches it).
	pending []*Envelope
}

// NewConn wraps a net.Conn. All traffic is routed through a byte-counting
// shim feeding the process-wide Wire counters.
func NewConn(raw net.Conn) *Conn {
	counted := countingConn{Conn: raw}
	return &Conn{raw: raw, enc: gob.NewEncoder(counted), dec: gob.NewDecoder(counted)}
}

// Dial connects to a master at addr.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}

// Send writes one envelope.
func (c *Conn) Send(e *Envelope) error {
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("transport send %v: %w", e.Type, err)
	}
	wire.framesOut.Add(1)
	if e.Type == MsgBatch {
		wire.batches.Add(1)
	}
	if e.Type == MsgGradient {
		countCodecOut(e)
	}
	return nil
}

// dequantize resolves a quantized gradient payload into its Vector so
// receivers above the transport always see plain float64 gradients.
// Undecodable payloads are protocol violations (ErrMalformed).
func (e *Envelope) dequantize() error {
	if len(e.Quant) == 0 {
		return nil
	}
	vec, err := grad.Dequantize(grad.Codec(e.Codec), e.Quant, e.QuantLen)
	if err != nil {
		return fmt.Errorf("%w: %s gradient payload: %v", ErrMalformed, grad.Codec(e.Codec), err)
	}
	e.Vector = vec
	e.Quant, e.QuantLen = nil, 0
	return nil
}

// Recv reads one envelope and validates its protocol invariants; frames that
// fail validation are rejected with an error wrapping ErrMalformed so they
// never reach the decode path. Batches (SendBatch) are unpacked
// transparently: their sub-frames are returned one per Recv call, in send
// order, and a batch with any malformed or truncated sub-frame is rejected
// whole — the outer frame was fully consumed, so the stream stays in sync.
func (c *Conn) Recv() (*Envelope, error) {
	if len(c.pending) > 0 {
		e := c.pending[0]
		c.pending = c.pending[1:]
		return e, nil
	}
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("transport recv: %w", err)
	}
	wire.framesIn.Add(1)
	if err := e.validate(); err != nil {
		wire.malformed.Add(1)
		return nil, err
	}
	if e.Type == MsgBatch {
		subs, err := decodeBatch(e.Batch)
		if err != nil {
			wire.malformed.Add(1)
			return nil, err
		}
		c.pending = subs[1:]
		return subs[0], nil
	}
	if e.Type == MsgGradient {
		countCodecIn(&e)
		if err := e.dequantize(); err != nil {
			wire.malformed.Add(1)
			return nil, err
		}
	}
	return &e, nil
}

// SetDeadline bounds both reads and writes.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// SetWriteDeadline bounds writes only — senders with a concurrent reader on
// the same connection use this so a stalled peer fails the Send without
// poisoning the reader's blocking Recv.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.raw.SetWriteDeadline(t) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// RemoteAddr exposes the peer address (for logs).
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// Listener accepts worker connections for a master.
type Listener struct {
	l net.Listener
}

// Listen starts listening on addr ("127.0.0.1:0" picks a free port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address, e.g. to hand to workers.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next worker connection.
func (l *Listener) Accept() (*Conn, error) {
	raw, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport accept: %w", err)
	}
	return NewConn(raw), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
