// Package transport implements the wire protocol between the master and the
// workers: gob-encoded envelopes over TCP (or any net.Conn). The protocol is
// deliberately small — assignment, parameter broadcast, coded-gradient
// upload, shutdown — mirroring the BSP gradient-coding loop of the paper.
package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"time"
)

// MsgType enumerates protocol messages.
type MsgType int

// Protocol message types.
const (
	// MsgHello is sent by a worker right after connecting.
	MsgHello MsgType = iota + 1
	// MsgAssign carries a worker's data-partition assignment and coding row.
	MsgAssign
	// MsgParams broadcasts model parameters for one iteration.
	MsgParams
	// MsgGradient uploads a worker's coded gradient for one iteration.
	MsgGradient
	// MsgShutdown tells a worker to exit cleanly.
	MsgShutdown
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgAssign:
		return "assign"
	case MsgParams:
		return "params"
	case MsgGradient:
		return "gradient"
	case MsgShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Assignment is the master → worker task description.
type Assignment struct {
	// WorkerID is the worker's index in the coding strategy.
	WorkerID int
	// Partitions are the data partitions this worker computes.
	Partitions []int
	// RowCoeffs are the coding coefficients b_i over those partitions,
	// aligned with Partitions.
	RowCoeffs []float64
	// K is the global partition count.
	K int
	// S is the straggler budget (informational).
	S int
}

// Envelope is the single message frame exchanged on the wire.
type Envelope struct {
	Type     MsgType
	Iter     int
	WorkerID int
	Assign   *Assignment
	Vector   []float64 // parameters (MsgParams) or coded gradient (MsgGradient)
}

// ErrClosed is returned on use of a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a gob-framed bidirectional message stream. Send and Recv are each
// safe for one concurrent user (one reader, one writer).
type Conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

// NewConn wraps a net.Conn.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// Dial connects to a master at addr.
func Dial(addr string, timeout time.Duration) (*Conn, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("transport dial %s: %w", addr, err)
	}
	return NewConn(raw), nil
}

// Send writes one envelope.
func (c *Conn) Send(e *Envelope) error {
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("transport send %v: %w", e.Type, err)
	}
	return nil
}

// Recv reads one envelope.
func (c *Conn) Recv() (*Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("transport recv: %w", err)
	}
	return &e, nil
}

// SetDeadline bounds both reads and writes.
func (c *Conn) SetDeadline(t time.Time) error { return c.raw.SetDeadline(t) }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.raw.Close() }

// RemoteAddr exposes the peer address (for logs).
func (c *Conn) RemoteAddr() net.Addr { return c.raw.RemoteAddr() }

// Listener accepts worker connections for a master.
type Listener struct {
	l net.Listener
}

// Listen starts listening on addr ("127.0.0.1:0" picks a free port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address, e.g. to hand to workers.
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next worker connection.
func (l *Listener) Accept() (*Conn, error) {
	raw, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport accept: %w", err)
	}
	return NewConn(raw), nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
