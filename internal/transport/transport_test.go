package transport

import (
	"sync"
	"testing"
	"time"
)

func TestMsgTypeString(t *testing.T) {
	cases := map[MsgType]string{
		MsgHello:    "hello",
		MsgAssign:   "assign",
		MsgParams:   "params",
		MsgGradient: "gradient",
		MsgShutdown: "shutdown",
		MsgType(42): "MsgType(42)",
	}
	for mt, want := range cases {
		if mt.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(mt), mt.String(), want)
		}
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		env, err := conn.Recv()
		if err != nil {
			serverErr = err
			return
		}
		// Echo back with a gradient payload.
		serverErr = conn.Send(&Envelope{
			Type:     MsgGradient,
			Iter:     env.Iter,
			WorkerID: 3,
			Vector:   []float64{1.5, -2.5},
		})
	}()

	client, err := Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	assign := &Assignment{WorkerID: 3, Partitions: []int{1, 2}, RowCoeffs: []float64{0.5, -1}, K: 7, S: 1}
	if err := client.Send(&Envelope{Type: MsgAssign, Iter: 9, Assign: assign}); err != nil {
		t.Fatal(err)
	}
	got, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
	if got.Type != MsgGradient || got.Iter != 9 || got.WorkerID != 3 {
		t.Fatalf("echo = %+v", got)
	}
	if len(got.Vector) != 2 || got.Vector[0] != 1.5 || got.Vector[1] != -2.5 {
		t.Fatalf("vector = %v", got.Vector)
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan *Envelope, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		env, err := conn.Recv()
		if err != nil {
			done <- nil
			return
		}
		done <- env
	}()
	client, err := Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	in := &Assignment{WorkerID: 1, Partitions: []int{5, 6, 0}, RowCoeffs: []float64{1, 2, 3}, K: 7, S: 2}
	if err := client.Send(&Envelope{Type: MsgAssign, Assign: in}); err != nil {
		t.Fatal(err)
	}
	env := <-done
	if env == nil || env.Assign == nil {
		t.Fatal("assignment lost")
	}
	out := env.Assign
	if out.WorkerID != 1 || out.K != 7 || out.S != 2 {
		t.Fatalf("assign = %+v", out)
	}
	for i, p := range in.Partitions {
		if out.Partitions[i] != p || out.RowCoeffs[i] != in.RowCoeffs[i] {
			t.Fatalf("payload corrupted: %+v", out)
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("expected dial failure")
	}
}

func TestDeadlineExpires(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Hold the connection open without sending.
		time.Sleep(500 * time.Millisecond)
		conn.Close()
	}()
	client, err := Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err == nil {
		t.Fatal("expected deadline error")
	}
}
