package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMsgTypeString(t *testing.T) {
	cases := map[MsgType]string{
		MsgHello:        "hello",
		MsgAssign:       "assign",
		MsgParams:       "params",
		MsgGradient:     "gradient",
		MsgShutdown:     "shutdown",
		MsgTelemetry:    "telemetry",
		MsgReassign:     "reassign",
		MsgBatch:        "batch",
		MsgAdopt:        "adopt",
		MsgPartitionReq: "partition-req",
		MsgPartition:    "partition",
		MsgType(42):     "MsgType(42)",
	}
	for mt, want := range cases {
		if mt.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(mt), mt.String(), want)
		}
	}
}

// pipePair returns two connected transport conns over loopback TCP.
func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan *Conn, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			accepted <- nil
			return
		}
		accepted <- conn
	}()
	client, err := Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestRecvRejectsMalformed(t *testing.T) {
	bad := []struct {
		name string
		env  *Envelope
	}{
		{"unknown type", &Envelope{Type: MsgType(99)}},
		{"negative iter", &Envelope{Type: MsgParams, Iter: -1}},
		{"negative epoch", &Envelope{Type: MsgParams, Epoch: -3}},
		{"assign array mismatch", &Envelope{Type: MsgAssign, Assign: &Assignment{
			Partitions: []int{0, 1}, RowCoeffs: []float64{1}, K: 4, S: 1}}},
		{"assign bad k", &Envelope{Type: MsgAssign, Assign: &Assignment{
			Partitions: []int{0}, RowCoeffs: []float64{1}, K: 0, S: 1}}},
		{"assign negative s", &Envelope{Type: MsgAssign, Assign: &Assignment{
			Partitions: []int{0}, RowCoeffs: []float64{1}, K: 4, S: -1}}},
		{"assign partition out of range", &Envelope{Type: MsgAssign, Assign: &Assignment{
			Partitions: []int{7}, RowCoeffs: []float64{1}, K: 4, S: 1}}},
		{"assign overfull", &Envelope{Type: MsgAssign, Assign: &Assignment{
			Partitions: []int{0, 1, 0}, RowCoeffs: []float64{1, 1, 1}, K: 2, S: 0}}},
		{"reassign without payload", &Envelope{Type: MsgReassign}},
		{"assign without payload", &Envelope{Type: MsgAssign}},
		{"negative telemetry", &Envelope{Type: MsgTelemetry, Telemetry: &Telemetry{Partitions: -1}}},
		{"negative root generation", &Envelope{Type: MsgParams, RootGen: -1}},
		{"adopt without payload", &Envelope{Type: MsgAdopt}},
		{"adopt on non-adopt frame", &Envelope{Type: MsgParams, Adopt: &Adoption{Group: 0, Epoch: -1}}},
		{"adopt negative group", &Envelope{Type: MsgAdopt, Adopt: &Adoption{Group: -1, Epoch: -1}}},
		{"adopt impossible epoch", &Envelope{Type: MsgAdopt, Adopt: &Adoption{Group: 0, Epoch: -2}}},
		{"adopt unsorted members", &Envelope{Type: MsgAdopt, Adopt: &Adoption{Group: 0, Epoch: 0, Members: []int{3, 2}}}},
		{"adopt zero member id", &Envelope{Type: MsgAdopt, Adopt: &Adoption{Group: 0, Epoch: 0, Members: []int{0, 1}}}},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			client, server := pipePair(t)
			if err := client.Send(tc.env); err != nil {
				t.Fatal(err)
			}
			if _, err := server.Recv(); !errors.Is(err, ErrMalformed) {
				t.Fatalf("Recv err = %v, want ErrMalformed", err)
			}
			// The gob stream stays in sync: a valid frame after the rejected
			// one is still received.
			if err := client.Send(&Envelope{Type: MsgParams, Iter: 1, Vector: []float64{1}}); err != nil {
				t.Fatal(err)
			}
			env, err := server.Recv()
			if err != nil || env.Type != MsgParams || env.Iter != 1 {
				t.Fatalf("follow-up frame = %+v, err %v", env, err)
			}
		})
	}
}

func TestTelemetryReassignRoundTrip(t *testing.T) {
	client, server := pipePair(t)
	tel := &Telemetry{ComputeSeconds: 0.125, UploadSeconds: 0.001, Partitions: 3}
	if err := client.Send(&Envelope{Type: MsgTelemetry, Iter: 4, Epoch: 2, WorkerID: 1, Telemetry: tel}); err != nil {
		t.Fatal(err)
	}
	env, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != MsgTelemetry || env.Epoch != 2 || env.Telemetry == nil ||
		env.Telemetry.ComputeSeconds != 0.125 || env.Telemetry.Partitions != 3 {
		t.Fatalf("telemetry = %+v (%+v)", env, env.Telemetry)
	}
	assign := &Assignment{WorkerID: 1, Partitions: []int{0, 2}, RowCoeffs: []float64{1, -1}, K: 5, S: 1}
	if err := server.Send(&Envelope{Type: MsgReassign, Epoch: 3, Assign: assign}); err != nil {
		t.Fatal(err)
	}
	env, err = client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != MsgReassign || env.Epoch != 3 || env.Assign == nil || env.Assign.K != 5 {
		t.Fatalf("reassign = %+v", env)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	var serverErr error
	go func() {
		defer wg.Done()
		conn, err := l.Accept()
		if err != nil {
			serverErr = err
			return
		}
		defer conn.Close()
		env, err := conn.Recv()
		if err != nil {
			serverErr = err
			return
		}
		// Echo back with a gradient payload.
		serverErr = conn.Send(&Envelope{
			Type:     MsgGradient,
			Iter:     env.Iter,
			WorkerID: 3,
			Vector:   []float64{1.5, -2.5},
		})
	}()

	client, err := Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	assign := &Assignment{WorkerID: 3, Partitions: []int{1, 2}, RowCoeffs: []float64{0.5, -1}, K: 7, S: 1}
	if err := client.Send(&Envelope{Type: MsgAssign, Iter: 9, Assign: assign}); err != nil {
		t.Fatal(err)
	}
	got, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if serverErr != nil {
		t.Fatal(serverErr)
	}
	if got.Type != MsgGradient || got.Iter != 9 || got.WorkerID != 3 {
		t.Fatalf("echo = %+v", got)
	}
	if len(got.Vector) != 2 || got.Vector[0] != 1.5 || got.Vector[1] != -2.5 {
		t.Fatalf("vector = %v", got.Vector)
	}
}

func TestAssignmentRoundTrip(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan *Envelope, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		env, err := conn.Recv()
		if err != nil {
			done <- nil
			return
		}
		done <- env
	}()
	client, err := Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	in := &Assignment{WorkerID: 1, Partitions: []int{5, 6, 0}, RowCoeffs: []float64{1, 2, 3}, K: 7, S: 2}
	if err := client.Send(&Envelope{Type: MsgAssign, Assign: in}); err != nil {
		t.Fatal(err)
	}
	env := <-done
	if env == nil || env.Assign == nil {
		t.Fatal("assignment lost")
	}
	out := env.Assign
	if out.WorkerID != 1 || out.K != 7 || out.S != 2 {
		t.Fatalf("assign = %+v", out)
	}
	for i, p := range in.Partitions {
		if out.Partitions[i] != p || out.RowCoeffs[i] != in.RowCoeffs[i] {
			t.Fatalf("payload corrupted: %+v", out)
		}
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("expected dial failure")
	}
}

func TestDeadlineExpires(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		// Hold the connection open without sending.
		time.Sleep(500 * time.Millisecond)
		conn.Close()
	}()
	client, err := Dial(l.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.SetDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); err == nil {
		t.Fatal("expected deadline error")
	}
}
