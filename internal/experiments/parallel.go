package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// forEachCell runs fn(0) … fn(n-1) across a worker pool sized to the
// machine, so sweep regeneration scales with cores. Each index is one
// independent sweep cell with its own seeded rng, so execution order cannot
// affect results: callers write cell outputs into index-addressed slots and
// get bit-identical tables regardless of parallelism. The first error wins
// and is returned after all workers drain.
func forEachCell(n int, fn func(i int) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
