// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI): Table II cluster configurations, Fig. 2 delay sweeps on
// Cluster-A, Fig. 3 per-cluster iteration times, Fig. 4 loss-versus-time
// curves including the SSP baseline, Fig. 5 computing-resource usage, plus
// the ablations called out in DESIGN.md (throughput mis-estimation and
// replication-factor sweeps).
//
// Each runner returns structured rows and can render the same table the
// paper reports. Everything is deterministic given the config seed.
package experiments

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/hetgc/hetgc/internal/cluster"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/estimate"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/sim"
	"github.com/hetgc/hetgc/internal/straggler"
)

// ErrBadConfig marks invalid experiment configurations.
var ErrBadConfig = errors.New("experiments: invalid config")

// DefaultSchemes is the scheme lineup of Figs. 2, 3 and 5.
func DefaultSchemes() []core.Kind {
	return []core.Kind{core.Naive, core.Cyclic, core.HeterAware, core.GroupBased}
}

// ChooseK picks the partition count for proportional schemes: the smallest
// multiple of Σc_i/(s+1) that is at least m keeps the ideal loads integral
// (n_i = c_i exactly, in vCPU units), mirroring the paper's assumption that
// k(s+1)·c_i/Σc_j is an integer.
func ChooseK(cl *cluster.Cluster, s int) int {
	total := 0
	for _, w := range cl.Workers {
		total += w.VCPUs
	}
	m := cl.M()
	if total%(s+1) == 0 {
		base := total / (s + 1)
		k := base
		for k < m {
			k += base
		}
		return k
	}
	// Fall back to a k that at least dominates the worker count; the
	// largest-remainder rounding in the allocator absorbs the slack.
	k := total
	for k < m {
		k += total
	}
	return k
}

// BuildStrategy constructs the given scheme for a cluster. Proportional
// schemes use estimates (possibly noisy); cyclic and naive ignore them.
func BuildStrategy(kind core.Kind, cl *cluster.Cluster, estimates []float64, k, s int, rng *rand.Rand) (*core.Strategy, error) {
	switch kind {
	case core.Naive:
		return core.NewNaive(cl.M())
	case core.Cyclic:
		return core.NewCyclic(cl.M(), s, rng)
	case core.FractionalRepetition:
		return core.NewFractionalRepetition(cl.M(), s)
	case core.HeterAware:
		return core.NewHeterAware(estimates, k, s, rng)
	case core.GroupBased:
		return core.NewGroupBased(estimates, k, s, rng)
	default:
		return nil, fmt.Errorf("%w: unknown scheme %v", ErrBadConfig, kind)
	}
}

// SchemeOutcome is one scheme's aggregate in a sweep cell.
type SchemeOutcome struct {
	Kind core.Kind
	// AvgIterTime is the mean iteration time in seconds (+Inf when every
	// iteration failed, e.g. naive under faults).
	AvgIterTime float64
	// P95IterTime is the 95th percentile iteration time.
	P95IterTime float64
	// Usage is the Fig. 5 computing-resource usage.
	Usage float64
	// Failed counts undecodable iterations.
	Failed int
}

// DelaySweepConfig parameterises Fig. 2 (and the per-cluster runs of Fig. 3,
// which are delay sweeps with a single point).
type DelaySweepConfig struct {
	// Cluster under test (Fig. 2 uses Cluster-A).
	Cluster *cluster.Cluster
	// S is the straggler budget (Fig. 2a: 1, Fig. 2b: 2).
	S int
	// Delays is the injected extra delay sweep; math.Inf(1) = fault.
	Delays []float64
	// Iterations per cell.
	Iterations int
	// Schemes to compare (DefaultSchemes when nil).
	Schemes []core.Kind
	// FluctuationStd is runtime jitter (mean-one lognormal sigma).
	FluctuationStd float64
	// CommOverhead is fixed per-iteration communication seconds.
	CommOverhead float64
	// Seed drives all randomness.
	Seed int64
}

// DelayRow is one sweep row: outcomes per scheme at one injected delay.
type DelayRow struct {
	Delay    float64
	Outcomes []SchemeOutcome
}

// RunDelaySweep regenerates Fig. 2: for each injected delay, each scheme's
// average iteration time on the cluster with S artificial stragglers.
func RunDelaySweep(cfg DelaySweepConfig) ([]DelayRow, error) {
	if cfg.Cluster == nil || cfg.Iterations <= 0 || cfg.S < 0 || len(cfg.Delays) == 0 {
		return nil, fmt.Errorf("%w: cluster/iterations/delays required", ErrBadConfig)
	}
	schemes := cfg.Schemes
	if schemes == nil {
		schemes = DefaultSchemes()
	}
	truth := cfg.Cluster.Throughputs()
	k := ChooseK(cfg.Cluster, cfg.S)
	rows := make([]DelayRow, len(cfg.Delays))
	for di, delay := range cfg.Delays {
		rows[di] = DelayRow{Delay: delay, Outcomes: make([]SchemeOutcome, len(schemes))}
	}
	// Every (delay, scheme) cell is independent and carries its own seeded
	// rng, so the sweep fans out across cores with deterministic results.
	err := forEachCell(len(cfg.Delays)*len(schemes), func(cell int) error {
		di, si := cell/len(schemes), cell%len(schemes)
		kind := schemes[si]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*di+si)))
		st, err := BuildStrategy(kind, cfg.Cluster, truth, k, cfg.S, rng)
		if err != nil {
			return fmt.Errorf("%v: %w", kind, err)
		}
		res, err := sim.Run(sim.Config{
			Strategy:       st,
			Throughputs:    truth,
			Injector:       straggler.Fixed{Count: cfg.S, Delay: rows[di].Delay, Rng: rng},
			Iterations:     cfg.Iterations,
			FluctuationStd: cfg.FluctuationStd,
			CommOverhead:   cfg.CommOverhead,
			Rng:            rng,
		})
		if err != nil {
			return fmt.Errorf("%v: %w", kind, err)
		}
		rows[di].Outcomes[si] = SchemeOutcome{
			Kind:        kind,
			AvgIterTime: res.AvgIterTime(),
			P95IterTime: res.Summary.P95,
			Usage:       res.Usage,
			Failed:      res.Failed,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// DelayTable renders a Fig. 2-style table: one row per delay, one column per
// scheme's average iteration time.
func DelayTable(rows []DelayRow) *metrics.Table {
	if len(rows) == 0 {
		return &metrics.Table{}
	}
	header := []string{"delay(s)"}
	for _, o := range rows[0].Outcomes {
		header = append(header, o.Kind.String())
	}
	t := &metrics.Table{Header: header}
	for _, r := range rows {
		cells := []string{metrics.F(r.Delay)}
		for _, o := range r.Outcomes {
			cells = append(cells, metrics.F(o.AvgIterTime))
		}
		t.AddRow(cells...)
	}
	return t
}

// ClusterSweepConfig parameterises Fig. 3: per-cluster iteration times under
// the cluster's natural heterogeneity plus transient interference.
type ClusterSweepConfig struct {
	// Clusters under test (Fig. 3: B, C, D).
	Clusters []*cluster.Cluster
	// S is the straggler budget.
	S int
	// Iterations per cell.
	Iterations int
	// Schemes to compare (DefaultSchemes when nil).
	Schemes []core.Kind
	// TransientProb/TransientMean model background interference.
	TransientProb, TransientMean float64
	// FluctuationStd is runtime jitter.
	FluctuationStd float64
	// CommOverhead is per-iteration communication seconds.
	CommOverhead float64
	// Seed drives all randomness.
	Seed int64
}

// ClusterRow is one cluster's outcomes per scheme.
type ClusterRow struct {
	Cluster  string
	M        int
	Outcomes []SchemeOutcome
}

// RunClusterSweep regenerates Fig. 3 (and, via the Usage field, Fig. 5).
func RunClusterSweep(cfg ClusterSweepConfig) ([]ClusterRow, error) {
	if len(cfg.Clusters) == 0 || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("%w: clusters/iterations required", ErrBadConfig)
	}
	schemes := cfg.Schemes
	if schemes == nil {
		schemes = DefaultSchemes()
	}
	rows := make([]ClusterRow, len(cfg.Clusters))
	for ci, cl := range cfg.Clusters {
		rows[ci] = ClusterRow{Cluster: cl.Name, M: cl.M(), Outcomes: make([]SchemeOutcome, len(schemes))}
	}
	// Fan the (cluster, scheme) cells across cores; per-cell seeded rngs keep
	// the tables deterministic.
	err := forEachCell(len(cfg.Clusters)*len(schemes), func(cell int) error {
		ci, si := cell/len(schemes), cell%len(schemes)
		cl := cfg.Clusters[ci]
		kind := schemes[si]
		truth := cl.Throughputs()
		k := ChooseK(cl, cfg.S)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*ci+si)))
		st, err := BuildStrategy(kind, cl, truth, k, cfg.S, rng)
		if err != nil {
			return fmt.Errorf("%s/%v: %w", cl.Name, kind, err)
		}
		inj := straggler.Transient{Prob: cfg.TransientProb, Mean: cfg.TransientMean, Rng: rng}
		res, err := sim.Run(sim.Config{
			Strategy:       st,
			Throughputs:    truth,
			Injector:       inj,
			Iterations:     cfg.Iterations,
			FluctuationStd: cfg.FluctuationStd,
			CommOverhead:   cfg.CommOverhead,
			Rng:            rng,
		})
		if err != nil {
			return fmt.Errorf("%s/%v: %w", cl.Name, kind, err)
		}
		rows[ci].Outcomes[si] = SchemeOutcome{
			Kind:        kind,
			AvgIterTime: res.AvgIterTime(),
			P95IterTime: res.Summary.P95,
			Usage:       res.Usage,
			Failed:      res.Failed,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ClusterTable renders Fig. 3 as average iteration time per cluster/scheme.
func ClusterTable(rows []ClusterRow) *metrics.Table {
	if len(rows) == 0 {
		return &metrics.Table{}
	}
	header := []string{"cluster", "m"}
	for _, o := range rows[0].Outcomes {
		header = append(header, o.Kind.String())
	}
	t := &metrics.Table{Header: header}
	for _, r := range rows {
		cells := []string{r.Cluster, fmt.Sprintf("%d", r.M)}
		for _, o := range r.Outcomes {
			cells = append(cells, metrics.F(o.AvgIterTime))
		}
		t.AddRow(cells...)
	}
	return t
}

// UsageTable renders Fig. 5 from cluster-sweep rows: resource usage per
// cluster/scheme.
func UsageTable(rows []ClusterRow) *metrics.Table {
	if len(rows) == 0 {
		return &metrics.Table{}
	}
	header := []string{"cluster"}
	for _, o := range rows[0].Outcomes {
		header = append(header, o.Kind.String())
	}
	t := &metrics.Table{Header: header}
	for _, r := range rows {
		cells := []string{r.Cluster}
		for _, o := range r.Outcomes {
			cells = append(cells, metrics.F(o.Usage))
		}
		t.AddRow(cells...)
	}
	return t
}

// Table2 renders the paper's Table II cluster configurations.
func Table2() *metrics.Table {
	clusters := []*cluster.Cluster{
		cluster.ClusterA(), cluster.ClusterB(), cluster.ClusterC(), cluster.ClusterD(),
	}
	t := &metrics.Table{Header: []string{"vCPUs", "Cluster-A", "Cluster-B", "Cluster-C", "Cluster-D"}}
	sizes := []int{2, 4, 8, 12, 16}
	for _, size := range sizes {
		cells := []string{fmt.Sprintf("%d-vCPUs", size)}
		for _, cl := range clusters {
			n := 0
			for _, w := range cl.Workers {
				if w.VCPUs == size {
					n++
				}
			}
			cells = append(cells, fmt.Sprintf("%d", n))
		}
		t.AddRow(cells...)
	}
	total := []string{"total"}
	for _, cl := range clusters {
		total = append(total, fmt.Sprintf("%d", cl.M()))
	}
	t.AddRow(total...)
	return t
}

// SpeedupVsCyclic returns heter-aware's speedup over cyclic at the given
// sweep row — the paper's headline "up to 3×" metric at the fault point.
func SpeedupVsCyclic(row DelayRow) (float64, error) {
	var cyclic, heter float64
	var haveC, haveH bool
	for _, o := range row.Outcomes {
		switch o.Kind {
		case core.Cyclic:
			cyclic, haveC = o.AvgIterTime, true
		case core.HeterAware:
			heter, haveH = o.AvgIterTime, true
		}
	}
	if !haveC || !haveH {
		return 0, fmt.Errorf("%w: row lacks cyclic/heter outcomes", ErrBadConfig)
	}
	if heter <= 0 || math.IsInf(cyclic, 1) {
		return math.Inf(1), nil
	}
	return cyclic / heter, nil
}

// MisestimationConfig parameterises the group-based ablation: strategies are
// built from noisy throughput estimates but simulated against the truth.
type MisestimationConfig struct {
	Cluster    *cluster.Cluster
	S          int
	Epsilons   []float64 // relative estimation error sweep
	Iterations int
	Trials     int // independent noisy estimates per epsilon
	Seed       int64
}

// MisestimationRow compares heter-aware and group-based at one error level.
type MisestimationRow struct {
	Epsilon   float64
	HeterAvg  float64
	GroupAvg  float64
	GroupGain float64 // HeterAvg / GroupAvg
}

// RunMisestimation regenerates the §V motivation: as estimates degrade, the
// group fast path (which only needs *some* group to finish) loses less than
// pure heter-aware decoding.
func RunMisestimation(cfg MisestimationConfig) ([]MisestimationRow, error) {
	if cfg.Cluster == nil || cfg.Iterations <= 0 || len(cfg.Epsilons) == 0 {
		return nil, fmt.Errorf("%w: cluster/iterations/epsilons required", ErrBadConfig)
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 3
	}
	truth := cfg.Cluster.Throughputs()
	k := ChooseK(cfg.Cluster, cfg.S)
	// Each (epsilon, trial) cell runs both schemes on one shared rng stream
	// (order matters within the cell); cells fan out across cores and reduce
	// deterministically afterwards.
	type trialOutcome struct{ heter, group float64 }
	outcomes := make([]trialOutcome, len(cfg.Epsilons)*trials)
	err := forEachCell(len(outcomes), func(cell int) error {
		ei, trial := cell/trials, cell%trials
		eps := cfg.Epsilons[ei]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(100*ei+trial)))
		est := estimate.Misestimate(truth, eps, rng)
		for _, kind := range []core.Kind{core.HeterAware, core.GroupBased} {
			st, err := BuildStrategy(kind, cfg.Cluster, est, k, cfg.S, rng)
			if err != nil {
				return fmt.Errorf("eps=%v %v: %w", eps, kind, err)
			}
			res, err := sim.Run(sim.Config{
				Strategy:       st,
				Throughputs:    truth,
				Injector:       straggler.Fixed{Count: cfg.S, Delay: 5, Rng: rng},
				Iterations:     cfg.Iterations,
				FluctuationStd: 0.05,
				Rng:            rng,
			})
			if err != nil {
				return fmt.Errorf("eps=%v %v: %w", eps, kind, err)
			}
			if kind == core.HeterAware {
				outcomes[cell].heter = res.AvgIterTime()
			} else {
				outcomes[cell].group = res.AvgIterTime()
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]MisestimationRow, 0, len(cfg.Epsilons))
	for ei, eps := range cfg.Epsilons {
		var heterSum, groupSum float64
		for trial := 0; trial < trials; trial++ {
			heterSum += outcomes[ei*trials+trial].heter
			groupSum += outcomes[ei*trials+trial].group
		}
		row := MisestimationRow{
			Epsilon:  eps,
			HeterAvg: heterSum / float64(trials),
			GroupAvg: groupSum / float64(trials),
		}
		if row.GroupAvg > 0 {
			row.GroupGain = row.HeterAvg / row.GroupAvg
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MisestimationTable renders the ablation rows.
func MisestimationTable(rows []MisestimationRow) *metrics.Table {
	t := &metrics.Table{Header: []string{"eps", "heter-aware", "group-based", "heter/group"}}
	for _, r := range rows {
		t.AddRow(metrics.F(r.Epsilon), metrics.F(r.HeterAvg), metrics.F(r.GroupAvg), metrics.F(r.GroupGain))
	}
	return t
}

// ReplicationSweepConfig sweeps the straggler budget s (ablation).
type ReplicationSweepConfig struct {
	Cluster    *cluster.Cluster
	SValues    []int
	Delay      float64
	Iterations int
	Seed       int64
}

// ReplicationRow is one s value's outcomes.
type ReplicationRow struct {
	S        int
	Outcomes []SchemeOutcome
}

// RunReplicationSweep measures the cost of extra replication: higher s
// tolerates more stragglers but multiplies every worker's load by (s+1).
func RunReplicationSweep(cfg ReplicationSweepConfig) ([]ReplicationRow, error) {
	if cfg.Cluster == nil || cfg.Iterations <= 0 || len(cfg.SValues) == 0 {
		return nil, fmt.Errorf("%w: cluster/iterations/svalues required", ErrBadConfig)
	}
	truth := cfg.Cluster.Throughputs()
	schemes := []core.Kind{core.Cyclic, core.HeterAware, core.GroupBased}
	rows := make([]ReplicationRow, len(cfg.SValues))
	for si, s := range cfg.SValues {
		rows[si] = ReplicationRow{S: s, Outcomes: make([]SchemeOutcome, len(schemes))}
	}
	err := forEachCell(len(cfg.SValues)*len(schemes), func(cell int) error {
		si, scIdx := cell/len(schemes), cell%len(schemes)
		s := cfg.SValues[si]
		kind := schemes[scIdx]
		k := ChooseK(cfg.Cluster, s)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(100*si+scIdx)))
		st, err := BuildStrategy(kind, cfg.Cluster, truth, k, s, rng)
		if err != nil {
			return fmt.Errorf("s=%d %v: %w", s, kind, err)
		}
		res, err := sim.Run(sim.Config{
			Strategy:       st,
			Throughputs:    truth,
			Injector:       straggler.Fixed{Count: s, Delay: cfg.Delay, Rng: rng},
			Iterations:     cfg.Iterations,
			FluctuationStd: 0.05,
			Rng:            rng,
		})
		if err != nil {
			return fmt.Errorf("s=%d %v: %w", s, kind, err)
		}
		rows[si].Outcomes[scIdx] = SchemeOutcome{
			Kind:        kind,
			AvgIterTime: res.AvgIterTime(),
			Usage:       res.Usage,
			Failed:      res.Failed,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// ReplicationTable renders the replication ablation.
func ReplicationTable(rows []ReplicationRow) *metrics.Table {
	if len(rows) == 0 {
		return &metrics.Table{}
	}
	header := []string{"s"}
	for _, o := range rows[0].Outcomes {
		header = append(header, o.Kind.String())
	}
	t := &metrics.Table{Header: header}
	for _, r := range rows {
		cells := []string{fmt.Sprintf("%d", r.S)}
		for _, o := range r.Outcomes {
			cells = append(cells, metrics.F(o.AvgIterTime))
		}
		t.AddRow(cells...)
	}
	return t
}

// ensure ml import is used by fig4.go even if refactored.
var _ = ml.MeanLoss
