package experiments

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"github.com/hetgc/hetgc/internal/cluster"
	"github.com/hetgc/hetgc/internal/core"
)

func TestChooseKIntegralLoads(t *testing.T) {
	// Cluster-A: Σ vCPUs = 48; s=1 → k=24, so k(s+1)=48 and n_i = vCPUs_i.
	a := cluster.ClusterA()
	if k := ChooseK(a, 1); k != 24 {
		t.Fatalf("ChooseK(A,1) = %d, want 24", k)
	}
	if k := ChooseK(a, 2); k != 16 {
		t.Fatalf("ChooseK(A,2) = %d, want 16", k)
	}
	// k must always cover the worker count.
	d := cluster.ClusterD()
	if k := ChooseK(d, 1); k < d.M() {
		t.Fatalf("ChooseK(D,1) = %d < m=%d", k, d.M())
	}
}

func TestBuildStrategyAllKinds(t *testing.T) {
	cl := cluster.ClusterA()
	truth := cl.Throughputs()
	k := ChooseK(cl, 1)
	for _, kind := range []core.Kind{core.Naive, core.Cyclic, core.HeterAware, core.GroupBased} {
		st, err := BuildStrategy(kind, cl, truth, k, 1, newTestRng(1))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if st.Kind() != kind {
			t.Fatalf("kind = %v, want %v", st.Kind(), kind)
		}
	}
	if _, err := BuildStrategy(core.FractionalRepetition, cl, truth, k, 1, newTestRng(1)); err != nil {
		t.Fatalf("frac-rep on 8 workers s=1: %v", err)
	}
	if _, err := BuildStrategy(core.Kind(99), cl, truth, k, 1, newTestRng(1)); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown kind err = %v", err)
	}
}

func TestRunDelaySweepFig2Shapes(t *testing.T) {
	rows, err := RunDelaySweep(DelaySweepConfig{
		Cluster:    cluster.ClusterA(),
		S:          1,
		Delays:     []float64{0, 2, 6, math.Inf(1)},
		Iterations: 30,
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(r DelayRow, kind core.Kind) SchemeOutcome {
		for _, o := range r.Outcomes {
			if o.Kind == kind {
				return o
			}
		}
		t.Fatalf("missing %v", kind)
		return SchemeOutcome{}
	}
	// Shape 1: naive grows with delay and fails at fault.
	naive0 := get(rows[0], core.Naive).AvgIterTime
	naive6 := get(rows[2], core.Naive).AvgIterTime
	if naive6 < naive0+1.5 {
		t.Fatalf("naive must absorb delay: %v vs %v", naive0, naive6)
	}
	if !math.IsInf(get(rows[3], core.Naive).AvgIterTime, 1) {
		t.Fatal("naive must fail at fault")
	}
	// Shape 2: coded schemes are flat across delays (robust).
	for _, kind := range []core.Kind{core.Cyclic, core.HeterAware, core.GroupBased} {
		t0 := get(rows[0], kind).AvgIterTime
		tf := get(rows[3], kind).AvgIterTime
		if math.IsInf(tf, 1) {
			t.Fatalf("%v failed at fault", kind)
		}
		if tf > 2.5*t0 {
			t.Fatalf("%v not robust: %v -> %v", kind, t0, tf)
		}
	}
	// Shape 3: heter-aware and group-based beat cyclic at every delay.
	for _, r := range rows {
		cy := get(r, core.Cyclic).AvgIterTime
		he := get(r, core.HeterAware).AvgIterTime
		gr := get(r, core.GroupBased).AvgIterTime
		if he >= cy || gr >= cy {
			t.Fatalf("delay %v: heter %v / group %v should beat cyclic %v", r.Delay, he, gr, cy)
		}
	}
	// Shape 4: the headline speedup at the fault point is large (paper: 3×).
	sp, err := SpeedupVsCyclic(rows[3])
	if err != nil {
		t.Fatal(err)
	}
	if sp < 2 {
		t.Fatalf("fault speedup vs cyclic = %v, want ≥ 2 (paper reports up to 3x)", sp)
	}
}

func TestRunDelaySweepS2(t *testing.T) {
	rows, err := RunDelaySweep(DelaySweepConfig{
		Cluster:    cluster.ClusterA(),
		S:          2,
		Delays:     []float64{0, math.Inf(1)},
		Iterations: 15,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for _, o := range r.Outcomes {
			if o.Kind == core.Naive {
				continue
			}
			if o.Failed > 0 {
				t.Fatalf("%v failed %d iterations at delay %v with s=2", o.Kind, o.Failed, r.Delay)
			}
		}
	}
}

func TestDelayTableRendering(t *testing.T) {
	rows, err := RunDelaySweep(DelaySweepConfig{
		Cluster:    cluster.ClusterA(),
		S:          1,
		Delays:     []float64{0},
		Iterations: 3,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := DelayTable(rows).String()
	for _, want := range []string{"delay(s)", "naive", "cyclic", "heter-aware", "group-based"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunClusterSweepFig3Shapes(t *testing.T) {
	rows, err := RunClusterSweep(ClusterSweepConfig{
		Clusters:       []*cluster.Cluster{cluster.ClusterB(), cluster.ClusterC()},
		S:              1,
		Iterations:     15,
		TransientProb:  0.02,
		TransientMean:  2,
		FluctuationStd: 0.05,
		Seed:           11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		var naive, cyclic, heter, group float64
		for _, o := range r.Outcomes {
			switch o.Kind {
			case core.Naive:
				naive = o.AvgIterTime
			case core.Cyclic:
				cyclic = o.AvgIterTime
			case core.HeterAware:
				heter = o.AvgIterTime
			case core.GroupBased:
				group = o.AvgIterTime
			}
		}
		if heter >= cyclic || group >= cyclic {
			t.Fatalf("%s: heter %v / group %v should beat cyclic %v", r.Cluster, heter, group, cyclic)
		}
		if heter >= naive {
			t.Fatalf("%s: heter %v should beat naive %v under interference", r.Cluster, heter, naive)
		}
	}
	// Fig. 5 usage ordering on each cluster.
	for _, r := range rows {
		var usage = map[core.Kind]float64{}
		for _, o := range r.Outcomes {
			usage[o.Kind] = o.Usage
		}
		if usage[core.HeterAware] <= usage[core.Naive] {
			t.Fatalf("%s: heter usage %v should exceed naive %v", r.Cluster, usage[core.HeterAware], usage[core.Naive])
		}
		if usage[core.GroupBased] <= usage[core.Naive] {
			t.Fatalf("%s: group usage %v should exceed naive %v", r.Cluster, usage[core.GroupBased], usage[core.Naive])
		}
	}
	if out := ClusterTable(rows).String(); !strings.Contains(out, "Cluster-B") {
		t.Fatalf("cluster table:\n%s", out)
	}
	if out := UsageTable(rows).String(); !strings.Contains(out, "Cluster-C") {
		t.Fatalf("usage table:\n%s", out)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"Cluster-A", "Cluster-D", "2-vCPUs", "16-vCPUs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table2 missing %q:\n%s", want, out)
		}
	}
}

func TestRunLossCurvesFig4Shapes(t *testing.T) {
	lc, err := RunLossCurves(LossCurveConfig{
		Cluster:             cluster.ClusterA(),
		S:                   1,
		Iterations:          40,
		SamplesPerPartition: 10,
		FeatureDim:          5,
		Classes:             3,
		TransientProb:       0.1,
		TransientMean:       3,
		Seed:                21,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 coded schemes + ssp.
	if len(lc.Curves) != 5 {
		t.Fatalf("curves = %d", len(lc.Curves))
	}
	// Every scheme's loss must drop.
	for i := range lc.Curves {
		pts := lc.Curves[i].Points
		if len(pts) < 2 {
			t.Fatalf("%s: too few points", lc.Curves[i].Name)
		}
		if pts[len(pts)-1].Y >= pts[0].Y {
			t.Fatalf("%s: loss did not drop (%v -> %v)", lc.Curves[i].Name, pts[0].Y, pts[len(pts)-1].Y)
		}
	}
	// At a shared mid-horizon time, heter-aware must be at or below naive's
	// loss (it performs strictly more useful iterations per second).
	horizon := lc.Curves[0].Points[len(lc.Curves[0].Points)-1].X
	at := lc.LossAt(horizon / 2)
	if at["heter-aware"] > at["naive"]+0.05 {
		t.Fatalf("heter-aware %v should converge at least as fast as naive %v", at["heter-aware"], at["naive"])
	}
	if !strings.Contains(lc.LossTable(4).String(), "ssp") {
		t.Fatal("loss table missing ssp column")
	}
}

func TestRunMisestimationShapes(t *testing.T) {
	rows, err := RunMisestimation(MisestimationConfig{
		Cluster:    cluster.ClusterA(),
		S:          1,
		Epsilons:   []float64{0, 0.4},
		Iterations: 20,
		Trials:     3,
		Seed:       33,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With exact estimates both schemes are near-optimal; with bad estimates
	// both degrade but group-based should not be (much) worse than heter.
	if rows[1].HeterAvg <= rows[0].HeterAvg {
		t.Fatalf("mis-estimation should slow heter-aware: %v vs %v", rows[0].HeterAvg, rows[1].HeterAvg)
	}
	if rows[1].GroupAvg > rows[1].HeterAvg*1.15 {
		t.Fatalf("group-based (%v) should hold up vs heter (%v) under mis-estimation",
			rows[1].GroupAvg, rows[1].HeterAvg)
	}
	if !strings.Contains(MisestimationTable(rows).String(), "heter/group") {
		t.Fatal("misestimation table header wrong")
	}
}

func TestRunReplicationSweep(t *testing.T) {
	rows, err := RunReplicationSweep(ReplicationSweepConfig{
		Cluster:    cluster.ClusterA(),
		SValues:    []int{1, 2, 3},
		Delay:      5,
		Iterations: 15,
		Seed:       55,
	})
	if err != nil {
		t.Fatal(err)
	}
	// More replication = more load per worker = longer iterations for
	// heter-aware (the (s+1)k/Σc optimum grows linearly in s+1).
	var heter []float64
	for _, r := range rows {
		for _, o := range r.Outcomes {
			if o.Kind == core.HeterAware {
				heter = append(heter, o.AvgIterTime)
			}
			if o.Failed > 0 {
				t.Fatalf("s=%d %v: %d failures", r.S, o.Kind, o.Failed)
			}
		}
	}
	if !(heter[0] < heter[1] && heter[1] < heter[2]) {
		t.Fatalf("heter times should grow with s: %v", heter)
	}
	if !strings.Contains(ReplicationTable(rows).String(), "heter-aware") {
		t.Fatal("replication table header wrong")
	}
}

func TestConfigValidationErrors(t *testing.T) {
	if _, err := RunDelaySweep(DelaySweepConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunClusterSweep(ClusterSweepConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunLossCurves(LossCurveConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunMisestimation(MisestimationConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	if _, err := RunReplicationSweep(ReplicationSweepConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func TestSpeedupVsCyclicErrors(t *testing.T) {
	if _, err := SpeedupVsCyclic(DelayRow{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
