package experiments

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"

	"github.com/hetgc/hetgc/internal/cluster"
)

func TestForEachCellCoversAllIndices(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	hits := make([]int32, 100)
	if err := forEachCell(len(hits), func(i int) error {
		hits[i]++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("cell %d ran %d times", i, h)
		}
	}
}

func TestForEachCellPropagatesError(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	boom := errors.New("boom")
	err := forEachCell(50, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

// TestSweepsDeterministicUnderParallelism pins the tentpole requirement:
// fanning sweep cells across workers must not change any table.
func TestSweepsDeterministicUnderParallelism(t *testing.T) {
	cfg := DelaySweepConfig{
		Cluster:        cluster.ClusterA(),
		S:              1,
		Delays:         []float64{0, 3, math.Inf(1)},
		Iterations:     10,
		FluctuationStd: 0.05,
		Seed:           99,
	}
	run := func(procs int) []DelayRow {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		rows, err := RunDelaySweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("delay sweep differs between serial and parallel runs:\n%v\nvs\n%v", serial, parallel)
	}

	ccfg := ClusterSweepConfig{
		Clusters:       []*cluster.Cluster{cluster.ClusterA(), cluster.ClusterB()},
		S:              1,
		Iterations:     8,
		TransientProb:  0.05,
		TransientMean:  2,
		FluctuationStd: 0.05,
		Seed:           7,
	}
	runC := func(procs int) []ClusterRow {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		rows, err := RunClusterSweep(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	if !reflect.DeepEqual(runC(1), runC(4)) {
		t.Fatal("cluster sweep differs between serial and parallel runs")
	}

	mcfg := MisestimationConfig{
		Cluster:    cluster.ClusterA(),
		S:          1,
		Epsilons:   []float64{0, 0.2},
		Iterations: 6,
		Trials:     2,
		Seed:       3,
	}
	runM := func(procs int) []MisestimationRow {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		rows, err := RunMisestimation(mcfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	if !reflect.DeepEqual(runM(1), runM(4)) {
		t.Fatal("misestimation sweep differs between serial and parallel runs")
	}

	lcfg := LossCurveConfig{
		Cluster:             cluster.ClusterA(),
		S:                   1,
		Iterations:          6,
		SamplesPerPartition: 4,
		FeatureDim:          4,
		Classes:             2,
		Seed:                11,
	}
	runL := func(procs int) *LossCurves {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		lc, err := RunLossCurves(lcfg)
		if err != nil {
			t.Fatal(err)
		}
		return lc
	}
	if !reflect.DeepEqual(runL(1), runL(4)) {
		t.Fatal("loss curves differ between serial and parallel runs")
	}

	rcfg := ReplicationSweepConfig{
		Cluster:    cluster.ClusterA(),
		SValues:    []int{1, 2},
		Delay:      4,
		Iterations: 6,
		Seed:       5,
	}
	runR := func(procs int) []ReplicationRow {
		prev := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(prev)
		rows, err := RunReplicationSweep(rcfg)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	if !reflect.DeepEqual(runR(1), runR(4)) {
		t.Fatal("replication sweep differs between serial and parallel runs")
	}
}
