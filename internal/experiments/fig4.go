package experiments

import (
	"fmt"
	"math/rand"

	"github.com/hetgc/hetgc/internal/cluster"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/sim"
	"github.com/hetgc/hetgc/internal/straggler"
)

// LossCurveConfig parameterises Fig. 4: training-loss versus simulated
// wall-clock on a heterogeneous cluster for the coded schemes plus SSP.
type LossCurveConfig struct {
	// Cluster under test (the paper uses Cluster-C).
	Cluster *cluster.Cluster
	// S is the straggler budget of the coded schemes.
	S int
	// Iterations is the BSP iteration budget; SSP workers get the same
	// per-worker budget.
	Iterations int
	// SamplesPerPartition scales the synthetic dataset (n = k·that).
	SamplesPerPartition int
	// FeatureDim and Classes shape the classification task.
	FeatureDim, Classes int
	// LearningRate for all schemes.
	LearningRate float64
	// Staleness bound of the SSP baseline.
	Staleness int
	// TransientProb/TransientMean model background interference.
	TransientProb, TransientMean float64
	// Schemes to include (DefaultSchemes when nil); SSP is always added.
	Schemes []core.Kind
	// Seed drives everything.
	Seed int64
}

func (c *LossCurveConfig) applyDefaults() {
	if c.SamplesPerPartition <= 0 {
		c.SamplesPerPartition = 20
	}
	if c.FeatureDim <= 0 {
		c.FeatureDim = 8
	}
	if c.Classes <= 0 {
		c.Classes = 3
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.Staleness <= 0 {
		c.Staleness = 3
	}
}

// LossCurves is the Fig. 4 result: one loss series per scheme.
type LossCurves struct {
	// Curves holds (simulated seconds, mean loss) series named by scheme.
	Curves []metrics.Series
	// FinalLoss maps scheme name to final loss.
	FinalLoss map[string]float64
}

// RunLossCurves regenerates Fig. 4. The same dataset, model and learning
// rate are used across schemes; only the distribution/timing layer differs.
func RunLossCurves(cfg LossCurveConfig) (*LossCurves, error) {
	if cfg.Cluster == nil || cfg.Iterations <= 0 {
		return nil, fmt.Errorf("%w: cluster/iterations required", ErrBadConfig)
	}
	cfg.applyDefaults()
	schemes := cfg.Schemes
	if schemes == nil {
		schemes = DefaultSchemes()
	}
	truth := cfg.Cluster.Throughputs()
	k := ChooseK(cfg.Cluster, cfg.S)
	dataRng := rand.New(rand.NewSource(cfg.Seed))
	data, err := ml.GaussianMixture(k*cfg.SamplesPerPartition, cfg.FeatureDim, cfg.Classes, 3, dataRng)
	if err != nil {
		return nil, err
	}
	model := &ml.Softmax{InputDim: cfg.FeatureDim, NumClasses: cfg.Classes}

	out := &LossCurves{Curves: make([]metrics.Series, len(schemes)), FinalLoss: make(map[string]float64)}
	recordEvery := cfg.Iterations / 50
	if recordEvery <= 0 {
		recordEvery = 1
	}
	// Each scheme trains independently on the shared (read-only) dataset and
	// stateless model, with its own seeded rng: fan the schemes across cores.
	finals := make([]float64, len(schemes))
	err = forEachCell(len(schemes), func(si int) error {
		kind := schemes[si]
		rng := rand.New(rand.NewSource(cfg.Seed + int64(si+1)))
		st, err := BuildStrategy(kind, cfg.Cluster, truth, k, cfg.S, rng)
		if err != nil {
			return fmt.Errorf("%v: %w", kind, err)
		}
		res, err := sim.Train(sim.TrainConfig{
			Sim: sim.Config{
				Strategy:       st,
				Throughputs:    truth,
				Injector:       straggler.Transient{Prob: cfg.TransientProb, Mean: cfg.TransientMean, Rng: rng},
				Iterations:     cfg.Iterations,
				FluctuationStd: 0.05,
				Rng:            rng,
			},
			Model:       model,
			Data:        data,
			Optimizer:   &ml.SGD{LR: cfg.LearningRate},
			RecordEvery: recordEvery,
			Name:        kind.String(),
		})
		if err != nil {
			return fmt.Errorf("%v: %w", kind, err)
		}
		out.Curves[si] = res.Curve
		finals[si] = res.FinalLoss
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, kind := range schemes {
		out.FinalLoss[kind.String()] = finals[si]
	}

	// SSP baseline.
	sspRng := rand.New(rand.NewSource(cfg.Seed + 999))
	sspRes, err := sim.RunSSP(sim.SSPConfig{
		Throughputs:         truth,
		Staleness:           cfg.Staleness,
		Model:               model,
		Data:                data,
		Optimizer:           &ml.SGD{LR: cfg.LearningRate / float64(cfg.Cluster.M())},
		IterationsPerWorker: cfg.Iterations,
		FluctuationStd:      0.05,
		Rng:                 sspRng,
		RecordEvery:         cfg.Cluster.M() * recordEvery,
		Name:                "ssp",
	})
	if err != nil {
		return nil, fmt.Errorf("ssp: %w", err)
	}
	out.Curves = append(out.Curves, sspRes.Curve)
	out.FinalLoss["ssp"] = sspRes.FinalLoss
	return out, nil
}

// LossAt samples every curve at the given simulated time (step interpolation).
func (lc *LossCurves) LossAt(t float64) map[string]float64 {
	out := make(map[string]float64, len(lc.Curves))
	for i := range lc.Curves {
		out[lc.Curves[i].Name] = lc.Curves[i].YAt(t)
	}
	return out
}

// LossTable renders loss samples at a few checkpoints of the shortest
// curve's horizon — the textual equivalent of Fig. 4.
func (lc *LossCurves) LossTable(points int) *metrics.Table {
	if points <= 0 {
		points = 5
	}
	// Use the minimum final time across curves as the shared horizon.
	horizon := 0.0
	for i := range lc.Curves {
		pts := lc.Curves[i].Points
		if len(pts) == 0 {
			continue
		}
		end := pts[len(pts)-1].X
		if horizon == 0 || end < horizon {
			horizon = end
		}
	}
	header := []string{"time(s)"}
	for i := range lc.Curves {
		header = append(header, lc.Curves[i].Name)
	}
	t := &metrics.Table{Header: header}
	for p := 1; p <= points; p++ {
		x := horizon * float64(p) / float64(points)
		cells := []string{metrics.F(x)}
		for i := range lc.Curves {
			cells = append(cells, metrics.F(lc.Curves[i].YAt(x)))
		}
		t.AddRow(cells...)
	}
	return t
}
