package sim

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/ml"
)

// trainingBase couples the churn-heavy crash schedule with a real model and
// a momentum optimizer: kills, joins and replans land while real optimizer
// steps are being taken, and a lost or duplicated step corrupts not just
// the params but the velocity vector every later step compounds.
func trainingBase(t *testing.T) ElasticSimConfig {
	t.Helper()
	cfg := crashBase()
	data, err := ml.GaussianMixture(cfg.K*12, 4, 3, 3, rand.New(rand.NewSource(100)))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Model = &ml.Softmax{InputDim: 4, NumClasses: 3}
	cfg.Data = data
	cfg.Optimizer = &ml.SGD{LR: 0.5, Momentum: 0.9}
	return cfg
}

// TestTrainingSimCheckpointingDoesNotPerturb pins that write-through
// checkpointing of params and optimizer state adds no behavioural drift: a
// checkpointed training run is bit-identical to a bare one.
func TestTrainingSimCheckpointingDoesNotPerturb(t *testing.T) {
	bare, err := RunElastic(trainingBase(t))
	if err != nil {
		t.Fatal(err)
	}
	ck := trainingBase(t)
	ck.CheckpointDir = filepath.Join(t.TempDir(), "ckpt")
	ck.SnapshotEvery = 3
	with, err := RunElastic(ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Params) == 0 || len(bare.Params) != len(with.Params) {
		t.Fatalf("param dims %d vs %d", len(bare.Params), len(with.Params))
	}
	for i := range bare.Params {
		if bare.Params[i] != with.Params[i] {
			t.Fatalf("param %d drifted under checkpointing: %v vs %v", i, with.Params[i], bare.Params[i])
		}
	}
	loss0, err := ml.MeanLoss(ck.Model, ck.Model.InitParams(nil), ck.Data)
	if err != nil {
		t.Fatal(err)
	}
	lossT, err := ml.MeanLoss(ck.Model, with.Params, ck.Data)
	if err != nil {
		t.Fatal(err)
	}
	if lossT >= loss0 {
		t.Fatalf("training did not reduce the loss: %v -> %v", loss0, lossT)
	}
}

// TestStandbyTakeoverBitIdenticalParams is the co-simulation proof of the
// whole failover story: the root crashes cold at iteration k holding the
// lease, a warm standby tails the directory and promotes once the lease
// expires, and the successor — acquiring the next generation — finishes
// training to final params bit-identical to an uninterrupted run. Any lost
// or duplicated optimizer step would break the equality.
func TestStandbyTakeoverBitIdenticalParams(t *testing.T) {
	for _, crashAt := range []int{5, 17, 31} {
		un, err := RunElastic(trainingBase(t))
		if err != nil {
			t.Fatal(err)
		}

		dir := filepath.Join(t.TempDir(), "ckpt")
		crashed := trainingBase(t)
		crashed.CheckpointDir = dir
		crashed.SnapshotEvery = 4
		crashed.LeaseTTL = 250 * time.Millisecond
		crashed.CrashAtIter = crashAt
		partial, err := RunElastic(crashed)
		if err != nil {
			t.Fatalf("crash at %d: %v", crashAt, err)
		}
		if !partial.Crashed || partial.RootGen != 1 {
			t.Fatalf("crash at %d: Crashed=%v gen=%d", crashAt, partial.Crashed, partial.RootGen)
		}

		// The standby tails the directory until the dead root's lease
		// expires; the promotion hands over the freshest durable state.
		sb := ha.NewStandby(ha.StandbyConfig{Dir: dir, Poll: 20 * time.Millisecond})
		prom, err := sb.Run(nil)
		if err != nil {
			t.Fatalf("crash at %d: standby: %v", crashAt, err)
		}
		if prom.Deposed == nil || prom.Deposed.Gen != 1 {
			t.Fatalf("crash at %d: deposed token %+v", crashAt, prom.Deposed)
		}
		if prom.State == nil || prom.State.LastIter != crashAt-1 {
			t.Fatalf("crash at %d: standby tailed LastIter %v, want %d", crashAt, prom.State, crashAt-1)
		}

		resumed := trainingBase(t)
		resumed.CheckpointDir = dir
		resumed.SnapshotEvery = 4
		resumed.LeaseTTL = 30 * time.Second
		resumed.Holder = "sim-standby"
		resumed.Resume = true
		res, err := RunElastic(resumed)
		if err != nil {
			t.Fatalf("takeover after crash at %d: %v", crashAt, err)
		}
		if res.RootGen != 2 {
			t.Fatalf("crash at %d: successor got generation %d, want 2", crashAt, res.RootGen)
		}
		if wantStart := (crashAt / 4) * 4; res.StartIter != wantStart {
			t.Fatalf("crash at %d: resumed at iter %d, want %d", crashAt, res.StartIter, wantStart)
		}

		if len(res.Params) != len(un.Params) {
			t.Fatalf("crash at %d: param dims %d vs %d", crashAt, len(res.Params), len(un.Params))
		}
		for i := range un.Params {
			if res.Params[i] != un.Params[i] {
				t.Fatalf("crash at %d: param %d not bit-identical after takeover: %v vs %v",
					crashAt, i, res.Params[i], un.Params[i])
			}
		}
	}
}

// TestZombieStoreRefusesStaleGeneration pins the journal side of fencing: a
// store guarded by a lease accepts appends while the lease is the highest
// generation and refuses them typed — ErrFenced — the moment a successor
// claims the directory.
func TestZombieStoreRefusesStaleGeneration(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	a, err := ha.Acquire(dir, "a", "", 60*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.SetGuard(a.Check)
	if err := store.AppendIter(0, 0, 1); err != nil {
		t.Fatalf("append under a live lease: %v", err)
	}

	// The holder goes quiet; after expiry a successor claims generation 2.
	time.Sleep(120 * time.Millisecond)
	b, err := ha.Acquire(dir, "b", "", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Release()
	if err := store.AppendIter(1, 0, 2); !errors.Is(err, ha.ErrFenced) {
		t.Fatalf("stale-generation append = %v, want ha.ErrFenced", err)
	}
	if err := store.WriteSnapshot(&checkpoint.Snapshot{Iter: 2, Epoch: -1}); !errors.Is(err, ha.ErrFenced) {
		t.Fatalf("stale-generation snapshot = %v, want ha.ErrFenced", err)
	}
}
