// Sharded co-simulation: the deterministic, socket-free counterpart of the
// hierarchical runtime in internal/shard. Workers are partitioned into
// independently-coded groups; every group runs its own BSP decode over its
// own slice of the global partitions and its own elastic control plane, so
// drift and churn trigger *group-local* re-planning — each group's epoch
// advances independently, and a migration in one group never touches the
// others. Group results meet at a FanIn-ary reduction tree whose hop latency
// is charged per iteration. Fixed seeds make runs bit-identical.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/shard"
	"github.com/hetgc/hetgc/internal/straggler"
)

// ShardedSimConfig parameterises a deterministic group-sharded simulation.
type ShardedSimConfig struct {
	// K is the global partition count, S the *per-group* straggler budget.
	K, S int
	// GroupSize is the target workers per coding group (default
	// shard.DefaultGroupSize); FanIn the reduction-tree arity (default 4).
	GroupSize, FanIn int
	// Scheme is the per-group strategy family (core.HeterAware default).
	Scheme core.Kind
	// Rates are the true speeds (global partitions/second) of the initial
	// workers, which get member IDs 1..len(Rates) in order. They also seed
	// the controllers' estimates (the operator sampled the fleet once at
	// start-up); SpeedStep churn makes truth and estimate drift apart.
	Rates []float64
	// Injector adds per-iteration straggler delays, indexed by member ID-1;
	// nil means none.
	Injector straggler.Injector
	// Events is the churn schedule (applied in slice order at each iteration
	// boundary). Member IDs are global; a Join attaches the new worker to
	// the group with the fewest alive members.
	Events []ChurnEvent
	// Iterations is the number of BSP iterations to simulate.
	Iterations int
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise every group's control plane (see elastic.Config).
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// HopSeconds is the latency of one reduction-tree hop: each iteration
	// pays Tree.Depth()·HopSeconds of aggregation time. Frame batching is
	// what keeps this per-hop, not per-chunk: a group's whole upload is one
	// coalesced write.
	HopSeconds float64
	// IngestSeconds is the master-side cost of receiving and processing one
	// gradient upload — the fan-in bottleneck that caps flat deployments. A
	// flat master pays it for every one of m uploads on a single ingest
	// path; a group master pays it only for its own group's uploads (groups
	// ingest in parallel), and each reduction-tree node for at most FanIn
	// coalesced frames per hop (batching makes a group's whole chunked
	// upload one frame). 0 disables the model.
	IngestSeconds float64
	// CommOverhead is a fixed per-iteration communication cost in seconds.
	CommOverhead float64
	// Seed drives plan construction; with the injector's rng it is the only
	// randomness, so fixed seeds make runs bit-identical.
	Seed int64
	// TelemetryConfig (see internal/clustercfg): a non-nil Obs receives the
	// simulation's telemetry through the same helpers (and therefore the
	// same metric families and group labels) the live sharded runtime uses,
	// so sim and live scrapes are diffable.
	clustercfg.TelemetryConfig
	// Deprecated: set TelemetryConfig.Obs. Kept as a flat alias for one
	// release; when both are set the embedded field wins.
	Obs *obs.Metrics
}

// GroupReplanEvent is one group-local migration.
type GroupReplanEvent struct {
	// Group is the coding-group index.
	Group int
	elastic.ReplanEvent
}

// ShardedSimResult aggregates a sharded simulation run.
type ShardedSimResult struct {
	// Times are per-iteration wall times in seconds (slowest group plus
	// aggregation hops).
	Times []float64
	// GroupTimes[i][g] is group g's decode time at iteration i, before the
	// reduction-tree hops.
	GroupTimes [][]float64
	// Epochs[i][g] is the plan epoch group g ran under at iteration i —
	// epochs advance per group, independently.
	Epochs [][]int
	// MemberCounts is the total alive membership per iteration.
	MemberCounts []int
	// Replans is the migration history across all groups.
	Replans []GroupReplanEvent
	// Groups is the number of coding groups, Depth the reduction-tree depth.
	Groups, Depth int
	// Summary summarises Times.
	Summary metrics.Summary
}

// shardedGroup is one group's live state during the simulation.
type shardedGroup struct {
	ctrl    *elastic.Controller
	plan    *elastic.Plan
	members map[int]bool // alive member IDs of this group
	cache   obs.CacheTracker
}

// RunSharded simulates the hierarchical group-sharded runtime over an
// optional churn schedule and straggler injector. Fully deterministic for a
// fixed config: two runs produce bit-identical results.
func RunSharded(cfg ShardedSimConfig) (*ShardedSimResult, error) {
	cfg.TelemetryConfig = cfg.TelemetryConfig.Merge(cfg.Obs)
	cfg.Obs = cfg.TelemetryConfig.Obs
	if len(cfg.Rates) == 0 {
		return nil, fmt.Errorf("%w: no initial members", ErrBadChurn)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("%w: iterations=%d", ErrBadChurn, cfg.Iterations)
	}
	if cfg.CommOverhead < 0 || cfg.HopSeconds < 0 || cfg.IngestSeconds < 0 {
		return nil, fmt.Errorf("%w: comm=%v hop=%v ingest=%v", ErrBadChurn, cfg.CommOverhead, cfg.HopSeconds, cfg.IngestSeconds)
	}
	// Layout only: per-group strategies are built by each group's
	// controller at its initial replan.
	plan, err := shard.BuildPlanLayout(cfg.Rates, shard.PlanConfig{
		K: cfg.K, S: cfg.S, GroupSize: cfg.GroupSize, FanIn: cfg.FanIn, Scheme: cfg.Scheme,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadChurn, err)
	}

	trueRate := make(map[int]float64)
	memberGroup := make(map[int]int)
	groups := make([]*shardedGroup, plan.NumGroups())
	for g, grp := range plan.Groups {
		ctrl, err := elastic.NewController(elastic.Config{
			K: len(grp.Parts), S: cfg.S, Scheme: cfg.Scheme,
			Alpha: cfg.Alpha, DriftThreshold: cfg.DriftThreshold,
			MinObservations: cfg.MinObservations, CooldownIters: cfg.CooldownIters,
			InitialRate: cfg.InitialRate,
		}, rand.New(rand.NewSource(cfg.Seed+int64(g)+1)))
		if err != nil {
			return nil, fmt.Errorf("%w: group %d: %v", ErrBadChurn, g, err)
		}
		sg := &shardedGroup{ctrl: ctrl, members: make(map[int]bool)}
		for _, w := range grp.Workers {
			id := w + 1 // stable member IDs are 1-based, like the elastic sim
			trueRate[id] = cfg.Rates[w]
			memberGroup[id] = g
			sg.members[id] = true
			ctrl.AddMember(id, cfg.Rates[w])
		}
		groups[g] = sg
	}
	nextID := len(cfg.Rates) + 1

	res := &ShardedSimResult{
		Times:        make([]float64, 0, cfg.Iterations),
		GroupTimes:   make([][]float64, 0, cfg.Iterations),
		Epochs:       make([][]int, 0, cfg.Iterations),
		MemberCounts: make([]int, 0, cfg.Iterations),
		Groups:       plan.NumGroups(),
		Depth:        plan.Tree.Depth(),
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		// Churn events at the boundary, routed to the owning group.
		for _, ev := range cfg.Events {
			if ev.Iter != iter {
				continue
			}
			if err := applyShardedChurn(ev, iter, groups, memberGroup, trueRate, &nextID, cfg.Obs); err != nil {
				return nil, err
			}
		}

		// Group-local control decisions: a replan in one group leaves every
		// other group's epoch untouched.
		for g, sg := range groups {
			replan, reason := sg.ctrl.ShouldReplan(iter)
			if cfg.Obs != nil {
				cfg.Obs.OnDrift(sg.ctrl.DriftGain())
			}
			if replan {
				p, err := sg.ctrl.Replan(iter, reason)
				if err != nil {
					return nil, fmt.Errorf("group %d iter %d: %w", g, iter, err)
				}
				sg.plan = p
				cfg.Obs.OnReplan(reason, iter, p.Epoch, len(p.Members))
			}
		}

		// Straggler delays for this iteration, indexed by member ID-1.
		var delays []float64
		if cfg.Injector != nil {
			delays = cfg.Injector.Delays(iter, nextID-1)
		}

		// One BSP iteration per group: completions in time order, decode at
		// the earliest decodable prefix — the flat simulator's loop, run
		// once per group over its own small code.
		iterGroupTimes := make([]float64, len(groups))
		iterEpochs := make([]int, len(groups))
		for g, sg := range groups {
			gt, ingested, err := simulateGroupIteration(sg, trueRate, delays)
			if err != nil {
				return nil, fmt.Errorf("group %d iter %d epoch %d: %w", g, iter, sg.plan.Epoch, err)
			}
			// The group master ingests every upload that arrived up to the
			// decode point on one path — charged serially, the worst case.
			iterGroupTimes[g] = gt + float64(ingested)*cfg.IngestSeconds
			iterEpochs[g] = sg.plan.Epoch
			if cfg.Obs != nil {
				cs := sg.plan.Strategy.DecodeCacheStats()
				sg.cache.Fold(cfg.Obs, sg.plan.Strategy, cs.Hits, cs.Misses)
			}
		}

		// The barrier: every group's sum must reach the root, so the
		// iteration runs at the slowest group, plus the reduction-tree hops —
		// each hop pays its latency and the ingest of at most FanIn coalesced
		// frames (a group's whole chunked upload is one batched frame).
		slowest := 0.0
		for _, gt := range iterGroupTimes {
			slowest = math.Max(slowest, gt)
		}
		fanIn := plan.Tree.FanIn
		hopCost := cfg.HopSeconds + float64(fanIn)*cfg.IngestSeconds
		iterTime := slowest + float64(res.Depth)*hopCost + cfg.CommOverhead

		// Telemetry into each group's control plane, exactly like workers
		// uploading MsgTelemetry to their group master: injected delay
		// counts as compute, because that is what the master observes. Each
		// worker also feeds the group-labeled attribution families, the way a
		// live group master records its members' stitched spans — a crashed
		// worker (+Inf finish) becomes a partial "dead" span, never a sample.
		for g, sg := range groups {
			loads := sg.plan.Strategy.Allocation().Loads
			for slot, id := range sg.plan.Members {
				if loads[slot] <= 0 {
					continue
				}
				finish := float64(loads[slot])/trueRate[id] + delayOf(delays, id)
				if math.IsInf(finish, 1) {
					cfg.Obs.OnMemberSpan(obs.MemberSpan{Member: id, Group: g, Partial: true, Reason: obs.RDead})
					continue
				}
				if err := sg.ctrl.Observe(id, loads[slot], finish); err != nil {
					return nil, fmt.Errorf("iter %d observe member %d: %w", iter, id, err)
				}
				cfg.Obs.OnMemberSpan(obs.MemberSpan{Member: id, Group: g, Arrival: finish,
					Spans: []obs.Span{{Phase: obs.PhaseCompute, Seconds: finish}}})
				if cfg.Obs != nil {
					if rate, err := sg.ctrl.Rate(id); err == nil {
						cfg.Obs.OnEstimate(g, id, rate)
					}
				}
			}
		}

		// Synthetic root trace, the live sharded root's shape: child spans
		// are the group masters (Group -1, Member = group index), each with a
		// compute span (its decode+ingest time) and an upload span (the
		// reduction-tree hops its sum paid to reach the root).
		if cfg.Obs != nil {
			hops := float64(res.Depth) * hopCost
			tr := obs.IterTrace{
				Iter: iter, Epoch: -1,
				TraceID: obs.TraceID(0, -1, iter),
				Start:   time.Now(),
				Seconds: iterTime,
				Spans: []obs.Span{
					{Phase: obs.PhaseBroadcast, Seconds: cfg.CommOverhead},
					{Phase: obs.PhaseCollect, Seconds: slowest},
					{Phase: obs.PhaseReduce, Seconds: hops},
				},
			}
			for g, gt := range iterGroupTimes {
				tr.Members = append(tr.Members, obs.MemberSpan{
					Member: g, Group: -1, Arrival: gt + hops,
					Spans: []obs.Span{
						{Phase: obs.PhaseCompute, Seconds: gt},
						{Phase: obs.PhaseUpload, Seconds: hops},
					},
				})
			}
			cfg.Obs.OnTrace(tr)
		}

		res.Times = append(res.Times, iterTime)
		res.GroupTimes = append(res.GroupTimes, iterGroupTimes)
		res.Epochs = append(res.Epochs, iterEpochs)
		count := 0
		for g, sg := range groups {
			alive := len(sg.ctrl.AliveMembers())
			count += alive
			cfg.Obs.OnMembers(g, alive)
		}
		res.MemberCounts = append(res.MemberCounts, count)
		// Epoch -1, like the live root: plan epochs are group-local.
		cfg.Obs.OnIteration(-1, iterTime)
	}

	for g, sg := range groups {
		for _, ev := range sg.ctrl.Events() {
			res.Replans = append(res.Replans, GroupReplanEvent{Group: g, ReplanEvent: ev})
		}
	}
	sort.SliceStable(res.Replans, func(a, b int) bool {
		if res.Replans[a].Iter != res.Replans[b].Iter {
			return res.Replans[a].Iter < res.Replans[b].Iter
		}
		return res.Replans[a].Group < res.Replans[b].Group
	})
	res.Summary = metrics.Summarize(res.Times)
	return res, nil
}

// applyShardedChurn routes one churn event to its owning group.
func applyShardedChurn(ev ChurnEvent, iter int, groups []*shardedGroup,
	memberGroup map[int]int, trueRate map[int]float64, nextID *int, om *obs.Metrics) error {
	switch ev.Kind {
	case SpeedStep:
		g, ok := memberGroup[ev.Member]
		if !ok || !groups[g].members[ev.Member] {
			return fmt.Errorf("%w: speed-step for absent member %d at iter %d", ErrBadChurn, ev.Member, iter)
		}
		if ev.Factor <= 0 {
			return fmt.Errorf("%w: speed-step factor %v", ErrBadChurn, ev.Factor)
		}
		trueRate[ev.Member] *= ev.Factor
	case Kill:
		g, ok := memberGroup[ev.Member]
		if !ok || !groups[g].members[ev.Member] {
			return fmt.Errorf("%w: kill for absent member %d at iter %d", ErrBadChurn, ev.Member, iter)
		}
		groups[g].members[ev.Member] = false
		groups[g].ctrl.RemoveMember(ev.Member)
		om.OnDeath(g, ev.Member, len(groups[g].ctrl.AliveMembers()), iter)
	case Join:
		if ev.Rate <= 0 {
			return fmt.Errorf("%w: join rate %v", ErrBadChurn, ev.Rate)
		}
		// Attach to the group with the fewest alive members (lowest index
		// on ties) — deterministic load-levelling placement.
		best, bestAlive := 0, int(^uint(0)>>1)
		for g, sg := range groups {
			if n := len(sg.ctrl.AliveMembers()); n < bestAlive {
				best, bestAlive = g, n
			}
		}
		id := *nextID
		*nextID++
		trueRate[id] = ev.Rate
		memberGroup[id] = best
		groups[best].members[id] = true
		groups[best].ctrl.AddMember(id, 0)
		om.OnJoin(best, id, false, len(groups[best].ctrl.AliveMembers()), iter)
	case Rejoin:
		g, ok := memberGroup[ev.Member]
		if !ok || groups[g].members[ev.Member] {
			return fmt.Errorf("%w: rejoin of member %d at iter %d", ErrBadChurn, ev.Member, iter)
		}
		groups[g].members[ev.Member] = true
		if ev.Rate > 0 {
			trueRate[ev.Member] = ev.Rate
		}
		groups[g].ctrl.AddMember(ev.Member, 0)
		om.OnJoin(g, ev.Member, true, len(groups[g].ctrl.AliveMembers()), iter)
	default:
		return fmt.Errorf("%w: unknown event kind %v", ErrBadChurn, ev.Kind)
	}
	return nil
}

// simulateGroupIteration replays one group's completions in time order and
// returns the earliest decodable prefix's finish time together with the
// number of uploads the group master ingested up to that point.
func simulateGroupIteration(sg *shardedGroup, trueRate map[int]float64, delays []float64) (float64, int, error) {
	st := sg.plan.Strategy
	loads := st.Allocation().Loads
	finish := make([]float64, st.M())
	for slot, id := range sg.plan.Members {
		finish[slot] = float64(loads[slot])/trueRate[id] + delayOf(delays, id)
	}
	t, _, ingested, ok := replayEarliestDecodable(st, finish)
	if !ok {
		return 0, 0, fmt.Errorf("%w: undecodable", ErrBadChurn)
	}
	return t, ingested, nil
}

// replayEarliestDecodable is the simulators' shared BSP replay: completions
// walk in stable (finish, slot) order, decode is probed after every arrival,
// and the earliest decodable prefix wins. It returns that prefix's finish
// time, the decoding coefficients, and how many arrivals the master ingested
// up to it; ok is false when no prefix decodes (crashed workers — +Inf
// finish — never arrive).
func replayEarliestDecodable(st *core.Strategy, finish []float64) (t float64, coeffs []float64, ingested int, ok bool) {
	m := st.M()
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if finish[order[a]] != finish[order[b]] {
			return finish[order[a]] < finish[order[b]]
		}
		return order[a] < order[b]
	})
	alive := make([]bool, m)
	for _, slot := range order {
		if math.IsInf(finish[slot], 1) {
			break
		}
		alive[slot] = true
		ingested++
		if c, err := st.Decode(alive); err == nil {
			return finish[slot], c, ingested, true
		}
	}
	return 0, nil, 0, false
}

// delayOf reads a member's injected delay (0 outside the slice).
func delayOf(delays []float64, id int) float64 {
	if delays == nil || id-1 < 0 || id-1 >= len(delays) {
		return 0
	}
	return delays[id-1]
}
