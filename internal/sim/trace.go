package sim

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteTimelineCSV exports a per-worker, per-iteration timeline of a
// simulation: compute time, injected delay, finish time and whether the
// worker's result was used in the decode. This is the raw data behind
// Figs. 2/3/5, exported for external plotting.
func WriteTimelineCSV(w io.Writer, res *Result) error {
	cw := csv.NewWriter(w)
	header := []string{"iteration", "worker", "compute_s", "delay_s", "finish_s", "used", "iter_time_s"}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("sim: timeline header: %w", err)
	}
	for it, out := range res.Iterations {
		for wi := range out.ComputeTimes {
			finish := out.ComputeTimes[wi] + out.Delays[wi]
			used := "0"
			if out.Coeffs != nil && wi < len(out.Coeffs) && out.Coeffs[wi] != 0 {
				used = "1"
			}
			rec := []string{
				strconv.Itoa(it),
				strconv.Itoa(wi),
				fmtF(out.ComputeTimes[wi]),
				fmtF(out.Delays[wi]),
				fmtF(finish),
				used,
				fmtF(out.Time),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("sim: timeline row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func fmtF(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return strconv.FormatFloat(v, 'g', 8, 64)
}
