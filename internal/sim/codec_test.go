package sim

import (
	"errors"
	"testing"

	"github.com/hetgc/hetgc/internal/ml"
)

// TestChurnSimCodecDeltaBitIdentical is the lossless acceptance criterion in
// the deterministic co-simulation: a full churn schedule (slowdowns, kills,
// joins, rejoins, drift replans) trained under the delta codec must produce
// final parameters bit-identical to the raw run.
func TestChurnSimCodecDeltaBitIdentical(t *testing.T) {
	raw, err := RunElastic(trainingBase(t))
	if err != nil {
		t.Fatal(err)
	}
	withDelta := trainingBase(t)
	withDelta.Wire.Codec = "delta"
	delta, err := RunElastic(withDelta)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw.Params) == 0 || len(raw.Params) != len(delta.Params) {
		t.Fatalf("param dims %d vs %d", len(raw.Params), len(delta.Params))
	}
	for i := range raw.Params {
		if raw.Params[i] != delta.Params[i] {
			t.Fatalf("param %d drifted under delta codec: %v vs %v", i, delta.Params[i], raw.Params[i])
		}
	}
}

// TestChurnSimLossyCodecsTrain proves the lossy codecs' quantization error is
// benign for optimisation: int8 and fp16 runs over the same churn schedule
// must still converge (loss drops), while actually perturbing the arithmetic
// (bit-identity with raw would mean the round trip never ran).
func TestChurnSimLossyCodecsTrain(t *testing.T) {
	raw, err := RunElastic(trainingBase(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, codec := range []string{"int8", "fp16"} {
		cfg := trainingBase(t)
		cfg.Wire.Codec = codec
		res, err := RunElastic(cfg)
		if err != nil {
			t.Fatalf("%s: %v", codec, err)
		}
		loss0, err := ml.MeanLoss(cfg.Model, cfg.Model.InitParams(nil), cfg.Data)
		if err != nil {
			t.Fatal(err)
		}
		lossT, err := ml.MeanLoss(cfg.Model, res.Params, cfg.Data)
		if err != nil {
			t.Fatal(err)
		}
		if lossT >= loss0 {
			t.Fatalf("%s: loss did not drop (%v -> %v)", codec, loss0, lossT)
		}
		perturbed := false
		for i := range raw.Params {
			if raw.Params[i] != res.Params[i] {
				perturbed = true
				break
			}
		}
		if !perturbed {
			t.Fatalf("%s: params bit-identical to raw — quantization round trip did not run", codec)
		}
	}
}

// TestChurnSimCodecUnknownRejected pins the config error for a codec name the
// build does not know.
func TestChurnSimCodecUnknownRejected(t *testing.T) {
	cfg := trainingBase(t)
	cfg.Wire.Codec = "gzip"
	if _, err := RunElastic(cfg); !errors.Is(err, ErrBadChurn) {
		t.Fatalf("err = %v, want ErrBadChurn", err)
	}
}
