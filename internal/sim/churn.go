// Elastic co-simulation: the deterministic, socket-free counterpart of the
// runtime's ElasticMaster. A seeded churn schedule (speed steps, kills,
// joins) drives the same elastic.Controller the live master uses, so the
// whole telemetry → drift/churn detection → replan → epoch migration loop is
// testable bit-identically — the fixture the live system's behaviour is
// validated against.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/metrics"
)

// ChurnKind enumerates churn-schedule events.
type ChurnKind int

// Churn event kinds.
const (
	// SpeedStep multiplies a member's true rate by Factor — a machine
	// slowing down (Factor < 1) or recovering (Factor > 1).
	SpeedStep ChurnKind = iota + 1
	// Kill removes a member mid-training.
	Kill
	// Join adds a fresh member with true rate Rate.
	Join
	// Rejoin revives a previously killed member (its estimate history is
	// retained by the control plane).
	Rejoin
)

// String names the event kind.
func (k ChurnKind) String() string {
	switch k {
	case SpeedStep:
		return "speed-step"
	case Kill:
		return "kill"
	case Join:
		return "join"
	case Rejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("ChurnKind(%d)", int(k))
	}
}

// ChurnEvent is one scheduled membership or speed change, applied at the
// boundary before iteration Iter.
type ChurnEvent struct {
	// Iter is the iteration before which the event fires.
	Iter int
	// Kind is the event type.
	Kind ChurnKind
	// Member is the target member ID (SpeedStep, Kill, Rejoin). Ignored for
	// Join, which allocates the next free ID.
	Member int
	// Factor is the SpeedStep rate multiplier.
	Factor float64
	// Rate is the true rate (partitions/second) of a Join, and optionally
	// the new true rate of a Rejoin (0 keeps the old rate).
	Rate float64
}

// ErrBadChurn is returned for invalid elastic-simulation configs/schedules.
var ErrBadChurn = errors.New("sim: invalid churn scenario")

// ElasticSimConfig parameterises a deterministic elastic-control-loop
// simulation.
type ElasticSimConfig struct {
	// K is the partition count, S the straggler budget.
	K, S int
	// Scheme is the strategy family (core.HeterAware default).
	Scheme core.Kind
	// InitialRates are the true speeds (partitions/second) of the initial
	// members, which get IDs 1..len(InitialRates) in order.
	InitialRates []float64
	// Events is the churn schedule (applied in slice order within an
	// iteration boundary).
	Events []ChurnEvent
	// Iterations is the number of BSP iterations to simulate.
	Iterations int
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise the control plane (see elastic.Config).
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// CommOverhead is a fixed per-iteration communication cost in seconds.
	CommOverhead float64
	// Seed drives strategy construction; the simulation has no other
	// randomness, so a fixed seed makes runs bit-identical.
	Seed int64
}

// ElasticSimResult aggregates an elastic simulation run.
type ElasticSimResult struct {
	// Times are per-iteration wall times in seconds.
	Times []float64
	// Epochs is the plan epoch each iteration ran under.
	Epochs []int
	// MemberCounts is the alive membership at each iteration.
	MemberCounts []int
	// Replans is the migration history.
	Replans []elastic.ReplanEvent
	// Summary summarises Times.
	Summary metrics.Summary
}

// RunElastic simulates the elastic control loop over a churn schedule. It is
// fully deterministic for a given config (bit-identical across runs):
// strategy construction is the only randomness and is driven by Seed.
func RunElastic(cfg ElasticSimConfig) (*ElasticSimResult, error) {
	if len(cfg.InitialRates) == 0 {
		return nil, fmt.Errorf("%w: no initial members", ErrBadChurn)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("%w: iterations=%d", ErrBadChurn, cfg.Iterations)
	}
	if cfg.CommOverhead < 0 {
		return nil, fmt.Errorf("%w: comm=%v", ErrBadChurn, cfg.CommOverhead)
	}
	ctrl, err := elastic.NewController(elastic.Config{
		K: cfg.K, S: cfg.S, Scheme: cfg.Scheme,
		Alpha: cfg.Alpha, DriftThreshold: cfg.DriftThreshold,
		MinObservations: cfg.MinObservations, CooldownIters: cfg.CooldownIters,
		InitialRate: cfg.InitialRate,
	}, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadChurn, err)
	}

	// True member state, keyed by stable member ID.
	trueRate := make(map[int]float64)
	alive := make(map[int]bool)
	nextID := 1
	for _, r := range cfg.InitialRates {
		if r <= 0 {
			return nil, fmt.Errorf("%w: non-positive initial rate %v", ErrBadChurn, r)
		}
		trueRate[nextID] = r
		alive[nextID] = true
		ctrl.AddMember(nextID, 0)
		nextID++
	}

	res := &ElasticSimResult{
		Times:        make([]float64, 0, cfg.Iterations),
		Epochs:       make([]int, 0, cfg.Iterations),
		MemberCounts: make([]int, 0, cfg.Iterations),
	}
	var plan *elastic.Plan
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Apply the boundary's churn events in schedule order.
		for _, ev := range cfg.Events {
			if ev.Iter != iter {
				continue
			}
			switch ev.Kind {
			case SpeedStep:
				if !alive[ev.Member] {
					return nil, fmt.Errorf("%w: speed-step for absent member %d at iter %d", ErrBadChurn, ev.Member, iter)
				}
				if ev.Factor <= 0 {
					return nil, fmt.Errorf("%w: speed-step factor %v", ErrBadChurn, ev.Factor)
				}
				trueRate[ev.Member] *= ev.Factor
			case Kill:
				if !alive[ev.Member] {
					return nil, fmt.Errorf("%w: kill for absent member %d at iter %d", ErrBadChurn, ev.Member, iter)
				}
				alive[ev.Member] = false
				ctrl.RemoveMember(ev.Member)
			case Join:
				if ev.Rate <= 0 {
					return nil, fmt.Errorf("%w: join rate %v", ErrBadChurn, ev.Rate)
				}
				trueRate[nextID] = ev.Rate
				alive[nextID] = true
				ctrl.AddMember(nextID, 0)
				nextID++
			case Rejoin:
				if _, known := trueRate[ev.Member]; !known || alive[ev.Member] {
					return nil, fmt.Errorf("%w: rejoin of member %d at iter %d", ErrBadChurn, ev.Member, iter)
				}
				alive[ev.Member] = true
				if ev.Rate > 0 {
					trueRate[ev.Member] = ev.Rate
				}
				ctrl.AddMember(ev.Member, 0)
			default:
				return nil, fmt.Errorf("%w: unknown event kind %v", ErrBadChurn, ev.Kind)
			}
		}

		// Control decision at the boundary, exactly like the live master.
		if replan, reason := ctrl.ShouldReplan(iter); replan {
			p, err := ctrl.Replan(iter, reason)
			if err != nil {
				return nil, fmt.Errorf("iter %d: %w", iter, err)
			}
			plan = p
		}

		// One BSP iteration under the current plan: compute times from true
		// rates, completions replayed in time order, decode at the earliest
		// decodable prefix (the replay loop is shared with the sharded sim).
		st := plan.Strategy
		loads := st.Allocation().Loads
		finish := make([]float64, st.M())
		for slot, id := range plan.Members {
			finish[slot] = float64(loads[slot]) / trueRate[id]
		}
		decodeAt, _, ok := replayEarliestDecodable(st, finish)
		if !ok {
			return nil, fmt.Errorf("%w: iter %d undecodable under epoch %d", ErrBadChurn, iter, plan.Epoch)
		}
		iterTime := decodeAt + cfg.CommOverhead

		// Telemetry: every plan member with load reports its compute time,
		// like workers uploading MsgTelemetry.
		for slot, id := range plan.Members {
			if loads[slot] <= 0 {
				continue
			}
			if err := ctrl.Observe(id, loads[slot], finish[slot]); err != nil {
				return nil, fmt.Errorf("iter %d observe member %d: %w", iter, id, err)
			}
		}

		res.Times = append(res.Times, iterTime)
		res.Epochs = append(res.Epochs, plan.Epoch)
		count := 0
		for _, a := range alive {
			if a {
				count++
			}
		}
		res.MemberCounts = append(res.MemberCounts, count)
	}
	res.Replans = ctrl.Events()
	res.Summary = metrics.Summarize(res.Times)
	return res, nil
}
