// Elastic co-simulation: the deterministic, socket-free counterpart of the
// runtime's ElasticMaster. A seeded churn schedule (speed steps, kills,
// joins) drives the same elastic.Controller the live master uses, so the
// whole telemetry → drift/churn detection → replan → epoch migration loop is
// testable bit-identically — the fixture the live system's behaviour is
// validated against.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/obs"
)

// ChurnKind enumerates churn-schedule events.
type ChurnKind int

// Churn event kinds.
const (
	// SpeedStep multiplies a member's true rate by Factor — a machine
	// slowing down (Factor < 1) or recovering (Factor > 1).
	SpeedStep ChurnKind = iota + 1
	// Kill removes a member mid-training.
	Kill
	// Join adds a fresh member with true rate Rate.
	Join
	// Rejoin revives a previously killed member (its estimate history is
	// retained by the control plane).
	Rejoin
)

// String names the event kind.
func (k ChurnKind) String() string {
	switch k {
	case SpeedStep:
		return "speed-step"
	case Kill:
		return "kill"
	case Join:
		return "join"
	case Rejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("ChurnKind(%d)", int(k))
	}
}

// ChurnEvent is one scheduled membership or speed change, applied at the
// boundary before iteration Iter.
type ChurnEvent struct {
	// Iter is the iteration before which the event fires.
	Iter int
	// Kind is the event type.
	Kind ChurnKind
	// Member is the target member ID (SpeedStep, Kill, Rejoin). Ignored for
	// Join, which allocates the next free ID.
	Member int
	// Factor is the SpeedStep rate multiplier.
	Factor float64
	// Rate is the true rate (partitions/second) of a Join, and optionally
	// the new true rate of a Rejoin (0 keeps the old rate).
	Rate float64
}

// ErrBadChurn is returned for invalid elastic-simulation configs/schedules.
var ErrBadChurn = errors.New("sim: invalid churn scenario")

// ElasticSimConfig parameterises a deterministic elastic-control-loop
// simulation.
type ElasticSimConfig struct {
	// K is the partition count, S the straggler budget.
	K, S int
	// Scheme is the strategy family (core.HeterAware default).
	Scheme core.Kind
	// InitialRates are the true speeds (partitions/second) of the initial
	// members, which get IDs 1..len(InitialRates) in order.
	InitialRates []float64
	// Events is the churn schedule (applied in slice order within an
	// iteration boundary).
	Events []ChurnEvent
	// Iterations is the number of BSP iterations to simulate.
	Iterations int
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise the control plane (see elastic.Config).
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// CommOverhead is a fixed per-iteration communication cost in seconds.
	CommOverhead float64
	// Seed drives strategy construction; the simulation has no other
	// randomness, so a fixed seed makes runs bit-identical.
	Seed int64
	// CrashAtIter, when > 0, is the crash injector: the run stops cold
	// before that iteration (no final snapshot, exactly as a killed process
	// would), returning the partial result with Crashed set.
	CrashAtIter int
	// Model, Data and Optimizer — all set or all nil — couple the timing
	// simulation with real optimisation: every iteration decodes the true
	// coded gradient under the live plan (the exact arithmetic the runtime
	// master performs) and applies one optimizer step. Params and optimizer
	// state ride snapshots, so a crash/takeover/resume sequence neither
	// loses nor duplicates a step.
	Model     ml.Model
	Data      *ml.Dataset
	Optimizer ml.Optimizer

	// The composable cluster blocks (see internal/clustercfg). Durability:
	// a non-empty CheckpointDir writes the simulation's control-plane state
	// through a checkpoint.Store — a journal record per iteration and
	// migration plus a snapshot every SnapshotEvery iterations (default 5)
	// carrying the full controller state and the RNG draw count; Resume
	// continues a crashed run bit-identically (the plan is rebuilt by
	// replaying the seeded RNG to its recorded draw position). HA: with
	// CheckpointDir set, a positive LeaseTTL makes the run hold the
	// directory's lease — acquired before any durable write, renewed at
	// every iteration boundary, released on success, and deliberately left
	// to expire on an injected crash (Holder defaults to "sim-root").
	// Telemetry: a non-nil Obs receives the simulation's telemetry through
	// the same helpers (and the same metric families) the live ElasticMaster
	// uses, so a sim scrape and a live scrape are diffable.
	clustercfg.DurabilityConfig
	clustercfg.HAConfig
	clustercfg.TelemetryConfig
	// Wire, when naming a non-raw codec, routes every simulated coded upload
	// through the same quantize→dequantize round trip the live transport
	// performs — so a codec's accuracy effect on training is measurable
	// deterministically, and lossless codecs (delta) are provably
	// bit-identical to a raw run.
	Wire clustercfg.WireConfig

	// Deprecated: flat aliases for the embedded cluster blocks above, kept
	// for one release. Set DurabilityConfig.CheckpointDir (etc.) instead;
	// when both views are set the embedded field wins.
	CheckpointDir string
	// Deprecated: set DurabilityConfig.SnapshotEvery.
	SnapshotEvery int
	// Deprecated: set DurabilityConfig.Resume.
	Resume bool
	// Deprecated: set HAConfig.LeaseTTL.
	LeaseTTL time.Duration
	// Deprecated: set HAConfig.Holder.
	Holder string
	// Deprecated: set TelemetryConfig.Obs.
	Obs *obs.Metrics
}

// normalize merges the deprecated flat aliases into the embedded cluster
// blocks (the embedded field wins when both are set) and mirrors the merged
// values back onto the aliases, so internal reads through either view agree.
func (c *ElasticSimConfig) normalize() {
	c.DurabilityConfig = c.DurabilityConfig.Merge(c.CheckpointDir, c.SnapshotEvery, c.Resume)
	c.HAConfig = c.HAConfig.Merge(c.LeaseTTL, c.Holder)
	c.TelemetryConfig = c.TelemetryConfig.Merge(c.Obs)
	c.CheckpointDir = c.DurabilityConfig.CheckpointDir
	c.SnapshotEvery = c.DurabilityConfig.SnapshotEvery
	c.Resume = c.DurabilityConfig.Resume
	c.LeaseTTL = c.HAConfig.LeaseTTL
	c.Holder = c.HAConfig.Holder
	c.Obs = c.TelemetryConfig.Obs
}

// ElasticSimResult aggregates an elastic simulation run.
type ElasticSimResult struct {
	// StartIter is the first simulated iteration (non-zero on a resumed
	// run); Times, Epochs and MemberCounts cover StartIter onward.
	StartIter int
	// Times are per-iteration wall times in seconds.
	Times []float64
	// Epochs is the plan epoch each iteration ran under.
	Epochs []int
	// MemberCounts is the alive membership at each iteration.
	MemberCounts []int
	// Replans is the migration history.
	Replans []elastic.ReplanEvent
	// Crashed reports that the crash injector stopped the run at
	// CrashAtIter.
	Crashed bool
	// Params are the final model parameters (training simulations only).
	Params []float64
	// RootGen is the lease generation the run held (0 without a lease).
	RootGen int
	// Summary summarises Times.
	Summary metrics.Summary
}

// RunElastic simulates the elastic control loop over a churn schedule. It is
// fully deterministic for a given config (bit-identical across runs):
// strategy construction is the only randomness and is driven by Seed.
func RunElastic(cfg ElasticSimConfig) (*ElasticSimResult, error) {
	cfg.normalize()
	if len(cfg.InitialRates) == 0 {
		return nil, fmt.Errorf("%w: no initial members", ErrBadChurn)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("%w: iterations=%d", ErrBadChurn, cfg.Iterations)
	}
	if cfg.CommOverhead < 0 {
		return nil, fmt.Errorf("%w: comm=%v", ErrBadChurn, cfg.CommOverhead)
	}
	if cfg.Resume && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("%w: resume requires a checkpoint dir", ErrBadChurn)
	}
	if cfg.CheckpointDir != "" && cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 5
		cfg.DurabilityConfig.SnapshotEvery = 5
	}
	training := cfg.Model != nil || cfg.Data != nil || cfg.Optimizer != nil
	if training && (cfg.Model == nil || cfg.Data == nil || cfg.Optimizer == nil) {
		return nil, fmt.Errorf("%w: training needs model, data and optimizer together", ErrBadChurn)
	}
	codec := grad.CodecRaw
	if cfg.Wire.Codec != "" {
		var err error
		if codec, err = grad.ParseCodec(cfg.Wire.Codec); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadChurn, err)
		}
	}
	if cfg.LeaseTTL < 0 {
		return nil, fmt.Errorf("%w: lease ttl %v", ErrBadChurn, cfg.LeaseTTL)
	}
	if cfg.LeaseTTL > 0 && cfg.CheckpointDir == "" {
		return nil, fmt.Errorf("%w: a lease needs a checkpoint dir to live in", ErrBadChurn)
	}
	var parts []*ml.Dataset
	var params []float64
	if training {
		var err error
		if parts, err = cfg.Data.Split(cfg.K); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadChurn, err)
		}
		params = cfg.Model.InitParams(nil)
	}
	// With checkpointing, the strategy-construction RNG runs over a counting
	// source so its position is serialisable. The wrapped source yields the
	// identical draw sequence, so checkpointing never perturbs the run.
	var src *checkpoint.CountingSource
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.CheckpointDir != "" {
		src = checkpoint.NewCountingSource(cfg.Seed)
		rng = rand.New(src)
	}
	ctrl, err := elastic.NewController(elastic.Config{
		K: cfg.K, S: cfg.S, Scheme: cfg.Scheme,
		Alpha: cfg.Alpha, DriftThreshold: cfg.DriftThreshold,
		MinObservations: cfg.MinObservations, CooldownIters: cfg.CooldownIters,
		InitialRate: cfg.InitialRate,
	}, rng)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadChurn, err)
	}
	if src != nil {
		ctrl.SetDrawCounter(src.Draws)
	}

	startIter := 0
	var lease *ha.Lease
	leaveLease := false // an injected crash leaves the lease to expire
	if cfg.LeaseTTL > 0 {
		holder := cfg.Holder
		if holder == "" {
			holder = "sim-root"
		}
		l, err := ha.Acquire(cfg.CheckpointDir, holder, "sim", cfg.LeaseTTL)
		if err != nil {
			return nil, err
		}
		lease = l
		cfg.Obs.OnLease(uint64(l.Gen()))
		defer func() {
			if !leaveLease {
				_ = lease.Release()
			}
		}()
	}
	var store *checkpoint.Store
	var resumedSnap *checkpoint.Snapshot
	if cfg.Resume {
		state, err := checkpoint.Recover(cfg.CheckpointDir)
		if err != nil {
			return nil, err
		}
		if snap := state.Snap; snap != nil {
			if snap.Ctrl == nil {
				return nil, fmt.Errorf("%w: snapshot at iter %d carries no controller state", checkpoint.ErrCorrupt, snap.Iter)
			}
			// Reposition the seeded source exactly where it stood before the
			// current plan was built; Restore's strategy reconstruction then
			// consumes the identical draws the original construction did.
			if pl := snap.Ctrl.Plan; pl != nil {
				if err := src.FastForward(pl.DrawsBefore); err != nil {
					return nil, err
				}
			}
			if err := ctrl.Restore(snap.Ctrl); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadChurn, err)
			}
			// The plan rebuild must land exactly on the snapshot's recorded
			// draw position; having consumed more draws than the snapshot
			// saw means the state is inconsistent, and FastForward reports
			// it as an un-rewindable position.
			if err := src.FastForward(snap.Draws); err != nil {
				return nil, err
			}
			startIter = snap.Iter
			resumedSnap = snap
			if training {
				if snap.Params == nil {
					return nil, fmt.Errorf("%w: snapshot at iter %d carries no params", checkpoint.ErrCorrupt, snap.Iter)
				}
				params = append(params[:0], snap.Params...)
				if so, ok := cfg.Optimizer.(ml.StatefulOptimizer); ok && snap.OptVecs != nil {
					if err := so.RestoreOptimizerState(snap.OptVecs, snap.OptStep); err != nil {
						return nil, fmt.Errorf("%w: %v", checkpoint.ErrCorrupt, err)
					}
				}
			}
		}
		if store, err = checkpoint.Reopen(cfg.CheckpointDir); err != nil {
			return nil, err
		}
	} else if cfg.CheckpointDir != "" {
		if store, err = checkpoint.Create(cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	if store != nil {
		defer store.Close()
		if lease != nil {
			store.SetGuard(lease.Check)
		}
		store.SetMetrics(cfg.Obs)
	}

	// True member state, keyed by stable member ID. On resume, the schedule
	// prefix (events before startIter) re-derives the true speeds — they are
	// deterministic functions of the config, so they need no snapshot.
	trueRate := make(map[int]float64)
	alive := make(map[int]bool)
	nextID := 1
	aliveCount := func() int {
		n := 0
		for _, a := range alive {
			if a {
				n++
			}
		}
		return n
	}
	for _, r := range cfg.InitialRates {
		if r <= 0 {
			return nil, fmt.Errorf("%w: non-positive initial rate %v", ErrBadChurn, r)
		}
		trueRate[nextID] = r
		alive[nextID] = true
		if startIter == 0 {
			ctrl.AddMember(nextID, 0)
		}
		nextID++
	}
	if startIter > 0 {
		for _, ev := range cfg.Events {
			if ev.Iter >= startIter {
				continue
			}
			switch ev.Kind {
			case SpeedStep:
				trueRate[ev.Member] *= ev.Factor
			case Kill:
				alive[ev.Member] = false
			case Join:
				trueRate[nextID] = ev.Rate
				alive[nextID] = true
				nextID++
			case Rejoin:
				alive[ev.Member] = true
				if ev.Rate > 0 {
					trueRate[ev.Member] = ev.Rate
				}
			}
		}
	}
	if cfg.Resume {
		// Anchor a fresh generation with the resumed state before any
		// appends; a crash during resume re-recovers this exact state. (A
		// run that crashed before its first snapshot anchors the initial
		// state: startIter 0, fresh controller.)
		anchor := &checkpoint.Snapshot{Iter: startIter, Epoch: -1}
		if resumedSnap != nil {
			anchor.Epoch = resumedSnap.Epoch
			anchor.Step = resumedSnap.Step
			anchor.Groups = resumedSnap.Groups
		}
		anchor.Ctrl = ctrl.State()
		anchor.Draws = src.Draws()
		if training {
			anchor.Params = append([]float64(nil), params...)
			if so, ok := cfg.Optimizer.(ml.StatefulOptimizer); ok {
				anchor.OptVecs, anchor.OptStep = so.OptimizerState()
			}
		}
		if err := store.WriteSnapshot(anchor); err != nil {
			return nil, err
		}
	}

	res := &ElasticSimResult{
		StartIter:    startIter,
		Times:        make([]float64, 0, cfg.Iterations),
		Epochs:       make([]int, 0, cfg.Iterations),
		MemberCounts: make([]int, 0, cfg.Iterations),
	}
	if lease != nil {
		res.RootGen = lease.Gen()
	}
	var plan *elastic.Plan
	var cache obs.CacheTracker
	if startIter > 0 {
		plan = ctrl.Plan()
		if plan == nil {
			return nil, fmt.Errorf("%w: resumed at iter %d without a plan", ErrBadChurn, startIter)
		}
	}
	for iter := startIter; iter < cfg.Iterations; iter++ {
		if cfg.CrashAtIter > 0 && iter == cfg.CrashAtIter {
			// Crash injector: stop cold, mid-generation, like a killed
			// process — no goodbye snapshot, a possibly mid-written journal.
			res.Crashed = true
			leaveLease = true
			break
		}
		if lease != nil {
			if err := lease.Renew(); err != nil {
				return nil, fmt.Errorf("iter %d: %w", iter, err)
			}
			cfg.Obs.OnRenewal()
		}
		// Apply the boundary's churn events in schedule order.
		for _, ev := range cfg.Events {
			if ev.Iter != iter {
				continue
			}
			switch ev.Kind {
			case SpeedStep:
				if !alive[ev.Member] {
					return nil, fmt.Errorf("%w: speed-step for absent member %d at iter %d", ErrBadChurn, ev.Member, iter)
				}
				if ev.Factor <= 0 {
					return nil, fmt.Errorf("%w: speed-step factor %v", ErrBadChurn, ev.Factor)
				}
				trueRate[ev.Member] *= ev.Factor
			case Kill:
				if !alive[ev.Member] {
					return nil, fmt.Errorf("%w: kill for absent member %d at iter %d", ErrBadChurn, ev.Member, iter)
				}
				alive[ev.Member] = false
				ctrl.RemoveMember(ev.Member)
				cfg.Obs.OnDeath(0, ev.Member, aliveCount(), iter)
			case Join:
				if ev.Rate <= 0 {
					return nil, fmt.Errorf("%w: join rate %v", ErrBadChurn, ev.Rate)
				}
				trueRate[nextID] = ev.Rate
				alive[nextID] = true
				ctrl.AddMember(nextID, 0)
				cfg.Obs.OnJoin(0, nextID, false, aliveCount(), iter)
				nextID++
			case Rejoin:
				if _, known := trueRate[ev.Member]; !known || alive[ev.Member] {
					return nil, fmt.Errorf("%w: rejoin of member %d at iter %d", ErrBadChurn, ev.Member, iter)
				}
				alive[ev.Member] = true
				if ev.Rate > 0 {
					trueRate[ev.Member] = ev.Rate
				}
				ctrl.AddMember(ev.Member, 0)
				cfg.Obs.OnJoin(0, ev.Member, true, aliveCount(), iter)
			default:
				return nil, fmt.Errorf("%w: unknown event kind %v", ErrBadChurn, ev.Kind)
			}
		}

		// Control decision at the boundary, exactly like the live master.
		replan, reason := ctrl.ShouldReplan(iter)
		if cfg.Obs != nil {
			cfg.Obs.OnDrift(ctrl.DriftGain())
		}
		if replan {
			p, err := ctrl.Replan(iter, reason)
			if err != nil {
				return nil, fmt.Errorf("iter %d: %w", iter, err)
			}
			plan = p
			cfg.Obs.OnReplan(reason, iter, p.Epoch, len(p.Members))
			if store != nil {
				rec := &checkpoint.Record{Kind: checkpoint.KindPlan, Iter: iter, Epoch: p.Epoch,
					Members: append([]int(nil), p.Members...)}
				if err := store.Append(rec); err != nil {
					return nil, err
				}
			}
		}

		// One BSP iteration under the current plan: compute times from true
		// rates, completions replayed in time order, decode at the earliest
		// decodable prefix (the replay loop is shared with the sharded sim).
		st := plan.Strategy
		loads := st.Allocation().Loads
		finish := make([]float64, st.M())
		for slot, id := range plan.Members {
			finish[slot] = float64(loads[slot]) / trueRate[id]
		}
		decodeAt, coeffs, _, ok := replayEarliestDecodable(st, finish)
		if !ok {
			return nil, fmt.Errorf("%w: iter %d undecodable under epoch %d", ErrBadChurn, iter, plan.Epoch)
		}
		iterTime := decodeAt + cfg.CommOverhead
		if training {
			g, err := decodeGradient(st, coeffs, cfg.Model, params, parts, codec)
			if err != nil {
				return nil, fmt.Errorf("iter %d decode: %w", iter, err)
			}
			g.Scale(1 / float64(cfg.Data.N()))
			if err := cfg.Optimizer.Step(params, g); err != nil {
				return nil, fmt.Errorf("iter %d step: %w", iter, err)
			}
		}

		// Telemetry: every plan member with load reports its compute time,
		// like workers uploading MsgTelemetry.
		for slot, id := range plan.Members {
			if loads[slot] <= 0 {
				continue
			}
			if err := ctrl.Observe(id, loads[slot], finish[slot]); err != nil {
				return nil, fmt.Errorf("iter %d observe member %d: %w", iter, id, err)
			}
			if cfg.Obs != nil {
				if rate, err := ctrl.Rate(id); err == nil {
					cfg.Obs.OnEstimate(0, id, rate)
				}
			}
		}

		// Synthetic iteration trace: the same span families the live master
		// stitches from the wire, built from simulated finish times so -trace
		// output of a sim run diffs cleanly against a live run. Members the
		// replay ingested up to the decode point are full child spans; later
		// arrivals are partial straggler erasures, like live rejects.
		if cfg.Obs != nil {
			tr := obs.IterTrace{
				Iter: iter, Epoch: plan.Epoch,
				TraceID: obs.TraceID(uint64(res.RootGen), plan.Epoch, iter),
				Start:   time.Now(),
				Seconds: iterTime,
				Spans: []obs.Span{
					{Phase: obs.PhaseBroadcast, Seconds: cfg.CommOverhead},
					{Phase: obs.PhaseCollect, Seconds: decodeAt},
				},
			}
			for slot, id := range plan.Members {
				if loads[slot] <= 0 {
					continue
				}
				ms := obs.MemberSpan{Member: id, Group: 0, Arrival: finish[slot],
					Spans: []obs.Span{{Phase: obs.PhaseCompute, Seconds: finish[slot]}}}
				if finish[slot] > decodeAt {
					ms.Partial, ms.Reason = true, obs.RStraggler
				}
				tr.Members = append(tr.Members, ms)
			}
			cfg.Obs.OnTrace(tr)
		}

		res.Times = append(res.Times, iterTime)
		res.Epochs = append(res.Epochs, plan.Epoch)
		count := 0
		for _, a := range alive {
			if a {
				count++
			}
		}
		res.MemberCounts = append(res.MemberCounts, count)
		cfg.Obs.OnIteration(plan.Epoch, iterTime)
		cfg.Obs.OnMembers(0, count)
		if cfg.Obs != nil {
			cs := st.DecodeCacheStats()
			cache.Fold(cfg.Obs, st, cs.Hits, cs.Misses)
		}

		if store != nil {
			if err := store.AppendIter(iter, plan.Epoch, iter+1); err != nil {
				return nil, err
			}
			if (iter+1)%cfg.SnapshotEvery == 0 {
				cs := ctrl.State()
				gs := checkpoint.GroupState{Group: 0, Epoch: plan.Epoch}
				for _, ms := range cs.Members {
					gs.Members = append(gs.Members, ms.ID)
				}
				snap := &checkpoint.Snapshot{
					Iter: iter + 1, Epoch: plan.Epoch, Step: iter + 1,
					Draws: src.Draws(), Groups: []checkpoint.GroupState{gs}, Ctrl: cs,
				}
				if training {
					snap.Params = append([]float64(nil), params...)
					if so, ok := cfg.Optimizer.(ml.StatefulOptimizer); ok {
						snap.OptVecs, snap.OptStep = so.OptimizerState()
					}
				}
				if err := store.WriteSnapshot(snap); err != nil {
					return nil, err
				}
			}
		}
	}
	res.Replans = ctrl.Events()
	res.Summary = metrics.Summarize(res.Times)
	if training {
		res.Params = params
	}
	return res, nil
}
