package sim

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
)

// SSPConfig simulates the Stale-Synchronous-Parallel baseline of Fig. 4: the
// dataset is split evenly, each worker iterates at its own speed and pushes
// stale gradients, and a worker may run at most Staleness iterations ahead
// of the slowest one. On heterogeneous clusters the staleness gate trips
// almost every step (the behaviour the paper reports).
type SSPConfig struct {
	// Throughputs are per-worker speeds as full-dataset fractions per second
	// (the same unit as sim.Config); each worker's 1/m shard costs
	// (1/m)/r_i seconds.
	Throughputs []float64
	// Staleness is the SSP bound (0 = BSP).
	Staleness int
	// Model, Data, Optimizer define the optimisation problem.
	Model     ml.Model
	Data      *ml.Dataset
	Optimizer ml.Optimizer
	// IterationsPerWorker is each worker's iteration budget.
	IterationsPerWorker int
	// FluctuationStd is mean-one lognormal compute jitter (0 = none).
	FluctuationStd float64
	// CommOverhead is the per-update communication cost in seconds.
	CommOverhead float64
	// Rng drives jitter; required when FluctuationStd > 0.
	Rng *rand.Rand
	// RecordEvery records loss every that many applied updates (default m).
	RecordEvery int
	// Name labels the resulting curve.
	Name string
}

// SSPResult is the outcome of an SSP simulation.
type SSPResult struct {
	// Curve is (simulated seconds, mean training loss).
	Curve metrics.Series
	// Params are the final parameters.
	Params []float64
	// FinalLoss is the final mean training loss.
	FinalLoss float64
	// BlockedEvents counts iteration starts delayed by the staleness gate.
	BlockedEvents int
	// TotalTime is the simulated makespan in seconds.
	TotalTime float64
}

type sspWorker struct {
	iters   int     // completed iterations
	finish  float64 // completion time of the in-flight iteration
	pending []float64
	blocked bool
	done    bool
}

// RunSSP simulates asynchronous SSP training with stale gradients: each
// worker snapshots the parameters when an iteration starts, computes its
// shard gradient from that snapshot, and applies it at completion time.
func RunSSP(cfg SSPConfig) (*SSPResult, error) {
	m := len(cfg.Throughputs)
	if m == 0 || cfg.Model == nil || cfg.Data == nil || cfg.Optimizer == nil {
		return nil, fmt.Errorf("%w: ssp requires throughputs/model/data/optimizer", ErrBadConfig)
	}
	if cfg.IterationsPerWorker <= 0 || cfg.Staleness < 0 {
		return nil, fmt.Errorf("%w: iters=%d staleness=%d", ErrBadConfig, cfg.IterationsPerWorker, cfg.Staleness)
	}
	for i, v := range cfg.Throughputs {
		if v <= 0 {
			return nil, fmt.Errorf("%w: throughput[%d]=%v", ErrBadConfig, i, v)
		}
	}
	if cfg.FluctuationStd > 0 && cfg.Rng == nil {
		return nil, fmt.Errorf("%w: fluctuation requires rng", ErrBadConfig)
	}
	if cfg.RecordEvery <= 0 {
		cfg.RecordEvery = m
	}
	shards, err := cfg.Data.Split(m)
	if err != nil {
		return nil, err
	}

	params := cfg.Model.InitParams(cfg.Rng)
	res := &SSPResult{Curve: metrics.Series{Name: cfg.Name}}
	if l, err := ml.MeanLoss(cfg.Model, params, cfg.Data); err == nil {
		res.Curve.Append(0, l)
	}

	computeTime := func(w int) float64 {
		t := (1 / float64(m)) / cfg.Throughputs[w]
		if cfg.FluctuationStd > 0 {
			sigma := cfg.FluctuationStd
			t *= math.Exp(sigma*cfg.Rng.NormFloat64() - sigma*sigma/2)
		}
		return t + cfg.CommOverhead
	}
	snapshotGrad := func(w int) ([]float64, error) {
		g, err := cfg.Model.Gradient(params, shards[w])
		if err != nil {
			return nil, err
		}
		g.Scale(1 / float64(shards[w].N()))
		return g, nil
	}

	workers := make([]sspWorker, m)
	for w := range workers {
		g, err := snapshotGrad(w)
		if err != nil {
			return nil, err
		}
		workers[w] = sspWorker{finish: computeTime(w), pending: g}
	}

	minIters := func() int {
		mi := math.MaxInt
		for w := range workers {
			if !workers[w].done && workers[w].iters < mi {
				mi = workers[w].iters
			}
		}
		if mi == math.MaxInt {
			mi = 0
		}
		return mi
	}

	now := 0.0
	updates := 0
	total := m * cfg.IterationsPerWorker
	for updates < total {
		// Earliest in-flight completion.
		next := -1
		for w := range workers {
			if workers[w].done || workers[w].blocked {
				continue
			}
			if next < 0 || workers[w].finish < workers[next].finish {
				next = w
			}
		}
		if next < 0 {
			return nil, fmt.Errorf("%w: ssp deadlock (all workers blocked)", ErrBadConfig)
		}
		w := &workers[next]
		now = w.finish
		if err := cfg.Optimizer.Step(params, w.pending); err != nil {
			return nil, err
		}
		w.iters++
		updates++
		if updates%cfg.RecordEvery == 0 {
			if l, err := ml.MeanLoss(cfg.Model, params, cfg.Data); err == nil {
				res.Curve.Append(now, l)
			}
		}
		if w.iters >= cfg.IterationsPerWorker {
			w.done = true
		} else if w.iters > minIters()+cfg.Staleness {
			// Too far ahead: wait for the slowest worker.
			w.blocked = true
			res.BlockedEvents++
		} else {
			g, err := snapshotGrad(next)
			if err != nil {
				return nil, err
			}
			w.pending = g
			w.finish = now + computeTime(next)
		}
		// Unblock any worker now within the staleness window.
		mi := minIters()
		for v := range workers {
			wv := &workers[v]
			if !wv.blocked || wv.done {
				continue
			}
			if wv.iters <= mi+cfg.Staleness {
				g, err := snapshotGrad(v)
				if err != nil {
					return nil, err
				}
				wv.pending = g
				wv.finish = now + computeTime(v)
				wv.blocked = false
			}
		}
	}
	res.Params = params
	res.TotalTime = now
	if l, err := ml.MeanLoss(cfg.Model, params, cfg.Data); err == nil {
		res.FinalLoss = l
	}
	return res, nil
}
