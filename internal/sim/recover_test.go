package sim

import (
	"errors"
	"path/filepath"
	"testing"

	"github.com/hetgc/hetgc/internal/checkpoint"
)

// crashBase is a churn-heavy schedule: speed drift, a kill, a join and a
// rejoin all land while checkpoints are being cut, so the resumed run must
// reconstruct plans, estimates and membership exactly mid-story.
func crashBase() ElasticSimConfig {
	return ElasticSimConfig{
		K: 8, S: 1,
		InitialRates: []float64{500, 400, 300, 500},
		Events: []ChurnEvent{
			{Iter: 6, Kind: SpeedStep, Member: 2, Factor: 0.1},
			{Iter: 10, Kind: Join, Rate: 450},
			{Iter: 14, Kind: Kill, Member: 3},
			{Iter: 22, Kind: Rejoin, Member: 3, Rate: 350},
			{Iter: 26, Kind: SpeedStep, Member: 1, Factor: 2.0},
		},
		Iterations:      36,
		Alpha:           0.5,
		DriftThreshold:  0.4,
		MinObservations: 2,
		CooldownIters:   3,
		Seed:            11,
	}
}

// TestCrashResumeBitIdentical is the co-simulation proof of the checkpoint
// subsystem: crash at iteration k, resume from the directory, and the
// stitched trajectory — times, epochs, membership — is bit-identical to the
// uninterrupted run for the same seed.
func TestCrashResumeBitIdentical(t *testing.T) {
	for _, crashAt := range []int{5, 17, 31} {
		un, err := RunElastic(crashBase())
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(t.TempDir(), "ckpt")
		crashed := crashBase()
		crashed.CheckpointDir = dir
		crashed.SnapshotEvery = 4
		crashed.CrashAtIter = crashAt
		partial, err := RunElastic(crashed)
		if err != nil {
			t.Fatalf("crash at %d: %v", crashAt, err)
		}
		if !partial.Crashed || len(partial.Times) != crashAt {
			t.Fatalf("crash at %d: Crashed=%v with %d times", crashAt, partial.Crashed, len(partial.Times))
		}

		resumed := crashBase()
		resumed.CheckpointDir = dir
		resumed.SnapshotEvery = 4
		resumed.Resume = true
		res, err := RunElastic(resumed)
		if err != nil {
			t.Fatalf("resume after crash at %d: %v", crashAt, err)
		}
		wantStart := (crashAt / 4) * 4 // the newest snapshot boundary
		if res.StartIter != wantStart {
			t.Fatalf("crash at %d: resumed at iter %d, want %d", crashAt, res.StartIter, wantStart)
		}
		if got := res.StartIter + len(res.Times); got != crashBase().Iterations {
			t.Fatalf("crash at %d: resumed run covers %d iterations", crashAt, got)
		}

		// Stitch crashed[0:start) + resumed[start:) and demand equality with
		// the uninterrupted trajectory, bit for bit.
		times := append(append([]float64(nil), partial.Times[:res.StartIter]...), res.Times...)
		epochs := append(append([]int(nil), partial.Epochs[:res.StartIter]...), res.Epochs...)
		counts := append(append([]int(nil), partial.MemberCounts[:res.StartIter]...), res.MemberCounts...)
		if len(times) != len(un.Times) {
			t.Fatalf("crash at %d: stitched %d iterations, uninterrupted %d", crashAt, len(times), len(un.Times))
		}
		for i := range un.Times {
			if times[i] != un.Times[i] || epochs[i] != un.Epochs[i] || counts[i] != un.MemberCounts[i] {
				t.Fatalf("crash at %d: iteration %d diverged: time %v vs %v, epoch %d vs %d, members %d vs %d",
					crashAt, i, times[i], un.Times[i], epochs[i], un.Epochs[i], counts[i], un.MemberCounts[i])
			}
		}
		// The overlap the resumed run re-executed (start..crashAt) must also
		// match what the crashed run had already produced — exact recovery,
		// not merely consistent continuation.
		for i := res.StartIter; i < crashAt; i++ {
			if res.Times[i-res.StartIter] != partial.Times[i] {
				t.Fatalf("crash at %d: re-executed iteration %d diverged from pre-crash history", crashAt, i)
			}
		}
	}
}

// TestCheckpointingDoesNotPerturb pins that a fully checkpointed,
// uninterrupted run is bit-identical to a bare one: the counting RNG source
// and the write-through add no behavioural drift.
func TestCheckpointingDoesNotPerturb(t *testing.T) {
	bare, err := RunElastic(crashBase())
	if err != nil {
		t.Fatal(err)
	}
	ck := crashBase()
	ck.CheckpointDir = t.TempDir() + "/ckpt"
	ck.SnapshotEvery = 3
	with, err := RunElastic(ck)
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Times) != len(with.Times) {
		t.Fatalf("length drift: %d vs %d", len(bare.Times), len(with.Times))
	}
	for i := range bare.Times {
		if bare.Times[i] != with.Times[i] || bare.Epochs[i] != with.Epochs[i] {
			t.Fatalf("iteration %d drifted under checkpointing", i)
		}
	}
}

// TestResumeRequiresState pins the typed failure modes.
func TestResumeRequiresState(t *testing.T) {
	cfg := crashBase()
	cfg.Resume = true
	if _, err := RunElastic(cfg); !errors.Is(err, ErrBadChurn) {
		t.Fatalf("resume without dir: %v, want ErrBadChurn", err)
	}
	cfg.CheckpointDir = filepath.Join(t.TempDir(), "empty")
	if _, err := RunElastic(cfg); !errors.Is(err, checkpoint.ErrNoCheckpoint) {
		t.Fatalf("resume from missing dir: %v, want ErrNoCheckpoint", err)
	}
}
