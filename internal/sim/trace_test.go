package sim

import (
	"math"
	"strings"
	"testing"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/straggler"
)

func TestWriteTimelineCSV(t *testing.T) {
	c := []float64{1, 2, 3, 4, 4}
	st, err := core.NewHeterAware(c, 7, 1, rng(30))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Strategy:    st,
		Throughputs: c,
		Injector:    straggler.Pinned{Workers: []int{1}, Delay: 3},
		Iterations:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTimelineCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// header + 2 iterations × 5 workers
	if len(lines) != 1+2*5 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "iteration,worker,compute_s,delay_s,finish_s,used,iter_time_s") {
		t.Fatalf("header = %q", lines[0])
	}
	// Worker 1 carries the 3s pinned delay.
	if !strings.Contains(lines[2], ",3,") {
		t.Fatalf("delay row = %q", lines[2])
	}
	// At least one worker per iteration must be marked used.
	usedSeen := false
	for _, l := range lines[1:] {
		if strings.Split(l, ",")[5] == "1" {
			usedSeen = true
		}
	}
	if !usedSeen {
		t.Fatal("no worker marked used")
	}
}

func TestWriteTimelineCSVWithFailure(t *testing.T) {
	naive, err := core.NewNaive(3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Strategy:    naive,
		Throughputs: []float64{1, 1, 1},
		Injector:    straggler.Pinned{Workers: []int{0}, Delay: math.Inf(1)},
		Iterations:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTimelineCSV(&sb, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "inf") {
		t.Fatalf("expected inf markers:\n%s", sb.String())
	}
}
