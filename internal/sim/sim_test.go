package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/straggler"
)

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// paperCluster is the Example 1 setup: c = [1 2 3 4 4], k = 7, s = 1.
func paperStrategies(t *testing.T) (heter, group, cyclic, naive *core.Strategy, c []float64) {
	t.Helper()
	c = []float64{1, 2, 3, 4, 4}
	var err error
	heter, err = core.NewHeterAware(c, 7, 1, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	group, err = core.NewGroupBased(c, 7, 1, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	cyclic, err = core.NewCyclic(5, 1, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	naive, err = core.NewNaive(5)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestConfigValidation(t *testing.T) {
	heter, _, _, _, c := paperStrategies(t)
	bad := []Config{
		{},
		{Strategy: heter, Throughputs: []float64{1}, Iterations: 1},
		{Strategy: heter, Throughputs: c, Iterations: 0},
		{Strategy: heter, Throughputs: []float64{1, 2, 3, 4, -4}, Iterations: 1},
		{Strategy: heter, Throughputs: c, Iterations: 1, FluctuationStd: 0.1}, // no rng
		{Strategy: heter, Throughputs: c, Iterations: 1, CommOverhead: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
			t.Fatalf("config %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestDeterministicNoDelayTimes(t *testing.T) {
	heter, _, _, naive, c := paperStrategies(t)
	// Heter-aware, no noise, no delay: every worker finishes at
	// (n_i/k)/r_i = (s+1)/Σr = 2/14 seconds exactly (Theorem 5 with
	// rates r_i = c_i/k).
	res, err := Run(Config{Strategy: heter, Throughputs: c, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("failed = %d", res.Failed)
	}
	want := 2.0 / 14
	for _, tm := range res.Times {
		if math.Abs(tm-want) > 1e-9 {
			t.Fatalf("iteration time %v, want %v (the optimal (s+1)/Σr)", tm, want)
		}
	}
	// Naive: uniform k=m=5 split; slowest worker (r=1) needs (1/5)/1 = 0.2s.
	resN, err := Run(Config{Strategy: naive, Throughputs: c, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resN.AvgIterTime()-0.2) > 1e-9 {
		t.Fatalf("naive time %v, want 0.2", resN.AvgIterTime())
	}
}

func TestHeterAwareOptimalMakespan(t *testing.T) {
	// Theorem 5: T(B) = (s+1)k/Σc_i, i.e. (s+1)/Σr in dataset-rate units.
	c := []float64{2, 2, 4, 4, 8, 8}
	st, err := core.NewHeterAware(c, 14, 1, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Strategy: st, Throughputs: c, Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 / 28
	if math.Abs(res.AvgIterTime()-want) > 1e-9 {
		t.Fatalf("time %v, want %v", res.AvgIterTime(), want)
	}
}

func TestStragglerToleranceUnderDelay(t *testing.T) {
	heter, group, cyclic, _, c := paperStrategies(t)
	for _, st := range []*core.Strategy{heter, group, cyclic} {
		inj := straggler.Fixed{Count: 1, Delay: 100, Rng: rng(5)}
		ths := c
		if st.Kind() == core.Cyclic {
			ths = c
		}
		res, err := Run(Config{Strategy: st, Throughputs: ths, Injector: inj, Iterations: 10})
		if err != nil {
			t.Fatalf("%v: %v", st.Kind(), err)
		}
		if res.Failed != 0 {
			t.Fatalf("%v: %d failures", st.Kind(), res.Failed)
		}
		// Coded schemes must not absorb the 100s delay.
		if res.Summary.Max > 50 {
			t.Fatalf("%v: max iter time %v — delay not tolerated", st.Kind(), res.Summary.Max)
		}
	}
}

func TestNaiveAbsorbsDelayAndFailsOnCrash(t *testing.T) {
	_, _, _, naive, c := paperStrategies(t)
	inj := straggler.Fixed{Count: 1, Delay: 100, Rng: rng(6)}
	res, err := Run(Config{Strategy: naive, Throughputs: c, Injector: inj, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Min < 100 {
		t.Fatalf("naive should absorb the full delay, min=%v", res.Summary.Min)
	}
	crash := straggler.Fixed{Count: 1, Delay: math.Inf(1), Rng: rng(7)}
	res2, err := Run(Config{Strategy: naive, Throughputs: c, Injector: crash, Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed != 4 {
		t.Fatalf("naive under crash: failed = %d, want 4", res2.Failed)
	}
}

func TestCodedSurvivesCrash(t *testing.T) {
	heter, group, _, _, c := paperStrategies(t)
	for _, st := range []*core.Strategy{heter, group} {
		crash := straggler.Fixed{Count: 1, Delay: math.Inf(1), Rng: rng(8)}
		res, err := Run(Config{Strategy: st, Throughputs: c, Injector: crash, Iterations: 10})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("%v: %d failures under crash", st.Kind(), res.Failed)
		}
	}
}

func TestCyclicSlowerThanHeterOnHeterogeneousCluster(t *testing.T) {
	heter, _, cyclic, _, c := paperStrategies(t)
	resH, err := Run(Config{Strategy: heter, Throughputs: c, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	resC, err := Run(Config{Strategy: cyclic, Throughputs: c, Iterations: 20})
	if err != nil {
		t.Fatal(err)
	}
	// Cyclic gives the slowest worker (c=1) a load of s+1=2 partitions of
	// size k_c = m... its per-iteration time is 2/1 = 2s; decode waits for
	// m−s = 4 workers, still bounded below by the 4th-slowest completion.
	if resC.AvgIterTime() <= resH.AvgIterTime() {
		t.Fatalf("cyclic (%v) should be slower than heter-aware (%v) on a heterogeneous cluster",
			resC.AvgIterTime(), resH.AvgIterTime())
	}
}

func TestUsageOrdering(t *testing.T) {
	heter, _, cyclic, naive, c := paperStrategies(t)
	run := func(st *core.Strategy) float64 {
		res, err := Run(Config{
			Strategy:       st,
			Throughputs:    c,
			Iterations:     30,
			FluctuationStd: 0.05,
			Rng:            rng(9),
		})
		if err != nil {
			t.Fatalf("%v: %v", st.Kind(), err)
		}
		return res.Usage
	}
	uh, uc, un := run(heter), run(cyclic), run(naive)
	if !(uh > uc && uc > un) {
		t.Fatalf("usage ordering heter(%v) > cyclic(%v) > naive(%v) violated", uh, uc, un)
	}
	if uh < 0.8 {
		t.Fatalf("heter-aware usage %v unexpectedly low", uh)
	}
}

func TestCommOverheadLowersUsage(t *testing.T) {
	heter, _, _, _, c := paperStrategies(t)
	noComm, err := Run(Config{Strategy: heter, Throughputs: c, Iterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	withComm, err := Run(Config{Strategy: heter, Throughputs: c, Iterations: 5, CommOverhead: 1})
	if err != nil {
		t.Fatal(err)
	}
	if withComm.Usage >= noComm.Usage {
		t.Fatalf("comm overhead should reduce usage: %v vs %v", withComm.Usage, noComm.Usage)
	}
	if withComm.AvgIterTime() <= noComm.AvgIterTime() {
		t.Fatal("comm overhead should lengthen iterations")
	}
}

func TestGroupBasedDecodesFromSingleGroup(t *testing.T) {
	_, group, _, _, c := paperStrategies(t)
	// Delay everyone except group {W3,W4} (indices 2,3): the group alone
	// recovers the gradient, so iteration time stays small.
	inj := straggler.Pinned{Workers: []int{0, 1, 4}, Delay: 50}
	res, err := Run(Config{Strategy: group, Throughputs: c, Injector: inj, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 || res.Summary.Max > 10 {
		t.Fatalf("group fast path failed: %+v", res.Summary)
	}
}

func TestFluctuationChangesTimes(t *testing.T) {
	heter, _, _, _, c := paperStrategies(t)
	res, err := Run(Config{
		Strategy: heter, Throughputs: c, Iterations: 50,
		FluctuationStd: 0.2, Rng: rng(10),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Std == 0 {
		t.Fatal("fluctuation should produce varying iteration times")
	}
}

func TestTrainConvergesAndMatchesUncodedGradient(t *testing.T) {
	c := []float64{1, 2, 3, 4, 4}
	st, err := core.NewHeterAware(c, 7, 1, rng(11))
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.GaussianMixture(210, 4, 3, 3, rng(12))
	if err != nil {
		t.Fatal(err)
	}
	model := &ml.Softmax{InputDim: 4, NumClasses: 3}
	res, err := Train(TrainConfig{
		Sim: Config{
			Strategy:    st,
			Throughputs: c,
			Injector:    straggler.Fixed{Count: 1, Delay: 10, Rng: rng(13)},
			Iterations:  60,
		},
		Model:     model,
		Data:      data,
		Optimizer: &ml.SGD{LR: 0.5},
		Name:      "heter-aware",
	})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Curve.Points[0].Y
	if res.FinalLoss >= first*0.7 {
		t.Fatalf("training did not converge: %v -> %v", first, res.FinalLoss)
	}
	// Curve x-axis must be increasing.
	for i := 1; i < len(res.Curve.Points); i++ {
		if res.Curve.Points[i].X <= res.Curve.Points[i-1].X {
			t.Fatal("curve times must increase")
		}
	}
}

func TestTrainDecodedGradientExactness(t *testing.T) {
	// With one crashed worker, the decoded gradient must still equal the
	// full-data gradient (the whole point of gradient coding).
	c := []float64{1, 2, 3, 4, 4}
	st, err := core.NewHeterAware(c, 7, 1, rng(14))
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.GaussianMixture(140, 3, 2, 3, rng(15))
	if err != nil {
		t.Fatal(err)
	}
	model := &ml.Softmax{InputDim: 3, NumClasses: 2}
	params := model.InitParams(nil)
	parts, err := data.Split(7)
	if err != nil {
		t.Fatal(err)
	}
	coeffs, err := st.Decode(core.AliveFromStragglers(5, []int{4}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeGradient(st, coeffs, model, params, parts, grad.CodecRaw)
	if err != nil {
		t.Fatal(err)
	}
	want, err := model.Gradient(params, data)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got.MaxAbsDiff(want); diff > 1e-8 {
		t.Fatalf("decoded gradient differs from truth by %v", diff)
	}
}

func TestTrainFailsWhenUndecodable(t *testing.T) {
	naive, err := core.NewNaive(4)
	if err != nil {
		t.Fatal(err)
	}
	data, err := ml.GaussianMixture(40, 3, 2, 3, rng(16))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Train(TrainConfig{
		Sim: Config{
			Strategy:    naive,
			Throughputs: []float64{1, 1, 1, 1},
			Injector:    straggler.Fixed{Count: 1, Delay: math.Inf(1), Rng: rng(17)},
			Iterations:  5,
		},
		Model:     &ml.Softmax{InputDim: 3, NumClasses: 2},
		Data:      data,
		Optimizer: &ml.SGD{LR: 0.1},
	})
	if err == nil {
		t.Fatal("naive training under crash must fail")
	}
}

func TestRunSSPConvergesAndBlocks(t *testing.T) {
	ths := []float64{1, 1, 8, 8} // strong heterogeneity → staleness stalls
	data, err := ml.GaussianMixture(160, 3, 2, 3, rng(18))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSSP(SSPConfig{
		Throughputs:         ths,
		Staleness:           2,
		Model:               &ml.Softmax{InputDim: 3, NumClasses: 2},
		Data:                data,
		Optimizer:           &ml.SGD{LR: 0.3},
		IterationsPerWorker: 30,
		Name:                "ssp",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockedEvents == 0 {
		t.Fatal("heterogeneous SSP should hit the staleness gate")
	}
	first := res.Curve.Points[0].Y
	if res.FinalLoss >= first {
		t.Fatalf("SSP did not reduce loss: %v -> %v", first, res.FinalLoss)
	}
	if res.TotalTime <= 0 {
		t.Fatal("total time must be positive")
	}
}

func TestRunSSPValidation(t *testing.T) {
	if _, err := RunSSP(SSPConfig{}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
	data, _ := ml.GaussianMixture(20, 2, 2, 2, rng(19))
	cfg := SSPConfig{
		Throughputs:         []float64{1, -1},
		Model:               &ml.Softmax{InputDim: 2, NumClasses: 2},
		Data:                data,
		Optimizer:           &ml.SGD{LR: 0.1},
		IterationsPerWorker: 1,
	}
	if _, err := RunSSP(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("err = %v", err)
	}
}

// Theorem 5 worst case: over every straggler pattern of size s (simulated
// as pinned crashes), heter-aware's iteration time never exceeds the
// optimum (s+1)k/Σc — in dataset-rate units, (s+1)/Σr.
func TestTheorem5WorstCase(t *testing.T) {
	c := []float64{1, 2, 3, 4, 4}
	st, err := core.NewHeterAware(c, 7, 1, rng(40))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range c {
		sum += v
	}
	optimal := 2.0 / sum
	for dead := 0; dead < len(c); dead++ {
		res, err := Run(Config{
			Strategy:    st,
			Throughputs: c,
			Injector:    straggler.Pinned{Workers: []int{dead}, Delay: math.Inf(1)},
			Iterations:  2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failed != 0 {
			t.Fatalf("pattern {%d} failed", dead)
		}
		if res.AvgIterTime() > optimal+1e-9 {
			t.Fatalf("pattern {%d}: time %v exceeds the Theorem 5 optimum %v",
				dead, res.AvgIterTime(), optimal)
		}
	}
}

// A worker that disconnects entirely mid-run must not break a coded master:
// the simulator models this as a permanent crash from some iteration on.
func TestPermanentCrashMidRun(t *testing.T) {
	c := []float64{1, 2, 3, 4, 4}
	st, err := core.NewGroupBased(c, 7, 1, rng(41))
	if err != nil {
		t.Fatal(err)
	}
	inj := crashAfter{worker: 3, fromIter: 5}
	res, err := Run(Config{Strategy: st, Throughputs: c, Injector: inj, Iterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("%d failures after permanent crash", res.Failed)
	}
}

// crashAfter permanently kills one worker from a given iteration onward.
type crashAfter struct {
	worker, fromIter int
}

func (c crashAfter) Delays(iter, m int) []float64 {
	out := make([]float64, m)
	if iter >= c.fromIter && c.worker < m {
		out[c.worker] = math.Inf(1)
	}
	return out
}
