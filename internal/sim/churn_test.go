package sim

import (
	"errors"
	"reflect"
	"testing"

	"github.com/hetgc/hetgc/internal/core"
)

// churnScenario mirrors the live end-to-end churn test: two of four workers
// slow 10x at iteration 8, a fifth joins at 12, one slow worker is killed at
// 20 and rejoins recovered at 26.
func churnScenario() ElasticSimConfig {
	return ElasticSimConfig{
		K: 8, S: 1,
		InitialRates: []float64{500, 500, 500, 500},
		Events: []ChurnEvent{
			{Iter: 8, Kind: SpeedStep, Member: 1, Factor: 0.1},
			{Iter: 8, Kind: SpeedStep, Member: 3, Factor: 0.1},
			{Iter: 12, Kind: Join, Rate: 500},
			{Iter: 20, Kind: Kill, Member: 3},
			{Iter: 26, Kind: Rejoin, Member: 3, Rate: 500},
		},
		Iterations:      36,
		Alpha:           0.5,
		DriftThreshold:  0.5,
		MinObservations: 2,
		CooldownIters:   3,
		Seed:            7,
	}
}

func TestRunElasticChurnScenario(t *testing.T) {
	res, err := RunElastic(churnScenario())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != 36 || len(res.Epochs) != 36 || len(res.MemberCounts) != 36 {
		t.Fatalf("lengths: times=%d epochs=%d members=%d", len(res.Times), len(res.Epochs), len(res.MemberCounts))
	}
	// The control plane must have migrated for drift (the slowdowns) and
	// churn (join, kill, rejoin).
	reasons := map[string]int{}
	for _, ev := range res.Replans {
		reasons[ev.Reason]++
	}
	if reasons["initial"] != 1 || reasons["churn"] < 3 || reasons["drift"] < 1 {
		t.Fatalf("replan reasons = %v, want 1 initial, ≥3 churn, ≥1 drift", reasons)
	}
	for i := 1; i < len(res.Epochs); i++ {
		if res.Epochs[i] < res.Epochs[i-1] {
			t.Fatalf("epochs regressed: %v", res.Epochs)
		}
	}
	// Membership trace: 4 → 5 (join) → 4 (kill) → 5 (rejoin).
	if res.MemberCounts[0] != 4 || res.MemberCounts[13] != 5 || res.MemberCounts[21] != 4 || res.MemberCounts[30] != 5 {
		t.Fatalf("member counts = %v", res.MemberCounts)
	}
	// Post-migration speed: the drift replan must beat the drifted frozen
	// plan. Compare against a lobotomised control plane (no drift replans)
	// over the same slowdown (no membership events, which a frozen plan
	// cannot absorb anyway).
	frozen := churnScenario()
	frozen.Events = []ChurnEvent{
		{Iter: 8, Kind: SpeedStep, Member: 1, Factor: 0.1},
		{Iter: 8, Kind: SpeedStep, Member: 3, Factor: 0.1},
	}
	frozen.DriftThreshold = 1e9
	frozen.CooldownIters = 1 << 30
	base, err := RunElastic(frozen)
	if err != nil {
		t.Fatal(err)
	}
	tail := func(xs []float64) float64 {
		sum := 0.0
		for _, x := range xs[len(xs)-10:] {
			sum += x
		}
		return sum / 10
	}
	if at, bt := tail(res.Times), tail(base.Times); at >= bt {
		t.Fatalf("adaptive tail %.5fs not better than frozen tail %.5fs", at, bt)
	}
}

func TestRunElasticDeterministic(t *testing.T) {
	a, err := RunElastic(churnScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunElastic(churnScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("elastic simulation is not bit-identical across runs:\n%+v\nvs\n%+v", a, b)
	}
	// A different seed changes strategy construction but must still run.
	other := churnScenario()
	other.Seed = 8
	if _, err := RunElastic(other); err != nil {
		t.Fatal(err)
	}
}

func TestRunElasticGroupBasedScheme(t *testing.T) {
	cfg := churnScenario()
	cfg.Scheme = core.GroupBased
	res, err := RunElastic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Times) != cfg.Iterations {
		t.Fatalf("times = %d", len(res.Times))
	}
}

func TestRunElasticValidation(t *testing.T) {
	bad := []func(c *ElasticSimConfig){
		func(c *ElasticSimConfig) { c.InitialRates = nil },
		func(c *ElasticSimConfig) { c.Iterations = 0 },
		func(c *ElasticSimConfig) { c.CommOverhead = -1 },
		func(c *ElasticSimConfig) { c.InitialRates = []float64{1, -1} },
		func(c *ElasticSimConfig) { c.Events = []ChurnEvent{{Iter: 0, Kind: Kill, Member: 99}} },
		func(c *ElasticSimConfig) { c.Events = []ChurnEvent{{Iter: 0, Kind: SpeedStep, Member: 1, Factor: -2}} },
		func(c *ElasticSimConfig) { c.Events = []ChurnEvent{{Iter: 0, Kind: Join, Rate: 0}} },
		func(c *ElasticSimConfig) { c.Events = []ChurnEvent{{Iter: 0, Kind: Rejoin, Member: 1}} },
		func(c *ElasticSimConfig) { c.Events = []ChurnEvent{{Iter: 0, Kind: ChurnKind(99)}} },
	}
	for i, mutate := range bad {
		cfg := churnScenario()
		mutate(&cfg)
		if _, err := RunElastic(cfg); !errors.Is(err, ErrBadChurn) {
			t.Fatalf("case %d: err = %v, want ErrBadChurn", i, err)
		}
	}
	// Killing below the planning quorum surfaces the controller error.
	cfg := churnScenario()
	cfg.Events = []ChurnEvent{
		{Iter: 2, Kind: Kill, Member: 1},
		{Iter: 2, Kind: Kill, Member: 2},
		{Iter: 2, Kind: Kill, Member: 3},
	}
	if _, err := RunElastic(cfg); err == nil {
		t.Fatal("expected failure when membership collapses below quorum")
	}
}

func TestChurnKindString(t *testing.T) {
	cases := map[ChurnKind]string{
		SpeedStep:     "speed-step",
		Kill:          "kill",
		Join:          "join",
		Rejoin:        "rejoin",
		ChurnKind(42): "ChurnKind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
