package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/hetgc/hetgc/internal/straggler"
)

func shardedChurnConfig(seed int64) ShardedSimConfig {
	rates := make([]float64, 20)
	for i := range rates {
		rates[i] = 100
	}
	return ShardedSimConfig{
		K: 40, S: 1, GroupSize: 5,
		Rates: rates,
		Events: []ChurnEvent{
			{Iter: 8, Kind: SpeedStep, Member: 3, Factor: 0.1},
			{Iter: 16, Kind: Kill, Member: 7},
			{Iter: 20, Kind: Join, Rate: 100},
			{Iter: 24, Kind: Rejoin, Member: 7},
		},
		Iterations:      32,
		Alpha:           0.5,
		DriftThreshold:  0.4,
		MinObservations: 2,
		CooldownIters:   3,
		Injector:        straggler.Fixed{Count: 1, Delay: 2, Rng: rand.New(rand.NewSource(seed + 1000))},
		Seed:            seed,
	}
}

func TestShardedSimDeterministic(t *testing.T) {
	a, err := RunSharded(shardedChurnConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSharded(shardedChurnConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Times, b.Times) {
		t.Fatal("iteration times differ between identically-seeded runs")
	}
	if !reflect.DeepEqual(a.Epochs, b.Epochs) {
		t.Fatal("epoch traces differ between identically-seeded runs")
	}
	if !reflect.DeepEqual(a.Replans, b.Replans) {
		t.Fatal("replan histories differ between identically-seeded runs")
	}
	if !reflect.DeepEqual(a.GroupTimes, b.GroupTimes) {
		t.Fatal("group time traces differ between identically-seeded runs")
	}
}

// TestShardedSimGroupLocalReplanning is the epoch-fencing contract: churn
// and drift replan only the group they happen in.
func TestShardedSimGroupLocalReplanning(t *testing.T) {
	cfg := shardedChurnConfig(5)
	cfg.Injector = nil // isolate the scheduled events
	res, err := RunSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Groups < 2 {
		t.Fatalf("want ≥ 2 groups, got %d", res.Groups)
	}

	// Every group replans once at iteration 0 ("initial", epoch 0). After
	// that, only the groups hit by events migrate: epochs must not advance
	// in lockstep across groups.
	last := res.Epochs[len(res.Epochs)-1]
	moved, stayed := 0, 0
	for _, e := range last {
		if e > 0 {
			moved++
		} else {
			stayed++
		}
	}
	if moved == 0 {
		t.Fatal("no group ever migrated despite speed-step/kill/join/rejoin churn")
	}
	if stayed == 0 {
		t.Fatalf("every group migrated (final epochs %v) — replanning is not group-local", last)
	}

	// The kill at iteration 16 must replan exactly one group at that
	// boundary (the owner); every other group's epoch is unchanged across
	// the boundary.
	bumped := 0
	for g := range last {
		if res.Epochs[16][g] > res.Epochs[15][g] {
			bumped++
		}
	}
	if bumped != 1 {
		t.Fatalf("kill at iter 16 bumped %d groups' epochs, want exactly 1", bumped)
	}

	// Replan events carry group indices; non-initial events must touch a
	// strict subset of groups.
	nonInitial := map[int]bool{}
	for _, ev := range res.Replans {
		if ev.Reason != "initial" {
			nonInitial[ev.Group] = true
		}
	}
	if len(nonInitial) == 0 || len(nonInitial) >= res.Groups {
		t.Fatalf("non-initial replans touched %d of %d groups, want a strict non-empty subset", len(nonInitial), res.Groups)
	}
}

// shardedAt200 is the 200-worker comparison fixture: uniform fleet with a
// realistic per-upload master ingest cost. GroupSize 200 degenerates to the
// flat runtime (one group, one master ingesting all 200 uploads, no tree),
// so flat and sharded run the exact same simulation code.
func shardedAt200(groupSize int) ShardedSimConfig {
	rates := make([]float64, 200)
	for i := range rates {
		rates[i] = 100 // global partitions/second
	}
	return ShardedSimConfig{
		K: 400, S: 1, GroupSize: groupSize, FanIn: 4,
		Rates:         rates,
		Iterations:    25,
		IngestSeconds: 0.002, // 2ms to receive+decode one gradient upload
		HopSeconds:    0.005, // one reduction-tree hop
		Seed:          7,
	}
}

// TestShardedBeatsFlatAt200Workers is the scale-out acceptance bar: at 200
// simulated workers, the hierarchical runtime must finish iterations at
// least 2x faster than the flat single-master runtime. The flat master is
// serialised behind ingesting all 200 uploads on one path; group masters
// ingest ~10 each in parallel and the reduction tree pays at most
// FanIn coalesced (batched) frames per hop.
func TestShardedBeatsFlatAt200Workers(t *testing.T) {
	sharded, err := RunSharded(shardedAt200(10))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := RunSharded(shardedAt200(200))
	if err != nil {
		t.Fatal(err)
	}
	if flat.Groups != 1 || flat.Depth != 0 {
		t.Fatalf("flat baseline not flat: %d groups, depth %d", flat.Groups, flat.Depth)
	}
	if sharded.Groups != 20 {
		t.Fatalf("sharded run has %d groups, want 20", sharded.Groups)
	}

	flatMean := flat.Summary.Mean
	shardMean := sharded.Summary.Mean
	t.Logf("flat mean %.4fs, sharded mean %.4fs (%.1fx)", flatMean, shardMean, flatMean/shardMean)
	// Typical ratio is ~4-5x; the acceptance bar is 2x with generous margin.
	if flatMean < 2*shardMean {
		t.Fatalf("sharded not ≥2x faster at 200 workers: flat %.4fs vs sharded %.4fs", flatMean, shardMean)
	}

	// Determinism at scale: the comparison is reproducible bit-for-bit.
	again, err := RunSharded(shardedAt200(10))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sharded.Times, again.Times) {
		t.Fatal("sharded run not bit-identical across replays")
	}
}

func TestShardedSimHopLatencyAndOverhead(t *testing.T) {
	rates := make([]float64, 40)
	for i := range rates {
		rates[i] = 100
	}
	base := ShardedSimConfig{
		K: 80, S: 1, GroupSize: 10, FanIn: 2,
		Rates: rates, Iterations: 4, Seed: 11,
	}
	noCost, err := RunSharded(base)
	if err != nil {
		t.Fatal(err)
	}
	withCost := base
	withCost.HopSeconds = 0.1
	withCost.CommOverhead = 0.3
	costly, err := RunSharded(withCost)
	if err != nil {
		t.Fatal(err)
	}
	if noCost.Depth != 2 { // 4 groups, fan-in 2 → 2 hops
		t.Fatalf("depth = %d, want 2", noCost.Depth)
	}
	wantExtra := 2*0.1 + 0.3
	for i := range noCost.Times {
		got := costly.Times[i] - noCost.Times[i]
		if math.Abs(got-wantExtra) > 1e-9 {
			t.Fatalf("iter %d: hop+comm surcharge %.4f, want %.4f", i, got, wantExtra)
		}
	}
}

func TestShardedSimRejectsBadConfig(t *testing.T) {
	rates := []float64{100, 100, 100}
	cases := []ShardedSimConfig{
		{K: 4, S: 1, Iterations: 3},                                 // no members
		{K: 4, S: 1, Rates: rates},                                  // no iterations
		{K: 4, S: 1, Rates: rates, Iterations: 3, CommOverhead: -1}, // negative comm
		{K: 4, S: 1, Rates: rates, Iterations: 3, HopSeconds: -0.1}, // negative hop
		{K: 0, S: 1, Rates: rates, Iterations: 3},                   // bad k
		{K: 4, S: 1, Rates: []float64{1, -1, 1}, Iterations: 3},     // bad rate
		{K: 4, S: 3, Rates: rates, Iterations: 3},                   // m < s+1
	}
	for i, cfg := range cases {
		if _, err := RunSharded(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}

	// Churn schedule errors.
	bad := []ChurnEvent{{Iter: 0, Kind: Kill, Member: 99}}
	cfg := ShardedSimConfig{K: 4, S: 1, Rates: rates, Iterations: 3, Events: bad}
	if _, err := RunSharded(cfg); err == nil {
		t.Fatal("kill of unknown member: expected error")
	}
}
