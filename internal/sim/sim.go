// Package sim is the discrete-event cluster simulator standing in for the
// paper's QingCloud testbed. It reproduces the quantities the evaluation
// measures: per-iteration makespan under a coding strategy (Figs. 2–3),
// computing-resource usage (Fig. 5), and — combined with real models from
// internal/ml — training-loss-versus-wallclock curves (Fig. 4).
//
// Per iteration, worker i needs (n_i/k)/r_i seconds of compute (its share of
// the dataset over its true processing rate), scaled by multiplicative
// lognormal fluctuation, plus any injected straggler delay. The master observes
// completions in time order and finishes the iteration at the first moment
// the alive set can decode the aggregated gradient.
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/straggler"
)

// ErrBadConfig is returned for invalid simulation configurations.
var ErrBadConfig = errors.New("sim: invalid config")

// Config parameterises a timing simulation.
type Config struct {
	// Strategy is the coding strategy under test.
	Strategy *core.Strategy
	// Throughputs are the *true* per-worker speeds, expressed as full-dataset
	// fractions per second (so that schemes with different partition counts k
	// are directly comparable: one partition costs 1/k of a dataset). The
	// paper's c_i (partitions/second) equals Throughputs[i]·k. These may
	// differ from the estimates the strategy was built with — that gap is
	// exactly the mis-estimation ablation.
	Throughputs []float64
	// Injector adds per-iteration straggler delays; nil means none.
	Injector straggler.Injector
	// Iterations is the number of training iterations to simulate.
	Iterations int
	// FluctuationStd is the sigma of mean-one lognormal noise multiplying
	// compute time (runtime jitter); 0 disables it.
	FluctuationStd float64
	// CommOverhead is the fixed per-iteration communication time in seconds
	// (broadcast + collection), added to every iteration.
	CommOverhead float64
	// Rng drives fluctuation noise. Required when FluctuationStd > 0.
	Rng *rand.Rand
}

func (c *Config) validate() error {
	if c.Strategy == nil {
		return fmt.Errorf("%w: nil strategy", ErrBadConfig)
	}
	if len(c.Throughputs) != c.Strategy.M() {
		return fmt.Errorf("%w: %d throughputs for %d workers", ErrBadConfig, len(c.Throughputs), c.Strategy.M())
	}
	for i, v := range c.Throughputs {
		if v <= 0 {
			return fmt.Errorf("%w: throughput[%d]=%v", ErrBadConfig, i, v)
		}
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("%w: iterations=%d", ErrBadConfig, c.Iterations)
	}
	if c.FluctuationStd < 0 || c.CommOverhead < 0 {
		return fmt.Errorf("%w: fluctuation=%v comm=%v", ErrBadConfig, c.FluctuationStd, c.CommOverhead)
	}
	if c.FluctuationStd > 0 && c.Rng == nil {
		return fmt.Errorf("%w: fluctuation requires rng", ErrBadConfig)
	}
	return nil
}

// IterationOutcome describes one simulated iteration.
type IterationOutcome struct {
	// Time is the iteration wall time in seconds (decode point plus
	// communication overhead); +Inf when the iteration cannot complete.
	Time float64
	// Alive is the worker set available at the decode point (nil on failure).
	Alive []bool
	// Coeffs are the decoding coefficients used (nil on failure). The slice
	// is shared with the strategy's decode-plan cache: treat it as read-only.
	Coeffs []float64
	// ComputeTimes are each worker's pure compute durations (seconds).
	ComputeTimes []float64
	// Delays are the injected straggler delays. When no injector is
	// configured, every outcome of a run shares one all-zero slice: treat it
	// as read-only.
	Delays []float64
}

// Result aggregates a multi-iteration run.
type Result struct {
	// Iterations holds per-iteration outcomes.
	Iterations []IterationOutcome
	// Times lists per-iteration wall times (+Inf for failures).
	Times []float64
	// Failed counts undecodable iterations.
	Failed int
	// Usage is the Fig. 5 computing-resource usage over successful
	// iterations: Σ busy time / Σ wall time across workers.
	Usage float64
	// Summary summarises the finite iteration times.
	Summary metrics.Summary
}

// AvgIterTime returns the mean over finite iteration times, or +Inf when
// every iteration failed.
func (r *Result) AvgIterTime() float64 {
	if r.Summary.Count == 0 {
		return math.Inf(1)
	}
	return r.Summary.Mean
}

// Run simulates cfg.Iterations iterations and aggregates the outcomes.
func Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	res := &Result{
		Iterations: make([]IterationOutcome, 0, cfg.Iterations),
		Times:      make([]float64, 0, cfg.Iterations),
	}
	var usage metrics.UsageTally
	finite := make([]float64, 0, cfg.Iterations)
	scr := newIterScratch(cfg.Strategy)
	for iter := 0; iter < cfg.Iterations; iter++ {
		out := simulateIteration(&cfg, iter, scr)
		res.Iterations = append(res.Iterations, out)
		res.Times = append(res.Times, out.Time)
		if math.IsInf(out.Time, 1) {
			res.Failed++
			continue
		}
		finite = append(finite, out.Time)
		accountUsage(&usage, &out, cfg.CommOverhead)
	}
	res.Usage = usage.Usage()
	res.Summary = metrics.Summarize(finite)
	return res, nil
}

// iterScratch holds the per-iteration working buffers the simulator reuses
// across iterations: only the outputs retained in IterationOutcome are
// allocated fresh.
type iterScratch struct {
	finish  []float64
	noDelay []float64 // permanently zero, used when no injector is set
	order   []int
	alive   []bool
	cover   *coverage
}

func newIterScratch(st *core.Strategy) *iterScratch {
	m := st.M()
	return &iterScratch{
		finish:  make([]float64, m),
		noDelay: make([]float64, m),
		order:   make([]int, m),
		alive:   make([]bool, m),
		cover:   newCoverage(st),
	}
}

// simulateIteration runs one BSP iteration: draw compute times and delays,
// replay completions in time order, stop at the first decodable prefix.
func simulateIteration(cfg *Config, iter int, scr *iterScratch) IterationOutcome {
	st := cfg.Strategy
	m := st.M()
	loads := st.Allocation().Loads

	delays := scr.noDelay
	if cfg.Injector != nil {
		delays = cfg.Injector.Delays(iter, m)
	}
	compute := make([]float64, m)
	finish := scr.finish
	k := float64(st.K())
	for i := 0; i < m; i++ {
		// One partition is 1/k of the dataset; throughput is datasets/second.
		t := (float64(loads[i]) / k) / cfg.Throughputs[i]
		if cfg.FluctuationStd > 0 {
			// Mean-one lognormal: exp(sigma·z − sigma²/2).
			sigma := cfg.FluctuationStd
			t *= math.Exp(sigma*cfg.Rng.NormFloat64() - sigma*sigma/2)
		}
		compute[i] = t
		finish[i] = t + delays[i]
	}

	order := scr.order
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return finish[order[a]] < finish[order[b]] })

	out := IterationOutcome{
		Time:         math.Inf(1),
		ComputeTimes: compute,
		Delays:       delays,
	}
	alive := scr.alive
	for i := range alive {
		alive[i] = false
	}
	cover := scr.cover
	cover.reset()
	for _, w := range order {
		if math.IsInf(finish[w], 1) {
			break // crashed workers never arrive
		}
		alive[w] = true
		cover.add(w)
		if !cover.complete() {
			continue
		}
		coeffs, err := st.Decode(alive)
		if err != nil {
			continue
		}
		out.Time = finish[w] + cfg.CommOverhead
		out.Alive = append([]bool(nil), alive...)
		// The decode-plan cache owns coeffs; the outcome shares the row, so
		// consumers must treat it as read-only (they all do — the master
		// combines with it, trace renders it).
		out.Coeffs = coeffs
		break
	}
	return out
}

// coverage tracks, incrementally, whether every partition has at least one
// alive holder — a cheap necessary condition gating the decode attempts.
type coverage struct {
	parts     [][]int
	count     []int
	uncovered int
}

func newCoverage(st *core.Strategy) *coverage {
	return &coverage{
		parts:     st.Allocation().Parts,
		count:     make([]int, st.K()),
		uncovered: st.K(),
	}
}

func (c *coverage) add(w int) {
	for _, p := range c.parts[w] {
		if c.count[p] == 0 {
			c.uncovered--
		}
		c.count[p]++
	}
}

func (c *coverage) complete() bool { return c.uncovered == 0 }

// reset clears the tally for reuse in the next iteration.
func (c *coverage) reset() {
	for i := range c.count {
		c.count[i] = 0
	}
	c.uncovered = len(c.count)
}

// accountUsage implements Fig. 5 accounting: the iteration barrier is the
// decode point T; a worker is busy for the part of its compute that fits in
// [delay, T], and its wall time is T plus the communication overhead.
func accountUsage(u *metrics.UsageTally, out *IterationOutcome, comm float64) {
	barrier := out.Time - comm
	for i, ct := range out.ComputeTimes {
		window := barrier - out.Delays[i]
		if window < 0 || math.IsInf(out.Delays[i], 1) {
			window = 0
		}
		busy := math.Min(ct, window)
		u.Add(busy, out.Time)
	}
}
