package sim

import (
	"fmt"
	"math"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/metrics"
	"github.com/hetgc/hetgc/internal/ml"
)

// TrainConfig couples a timing simulation with a real optimisation run: the
// simulator provides wall-clock per iteration, the model provides true
// gradients, and the coding layer encodes/decodes them exactly as the real
// runtime would. This regenerates Fig. 4's loss-versus-time curves.
type TrainConfig struct {
	// Sim is the timing side: strategy, true throughputs, stragglers, noise.
	Sim Config
	// Model is the model being trained.
	Model ml.Model
	// Data is the full training dataset; it is split into Strategy.K()
	// partitions.
	Data *ml.Dataset
	// Optimizer applies decoded gradients.
	Optimizer ml.Optimizer
	// RecordEvery records the loss every that many iterations (default 1).
	RecordEvery int
	// Name labels the resulting curve.
	Name string
}

// TrainResult is the outcome of a coded training simulation.
type TrainResult struct {
	// Curve is (simulated seconds, mean training loss).
	Curve metrics.Series
	// Params are the final parameters.
	Params []float64
	// FinalLoss is the final mean training loss.
	FinalLoss float64
	// Timing aggregates the underlying timing simulation.
	Timing Result
}

// Train runs the coded BSP training co-simulation.
func Train(cfg TrainConfig) (*TrainResult, error) {
	if err := cfg.Sim.validate(); err != nil {
		return nil, err
	}
	if cfg.Model == nil || cfg.Data == nil || cfg.Optimizer == nil {
		return nil, fmt.Errorf("%w: model/data/optimizer required", ErrBadConfig)
	}
	if cfg.RecordEvery <= 0 {
		cfg.RecordEvery = 1
	}
	st := cfg.Sim.Strategy
	parts, err := cfg.Data.Split(st.K())
	if err != nil {
		return nil, err
	}
	params := cfg.Model.InitParams(cfg.Sim.Rng)
	res := &TrainResult{Curve: metrics.Series{Name: cfg.Name}}
	var usage metrics.UsageTally
	var finite []float64
	clock := 0.0
	n := float64(cfg.Data.N())

	if l, err := ml.MeanLoss(cfg.Model, params, cfg.Data); err == nil {
		res.Curve.Append(0, l)
	}

	scr := newIterScratch(st)
	for iter := 0; iter < cfg.Sim.Iterations; iter++ {
		out := simulateIteration(&cfg.Sim, iter, scr)
		res.Timing.Iterations = append(res.Timing.Iterations, out)
		res.Timing.Times = append(res.Timing.Times, out.Time)
		if math.IsInf(out.Time, 1) {
			res.Timing.Failed++
			return nil, fmt.Errorf("%w: iteration %d undecodable (scheme %v cannot proceed)", ErrBadConfig, iter, st.Kind())
		}
		finite = append(finite, out.Time)
		accountUsage(&usage, &out, cfg.Sim.CommOverhead)
		clock += out.Time

		g, err := decodeGradient(st, out.Coeffs, cfg.Model, params, parts, grad.CodecRaw)
		if err != nil {
			return nil, err
		}
		g.Scale(1 / n)
		if err := cfg.Optimizer.Step(params, g); err != nil {
			return nil, err
		}
		if (iter+1)%cfg.RecordEvery == 0 {
			l, err := ml.MeanLoss(cfg.Model, params, cfg.Data)
			if err != nil {
				return nil, err
			}
			res.Curve.Append(clock, l)
		}
	}
	res.Params = params
	res.Timing.Usage = usage.Usage()
	res.Timing.Summary = metrics.Summarize(finite)
	if l, err := ml.MeanLoss(cfg.Model, params, cfg.Data); err == nil {
		res.FinalLoss = l
	}
	return res, nil
}

// decodeGradient reproduces the full coding path with real gradients: each
// contributing worker computes its partition gradients, encodes them with
// its row of B (g̃_w = Σ_j B[w][j]·g_j), and the master combines the coded
// gradients with the decoding coefficients (g = Σ_w a_w·g̃_w). Partition
// gradients are computed once and shared across workers. A non-raw codec
// round-trips every coded upload through quantize→dequantize, exactly as the
// wire would.
func decodeGradient(st *core.Strategy, coeffs []float64, model ml.Model, params []float64, parts []*ml.Dataset, codec grad.Codec) (grad.Gradient, error) {
	partGrad := make(map[int]grad.Gradient)
	partial := func(p int) (grad.Gradient, error) {
		if g, ok := partGrad[p]; ok {
			return g, nil
		}
		g, err := model.Gradient(params, parts[p])
		if err != nil {
			return nil, err
		}
		partGrad[p] = g
		return g, nil
	}
	coded := make([]grad.Gradient, st.M())
	defer func() {
		for _, c := range coded {
			grad.PutBuffer(c)
		}
	}()
	alloc := st.Allocation()
	var partials []grad.Gradient
	var rowCoeffs []float64
	// A worker with an empty allocation (an elastic plan can assign zero
	// load to a very slow member) uploads the zero vector in the live
	// runtime; its contribution is exactly zero, so drop its coefficient
	// instead of encoding an empty combination.
	use := coeffs
	for w, a := range coeffs {
		if a != 0 && len(alloc.Parts[w]) == 0 {
			use = append([]float64(nil), coeffs...)
			for v := range use {
				if len(alloc.Parts[v]) == 0 {
					use[v] = 0
				}
			}
			break
		}
	}
	coeffs = use
	for w, a := range coeffs {
		if a == 0 {
			continue
		}
		row := st.Row(w)
		partials, rowCoeffs = partials[:0], rowCoeffs[:0]
		for _, p := range alloc.Parts[w] {
			g, err := partial(p)
			if err != nil {
				return nil, err
			}
			partials = append(partials, g)
			rowCoeffs = append(rowCoeffs, row[p])
		}
		enc := grad.GetBuffer(model.Dim())
		if err := grad.EncodeInto(enc, rowCoeffs, partials); err != nil {
			grad.PutBuffer(enc)
			return nil, err
		}
		if codec != grad.CodecRaw {
			q, err := grad.AppendQuantized(grad.GetBytes(8*len(enc)), codec, enc)
			if err != nil {
				grad.PutBuffer(enc)
				return nil, err
			}
			dec, err := grad.Dequantize(codec, q, len(enc))
			grad.PutBytes(q)
			if err != nil {
				grad.PutBuffer(enc)
				return nil, err
			}
			copy(enc, dec)
		}
		coded[w] = enc
	}
	return grad.Combine(coeffs, coded, model.Dim())
}
