package fleet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/node"
	"github.com/hetgc/hetgc/internal/obs"
)

// twoNodeFleet starts two real telemetry servers with distinct histories
// and returns their scrape plan plus a third, dead endpoint.
func twoNodeFleet(t *testing.T) ([]Node, func()) {
	t.Helper()
	mRoot := obs.New()
	mRoot.OnIteration(0, 0.050)
	mRoot.OnIteration(0, 0.070)
	mRoot.OnPromotion(2, 7)
	mRoot.Event(obs.Event{Kind: obs.EvFence, Iter: 7, Detail: "deposed root generation 1"})
	mRoot.BindWireCodecs([]string{"raw", "fp16"}, func(c byte) (uint64, uint64, uint64, uint64) {
		if c == 1 {
			return 0, 0, 0, 4096
		}
		return 0, 0, 0, 0
	})

	mWorker := obs.New()
	mWorker.Event(obs.Event{Kind: obs.EvAdoption, Iter: 3, Member: 2})
	mWorker.BindWireCodecs([]string{"raw", "fp16"}, func(c byte) (uint64, uint64, uint64, uint64) {
		if c == 1 {
			return 0, 0, 0, 1024
		}
		return 0, 0, 0, 100
	})

	sRoot, err := obs.NewServer("127.0.0.1:0", mRoot)
	if err != nil {
		t.Fatal(err)
	}
	sWorker, err := obs.NewServer("127.0.0.1:0", mWorker)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []Node{
		{Name: "root", Addr: sRoot.Addr()},
		{Name: "worker", Addr: sWorker.Addr()},
		{Name: "ghost", Addr: "127.0.0.1:1"},
	}
	return nodes, func() { sRoot.Close(); sWorker.Close() }
}

func TestCollectMergesFleet(t *testing.T) {
	nodes, done := twoNodeFleet(t)
	defer done()

	sc := &Scraper{Timeout: 2 * time.Second}
	snap := sc.Collect(nodes, &LiveRoot{Gen: 2, Holder: "gcroot-standby", Addr: "10.0.0.2:7000"})

	if got := snap.Unhealthy(); len(got) != 1 || got[0] != "ghost" {
		t.Fatalf("unhealthy = %v, want [ghost]", got)
	}
	if !snap.Nodes[0].Healthy || !snap.Nodes[1].Healthy {
		t.Fatalf("live nodes reported unhealthy: %+v", snap.Nodes)
	}

	// The merged timeline is node-labeled and globally time-ordered.
	if len(snap.Timeline) != 3 {
		t.Fatalf("timeline has %d events, want 3: %+v", len(snap.Timeline), snap.Timeline)
	}
	for i := 1; i < len(snap.Timeline); i++ {
		if snap.Timeline[i].Time.Before(snap.Timeline[i-1].Time) {
			t.Fatalf("timeline out of order at %d: %+v", i, snap.Timeline)
		}
	}
	kinds := map[string]string{}
	for _, ev := range snap.Timeline {
		kinds[ev.Kind] = ev.Node
	}
	if kinds[obs.EvFailover] != "root" || kinds[obs.EvFence] != "root" || kinds[obs.EvAdoption] != "worker" {
		t.Fatalf("timeline attribution wrong: %v", kinds)
	}

	// Aggregates: root drives iterations; codec bytes sum across nodes.
	if snap.Agg.IterationsTotal != 2 {
		t.Fatalf("iterations = %v, want 2", snap.Agg.IterationsTotal)
	}
	if snap.Agg.IterationsPerSec < 16 || snap.Agg.IterationsPerSec > 17 {
		t.Fatalf("iterations/sec = %v, want ~16.7 (2 iters over 0.12s)", snap.Agg.IterationsPerSec)
	}
	if got := snap.Agg.WireBytesOutByCodec["fp16"]; got != 4096+1024 {
		t.Fatalf("fp16 bytes = %v, want 5120", got)
	}
	if got := snap.Agg.WireBytesOutByCodec["raw"]; got != 100 {
		t.Fatalf("raw bytes = %v, want 100", got)
	}
	if snap.Agg.LeaseGenMax != 2 || snap.Agg.LeaseGenMin != 2 || snap.Agg.LeaseGenSkew() != 0 {
		t.Fatalf("lease gen min/max = %v/%v", snap.Agg.LeaseGenMin, snap.Agg.LeaseGenMax)
	}

	// The dashboard renders without panicking and names the dead node.
	var sb strings.Builder
	snap.WriteText(&sb, 10)
	out := sb.String()
	for _, want := range []string{"ghost", "UNHEALTHY", "generation 2", "fp16", "failover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestParseExpositionRoundTrip(t *testing.T) {
	m := obs.New()
	m.OnIteration(3, 0.25)
	m.OnContribution(1, 4, 0.125)
	m.OnErasure(0, 2, obs.RDead)
	var sb strings.Builder
	if err := m.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(sb.String())
	if err != nil {
		t.Fatalf("parse real exposition: %v", err)
	}
	iters := fams[obs.MIterationsTotal]
	if len(iters) != 1 || iters[0].Value != 1 {
		t.Fatalf("iterations family = %+v", iters)
	}
	var found bool
	for _, s := range fams[obs.MErasuresTotal] {
		if s.Labels[obs.LReason] == obs.RDead && s.Labels[obs.LMember] == "2" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("erasure sample missing: %+v", fams[obs.MErasuresTotal])
	}
	if _, ok := fams[obs.MContribSeconds+"_sum"]; !ok {
		t.Fatalf("histogram sum series missing; families: %d", len(fams))
	}
}

func TestParseExpositionRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"metric{unterminated=\"x 1",
		"metric 1 2 3 junk notafloat",
		"metric{novalue} 1",
	} {
		if _, err := ParseExposition(bad); err == nil {
			t.Fatalf("ParseExposition(%q) accepted garbage", bad)
		}
	}
}

func TestDiscoverFromRoster(t *testing.T) {
	r, err := node.ParseRoster([]byte(`
root = "10.0.0.1:7000"
standbys = ["10.0.0.2:7000"]
workers = 4
metrics = ["10.0.0.1:9100", "10.0.0.2:9100", "10.0.0.3:9100"]
`))
	if err != nil {
		t.Fatal(err)
	}
	nodes, root, err := Discover(r, "")
	if err != nil {
		t.Fatal(err)
	}
	if root != nil {
		t.Fatalf("live root without a checkpoint dir: %+v", root)
	}
	if len(nodes) != 3 || nodes[0].Addr != "10.0.0.1:9100" || nodes[0].Name != "10.0.0.1:9100" {
		t.Fatalf("nodes = %+v", nodes)
	}

	// A roster without metrics endpoints is an actionable error.
	r2, err := node.ParseRoster([]byte(`
root = "10.0.0.1:7000"
workers = 4
`))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Discover(r2, ""); err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Fatalf("Discover without metrics key: err = %v", err)
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
	}
	for _, tc := range cases {
		if got := formatBytes(tc.in); got != tc.want {
			t.Errorf("formatBytes(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseLabelEscapes(t *testing.T) {
	labels, err := parseLabels(`detail="said \"hi\"",member="3"`)
	if err != nil {
		t.Fatal(err)
	}
	if labels["detail"] != `said "hi"` || labels["member"] != "3" {
		t.Fatalf("labels = %v", labels)
	}
	for _, bad := range []string{`novalue`, `k=unquoted`, `k="unterminated`} {
		if _, err := parseLabels(bad); err == nil {
			t.Errorf("parseLabels(%q) accepted garbage", bad)
		}
	}
}

func TestNodeStatusValue(t *testing.T) {
	ns := &NodeStatus{Node: Node{Name: "n"}, Metrics: map[string][]Sample{
		"fam": {{Value: 1}, {Labels: map[string]string{"x": "y"}, Value: 2}},
	}}
	if v, ok := ns.Value("fam"); !ok || v != 3 {
		t.Fatalf("Value(fam) = %v,%v", v, ok)
	}
	if _, ok := ns.Value("absent"); ok {
		t.Fatal("absent family reported present")
	}
}

func TestDiscoverReadsLease(t *testing.T) {
	r := &node.Roster{Root: "10.0.0.1:7000", Workers: 2, Metrics: []string{"10.0.0.1:9100"}}
	dir := t.TempDir()

	// No lease file yet: tolerated, not an error.
	if _, root, err := Discover(r, dir); err != nil || root != nil {
		t.Fatalf("empty checkpoint dir: root=%+v err=%v", root, err)
	}

	lease, err := ha.Acquire(dir, "gcroot-1", "10.0.0.1:7000", time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	_ = lease
	_, root, err := Discover(r, dir)
	if err != nil {
		t.Fatal(err)
	}
	if root == nil || root.Gen != 1 || root.Holder != "gcroot-1" || root.Addr != "10.0.0.1:7000" || root.Expired {
		t.Fatalf("live root = %+v, want gen-1 gcroot-1", root)
	}

	// A corrupt token is a loud error, never a silently rootless dashboard.
	if err := os.WriteFile(filepath.Join(dir, ha.LeaseFile), []byte("not a lease"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Discover(r, dir); err == nil {
		t.Fatal("corrupt lease token accepted")
	}
}
