// Package fleet is the gcctl aggregation engine: it discovers a cluster's
// telemetry endpoints from the shared roster file (plus the HA lease token
// for the live root), scrapes every node's /metrics and /debug/events, and
// merges them into one cluster snapshot — a globally ordered, node-labeled
// event timeline plus cluster-wide aggregate gauges. The package is pure
// client: it depends only on the exposition formats the obs server emits,
// so it can scrape any mix of gctrain, gcroot and gcworker processes.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/node"
	"github.com/hetgc/hetgc/internal/obs"
)

// ErrFleet marks discovery and scrape-plan problems (not per-node scrape
// failures, which are reported in each NodeStatus).
var ErrFleet = errors.New("fleet: invalid scrape plan")

// Node is one telemetry endpoint to scrape.
type Node struct {
	// Name labels the node in the merged timeline and dashboard; defaults
	// to Addr.
	Name string `json:"name"`
	// Addr is the host:port of the node's -metrics-addr endpoint.
	Addr string `json:"addr"`
}

// Sample is one metric sample: a label set and its value.
type Sample struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// NodeStatus is the outcome of scraping one node.
type NodeStatus struct {
	Node
	// Healthy reports whether /healthz answered 200 and /metrics parsed.
	Healthy bool `json:"healthy"`
	// Err carries the scrape failure when Healthy is false.
	Err string `json:"err,omitempty"`
	// Metrics maps family (or histogram series) name to its samples.
	Metrics map[string][]Sample `json:"metrics,omitempty"`
	// Events is the node's journal tail from /debug/events.
	Events []obs.Event `json:"events,omitempty"`
}

// Value returns the sum of a family's samples across all label sets
// (0 when absent) and whether the family was present at all.
func (ns *NodeStatus) Value(family string) (float64, bool) {
	ss, ok := ns.Metrics[family]
	if !ok {
		return 0, false
	}
	var sum float64
	for _, s := range ss {
		sum += s.Value
	}
	return sum, true
}

// TimelineEvent is one journal event attributed to its node.
type TimelineEvent struct {
	Node string `json:"node"`
	obs.Event
}

// LiveRoot is what the HA lease token names: the authoritative root of the
// current generation.
type LiveRoot struct {
	Gen     int       `json:"gen"`
	Holder  string    `json:"holder"`
	Addr    string    `json:"addr"`
	Expiry  time.Time `json:"expiry"`
	Expired bool      `json:"expired"`
}

// Aggregates are the cluster-wide gauges derived from a sweep.
type Aggregates struct {
	// IterationsTotal is the highest iteration counter any node reports —
	// the cluster's training progress (the root drives iterations; counting
	// every node would double-count).
	IterationsTotal float64 `json:"iterations_total"`
	// IterationsPerSec is the driving node's observed rate, derived from
	// the iteration-latency histogram (count over sum).
	IterationsPerSec float64 `json:"iterations_per_sec"`
	// WireBytesOutByCodec sums per-codec payload bytes sent across nodes.
	WireBytesOutByCodec map[string]float64 `json:"wire_bytes_out_by_codec,omitempty"`
	// SnapshotAgeSeconds is the stalest checkpoint snapshot any node
	// reports (-1 when no node exposes the family).
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds"`
	// LeaseGenMin/Max bound the lease generation across nodes exposing it;
	// a non-zero skew (Max-Min) means some node has a stale view of who
	// the root is.
	LeaseGenMin float64 `json:"lease_gen_min"`
	LeaseGenMax float64 `json:"lease_gen_max"`
}

// LeaseGenSkew is Max-Min across the nodes that expose a lease generation.
func (a *Aggregates) LeaseGenSkew() float64 { return a.LeaseGenMax - a.LeaseGenMin }

// Snapshot is one full sweep over the fleet.
type Snapshot struct {
	Time     time.Time       `json:"time"`
	Nodes    []NodeStatus    `json:"nodes"`
	Timeline []TimelineEvent `json:"timeline"`
	Agg      Aggregates      `json:"aggregates"`
	Root     *LiveRoot       `json:"live_root,omitempty"`
}

// Unhealthy names every node whose scrape failed, in roster order.
func (s *Snapshot) Unhealthy() []string {
	var out []string
	for _, ns := range s.Nodes {
		if !ns.Healthy {
			out = append(out, ns.Name)
		}
	}
	return out
}

// Discover builds the scrape plan from a parsed roster: one Node per
// metrics endpoint. When checkpointDir is non-empty and holds a lease
// token, the live root's identity is returned alongside (nil, without
// error, when the directory has no token — a cluster that never elected).
func Discover(r *node.Roster, checkpointDir string) ([]Node, *LiveRoot, error) {
	if len(r.Metrics) == 0 {
		return nil, nil, fmt.Errorf(`%w: the roster lists no metrics endpoints — add metrics = ["host:port", ...] naming each node's -metrics-addr`, ErrFleet)
	}
	nodes := make([]Node, 0, len(r.Metrics))
	for _, addr := range r.Metrics {
		nodes = append(nodes, Node{Name: addr, Addr: addr})
	}
	var root *LiveRoot
	if checkpointDir != "" {
		tok, err := ha.ReadToken(checkpointDir)
		if err == nil {
			root = &LiveRoot{Gen: tok.Gen, Holder: tok.Holder, Addr: tok.Addr,
				Expiry: tok.Expiry, Expired: tok.Expired(time.Now())}
		} else if !errors.Is(err, ha.ErrNoLease) {
			return nil, nil, err
		}
	}
	return nodes, root, nil
}

// Scraper sweeps a fleet. The zero value uses http.DefaultClient with a
// 5-second overall timeout per node.
type Scraper struct {
	Client  *http.Client
	Timeout time.Duration
}

func (sc *Scraper) client() *http.Client {
	c := sc.Client
	if c == nil {
		c = http.DefaultClient
	}
	if c.Timeout == 0 {
		timeout := sc.Timeout
		if timeout <= 0 {
			timeout = 5 * time.Second
		}
		cc := *c
		cc.Timeout = timeout
		c = &cc
	}
	return c
}

// Collect scrapes every node concurrently and assembles the snapshot:
// statuses in plan order, the merged timeline, the aggregates, and the
// live-root identity (passed through from Discover; may be nil).
func (sc *Scraper) Collect(nodes []Node, root *LiveRoot) *Snapshot {
	snap := &Snapshot{Time: time.Now(), Nodes: make([]NodeStatus, len(nodes)), Root: root}
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n Node) {
			defer wg.Done()
			snap.Nodes[i] = sc.ScrapeNode(n)
		}(i, n)
	}
	wg.Wait()
	snap.Timeline = mergeTimeline(snap.Nodes)
	snap.Agg = aggregate(snap.Nodes)
	return snap
}

// ScrapeNode sweeps one node: /healthz, /metrics, /debug/events. A node is
// healthy only when all three answer and parse.
func (sc *Scraper) ScrapeNode(n Node) NodeStatus {
	if n.Name == "" {
		n.Name = n.Addr
	}
	ns := NodeStatus{Node: n}
	c := sc.client()
	base := "http://" + n.Addr
	if err := checkHealthz(c, base); err != nil {
		ns.Err = err.Error()
		return ns
	}
	fams, err := scrapeMetrics(c, base)
	if err != nil {
		ns.Err = err.Error()
		return ns
	}
	evs, err := scrapeEvents(c, base)
	if err != nil {
		ns.Err = err.Error()
		return ns
	}
	ns.Healthy, ns.Metrics, ns.Events = true, fams, evs
	return ns
}

func checkHealthz(c *http.Client, base string) error {
	resp, err := c.Get(base + "/healthz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	return nil
}

func scrapeMetrics(c *http.Client, base string) (map[string][]Sample, error) {
	resp, err := c.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	fams, err := ParseExposition(string(b))
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return fams, nil
}

func scrapeEvents(c *http.Client, base string) ([]obs.Event, error) {
	resp, err := c.Get(base + "/debug/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events: HTTP %d", resp.StatusCode)
	}
	var evs []obs.Event
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		return nil, fmt.Errorf("events: %w", err)
	}
	return evs, nil
}

// ParseExposition parses the Prometheus text format the obs registry
// writes: `name{label="v",...} value` lines, with # HELP/# TYPE comments.
// Histogram series surface under their suffixed names (family_bucket,
// family_sum, family_count), which is exactly what aggregation wants.
func ParseExposition(text string) (map[string][]Sample, error) {
	fams := map[string][]Sample{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, labels, valStr, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q", lineNo+1, valStr)
		}
		fams[name] = append(fams[name], Sample{Labels: labels, Value: v})
	}
	return fams, nil
}

// splitSample cuts one sample line into name, parsed labels and the value
// string.
func splitSample(line string) (string, map[string]string, string, error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, "", fmt.Errorf("unbalanced braces in %q", line)
		}
		labels, err := parseLabels(line[i+1 : j])
		if err != nil {
			return "", nil, "", err
		}
		return line[:i], labels, strings.TrimSpace(line[j+1:]), nil
	}
	name, val, ok := strings.Cut(line, " ")
	if !ok {
		return "", nil, "", fmt.Errorf("no value in %q", line)
	}
	return name, nil, strings.TrimSpace(val), nil
}

// parseLabels parses `k1="v1",k2="v2"`. Values are Go-quoted strings (the
// registry writes them with strconv.Quote-compatible escaping).
func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without = in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		rest := s[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		// Walk the quoted value respecting backslash escapes.
		end := -1
		for i := 1; i < len(rest); i++ {
			if rest[i] == '\\' {
				i++
				continue
			}
			if rest[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		val, err := strconv.Unquote(rest[:end+1])
		if err != nil {
			return nil, fmt.Errorf("bad label value in %q: %v", s, err)
		}
		out[key] = val
		s = strings.TrimPrefix(strings.TrimSpace(rest[end+1:]), ",")
		s = strings.TrimSpace(s)
	}
	return out, nil
}

// mergeTimeline interleaves every node's journal into one globally ordered
// timeline: by event time, then sequence, then node name — a stable order
// even when clocks tie (same-process nodes share a clock; cross-machine
// ordering is as good as the clocks are).
func mergeTimeline(nodes []NodeStatus) []TimelineEvent {
	var out []TimelineEvent
	for _, ns := range nodes {
		for _, ev := range ns.Events {
			out = append(out, TimelineEvent{Node: ns.Name, Event: ev})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		ta, tb := out[a].Time, out[b].Time
		if !ta.Equal(tb) {
			return ta.Before(tb)
		}
		if out[a].Seq != out[b].Seq {
			return out[a].Seq < out[b].Seq
		}
		return out[a].Node < out[b].Node
	})
	return out
}

// aggregate derives the cluster-wide gauges from the healthy nodes.
func aggregate(nodes []NodeStatus) Aggregates {
	agg := Aggregates{SnapshotAgeSeconds: -1}
	leaseSeen := false
	for i := range nodes {
		ns := &nodes[i]
		if !ns.Healthy {
			continue
		}
		if v, ok := ns.Value(obs.MIterationsTotal); ok && v > agg.IterationsTotal {
			agg.IterationsTotal = v
			count, _ := ns.Value(obs.MIterationSeconds + "_count")
			sum, _ := ns.Value(obs.MIterationSeconds + "_sum")
			if sum > 0 {
				agg.IterationsPerSec = count / sum
			}
		}
		for _, s := range ns.Metrics[obs.MWireCodecBytesOutTotal] {
			if agg.WireBytesOutByCodec == nil {
				agg.WireBytesOutByCodec = map[string]float64{}
			}
			agg.WireBytesOutByCodec[s.Labels[obs.LCodec]] += s.Value
		}
		if v, ok := ns.Value(obs.MSnapshotAgeSeconds); ok && v > agg.SnapshotAgeSeconds {
			agg.SnapshotAgeSeconds = v
		}
		if v, ok := ns.Value(obs.MLeaseGeneration); ok && v > 0 {
			if !leaseSeen || v < agg.LeaseGenMin {
				agg.LeaseGenMin = v
			}
			if v > agg.LeaseGenMax {
				agg.LeaseGenMax = v
			}
			leaseSeen = true
		}
	}
	return agg
}
