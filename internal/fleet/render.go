package fleet

import (
	"fmt"
	"io"
	"time"

	"github.com/hetgc/hetgc/internal/obs"
)

// WriteText renders the snapshot as the gcctl dashboard: a node health
// table, the cluster aggregates, and the tail of the merged timeline.
func (s *Snapshot) WriteText(w io.Writer, timelineTail int) {
	fmt.Fprintf(w, "cluster snapshot at %s — %d nodes\n", s.Time.Format(time.RFC3339), len(s.Nodes))
	if s.Root != nil {
		state := "live"
		if s.Root.Expired {
			state = "EXPIRED"
		}
		fmt.Fprintf(w, "lease: generation %d held by %q at %s (%s)\n",
			s.Root.Gen, s.Root.Holder, s.Root.Addr, state)
	}

	fmt.Fprintln(w, "\nnodes:")
	for _, ns := range s.Nodes {
		if !ns.Healthy {
			fmt.Fprintf(w, "  %-22s DOWN  %s\n", ns.Name, ns.Err)
			continue
		}
		iters, _ := ns.Value(obs.MIterationsTotal)
		gen, hasGen := ns.Value(obs.MLeaseGeneration)
		line := fmt.Sprintf("  %-22s up    iters=%d events=%d", ns.Name, int(iters), len(ns.Events))
		if hasGen && gen > 0 {
			line += fmt.Sprintf(" lease-gen=%d", int(gen))
		}
		fmt.Fprintln(w, line)
	}

	fmt.Fprintln(w, "\naggregates:")
	fmt.Fprintf(w, "  iterations: %d  (%.2f/s)\n", int(s.Agg.IterationsTotal), s.Agg.IterationsPerSec)
	if s.Agg.SnapshotAgeSeconds >= 0 {
		fmt.Fprintf(w, "  stalest snapshot: %.1fs\n", s.Agg.SnapshotAgeSeconds)
	}
	if s.Agg.LeaseGenMax > 0 {
		fmt.Fprintf(w, "  lease generation: %d..%d (skew %d)\n",
			int(s.Agg.LeaseGenMin), int(s.Agg.LeaseGenMax), int(s.Agg.LeaseGenSkew()))
	}
	for _, cb := range sortedCodecBytesList(s.Agg.WireBytesOutByCodec) {
		fmt.Fprintf(w, "  wire out [%s]: %s\n", cb.codec, formatBytes(cb.bytes))
	}

	if len(s.Timeline) > 0 {
		tail := s.Timeline
		if timelineTail > 0 && len(tail) > timelineTail {
			tail = tail[len(tail)-timelineTail:]
		}
		fmt.Fprintf(w, "\ntimeline (last %d of %d events):\n", len(tail), len(s.Timeline))
		for _, ev := range tail {
			line := fmt.Sprintf("  %s  %-22s #%-4d %-9s iter=%d",
				ev.Time.Format("15:04:05.000"), ev.Node, ev.Seq, ev.Kind, ev.Iter)
			if ev.Member != 0 {
				line += fmt.Sprintf(" member=%d", ev.Member)
			}
			if ev.Detail != "" {
				line += " " + ev.Detail
			}
			fmt.Fprintln(w, line)
		}
	}

	if down := s.Unhealthy(); len(down) > 0 {
		fmt.Fprintf(w, "\nUNHEALTHY: %d of %d nodes down: %v\n", len(down), len(s.Nodes), down)
	}
}

type codecBytes struct {
	codec string
	bytes float64
}

// sortedCodecBytesList orders the per-codec byte totals descending so the
// dominant codec leads the dashboard.
func sortedCodecBytesList(m map[string]float64) []codecBytes {
	out := make([]codecBytes, 0, len(m))
	for c, b := range m {
		out = append(out, codecBytes{c, b})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].bytes > out[j-1].bytes ||
			(out[j].bytes == out[j-1].bytes && out[j].codec < out[j-1].codec)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// formatBytes renders a byte count with a binary unit.
func formatBytes(b float64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", b/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	default:
		return fmt.Sprintf("%d B", int(b))
	}
}
