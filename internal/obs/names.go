package obs

// This file is the single home of every metric family name and label the
// telemetry plane exposes. `make lint` greps for "hetgc_ string literals
// outside this file and fails when it finds one, so that the sim and the
// live runtimes can never drift apart on naming: both update gauges and
// counters exclusively through the *Metrics helpers, which reference these
// constants. Scrapes of a simulated run and a live run are diffable
// family-for-family.

// Metric family names (Prometheus text exposition).
const (
	// Training loop.
	MIterationsTotal  = "hetgc_iterations_total"
	MIterationSeconds = "hetgc_iteration_seconds"
	MPhaseSeconds     = "hetgc_phase_seconds"

	// Elastic controller (estimate -> allocate -> re-code loop).
	MPlanEpoch           = "hetgc_plan_epoch"
	MReplansTotal        = "hetgc_replans_total"
	MDriftGain           = "hetgc_drift_gain"
	MThroughputEstimate  = "hetgc_worker_throughput_estimate"
	MTelemetrySamplesTot = "hetgc_telemetry_samples_total"

	// Roster membership.
	MRosterMembers = "hetgc_roster_members"
	MJoinsTotal    = "hetgc_roster_joins_total"
	MDeathsTotal   = "hetgc_roster_deaths_total"
	MRejectedTotal = "hetgc_rejected_uploads_total"
	MEventsTotal   = "hetgc_events_total"

	// Straggler attribution: per-member contribution latency (broadcast to
	// the member's gradient arriving at its master) and per-member erasure
	// counters (uploads that were fenced, skipped or lost, by reason). Both
	// feed the /debug/stragglers rolling report.
	MContribSeconds = "hetgc_member_contribution_seconds"
	MErasuresTotal  = "hetgc_member_erasures_total"

	// Decode-plan cache.
	MCacheHits     = "hetgc_decode_cache_hits"
	MCacheMisses   = "hetgc_decode_cache_misses"
	MCacheHitRatio = "hetgc_decode_cache_hit_ratio"

	// Checkpoint durability.
	MSnapshotAgeSeconds = "hetgc_checkpoint_snapshot_age_seconds"
	MJournalLagEpochs   = "hetgc_checkpoint_journal_lag_epochs"
	MAppendSeconds      = "hetgc_checkpoint_append_seconds"
	MSnapshotSeconds    = "hetgc_checkpoint_snapshot_seconds"

	// HA lease / fencing.
	MLeaseGeneration   = "hetgc_ha_lease_generation"
	MLeaseRenewalsTot  = "hetgc_ha_lease_renewals_total"
	MFencedWritesTotal = "hetgc_ha_fenced_writes_total"
	MPromotionsTotal   = "hetgc_ha_promotions_total"

	// Transport wire plane (process-wide).
	MWireFramesInTotal  = "hetgc_wire_frames_in_total"
	MWireFramesOutTotal = "hetgc_wire_frames_out_total"
	MWireBytesInTotal   = "hetgc_wire_bytes_in_total"
	MWireBytesOutTotal  = "hetgc_wire_bytes_out_total"
	MWireBatchesTotal   = "hetgc_wire_batches_total"
	MWireMalformedTotal = "hetgc_wire_malformed_total"

	// Per-codec gradient payload traffic (labeled by codec: raw, fp16,
	// int8, topk, delta). Payload bytes only, so the ratio of a codec's
	// bytes to raw's directly reads as its wire saving.
	MWireCodecFramesInTotal  = "hetgc_wire_codec_frames_in_total"
	MWireCodecFramesOutTotal = "hetgc_wire_codec_frames_out_total"
	MWireCodecBytesInTotal   = "hetgc_wire_codec_bytes_in_total"
	MWireCodecBytesOutTotal  = "hetgc_wire_codec_bytes_out_total"
)

// Label keys.
const (
	LPhase  = "phase"
	LReason = "reason"
	LGroup  = "group"
	LMember = "member"
	LKind   = "kind"
	LCodec  = "codec"
)

// Values for the rejected-upload reason label. They mirror roster.Stats
// field-for-field so the live counters and the end-of-run result structs
// always agree.
const (
	RStaleEpoch = "stale_epoch"
	RStaleConn  = "stale_conn"
	RStraggler  = "straggler"
	RMalformed  = "malformed"
	RFenced     = "fenced"
)

// RDead labels the partial member span (and erasure counter) of a member
// that died mid-iteration: its contribution never arrived, so its span
// record is root-synthesized and explicitly partial. It extends the R*
// reject reasons, which all describe uploads that did arrive.
const RDead = "dead"

// Values for the join kind label.
const (
	KJoin   = "join"
	KRejoin = "rejoin"
)

// Event kinds recorded in the structured journal and served from
// /debug/events.
const (
	EvReplan    = "replan"
	EvMigration = "migration"
	EvJoin      = "join"
	EvRejoin    = "rejoin"
	EvDeath     = "death"
	EvFailover  = "failover"
	EvFence     = "fence"
	EvAdoption  = "adoption"
	EvUplink    = "uplink_lost"
	EvSnapshot  = "snapshot"
)

// Replan reason values mirror elastic.ReplanEvent.Reason.
const (
	ReasonInitial = "initial"
	ReasonChurn   = "churn"
	ReasonDrift   = "drift"
)

// Training phases traced per iteration (broadcast -> collect -> decode ->
// reduce -> step -> persist).
const (
	PhaseBroadcast = "broadcast"
	PhaseCollect   = "collect"
	PhaseDecode    = "decode"
	PhaseReduce    = "reduce"
	PhaseStep      = "step"
	PhasePersist   = "persist"
)

// Member-local phases timed by workers and group masters and echoed
// upstream on the gradient upload. PhaseUpload is measured after the send
// completes, so a member reports the *previous* iteration's upload span;
// PhaseWire is root-synthesized — the residual between a member's measured
// phases and its observed contribution latency.
const (
	PhaseFetch   = "fetch"
	PhaseCompute = "compute"
	PhaseEncode  = "encode"
	PhaseUpload  = "upload"
	PhaseWire    = "wire"
)
