package obs

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics bundles the canonical hetgc metric families plus the event
// journal and iteration tracer. Every instrumentation site in the repo
// goes through the nil-safe On* helpers below, so a nil *Metrics (the
// default: telemetry disabled) costs one branch and the live runtimes and
// the simulator can never diverge on family names.
type Metrics struct {
	reg     *Registry
	journal *Journal
	tracer  *Tracer

	// Training loop.
	Iterations   *Counter
	IterSeconds  *Histogram
	PhaseSeconds *HistogramVec // phase

	// Elastic controller.
	PlanEpoch  *Gauge
	Replans    *CounterVec // reason
	DriftGain  *Gauge
	Throughput *GaugeVec // group, member
	Telemetry  *Counter

	// Roster.
	Members  *GaugeVec   // group
	Joins    *CounterVec // kind
	Deaths   *Counter
	Rejected *CounterVec // reason

	// Straggler attribution.
	Contrib  *HistogramVec // group, member
	Erasures *CounterVec   // group, member, reason

	// Decode cache. The gauges show process-wide totals; cacheHits and
	// cacheMisses accumulate them across strategy instances (every replan
	// builds a fresh strategy with zeroed counters, and the sharded runtime
	// has one per group) — see OnCacheDelta and CacheTracker.
	CacheHits     *Gauge
	CacheMisses   *Gauge
	CacheHitRatio *Gauge
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64

	// Checkpoint.
	JournalLag      *Gauge
	AppendSeconds   *Histogram
	SnapshotSeconds *Histogram
	lastSnapshot    atomic.Int64 // unix nanos of last snapshot; 0 = never

	// HA.
	LeaseGen      *Gauge
	LeaseRenewals *Counter
	FencedWrites  *Counter
	Promotions    *Counter

	wireOnce      sync.Once
	wireCodecOnce sync.Once
}

// New returns a Metrics bundle on a fresh registry with a default-capacity
// event journal and tracer.
func New() *Metrics {
	return NewWith(NewRegistry(), NewJournal(0), NewTracer(0))
}

// NewWith builds the canonical families on reg. journal and tracer may be
// nil to disable the event ring or tracing.
func NewWith(reg *Registry, journal *Journal, tracer *Tracer) *Metrics {
	m := &Metrics{reg: reg, journal: journal, tracer: tracer}

	m.Iterations = reg.Counter(MIterationsTotal, "Completed training iterations.")
	m.IterSeconds = reg.Histogram(MIterationSeconds, "End-to-end iteration latency in seconds.", nil)
	m.PhaseSeconds = reg.HistogramVec(MPhaseSeconds, "Per-phase iteration latency in seconds.", nil, LPhase)

	m.PlanEpoch = reg.Gauge(MPlanEpoch, "Current coding-plan epoch.")
	m.Replans = reg.CounterVec(MReplansTotal, "Plan migrations by trigger reason.", LReason)
	m.DriftGain = reg.Gauge(MDriftGain, "Estimated speedup of replanning now versus keeping the current allocation (>1 favors a replan).")
	m.Throughput = reg.GaugeVec(MThroughputEstimate, "EWMA per-worker throughput estimate (work units per second).", LGroup, LMember)
	m.Telemetry = reg.Counter(MTelemetrySamplesTot, "Per-iteration telemetry samples folded into throughput estimates.")

	m.Members = reg.GaugeVec(MRosterMembers, "Live roster members per group (group 0 is the flat runtime or the shard root).", LGroup)
	m.Joins = reg.CounterVec(MJoinsTotal, "Accepted worker handshakes by kind (join or rejoin).", LKind)
	m.Deaths = reg.Counter(MDeathsTotal, "Workers declared dead (connection loss or read error).")
	m.Rejected = reg.CounterVec(MRejectedTotal, "Uploads rejected during collect, by reason.", LReason)

	m.Contrib = reg.HistogramVec(MContribSeconds, "Per-member contribution latency in seconds (parameter broadcast to the member's gradient arriving at its master).", nil, LGroup, LMember)
	m.Erasures = reg.CounterVec(MErasuresTotal, "Per-member erased contributions (fenced, skipped or lost uploads), by reason.", LGroup, LMember, LReason)

	m.CacheHits = reg.Gauge(MCacheHits, "Decode-plan cache hits (snapshot of the strategy's cache counters).")
	m.CacheMisses = reg.Gauge(MCacheMisses, "Decode-plan cache misses.")
	m.CacheHitRatio = reg.Gauge(MCacheHitRatio, "Decode-plan cache hit ratio in [0,1].")

	m.JournalLag = reg.Gauge(MJournalLagEpochs, "Journal entries appended since the last snapshot (replay cost on recovery).")
	m.AppendSeconds = reg.Histogram(MAppendSeconds, "Checkpoint journal append+flush latency in seconds.", nil)
	m.SnapshotSeconds = reg.Histogram(MSnapshotSeconds, "Checkpoint snapshot write+fsync+rename latency in seconds.", nil)
	reg.GaugeFunc(MSnapshotAgeSeconds, "Seconds since the last completed snapshot (0 when none yet).", func() float64 {
		ns := m.lastSnapshot.Load()
		if ns == 0 {
			return 0
		}
		return time.Since(time.Unix(0, ns)).Seconds()
	})

	m.LeaseGen = reg.Gauge(MLeaseGeneration, "Root lease generation currently held (fencing token).")
	m.LeaseRenewals = reg.Counter(MLeaseRenewalsTot, "Successful lease renewals.")
	m.FencedWrites = reg.Counter(MFencedWritesTotal, "Writes rejected by lease fencing (zombie root detected).")
	m.Promotions = reg.Counter(MPromotionsTotal, "Warm-standby promotions to active root.")

	if journal != nil {
		reg.CounterFunc(MEventsTotal, "Structured control-plane events recorded (including ones evicted from the ring).", journal.Total)
	}
	return m
}

// Registry returns the underlying registry (nil-safe).
func (m *Metrics) Registry() *Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

// Journal returns the event journal (nil-safe; may return nil).
func (m *Metrics) Journal() *Journal {
	if m == nil {
		return nil
	}
	return m.journal
}

// Tracer returns the iteration tracer (nil-safe; may return nil).
func (m *Metrics) Tracer() *Tracer {
	if m == nil {
		return nil
	}
	return m.tracer
}

// Serve starts the telemetry HTTP server on addr (host:port; port 0 picks
// a free one) exposing this bundle.
func (m *Metrics) Serve(addr string) (*Server, error) {
	return NewServer(addr, m)
}

// StartIter opens a traced iteration scope. Safe on a nil receiver (returns
// a nil scope whose methods no-op).
func (m *Metrics) StartIter(iter, epoch int) *IterScope {
	if m == nil {
		return nil
	}
	return &IterScope{m: m, tr: IterTrace{Iter: iter, Epoch: epoch, Start: time.Now()}}
}

// OnIteration records one completed iteration: counter, latency histogram
// and epoch gauge. The sim calls this directly; the live runtimes get it
// via IterScope.End. A negative epoch leaves the epoch gauge alone (the
// sharded root tracks per-group epochs through replan events instead).
func (m *Metrics) OnIteration(epoch int, seconds float64) {
	if m == nil {
		return
	}
	m.Iterations.Inc()
	m.IterSeconds.Observe(seconds)
	if epoch >= 0 {
		m.PlanEpoch.Set(float64(epoch))
	}
}

// OnReplan records a plan migration: reason-labeled counter, epoch gauge
// and a journal event.
func (m *Metrics) OnReplan(reason string, iter, epoch, members int) {
	if m == nil {
		return
	}
	m.Replans.With(reason).Inc()
	m.PlanEpoch.Set(float64(epoch))
	m.Event(Event{Kind: EvReplan, Iter: iter, Detail: reason + " epoch=" + strconv.Itoa(epoch) + " members=" + strconv.Itoa(members)})
}

// OnDrift updates the drift-gain gauge.
func (m *Metrics) OnDrift(gain float64) {
	if m == nil {
		return
	}
	m.DriftGain.Set(gain)
}

// OnEstimate updates one worker's EWMA throughput estimate gauge.
func (m *Metrics) OnEstimate(group, member int, rate float64) {
	if m == nil {
		return
	}
	m.Throughput.With(strconv.Itoa(group), strconv.Itoa(member)).Set(rate)
	m.Telemetry.Inc()
}

// OnMembers sets the live-member gauge for a group.
func (m *Metrics) OnMembers(group, alive int) {
	if m == nil {
		return
	}
	m.Members.With(strconv.Itoa(group)).Set(float64(alive))
}

// OnJoin records an accepted handshake plus the resulting member count.
func (m *Metrics) OnJoin(group, member int, rejoin bool, alive, iter int) {
	if m == nil {
		return
	}
	kind, ev := KJoin, EvJoin
	if rejoin {
		kind, ev = KRejoin, EvRejoin
	}
	m.Joins.With(kind).Inc()
	m.OnMembers(group, alive)
	m.Event(Event{Kind: ev, Iter: iter, Group: group, Member: member})
}

// OnDeath records a declared-dead worker plus the resulting member count.
func (m *Metrics) OnDeath(group, member, alive, iter int) {
	if m == nil {
		return
	}
	m.Deaths.Inc()
	m.OnMembers(group, alive)
	m.Event(Event{Kind: EvDeath, Iter: iter, Group: group, Member: member})
}

// OnReject counts one rejected upload by reason (see the R* constants).
func (m *Metrics) OnReject(reason string) {
	if m == nil {
		return
	}
	m.Rejected.With(reason).Inc()
}

// OnContribution observes one member's contribution latency — parameter
// broadcast to its decodable gradient arriving at its master.
func (m *Metrics) OnContribution(group, member int, seconds float64) {
	if m == nil {
		return
	}
	m.Contrib.With(strconv.Itoa(group), strconv.Itoa(member)).Observe(seconds)
}

// OnErasure counts one erased member contribution (fenced, skipped or lost)
// by reason — the labeled, per-member counterpart of OnReject.
func (m *Metrics) OnErasure(group, member int, reason string) {
	if m == nil {
		return
	}
	m.Erasures.With(strconv.Itoa(group), strconv.Itoa(member), reason).Inc()
}

// OnMemberSpan feeds the attribution families from one stitched member
// child span: the erasure counter for a partial one, the contribution
// histogram plus echoed phase spans for a full one. Every stitch site — the
// flat master's IterScope, the sharded group masters, the simulators — goes
// through here so the families can never diverge.
func (m *Metrics) OnMemberSpan(ms MemberSpan) {
	if m == nil {
		return
	}
	if ms.Partial {
		m.OnErasure(ms.Group, ms.Member, ms.Reason)
		return
	}
	m.OnContribution(ms.Group, ms.Member, ms.Arrival)
	for _, sp := range ms.Spans {
		m.PhaseSeconds.With(sp.Phase).Observe(sp.Seconds)
	}
}

// OnTrace records a fully-assembled iteration trace — the simulators' entry
// point, which builds synthetic traces from simulated finish times instead
// of wall-clock IterScopes. It feeds the same families stitching feeds live:
// the phase histogram for every root and member span, the contribution
// histogram and erasure counters per member, and the trace ring. It does NOT
// count the iteration itself (the sims call OnIteration separately, exactly
// as before).
func (m *Metrics) OnTrace(tr IterTrace) {
	if m == nil {
		return
	}
	for _, sp := range tr.Spans {
		m.PhaseSeconds.With(sp.Phase).Observe(sp.Seconds)
	}
	for _, ms := range tr.Members {
		m.OnMemberSpan(ms)
	}
	if tr.Crit == nil {
		tr.Crit = criticalPath(tr.Members)
	}
	m.tracer.record(tr)
}

// OnCache snapshots the decode-plan cache counters into gauges.
func (m *Metrics) OnCache(hits, misses uint64) {
	if m == nil {
		return
	}
	m.CacheHits.Set(float64(hits))
	m.CacheMisses.Set(float64(misses))
	if total := hits + misses; total > 0 {
		m.CacheHitRatio.Set(float64(hits) / float64(total))
	}
}

// OnCacheDelta folds a cache-counter increment into the process-wide cache
// gauges. Callers that watch a single cache instance whose counters can
// reset (a replanned strategy) should go through a CacheTracker instead of
// computing deltas by hand.
func (m *Metrics) OnCacheDelta(dHits, dMisses uint64) {
	if m == nil {
		return
	}
	m.OnCache(m.cacheHits.Add(dHits), m.cacheMisses.Add(dMisses))
}

// CacheTracker folds absolute snapshots of one cache instance at a time into
// a Metrics bundle's process-wide cache totals. key identifies the instance
// (the strategy pointer): when it changes — a replan installed a fresh
// strategy with zeroed counters — the baseline resets instead of producing a
// huge unsigned-wrap delta. Not safe for concurrent use; give each
// goroutine (each group master) its own tracker.
type CacheTracker struct {
	key          any
	hits, misses uint64
}

// Fold records the snapshot (hits, misses) of the cache identified by key.
func (t *CacheTracker) Fold(m *Metrics, key any, hits, misses uint64) {
	if m == nil {
		return
	}
	if key != t.key || hits < t.hits || misses < t.misses {
		t.key, t.hits, t.misses = key, 0, 0
	}
	m.OnCacheDelta(hits-t.hits, misses-t.misses)
	t.hits, t.misses = hits, misses
}

// OnAppend records one journal append (latency plus resulting replay lag).
func (m *Metrics) OnAppend(seconds float64, lagEntries int) {
	if m == nil {
		return
	}
	m.AppendSeconds.Observe(seconds)
	m.JournalLag.Set(float64(lagEntries))
}

// OnSnapshot records one completed snapshot; resets journal lag and the
// snapshot-age clock.
func (m *Metrics) OnSnapshot(seconds float64, iter int) {
	if m == nil {
		return
	}
	m.SnapshotSeconds.Observe(seconds)
	m.JournalLag.Set(0)
	m.lastSnapshot.Store(time.Now().UnixNano())
	m.Event(Event{Kind: EvSnapshot, Iter: iter})
}

// OnLease sets the held lease generation gauge.
func (m *Metrics) OnLease(gen uint64) {
	if m == nil {
		return
	}
	m.LeaseGen.Set(float64(gen))
}

// OnRenewal counts one successful lease renewal.
func (m *Metrics) OnRenewal() {
	if m == nil {
		return
	}
	m.LeaseRenewals.Inc()
}

// OnFencedWrite counts one write rejected by lease fencing and journals it.
func (m *Metrics) OnFencedWrite(iter int, detail string) {
	if m == nil {
		return
	}
	m.FencedWrites.Inc()
	m.Event(Event{Kind: EvFence, Iter: iter, Detail: detail})
}

// OnPromotion records a standby takeover at the given lease generation.
func (m *Metrics) OnPromotion(gen uint64, iter int) {
	if m == nil {
		return
	}
	m.Promotions.Inc()
	m.LeaseGen.Set(float64(gen))
	m.Event(Event{Kind: EvFailover, Iter: iter, Detail: "promoted at generation " + strconv.FormatUint(gen, 10)})
}

// Event appends a structured event to the journal (nil-safe).
func (m *Metrics) Event(ev Event) {
	if m == nil {
		return
	}
	m.journal.Append(ev)
}

// BindWire registers scrape-time counters over the process-wide transport
// wire statistics. fn returns frames in/out, bytes in/out, batch frames
// sent, and malformed frames. Idempotent: only the first call binds, so a
// root and its in-process group masters can share one registry.
func (m *Metrics) BindWire(fn func() (framesIn, framesOut, bytesIn, bytesOut, batches, malformed uint64)) {
	if m == nil || fn == nil {
		return
	}
	m.wireOnce.Do(func() {
		m.reg.CounterFunc(MWireFramesInTotal, "Transport frames received.", func() uint64 {
			v, _, _, _, _, _ := fn()
			return v
		})
		m.reg.CounterFunc(MWireFramesOutTotal, "Transport frames sent.", func() uint64 {
			_, v, _, _, _, _ := fn()
			return v
		})
		m.reg.CounterFunc(MWireBytesInTotal, "Bytes read off transport connections.", func() uint64 {
			_, _, v, _, _, _ := fn()
			return v
		})
		m.reg.CounterFunc(MWireBytesOutTotal, "Bytes written to transport connections.", func() uint64 {
			_, _, _, v, _, _ := fn()
			return v
		})
		m.reg.CounterFunc(MWireBatchesTotal, "Coalesced batch frames sent.", func() uint64 {
			_, _, _, _, v, _ := fn()
			return v
		})
		m.reg.CounterFunc(MWireMalformedTotal, "Frames rejected as malformed on receive.", func() uint64 {
			_, _, _, _, _, v := fn()
			return v
		})
	})
}

// BindWireCodecs registers the per-codec gradient traffic families over the
// process-wide transport counters. names holds the label value for each
// codec byte (index = codec byte, e.g. grad's raw/fp16/int8/topk/delta) and
// fn snapshots one codec's counters. Idempotent like BindWire.
func (m *Metrics) BindWireCodecs(names []string, fn func(codec byte) (framesIn, framesOut, bytesIn, bytesOut uint64)) {
	if m == nil || fn == nil || len(names) == 0 {
		return
	}
	m.wireCodecOnce.Do(func() {
		framesIn := make(map[string]func() uint64, len(names))
		framesOut := make(map[string]func() uint64, len(names))
		bytesIn := make(map[string]func() uint64, len(names))
		bytesOut := make(map[string]func() uint64, len(names))
		for i, name := range names {
			c := byte(i)
			framesIn[name] = func() uint64 { v, _, _, _ := fn(c); return v }
			framesOut[name] = func() uint64 { _, v, _, _ := fn(c); return v }
			bytesIn[name] = func() uint64 { _, _, v, _ := fn(c); return v }
			bytesOut[name] = func() uint64 { _, _, _, v := fn(c); return v }
		}
		m.reg.CounterFuncVec(MWireCodecFramesInTotal, "Gradient frames received, by payload codec.", LCodec, framesIn)
		m.reg.CounterFuncVec(MWireCodecFramesOutTotal, "Gradient frames sent, by payload codec.", LCodec, framesOut)
		m.reg.CounterFuncVec(MWireCodecBytesInTotal, "Gradient payload bytes received, by codec (payload only, excluding framing).", LCodec, bytesIn)
		m.reg.CounterFuncVec(MWireCodecBytesOutTotal, "Gradient payload bytes sent, by codec (payload only, excluding framing).", LCodec, bytesOut)
	})
}
