package obs

import (
	"sync"
	"time"
)

// Event is one structured control-plane occurrence: a replan, a
// join/death, a migration, a failover, a fence rejection. Events land in a
// bounded in-memory ring served from /debug/events and printed by the CLI.
type Event struct {
	Seq    uint64    `json:"seq"`
	Time   time.Time `json:"time"`
	Kind   string    `json:"kind"`
	Iter   int       `json:"iter"`
	Group  int       `json:"group"`
	Member int       `json:"member,omitempty"`
	Detail string    `json:"detail,omitempty"`
}

// Journal is a fixed-capacity ring of Events. The zero value is unusable;
// use NewJournal. A nil *Journal is safe: Append and Recent are no-ops.
type Journal struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	total uint64
}

// DefaultJournalCap bounds the in-memory event ring.
const DefaultJournalCap = 1024

// NewJournal returns a journal holding the most recent capacity events
// (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{ring: make([]Event, 0, capacity)}
}

// Append stamps the event with a sequence number and the current time and
// records it, evicting the oldest entry when full.
func (j *Journal) Append(ev Event) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total++
	ev.Seq = j.total
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
		return
	}
	j.ring[j.next] = ev
	j.next = (j.next + 1) % len(j.ring)
}

// Recent returns up to n most recent events in chronological order
// (all retained events when n <= 0).
func (j *Journal) Recent(n int) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Event, 0, len(j.ring))
	out = append(out, j.ring[j.next:]...)
	out = append(out, j.ring[:j.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// Total returns the number of events ever appended (including evicted).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.total
}
