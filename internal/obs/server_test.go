package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestJournalRing(t *testing.T) {
	j := NewJournal(4)
	for i := 0; i < 10; i++ {
		j.Append(Event{Kind: EvReplan, Iter: i})
	}
	got := j.Recent(0)
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, ev := range got {
		if want := 6 + i; ev.Iter != want {
			t.Errorf("recent[%d].Iter = %d, want %d", i, ev.Iter, want)
		}
	}
	if got[0].Seq >= got[1].Seq {
		t.Error("sequence numbers not increasing")
	}
	if j.Total() != 10 {
		t.Errorf("Total = %d, want 10", j.Total())
	}
	if last := j.Recent(1); len(last) != 1 || last[0].Iter != 9 {
		t.Errorf("Recent(1) = %+v, want last event", last)
	}

	var nilJ *Journal
	nilJ.Append(Event{}) // must not panic
	if nilJ.Recent(0) != nil || nilJ.Total() != 0 {
		t.Error("nil journal not inert")
	}
}

func TestTracerRingAndStream(t *testing.T) {
	tr := NewTracer(2)
	var jsonl bytes.Buffer
	tr.Stream(&jsonl)

	m := NewWith(NewRegistry(), nil, tr)
	for i := 0; i < 3; i++ {
		sc := m.StartIter(i, 1)
		sc.Phase(PhaseBroadcast)
		sc.Phase(PhaseCollect)
		sc.End()
	}
	recent := tr.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("trace ring holds %d, want 2", len(recent))
	}
	if recent[0].Iter != 1 || recent[1].Iter != 2 {
		t.Errorf("ring kept iters %d,%d; want 1,2", recent[0].Iter, recent[1].Iter)
	}
	if len(recent[1].Spans) != 2 || recent[1].Spans[0].Phase != PhaseBroadcast {
		t.Errorf("spans = %+v", recent[1].Spans)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("JSONL stream has %d lines, want 3", len(lines))
	}
	var decoded IterTrace
	if err := json.Unmarshal([]byte(lines[0]), &decoded); err != nil {
		t.Fatalf("stream line not valid JSON: %v", err)
	}
	if decoded.Iter != 0 {
		t.Errorf("decoded.Iter = %d, want 0", decoded.Iter)
	}
	if m.Iterations.Value() != 3 {
		t.Errorf("iterations counter = %d, want 3", m.Iterations.Value())
	}

	var nilScope *IterScope
	nilScope.Phase("x") // nil scope must be inert
	nilScope.End()
	var nilT *Tracer
	nilT.Stream(io.Discard)
	nilT.record(IterTrace{})
	if nilT.Recent(0) != nil {
		t.Error("nil tracer not inert")
	}
}

func TestServerEndpoints(t *testing.T) {
	m := New()
	m.OnIteration(1, 0.01)
	m.Event(Event{Kind: EvJoin, Iter: 2, Member: 7})

	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, MIterationsTotal+" 1") {
		t.Errorf("/metrics missing iteration counter:\n%s", body)
	}
	parseExposition(t, body) // every served line must be valid text format

	if body, _ := get("/healthz"); !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %q", body)
	}

	evBody, ct := get("/debug/events?n=10")
	if !strings.Contains(ct, "application/json") {
		t.Errorf("/debug/events content-type = %q", ct)
	}
	var evs []Event
	if err := json.Unmarshal([]byte(evBody), &evs); err != nil {
		t.Fatalf("/debug/events not JSON: %v", err)
	}
	if len(evs) != 1 || evs[0].Kind != EvJoin || evs[0].Member != 7 {
		t.Errorf("/debug/events = %+v", evs)
	}

	trBody, _ := get("/debug/trace")
	var traces []IterTrace
	if err := json.Unmarshal([]byte(trBody), &traces); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}

	if body, _ := get("/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
}
