package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed phase inside an iteration.
type Span struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// IterTrace is the full phase breakdown of one training iteration.
type IterTrace struct {
	Iter    int       `json:"iter"`
	Epoch   int       `json:"epoch"`
	Start   time.Time `json:"start"`
	Seconds float64   `json:"seconds"`
	Spans   []Span    `json:"spans"`
}

// Tracer records per-iteration phase spans into a bounded ring and
// optionally streams each completed trace as one JSON line. A nil *Tracer
// is safe everywhere.
type Tracer struct {
	mu    sync.Mutex
	ring  []IterTrace
	next  int
	total uint64
	enc   *json.Encoder
}

// DefaultTraceCap bounds the in-memory trace ring.
const DefaultTraceCap = 256

// NewTracer returns a tracer retaining the most recent capacity iteration
// traces (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]IterTrace, 0, capacity)}
}

// Stream makes every completed iteration trace also emit one JSON line to
// w (the -trace flag's JSONL output). Pass nil to stop streaming.
func (t *Tracer) Stream(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w == nil {
		t.enc = nil
		return
	}
	t.enc = json.NewEncoder(w)
}

func (t *Tracer) record(tr IterTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % len(t.ring)
	}
	if t.enc != nil {
		_ = t.enc.Encode(tr) // stream is best-effort; never fail training
	}
}

// Recent returns up to n most recent iteration traces in order (all
// retained traces when n <= 0).
func (t *Tracer) Recent(n int) []IterTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]IterTrace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// IterScope times the phases of one iteration. Obtain one from
// Metrics.StartIter; a nil scope is safe and all methods no-op.
type IterScope struct {
	m     *Metrics
	tr    IterTrace
	cur   string
	curAt time.Time
}

// Phase closes the previous phase span (if any) and opens a new one named
// name. Phases may repeat within an iteration (e.g. collect retries).
func (s *IterScope) Phase(name string) {
	if s == nil {
		return
	}
	s.closeSpan()
	s.cur = name
	s.curAt = time.Now()
}

func (s *IterScope) closeSpan() {
	if s.cur == "" {
		return
	}
	sec := time.Since(s.curAt).Seconds()
	s.tr.Spans = append(s.tr.Spans, Span{Phase: s.cur, Seconds: sec})
	if s.m != nil && s.m.PhaseSeconds != nil {
		s.m.PhaseSeconds.With(s.cur).Observe(sec)
	}
	s.cur = ""
}

// End closes the open phase, records the trace in the ring, and updates
// the iteration counter, latency histogram and epoch gauge.
func (s *IterScope) End() {
	if s == nil {
		return
	}
	s.closeSpan()
	s.tr.Seconds = time.Since(s.tr.Start).Seconds()
	if s.m != nil {
		s.m.tracer.record(s.tr)
		s.m.OnIteration(s.tr.Epoch, s.tr.Seconds)
	}
}
