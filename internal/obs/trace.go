package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed phase inside an iteration.
type Span struct {
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// MemberSpan is one member's stitched child record inside an iteration
// trace: the contribution latency the root observed, plus the compact phase
// spans the member echoed on its upload (absent for members that speak an
// older protocol). A member that was erased — died, fenced, skipped — is
// marked Partial with the erasure reason; its Spans hold whatever the root
// learned before the erasure.
type MemberSpan struct {
	Member  int     `json:"member"`
	Group   int     `json:"group"`
	Arrival float64 `json:"arrival_seconds"`
	Spans   []Span  `json:"spans,omitempty"`
	Partial bool    `json:"partial,omitempty"`
	Reason  string  `json:"reason,omitempty"`
}

// Critical names the iteration's end-to-end critical path: the member whose
// contribution gated decode, and the phase that dominated it (PhaseWire when
// the dominant cost is the unmeasured residual between the member's reported
// phases and its observed arrival).
type Critical struct {
	Member  int     `json:"member"`
	Group   int     `json:"group"`
	Phase   string  `json:"phase"`
	Seconds float64 `json:"seconds"`
}

// IterTrace is the full phase breakdown of one training iteration: the
// root-local phase spans plus the stitched per-member child spans collected
// from the wire.
type IterTrace struct {
	Iter    int          `json:"iter"`
	Epoch   int          `json:"epoch"`
	TraceID uint64       `json:"trace_id,omitempty"`
	Start   time.Time    `json:"start"`
	Seconds float64      `json:"seconds"`
	Spans   []Span       `json:"spans"`
	Members []MemberSpan `json:"members,omitempty"`
	Crit    *Critical    `json:"critical,omitempty"`
}

// TraceID derives the per-iteration trace context identifier stamped on the
// parameter broadcast and echoed by every member on its upload. It packs the
// fencing coordinates into disjoint bit ranges — bit 63 marks "traced" (zero
// on the wire means untraced), bits 48–62 the root generation, 32–47 the
// plan epoch, 0–31 the iteration — so the ID is stable across a broadcast
// retry but distinct across epochs, iterations and failovers.
func TraceID(rootGen uint64, epoch, iter int) uint64 {
	return 1<<63 | (rootGen&0x7FFF)<<48 | uint64(uint16(epoch))<<32 | uint64(uint32(iter))
}

// Tracer records per-iteration phase spans into a bounded ring and
// optionally streams each completed trace as one JSON line. A nil *Tracer
// is safe everywhere.
type Tracer struct {
	mu    sync.Mutex
	ring  []IterTrace
	next  int
	total uint64
	enc   *json.Encoder
}

// DefaultTraceCap bounds the in-memory trace ring.
const DefaultTraceCap = 256

// NewTracer returns a tracer retaining the most recent capacity iteration
// traces (DefaultTraceCap when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{ring: make([]IterTrace, 0, capacity)}
}

// Stream makes every completed iteration trace also emit one JSON line to
// w (the -trace flag's JSONL output). Pass nil to stop streaming.
func (t *Tracer) Stream(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if w == nil {
		t.enc = nil
		return
	}
	t.enc = json.NewEncoder(w)
}

func (t *Tracer) record(tr IterTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, tr)
	} else {
		t.ring[t.next] = tr
		t.next = (t.next + 1) % len(t.ring)
	}
	if t.enc != nil {
		_ = t.enc.Encode(tr) // stream is best-effort; never fail training
	}
}

// Recent returns up to n most recent iteration traces in order (all
// retained traces when n <= 0).
func (t *Tracer) Recent(n int) []IterTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]IterTrace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// IterScope times the phases of one iteration. Obtain one from
// Metrics.StartIter; a nil scope is safe and all methods no-op.
type IterScope struct {
	m     *Metrics
	tr    IterTrace
	cur   string
	curAt time.Time
}

// Phase closes the previous phase span (if any) and opens a new one named
// name. Phases may repeat within an iteration (e.g. collect retries).
func (s *IterScope) Phase(name string) {
	if s == nil {
		return
	}
	s.closeSpan()
	s.cur = name
	s.curAt = time.Now()
}

func (s *IterScope) closeSpan() {
	if s.cur == "" {
		return
	}
	sec := time.Since(s.curAt).Seconds()
	s.tr.Spans = append(s.tr.Spans, Span{Phase: s.cur, Seconds: sec})
	if s.m != nil && s.m.PhaseSeconds != nil {
		s.m.PhaseSeconds.With(s.cur).Observe(sec)
	}
	s.cur = ""
}

// SetEpoch updates the trace's plan epoch — a mid-iteration migration means
// the iteration completes under a newer epoch than it started with.
func (s *IterScope) SetEpoch(epoch int) {
	if s == nil {
		return
	}
	s.tr.Epoch = epoch
}

// SetTraceID stamps the wire trace-context identifier on the trace.
func (s *IterScope) SetTraceID(id uint64) {
	if s == nil {
		return
	}
	s.tr.TraceID = id
}

// AddMember attaches one stitched member child span to the trace and feeds
// the attribution families: the contribution-latency histogram and echoed
// phase spans for a full contribution, the erasure counter for a partial
// one.
func (s *IterScope) AddMember(ms MemberSpan) {
	if s == nil {
		return
	}
	s.tr.Members = append(s.tr.Members, ms)
	s.m.OnMemberSpan(ms)
}

// AddMembers attaches a batch of stitched member child spans.
func (s *IterScope) AddMembers(ms []MemberSpan) {
	if s == nil {
		return
	}
	for _, m := range ms {
		s.AddMember(m)
	}
}

// End closes the open phase, derives the critical path from the stitched
// member spans, records the trace in the ring, and updates the iteration
// counter, latency histogram and epoch gauge.
func (s *IterScope) End() {
	if s == nil {
		return
	}
	s.closeSpan()
	s.tr.Seconds = time.Since(s.tr.Start).Seconds()
	s.tr.Crit = criticalPath(s.tr.Members)
	if s.m != nil {
		s.m.tracer.record(s.tr)
		s.m.OnIteration(s.tr.Epoch, s.tr.Seconds)
	}
}

// criticalPath picks the contributing (non-partial) member with the largest
// arrival latency — the one decode waited for — and names the phase that
// dominated it. When the member's echoed spans don't account for its full
// arrival latency, the residual competes as PhaseWire; a member with no
// echoed spans attributes everything to the wire.
func criticalPath(members []MemberSpan) *Critical {
	var gate *MemberSpan
	for i := range members {
		ms := &members[i]
		if ms.Partial {
			continue
		}
		if gate == nil || ms.Arrival > gate.Arrival {
			gate = ms
		}
	}
	if gate == nil {
		return nil
	}
	crit := &Critical{Member: gate.Member, Group: gate.Group, Phase: PhaseWire, Seconds: gate.Arrival}
	residual := gate.Arrival
	var worstPhase string
	var worst float64
	for _, sp := range gate.Spans {
		residual -= sp.Seconds
		if sp.Seconds > worst {
			worstPhase, worst = sp.Phase, sp.Seconds
		}
	}
	if worstPhase != "" && worst >= residual {
		crit.Phase = worstPhase
	}
	return crit
}
