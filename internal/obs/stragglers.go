package obs

import "sort"

// Straggler attribution: a rolling report derived from the stitched member
// spans in the trace ring. It answers the operator questions the flat
// metrics cannot — which member gates iterations, which of its phases
// dominates, and whether it is getting worse — and is served at
// /debug/stragglers and printed by `gctrain -trace`.

// MemberReport is one member's rolling attribution over the report window.
type MemberReport struct {
	Member int `json:"member"`
	Group  int `json:"group"`
	// Contribs counts iterations in the window this member's upload was
	// decoded from; Erasures counts partial appearances (died, fenced,
	// skipped) by any reason.
	Contribs int `json:"contribs"`
	Erasures int `json:"erasures,omitempty"`
	// MeanSeconds and LastSeconds summarise the member's contribution
	// latency (root-observed, broadcast to arrival).
	MeanSeconds float64 `json:"mean_seconds"`
	LastSeconds float64 `json:"last_seconds"`
	// GatedIters counts iterations whose critical path this member was.
	GatedIters int `json:"gated_iters,omitempty"`
	// SlowestPhase is the member's dominant echoed phase by mean seconds
	// (PhaseWire when the unmeasured residual dominates), with its mean.
	SlowestPhase        string  `json:"slowest_phase"`
	SlowestPhaseSeconds float64 `json:"slowest_phase_seconds"`
	// Trend compares the newer half of the window against the older half:
	// "degrading" (≥15% slower), "improving" (≥15% faster) or "steady".
	Trend string `json:"trend"`
}

// StragglerReport is the rolling cluster attribution over the most recent
// traced iterations.
type StragglerReport struct {
	// WindowIters is the number of traces the report was derived from.
	WindowIters int `json:"window_iters"`
	// Slowest is the member with the highest mean contribution latency
	// (nil when no member spans were traced).
	Slowest *MemberReport `json:"slowest,omitempty"`
	// Members holds every member's report, slowest first.
	Members []MemberReport `json:"members"`
}

// Trend values.
const (
	TrendDegrading = "degrading"
	TrendImproving = "improving"
	TrendSteady    = "steady"
)

type memberAccum struct {
	member, group int
	arrivals      []float64
	erasures      int
	gated         int
	phaseSum      map[string]float64
	phaseCount    map[string]int
	residSum      float64
	residCount    int
	last          float64
	contribs      int
}

// Attribution derives the straggler report from a window of traces
// (typically Tracer.Recent(n)). Pure function: the sim's synthetic traces
// and the live runtimes' wall-clock traces produce the same report shape.
func Attribution(traces []IterTrace) *StragglerReport {
	rep := &StragglerReport{WindowIters: len(traces)}
	accums := make(map[[2]int]*memberAccum)
	order := make([][2]int, 0)
	for _, tr := range traces {
		for _, ms := range tr.Members {
			key := [2]int{ms.Group, ms.Member}
			a, ok := accums[key]
			if !ok {
				a = &memberAccum{
					member: ms.Member, group: ms.Group,
					phaseSum: make(map[string]float64), phaseCount: make(map[string]int),
				}
				accums[key] = a
				order = append(order, key)
			}
			if ms.Partial {
				a.erasures++
				continue
			}
			a.contribs++
			a.arrivals = append(a.arrivals, ms.Arrival)
			a.last = ms.Arrival
			resid := ms.Arrival
			for _, sp := range ms.Spans {
				a.phaseSum[sp.Phase] += sp.Seconds
				a.phaseCount[sp.Phase]++
				resid -= sp.Seconds
			}
			if resid > 0 {
				a.residSum += resid
				a.residCount++
			}
			if tr.Crit != nil && tr.Crit.Member == ms.Member && tr.Crit.Group == ms.Group {
				a.gated++
			}
		}
	}
	for _, key := range order {
		a := accums[key]
		mr := MemberReport{
			Member: a.member, Group: a.group,
			Contribs: a.contribs, Erasures: a.erasures,
			LastSeconds: a.last, GatedIters: a.gated,
			Trend: trend(a.arrivals),
		}
		if a.contribs > 0 {
			mr.MeanSeconds = mean(a.arrivals)
		}
		mr.SlowestPhase, mr.SlowestPhaseSeconds = slowestPhase(a)
		rep.Members = append(rep.Members, mr)
	}
	sort.SliceStable(rep.Members, func(i, j int) bool {
		return rep.Members[i].MeanSeconds > rep.Members[j].MeanSeconds
	})
	if len(rep.Members) > 0 {
		rep.Slowest = &rep.Members[0]
	}
	return rep
}

func mean(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func trend(arrivals []float64) string {
	if len(arrivals) < 4 {
		return TrendSteady
	}
	half := len(arrivals) / 2
	older, newer := mean(arrivals[:half]), mean(arrivals[half:])
	switch {
	case older <= 0:
		return TrendSteady
	case newer >= older*1.15:
		return TrendDegrading
	case newer <= older*0.85:
		return TrendImproving
	}
	return TrendSteady
}

func slowestPhase(a *memberAccum) (string, float64) {
	best, bestMean := "", 0.0
	for phase, sum := range a.phaseSum {
		if m := sum / float64(a.phaseCount[phase]); m > bestMean || (m == bestMean && phase < best) {
			best, bestMean = phase, m
		}
	}
	if a.residCount > 0 {
		if m := a.residSum / float64(a.residCount); best == "" || m > bestMean {
			best, bestMean = PhaseWire, m
		}
	}
	if best == "" && a.contribs > 0 {
		best, bestMean = PhaseWire, mean(a.arrivals)
	}
	return best, bestMean
}

// StragglerReport derives the rolling attribution from the most recent n
// traces (all retained when n <= 0). Nil-safe: a nil bundle reports an
// empty window.
func (m *Metrics) StragglerReport(n int) *StragglerReport {
	if m == nil {
		return &StragglerReport{}
	}
	return Attribution(m.tracer.Recent(n))
}
