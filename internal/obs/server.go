package obs

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is the telemetry HTTP endpoint: /metrics (Prometheus text),
// /healthz, /debug/events, /debug/trace, /debug/stragglers, and the stdlib
// pprof handlers under /debug/pprof/.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ShutdownTimeout bounds how long Close waits for in-flight scrapes to
// drain before tearing the server down cold.
const ShutdownTimeout = 3 * time.Second

// boundedN parses the shared ?n= query of the bounded-JSON debug endpoints:
// absent means "all retained", otherwise the value must be a positive
// integer. A malformed or non-positive value gets HTTP 400 with a usage
// hint instead of a silently-defaulted full dump; ok reports whether the
// caller should proceed.
func boundedN(w http.ResponseWriter, r *http.Request) (n int, ok bool) {
	q := r.URL.Query().Get("n")
	if q == "" {
		return 0, true
	}
	v, err := strconv.Atoi(q)
	if err != nil || v <= 0 {
		http.Error(w, "query parameter n must be a positive integer (e.g. "+r.URL.Path+"?n=50); omit it for all retained entries", http.StatusBadRequest)
		return 0, false
	}
	return v, true
}

// NewServer listens on addr (host:port; port 0 picks a free port) and
// serves m in the background until Close.
func NewServer(addr string, m *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		n, ok := boundedN(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.Journal().Recent(n))
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n, ok := boundedN(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.Tracer().Recent(n))
	})
	mux.HandleFunc("/debug/stragglers", func(w http.ResponseWriter, r *http.Request) {
		n, ok := boundedN(w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.StragglerReport(n))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Close shuts the server down gracefully: the listener stops accepting
// immediately, in-flight scrapes get ShutdownTimeout to drain, and anything
// still open after the deadline is closed cold.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), ShutdownTimeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}
