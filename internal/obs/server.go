package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Server is the telemetry HTTP endpoint: /metrics (Prometheus text),
// /healthz, /debug/events, /debug/trace, and the stdlib pprof handlers
// under /debug/pprof/.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewServer listens on addr (host:port; port 0 picks a free port) and
// serves m in the background until Close.
func NewServer(addr string, m *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = m.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
		n := 0 // all retained
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.Journal().Recent(n))
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil {
				n = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(m.Tracer().Recent(n))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the http:// base URL of the server.
func (s *Server) URL() string { return "http://" + s.ln.Addr().String() }

// Close stops the server and its listener.
func (s *Server) Close() error { return s.srv.Close() }
