// Package obs is the repo's dependency-free telemetry plane: a metrics
// registry (atomic counters, gauges, fixed-bucket histograms, labeled
// families) that serializes to the Prometheus text exposition format, a
// bounded structured event journal, a per-iteration phase tracer, and an
// HTTP server exposing /metrics, /healthz, /debug/events and
// net/http/pprof. It imports only the standard library so every layer of
// the stack (transport, roster, checkpoint, runtimes, simulator) can
// depend on it without cycles.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	case histogramKind:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. All methods are safe for concurrent use; updates on
// the returned handles are lock-free atomics.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histogramKind only

	// fn-backed families have exactly one synthetic series whose value is
	// read at scrape time (used for process-wide counters owned elsewhere,
	// e.g. the transport wire plane, and derived gauges like snapshot age).
	fn        func() float64
	fnInteger bool

	mu     sync.Mutex
	series map[string]*series
}

type series struct {
	labelVals []string

	// counter: integer count in bits. gauge: math.Float64bits in bits.
	bits atomic.Uint64

	// fn-backed labeled counter series read their value at scrape time
	// instead of bits (CounterFuncVec).
	fn func() uint64

	// histogram only.
	counts  []atomic.Uint64 // one per bucket bound, +Inf implicit via count
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits, CAS-accumulated
}

func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if name == "" || !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %v with %d labels (was %v with %d)",
				name, kind, len(labels), f.kind, len(f.labels)))
		}
		return f
	}
	f := &family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: append([]float64(nil), buckets...),
		series:  make(map[string]*series),
	}
	r.families[name] = f
	return f
}

func (f *family) get(vals []string) *series {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := strings.Join(vals, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &series{labelVals: append([]string(nil), vals...)}
	if f.kind == histogramKind {
		s.counts = make([]atomic.Uint64, len(f.buckets))
	}
	f.series[key] = s
	return s
}

// Counter is a monotonically increasing integer.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.s.bits.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.s.bits.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.s.bits.Load() }

// Gauge is a float that can go up and down.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) { g.s.bits.Store(math.Float64bits(v)) }

// Add accumulates delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.s.bits.Load()) }

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	f *family
	s *series
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.f.buckets, v)
	if idx < len(h.s.counts) {
		h.s.counts[idx].Add(1)
	}
	h.s.count.Add(1)
	for {
		old := h.s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.s.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.s.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.s.sumBits.Load()) }

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(vals ...string) *Counter { return &Counter{s: v.f.get(vals)} }

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(vals ...string) *Gauge { return &Gauge{s: v.f.get(vals)} }

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	return &Histogram{f: v.f, s: v.f.get(vals)}
}

// Counter registers (or returns the existing) unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, counterKind, nil, nil)
	return &Counter{s: f.get(nil)}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, counterKind, labels, nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, gaugeKind, nil, nil)
	return &Gauge{s: f.get(nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, gaugeKind, labels, nil)}
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, gaugeKind, nil, nil)
	f.fn = fn
}

// CounterFunc registers a counter whose value is read at scrape time from
// fn — for counters maintained elsewhere as plain atomics (e.g. the
// transport wire plane).
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, counterKind, nil, nil)
	f.fn = func() float64 { return float64(fn()) }
	f.fnInteger = true
}

// CounterFuncVec registers a single-label counter family whose series are
// read at scrape time — the labeled analogue of CounterFunc (e.g. the
// transport's per-codec gradient counters, one series per codec name).
// Re-registering a label value replaces its function.
func (r *Registry) CounterFuncVec(name, help, label string, series map[string]func() uint64) {
	f := r.register(name, help, counterKind, []string{label}, nil)
	for val, fn := range series {
		f.get([]string{val}).fn = fn
	}
}

// Histogram registers an unlabeled histogram with the given bucket upper
// bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefSecondsBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
	}
	f := r.register(name, help, histogramKind, nil, buckets)
	return &Histogram{f: f, s: f.get(nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefSecondsBuckets
	}
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
	}
	return &HistogramVec{f: r.register(name, help, histogramKind, labels, buckets)}
}

// DefSecondsBuckets covers sub-millisecond appends through multi-second
// iterations; shared by every latency histogram so families stay diffable.
var DefSecondsBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// WritePrometheus renders every family in text exposition format: families
// sorted by name, series sorted by label values, HELP/TYPE comment lines
// per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	if f.fn != nil {
		v := f.fn()
		if f.fnInteger {
			fmt.Fprintf(b, "%s %s\n", f.name, strconv.FormatUint(uint64(v), 10))
		} else {
			fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(v))
		}
		return
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sers := make([]*series, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		sers = append(sers, f.series[k])
	}
	f.mu.Unlock()

	for _, s := range sers {
		switch f.kind {
		case counterKind:
			v := s.bits.Load()
			if s.fn != nil {
				v = s.fn()
			}
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""),
				strconv.FormatUint(v, 10))
		case gaugeKind:
			fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.labelVals, "", ""),
				formatFloat(math.Float64frombits(s.bits.Load())))
		case histogramKind:
			// Snapshot bucket counts before the total so a concurrent
			// Observe can never make cumulative buckets exceed _count...
			// the inverse (count ahead of buckets) is legal: the +Inf
			// bucket is emitted as _count itself.
			var cum uint64
			counts := make([]uint64, len(s.counts))
			for i := range s.counts {
				counts[i] = s.counts[i].Load()
			}
			total := s.count.Load()
			sum := math.Float64frombits(s.sumBits.Load())
			for i, bound := range f.buckets {
				cum += counts[i]
				fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
					labelString(f.labels, s.labelVals, "le", formatFloat(bound)), cum)
			}
			if cum > total {
				total = cum
			}
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				labelString(f.labels, s.labelVals, "le", "+Inf"), total)
			fmt.Fprintf(b, "%s_sum%s %s\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), formatFloat(sum))
			fmt.Fprintf(b, "%s_count%s %d\n", f.name,
				labelString(f.labels, s.labelVals, "", ""), total)
		}
	}
}

// labelString renders {k1="v1",k2="v2"} with optional extra label (for
// histogram le). Empty when there are no labels at all.
func labelString(keys, vals []string, extraKey, extraVal string) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

func validName(s string) bool {
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func validLabel(s string) bool {
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0 && !strings.HasPrefix(s, "__")
}
