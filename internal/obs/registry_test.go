package obs

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// populatedRegistry builds a registry with every metric kind, labeled and
// unlabeled, at fixed values — shared by the golden and round-trip tests.
func populatedRegistry() *Registry {
	r := NewRegistry()

	c := r.Counter("demo_requests_total", "Requests served.")
	c.Add(42)

	cv := r.CounterVec("demo_errors_total", "Errors by class.", "class")
	cv.With("timeout").Add(3)
	cv.With("decode").Inc()

	g := r.Gauge("demo_temperature", "Current temperature.")
	g.Set(36.6)

	gv := r.GaugeVec("demo_rate", "Rate per member.", "group", "member")
	gv.With("0", "1").Set(1.5)
	gv.With("0", "2").Set(2.25)
	gv.With("1", "1").Set(0.125)

	r.GaugeFunc("demo_answer", "The answer, computed at scrape time.", func() float64 { return 42 })
	r.CounterFunc("demo_ticks_total", "Ticks, read at scrape time.", func() uint64 { return 7 })

	h := r.Histogram("demo_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}

	hv := r.HistogramVec("demo_phase_seconds", "Phase latency.", []float64{0.1, 1}, "phase")
	hv.With("collect").Observe(0.05)
	hv.With("collect").Observe(2)
	hv.With("step").Observe(0.5)

	// Escaping: backslashes, quotes and newlines in help and label values.
	eg := r.GaugeVec("demo_escaped", "Help with \\ backslash and\nnewline.", "path")
	eg.With(`C:\tmp\"x"` + "\n").Set(1)

	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := populatedRegistry().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	golden := filepath.Join("testdata", "golden.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("scrape differs from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestScrapeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	r := populatedRegistry()
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two scrapes of an idle registry differ — output ordering is not deterministic")
	}
}

// TestConcurrencyHammer pounds counters, gauges and histograms from many
// goroutines while scraping concurrently; run under -race this is the
// data-race check, and the final values must be exact (no lost updates).
func TestConcurrencyHammer(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hammer_total", "")
	cv := r.CounterVec("hammer_labeled_total", "", "worker")
	g := r.Gauge("hammer_gauge", "")
	h := r.Histogram("hammer_seconds", "", []float64{0.5})

	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lc := cv.With(strconv.Itoa(w))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				lc.Inc()
				g.Add(1)
				h.Observe(float64(i % 2)) // alternates below/above the bucket
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WritePrometheus(&buf); err != nil {
				t.Errorf("concurrent scrape: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter lost updates: got %d want %d", got, total)
	}
	for w := 0; w < workers; w++ {
		if got := cv.With(strconv.Itoa(w)).Value(); got != perWorker {
			t.Errorf("labeled counter %d: got %d want %d", w, got, perWorker)
		}
	}
	if got := g.Value(); got != total {
		t.Errorf("gauge lost adds: got %v want %d", got, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count: got %d want %d", got, total)
	}
	if got := h.Sum(); got != total/2 {
		t.Errorf("histogram sum: got %v want %d", got, total/2)
	}
}

// --- Prometheus text-format validator (round-trip test) ---------------

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parseExposition validates every line of a text-format scrape and returns
// the parsed samples. It enforces: valid metric/label names, properly
// quoted+escaped label values, parseable sample values, TYPE before
// samples, and one HELP/TYPE pair per family.
func parseExposition(t *testing.T, text string) []promSample {
	t.Helper()
	var samples []promSample
	typed := map[string]string{}
	helped := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !nameRe.MatchString(name) {
				t.Fatalf("line %d: bad HELP name %q", lineNo, name)
			}
			if helped[name] {
				t.Fatalf("line %d: duplicate HELP for %q", lineNo, name)
			}
			helped[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			if !nameRe.MatchString(name) {
				t.Fatalf("line %d: bad TYPE name %q", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown type %q", lineNo, typ)
			}
			if _, dup := typed[name]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		s := parseSampleLine(t, lineNo, line)
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(base, suf)
			if trimmed != base && typed[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("line %d: sample %q has no preceding TYPE", lineNo, s.name)
		}
		samples = append(samples, s)
	}
	return samples
}

func parseSampleLine(t *testing.T, lineNo int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	var nameEnd int
	if brace >= 0 {
		nameEnd = brace
	} else {
		nameEnd = strings.IndexByte(rest, ' ')
		if nameEnd < 0 {
			t.Fatalf("line %d: no value separator in %q", lineNo, line)
		}
	}
	s.name = rest[:nameEnd]
	if !nameRe.MatchString(s.name) {
		t.Fatalf("line %d: invalid metric name %q", lineNo, s.name)
	}
	rest = rest[nameEnd:]
	if brace >= 0 {
		rest = rest[1:] // consume '{'
		for {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				t.Fatalf("line %d: unterminated label set in %q", lineNo, line)
			}
			key := rest[:eq]
			if !labelRe.MatchString(key) {
				t.Fatalf("line %d: invalid label name %q", lineNo, key)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				t.Fatalf("line %d: label value for %q not quoted", lineNo, key)
			}
			rest = rest[1:]
			var val strings.Builder
			closed := false
			for i := 0; i < len(rest); i++ {
				ch := rest[i]
				if ch == '\\' {
					if i+1 >= len(rest) {
						t.Fatalf("line %d: dangling escape", lineNo)
					}
					i++
					switch rest[i] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						t.Fatalf("line %d: invalid escape \\%c", lineNo, rest[i])
					}
					continue
				}
				if ch == '"' {
					rest = rest[i+1:]
					closed = true
					break
				}
				if ch == '\n' {
					t.Fatalf("line %d: raw newline inside label value", lineNo)
				}
				val.WriteByte(ch)
			}
			if !closed {
				t.Fatalf("line %d: unterminated label value in %q", lineNo, line)
			}
			if _, dup := s.labels[key]; dup {
				t.Fatalf("line %d: duplicate label %q", lineNo, key)
			}
			s.labels[key] = val.String()
			if strings.HasPrefix(rest, ",") {
				rest = rest[1:]
				continue
			}
			if strings.HasPrefix(rest, "}") {
				rest = rest[1:]
				break
			}
			t.Fatalf("line %d: expected ',' or '}' after label, got %q", lineNo, rest)
		}
	}
	if !strings.HasPrefix(rest, " ") {
		t.Fatalf("line %d: expected space before value in %q", lineNo, line)
	}
	valStr := strings.TrimPrefix(rest, " ")
	v, err := parsePromValue(valStr)
	if err != nil {
		t.Fatalf("line %d: bad sample value %q: %v", lineNo, valStr, err)
	}
	s.value = v
	return s
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// TestExpositionRoundTrip scrapes a fully populated registry (including
// the canonical Metrics bundle with events, traces and wire counters live)
// and re-parses every line, checking format validity, escaping round-trip
// and histogram invariants.
func TestExpositionRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := populatedRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, buf.String())
	if len(samples) == 0 {
		t.Fatal("no samples parsed")
	}

	// Escaped label value survives the round trip exactly.
	found := false
	for _, s := range samples {
		if s.name == "demo_escaped" {
			found = true
			want := `C:\tmp\"x"` + "\n"
			if got := s.labels["path"]; got != want {
				t.Errorf("escaping round-trip: got %q want %q", got, want)
			}
		}
	}
	if !found {
		t.Error("demo_escaped sample missing from scrape")
	}

	checkHistogramInvariants(t, samples, "demo_latency_seconds", nil)
	checkHistogramInvariants(t, samples, "demo_phase_seconds", []string{"collect", "step"})

	// The canonical bundle itself must survive the same round trip.
	m := New()
	sc := m.StartIter(0, 1)
	sc.Phase(PhaseBroadcast)
	sc.Phase(PhaseCollect)
	sc.End()
	m.OnReplan(ReasonDrift, 3, 2, 5)
	m.OnEstimate(0, 1, 123.5)
	m.OnJoin(0, 2, true, 4, 3)
	m.OnDeath(0, 3, 3, 4)
	m.OnReject(RStaleEpoch)
	m.OnCache(90, 10)
	m.OnAppend(0.001, 4)
	m.OnSnapshot(0.01, 5)
	m.OnLease(2)
	m.OnRenewal()
	m.OnFencedWrite(6, "journal append")
	m.OnPromotion(3, 7)
	m.OnDrift(1.4)
	m.BindWire(func() (a, b, c, d, e, f uint64) { return 1, 2, 3, 4, 5, 6 })
	buf.Reset()
	if err := m.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	bundle := parseExposition(t, buf.String())
	byName := map[string]float64{}
	for _, s := range bundle {
		if len(s.labels) == 0 {
			byName[s.name] = s.value
		}
	}
	for name, want := range map[string]float64{
		MIterationsTotal:   1,
		MPlanEpoch:         2,
		MDriftGain:         1.4,
		MCacheHitRatio:     0.9,
		MLeaseGeneration:   3,
		MPromotionsTotal:   1,
		MFencedWritesTotal: 1,
		MDeathsTotal:       1,
		MWireBytesOutTotal: 4,
		MEventsTotal:       float64(m.Journal().Total()),
	} {
		if got, ok := byName[name]; !ok || got != want {
			t.Errorf("bundle scrape %s: got %v (present=%v) want %v", name, got, ok, want)
		}
	}
}

func checkHistogramInvariants(t *testing.T, samples []promSample, base string, labelVals []string) {
	t.Helper()
	seriesKey := func(s promSample) string {
		parts := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		sortStrings(parts)
		return strings.Join(parts, ",")
	}
	buckets := map[string][]float64{} // series -> cumulative counts in order
	bounds := map[string][]float64{}
	counts := map[string]float64{}
	for _, s := range samples {
		switch s.name {
		case base + "_bucket":
			k := seriesKey(s)
			le, err := parsePromValue(s.labels["le"])
			if err != nil {
				t.Fatalf("%s: bad le %q", base, s.labels["le"])
			}
			bounds[k] = append(bounds[k], le)
			buckets[k] = append(buckets[k], s.value)
		case base + "_count":
			counts[seriesKey(s)] = s.value
		}
	}
	if len(buckets) == 0 {
		t.Fatalf("no %s_bucket samples found", base)
	}
	if labelVals != nil && len(buckets) != len(labelVals) {
		t.Errorf("%s: got %d series, want %d", base, len(buckets), len(labelVals))
	}
	for k, cum := range buckets {
		for i := 1; i < len(cum); i++ {
			if bounds[k][i] <= bounds[k][i-1] {
				t.Errorf("%s{%s}: le bounds not ascending: %v", base, k, bounds[k])
			}
			if cum[i] < cum[i-1] {
				t.Errorf("%s{%s}: cumulative bucket counts decrease: %v", base, k, cum)
			}
		}
		last := cum[len(cum)-1]
		if !math.IsInf(bounds[k][len(bounds[k])-1], 1) {
			t.Errorf("%s{%s}: final bucket is not +Inf", base, k)
		}
		if last != counts[k] {
			t.Errorf("%s{%s}: +Inf bucket %v != _count %v", base, k, last, counts[k])
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestRegistryMisuse(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "")
	mustPanic(t, "kind clash", func() { r.Gauge("ok_total", "") })
	mustPanic(t, "label arity clash", func() { r.CounterVec("ok_total", "", "x") })
	mustPanic(t, "bad name", func() { r.Counter("9starts_with_digit", "") })
	mustPanic(t, "bad label", func() { r.CounterVec("fine_total", "", "__reserved") })
	mustPanic(t, "unsorted buckets", func() { r.Histogram("h_total", "", []float64{1, 0.5}) })
	cv := r.CounterVec("labeled_total", "", "a", "b")
	mustPanic(t, "label value arity", func() { cv.With("only-one") })

	// Re-registering identically is idempotent and shares state.
	c1 := r.Counter("idem_total", "")
	c2 := r.Counter("idem_total", "")
	c1.Inc()
	if c2.Value() != 1 {
		t.Error("re-registered counter does not share state")
	}
}

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", what)
		}
	}()
	fn()
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1, "1"}, {1.5, "1.5"}, {math.Inf(1), "+Inf"}, {math.Inf(-1), "-Inf"},
		{0.00025, "0.00025"},
	} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q want %q", tc.in, got, tc.want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
	var _ fmt.Stringer = counterKind
}
