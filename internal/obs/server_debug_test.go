package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDebugEndpointBounds table-tests the shared ?n= contract of every
// bounded-JSON debug endpoint: absent or positive is served, zero, negative
// and non-numeric get HTTP 400 with a usage hint naming the parameter.
func TestDebugEndpointBounds(t *testing.T) {
	m := New()
	for i := 0; i < 5; i++ {
		m.Event(Event{Kind: EvReplan, Iter: i})
		sc := m.StartIter(i, 0)
		sc.Phase(PhaseCollect)
		sc.AddMember(MemberSpan{Member: 1, Arrival: 0.01})
		sc.End()
	}
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	endpoints := []string{"/debug/events", "/debug/trace", "/debug/stragglers"}
	cases := []struct {
		query      string
		wantStatus int
	}{
		{"", http.StatusOK},
		{"?n=1", http.StatusOK},
		{"?n=3", http.StatusOK},
		{"?n=999999", http.StatusOK},
		{"?n=0", http.StatusBadRequest},
		{"?n=-5", http.StatusBadRequest},
		{"?n=abc", http.StatusBadRequest},
		{"?n=1.5", http.StatusBadRequest},
		{"?n=", http.StatusOK}, // empty value reads as absent
	}
	for _, ep := range endpoints {
		for _, tc := range cases {
			resp, err := http.Get(srv.URL() + ep + tc.query)
			if err != nil {
				t.Fatalf("GET %s%s: %v", ep, tc.query, err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("GET %s%s: status %d, want %d (body %q)", ep, tc.query, resp.StatusCode, tc.wantStatus, body)
				continue
			}
			if tc.wantStatus == http.StatusBadRequest {
				if !strings.Contains(string(body), "positive integer") || !strings.Contains(string(body), ep) {
					t.Errorf("GET %s%s: 400 body lacks usage hint: %q", ep, tc.query, body)
				}
			} else if !json.Valid(body) {
				t.Errorf("GET %s%s: body is not JSON: %q", ep, tc.query, body)
			}
		}
	}

	// n truncates to the most recent entries.
	resp, err := http.Get(srv.URL() + "/debug/events?n=2")
	if err != nil {
		t.Fatal(err)
	}
	var evs []Event
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(evs) != 2 || evs[1].Iter != 4 {
		t.Fatalf("events?n=2 = %+v, want the 2 most recent", evs)
	}
}

// TestStragglersEndpoint asserts /debug/stragglers serves the rolling
// attribution derived from the trace ring.
func TestStragglersEndpoint(t *testing.T) {
	m := New()
	for i := 0; i < 4; i++ {
		sc := m.StartIter(i, 0)
		sc.AddMember(MemberSpan{Member: 1, Arrival: 0.01, Spans: []Span{{Phase: PhaseCompute, Seconds: 0.009}}})
		sc.AddMember(MemberSpan{Member: 2, Arrival: 0.05, Spans: []Span{{Phase: PhaseCompute, Seconds: 0.049}}})
		sc.End()
	}
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(srv.URL() + "/debug/stragglers?n=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep StragglerReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("stragglers not JSON: %v", err)
	}
	if rep.WindowIters != 4 || rep.Slowest == nil || rep.Slowest.Member != 2 {
		t.Fatalf("report = %+v, want member 2 slowest over 4 iters", rep)
	}
	if rep.Slowest.SlowestPhase != PhaseCompute {
		t.Fatalf("slowest phase = %q, want compute", rep.Slowest.SlowestPhase)
	}
}

// TestServerGracefulClose asserts Close drains in-flight scrapes instead of
// cutting them off, completes within the shutdown deadline, and leaves the
// listener closed for new connections.
func TestServerGracefulClose(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Event(Event{Kind: EvReplan, Iter: i})
	}
	srv, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL() + "/debug/events")
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if _, err := io.ReadAll(resp.Body); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait() // all scrapes in flight completed before Close in this schedule

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := time.Since(start); d > ShutdownTimeout+time.Second {
		t.Fatalf("Close took %v, beyond the shutdown deadline", d)
	}
	close(errs)
	for err := range errs {
		t.Errorf("scrape during lifetime failed: %v", err)
	}

	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Close")
	}
	// A second Close is harmless.
	if err := srv.Close(); err != nil && !strings.Contains(err.Error(), "closed") {
		t.Fatalf("second Close: %v", err)
	}
}
