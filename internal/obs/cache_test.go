package obs

import "testing"

func cacheGauges(t *testing.T, m *Metrics) (hits, misses, ratio float64) {
	t.Helper()
	return m.CacheHits.Value(), m.CacheMisses.Value(), m.CacheHitRatio.Value()
}

func TestOnCacheDeltaAccumulates(t *testing.T) {
	m := New()
	m.OnCacheDelta(9, 1)
	m.OnCacheDelta(11, 4)
	hits, misses, ratio := cacheGauges(t, m)
	if hits != 20 || misses != 5 {
		t.Fatalf("totals = %v/%v, want 20/5", hits, misses)
	}
	if ratio != 0.8 {
		t.Fatalf("ratio = %v, want 0.8", ratio)
	}
	// Nil receiver must no-op.
	var nilM *Metrics
	nilM.OnCacheDelta(1, 1)
}

func TestCacheTrackerFoldsSnapshots(t *testing.T) {
	m := New()
	var tr CacheTracker
	keyA, keyB := new(int), new(int)

	// Growing snapshots from one strategy fold as deltas.
	tr.Fold(m, keyA, 10, 2)
	tr.Fold(m, keyA, 25, 5)
	if hits, misses, _ := cacheGauges(t, m); hits != 25 || misses != 5 {
		t.Fatalf("after same-key folds: %v/%v, want 25/5", hits, misses)
	}

	// A replan installs a fresh strategy with zeroed counters: the baseline
	// resets and the new snapshot adds on top instead of wrapping negative.
	tr.Fold(m, keyB, 4, 1)
	if hits, misses, _ := cacheGauges(t, m); hits != 29 || misses != 6 {
		t.Fatalf("after key change: %v/%v, want 29/6", hits, misses)
	}

	// A counter decrease under the same key (a reset we did not see the key
	// change for) also resets the baseline rather than underflowing.
	tr.Fold(m, keyB, 2, 0)
	if hits, misses, _ := cacheGauges(t, m); hits != 31 || misses != 6 {
		t.Fatalf("after counter decrease: %v/%v, want 31/6", hits, misses)
	}

	// Nil metrics must not advance the baseline.
	before := tr
	tr.Fold(nil, keyB, 100, 100)
	if tr != before {
		t.Fatalf("nil fold advanced the tracker: %+v", tr)
	}
}
