package testkit

import (
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/transport"
)

// TestScheduleDeterministic pins the seeded fault sequence: the same seed
// and rates must always yield the same draws, because conformance scenarios
// rely on specific faults (a truncate, a drop, a dup) occurring within the
// frames a run sends.
func TestScheduleDeterministic(t *testing.T) {
	rates := Rates{Drop: 0.15, Delay: 0.05, Dup: 0.15, Truncate: 0.25}
	a := NewSchedule(7, rates)
	b := NewSchedule(7, rates)
	var seqA, seqB []Fault
	for i := 0; i < 64; i++ {
		seqA = append(seqA, a.Next())
		seqB = append(seqB, b.Next())
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("draw %d: %v vs %v — schedule not deterministic", i, seqA[i], seqB[i])
		}
	}
	other := NewSchedule(8, rates)
	same := true
	for i := 0; i < 64; i++ {
		if other.Next() != seqA[i] {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical sequences")
	}
}

// TestScheduleSeed7CoversScenarioFaults pins that the fault-injection
// conformance scenario (seed 7, its exact rates, ~24 gradient sends)
// deterministically includes the faults its expectations assert on.
func TestScheduleSeed7CoversScenarioFaults(t *testing.T) {
	s := NewSchedule(7, Rates{Drop: 0.15, Delay: 0.05, Dup: 0.15, Truncate: 0.25})
	for i := 0; i < 24; i++ {
		s.Next()
	}
	counts := s.Counts()
	if counts[FaultTruncate] == 0 {
		t.Fatalf("no truncate fault in the first 24 draws (%v) — the conformance scenario's Malformed expectation would be vacuous", counts)
	}
	if counts[FaultDrop] == 0 {
		t.Fatalf("no drop fault in the first 24 draws (%v)", counts)
	}
	if counts[FaultDup] == 0 {
		t.Fatalf("no dup fault in the first 24 draws (%v)", counts)
	}
}

// faultPipe builds a connected transport pair over loopback TCP.
func faultPipe(t *testing.T) (client, server *transport.Conn) {
	t.Helper()
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, err = lis.Accept()
	}()
	client, cerr := transport.Dial(lis.Addr(), 2*time.Second)
	wg.Wait()
	if cerr != nil || err != nil {
		t.Fatalf("pipe: dial=%v accept=%v", cerr, err)
	}
	t.Cleanup(func() { _ = client.Close(); _ = server.Close() })
	return client, server
}

// TestFaultConnBehaviors drives one frame through each fault kind and
// checks what the receiver observes: drops vanish, dups double, truncations
// halve the vector, stale replays decrement the epoch, and non-gradient
// frames always pass through untouched.
func TestFaultConnBehaviors(t *testing.T) {
	grad := func(epoch int) *transport.Envelope {
		return &transport.Envelope{Type: transport.MsgGradient, Iter: 1, Epoch: epoch, Vector: []float64{1, 2, 3, 4}}
	}
	cases := []struct {
		name  string
		rates Rates
		send  *transport.Envelope
		want  int // frames the receiver should observe
		check func(t *testing.T, got []*transport.Envelope)
	}{
		{
			name: "drop", rates: Rates{Drop: 1}, send: grad(1), want: 0,
		},
		{
			name: "dup", rates: Rates{Dup: 1}, send: grad(1), want: 2,
			check: func(t *testing.T, got []*transport.Envelope) {
				if len(got[0].Vector) != 4 || len(got[1].Vector) != 4 {
					t.Fatalf("dup mangled the frames: %v", got)
				}
			},
		},
		{
			name: "truncate", rates: Rates{Truncate: 1}, send: grad(1), want: 1,
			check: func(t *testing.T, got []*transport.Envelope) {
				if len(got[0].Vector) != 2 {
					t.Fatalf("truncate sent %d elements, want 2", len(got[0].Vector))
				}
			},
		},
		{
			name: "stale-epoch", rates: Rates{StaleEpoch: 1}, send: grad(3), want: 1,
			check: func(t *testing.T, got []*transport.Envelope) {
				if got[0].Epoch != 2 {
					t.Fatalf("stale replay has epoch %d, want 2", got[0].Epoch)
				}
			},
		},
		{
			name: "stale-epoch-at-zero-passes", rates: Rates{StaleEpoch: 1}, send: grad(0), want: 1,
			check: func(t *testing.T, got []*transport.Envelope) {
				if got[0].Epoch != 0 {
					t.Fatalf("epoch-0 frame mutated to epoch %d", got[0].Epoch)
				}
			},
		},
		{
			name:  "non-gradient-passes",
			rates: Rates{Drop: 1},
			send:  &transport.Envelope{Type: transport.MsgTelemetry, Telemetry: &transport.Telemetry{ComputeSeconds: 1, Partitions: 1}},
			want:  1,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			client, server := faultPipe(t)
			fc := NewFaultConn(client, NewSchedule(1, tc.rates))
			if err := fc.Send(tc.send); err != nil {
				t.Fatal(err)
			}
			// A sentinel frame marks the end of the faulted traffic, so the
			// receiver can count without guessing at timing.
			if err := client.Send(&transport.Envelope{Type: transport.MsgShutdown}); err != nil {
				t.Fatal(err)
			}
			var got []*transport.Envelope
			for {
				env, err := server.Recv()
				if err != nil {
					t.Fatalf("recv: %v", err)
				}
				if env.Type == transport.MsgShutdown {
					break
				}
				got = append(got, env)
			}
			if len(got) != tc.want {
				t.Fatalf("receiver saw %d frames, want %d", len(got), tc.want)
			}
			if tc.check != nil {
				tc.check(t, got)
			}
		})
	}
}
