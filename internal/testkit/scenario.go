package testkit

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Scenario is one adversarial churn script plus the invariants every
// conformant runtime must uphold under it. The same table drives the flat
// elastic master and the sharded per-group masters; a runtime adapts itself
// through the Cluster interface.
type Scenario struct {
	// Name labels the subtest.
	Name string
	// K is the partition count, S the straggler budget, Workers the initial
	// worker count, Iters the training length.
	K, S, Workers, Iters int
	// GroupSize shards Workers into coding groups in grouped runtimes
	// (flat runtimes ignore it). Conformance addresses are ordered so that
	// consecutive worker slots share a group.
	GroupSize int
	// Behaviors scripts individual worker slots; missing slots run honest
	// and fast.
	Behaviors map[int]Behavior
	// IterTimeout bounds one collection attempt.
	IterTimeout time.Duration
	// Alpha, DriftThreshold, MinObservations, CooldownIters and InitialRate
	// parameterise the control plane (see elastic.Config). InitialRate also
	// seeds grouped runtimes' planned throughputs, so both runtimes start
	// from the same priors.
	Alpha           float64
	DriftThreshold  float64
	MinObservations int
	CooldownIters   int
	InitialRate     float64
	// Seed drives the fault schedules (per worker: Seed+slot).
	Seed int64
	// Expect are the invariants checked against the outcome.
	Expect Expect
}

// Expect declares the scenario's invariants. Zero fields are not checked
// (beyond the universal ones: all iterations complete, parameters finite
// and sane, at least Workers joins).
type Expect struct {
	// MinFinalEpoch requires migration: the (maximum) plan epoch of the last
	// iteration must be at least this.
	MinFinalEpoch int
	// MinDeaths requires the runtime to have observed that many deaths.
	MinDeaths int
	// MinJoins overrides the default join floor (Workers).
	MinJoins int
	// StaleRejected requires the epoch fence to have engaged at least once.
	StaleRejected bool
	// Malformed requires the pre-decode validation to have rejected at
	// least one upload.
	Malformed bool
	// RejoinSameID requires some worker to have resumed its old member
	// identity after a death.
	RejoinSameID bool
}

// Outcome is the runtime-agnostic digest of one conformance run. Grouped
// runtimes sum counters across groups and report the maximum final epoch.
type Outcome struct {
	Iters              int
	FinalEpoch         int
	StaleEpochRejected int
	StaleConnRejected  int
	StragglersSkipped  int
	MalformedSkipped   int
	TelemetrySamples   int
	Joins, Deaths      int
	Params             []float64
	// FencedUploads counts uploads rejected by the root-generation fence
	// (HA runs only).
	FencedUploads int
	// Readoptions counts group masters a root adopted that arrived with
	// live prior state (runtimes without external group masters report 0).
	Readoptions int
}

// Cluster adapts one runtime to the conformance suite.
type Cluster interface {
	// Addrs returns the dial address for each initial worker slot, ordered
	// so that consecutive slots share a coding group in grouped runtimes.
	Addrs() []string
	// Run waits for the initial membership, trains to completion and
	// digests the outcome.
	Run() (*Outcome, error)
	// Close tears the cluster down (idempotent; called even after Run).
	Close()
}

// Scenarios is the conformance table: the churn modes the paper's elastic
// estimate→allocate→re-code loop must survive, identically in every
// runtime.
func Scenarios() []Scenario {
	const (
		iterTimeout = 5 * time.Second
		fast        = 2 * time.Millisecond
		slow        = 30 * time.Millisecond
		rate        = 500 // partitions/second at 2ms per partition
	)
	churnOnly := func(sc Scenario) Scenario {
		// Churn-driven scenarios lobotomise the drift trigger so every
		// migration they see is attributable to the scripted membership
		// change.
		sc.DriftThreshold = 2.0
		sc.CooldownIters = 1 << 20
		return sc
	}
	return []Scenario{
		{
			// One worker slows 15x mid-run: the control plane must detect
			// the drift from telemetry and migrate load off it.
			Name: "slowdown", K: 8, S: 1, Workers: 6, GroupSize: 3, Iters: 24,
			IterTimeout: iterTimeout, InitialRate: rate,
			Alpha: 0.7, DriftThreshold: 0.5, MinObservations: 2, CooldownIters: 2,
			Behaviors: map[int]Behavior{
				5: {SlowAtIter: 6, SlowPerPart: slow},
			},
			Expect: Expect{MinFinalEpoch: 1},
		},
		churnOnly(Scenario{
			// A worker dies at an iteration boundary and never returns: the
			// survivors must absorb its load under a churn migration.
			Name: "kill", K: 8, S: 1, Workers: 6, GroupSize: 3, Iters: 20,
			IterTimeout: iterTimeout, InitialRate: rate,
			Behaviors: map[int]Behavior{
				1: {KillAtIter: 6},
			},
			Expect: Expect{MinFinalEpoch: 1, MinDeaths: 1},
		}),
		churnOnly(Scenario{
			// A dead worker rejoins under its old member identity while its
			// superseded connection's death report may still be in flight:
			// generation fencing must let the new connection live.
			Name: "rejoin-stale-conn", K: 8, S: 1, Workers: 6, GroupSize: 3, Iters: 24,
			IterTimeout: iterTimeout, InitialRate: rate,
			Behaviors: map[int]Behavior{
				2: {KillAtIter: 5, RejoinAtIter: 10},
			},
			Expect: Expect{MinFinalEpoch: 2, MinDeaths: 1, MinJoins: 7, RejoinSameID: true},
		}),
		churnOnly(Scenario{
			// Two workers of the same coding group vanish between the
			// parameter broadcast and their uploads, leaving the running
			// epoch undecodable: the master must migrate mid-iteration and
			// retry instead of hanging or failing.
			Name: "mid-iteration-death", K: 8, S: 1, Workers: 8, GroupSize: 4, Iters: 20,
			IterTimeout: iterTimeout, InitialRate: rate,
			Behaviors: map[int]Behavior{
				0: {KillAtIter: 6},
				1: {KillAtIter: 6},
			},
			Expect: Expect{MinFinalEpoch: 1, MinDeaths: 2},
		}),
		churnOnly(Scenario{
			// After a death forces a migration, a surviving worker keeps
			// uploading epoch-0 frames with poisoned payloads: the epoch
			// fence must reject every one before decode.
			Name: "poisoned-epoch", K: 8, S: 1, Workers: 6, GroupSize: 3, Iters: 20,
			IterTimeout: iterTimeout, InitialRate: rate,
			Behaviors: map[int]Behavior{
				0: {PoisonAfterMigration: true},
				1: {KillAtIter: 4},
			},
			Expect: Expect{MinFinalEpoch: 1, MinDeaths: 1, StaleRejected: true},
		}),
		churnOnly(Scenario{
			// One worker's uplink drops, delays, duplicates and truncates
			// gradient frames on a seeded schedule: training must complete
			// with every mangled frame fenced before decode.
			Name: "fault-injection", K: 8, S: 1, Workers: 6, GroupSize: 3, Iters: 24,
			IterTimeout: iterTimeout, InitialRate: rate, Seed: 7,
			Behaviors: map[int]Behavior{
				0: {Faults: &Rates{Drop: 0.15, Delay: 0.05, Dup: 0.15, Truncate: 0.25, DelayFor: 3 * time.Millisecond}},
			},
			Expect: Expect{Malformed: true},
		}),
	}
}

// Check asserts the scenario's invariants against an outcome and the
// scripted workers' records.
func (sc *Scenario) Check(t *testing.T, out *Outcome, recs []*WorkerRecord) {
	t.Helper()
	if out.Iters != sc.Iters {
		t.Errorf("%s: completed %d iterations, want %d", sc.Name, out.Iters, sc.Iters)
	}
	if out.FinalEpoch < sc.Expect.MinFinalEpoch {
		t.Errorf("%s: final epoch %d, want ≥ %d — the expected migration never happened", sc.Name, out.FinalEpoch, sc.Expect.MinFinalEpoch)
	}
	if out.Deaths < sc.Expect.MinDeaths {
		t.Errorf("%s: deaths = %d, want ≥ %d", sc.Name, out.Deaths, sc.Expect.MinDeaths)
	}
	minJoins := sc.Expect.MinJoins
	if minJoins == 0 {
		minJoins = sc.Workers
	}
	if out.Joins < minJoins {
		t.Errorf("%s: joins = %d, want ≥ %d", sc.Name, out.Joins, minJoins)
	}
	if sc.Expect.StaleRejected && out.StaleEpochRejected == 0 {
		t.Errorf("%s: no stale-epoch uploads were rejected — the fence never engaged", sc.Name)
	}
	if sc.Expect.Malformed && out.MalformedSkipped == 0 {
		t.Errorf("%s: no malformed uploads were rejected — pre-decode validation never engaged", sc.Name)
	}
	if out.TelemetrySamples == 0 {
		t.Errorf("%s: no telemetry ingested", sc.Name)
	}
	for i, p := range out.Params {
		if math.IsNaN(p) || math.IsInf(p, 0) || p > 1e6 || p < -1e6 {
			t.Errorf("%s: poisoned or divergent parameter %v at %d — a fenced upload reached combine", sc.Name, p, i)
			break
		}
	}
	if sc.Expect.RejoinSameID {
		rejoined := false
		for _, rec := range recs {
			if rec.RejoinID != 0 && rec.RejoinID == rec.ID {
				rejoined = true
			}
			if rec.RejoinID != 0 && rec.RejoinID != rec.ID {
				t.Errorf("%s: rejoin resumed member %d, want old identity %d", sc.Name, rec.RejoinID, rec.ID)
			}
		}
		if !rejoined {
			t.Errorf("%s: rejoin never happened", sc.Name)
		}
	}
}

// RunConformance executes every scenario in the table against a runtime:
// start builds a listening (not yet training) cluster for a scenario, the
// harness dials the scripted workers, Run trains to completion and the
// outcome is checked against the scenario's invariants. Failures name the
// scenario; rerun one with -run '<test>/<scenario-name>'.
func RunConformance(t *testing.T, start func(t *testing.T, sc *Scenario, fx *Fixture) Cluster) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			fx, err := NewFixture(sc.K, 300)
			if err != nil {
				t.Fatal(err)
			}
			cl := start(t, &sc, fx)
			defer cl.Close()
			var wg sync.WaitGroup
			var progress atomic.Int64
			recs := DriveWorkers(&sc, cl.Addrs(), fx, &wg, &progress)
			out, runErr := cl.Run()
			// Tear the cluster down before waiting on the workers: a run
			// that failed early (quorum timeout, group failure) leaves the
			// scripted workers blocked in Recv, and only the close unblocks
			// them. Close is idempotent, so the success path — where the
			// run already shut everything down — is unaffected.
			cl.Close()
			wg.Wait()
			if runErr != nil {
				t.Fatalf("%s: run failed: %v", sc.Name, runErr)
			}
			sc.Check(t, out, recs)
		})
	}
}
