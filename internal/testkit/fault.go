package testkit

import (
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/transport"
)

// Fault enumerates the transport faults the harness can inject.
type Fault int

// Fault kinds, applied per gradient upload.
const (
	// FaultNone passes the frame through untouched.
	FaultNone Fault = iota
	// FaultDrop silently discards the frame.
	FaultDrop
	// FaultDelay sends the frame after Rates.DelayFor.
	FaultDelay
	// FaultDup sends the frame twice.
	FaultDup
	// FaultTruncate sends the frame with the first half of its vector only
	// — the receiver must reject the mis-sized upload before decode.
	FaultTruncate
	// FaultStaleEpoch replays the frame tagged with the previous plan epoch
	// — the receiver's epoch fence must reject it before decode. A no-op
	// while the sender is still on epoch 0.
	FaultStaleEpoch
)

// String names the fault.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDup:
		return "dup"
	case FaultTruncate:
		return "truncate"
	case FaultStaleEpoch:
		return "stale-epoch"
	default:
		return "unknown"
	}
}

// Rates are per-send fault probabilities (each in [0,1], summing to at most
// 1; the remainder is the no-fault probability).
type Rates struct {
	Drop, Delay, Dup, Truncate, StaleEpoch float64
	// DelayFor is the extra latency a FaultDelay injects (default 2ms).
	DelayFor time.Duration
}

// Schedule draws one fault per send from a seeded generator: the same seed
// and rates always produce the same fault sequence, so a failing run is
// reproduced — not approximated — by its seed.
type Schedule struct {
	mu     sync.Mutex
	rng    *lcg
	rates  Rates
	counts map[Fault]int
}

// lcg is the minimal deterministic generator the schedule needs — a
// linear congruential step, deliberately dependency-free so the sequence is
// stable across Go releases (math/rand's stream is not guaranteed).
type lcg struct{ state uint64 }

func (r *lcg) float64() float64 {
	// 64-bit LCG (Knuth's MMIX constants), top 53 bits → [0,1).
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / float64(1<<53)
}

// NewSchedule builds a seeded fault schedule.
func NewSchedule(seed int64, rates Rates) *Schedule {
	if rates.DelayFor <= 0 {
		rates.DelayFor = 2 * time.Millisecond
	}
	return &Schedule{
		rng:    &lcg{state: uint64(seed)*2654435761 + 1},
		rates:  rates,
		counts: make(map[Fault]int),
	}
}

// Next draws the fault for the next send and records it.
func (s *Schedule) Next() Fault {
	s.mu.Lock()
	defer s.mu.Unlock()
	u := s.rng.float64()
	f := FaultNone
	switch {
	case u < s.rates.Drop:
		f = FaultDrop
	case u < s.rates.Drop+s.rates.Delay:
		f = FaultDelay
	case u < s.rates.Drop+s.rates.Delay+s.rates.Dup:
		f = FaultDup
	case u < s.rates.Drop+s.rates.Delay+s.rates.Dup+s.rates.Truncate:
		f = FaultTruncate
	case u < s.rates.Drop+s.rates.Delay+s.rates.Dup+s.rates.Truncate+s.rates.StaleEpoch:
		f = FaultStaleEpoch
	}
	s.counts[f]++
	return f
}

// Counts snapshots how many times each fault was injected.
func (s *Schedule) Counts() map[Fault]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Fault]int, len(s.counts))
	for f, n := range s.counts {
		out[f] = n
	}
	return out
}

// DelayFor exposes the schedule's injected latency.
func (s *Schedule) DelayFor() time.Duration { return s.rates.DelayFor }

// FaultConn wraps a transport connection and injects the schedule's faults
// into gradient uploads; every other frame type (hello, telemetry) passes
// through untouched so the fault surface is exactly the data path the
// receiving master must fence.
type FaultConn struct {
	*transport.Conn
	sched *Schedule
}

// NewFaultConn wraps conn with a fault schedule (nil schedule = transparent).
func NewFaultConn(conn *transport.Conn, sched *Schedule) *FaultConn {
	return &FaultConn{Conn: conn, sched: sched}
}

// Send applies the scheduled fault to gradient frames and forwards
// everything else unchanged.
func (c *FaultConn) Send(env *transport.Envelope) error {
	if c.sched == nil || env.Type != transport.MsgGradient {
		return c.Conn.Send(env)
	}
	switch c.sched.Next() {
	case FaultDrop:
		return nil
	case FaultDelay:
		time.Sleep(c.sched.DelayFor())
		return c.Conn.Send(env)
	case FaultDup:
		if err := c.Conn.Send(env); err != nil {
			return err
		}
		return c.Conn.Send(env)
	case FaultTruncate:
		cp := *env
		cp.Vector = env.Vector[:len(env.Vector)/2]
		return c.Conn.Send(&cp)
	case FaultStaleEpoch:
		if env.Epoch == 0 {
			return c.Conn.Send(env)
		}
		cp := *env
		cp.Epoch = env.Epoch - 1
		return c.Conn.Send(&cp)
	default:
		return c.Conn.Send(env)
	}
}
