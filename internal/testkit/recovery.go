// Recovery conformance: the crash class the churn scenario table cannot
// express — the MASTER process dies and is reconstructed from its
// checkpoint directory. The harness runs one cluster to a durably recorded
// iteration, kills it cold, optionally corrupts snapshot files, resumes a
// second cluster from the directory, and holds both runtimes to the same
// guarantees:
//
//   - training completes exactly the iterations the recovered snapshot had
//     not folded in;
//   - workers rejoin their old member identities through the ordinary
//     ResumeID handshake against the recovered roster;
//   - plan epochs after resume are strictly above everything the journal
//     ever recorded, so stale pre-crash uploads (one worker deliberately
//     replays some) are fenced before decode;
//   - a corrupt newest snapshot falls back to the previous generation, and
//     a directory with no decodable snapshot fails construction with a
//     typed checkpoint error instead of silently restarting from scratch.
//
// Workers here are not the scripted churn workers: they are reconnecting
// protocol loops that survive the master's death, re-dialing the (new)
// address until the resumed cluster admits them — the shape a real
// production worker has.
package testkit

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/transport"
)

// RecoveryScenario is one master-crash script.
type RecoveryScenario struct {
	// Name labels the subtest.
	Name string
	// K, S, Workers and Iters mirror Scenario.
	K, S, Workers, Iters int
	// GroupSize shards workers into coding groups in grouped runtimes.
	GroupSize int
	// SnapshotEvery is the checkpoint cadence handed to the runtime.
	SnapshotEvery int
	// KillAfterIter kills the first cluster once the journal durably
	// records this iteration as completed.
	KillAfterIter int
	// CorruptNewest flips bytes in the newest snapshot before resuming:
	// recovery must fall back to the previous generation.
	CorruptNewest bool
	// CorruptAll corrupts every snapshot: resuming must fail with a typed
	// checkpoint error (no silent restart-from-scratch).
	CorruptAll bool
	// IterTimeout bounds one collection attempt; InitialRate seeds the
	// control-plane priors.
	IterTimeout time.Duration
	InitialRate float64
}

// RecoveryScenarios is the table both runtimes are held to.
func RecoveryScenarios() []RecoveryScenario {
	base := RecoveryScenario{
		K: 8, S: 1, Workers: 6, GroupSize: 3, Iters: 30,
		SnapshotEvery: 3, KillAfterIter: 10,
		IterTimeout: 5 * time.Second, InitialRate: 500,
	}
	kill := base
	kill.Name = "master-kill-resume"
	corruptNewest := base
	corruptNewest.Name = "corrupt-newest-snapshot"
	corruptNewest.CorruptNewest = true
	corruptAll := base
	corruptAll.Name = "corrupt-all-snapshots"
	corruptAll.CorruptAll = true
	return []RecoveryScenario{kill, corruptNewest, corruptAll}
}

// StartRecovery builds a listening (not yet training) cluster over fx that
// checkpoints into dir, resuming from it when resume is set. Construction
// errors are returned, not fataled: the corrupt-all scenario asserts on
// them.
type StartRecovery func(sc *RecoveryScenario, fx *Fixture, dir string, resume bool) (Cluster, error)

// RunRecoveryConformance executes the recovery scenario table against one
// runtime.
func RunRecoveryConformance(t *testing.T, start StartRecovery) {
	for _, sc := range RecoveryScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			runRecoveryScenario(t, &sc, start)
		})
	}
}

func runRecoveryScenario(t *testing.T, sc *RecoveryScenario, start StartRecovery) {
	fx, err := NewFixture(sc.K, 300)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")

	cl, err := start(sc, fx, dir, false)
	if err != nil {
		t.Fatalf("fresh cluster: %v", err)
	}
	defer cl.Close()

	pool := startRecoveryWorkers(sc.Workers, fx, cl.Addrs())
	defer pool.stopAll()

	// Phase A: train until KillAfterIter is durably journaled, then kill
	// the master cold — no goodbye frames, no final snapshot.
	runDone := make(chan error, 1)
	go func() {
		_, err := cl.Run()
		runDone <- err
	}()
	if !waitDurableIter(dir, sc.KillAfterIter, 60*time.Second) {
		cl.Close()
		<-runDone
		t.Fatalf("iteration %d never became durable", sc.KillAfterIter)
	}
	cl.Close()
	if err := <-runDone; err == nil {
		t.Fatalf("first run completed despite the kill — KillAfterIter %d too close to Iters %d", sc.KillAfterIter, sc.Iters)
	}

	if sc.CorruptAll {
		corruptSnapshots(t, dir, -1)
		if _, err := start(sc, fx, dir, true); !errors.Is(err, checkpoint.ErrCorrupt) {
			t.Fatalf("resume over all-corrupt snapshots: %v, want checkpoint.ErrCorrupt", err)
		}
		return
	}
	if sc.CorruptNewest {
		corruptSnapshots(t, dir, 1)
	}

	// What the resumed master must see: the decodable snapshot's iteration
	// and the max epoch across snapshot + journals.
	state, err := checkpoint.Recover(dir)
	if err != nil {
		t.Fatalf("recover after crash: %v", err)
	}
	if state.Snap == nil {
		t.Fatalf("no snapshot recovered after %d durable iterations", sc.KillAfterIter)
	}
	preMaxEpoch := state.MaxEpoch()
	expectStart := state.Snap.Iter

	// Phase B: resume. The workers are still dialing; point them at the new
	// addresses.
	cl2, err := start(sc, fx, dir, true)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer cl2.Close()
	pool.retarget(cl2.Addrs())
	out, err := cl2.Run()
	cl2.Close()
	pool.stopAll()
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}

	if out.Iters != sc.Iters-expectStart {
		t.Errorf("resumed run executed %d iterations, want %d (resume from iter %d of %d)",
			out.Iters, sc.Iters-expectStart, expectStart, sc.Iters)
	}
	if out.FinalEpoch <= preMaxEpoch {
		t.Errorf("final epoch %d not above the pre-crash max %d — pre-crash uploads are not fenced", out.FinalEpoch, preMaxEpoch)
	}
	if out.StaleEpochRejected == 0 {
		t.Errorf("no stale-epoch uploads rejected — the pre-crash replay was never fenced")
	}
	if out.Joins < sc.Workers {
		t.Errorf("resumed run admitted %d joins, want ≥ %d", out.Joins, sc.Workers)
	}
	for i, p := range out.Params {
		if math.IsNaN(p) || math.IsInf(p, 0) || p > 1e6 || p < -1e6 {
			t.Errorf("poisoned or divergent parameter %v at %d after resume", p, i)
			break
		}
	}
	pool.checkIdentities(t, state)
}

// waitDurableIter polls the checkpoint directory until the journal records
// iteration `iter` as completed. Reading concurrently with the writer is
// safe: recovery observes a consistent prefix.
func waitDurableIter(dir string, iter int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, err := checkpoint.Recover(dir); err == nil && st.LastIter >= iter {
			return true
		}
		time.Sleep(10 * time.Millisecond)
	}
	return false
}

// corruptSnapshots flips bytes in the newest n snapshot files (all of them
// when n < 0).
func corruptSnapshots(t *testing.T, dir string, n int) {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no snapshots to corrupt in %s (%v)", dir, err)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	if n < 0 || n > len(paths) {
		n = len(paths)
	}
	for _, p := range paths[:n] {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := len(data) / 2; i < len(data)/2+16 && i < len(data); i++ {
			data[i] ^= 0xa5
		}
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// recoveryPool drives one reconnecting worker per slot.
type recoveryPool struct {
	wg      sync.WaitGroup
	stop    atomic.Bool
	addrs   atomic.Value // []string, slot-indexed
	workers []*recoveryWorker
}

// recoveryWorker is one reconnecting protocol loop's record.
type recoveryWorker struct {
	slot   int
	poison bool

	mu  sync.Mutex
	ids []int // member ID acked per successful session, in order
}

func (w *recoveryWorker) sessionIDs() []int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]int(nil), w.ids...)
}

// startRecoveryWorkers launches the pool. Slot 0 is the adversary: after
// any reconnect it replays a gradient tagged with epoch 0 — the epoch its
// pre-crash uploads carried — alongside its honest work, so the harness can
// assert the resume fence engaged.
func startRecoveryWorkers(workers int, fx *Fixture, addrs []string) *recoveryPool {
	pool := &recoveryPool{}
	pool.addrs.Store(append([]string(nil), addrs...))
	for slot := 0; slot < workers; slot++ {
		w := &recoveryWorker{slot: slot, poison: slot == 0}
		pool.workers = append(pool.workers, w)
		pool.wg.Add(1)
		go func() {
			defer pool.wg.Done()
			pool.runWorker(w, fx)
		}()
	}
	return pool
}

// retarget points every slot at a new cluster's addresses.
func (p *recoveryPool) retarget(addrs []string) {
	p.addrs.Store(append([]string(nil), addrs...))
}

// stopAll ends the dial loops (workers blocked in Recv exit when the
// cluster closes their connections). Idempotent.
func (p *recoveryPool) stopAll() {
	p.stop.Store(true)
	p.wg.Wait()
}

// checkIdentities asserts that every worker that reconnected after the
// crash resumed the member identity it held before it, and that the
// identity was one the recovered roster had reserved.
func (p *recoveryPool) checkIdentities(t *testing.T, state *checkpoint.State) {
	t.Helper()
	reserved := make(map[int]bool)
	for _, ids := range state.GroupMembers {
		for _, id := range ids {
			reserved[id] = true
		}
	}
	resumed := 0
	for _, w := range p.workers {
		ids := w.sessionIDs()
		if len(ids) < 2 {
			continue // never reconnected (e.g. corrupt-all scenario path)
		}
		resumed++
		for _, id := range ids[1:] {
			if id != ids[0] {
				t.Errorf("slot %d: reconnect resumed member %d, want its original identity %d", w.slot, id, ids[0])
			}
		}
		if !reserved[ids[0]] {
			t.Errorf("slot %d: identity %d was not reserved by the recovered roster %v", w.slot, ids[0], state.GroupMembers)
		}
	}
	if resumed == 0 {
		t.Errorf("no worker ever rejoined after the crash")
	}
}

// runWorker is the reconnect loop: dial the slot's current address, run an
// honest elastic worker session, and on connection loss retry with the old
// member ID until stopped or cleanly shut down.
func (p *recoveryPool) runWorker(w *recoveryWorker, fx *Fixture) {
	resumeID := 0
	sessions := 0
	for !p.stop.Load() {
		addrs := p.addrs.Load().([]string)
		conn, err := transport.Dial(addrs[w.slot], 2*time.Second)
		if err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		id, done := p.runSession(w, fx, conn, resumeID, sessions > 0)
		if id > 0 {
			resumeID = id
			sessions++
			w.mu.Lock()
			w.ids = append(w.ids, id)
			w.mu.Unlock()
		}
		if done {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// runSession speaks one connection's protocol. It returns the acked member
// ID (0 if the handshake failed) and whether the worker is done for good
// (clean shutdown or pool stop).
func (p *recoveryPool) runSession(w *recoveryWorker, fx *Fixture, conn *transport.Conn, resumeID int, reconnect bool) (int, bool) {
	defer conn.Close()
	helloID := transport.HelloNewWorker
	if resumeID > 0 {
		helloID = resumeID
	}
	if err := conn.Send(&transport.Envelope{Type: transport.MsgHello, WorkerID: helloID}); err != nil {
		return 0, p.stop.Load()
	}
	ack, err := conn.Recv()
	if err != nil || ack.Type != transport.MsgHello || ack.WorkerID <= 0 {
		return 0, p.stop.Load()
	}
	id := ack.WorkerID
	poisonPending := w.poison && reconnect

	var assign *transport.Assignment
	epoch := -1
	for {
		env, err := conn.Recv()
		if err != nil {
			return id, p.stop.Load()
		}
		switch env.Type {
		case transport.MsgShutdown:
			return id, true
		case transport.MsgReassign:
			assign, epoch = env.Assign, env.Epoch
		case transport.MsgParams:
			if assign == nil || env.Epoch != epoch {
				continue
			}
			if poisonPending {
				// Replay the pre-crash world: a gradient still tagged with
				// the first epoch of the previous incarnation. The resumed
				// master's epoch base must fence it before decode.
				stale := &transport.Envelope{
					Type: transport.MsgGradient, Iter: env.Iter, Epoch: 0,
					WorkerID: id, Vector: make([]float64, len(env.Vector)),
				}
				for i := range stale.Vector {
					stale.Vector[i] = 1e9
				}
				if err := conn.Send(stale); err != nil {
					return id, p.stop.Load()
				}
				poisonPending = false
			}
			if err := honestIterate(conn, fx, assign, epoch, env, id); err != nil {
				return id, p.stop.Load()
			}
		}
	}
}

// honestIterate computes, encodes and uploads one iteration plus telemetry.
func honestIterate(conn *transport.Conn, fx *Fixture, assign *transport.Assignment, epoch int, env *transport.Envelope, id int) error {
	start := time.Now()
	partials := make([]grad.Gradient, len(assign.Partitions))
	for i, part := range assign.Partitions {
		g, err := fx.Model.Gradient(env.Vector, fx.Parts[part])
		if err != nil {
			return err
		}
		partials[i] = g
	}
	coded := make([]float64, len(env.Vector))
	if len(partials) > 0 {
		if err := grad.EncodeInto(coded, assign.RowCoeffs, partials); err != nil {
			return err
		}
	}
	time.Sleep(time.Duration(len(assign.Partitions)) * 2 * time.Millisecond)
	if err := conn.Send(&transport.Envelope{
		Type: transport.MsgGradient, Iter: env.Iter, Epoch: epoch, WorkerID: id, RootGen: env.RootGen, Vector: coded,
	}); err != nil {
		return err
	}
	return conn.Send(&transport.Envelope{
		Type: transport.MsgTelemetry, Iter: env.Iter, Epoch: epoch, WorkerID: id, RootGen: env.RootGen,
		Telemetry: &transport.Telemetry{
			ComputeSeconds: time.Since(start).Seconds(),
			Partitions:     len(assign.Partitions),
		},
	})
}
