// Package testkit is the shared adversarial test harness for the elastic
// runtimes. It provides three things:
//
//   - A fault-injecting transport wrapper (FaultConn + Schedule): drop,
//     delay, duplicate, truncate and stale-epoch replay faults applied to
//     gradient uploads on a seeded, fully reproducible schedule.
//   - A scripted protocol worker (DriveWorkers + Behavior): a raw
//     implementation of the elastic worker protocol whose behavior —
//     slowdowns, mid-iteration deaths, rejoins under the old member
//     identity, stale-epoch poisoning, transport faults — is declared per
//     scenario instead of hand-rolled per test.
//   - A runtime-agnostic conformance suite (Scenarios + RunConformance):
//     one table of churn scenarios executed identically against every
//     runtime that can present itself as a Cluster, so the flat
//     runtime.ElasticMaster and the sharded per-group masters are held to
//     the same survival guarantees by the same code.
//
// Everything is deterministic given the scenario seed: a failing run is
// reproduced by re-running the same scenario (go test -run
// 'TestConformance.*/<scenario-name>'), not by rolling dice.
package testkit

import (
	"fmt"
	"math/rand"

	"github.com/hetgc/hetgc/internal/ml"
)

// Fixture is the shared training workload for conformance scenarios: a
// Gaussian-mixture dataset split into k partitions and a softmax model,
// mirroring the fixtures the runtime packages use in their own end-to-end
// tests.
type Fixture struct {
	Model *ml.Softmax
	Data  *ml.Dataset
	Parts []*ml.Dataset
}

// NewFixture builds the workload for a k-partition scenario. Fixed seed:
// identical data for every runtime under test.
func NewFixture(k int, seed int64) (*Fixture, error) {
	data, err := ml.GaussianMixture(k*12, 4, 3, 3, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, fmt.Errorf("testkit fixture: %w", err)
	}
	parts, err := data.Split(k)
	if err != nil {
		return nil, fmt.Errorf("testkit fixture: %w", err)
	}
	return &Fixture{Model: &ml.Softmax{InputDim: 4, NumClasses: 3}, Data: data, Parts: parts}, nil
}
