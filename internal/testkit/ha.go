// HA conformance: the failover class the recovery table cannot express —
// the ROOT holds a lease, and its death, deposition or a group master's
// restart must be survived live, not merely recovered from. Three scenarios,
// one table, every lease-holding runtime:
//
//   - standby-takeover-mid-iteration: the root is killed cold mid-training;
//     a warm standby tailing the directory promotes on lease expiry, and a
//     successor resumed at the next generation finishes the job with the
//     same reconnecting workers.
//   - zombie-root-fenced-after-takeover: the root stops renewing but keeps
//     training; once a successor claims the next generation the zombie's
//     run must fail typed with ha.ErrFenced — naming the usurping
//     generation — while training completes under the new root.
//   - group-master-restart-and-readoption: one external group master is
//     killed and restarted from its own journal mid-run; the root must
//     re-adopt it (epoch base and membership reconciled) and finish all
//     iterations. Runtimes without independently restartable group masters
//     skip this scenario.
//
// Workers are the reconnecting protocol loops of the recovery harness: they
// survive whichever control-plane process dies and follow the retargeted
// addresses, the shape a real production worker has.
package testkit

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/ha"
)

// HAScenario parameterises one failover script.
type HAScenario struct {
	// Name labels the subtest.
	Name string
	// K, S, Workers, Iters and GroupSize mirror RecoveryScenario.
	K, S, Workers, Iters int
	GroupSize            int
	// SnapshotEvery is the checkpoint cadence.
	SnapshotEvery int
	// LeaseTTL is the root lease's time-to-live: short enough that a test
	// waits on a real expiry, long enough that a healthy root never lapses
	// between renewals.
	LeaseTTL time.Duration
	// DisruptAfterIter fires the scenario's disruption (kill, renewal
	// suspension, group-master restart) once this iteration is durable.
	DisruptAfterIter int
	// IterTimeout bounds one collection attempt; InitialRate seeds the
	// control-plane priors.
	IterTimeout time.Duration
	InitialRate float64
}

// HACluster is a lease-holding cluster the HA suite can depose.
type HACluster interface {
	Cluster
	// RootGen returns the lease generation the cluster's root holds.
	RootGen() int
	// SuspendLeaseRenewal wedges the root: it keeps training but stops
	// extending its lease, so a successor can claim the next generation.
	SuspendLeaseRenewal()
}

// GroupRestarter is the optional capability behind the group-master-restart
// scenario: kill group g's master cold and restart it from its own journal.
// After it returns, Addrs must reflect the restarted master's new address.
type GroupRestarter interface {
	RestartGroup(g int) error
}

// StartHA builds a listening, lease-holding cluster over fx that checkpoints
// into dir under the given holder name, resuming from the directory when
// resume is set.
type StartHA func(sc *HAScenario, fx *Fixture, dir string, resume bool, holder string) (HACluster, error)

func haBase(name string) HAScenario {
	return HAScenario{
		Name: name, K: 8, S: 1, Workers: 6, GroupSize: 3, Iters: 30,
		SnapshotEvery: 3, LeaseTTL: 400 * time.Millisecond, DisruptAfterIter: 8,
		IterTimeout: 5 * time.Second, InitialRate: 500,
	}
}

// RunHAConformance executes the failover scenarios against one runtime.
// groupMasters declares whether the runtime has independently restartable
// group masters (the third scenario is skipped without them).
func RunHAConformance(t *testing.T, groupMasters bool, start StartHA) {
	t.Run("standby-takeover-mid-iteration", func(t *testing.T) {
		runStandbyTakeover(t, groupMasters, start)
	})
	t.Run("zombie-root-fenced-after-takeover", func(t *testing.T) {
		runZombieFenced(t, start)
	})
	t.Run("group-master-restart-and-readoption", func(t *testing.T) {
		if !groupMasters {
			t.Skip("runtime has no independently restartable group masters")
		}
		runGroupRestart(t, start)
	})
}

// checkFiniteParams is the universal sanity floor on a finished run.
func checkFiniteParams(t *testing.T, params []float64) {
	t.Helper()
	if len(params) == 0 {
		t.Error("run produced no parameters")
	}
	for i, p := range params {
		if math.IsNaN(p) || math.IsInf(p, 0) || p > 1e6 || p < -1e6 {
			t.Errorf("poisoned or divergent parameter %v at %d", p, i)
			return
		}
	}
}

func runStandbyTakeover(t *testing.T, groupMasters bool, start StartHA) {
	sc := haBase("standby-takeover-mid-iteration")
	fx, err := NewFixture(sc.K, 300)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")

	a, err := start(&sc, fx, dir, false, "ha-root-a")
	if err != nil {
		t.Fatalf("first root: %v", err)
	}
	defer a.Close()
	if a.RootGen() != 1 {
		t.Fatalf("first root holds generation %d, want 1", a.RootGen())
	}
	pool := startRecoveryWorkers(sc.Workers, fx, a.Addrs())
	defer pool.stopAll()

	// The standby tails the directory from before the crash: its promotion
	// must hand over the freshest durable state, not a stale copy.
	sb := ha.NewStandby(ha.StandbyConfig{Dir: dir, Poll: 25 * time.Millisecond})
	promc := make(chan *ha.Promotion, 1)
	sbErrc := make(chan error, 1)
	go func() {
		prom, err := sb.Run(nil)
		promc <- prom
		sbErrc <- err
	}()

	runDone := make(chan error, 1)
	go func() {
		_, err := a.Run()
		runDone <- err
	}()
	if !waitDurableIter(dir, sc.DisruptAfterIter, 60*time.Second) {
		a.Close()
		<-runDone
		t.Fatalf("iteration %d never became durable", sc.DisruptAfterIter)
	}
	a.Close() // cold: no goodbye frames, the lease is left to expire
	if err := <-runDone; err == nil {
		t.Fatal("first run completed despite the kill")
	}

	var prom *ha.Promotion
	select {
	case prom = <-promc:
		if err := <-sbErrc; err != nil {
			t.Fatalf("standby: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("standby never promoted after the root died")
	}
	if prom.Deposed == nil || prom.Deposed.Gen != 1 {
		t.Fatalf("promotion deposed %+v, want generation 1", prom.Deposed)
	}
	if prom.State == nil || prom.State.LastIter < sc.DisruptAfterIter {
		t.Fatalf("standby hot copy at iteration %d, want ≥ %d", prom.State.LastIter, sc.DisruptAfterIter)
	}

	state, err := checkpoint.Recover(dir)
	if err != nil || state.Snap == nil {
		t.Fatalf("recover after crash: %v (snap %v)", err, state)
	}
	expectStart := state.Snap.Iter

	b, err := start(&sc, fx, dir, true, "ha-root-b")
	if err != nil {
		t.Fatalf("promoted root: %v", err)
	}
	defer b.Close()
	if b.RootGen() != 2 {
		t.Fatalf("promoted root holds generation %d, want 2", b.RootGen())
	}
	pool.retarget(b.Addrs())
	out, err := b.Run()
	b.Close()
	pool.stopAll()
	if err != nil {
		t.Fatalf("promoted run: %v", err)
	}
	if out.Iters != sc.Iters-expectStart {
		t.Errorf("promoted run executed %d iterations, want %d (takeover at iter %d of %d)",
			out.Iters, sc.Iters-expectStart, expectStart, sc.Iters)
	}
	if groupMasters && out.Readoptions == 0 {
		t.Error("promoted root re-adopted no surviving group masters")
	}
	checkFiniteParams(t, out.Params)
}

func runZombieFenced(t *testing.T, start StartHA) {
	sc := haBase("zombie-root-fenced-after-takeover")
	sc.LeaseTTL = 300 * time.Millisecond
	sc.IterTimeout = 2 * time.Second // bounds the zombie's fenced-detection latency
	// The zombie must still be training when the successor claims the next
	// generation: give it enough iterations (a few ms each) to outlast the
	// lease expiry wait by a wide margin.
	sc.Iters = 240
	fx, err := NewFixture(sc.K, 300)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")

	a, err := start(&sc, fx, dir, false, "ha-root-a")
	if err != nil {
		t.Fatalf("first root: %v", err)
	}
	defer a.Close()
	pool := startRecoveryWorkers(sc.Workers, fx, a.Addrs())
	defer pool.stopAll()

	runDone := make(chan error, 1)
	go func() {
		_, err := a.Run()
		runDone <- err
	}()
	if !waitDurableIter(dir, sc.DisruptAfterIter, 60*time.Second) {
		a.Close()
		<-runDone
		t.Fatalf("iteration %d never became durable", sc.DisruptAfterIter)
	}

	// Wedge the root: it keeps training but its claim silently lapses.
	a.SuspendLeaseRenewal()
	expiry := time.Now().Add(60 * time.Second)
	for {
		tok, err := ha.ReadToken(dir)
		if err == nil && tok.Expired(time.Now()) {
			break
		}
		if time.Now().After(expiry) {
			t.Fatal("suspended lease never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}

	b, err := start(&sc, fx, dir, true, "ha-root-b")
	if err != nil {
		t.Fatalf("successor: %v", err)
	}
	defer b.Close()
	if b.RootGen() != 2 {
		t.Fatalf("successor holds generation %d, want 2", b.RootGen())
	}
	pool.retarget(b.Addrs())

	// The deposed root must fail typed — and name the usurping generation,
	// the remediation an operator acts on — before the successor can finish.
	var zerr error
	select {
	case zerr = <-runDone:
	case <-time.After(60 * time.Second):
		t.Fatal("deposed root never failed")
	}
	if zerr == nil {
		t.Fatal("deposed root finished its run successfully")
	}
	if !errors.Is(zerr, ha.ErrFenced) {
		t.Fatalf("deposed root failed with %v, want ha.ErrFenced", zerr)
	}
	if !strings.Contains(zerr.Error(), "deposed by generation 2") {
		t.Errorf("fenced error %q does not name the usurping generation", zerr)
	}
	a.Close() // frees any worker still attached to the zombie

	out, err := b.Run()
	b.Close()
	pool.stopAll()
	if err != nil {
		t.Fatalf("successor run: %v", err)
	}
	checkFiniteParams(t, out.Params)
}

func runGroupRestart(t *testing.T, start StartHA) {
	sc := haBase("group-master-restart-and-readoption")
	fx, err := NewFixture(sc.K, 300)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "ckpt")

	cl, err := start(&sc, fx, dir, false, "ha-root")
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	defer cl.Close()
	gr, ok := cl.(GroupRestarter)
	if !ok {
		t.Fatal("cluster does not implement GroupRestarter despite declaring group masters")
	}
	pool := startRecoveryWorkers(sc.Workers, fx, cl.Addrs())
	defer pool.stopAll()

	runDone := make(chan *Outcome, 1)
	runErr := make(chan error, 1)
	go func() {
		out, err := cl.Run()
		runDone <- out
		runErr <- err
	}()
	if !waitDurableIter(dir, sc.DisruptAfterIter, 60*time.Second) {
		cl.Close()
		<-runErr
		t.Fatalf("iteration %d never became durable", sc.DisruptAfterIter)
	}
	if err := gr.RestartGroup(0); err != nil {
		t.Fatalf("group restart: %v", err)
	}
	pool.retarget(cl.Addrs()) // the restarted master listens at a new address

	var out *Outcome
	select {
	case out = <-runDone:
		if err := <-runErr; err != nil {
			t.Fatalf("run failed after the group restart: %v", err)
		}
	case <-time.After(120 * time.Second):
		t.Fatal("run never completed after the group restart")
	}
	if out.Iters != sc.Iters {
		t.Errorf("run executed %d iterations, want %d — the restart lost progress", out.Iters, sc.Iters)
	}
	if out.Readoptions == 0 {
		t.Error("the restarted group master was never re-adopted")
	}
	checkFiniteParams(t, out.Params)
}
