// HA conformance for the flat runtime: the elastic master holds the root
// lease, and the shared failover scenarios (testkit.RunHAConformance) kill,
// wedge and depose it — the same table the sharded hierarchy is held to in
// internal/shard/ha_conformance_test.go. The flat runtime has no external
// group masters, so the group-restart scenario is skipped.
package testkit_test

import (
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/runtime"
	"github.com/hetgc/hetgc/internal/testkit"
)

type haFlat struct {
	sc *testkit.HAScenario
	ma *runtime.ElasticMaster
}

func TestHAConformanceFlat(t *testing.T) {
	testkit.RunHAConformance(t, false, func(sc *testkit.HAScenario, fx *testkit.Fixture, dir string, resume bool, holder string) (testkit.HACluster, error) {
		cfg := runtime.ElasticConfig{
			K: sc.K, S: sc.S,
			Model:         fx.Model,
			Optimizer:     &ml.SGD{LR: 0.5, Momentum: 0.5},
			InitialParams: fx.Model.InitParams(nil),
			Iterations:    sc.Iters,
			SampleCount:   fx.Data.N(),
			IterTimeout:   sc.IterTimeout,
			MinWorkers:    sc.Workers,
			// Churn-only control plane: failover scenarios script their own
			// disruptions and must not race the drift trigger.
			DriftThreshold: 2.0,
			CooldownIters:  1 << 20,
			InitialRate:    sc.InitialRate,
			Seed:           1,
			CheckpointDir:  dir,
			SnapshotEvery:  sc.SnapshotEvery,
			Resume:         resume,
			LeaseTTL:       sc.LeaseTTL,
			Holder:         holder,
		}
		ma, err := runtime.NewElasticMaster(cfg, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		return &haFlat{sc: sc, ma: ma}, nil
	})
}

func (c *haFlat) Addrs() []string {
	addrs := make([]string, c.sc.Workers)
	for i := range addrs {
		addrs[i] = c.ma.Addr()
	}
	return addrs
}

func (c *haFlat) Run() (*testkit.Outcome, error) {
	if err := c.ma.WaitForWorkers(20 * time.Second); err != nil {
		return nil, err
	}
	res, err := c.ma.Run()
	if err != nil {
		return nil, err
	}
	return &testkit.Outcome{
		Iters:         len(res.IterTimes),
		Params:        res.Params,
		FencedUploads: res.FencedUploads,
	}, nil
}

func (c *haFlat) RootGen() int         { return c.ma.RootGen() }
func (c *haFlat) SuspendLeaseRenewal() { c.ma.SuspendLeaseRenewal() }
func (c *haFlat) Close()               { c.ma.Close() }
