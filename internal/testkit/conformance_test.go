// Conformance: the flat elastic master must survive the shared adversarial
// scenario table (testkit.Scenarios) — the same table the sharded runtime
// is held to (internal/shard/conformance_test.go) — so both runtimes are
// verified against one set of churn, fencing and fault-injection
// invariants. The flat run lives here, beside the harness, so the scripted
// workers and scenario checks are exercised by their own package's test
// binary.
package testkit_test

import (
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/runtime"
	"github.com/hetgc/hetgc/internal/testkit"
)

// flatCluster adapts runtime.ElasticMaster to the conformance suite.
type flatCluster struct {
	sc *testkit.Scenario
	ma *runtime.ElasticMaster
}

func TestConformanceFlat(t *testing.T) {
	testkit.RunConformance(t, func(t *testing.T, sc *testkit.Scenario, fx *testkit.Fixture) testkit.Cluster {
		cfg := runtime.ElasticConfig{
			K: sc.K, S: sc.S,
			Model:           fx.Model,
			Optimizer:       &ml.SGD{LR: 0.5},
			InitialParams:   fx.Model.InitParams(nil),
			Iterations:      sc.Iters,
			SampleCount:     fx.Data.N(),
			IterTimeout:     sc.IterTimeout,
			MinWorkers:      sc.Workers,
			Alpha:           sc.Alpha,
			DriftThreshold:  sc.DriftThreshold,
			MinObservations: sc.MinObservations,
			CooldownIters:   sc.CooldownIters,
			InitialRate:     sc.InitialRate,
			Seed:            1,
		}
		ma, err := runtime.NewElasticMaster(cfg, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return &flatCluster{sc: sc, ma: ma}
	})
}

func (c *flatCluster) Addrs() []string {
	addrs := make([]string, c.sc.Workers)
	for i := range addrs {
		addrs[i] = c.ma.Addr()
	}
	return addrs
}

func (c *flatCluster) Run() (*testkit.Outcome, error) {
	if err := c.ma.WaitForWorkers(10 * time.Second); err != nil {
		return nil, err
	}
	res, err := c.ma.Run()
	if err != nil {
		return nil, err
	}
	out := &testkit.Outcome{
		Iters:              len(res.IterTimes),
		StaleEpochRejected: res.StaleEpochRejected,
		StaleConnRejected:  res.StaleConnRejected,
		StragglersSkipped:  res.StragglersSkipped,
		MalformedSkipped:   res.MalformedSkipped,
		TelemetrySamples:   res.TelemetrySamples,
		Joins:              res.Joins,
		Deaths:             res.Deaths,
		Params:             res.Params,
	}
	if len(res.Epochs) > 0 {
		out.FinalEpoch = res.Epochs[len(res.Epochs)-1]
	}
	return out, nil
}

func (c *flatCluster) Close() { c.ma.Close() }
