package testkit

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/transport"
)

// Behavior scripts one worker's conduct through a scenario. The zero value
// is an honest, fast worker.
type Behavior struct {
	// PerPart is the artificial per-partition compute delay emulating
	// machine speed (default 2ms).
	PerPart time.Duration
	// SlowAtIter, when > 0, switches the worker to SlowPerPart per
	// partition from that iteration on — the drift scenario's knob.
	SlowAtIter  int
	SlowPerPart time.Duration
	// KillAtIter, when > 0, closes the connection upon receiving that
	// iteration's parameter broadcast, before uploading — a mid-iteration
	// death the master must fence or retry around.
	KillAtIter int
	// RejoinAtIter, when > 0 (with KillAtIter), redials with the old member
	// ID once the surviving cluster reaches that iteration — the
	// rejoin-with-stale-connection path.
	RejoinAtIter int
	// PoisonAfterMigration makes the worker tag every upload with epoch 0
	// and a poisoned payload (1e12 per coordinate) once its assignment
	// epoch advances past 0 — the payload must never reach combine.
	PoisonAfterMigration bool
	// Faults, when non-nil, routes gradient uploads through a seeded
	// fault-injecting FaultConn.
	Faults *Rates
}

// WorkerRecord is what a scripted worker observed, for scenario assertions.
type WorkerRecord struct {
	// ID is the member ID assigned at the first join; RejoinID the ID
	// assigned when the worker rejoined (0 if it never did). Identity
	// resumption holds when they are equal.
	ID, RejoinID int
	// Iters counts parameter broadcasts processed across all connections.
	Iters int
	// Schedule is the worker's fault schedule (nil without Faults).
	Schedule *Schedule
}

// DriveWorkers spawns one scripted worker per address slot (addrs[i] is the
// dial address for slot i; grouped runtimes pass each group's address once
// per planned group member, consecutively). Behaviors missing from the
// scenario default to honest fast workers. progress tracks the highest
// iteration any worker has seen — the clock rejoin scripts wait on.
func DriveWorkers(sc *Scenario, addrs []string, fx *Fixture, wg *sync.WaitGroup, progress *atomic.Int64) []*WorkerRecord {
	recs := make([]*WorkerRecord, len(addrs))
	for i, addr := range addrs {
		rec := &WorkerRecord{}
		recs[i] = rec
		b := sc.Behaviors[i]
		if b.Faults != nil {
			rec.Schedule = NewSchedule(sc.Seed+int64(i), *b.Faults)
		}
		wg.Add(1)
		go func(addr string, b Behavior, rec *WorkerRecord) {
			defer wg.Done()
			runScripted(addr, b, fx, progress, rec)
		}(addr, b, rec)
	}
	return recs
}

// bumpProgress advances the shared iteration clock monotonically.
func bumpProgress(progress *atomic.Int64, iter int) {
	v := int64(iter)
	for {
		cur := progress.Load()
		if v <= cur || progress.CompareAndSwap(cur, v) {
			return
		}
	}
}

// waitProgress polls the shared clock until it reaches iter or the timeout
// expires; reports whether it got there (a dead master stalls the clock, so
// rejoin scripts must not wait forever).
func waitProgress(progress *atomic.Int64, iter int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if progress.Load() >= int64(iter) {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return progress.Load() >= int64(iter)
}

// runScripted speaks the raw elastic worker protocol under the behavior
// script, across an initial session and (optionally) one rejoin session.
func runScripted(addr string, b Behavior, fx *Fixture, progress *atomic.Int64, rec *WorkerRecord) {
	killed := false
	resumeID := 0
	for {
		rejoin := scriptedSession(addr, b, fx, progress, rec, &killed, &resumeID)
		if !rejoin {
			return
		}
		if !waitProgress(progress, b.RejoinAtIter, 15*time.Second) {
			return // the cluster died before the rejoin point
		}
	}
}

// scriptedSession runs one connection's lifetime; it returns true when the
// script wants to rejoin (resumeID carries the identity to resume).
func scriptedSession(addr string, b Behavior, fx *Fixture, progress *atomic.Int64, rec *WorkerRecord, killed *bool, resumeID *int) bool {
	conn, err := transport.Dial(addr, 5*time.Second)
	if err != nil {
		return false
	}
	defer conn.Close()
	helloID := transport.HelloNewWorker
	if *resumeID > 0 {
		helloID = *resumeID
	}
	if err := conn.Send(&transport.Envelope{Type: transport.MsgHello, WorkerID: helloID}); err != nil {
		return false
	}
	ack, err := conn.Recv()
	if err != nil || ack.Type != transport.MsgHello || ack.WorkerID <= 0 {
		return false
	}
	if rec.ID == 0 {
		rec.ID = ack.WorkerID
	} else {
		rec.RejoinID = ack.WorkerID
	}
	send := conn.Send
	if rec.Schedule != nil {
		send = NewFaultConn(conn, rec.Schedule).Send
	}

	var assign *transport.Assignment
	epoch := -1
	for {
		env, err := conn.Recv()
		if err != nil || env.Type == transport.MsgShutdown {
			return false
		}
		switch env.Type {
		case transport.MsgReassign:
			assign, epoch = env.Assign, env.Epoch
		case transport.MsgParams:
			bumpProgress(progress, env.Iter)
			rec.Iters++
			if !*killed && b.KillAtIter > 0 && env.Iter >= b.KillAtIter {
				// Mid-iteration death: vanish between the broadcast and the
				// upload.
				*killed = true
				*resumeID = ack.WorkerID
				_ = conn.Close()
				return b.RejoinAtIter > 0
			}
			if assign == nil || env.Epoch != epoch {
				continue // raced migration; the master fences by epoch anyway
			}
			if err := scriptedIterate(send, conn, b, fx, assign, epoch, env, ack.WorkerID); err != nil {
				return false
			}
		}
	}
}

// scriptedIterate computes, encodes and uploads one iteration's coded
// gradient (honest or poisoned, through the fault schedule when one is
// configured) and its honest telemetry.
func scriptedIterate(send func(*transport.Envelope) error, conn *transport.Conn, b Behavior, fx *Fixture, assign *transport.Assignment, epoch int, env *transport.Envelope, id int) error {
	start := time.Now()
	partials := make([]grad.Gradient, len(assign.Partitions))
	for i, p := range assign.Partitions {
		g, err := fx.Model.Gradient(env.Vector, fx.Parts[p])
		if err != nil {
			return err
		}
		partials[i] = g
	}
	coded := make([]float64, len(env.Vector))
	if len(partials) > 0 {
		if err := grad.EncodeInto(coded, assign.RowCoeffs, partials); err != nil {
			return err
		}
	}
	perPart := b.PerPart
	if perPart <= 0 {
		perPart = 2 * time.Millisecond
	}
	if b.SlowAtIter > 0 && env.Iter >= b.SlowAtIter {
		perPart = b.SlowPerPart
	}
	if extra := time.Duration(len(assign.Partitions)) * perPart; extra > 0 {
		time.Sleep(extra)
	}
	compute := time.Since(start).Seconds()

	out := &transport.Envelope{
		Type:     transport.MsgGradient,
		Iter:     env.Iter,
		Epoch:    epoch,
		WorkerID: id,
		Vector:   coded,
	}
	if b.PoisonAfterMigration && epoch > 0 {
		// Stale epoch + poison: 1e12 in every coordinate would blow up the
		// parameters if it ever reached combine.
		poison := make([]float64, len(env.Vector))
		for i := range poison {
			poison[i] = 1e12
		}
		out.Epoch = 0 // deliberately stale
		out.Vector = poison
	}
	if err := send(out); err != nil {
		return err
	}
	return conn.Send(&transport.Envelope{
		Type:     transport.MsgTelemetry,
		Iter:     env.Iter,
		Epoch:    epoch,
		WorkerID: id,
		Telemetry: &transport.Telemetry{
			ComputeSeconds: compute,
			Partitions:     len(assign.Partitions),
		},
	})
}
