// Recovery conformance for the flat runtime: kill the elastic master mid-
// training, resume from the checkpoint directory, and hold it to the shared
// recovery invariants (testkit.RecoveryScenarios) — the same table the
// sharded hierarchy is held to in internal/shard/recovery_test.go.
package testkit_test

import (
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/runtime"
	"github.com/hetgc/hetgc/internal/testkit"
)

type recoveryFlat struct {
	sc *testkit.RecoveryScenario
	ma *runtime.ElasticMaster
}

func TestRecoveryConformanceFlat(t *testing.T) {
	testkit.RunRecoveryConformance(t, func(sc *testkit.RecoveryScenario, fx *testkit.Fixture, dir string, resume bool) (testkit.Cluster, error) {
		cfg := runtime.ElasticConfig{
			K: sc.K, S: sc.S,
			Model:         fx.Model,
			Optimizer:     &ml.SGD{LR: 0.5, Momentum: 0.5},
			InitialParams: fx.Model.InitParams(nil),
			Iterations:    sc.Iters,
			SampleCount:   fx.Data.N(),
			IterTimeout:   sc.IterTimeout,
			MinWorkers:    sc.Workers,
			// Churn-only control plane: every post-resume epoch bump is
			// attributable to the crash recovery, not drift.
			DriftThreshold: 2.0,
			CooldownIters:  1 << 20,
			InitialRate:    sc.InitialRate,
			Seed:           1,
			CheckpointDir:  dir,
			SnapshotEvery:  sc.SnapshotEvery,
			Resume:         resume,
		}
		ma, err := runtime.NewElasticMaster(cfg, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		return &recoveryFlat{sc: sc, ma: ma}, nil
	})
}

func (c *recoveryFlat) Addrs() []string {
	addrs := make([]string, c.sc.Workers)
	for i := range addrs {
		addrs[i] = c.ma.Addr()
	}
	return addrs
}

func (c *recoveryFlat) Run() (*testkit.Outcome, error) {
	if err := c.ma.WaitForWorkers(20 * time.Second); err != nil {
		return nil, err
	}
	res, err := c.ma.Run()
	if err != nil {
		return nil, err
	}
	out := &testkit.Outcome{
		Iters:              len(res.IterTimes),
		StaleEpochRejected: res.StaleEpochRejected,
		StaleConnRejected:  res.StaleConnRejected,
		StragglersSkipped:  res.StragglersSkipped,
		MalformedSkipped:   res.MalformedSkipped,
		TelemetrySamples:   res.TelemetrySamples,
		Joins:              res.Joins,
		Deaths:             res.Deaths,
		Params:             res.Params,
	}
	if len(res.Epochs) > 0 {
		out.FinalEpoch = res.Epochs[len(res.Epochs)-1]
	}
	return out, nil
}

func (c *recoveryFlat) Close() { c.ma.Close() }
