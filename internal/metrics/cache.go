package metrics

import "sync/atomic"

// CacheStats is a point-in-time snapshot of a cache's counters, as reported
// by Strategy.DecodeCacheStats and friends.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64
	// Misses counts lookups that fell back to the slow path.
	Misses uint64
	// Evictions counts entries discarded to stay within Capacity.
	Evictions uint64
	// Size is the current number of cached entries.
	Size int
	// Capacity is the maximum number of entries the cache will hold.
	Capacity int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheCounters accumulates cache hit/miss/eviction counts. The zero value is
// ready to use and all methods are safe for concurrent use.
type CacheCounters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// Hit records a cache hit.
func (c *CacheCounters) Hit() { c.hits.Add(1) }

// Miss records a cache miss.
func (c *CacheCounters) Miss() { c.misses.Add(1) }

// Evict records an eviction.
func (c *CacheCounters) Evict() { c.evictions.Add(1) }

// AddEvictions records n evictions at once (batch eviction).
func (c *CacheCounters) AddEvictions(n int) {
	if n > 0 {
		c.evictions.Add(uint64(n))
	}
}

// Snapshot returns the current counts combined with the given size/capacity.
func (c *CacheCounters) Snapshot(size, capacity int) CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      size,
		Capacity:  capacity,
	}
}
