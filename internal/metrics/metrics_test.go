package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Total != 15 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50 != 3 {
		t.Fatalf("P50 = %v", s.P50)
	}
	wantStd := math.Sqrt(2)
	if math.Abs(s.Std-wantStd) > 1e-9 {
		t.Fatalf("Std = %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.P50 != 7 || s.P99 != 7 || s.Std != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.P50 != 5 {
		t.Fatalf("P50 = %v, want 5", s.P50)
	}
	if math.Abs(s.P90-9) > 1e-9 {
		t.Fatalf("P90 = %v, want 9", s.P90)
	}
}

func TestUsageTally(t *testing.T) {
	var u UsageTally
	u.Add(1, 2)
	u.Add(3, 4)
	if math.Abs(u.Usage()-4.0/6.0) > 1e-12 {
		t.Fatalf("usage = %v", u.Usage())
	}
}

func TestUsageTallyClampsAndIgnoresNegative(t *testing.T) {
	var u UsageTally
	u.Add(5, 2) // clamp computing to total
	if u.Usage() != 1 {
		t.Fatalf("usage = %v, want 1", u.Usage())
	}
	u.Add(-1, 3) // ignored
	if u.Usage() != 1 {
		t.Fatalf("usage after negative = %v", u.Usage())
	}
}

func TestUsageTallyEmpty(t *testing.T) {
	var u UsageTally
	if u.Usage() != 0 {
		t.Fatal("empty usage should be 0")
	}
}

func TestSeriesYAt(t *testing.T) {
	var s Series
	s.Append(0, 10)
	s.Append(5, 8)
	s.Append(10, 4)
	if s.YAt(-1) != 10 || s.YAt(0) != 10 || s.YAt(7) != 8 || s.YAt(100) != 4 {
		t.Fatalf("YAt wrong: %v %v %v %v", s.YAt(-1), s.YAt(0), s.YAt(7), s.YAt(100))
	}
	var empty Series
	if !math.IsNaN(empty.YAt(0)) {
		t.Fatal("empty series should return NaN")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"scheme", "time"}}
	tb.AddRow("naive", "12.5")
	tb.AddRow("heter-aware", "3.1")
	out := tb.String()
	if !strings.Contains(out, "heter-aware") || !strings.Contains(out, "scheme") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}

func TestF(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Fatalf("F = %q", F(1.23456))
	}
	if F(math.Inf(1)) != "fault" {
		t.Fatalf("F(inf) = %q", F(math.Inf(1)))
	}
}

// Property: Min ≤ P50 ≤ P95 ≤ Max and Mean within [Min, Max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, v := range xs {
			// Metric values are times/losses/usages: bound the magnitude so
			// the property is not about float overflow.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50+1e-9 && s.P50 <= s.P95+1e-9 && s.P95 <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
