package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes the table as RFC-4180 CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	for i, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV writes the series as two-column CSV with the series name in the
// header, e.g. "time,heter-aware".
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	name := s.Name
	if name == "" {
		name = "y"
	}
	if err := cw.Write([]string{"x", name}); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	for i, p := range s.Points {
		rec := []string{
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("metrics: write csv point %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// MergeSeries aligns several series on their union of x values (step
// interpolation) and writes a single wide CSV — the exact data behind a
// multi-line figure such as Fig. 4.
func MergeSeries(w io.Writer, series []Series) error {
	cw := csv.NewWriter(w)
	header := []string{"x"}
	xsSet := map[float64]bool{}
	for i := range series {
		name := series[i].Name
		if name == "" {
			name = fmt.Sprintf("series%d", i)
		}
		header = append(header, name)
		for _, p := range series[i].Points {
			xsSet[p.X] = true
		}
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: merge csv header: %w", err)
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sortFloats(xs)
	for _, x := range xs {
		rec := make([]string, 0, len(series)+1)
		rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
		for i := range series {
			rec = append(rec, strconv.FormatFloat(series[i].YAt(x), 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("metrics: merge csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func sortFloats(xs []float64) {
	// Insertion sort: merged figures have at most a few hundred x values.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
