package metrics

import (
	"fmt"
	"math"
	"strings"
)

// AsciiPlot renders one or more series as a fixed-size ASCII chart — the
// terminal rendition of a paper figure (cmd/gcsim uses it for Fig. 4).
// Each series is drawn with its own marker; x is sampled uniformly over the
// shared horizon with step interpolation.
func AsciiPlot(series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var drawable []int
	for i := range series {
		if len(series[i].Points) > 0 {
			drawable = append(drawable, i)
		}
	}
	if len(drawable) == 0 {
		return "(no data)\n"
	}
	// Shared ranges.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, i := range drawable {
		for _, p := range series[i].Points {
			xMin, xMax = math.Min(xMin, p.X), math.Max(xMax, p.X)
			yMin, yMax = math.Min(yMin, p.Y), math.Max(yMax, p.Y)
		}
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	markers := []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for di, i := range drawable {
		mark := markers[di%len(markers)]
		for col := 0; col < width; col++ {
			x := xMin + (xMax-xMin)*float64(col)/float64(width-1)
			y := series[i].YAt(x)
			if math.IsNaN(y) {
				continue
			}
			row := int(math.Round((yMax - y) / (yMax - yMin) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = mark
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%10.4g ┤%s\n", yMax, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&sb, "%10s ┤%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&sb, "%10.4g ┤%s\n", yMin, string(grid[height-1]))
	fmt.Fprintf(&sb, "%10s  %s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&sb, "%10s  %-10.4g%*s\n", "", xMin, width-10, fmt.Sprintf("%.4g", xMax))
	for di, i := range drawable {
		fmt.Fprintf(&sb, "  %c %s\n", markers[di%len(markers)], series[i].Name)
	}
	return sb.String()
}
