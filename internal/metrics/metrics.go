// Package metrics collects and summarises the measurements reported in the
// paper's evaluation: per-iteration times (Figs. 2–3), loss curves (Fig. 4)
// and computing-resource usage (Fig. 5), plus fixed-width table rendering
// for the benchmark harness output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	Count              int
	Mean, Std          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
	Total              float64
}

// Summarize computes summary statistics; an empty input yields a zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	n := float64(len(sorted))
	mean := sum / n
	// Two-pass variance: numerically safer than E[x²]−E[x]² for large values.
	var variance float64
	for _, v := range sorted {
		d := v - mean
		variance += d * d
	}
	variance /= n
	return Summary{
		Count: len(sorted),
		Mean:  mean,
		Std:   math.Sqrt(variance),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   quantile(sorted, 0.50),
		P90:   quantile(sorted, 0.90),
		P95:   quantile(sorted, 0.95),
		P99:   quantile(sorted, 0.99),
		Total: sum,
	}
}

// quantile returns the q-th quantile of a sorted sample by linear
// interpolation.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// UsageTally accumulates the resource-usage metric of Fig. 5:
// usage = Σ_i computing_time_i / Σ_i total_time_i.
type UsageTally struct {
	computing float64
	total     float64
}

// Add records one worker-iteration: busy seconds out of wall seconds.
func (u *UsageTally) Add(computing, total float64) {
	if computing < 0 || total < 0 {
		return
	}
	if computing > total {
		computing = total
	}
	u.computing += computing
	u.total += total
}

// Usage returns the aggregate utilisation in [0,1] (0 when nothing recorded).
func (u *UsageTally) Usage() float64 {
	if u.total == 0 {
		return 0
	}
	return u.computing / u.total
}

// Point is one (x, y) sample of a series, e.g. (wall-clock seconds, loss).
type Point struct {
	X, Y float64
}

// Series is a named curve, e.g. one scheme's loss trajectory in Fig. 4.
type Series struct {
	Name   string
	Points []Point
}

// Append adds a point.
func (s *Series) Append(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// YAt returns the y value of the last point with X ≤ x (step interpolation),
// or the first point's Y when x precedes the series.
func (s *Series) YAt(x float64) float64 {
	if len(s.Points) == 0 {
		return math.NaN()
	}
	y := s.Points[0].Y
	for _, p := range s.Points {
		if p.X > x {
			break
		}
		y = p.Y
	}
	return y
}

// Table renders rows as a fixed-width text table, matching the harness's
// "same rows the paper reports" requirement.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				for pad := len(c); pad < widths[i]; pad++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// F formats a float with 3 significant decimals for table cells; infinities
// render as "fault".
func F(v float64) string {
	if math.IsInf(v, 1) {
		return "fault"
	}
	return fmt.Sprintf("%.3f", v)
}
