package metrics

import (
	"strings"
	"testing"
)

func TestTableWriteCSV(t *testing.T) {
	tb := Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "two,with,commas")
	var sb strings.Builder
	if err := tb.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Fatalf("csv = %q", out)
	}
	if !strings.Contains(out, `"two,with,commas"`) {
		t.Fatalf("commas not quoted: %q", out)
	}
}

func TestSeriesWriteCSV(t *testing.T) {
	s := Series{Name: "loss"}
	s.Append(0, 1.5)
	s.Append(2.5, 0.75)
	var sb strings.Builder
	if err := s.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,loss" {
		t.Fatalf("csv = %q", sb.String())
	}
	var unnamed Series
	unnamed.Append(1, 2)
	sb.Reset()
	if err := unnamed.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "x,y\n") {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestMergeSeries(t *testing.T) {
	a := Series{Name: "a"}
	a.Append(0, 1)
	a.Append(10, 0.5)
	b := Series{Name: "b"}
	b.Append(5, 2)
	var sb strings.Builder
	if err := MergeSeries(&sb, []Series{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "x,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	// Union of x values: 0, 5, 10 → 4 lines with header.
	if len(lines) != 4 {
		t.Fatalf("lines = %v", lines)
	}
	// At x=10, a stepped to 0.5 and b holds 2.
	if lines[3] != "10,0.5,2" {
		t.Fatalf("last line = %q", lines[3])
	}
}

func TestAsciiPlot(t *testing.T) {
	a := Series{Name: "heter"}
	a.Append(0, 1.0)
	a.Append(10, 0.2)
	b := Series{Name: "naive"}
	b.Append(0, 1.0)
	b.Append(10, 0.6)
	out := AsciiPlot([]Series{a, b}, 40, 8)
	for _, want := range []string{"heter", "naive", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Fatalf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 8 {
		t.Fatalf("plot too short:\n%s", out)
	}
}

func TestAsciiPlotEmptyAndDegenerate(t *testing.T) {
	if out := AsciiPlot(nil, 40, 8); !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
	flat := Series{Name: "flat"}
	flat.Append(5, 3)
	out := AsciiPlot([]Series{flat}, 2, 2) // clamped to minimums
	if !strings.Contains(out, "flat") {
		t.Fatalf("degenerate plot = %q", out)
	}
}
