// Package straggler provides the fault-injection models used in the paper's
// evaluation: per-iteration extra delays added to s random workers (Fig. 2),
// complete failures (infinite delay), and transient multiplicative
// fluctuation of compute time. Injectors are deterministic given their rng.
package straggler

import (
	"math"
	"math/rand"
)

// Injector produces, for every iteration, a per-worker extra delay in
// seconds. math.Inf(1) marks a failed (fully crashed) worker.
type Injector interface {
	// Delays returns the extra delay of each of m workers for one iteration.
	Delays(iter, m int) []float64
}

// None injects no delay.
type None struct{}

// Delays returns all-zero delays.
func (None) Delays(_, m int) []float64 { return make([]float64, m) }

// Fixed adds Delay seconds to Count random workers each iteration, the
// fault-simulation protocol of Fig. 2 ("add extra delay to any s random
// workers"). Use math.Inf(1) as Delay for fail-stop faults.
type Fixed struct {
	// Count is the number of stragglers per iteration.
	Count int
	// Delay is the extra delay in seconds (math.Inf(1) = crash).
	Delay float64
	// Rng drives the straggler choice. Must be non-nil when Count > 0.
	Rng *rand.Rand
}

// Delays implements Injector.
func (f Fixed) Delays(_, m int) []float64 {
	out := make([]float64, m)
	if f.Count <= 0 || f.Rng == nil {
		return out
	}
	n := f.Count
	if n > m {
		n = m
	}
	for _, w := range f.Rng.Perm(m)[:n] {
		out[w] = f.Delay
	}
	return out
}

// Pinned adds Delay seconds to a fixed set of workers every iteration —
// deterministic consistent stragglers, useful in tests.
type Pinned struct {
	Workers []int
	Delay   float64
}

// Delays implements Injector.
func (p Pinned) Delays(_, m int) []float64 {
	out := make([]float64, m)
	for _, w := range p.Workers {
		if w >= 0 && w < m {
			out[w] = p.Delay
		}
	}
	return out
}

// Transient models background interference: with probability Prob a worker's
// iteration receives an extra delay drawn from an exponential distribution
// with the given Mean, the transient-fluctuation straggler cause of §I.
type Transient struct {
	// Prob is the per-worker per-iteration probability of interference.
	Prob float64
	// Mean is the mean extra delay in seconds when interference occurs.
	Mean float64
	// Rng drives the draws. Must be non-nil for non-zero Prob.
	Rng *rand.Rand
}

// Delays implements Injector.
func (tr Transient) Delays(_, m int) []float64 {
	out := make([]float64, m)
	if tr.Prob <= 0 || tr.Rng == nil {
		return out
	}
	for i := range out {
		if tr.Rng.Float64() < tr.Prob {
			out[i] = tr.Rng.ExpFloat64() * tr.Mean
		}
	}
	return out
}

// Compose sums the delays of several injectors (Inf dominates).
type Compose []Injector

// Delays implements Injector.
func (cs Compose) Delays(iter, m int) []float64 {
	out := make([]float64, m)
	for _, inj := range cs {
		for i, d := range inj.Delays(iter, m) {
			out[i] += d
		}
	}
	for i, d := range out {
		if math.IsInf(d, 1) {
			out[i] = math.Inf(1)
		}
	}
	return out
}

// Verify interface compliance.
var (
	_ Injector = None{}
	_ Injector = Fixed{}
	_ Injector = Pinned{}
	_ Injector = Transient{}
	_ Injector = Compose{}
)
