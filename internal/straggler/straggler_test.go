package straggler

import (
	"math"
	"math/rand"
	"testing"
)

func TestNone(t *testing.T) {
	d := None{}.Delays(0, 4)
	for _, v := range d {
		if v != 0 {
			t.Fatalf("delays = %v", d)
		}
	}
}

func TestFixedCountAndValue(t *testing.T) {
	inj := Fixed{Count: 2, Delay: 5, Rng: rand.New(rand.NewSource(1))}
	for iter := 0; iter < 20; iter++ {
		d := inj.Delays(iter, 6)
		n := 0
		for _, v := range d {
			if v == 5 {
				n++
			} else if v != 0 {
				t.Fatalf("unexpected delay %v", v)
			}
		}
		if n != 2 {
			t.Fatalf("iter %d: %d stragglers, want 2", iter, n)
		}
	}
}

func TestFixedCountExceedsM(t *testing.T) {
	inj := Fixed{Count: 10, Delay: 1, Rng: rand.New(rand.NewSource(2))}
	d := inj.Delays(0, 3)
	for _, v := range d {
		if v != 1 {
			t.Fatalf("delays = %v, want all stragglers", d)
		}
	}
}

func TestFixedNilRngSafe(t *testing.T) {
	d := Fixed{Count: 2, Delay: 1}.Delays(0, 4)
	for _, v := range d {
		if v != 0 {
			t.Fatal("nil rng must inject nothing")
		}
	}
}

func TestFixedRandomises(t *testing.T) {
	inj := Fixed{Count: 1, Delay: 1, Rng: rand.New(rand.NewSource(3))}
	hit := map[int]bool{}
	for iter := 0; iter < 100; iter++ {
		d := inj.Delays(iter, 4)
		for i, v := range d {
			if v > 0 {
				hit[i] = true
			}
		}
	}
	if len(hit) < 3 {
		t.Fatalf("straggler choice not randomized: %v", hit)
	}
}

func TestPinned(t *testing.T) {
	inj := Pinned{Workers: []int{1, 7}, Delay: 2.5}
	d := inj.Delays(0, 3)
	if d[1] != 2.5 || d[0] != 0 || d[2] != 0 {
		t.Fatalf("delays = %v", d)
	}
}

func TestTransientStatistics(t *testing.T) {
	inj := Transient{Prob: 0.5, Mean: 2, Rng: rand.New(rand.NewSource(4))}
	total, hits, iters, m := 0.0, 0, 2000, 4
	for iter := 0; iter < iters; iter++ {
		for _, v := range inj.Delays(iter, m) {
			if v > 0 {
				hits++
				total += v
			}
		}
	}
	rate := float64(hits) / float64(iters*m)
	if math.Abs(rate-0.5) > 0.05 {
		t.Fatalf("hit rate = %v, want ~0.5", rate)
	}
	mean := total / float64(hits)
	if math.Abs(mean-2) > 0.2 {
		t.Fatalf("mean delay = %v, want ~2", mean)
	}
}

func TestTransientZeroProb(t *testing.T) {
	d := Transient{Prob: 0, Mean: 1, Rng: rand.New(rand.NewSource(5))}.Delays(0, 3)
	for _, v := range d {
		if v != 0 {
			t.Fatal("zero prob must inject nothing")
		}
	}
}

func TestComposeSumsAndInfDominates(t *testing.T) {
	inj := Compose{
		Pinned{Workers: []int{0}, Delay: 1},
		Pinned{Workers: []int{0, 1}, Delay: 2},
		Pinned{Workers: []int{2}, Delay: math.Inf(1)},
	}
	d := inj.Delays(0, 3)
	if d[0] != 3 || d[1] != 2 || !math.IsInf(d[2], 1) {
		t.Fatalf("delays = %v", d)
	}
}
