// Versioned binary formats for the snapshot file and the journal records,
// both CRC-framed so recovery can tell a decodable artifact from a torn or
// bit-rotted one. Float vectors — model params, optimizer state, throughput
// estimates — reuse transport's compact gradient codec (AppendFloat64s /
// ReadFloat64s), so the hot-path layout and the durable layout are one
// implementation. Every decode path is defensive: it bounds-checks before
// allocating and returns errors wrapping ErrCorrupt, never panics.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/estimate"
	"github.com/hetgc/hetgc/internal/transport"
)

const (
	// snapMagic opens every snapshot file; the trailing byte is the format
	// version.
	snapMagic = "HGCSNAP\x01"
	// recVersion is the journal record format version.
	recVersion = 1
	// maxFrameLen bounds a single journal frame's payload — far above any
	// real record, small enough that a corrupt length prefix cannot drive a
	// giant allocation.
	maxFrameLen = 1 << 26
	// maxCount bounds decoded element counts (members, groups, events,
	// optimizer vectors) before allocation.
	maxCount = 1 << 20
	// maxID bounds member IDs and iteration/epoch/step counters.
	maxID = 1 << 40
)

// frameRecord appends one CRC-framed record to dst: uint32 payload length,
// uint32 CRC-32 (IEEE) of the payload, payload.
func frameRecord(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// AppendFrame appends one CRC-framed record to dst — the exact framing the
// journal uses (uint32 LE payload length, uint32 LE CRC-32 IEEE, payload).
// Exported for the data plane, so partition payloads on the wire share the
// checkpoint codec's integrity check.
func AppendFrame(dst, payload []byte) []byte { return frameRecord(dst, payload) }

// ReadFrame parses one CRC-framed record (as written by AppendFrame) from b,
// bounding the payload length by max (maxPayload <= 0 selects the journal's
// own frame cap). It returns the payload and the bytes after the frame;
// truncation, an absurd length or a CRC mismatch yield an error wrapping
// ErrCorrupt.
func ReadFrame(b []byte, maxPayload int) (payload, rest []byte, err error) {
	if maxPayload <= 0 {
		maxPayload = maxFrameLen
	}
	if len(b) < 8 {
		return nil, nil, fmt.Errorf("%w: frame header truncated (%d bytes)", ErrCorrupt, len(b))
	}
	n := int(binary.LittleEndian.Uint32(b))
	sum := binary.LittleEndian.Uint32(b[4:])
	if n < 0 || n > maxPayload {
		return nil, nil, fmt.Errorf("%w: frame length %d exceeds cap %d", ErrCorrupt, n, maxPayload)
	}
	if len(b)-8 < n {
		return nil, nil, fmt.Errorf("%w: frame truncated (%d of %d payload bytes)", ErrCorrupt, len(b)-8, n)
	}
	payload = b[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, nil, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return payload, b[8+n:], nil
}

// reader is a bounds-checked cursor over a decoded payload.
type reader struct {
	b []byte
}

func (r *reader) u8() (byte, error) {
	if len(r.b) < 1 {
		return 0, fmt.Errorf("%w: truncated byte", ErrCorrupt)
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

func (r *reader) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint (%s)", ErrCorrupt, what)
	}
	r.b = r.b[n:]
	return v, nil
}

// count reads a bounded non-negative element count.
func (r *reader) count(what string, max uint64) (int, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, fmt.Errorf("%w: %s count %d exceeds cap %d", ErrCorrupt, what, v, max)
	}
	return int(v), nil
}

func (r *reader) varint(what string) (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint (%s)", ErrCorrupt, what)
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *reader) f64(what string) (float64, error) {
	if len(r.b) < 8 {
		return 0, fmt.Errorf("%w: truncated float (%s)", ErrCorrupt, what)
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b))
	r.b = r.b[8:]
	return v, nil
}

func (r *reader) floats(what string, n int) ([]float64, error) {
	vec, rest, err := transport.ReadFloat64s(r.b, n)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, what, err)
	}
	r.b = rest
	return vec, nil
}

func (r *reader) bool() (bool, error) {
	v, err := r.u8()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bool byte %#x", ErrCorrupt, v)
	}
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// encodeRecordPayload serialises one journal record (without framing).
func encodeRecordPayload(dst []byte, rec *Record) []byte {
	dst = append(dst, recVersion, byte(rec.Kind))
	dst = binary.AppendUvarint(dst, uint64(rec.Group))
	switch rec.Kind {
	case KindJoin:
		dst = binary.AppendUvarint(dst, uint64(rec.Member))
		dst = appendBool(dst, rec.Rejoin)
	case KindDeath:
		dst = binary.AppendUvarint(dst, uint64(rec.Member))
	case KindPlan:
		dst = binary.AppendUvarint(dst, uint64(rec.Iter))
		dst = binary.AppendUvarint(dst, uint64(rec.Epoch))
		dst = binary.AppendUvarint(dst, uint64(len(rec.Members)))
		for _, m := range rec.Members {
			dst = binary.AppendUvarint(dst, uint64(m))
		}
	case KindIter:
		dst = binary.AppendUvarint(dst, uint64(rec.Iter))
		dst = binary.AppendUvarint(dst, uint64(rec.Epoch))
		dst = binary.AppendUvarint(dst, uint64(rec.Step))
	}
	return dst
}

// DecodeRecord parses one journal record payload (the bytes inside a CRC
// frame). Any violation — unknown version or kind, truncation, impossible
// values, trailing bytes — yields an error wrapping ErrCorrupt.
func DecodeRecord(payload []byte) (*Record, error) {
	r := &reader{b: payload}
	ver, err := r.u8()
	if err != nil {
		return nil, err
	}
	if ver != recVersion {
		return nil, fmt.Errorf("%w: record version %d", ErrCorrupt, ver)
	}
	kindB, err := r.u8()
	if err != nil {
		return nil, err
	}
	rec := &Record{Kind: Kind(kindB)}
	group, err := r.count("group", maxCount)
	if err != nil {
		return nil, err
	}
	rec.Group = group
	id := func(what string) (int, error) { return r.count(what, maxID) }
	switch rec.Kind {
	case KindJoin:
		if rec.Member, err = id("member"); err != nil {
			return nil, err
		}
		if rec.Rejoin, err = r.bool(); err != nil {
			return nil, err
		}
	case KindDeath:
		if rec.Member, err = id("member"); err != nil {
			return nil, err
		}
	case KindPlan:
		if rec.Iter, err = id("iter"); err != nil {
			return nil, err
		}
		if rec.Epoch, err = id("epoch"); err != nil {
			return nil, err
		}
		n, err := r.count("plan members", maxCount)
		if err != nil {
			return nil, err
		}
		if n > 0 {
			rec.Members = make([]int, n)
			for i := range rec.Members {
				if rec.Members[i], err = id("plan member"); err != nil {
					return nil, err
				}
			}
		}
	case KindIter:
		if rec.Iter, err = id("iter"); err != nil {
			return nil, err
		}
		if rec.Epoch, err = id("epoch"); err != nil {
			return nil, err
		}
		if rec.Step, err = id("step"); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kindB)
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after %v record", ErrCorrupt, len(r.b), rec.Kind)
	}
	return rec, nil
}

// ReadJournal decodes a journal byte stream into its records. It stops at
// the first undecodable frame and returns the records before it together
// with the typed error describing the breakage (nil for a clean stream).
// The error distinguishes the crash shape from bit rot: a final frame whose
// header or payload extends past the end of the data wraps ErrTornTail
// (the writer died mid-append — replay callers treat it as end-of-log),
// while a CRC mismatch or decode failure on a fully present frame wraps
// only ErrCorrupt (the records after it exist but cannot be trusted, so
// recovery must surface the loss, not silently absorb it). Fuzzers assert
// every error wraps ErrCorrupt and nothing panics.
func ReadJournal(data []byte) ([]Record, error) {
	var recs []Record
	for off := 0; off < len(data); {
		if len(data)-off < 8 {
			return recs, fmt.Errorf("%w: frame header at offset %d", ErrTornTail, off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if n == 0 || n > maxFrameLen {
			return recs, fmt.Errorf("%w: journal frame length %d at offset %d", ErrCorrupt, n, off)
		}
		if n > len(data)-off-8 {
			return recs, fmt.Errorf("%w: frame of %d bytes with %d left at offset %d", ErrTornTail, n, len(data)-off-8, off)
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, fmt.Errorf("%w: journal CRC mismatch at offset %d", ErrCorrupt, off)
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			return recs, fmt.Errorf("journal record at offset %d: %w", off, err)
		}
		recs = append(recs, *rec)
		off += 8 + n
	}
	return recs, nil
}

// EncodeSnapshot serialises a snapshot into its full file contents: magic,
// CRC frame, payload.
func EncodeSnapshot(snap *Snapshot) []byte {
	p := make([]byte, 0, 64+8*len(snap.Params))
	p = binary.AppendUvarint(p, uint64(snap.Iter))
	p = binary.AppendVarint(p, int64(snap.Epoch))
	p = binary.AppendUvarint(p, uint64(snap.Step))
	p = binary.LittleEndian.AppendUint64(p, math.Float64bits(snap.Clock))
	p = binary.AppendUvarint(p, snap.Draws)
	p = binary.AppendUvarint(p, uint64(len(snap.Params)))
	p = transport.AppendFloat64s(p, snap.Params)
	p = binary.AppendUvarint(p, uint64(len(snap.OptVecs)))
	for _, v := range snap.OptVecs {
		p = binary.AppendUvarint(p, uint64(len(v)))
		p = transport.AppendFloat64s(p, v)
	}
	p = binary.AppendUvarint(p, uint64(snap.OptStep))
	p = binary.AppendUvarint(p, uint64(len(snap.Groups)))
	for _, gs := range snap.Groups {
		p = binary.AppendUvarint(p, uint64(gs.Group))
		p = binary.AppendVarint(p, int64(gs.Epoch))
		p = binary.AppendUvarint(p, uint64(len(gs.Members)))
		for _, m := range gs.Members {
			p = binary.AppendUvarint(p, uint64(m))
		}
		// Same normalisation as the top-level controller state below: a
		// memberless state is useless to recovery and rejected on decode.
		hasGC := gs.Ctrl != nil && len(gs.Ctrl.Members) > 0
		p = appendBool(p, hasGC)
		if hasGC {
			p = appendControllerState(p, gs.Ctrl)
		}
	}
	// A controller state without members carries nothing recovery can use
	// (a resume anchor written before any worker ever joined); normalise it
	// to absent so the encoder never emits what the decoder rejects.
	hasCtrl := snap.Ctrl != nil && len(snap.Ctrl.Members) > 0
	p = appendBool(p, hasCtrl)
	if hasCtrl {
		p = appendControllerState(p, snap.Ctrl)
	}
	out := make([]byte, 0, len(snapMagic)+8+len(p))
	out = append(out, snapMagic...)
	return frameRecord(out, p)
}

func appendControllerState(p []byte, cs *elastic.ControllerState) []byte {
	p = binary.AppendUvarint(p, uint64(len(cs.Members)))
	for _, ms := range cs.Members {
		p = binary.AppendUvarint(p, uint64(ms.ID))
		p = appendBool(p, ms.Alive)
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(ms.Meter.Prior))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(ms.Meter.Value))
		p = appendBool(p, ms.Meter.Init)
		p = binary.AppendUvarint(p, uint64(ms.Meter.Count))
	}
	p = binary.AppendVarint(p, int64(cs.LastReplan))
	p = appendBool(p, cs.Plan != nil)
	if pl := cs.Plan; pl != nil {
		p = binary.AppendUvarint(p, uint64(pl.Iter))
		p = binary.AppendUvarint(p, uint64(pl.Epoch))
		p = binary.AppendUvarint(p, uint64(len(pl.Members)))
		for _, m := range pl.Members {
			p = binary.AppendUvarint(p, uint64(m))
		}
		p = transport.AppendFloat64s(p, pl.Est)
		p = binary.AppendUvarint(p, pl.DrawsBefore)
	}
	p = binary.AppendUvarint(p, uint64(len(cs.Events)))
	for _, ev := range cs.Events {
		p = binary.AppendUvarint(p, uint64(ev.Iter))
		p = binary.AppendUvarint(p, uint64(ev.Epoch))
		p = binary.AppendUvarint(p, uint64(len(ev.Reason)))
		p = append(p, ev.Reason...)
		p = binary.AppendUvarint(p, uint64(ev.Members))
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(ev.Imbalance))
	}
	return p
}

// DecodeSnapshot parses a snapshot file's contents. Corruption anywhere —
// bad magic, CRC mismatch, truncation, impossible values, trailing bytes —
// yields an error wrapping ErrCorrupt.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+8 {
		return nil, fmt.Errorf("%w: snapshot file truncated (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	body := data[len(snapMagic):]
	n := int(binary.LittleEndian.Uint32(body))
	sum := binary.LittleEndian.Uint32(body[4:])
	if n < 0 || n != len(body)-8 {
		return nil, fmt.Errorf("%w: snapshot payload length %d with %d bytes present", ErrCorrupt, n, len(body)-8)
	}
	payload := body[8:]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, fmt.Errorf("%w: snapshot CRC mismatch", ErrCorrupt)
	}
	r := &reader{b: payload}
	snap := &Snapshot{}
	var err error
	if snap.Iter, err = r.count("iter", maxID); err != nil {
		return nil, err
	}
	epoch, err := r.varint("epoch")
	if err != nil {
		return nil, err
	}
	if epoch < -1 || epoch > maxID {
		return nil, fmt.Errorf("%w: snapshot epoch %d", ErrCorrupt, epoch)
	}
	snap.Epoch = int(epoch)
	if snap.Step, err = r.count("step", maxID); err != nil {
		return nil, err
	}
	if snap.Clock, err = r.f64("clock"); err != nil {
		return nil, err
	}
	if snap.Draws, err = r.uvarint("draws"); err != nil {
		return nil, err
	}
	nParams, err := r.count("params", transport.MaxVectorLen)
	if err != nil {
		return nil, err
	}
	if snap.Params, err = r.floats("params", nParams); err != nil {
		return nil, err
	}
	nVecs, err := r.count("optimizer vectors", maxCount)
	if err != nil {
		return nil, err
	}
	if nVecs > 0 {
		snap.OptVecs = make([][]float64, nVecs)
		for i := range snap.OptVecs {
			nv, err := r.count("optimizer vector", transport.MaxVectorLen)
			if err != nil {
				return nil, err
			}
			if snap.OptVecs[i], err = r.floats("optimizer vector", nv); err != nil {
				return nil, err
			}
		}
	}
	if snap.OptStep, err = r.count("optimizer step", maxID); err != nil {
		return nil, err
	}
	nGroups, err := r.count("groups", maxCount)
	if err != nil {
		return nil, err
	}
	if nGroups > 0 {
		snap.Groups = make([]GroupState, nGroups)
		for i := range snap.Groups {
			gs := &snap.Groups[i]
			if gs.Group, err = r.count("group", maxCount); err != nil {
				return nil, err
			}
			ep, err := r.varint("group epoch")
			if err != nil {
				return nil, err
			}
			if ep < -1 || ep > maxID {
				return nil, fmt.Errorf("%w: group epoch %d", ErrCorrupt, ep)
			}
			gs.Epoch = int(ep)
			nm, err := r.count("group members", maxCount)
			if err != nil {
				return nil, err
			}
			if nm > 0 {
				gs.Members = make([]int, nm)
				for j := range gs.Members {
					if gs.Members[j], err = r.count("group member", maxID); err != nil {
						return nil, err
					}
				}
			}
			hasGC, err := r.bool()
			if err != nil {
				return nil, err
			}
			if hasGC {
				if gs.Ctrl, err = readControllerState(r); err != nil {
					return nil, err
				}
			}
		}
	}
	hasCtrl, err := r.bool()
	if err != nil {
		return nil, err
	}
	if hasCtrl {
		if snap.Ctrl, err = readControllerState(r); err != nil {
			return nil, err
		}
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrCorrupt, len(r.b))
	}
	return snap, nil
}

func readControllerState(r *reader) (*elastic.ControllerState, error) {
	cs := &elastic.ControllerState{}
	nMembers, err := r.count("ctrl members", maxCount)
	if err != nil {
		return nil, err
	}
	if nMembers == 0 {
		return nil, fmt.Errorf("%w: controller state without members", ErrCorrupt)
	}
	cs.Members = make([]elastic.MemberState, nMembers)
	for i := range cs.Members {
		ms := &cs.Members[i]
		if ms.ID, err = r.count("ctrl member id", maxID); err != nil {
			return nil, err
		}
		if ms.ID == 0 {
			return nil, fmt.Errorf("%w: ctrl member id 0", ErrCorrupt)
		}
		if ms.Alive, err = r.bool(); err != nil {
			return nil, err
		}
		var mt estimate.MeterState
		if mt.Prior, err = r.f64("meter prior"); err != nil {
			return nil, err
		}
		if mt.Value, err = r.f64("meter value"); err != nil {
			return nil, err
		}
		if mt.Init, err = r.bool(); err != nil {
			return nil, err
		}
		if mt.Count, err = r.count("meter count", maxID); err != nil {
			return nil, err
		}
		if math.IsNaN(mt.Prior) || math.IsInf(mt.Prior, 0) || math.IsNaN(mt.Value) || math.IsInf(mt.Value, 0) {
			return nil, fmt.Errorf("%w: non-finite meter state for member %d", ErrCorrupt, ms.ID)
		}
		ms.Meter = mt
	}
	lastReplan, err := r.varint("last replan")
	if err != nil {
		return nil, err
	}
	if lastReplan < -1 || lastReplan > maxID {
		return nil, fmt.Errorf("%w: last replan %d", ErrCorrupt, lastReplan)
	}
	cs.LastReplan = int(lastReplan)
	hasPlan, err := r.bool()
	if err != nil {
		return nil, err
	}
	if hasPlan {
		pl := &elastic.PlanState{}
		if pl.Iter, err = r.count("plan iter", maxID); err != nil {
			return nil, err
		}
		if pl.Epoch, err = r.count("plan epoch", maxID); err != nil {
			return nil, err
		}
		nm, err := r.count("plan members", maxCount)
		if err != nil {
			return nil, err
		}
		if nm == 0 {
			return nil, fmt.Errorf("%w: plan state without members", ErrCorrupt)
		}
		pl.Members = make([]int, nm)
		for i := range pl.Members {
			if pl.Members[i], err = r.count("plan member", maxID); err != nil {
				return nil, err
			}
		}
		if pl.Est, err = r.floats("plan estimates", nm); err != nil {
			return nil, err
		}
		for _, e := range pl.Est {
			if math.IsNaN(e) || math.IsInf(e, 0) {
				return nil, fmt.Errorf("%w: non-finite plan estimate", ErrCorrupt)
			}
		}
		if pl.DrawsBefore, err = r.uvarint("plan draws"); err != nil {
			return nil, err
		}
		cs.Plan = pl
	}
	nEvents, err := r.count("events", maxCount)
	if err != nil {
		return nil, err
	}
	if nEvents > 0 {
		cs.Events = make([]elastic.ReplanEvent, nEvents)
		for i := range cs.Events {
			ev := &cs.Events[i]
			if ev.Iter, err = r.count("event iter", maxID); err != nil {
				return nil, err
			}
			if ev.Epoch, err = r.count("event epoch", maxID); err != nil {
				return nil, err
			}
			nr, err := r.count("event reason", 256)
			if err != nil {
				return nil, err
			}
			if len(r.b) < nr {
				return nil, fmt.Errorf("%w: truncated event reason", ErrCorrupt)
			}
			ev.Reason = string(r.b[:nr])
			r.b = r.b[nr:]
			if ev.Members, err = r.count("event members", maxCount); err != nil {
				return nil, err
			}
			if ev.Imbalance, err = r.f64("event imbalance"); err != nil {
				return nil, err
			}
		}
	}
	return cs, nil
}
