// Decode fuzzers: any byte stream handed to the snapshot or journal decoder
// must yield either a valid value or an error wrapping ErrCorrupt — never a
// panic, never a silent mis-decode. Wired into `make fuzz-smoke` alongside
// the roster handshake fuzzer.
package checkpoint

import (
	"errors"
	"reflect"
	"testing"
)

func FuzzSnapshot(f *testing.F) {
	f.Add(EncodeSnapshot(fullSnapshot()))
	f.Add(EncodeSnapshot(&Snapshot{Iter: 0, Epoch: -1}))
	f.Add([]byte(snapMagic))
	f.Add([]byte("HGCSNAP\x02junk"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// A decodable snapshot must survive a re-encode round trip: the
		// decoder accepted it, so the encoder must reproduce it.
		again, err := DecodeSnapshot(EncodeSnapshot(snap))
		if err != nil {
			t.Fatalf("re-encoded snapshot failed to decode: %v", err)
		}
		if !reflect.DeepEqual(snap, again) {
			t.Fatalf("re-encode round trip drifted:\nfirst  %+v\nsecond %+v", snap, again)
		}
	})
}

func FuzzJournal(f *testing.F) {
	var stream []byte
	stream = frameRecord(stream, encodeRecordPayload(nil, &Record{Kind: KindJoin, Member: 1}))
	stream = frameRecord(stream, encodeRecordPayload(nil, &Record{Kind: KindPlan, Iter: 3, Epoch: 1, Members: []int{1, 2}}))
	stream = frameRecord(stream, encodeRecordPayload(nil, &Record{Kind: KindIter, Iter: 3, Epoch: 1, Step: 4}))
	f.Add(stream)
	f.Add(stream[:len(stream)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadJournal(data)
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("journal error %v does not wrap ErrCorrupt", err)
		}
		// Whatever prefix decoded must re-encode to a clean journal with the
		// same records.
		var again []byte
		for i := range recs {
			again = frameRecord(again, encodeRecordPayload(nil, &recs[i]))
		}
		recs2, err := ReadJournal(again)
		if err != nil {
			t.Fatalf("re-encoded journal failed: %v", err)
		}
		if !reflect.DeepEqual(recs, recs2) {
			t.Fatalf("journal re-encode drifted:\nfirst  %+v\nsecond %+v", recs, recs2)
		}
	})
}
