package checkpoint

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/estimate"
)

func fullSnapshot() *Snapshot {
	return &Snapshot{
		Iter: 12, Epoch: 3, Step: 12, Clock: 4.25,
		Params:  []float64{0.5, -1.25, math.Pi, 0},
		OptVecs: [][]float64{{1, 2, 3, 4}, {0.1, 0.2, 0.3, 0.4}},
		OptStep: 12,
		Draws:   991,
		Groups: []GroupState{
			{Group: 0, Epoch: 3, Members: []int{1, 2, 3},
				Ctrl: &elastic.ControllerState{
					Members: []elastic.MemberState{
						{ID: 1, Alive: true, Meter: estimate.MeterState{Prior: 500, Value: 505, Init: true, Count: 4}},
					},
					LastReplan: 3,
				}},
			{Group: 1, Epoch: -1, Members: nil},
		},
		Ctrl: &elastic.ControllerState{
			Members: []elastic.MemberState{
				{ID: 1, Alive: true, Meter: estimate.MeterState{Prior: 500, Value: 480.5, Init: true, Count: 9}},
				{ID: 2, Alive: false, Meter: estimate.MeterState{Prior: 250}},
			},
			LastReplan: 7,
			Plan: &elastic.PlanState{
				Iter: 7, Epoch: 3, Members: []int{1, 2}, Est: []float64{480.5, 250}, DrawsBefore: 700,
			},
			Events: []elastic.ReplanEvent{
				{Iter: 0, Epoch: 0, Reason: "initial", Members: 2},
				{Iter: 7, Epoch: 3, Reason: "drift", Members: 2, Imbalance: 1.8},
			},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := fullSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

func TestSnapshotMinimalRoundTrip(t *testing.T) {
	want := &Snapshot{Iter: 0, Epoch: -1}
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", want, got)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Kind: KindJoin, Group: 2, Member: 7, Rejoin: true},
		{Kind: KindJoin, Group: 0, Member: 1},
		{Kind: KindDeath, Group: 1, Member: 3},
		{Kind: KindPlan, Group: 3, Iter: 40, Epoch: 9, Members: []int{4, 5, 6}},
		{Kind: KindIter, Iter: 41, Epoch: 9, Step: 42},
	}
	var stream []byte
	for i := range recs {
		payload := encodeRecordPayload(nil, &recs[i])
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(&recs[i], got) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, recs[i], got)
		}
		stream = frameRecord(stream, payload)
	}
	decoded, err := ReadJournal(stream)
	if err != nil {
		t.Fatalf("clean journal returned error: %v", err)
	}
	if !reflect.DeepEqual(recs, decoded) {
		t.Fatalf("journal mismatch:\nwant %+v\ngot  %+v", recs, decoded)
	}
}

func TestJournalTornTail(t *testing.T) {
	var stream []byte
	stream = frameRecord(stream, encodeRecordPayload(nil, &Record{Kind: KindIter, Iter: 3, Epoch: 1, Step: 4}))
	full := frameRecord(stream, encodeRecordPayload(nil, &Record{Kind: KindDeath, Member: 2}))
	for cut := len(stream) + 1; cut < len(full); cut++ {
		recs, err := ReadJournal(full[:cut])
		if err == nil {
			t.Fatalf("cut %d: torn tail decoded cleanly", cut)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: error %v does not wrap ErrCorrupt", cut, err)
		}
		if len(recs) != 1 || recs[0].Kind != KindIter {
			t.Fatalf("cut %d: prefix lost: %+v", cut, recs)
		}
	}
}

func TestStoreJournalOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := s.GroupRecorder(0)
	rec.RecordJoin(1, false)
	rec.RecordJoin(2, false)
	rec.RecordPlan(0, 0, []int{1, 2})
	if err := s.AppendIter(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	rec.RecordDeath(2)
	rec.RecordPlan(1, 1, []int{1})
	if err := s.AppendIter(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snap != nil {
		t.Fatalf("journal-only recovery produced a snapshot: %+v", st.Snap)
	}
	if st.LastIter != 1 || st.Steps != 2 {
		t.Fatalf("LastIter/Steps = %d/%d, want 1/2", st.LastIter, st.Steps)
	}
	if st.GroupEpochs[0] != 1 {
		t.Fatalf("GroupEpochs[0] = %d, want 1", st.GroupEpochs[0])
	}
	if want := []int{1, 2}; !reflect.DeepEqual(st.GroupMembers[0], want) {
		t.Fatalf("GroupMembers[0] = %v, want %v", st.GroupMembers[0], want)
	}
	if st.MaxEpoch() != 1 {
		t.Fatalf("MaxEpoch = %d, want 1", st.MaxEpoch())
	}
}

func TestStoreSnapshotRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := s.AppendIter(i*10-1, 0, i*10); err != nil {
			t.Fatal(err)
		}
		snap := fullSnapshot()
		snap.Iter, snap.Step = i*10, i*10
		if err := s.WriteSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := []int{3, 4}; !reflect.DeepEqual(snaps, want) {
		t.Fatalf("retained snapshots %v, want %v", snaps, want)
	}
	if want := []int{3, 4}; !reflect.DeepEqual(wals, want) {
		t.Fatalf("retained journals %v, want %v", wals, want)
	}
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snap == nil || st.Snap.Iter != 40 {
		t.Fatalf("recovered snapshot %+v, want iter 40", st.Snap)
	}
}

func TestRecoverCorruptLatestFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap := fullSnapshot()
	snap.Iter = 10
	if err := s.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	snap2 := fullSnapshot()
	snap2.Iter = 20
	if err := s.WriteSnapshot(snap2); err != nil {
		t.Fatal(err)
	}
	// Epochs created after the newest snapshot must survive its corruption.
	s.GroupRecorder(0).RecordPlan(21, 9, []int{1, 2})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, "snap-00000002.ckpt"))
	st, err := Recover(dir)
	if err != nil {
		t.Fatalf("fallback recovery failed: %v", err)
	}
	if st.Snap == nil || st.Snap.Iter != 10 {
		t.Fatalf("recovered snapshot %+v, want the gen-1 snapshot (iter 10)", st.Snap)
	}
	if st.GroupEpochs[0] != 9 {
		t.Fatalf("GroupEpochs[0] = %d, want 9 (journal beyond the corrupt snapshot)", st.GroupEpochs[0])
	}
}

func TestRecoverAllSnapshotsCorruptIsTyped(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSnapshot(fullSnapshot()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	corruptFile(t, filepath.Join(dir, "snap-00000001.ckpt"))
	if _, err := Recover(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("recovery over all-corrupt snapshots: %v, want ErrCorrupt", err)
	}
}

func TestCreateRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendIter(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir); !errors.Is(err, ErrExists) {
		t.Fatalf("Create over existing state: %v, want ErrExists", err)
	}
}

// TestCreateWithoutAppendsLeavesNoState pins the lazy journal creation: a
// master whose construction fails after Create (listener, roster) must not
// strand files that make the retried fresh run fail ErrExists.
func TestCreateWithoutAppendsLeavesNoState(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Create(dir)
	if err != nil {
		t.Fatalf("fresh Create after an append-free predecessor: %v", err)
	}
	if err := s2.AppendIter(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotEmptyControllerOmitted pins the encoder/decoder agreement: a
// controller state without members (a resume anchor written before any
// worker ever joined) is normalised to absent, because the decoder rejects
// a present-but-empty one.
func TestSnapshotEmptyControllerOmitted(t *testing.T) {
	snap := &Snapshot{Iter: 0, Epoch: -1, Ctrl: &elastic.ControllerState{LastReplan: -1}}
	got, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatalf("anchor with empty controller state does not decode: %v", err)
	}
	if got.Ctrl != nil {
		t.Fatalf("empty controller state survived encoding: %+v", got.Ctrl)
	}
}

func TestReopenRequiresSnapshotFirst(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendIter(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Reopen(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AppendIter(1, 0, 2); !errors.Is(err, ErrNeedSnapshot) {
		t.Fatalf("append before snapshot: %v, want ErrNeedSnapshot", err)
	}
	if err := r.WriteSnapshot(&Snapshot{Iter: 1, Epoch: 0, Step: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.AppendIter(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snap == nil || st.Snap.Iter != 1 || st.LastIter != 1 {
		t.Fatalf("recovered %+v LastIter %d, want snapshot iter 1 and LastIter 1", st.Snap, st.LastIter)
	}
}

func TestRecoverMissingDir(t *testing.T) {
	if _, err := Recover(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing dir: %v, want ErrNoCheckpoint", err)
	}
	if _, err := Recover(t.TempDir()); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty dir: %v, want ErrNoCheckpoint", err)
	}
}

func TestStoreTornWALTailRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendIter(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendIter(1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: garbage at the journal tail.
	f, err := os.OpenFile(filepath.Join(dir, "wal-00000000.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.LastIter != 1 || st.Steps != 2 {
		t.Fatalf("LastIter/Steps = %d/%d, want 1/2", st.LastIter, st.Steps)
	}
}

func TestCountingSource(t *testing.T) {
	a := NewCountingSource(42)
	rngA := rand.New(a)
	var seq []float64
	for i := 0; i < 50; i++ {
		seq = append(seq, rngA.Float64())
	}
	mark := a.Draws()
	var tail []float64
	for i := 0; i < 20; i++ {
		tail = append(tail, rngA.Float64())
	}
	b := NewCountingSource(42)
	if err := b.FastForward(mark); err != nil {
		t.Fatal(err)
	}
	rngB := rand.New(b)
	for i, want := range tail {
		if got := rngB.Float64(); got != want {
			t.Fatalf("fast-forwarded draw %d = %v, want %v", i, got, want)
		}
	}
	if err := b.FastForward(0); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("rewind: %v, want ErrCorrupt", err)
	}
	_ = seq
}

func corruptFile(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(data) / 2; i < len(data)/2+8 && i < len(data); i++ {
		data[i] ^= 0xff
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeTruncationTable drives every decoder over every strict prefix
// of valid artifacts: each must fail with ErrCorrupt, never panic, never
// succeed on partial input.
func TestDecodeTruncationTable(t *testing.T) {
	recs := []Record{
		{Kind: KindJoin, Group: 1, Member: 300, Rejoin: true},
		{Kind: KindDeath, Member: 2},
		{Kind: KindPlan, Iter: 9, Epoch: 4, Members: []int{1, 2, 3}},
		{Kind: KindIter, Iter: 9, Epoch: 4, Step: 10},
	}
	for _, rec := range recs {
		payload := encodeRecordPayload(nil, &rec)
		for cut := 0; cut < len(payload); cut++ {
			got, err := DecodeRecord(payload[:cut])
			if err == nil {
				t.Fatalf("%v truncated at %d decoded: %+v", rec.Kind, cut, got)
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%v truncated at %d: %v does not wrap ErrCorrupt", rec.Kind, cut, err)
			}
		}
	}
	snap := EncodeSnapshot(fullSnapshot())
	for cut := 0; cut < len(snap); cut++ {
		if _, err := DecodeSnapshot(snap[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("snapshot truncated at %d: %v does not wrap ErrCorrupt", cut, err)
		}
	}
	// Single-bit flips anywhere in the body must be caught by the CRC (or a
	// structural check), never absorbed.
	for i := len(snapMagic); i < len(snap); i += 7 {
		mut := append([]byte(nil), snap...)
		mut[i] ^= 0x01
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("bit flip at %d decoded cleanly", i)
		}
	}
}

func TestStoreAccessors(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Dir() != dir {
		t.Fatalf("Dir() = %q, want %q", s.Dir(), dir)
	}
	s.SetRetain(0) // ignored: minimum is 1
	s.SetRetain(3)
	for i := 1; i <= 5; i++ {
		if err := s.WriteSnapshot(&Snapshot{Iter: i, Epoch: -1}); err != nil {
			t.Fatal(err)
		}
	}
	snaps, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 3 {
		t.Fatalf("retained %d snapshots with retain=3, want 3", len(snaps))
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(&Record{Kind: KindIter}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := s.WriteSnapshot(&Snapshot{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot after close: %v, want ErrClosed", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindJoin: "join", KindDeath: "death", KindPlan: "plan", KindIter: "iter", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// TestRecoverMidJournalCorruptionIsTyped distinguishes the two journal
// corruption shapes: a torn tail (crash mid-append) is absorbed, but bit
// rot in the middle of a journal — which would silently drop the epoch
// fence recorded after it — fails recovery with a typed error.
func TestRecoverMidJournalCorruptionIsTyped(t *testing.T) {
	dir := t.TempDir()
	s, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := s.GroupRecorder(0)
	rec.RecordPlan(0, 0, []int{1, 2})
	rec.RecordPlan(5, 1, []int{1, 2})
	rec.RecordPlan(9, 2, []int{1})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wal-00000000.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), data...)
	mut[len(mut)/2] ^= 0xff // inside a fully present middle frame
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Recover(dir)
	if !errors.Is(err, ErrCorrupt) || errors.Is(err, ErrTornTail) {
		t.Fatalf("mid-journal bit rot: %v, want non-torn ErrCorrupt", err)
	}
	// The same bytes cut short instead of flipped are a torn tail: absorbed.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupEpochs[0] != 1 {
		t.Fatalf("torn-tail replay saw epoch %d, want 1 (two intact records)", st.GroupEpochs[0])
	}
}

func TestStoreGuardRefusesWrites(t *testing.T) {
	dir := t.TempDir()
	st, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.AppendIter(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	fence := errors.New("fenced by generation 2")
	var fenced bool
	st.SetGuard(func() error {
		if fenced {
			return fence
		}
		return nil
	})
	if err := st.AppendIter(1, 0, 2); err != nil {
		t.Fatalf("guarded append while allowed: %v", err)
	}
	fenced = true
	if err := st.AppendIter(2, 0, 3); !errors.Is(err, fence) {
		t.Fatalf("append under fence = %v, want %v", err, fence)
	}
	if err := st.WriteSnapshot(&Snapshot{Iter: 2}); !errors.Is(err, fence) {
		t.Fatalf("snapshot under fence = %v, want %v", err, fence)
	}
	// The refused append latched the sticky error, so masters that only
	// consult Err at iteration boundaries still observe the fence.
	if err := st.Err(); !errors.Is(err, fence) {
		t.Fatalf("sticky err = %v, want %v", err, fence)
	}
	// Best-effort recorder appends are refused the same way.
	st.GroupRecorder(0).RecordDeath(1)
	// The directory must hold only pre-fence state.
	recovered, err := Recover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.LastIter != 1 {
		t.Fatalf("recovered LastIter = %d, want 1 (post-fence writes applied)", recovered.LastIter)
	}
	st.SetGuard(nil)
	if err := st.AppendIter(2, 0, 3); err != nil {
		t.Fatalf("append after guard cleared: %v", err)
	}
}

// restoreStub matches the statefulOptimizer surface structurally, like
// ml.StatefulOptimizer does.
type restoreStub struct {
	vecs [][]float64
	step int
	err  error
}

func (o *restoreStub) OptimizerState() ([][]float64, int) { return o.vecs, o.step }
func (o *restoreStub) RestoreOptimizerState(vecs [][]float64, step int) error {
	o.vecs, o.step = vecs, step
	return o.err
}

func TestRestoreTraining(t *testing.T) {
	// A state without a snapshot restores the zero start.
	ts, err := (&State{}).RestoreTraining(3, nil)
	if err != nil || ts.Iter != 0 || ts.Params != nil {
		t.Fatalf("snapshot-less restore = %+v, %v", ts, err)
	}

	st := &State{Snap: &Snapshot{
		Iter: 7, Step: 9, Clock: 1.5,
		Params:  []float64{1, 2, 3},
		OptVecs: [][]float64{{4, 5, 6}},
		OptStep: 9,
	}}
	opt := &restoreStub{}
	ts, err = st.RestoreTraining(3, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Iter != 7 || ts.Step != 9 || ts.Clock != 1.5 || len(ts.Params) != 3 {
		t.Fatalf("restored start = %+v", ts)
	}
	if opt.step != 9 || len(opt.vecs) != 1 || opt.vecs[0][2] != 6 {
		t.Fatalf("optimizer state not restored: %+v", opt)
	}

	// Dimension mismatches fail loudly rather than train on garbage.
	if _, err := st.RestoreTraining(2, nil); err == nil {
		t.Fatal("param dim mismatch accepted")
	}
	st.Snap.Params = []float64{1, 2}
	st.Snap.OptVecs = [][]float64{{4, 5, 6}}
	if _, err := st.RestoreTraining(2, &restoreStub{}); err == nil {
		t.Fatal("optimizer dim mismatch accepted")
	}
	st.Snap.OptVecs = [][]float64{{4, 5}}
	if _, err := st.RestoreTraining(2, &restoreStub{err: errors.New("boom")}); err == nil {
		t.Fatal("optimizer restore failure swallowed")
	}
}

func TestCountingSourceReseed(t *testing.T) {
	s := NewCountingSource(7)
	if v1, v2 := s.Uint64(), s.Uint64(); v1 == v2 {
		t.Fatalf("consecutive draws equal: %d", v1)
	}
	if s.Draws() != 2 {
		t.Fatalf("draws = %d, want 2", s.Draws())
	}
	first := NewCountingSource(7).Uint64()
	s.Seed(7)
	if s.Draws() != 0 {
		t.Fatalf("reseed kept draw count %d", s.Draws())
	}
	if got := s.Uint64(); got != first {
		t.Fatalf("reseeded draw = %d, want %d", got, first)
	}
}
