// The on-disk store: generation-numbered snapshot/journal pairs with atomic
// snapshot commits (temp-file + rename), journal rotation on every snapshot
// and bounded retention. Concurrency-safe: the sharded runtime's group
// masters journal membership and plan events from their own goroutines while
// the root appends iteration records and snapshots.
package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/obs"
)

// DefaultRetain is the number of snapshot generations kept after
// compaction. Two generations mean a bit-rotted newest snapshot still
// leaves a decodable fallback.
const DefaultRetain = 2

const (
	snapPattern = "snap-%08d.ckpt"
	walPattern  = "wal-%08d.log"
)

// Store is an open checkpoint directory accepting journal appends and
// snapshot commits. Obtain one with Create (fresh run) or Reopen (resumed
// run); read one with Recover.
type Store struct {
	mu      sync.Mutex
	dir     string
	gen     int
	wal     *os.File
	retain  int
	pending bool // reopened: the resumed state must be snapshotted first
	closed  bool
	err     error // sticky first write failure
	scratch []byte
	// guard, when set, is consulted before every journal append and
	// snapshot commit. The HA control plane installs the root lease's fence
	// check here, so a deposed root's writes fail typed (ha.ErrFenced)
	// instead of reaching the directory the new root now owns.
	guard func() error
	// obs, when set, receives append/fsync latencies, journal lag and
	// fenced-write counts.
	obs *obs.Metrics
	// sinceSnap counts journal records appended since the last snapshot —
	// the replay cost of recovering from this store right now.
	sinceSnap int
}

// SetMetrics attaches a telemetry bundle; nil detaches it.
func (s *Store) SetMetrics(m *obs.Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = m
}

// SetGuard installs a write guard consulted before every Append and
// WriteSnapshot; a non-nil return aborts the write with that error. Pass nil
// to clear. The guard must be safe for concurrent use and fast on the happy
// path — it runs under the store lock.
func (s *Store) SetGuard(guard func() error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.guard = guard
}

// Create opens a fresh store in dir, creating the directory as needed. A
// directory already holding checkpoint state is refused with ErrExists —
// resuming requires Recover + Reopen, and overwriting a previous run's
// durable state must be an explicit operator decision (delete the
// directory), never a silent side effect.
func Create(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint create %s: %w", dir, err)
	}
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(snaps) > 0 || len(wals) > 0 {
		return nil, fmt.Errorf("%w: %s", ErrExists, dir)
	}
	// The journal file is created lazily on the first append: a master
	// whose construction fails after Create (listener, roster) must not
	// strand an empty wal-0 that makes the retried fresh run fail ErrExists
	// over a directory holding no training state.
	return &Store{dir: dir, retain: DefaultRetain}, nil
}

// Reopen opens an existing checkpoint directory for a resumed run. The
// first operation must be WriteSnapshot with the recovered state: it opens
// a fresh generation, so the resumed run never appends to a journal whose
// tail may be torn. Append before that snapshot fails with ErrNeedSnapshot.
func Reopen(dir string) (*Store, error) {
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(snaps) == 0 && len(wals) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, dir)
	}
	gen := 0
	if len(snaps) > 0 && snaps[len(snaps)-1] > gen {
		gen = snaps[len(snaps)-1]
	}
	if len(wals) > 0 && wals[len(wals)-1] > gen {
		gen = wals[len(wals)-1]
	}
	return &Store{dir: dir, gen: gen, retain: DefaultRetain, pending: true}, nil
}

// SetRetain overrides the number of snapshot generations kept (minimum 1).
func (s *Store) SetRetain(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n >= 1 {
		s.retain = n
	}
}

// Dir returns the checkpoint directory.
func (s *Store) Dir() string { return s.dir }

// Err returns the first write failure the store has swallowed from a
// best-effort path (the roster recorder). Masters check it at iteration
// boundaries so a dying disk fails the run instead of silently un-journaling
// it.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Append writes one CRC-framed record to the current journal.
func (s *Store) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.appendLocked(rec)
}

func (s *Store) appendLocked(rec *Record) error {
	if s.closed {
		return ErrClosed
	}
	if s.guard != nil {
		if err := s.guard(); err != nil {
			err = fmt.Errorf("checkpoint journal append refused: %w", err)
			if s.err == nil {
				s.err = err
			}
			s.obs.OnFencedWrite(rec.Iter, "journal append")
			return err
		}
	}
	if s.pending {
		return ErrNeedSnapshot
	}
	if s.wal == nil {
		wal, err := openWAL(s.dir, s.gen)
		if err != nil {
			if s.err == nil {
				s.err = err
			}
			return err
		}
		s.wal = wal
	}
	s.scratch = frameRecord(s.scratch[:0], encodeRecordPayload(nil, rec))
	start := time.Now()
	if _, err := s.wal.Write(s.scratch); err != nil {
		err = fmt.Errorf("checkpoint journal append: %w", err)
		if s.err == nil {
			s.err = err
		}
		return err
	}
	s.sinceSnap++
	s.obs.OnAppend(time.Since(start).Seconds(), s.sinceSnap)
	return nil
}

// AppendIter journals one completed iteration: the epoch it decoded under
// and the optimizer step count after it.
func (s *Store) AppendIter(iter, epoch, step int) error {
	return s.Append(&Record{Kind: KindIter, Iter: iter, Epoch: epoch, Step: step})
}

// WriteSnapshot commits snap atomically as a new generation: the snapshot
// is written to a temp file, fsynced and renamed into place, the journal
// rotates to a fresh file, and generations older than the retention bound
// are deleted (their history is folded into the surviving snapshots).
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.guard != nil {
		if err := s.guard(); err != nil {
			s.obs.OnFencedWrite(snap.Iter, "snapshot")
			return fmt.Errorf("checkpoint snapshot refused: %w", err)
		}
	}
	start := time.Now()
	gen := s.gen + 1
	data := EncodeSnapshot(snap)
	final := filepath.Join(s.dir, fmt.Sprintf(snapPattern, gen))
	tmp := final + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("checkpoint snapshot commit: %w", err)
	}
	wal, err := openWAL(s.dir, gen)
	if err != nil {
		return err
	}
	if s.wal != nil {
		_ = s.wal.Sync()
		_ = s.wal.Close()
	}
	s.wal = wal
	s.gen = gen
	s.pending = false
	syncDir(s.dir)
	// Compaction: drop generations whose history the retained snapshots
	// already fold in (best-effort; a failed unlink is retried at the next
	// snapshot).
	if snaps, wals, err := scanDir(s.dir); err == nil {
		for _, g := range snaps {
			if g <= gen-s.retain {
				_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf(snapPattern, g)))
			}
		}
		for _, g := range wals {
			if g <= gen-s.retain {
				_ = os.Remove(filepath.Join(s.dir, fmt.Sprintf(walPattern, g)))
			}
		}
		syncDir(s.dir)
	}
	s.sinceSnap = 0
	s.obs.OnSnapshot(time.Since(start).Seconds(), snap.Iter)
	return nil
}

// Close syncs and closes the journal. Further operations fail with
// ErrClosed. Safe to call multiple times and concurrently with appenders.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal == nil {
		return nil
	}
	err := s.wal.Sync()
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	s.wal = nil
	return err
}

// GroupRecorder adapts the store to the roster engine's Recorder interface
// for one coding group. Its methods are best-effort (the engine has no
// error path for them); failures surface through Store.Err at the next
// iteration boundary.
type GroupRecorder struct {
	s     *Store
	group int
}

// GroupRecorder returns the journal adapter for one group's roster engine.
func (s *Store) GroupRecorder(group int) *GroupRecorder {
	return &GroupRecorder{s: s, group: group}
}

// RecordJoin journals a member join/rejoin.
func (r *GroupRecorder) RecordJoin(id int, rejoin bool) {
	_ = r.s.Append(&Record{Kind: KindJoin, Group: r.group, Member: id, Rejoin: rejoin})
}

// RecordDeath journals a member death.
func (r *GroupRecorder) RecordDeath(id int) {
	_ = r.s.Append(&Record{Kind: KindDeath, Group: r.group, Member: id})
}

// RecordPlan journals a plan migration.
func (r *GroupRecorder) RecordPlan(iter, epoch int, members []int) {
	_ = r.s.Append(&Record{Kind: KindPlan, Group: r.group, Iter: iter, Epoch: epoch,
		Members: append([]int(nil), members...)})
}

// Recover reads a checkpoint directory into a State: the newest decodable
// snapshot (falling back generation by generation past corrupt ones) plus a
// replay of every journal from that generation upward. It never mutates the
// directory, so it is safe to call while a writer is live (it simply
// observes a prefix). A directory with snapshot files none of which decode
// fails with ErrCorrupt; a directory with no checkpoint files at all fails
// with ErrNoCheckpoint.
func Recover(dir string) (*State, error) {
	snaps, wals, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	if len(snaps) == 0 && len(wals) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, dir)
	}
	st := &State{
		GroupEpochs:  make(map[int]int),
		GroupMembers: make(map[int][]int),
		LastIter:     -1,
	}
	var snapErr error
	anchor := 0
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf(snapPattern, snaps[i])))
		if err != nil {
			if os.IsNotExist(err) {
				continue // compacted away between listing and read
			}
			return nil, fmt.Errorf("checkpoint recover: %w", err)
		}
		snap, err := DecodeSnapshot(data)
		if err != nil {
			snapErr = err
			continue
		}
		st.Snap = snap
		anchor = snaps[i]
		break
	}
	if st.Snap == nil && len(snaps) > 0 {
		// Snapshots exist but none decodes: the model state is gone, and
		// restarting from scratch silently would violate the durability
		// contract. Typed failure; the operator decides.
		return nil, fmt.Errorf("checkpoint recover %s: every snapshot undecodable: %w", dir, snapErr)
	}
	if snap := st.Snap; snap != nil {
		st.LastIter = snap.Iter - 1
		st.Steps = snap.Step
		for _, gs := range snap.Groups {
			st.GroupEpochs[gs.Group] = gs.Epoch
			st.GroupMembers[gs.Group] = append(st.GroupMembers[gs.Group], gs.Members...)
		}
	}
	for _, g := range wals {
		if g < anchor {
			continue // superseded by the anchor snapshot; may survive a raced compaction
		}
		data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf(walPattern, g)))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("checkpoint recover: %w", err)
		}
		// A torn tail is the normal crash shape: replay the decodable
		// prefix and stop. Any other journal corruption (bit rot mid-file)
		// would silently drop the records — and the epoch fence — behind
		// it, so it fails recovery typed instead.
		recs, jerr := ReadJournal(data)
		if jerr != nil && !errors.Is(jerr, ErrTornTail) {
			return nil, fmt.Errorf("checkpoint recover: journal wal-%08d: %w", g, jerr)
		}
		for i := range recs {
			applyRecord(st, &recs[i])
		}
	}
	for g, ms := range st.GroupMembers {
		st.GroupMembers[g] = dedupeSorted(ms)
	}
	return st, nil
}

// applyRecord folds one journal record into the recovered state.
func applyRecord(st *State, rec *Record) {
	switch rec.Kind {
	case KindJoin:
		st.GroupMembers[rec.Group] = append(st.GroupMembers[rec.Group], rec.Member)
	case KindDeath:
		// Deaths do not unreserve IDs: the member may rejoin after resume.
	case KindPlan:
		if cur, ok := st.GroupEpochs[rec.Group]; !ok || rec.Epoch > cur {
			st.GroupEpochs[rec.Group] = rec.Epoch
		}
	case KindIter:
		if rec.Iter > st.LastIter {
			st.LastIter = rec.Iter
			st.Steps = rec.Step
		}
	}
}

func dedupeSorted(ms []int) []int {
	sort.Ints(ms)
	out := ms[:0]
	for i, m := range ms {
		if i == 0 || m != ms[i-1] {
			out = append(out, m)
		}
	}
	return out
}

// scanDir lists the snapshot and journal generations present in dir,
// ascending. A missing directory maps to ErrNoCheckpoint.
func scanDir(dir string) (snaps, wals []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("%w: %s", ErrNoCheckpoint, dir)
		}
		return nil, nil, fmt.Errorf("checkpoint scan %s: %w", dir, err)
	}
	for _, e := range entries {
		var g int
		if n, err := fmt.Sscanf(e.Name(), snapPattern, &g); err == nil && n == 1 && e.Name() == fmt.Sprintf(snapPattern, g) {
			snaps = append(snaps, g)
		} else if n, err := fmt.Sscanf(e.Name(), walPattern, &g); err == nil && n == 1 && e.Name() == fmt.Sprintf(walPattern, g) {
			wals = append(wals, g)
		}
	}
	sort.Ints(snaps)
	sort.Ints(wals)
	return snaps, wals, nil
}

func openWAL(dir string, gen int) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf(walPattern, gen)),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint journal open: %w", err)
	}
	return f, nil
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("checkpoint snapshot write: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return fmt.Errorf("checkpoint snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("checkpoint snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("checkpoint snapshot close: %w", err)
	}
	return nil
}

// syncDir fsyncs the directory so renames and unlinks are durable
// (best-effort: some platforms reject directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}
