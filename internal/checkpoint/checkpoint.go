// Package checkpoint is the durable-state subsystem: an epoch-granular
// write-ahead journal plus periodic atomic model snapshots, giving every
// master in the system — the flat runtime.ElasticMaster, the sharded
// shard.Root and the deterministic simulator — crash-recovery with
// deterministic resume.
//
// A checkpoint directory holds numbered generations. Generation g is
// anchored by a snapshot file snap-<g>.ckpt (the full model and
// control-plane state at one iteration boundary, written atomically via
// temp-file + rename) and extended by a journal wal-<g>.log (one CRC-framed
// record per durable event after that snapshot: plan migrations, iteration
// completions with the optimizer step count, roster joins and deaths).
// Generation 0 has no snapshot — its journal extends the initial state the
// caller reconstructs from its own config.
//
// Recovery walks the generations from newest to oldest until it finds a
// decodable snapshot, then replays every journal from that generation
// upward: the snapshot restores the model, the journals restore what the
// snapshot cannot know — above all the highest plan epoch ever created,
// which a resumed master must fence (a gradient encoded before the crash
// must never decode into the resumed model). A torn journal tail — the
// record being written when the process died — is expected and tolerated;
// a snapshot that fails its CRC falls back to the previous generation; when
// every snapshot is corrupt, recovery fails with a typed error rather than
// silently restarting from scratch.
//
// All decoding is defensive: truncated, bit-flipped or garbage bytes yield
// errors wrapping ErrCorrupt, never panics (fuzzed by FuzzSnapshot and
// FuzzJournal).
package checkpoint

import (
	"errors"
	"fmt"
	"math/rand"

	"github.com/hetgc/hetgc/internal/elastic"
)

// Errors returned by the checkpoint subsystem.
var (
	// ErrCorrupt marks undecodable snapshot or journal bytes: CRC mismatch,
	// truncation inside a frame, unknown versions or kinds, impossible field
	// values.
	ErrCorrupt = errors.New("checkpoint: corrupt data")
	// ErrTornTail marks the one corruption shape a crash legitimately
	// produces: the journal's final frame cut short mid-write. It wraps
	// ErrCorrupt; recovery treats it as end-of-log, while any OTHER journal
	// corruption (a CRC mismatch on a fully present frame — bit rot, not a
	// crash) fails recovery typed instead of silently dropping the records
	// after it.
	ErrTornTail = fmt.Errorf("%w: torn tail", ErrCorrupt)
	// ErrNoCheckpoint is returned by Recover when the directory holds no
	// checkpoint state at all (missing, empty, or no recognisable files).
	ErrNoCheckpoint = errors.New("checkpoint: no checkpoint found")
	// ErrExists is returned by Create when the directory already holds
	// checkpoint state — resuming over it requires Recover + Reopen, and
	// starting fresh requires an empty directory, so neither is silently
	// overwritten.
	ErrExists = errors.New("checkpoint: directory already holds checkpoint state")
	// ErrClosed is returned on use of a closed store.
	ErrClosed = errors.New("checkpoint: store closed")
	// ErrNeedSnapshot is returned by Append on a reopened store before the
	// resumed state has been snapshotted: a journal record needs a
	// generation anchor to be recoverable.
	ErrNeedSnapshot = errors.New("checkpoint: reopened store needs a snapshot before journal appends")
)

// Snapshot is the durable state at one iteration boundary.
type Snapshot struct {
	// Iter is the next iteration to run on resume (every iteration below it
	// is folded into Params).
	Iter int
	// Epoch is the plan epoch current when the snapshot was taken (-1 before
	// any plan).
	Epoch int
	// Step is the optimizer step count folded into Params.
	Step int
	// Clock is the cumulative training clock in seconds.
	Clock float64
	// Params is the model parameter vector (nil for timing-only simulations).
	Params []float64
	// OptVecs are the optimizer's state vectors (e.g. SGD momentum velocity,
	// Adam first/second moments), OptStep its internal step counter.
	OptVecs [][]float64
	// OptStep is the optimizer's internal step counter (Adam's t).
	OptStep int
	// Draws is the control-plane RNG source's draw count at capture time
	// (counting sources only; 0 otherwise).
	Draws uint64
	// Groups carries each roster group's durable summary — the highest plan
	// epoch it ever created and every member ID it ever admitted — so epoch
	// fencing and ResumeID reservation survive journal compaction (older
	// journals are deleted once a snapshot folds them in).
	Groups []GroupState
	// Ctrl is the control-plane state (membership, estimates, and — in
	// simulator checkpoints — the current plan's construction provenance).
	// Nil in sharded root snapshots, which carry per-group controller
	// states inside Groups instead.
	Ctrl *elastic.ControllerState
}

// GroupState is one roster group's durable summary inside a snapshot.
type GroupState struct {
	// Group is the coding-group index (0 in the flat runtime).
	Group int
	// Epoch is the highest plan epoch the group had created (-1 for none).
	Epoch int
	// Members are the member IDs the group ever admitted, ascending.
	Members []int
	// Ctrl is the group's control-plane state — membership with live
	// throughput estimates — captured so a resumed or promoted root
	// re-plans from real history instead of re-warming its estimators from
	// scratch. Nil in snapshots written before the group ever planned.
	Ctrl *elastic.ControllerState
}

// Kind enumerates journal record kinds.
type Kind uint8

// Journal record kinds.
const (
	// KindJoin records a successful member join (or rejoin) in a group's
	// roster.
	KindJoin Kind = iota + 1
	// KindDeath records a member death.
	KindDeath
	// KindPlan records a plan migration: the new epoch and its membership.
	KindPlan
	// KindIter records one completed iteration: the epoch it decoded under
	// and the optimizer step count after it.
	KindIter
)

// String names the record kind.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindDeath:
		return "death"
	case KindPlan:
		return "plan"
	case KindIter:
		return "iter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Record is one journal entry. Group scopes membership and plan records to
// one coding group (always 0 in the flat runtime); iteration records are
// written by the root and carry group 0.
type Record struct {
	Kind   Kind
	Group  int
	Member int  // KindJoin, KindDeath
	Rejoin bool // KindJoin: the member resumed a previous identity
	Iter   int  // KindPlan, KindIter
	Epoch  int  // KindPlan, KindIter
	Step   int  // KindIter
	// Members is the plan's slot → member mapping (KindPlan).
	Members []int
}

// State is the recovered view of a checkpoint directory.
type State struct {
	// Snap is the newest decodable snapshot, nil when the run crashed before
	// ever snapshotting (journal-only recovery: the caller restarts from its
	// configured initial state, still fenced by the journal's epochs).
	Snap *Snapshot
	// GroupEpochs is the highest plan epoch recorded per group, across the
	// snapshot and every journal from the anchor generation upward. A
	// resumed master's epoch base must exceed its group's entry.
	GroupEpochs map[int]int
	// GroupMembers lists every member ID recorded per group (snapshot
	// membership plus journal joins), ascending — the IDs a resumed roster
	// must reserve so ResumeID handshakes resolve to their old identities.
	GroupMembers map[int][]int
	// LastIter is the highest completed iteration recorded anywhere, Steps
	// the optimizer step count after it. Iterations in (Snap.Iter, LastIter]
	// are re-run on resume: their model updates died with the master.
	LastIter int
	// Steps is the optimizer step count recorded with LastIter.
	Steps int
}

// MaxEpoch returns the highest plan epoch recorded in any group, -1 when no
// plan was ever recorded.
func (st *State) MaxEpoch() int {
	max := -1
	for _, e := range st.GroupEpochs {
		if e > max {
			max = e
		}
	}
	return max
}

// statefulOptimizer is the optimizer-state restore surface
// (ml.StatefulOptimizer, matched structurally so this package needs no ml
// import).
type statefulOptimizer interface {
	OptimizerState() ([][]float64, int)
	RestoreOptimizerState(vecs [][]float64, step int) error
}

// TrainingStart is the recovered starting point of a training loop.
type TrainingStart struct {
	// Params are the snapshot parameters (nil when the snapshot carried
	// none — the caller keeps its configured initial parameters).
	Params []float64
	// Iter is the first iteration to run, Step the optimizer step count
	// already folded into Params, Clock the cumulative training clock.
	Iter, Step int
	Clock      float64
}

// RestoreTraining applies the recovered snapshot's training state — shared
// by every master that can be constructed from a checkpoint. It validates
// the parameter and optimizer-state dimensions against dim and, when the
// optimizer carries state across steps (ml.StatefulOptimizer), restores it.
// A state without a snapshot restores the zero TrainingStart: the caller
// begins from its configured initial state, still fenced by the journal's
// epochs.
func (st *State) RestoreTraining(dim int, optimizer any) (TrainingStart, error) {
	var ts TrainingStart
	snap := st.Snap
	if snap == nil {
		return ts, nil
	}
	if len(snap.Params) > 0 {
		if len(snap.Params) != dim {
			return ts, fmt.Errorf("snapshot has %d params, model wants %d", len(snap.Params), dim)
		}
		ts.Params = append([]float64(nil), snap.Params...)
	}
	ts.Iter = snap.Iter
	ts.Step = snap.Step
	ts.Clock = snap.Clock
	if so, ok := optimizer.(statefulOptimizer); ok && len(snap.OptVecs) > 0 {
		for _, v := range snap.OptVecs {
			if len(v) != dim {
				return ts, fmt.Errorf("snapshot optimizer state dim %d, model wants %d", len(v), dim)
			}
		}
		if err := so.RestoreOptimizerState(snap.OptVecs, snap.OptStep); err != nil {
			return ts, fmt.Errorf("optimizer restore: %v", err)
		}
	}
	return ts, nil
}

// CountingSource is a seeded rand.Source64 that counts its draws, making an
// RNG position serialisable: a checkpoint records Draws(), and resume
// reconstructs the exact source state with NewCountingSource(seed) +
// FastForward. It is what lets the simulator rebuild a mid-run coding
// strategy bit-for-bit.
type CountingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

// NewCountingSource seeds a counting source.
func NewCountingSource(seed int64) *CountingSource {
	return &CountingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}
}

// Int63 implements rand.Source.
func (s *CountingSource) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *CountingSource) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed reseeds the source and resets the draw counter.
func (s *CountingSource) Seed(seed int64) {
	s.src.Seed(seed)
	s.seed = seed
	s.draws = 0
}

// Draws returns the number of values drawn since seeding.
func (s *CountingSource) Draws() uint64 { return s.draws }

// FastForward advances the source until Draws() == n. It cannot rewind: n
// below the current position is an error (reseed first).
func (s *CountingSource) FastForward(n uint64) error {
	if n < s.draws {
		return fmt.Errorf("%w: cannot rewind RNG from %d to %d draws (seed %d)", ErrCorrupt, s.draws, n, s.seed)
	}
	for s.draws < n {
		s.draws++
		_ = s.src.Uint64()
	}
	return nil
}
