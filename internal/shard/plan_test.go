package shard

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/hetgc/hetgc/internal/core"
)

func uniformRates(m int, rate float64) []float64 {
	out := make([]float64, m)
	for i := range out {
		out[i] = rate
	}
	return out
}

func TestBuildPlanInvariants(t *testing.T) {
	cases := []struct {
		name string
		m, k int
		cfg  PlanConfig
	}{
		{"uniform-200", 200, 400, PlanConfig{K: 400, S: 1, GroupSize: 10}},
		{"small-flat", 5, 8, PlanConfig{K: 8, S: 1, GroupSize: 10}},
		{"skewed-60", 60, 120, PlanConfig{K: 120, S: 2, GroupSize: 8}},
		{"group-based", 40, 64, PlanConfig{K: 64, S: 1, GroupSize: 10, Scheme: core.GroupBased}},
		{"k-limits-groups", 30, 2, PlanConfig{K: 2, S: 0, GroupSize: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			thr := make([]float64, tc.m)
			for i := range thr {
				thr[i] = 1 + float64(i%7)
			}
			plan, err := BuildPlan(thr, tc.cfg, rng)
			if err != nil {
				t.Fatal(err)
			}

			// Workers: disjoint cover of 0..m-1, each group ≥ s+1 workers,
			// GroupOf agrees with membership.
			seenW := make([]bool, tc.m)
			for g, grp := range plan.Groups {
				if len(grp.Workers) < tc.cfg.S+1 {
					t.Fatalf("group %d has %d workers < s+1=%d", g, len(grp.Workers), tc.cfg.S+1)
				}
				if len(grp.Workers) != grp.Strategy.M() {
					t.Fatalf("group %d: %d workers but strategy m=%d", g, len(grp.Workers), grp.Strategy.M())
				}
				for _, w := range grp.Workers {
					if seenW[w] {
						t.Fatalf("worker %d in two groups", w)
					}
					seenW[w] = true
					if plan.GroupOf(w) != g {
						t.Fatalf("GroupOf(%d) = %d, want %d", w, plan.GroupOf(w), g)
					}
				}
			}
			for w, ok := range seenW {
				if !ok {
					t.Fatalf("worker %d unassigned", w)
				}
			}

			// Partitions: disjoint cover of 0..k-1, aligned with each group
			// strategy's local k.
			seenP := make([]bool, tc.k)
			for g, grp := range plan.Groups {
				if len(grp.Parts) != grp.Strategy.K() {
					t.Fatalf("group %d: %d parts but strategy k=%d", g, len(grp.Parts), grp.Strategy.K())
				}
				if grp.Strategy.S() != tc.cfg.S {
					t.Fatalf("group %d: strategy s=%d, want %d", g, grp.Strategy.S(), tc.cfg.S)
				}
				for _, p := range grp.Parts {
					if p < 0 || p >= tc.k || seenP[p] {
						t.Fatalf("group %d: partition %d invalid or duplicated", g, p)
					}
					seenP[p] = true
				}
			}
			for p, ok := range seenP {
				if !ok {
					t.Fatalf("partition %d unowned", p)
				}
			}

			if plan.Tree.Leaves() != plan.NumGroups() {
				t.Fatalf("tree has %d leaves for %d groups", plan.Tree.Leaves(), plan.NumGroups())
			}
			if plan.GroupOf(-1) != -1 || plan.GroupOf(tc.m) != -1 {
				t.Fatal("GroupOf out of range should be -1")
			}
		})
	}
}

func TestBuildPlanDeterministic(t *testing.T) {
	thr := make([]float64, 97)
	for i := range thr {
		thr[i] = 1 + float64((i*13)%5)
	}
	cfg := PlanConfig{K: 150, S: 1, GroupSize: 9}
	a, err := BuildPlan(thr, cfg, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildPlan(thr, cfg, rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Groups) != len(b.Groups) {
		t.Fatalf("group counts differ: %d vs %d", len(a.Groups), len(b.Groups))
	}
	for g := range a.Groups {
		if !reflect.DeepEqual(a.Groups[g].Workers, b.Groups[g].Workers) ||
			!reflect.DeepEqual(a.Groups[g].Parts, b.Groups[g].Parts) {
			t.Fatalf("group %d differs between identically-seeded builds", g)
		}
		ra := a.Groups[g].Strategy.Row(0)
		rb := b.Groups[g].Strategy.Row(0)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("group %d coding rows differ between identically-seeded builds", g)
		}
	}
}

func TestBuildPlanBalancesCapacity(t *testing.T) {
	// Strongly heterogeneous fleet: snake dealing should keep group
	// capacities within a modest band of each other.
	rng := rand.New(rand.NewSource(2))
	thr := make([]float64, 80)
	for i := range thr {
		thr[i] = math.Exp(rng.NormFloat64())
	}
	plan, err := BuildPlan(thr, PlanConfig{K: 160, S: 1, GroupSize: 10}, rng)
	if err != nil {
		t.Fatal(err)
	}
	caps := make([]float64, plan.NumGroups())
	lo, hi := math.Inf(1), 0.0
	for g, grp := range plan.Groups {
		for _, w := range grp.Workers {
			caps[g] += thr[w]
		}
		lo = math.Min(lo, caps[g])
		hi = math.Max(hi, caps[g])
	}
	if hi > 1.5*lo {
		t.Fatalf("group capacities unbalanced: min %.2f max %.2f (%v)", lo, hi, caps)
	}
}

func TestBuildPlanRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		thr []float64
		cfg PlanConfig
	}{
		{nil, PlanConfig{K: 4, S: 1}},
		{[]float64{1, 2}, PlanConfig{K: 0, S: 1}},
		{[]float64{1, 2}, PlanConfig{K: 4, S: -1}},
		{[]float64{1, -2, 3}, PlanConfig{K: 4, S: 1}},
		{[]float64{1}, PlanConfig{K: 4, S: 1}}, // m < s+1
	}
	for i, tc := range cases {
		if _, err := BuildPlan(tc.thr, tc.cfg, rng); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	if _, err := BuildPlan([]float64{1, 2, 3}, PlanConfig{K: 4, S: 1}, nil); err == nil {
		t.Fatal("nil rng: expected error")
	}
}

func TestTreeShape(t *testing.T) {
	cases := []struct {
		leaves, fanIn, depth int
	}{
		{1, 4, 0}, {2, 4, 1}, {4, 4, 1}, {5, 4, 2}, {16, 4, 2}, {17, 4, 3},
		{20, 2, 5}, {50, 8, 2},
	}
	for _, tc := range cases {
		tr := NewTree(tc.leaves, tc.fanIn)
		if tr.Leaves() != tc.leaves {
			t.Fatalf("leaves(%d,%d) = %d", tc.leaves, tc.fanIn, tr.Leaves())
		}
		if tr.Depth() != tc.depth {
			t.Fatalf("depth(%d,%d) = %d, want %d", tc.leaves, tc.fanIn, tr.Depth(), tc.depth)
		}
	}
}

func TestTreeAggregateMatchesFlatSum(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, leaves := range []int{1, 2, 3, 7, 16, 33} {
		for _, fanIn := range []int{2, 3, 4, 8} {
			const dim = 37
			vecs := make([][]float64, leaves)
			want := make([]float64, dim)
			for i := range vecs {
				vecs[i] = make([]float64, dim)
				for d := range vecs[i] {
					vecs[i][d] = rng.NormFloat64()
					want[d] += vecs[i][d]
				}
			}
			got, err := NewTree(leaves, fanIn).Aggregate(vecs)
			if err != nil {
				t.Fatal(err)
			}
			for d := range want {
				if math.Abs(got[d]-want[d]) > 1e-9 {
					t.Fatalf("leaves=%d fanIn=%d: dim %d: %v != %v", leaves, fanIn, d, got[d], want[d])
				}
			}
		}
	}
	if _, err := NewTree(3, 2).Aggregate(make([][]float64, 2)); err == nil {
		t.Fatal("wrong leaf count: expected error")
	}
}
