// GroupRunner: a coding-group master as an independently restartable unit.
//
// The in-process groupMaster lives and dies with its root. A GroupRunner
// hosts the same group core (roster engine, group-local control plane,
// epoch-fenced collect) behind an adoption loop: it dials whatever root the
// lease token in RootDir names (or a fixed RootAddr), announces its live
// epoch and membership with MsgAdopt, serves params broadcasts from the
// adopted root, and whenever the uplink dies — root crash, root takeover,
// network fault — it simply re-dials and re-adopts. The group's workers
// never notice: the runner's own listener address is stable, so they stay
// connected (or rejoin by ResumeID) across any number of root incarnations.
//
// With a JournalDir the runner owns a per-group journal: membership and
// migrations stream through a checkpoint.GroupRecorder, and the group's
// control-plane state (epoch, members, throughput estimates) is snapshotted
// on the SnapshotEvery cadence. A restarted runner (ResumeJournal) rebuilds
// its controller from that history, reserves its member IDs for rejoins,
// and raises its epoch base above everything recorded — the same fencing
// discipline as a resumed root.
//
// Zombie fencing is generation-based on both sides: the runner refuses an
// adoption ack whose RootGen is below the generation it already adopted
// (a deposed root answering late), stamps every upload with the adopted
// generation, and — when RootDir is set — watches the lease token so a
// takeover proactively defects the uplink to the new root instead of
// waiting for the old one to die.
package shard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ha"
	"github.com/hetgc/hetgc/internal/roster"
	"github.com/hetgc/hetgc/internal/transport"
)

// ErrRunnerStopped reports a runner torn down by Stop rather than failure.
var ErrRunnerStopped = errors.New("shard: group runner stopped")

// GroupRunnerConfig configures one out-of-process group master. The
// embedded Config must match the root's exactly where the plan is concerned
// (K, S, GroupSize, FanIn, Scheme, Throughputs, Seed) — both sides derive
// the same layout independently. Model, Optimizer, InitialParams,
// Iterations, SampleCount, LossEvery, LossFn, CheckpointDir, Resume,
// LeaseTTL and ExternalGroups are ignored: the runner neither trains nor
// holds the root lease.
type GroupRunnerConfig struct {
	Config
	// Group is the coding group this runner serves (must be listed in the
	// root's ExternalGroups).
	Group int
	// WorkerAddr is the runner's worker listen address. Use a fixed port in
	// deployments so workers survive runner restarts ("127.0.0.1:0" is fine
	// for single-run tests).
	WorkerAddr string
	// RootAddr, when non-empty, pins the root's dial address. Leave empty
	// and set RootDir to discover the root (and every successor) from the
	// lease token instead.
	RootAddr string
	// RootDir, when non-empty, is the root's checkpoint/lease directory:
	// the runner reads the lease token for discovery and watches it for
	// takeovers, defecting to each new generation's address.
	RootDir string
	// JournalDir, when non-empty, makes the group's control-plane state
	// durable in its own per-group journal.
	JournalDir string
	// ResumeJournal rebuilds the runner from the journal in JournalDir: the
	// controller restored from the snapshot's throughput history, member
	// IDs reserved for ResumeID rejoins, epoch base raised above the
	// recorded history.
	ResumeJournal bool
}

func (c *GroupRunnerConfig) validate() error {
	if c.K <= 0 || c.S < 0 {
		return fmt.Errorf("%w: k=%d s=%d", ErrBadConfig, c.K, c.S)
	}
	if len(c.Throughputs) == 0 {
		return fmt.Errorf("%w: no workers", ErrBadConfig)
	}
	if c.IterTimeout <= 0 {
		return fmt.Errorf("%w: iteration timeout required", ErrBadConfig)
	}
	if c.RootAddr == "" && c.RootDir == "" {
		return fmt.Errorf("%w: runner needs RootAddr or RootDir", ErrBadConfig)
	}
	if c.ResumeJournal && c.JournalDir == "" {
		return fmt.Errorf("%w: resume requires a journal directory", ErrBadConfig)
	}
	if _, err := c.wireCodec(); err != nil {
		return err
	}
	return nil
}

// GroupRunner is a running out-of-process group master.
type GroupRunner struct {
	cfg   GroupRunnerConfig
	core  groupCore
	store *checkpoint.Store

	mu         sync.Mutex
	up         *transport.Conn // live uplink (nil between adoptions)
	adoptedGen int
	stopped    bool

	served       int // iterations served (drives the snapshot cadence)
	iterFailures int // consecutive failed iterations across adoptions

	stop chan struct{}
	done chan struct{}
	err  error // sticky; read via Err after done
}

// StartGroup builds the group's control plane (restoring it from the
// journal when resuming), starts the worker listener on WorkerAddr, and
// launches the adoption/serve loop. Workers dial Addr() with the elastic
// worker protocol; the runner keeps serving across root restarts until
// Stop, a MsgShutdown from the root, or an unrecoverable failure.
func StartGroup(cfg GroupRunnerConfig) (*GroupRunner, error) {
	cfg.Config.normalize()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.ChunkLen <= 0 {
		cfg.ChunkLen = DefaultChunkLen
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 2
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10
		cfg.DurabilityConfig.SnapshotEvery = 10
	}
	plan, err := BuildPlanLayout(cfg.Throughputs, PlanConfig{
		K: cfg.K, S: cfg.S, GroupSize: cfg.GroupSize, FanIn: cfg.FanIn, Scheme: cfg.Scheme,
	})
	if err != nil {
		return nil, err
	}
	g := cfg.Group
	if g < 0 || g >= plan.NumGroups() {
		return nil, fmt.Errorf("%w: group %d out of range (plan has %d groups)", ErrBadConfig, g, plan.NumGroups())
	}
	grp := plan.Groups[g]

	// Journal recovery: the runner's own history, not the root's.
	var ctrlState *elastic.ControllerState
	var memberIDs []int
	epochFloor, hasFloor := 0, false
	var store *checkpoint.Store
	if cfg.JournalDir != "" {
		if cfg.ResumeJournal {
			state, err := checkpoint.Recover(cfg.JournalDir)
			if err != nil {
				return nil, err
			}
			memberIDs = state.GroupMembers[g]
			if state.Snap != nil {
				for i := range state.Snap.Groups {
					if state.Snap.Groups[i].Group == g {
						ctrlState = state.Snap.Groups[i].Ctrl
					}
				}
			}
			if e, ok := state.GroupEpochs[g]; ok {
				epochFloor, hasFloor = e, true
			}
			if store, err = checkpoint.Reopen(cfg.JournalDir); err != nil {
				return nil, err
			}
		} else if store, err = checkpoint.Create(cfg.JournalDir); err != nil {
			return nil, err
		}
	}
	ctrl, recovered, err := buildGroupController(&cfg.Config, grp, g, ctrlState, memberIDs, epochFloor, hasFloor)
	if err != nil {
		if store != nil {
			_ = store.Close()
		}
		return nil, err
	}
	var rec roster.Recorder
	if store != nil {
		rec = store.GroupRecorder(g)
	}
	lis, err := transport.Listen(cfg.WorkerAddr)
	if err != nil {
		if store != nil {
			_ = store.Close()
		}
		return nil, err
	}
	eng, err := newGroupEngine(&cfg.Config, grp, g, ctrl, recovered, rec, lis)
	if err != nil {
		if store != nil {
			_ = store.Close()
		}
		return nil, err
	}
	if store != nil {
		store.SetMetrics(cfg.Obs)
	}
	cfg.Obs.BindWire(transport.Wire)
	r := &GroupRunner{
		cfg:   cfg,
		core:  groupCore{eng: eng, g: g, iterTimeout: cfg.IterTimeout, maxRetries: cfg.MaxRetries, obs: cfg.Obs},
		store: store,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if store != nil && cfg.ResumeJournal {
		// Anchor a fresh journal generation with the restored state before
		// any append.
		if err := store.WriteSnapshot(r.snapshot()); err != nil {
			r.teardown()
			return nil, err
		}
	}
	go r.loop()
	return r, nil
}

// Addr returns the runner's worker listen address.
func (r *GroupRunner) Addr() string { return r.core.eng.Addr() }

// Group returns the coding group this runner serves.
func (r *GroupRunner) Group() int { return r.cfg.Group }

// Gen returns the root generation the runner most recently adopted.
func (r *GroupRunner) Gen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.adoptedGen
}

// WaitForWorkers blocks until at least min members joined the group.
func (r *GroupRunner) WaitForWorkers(min int, timeout time.Duration) error {
	return r.core.eng.WaitForMembers(min, timeout)
}

// Done is closed when the runner's serve loop exits.
func (r *GroupRunner) Done() <-chan struct{} { return r.done }

// Err reports why the runner exited (nil after a root-driven shutdown,
// ErrRunnerStopped after Stop). Valid once Done is closed.
func (r *GroupRunner) Err() error {
	<-r.done
	if r.err != nil && errors.Is(r.err, ErrRunnerStopped) {
		return ErrRunnerStopped
	}
	return r.err
}

// Stats snapshots the group's counters. Valid once Done is closed.
func (r *GroupRunner) Stats() GroupStats {
	<-r.done
	return r.core.coreStats(r.core.eng.AliveCount())
}

// Stop tears the runner down cold: no shutdown frames to workers (they see
// a dead connection and reconnect elsewhere — or to this runner's restart).
func (r *GroupRunner) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.stopped = true
	up := r.up
	r.mu.Unlock()
	close(r.stop)
	if up != nil {
		_ = up.Close()
	}
	r.core.eng.Shutdown(false)
	<-r.done
}

// snapshot assembles the runner's durable state: the group's epoch,
// members and live controller state (nil params — a group journal holds no
// model).
func (r *GroupRunner) snapshot() *checkpoint.Snapshot {
	return &checkpoint.Snapshot{
		Iter:   r.served,
		Epoch:  -1,
		Groups: []checkpoint.GroupState{r.core.coreState()},
	}
}

// teardown releases everything the constructor built.
func (r *GroupRunner) teardown() {
	r.core.eng.Shutdown(false)
	if r.store != nil {
		_ = r.store.Close()
	}
	close(r.done)
}

// stopping reports whether Stop was called.
func (r *GroupRunner) stopping() bool {
	select {
	case <-r.stop:
		return true
	default:
		return false
	}
}

// rootAddr resolves the root's current dial address (and its generation,
// when discovered through the lease token).
func (r *GroupRunner) rootAddr() (addr string, gen int, err error) {
	if r.cfg.RootDir != "" {
		tok, err := ha.ReadToken(r.cfg.RootDir)
		if err != nil {
			return "", 0, err
		}
		return tok.Addr, tok.Gen, nil
	}
	return r.cfg.RootAddr, 0, nil
}

// loop is the adoption/serve loop: dial the current root, adopt, serve its
// broadcasts until the uplink dies, repeat. Iteration failures are
// non-fatal (the root resends params after re-adoption) but bounded:
// consecutive failures without a single served iteration in between give
// up.
func (r *GroupRunner) loop() {
	var tornDown bool
	defer func() {
		if !tornDown {
			r.teardown()
		}
	}()
	failures := 0
	for {
		if r.stopping() {
			r.err = ErrRunnerStopped
			return
		}
		addr, tokGen, err := r.rootAddr()
		if err == nil && tokGen > 0 && tokGen < r.Gen() {
			// The token still names a root older than the one we adopted —
			// a stale read during takeover; wait for the new claim.
			err = fmt.Errorf("stale lease token (gen %d < adopted %d)", tokGen, r.Gen())
		}
		var conn *transport.Conn
		if err == nil {
			conn, err = transport.Dial(addr, 2*time.Second)
		}
		if err != nil {
			failures++
			if failures > 200 {
				r.err = fmt.Errorf("%w: group %d cannot reach a root: %v", ErrGroupFailed, r.cfg.Group, err)
				return
			}
			select {
			case <-r.stop:
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		gen, _, err := r.core.adopt(conn, 5*time.Second)
		if err != nil || gen < r.Gen() {
			// A handshake failure — or a zombie: a deposed root acking with
			// a generation below the one we already adopted.
			_ = conn.Close()
			failures++
			select {
			case <-r.stop:
			case <-time.After(50 * time.Millisecond):
			}
			continue
		}
		failures = 0
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			_ = conn.Close()
			r.err = ErrRunnerStopped
			return
		}
		r.up = conn
		r.adoptedGen = gen
		r.mu.Unlock()
		watchStop := make(chan struct{})
		if r.cfg.RootDir != "" {
			go r.watchToken(conn, gen, watchStop)
		}
		fatal := r.serve(conn, gen)
		close(watchStop)
		r.mu.Lock()
		if r.up == conn {
			r.up = nil
		}
		r.mu.Unlock()
		_ = conn.Close()
		if fatal {
			return
		}
	}
}

// watchToken polls the lease token while conn is the live uplink and closes
// it the moment a higher generation claims the root — the proactive defect
// that keeps a zombie root from holding this group hostage until TCP
// notices.
func (r *GroupRunner) watchToken(conn *transport.Conn, gen int, stop <-chan struct{}) {
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-r.stop:
			return
		case <-t.C:
			tok, err := ha.ReadToken(r.cfg.RootDir)
			if err == nil && tok.Gen > gen {
				_ = conn.Close()
				return
			}
		}
	}
}

// serve runs the adopted session: one group iteration per MsgParams (fenced
// by the adopted generation), uploads stamped with it, group snapshots on
// the journal cadence. Returns true when the loop must not re-adopt
// (shutdown, stop, unrecoverable failure); false re-enters the adoption
// loop.
func (r *GroupRunner) serve(conn *transport.Conn, gen int) (fatal bool) {
	var plan *elastic.Plan
	for {
		env, err := conn.Recv()
		if err != nil {
			if r.stopping() {
				r.err = ErrRunnerStopped
				return true
			}
			return false
		}
		switch env.Type {
		case transport.MsgShutdown:
			r.core.eng.Shutdown(true)
			return true
		case transport.MsgParams:
			if env.RootGen != gen {
				continue // a broadcast from a generation we did not adopt
			}
			// A freshly restarted runner may see params before its workers
			// have rejoined; give a plannable quorum (s+1 — the controller's
			// floor) one timeout to show up. Serving with a partial roster
			// beyond that is fine — the controller plans around it.
			if need := r.cfg.S + 1; r.core.eng.AliveCount() < need {
				_ = r.core.eng.WaitForMembers(need, r.cfg.IterTimeout)
			}
			sum, epoch, err := r.core.iteration(env.Iter, env.Vector, &plan)
			if err != nil {
				// Unlike the in-process master, an iteration failure is not
				// fatal to training: drop the uplink, re-adopt, let the root
				// resend. Bounded so a group that can never decode gives up.
				r.iterFailures++
				if r.iterFailures > r.cfg.MaxRetries+2 {
					r.err = err
					return true
				}
				return false
			}
			r.iterFailures = 0
			r.core.epochs = append(r.core.epochs, epoch)
			tmpl := transport.Envelope{Iter: env.Iter, Epoch: epoch, WorkerID: r.cfg.Group, RootGen: gen, Trace: env.Trace, Spans: r.core.uplinkSpans()}
			frames, err := transport.ChunkGradientQuant(tmpl, sum, r.cfg.ChunkLen, r.core.codec)
			if err != nil {
				grad.PutBuffer(sum)
				r.err = err
				return true
			}
			sendStart := time.Now()
			err = conn.SendBatch(frames)
			transport.ReleaseQuant(frames)
			grad.PutBuffer(sum)
			if err != nil {
				return false // uplink died mid-upload; re-adopt
			}
			r.core.noteUplink(time.Since(sendStart).Seconds())
			r.served++
			if r.store != nil && r.served%r.cfg.SnapshotEvery == 0 {
				_ = r.store.WriteSnapshot(r.snapshot())
			}
		}
	}
}
