// The per-group master: an elastic BSP master scoped to one coding group.
// It admits the group's workers over TCP with the elastic worker protocol,
// keeps a group-local control plane (its own elastic.Controller, its own
// epoch counter), migrates only its own workers on drift or churn, decodes
// the group's gradient sum with the shared decode-plan cache and kernels,
// and streams that sum to the root as one coalesced chunked batch per
// iteration.
//
// Membership, generation fencing, migration delivery and the epoch-fenced
// collect are delegated to internal/roster — the same engine behind the
// flat runtime.ElasticMaster — so a fencing fix lands once and is verified
// against both runtimes by the shared conformance suite.
package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/estimate"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/roster"
	"github.com/hetgc/hetgc/internal/transport"
)

// groupMaster runs one coding group.
type groupMaster struct {
	root *Root
	g    int
	eng  *roster.Engine
	up   *transport.Conn // uplink to the root (run loop is its only user)

	done chan struct{}

	// Run statistics (owned by the run loop; read after it exits).
	epochs   []int
	runStats roster.Stats
}

// newGroupMaster builds the group's control plane, starts its worker
// listener and dials the root. The roster engine's prior hook hands the
// controller the planned estimate of the group's workers in join order —
// workers are fungible processes, telemetry corrects the rest. Partition
// indices in assignments are global (the worker fetches data by global
// partition ID), so the engine translates through the group's partition
// slice and advertises the global K.
func newGroupMaster(r *Root, g int) (*groupMaster, error) {
	grp := r.plan.Groups[g]
	ctrl, err := elastic.NewController(elastic.Config{
		K: len(grp.Parts), S: r.cfg.S, Scheme: r.cfg.Scheme,
		Alpha: r.cfg.Alpha, DriftThreshold: r.cfg.DriftThreshold,
		MinObservations: r.cfg.MinObservations, CooldownIters: r.cfg.CooldownIters,
		InitialRate: r.cfg.InitialRate,
	}, rand.New(rand.NewSource(r.cfg.Seed+int64(g)+1)))
	if err != nil {
		return nil, fmt.Errorf("%w: group %d: %v", ErrBadConfig, g, err)
	}
	// Checkpoint resume: reserve the group's pre-crash member IDs (workers
	// rejoin them via ResumeID), restore them dead in the control plane with
	// the planned throughputs as priors, and raise the epoch base above
	// everything the journal recorded so stale pre-crash uploads are fenced.
	var recovered []int
	if st := r.resume; st != nil {
		if ids := st.GroupMembers[g]; len(ids) > 0 {
			cs := &elastic.ControllerState{LastReplan: -1}
			for i, id := range ids {
				prior := 0.0
				if i < len(grp.Workers) {
					prior = r.cfg.Throughputs[grp.Workers[i]]
				}
				cs.Members = append(cs.Members, elastic.MemberState{
					ID: id, Meter: estimate.MeterState{Prior: prior},
				})
			}
			if err := ctrl.Restore(cs); err != nil {
				return nil, fmt.Errorf("%w: group %d: %v", ErrBadConfig, g, err)
			}
			recovered = ids
		}
		if e, ok := st.GroupEpochs[g]; ok {
			ctrl.SetEpochBase(e + 1)
		}
	}
	var rec roster.Recorder
	if r.store != nil {
		rec = r.store.GroupRecorder(g)
	}
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	eng, err := roster.New(roster.Config{
		Controller:   ctrl,
		WriteTimeout: r.cfg.IterTimeout,
		InboxSize:    2*len(grp.Workers) + 8,
		K:            r.cfg.K, // global K: partition IDs are global
		S:            r.cfg.S,
		PartitionMap: grp.Parts,
		Recovered:    recovered,
		Recorder:     rec,
		Prior: func(joinSeq int) float64 {
			if joinSeq < len(grp.Workers) {
				return r.cfg.Throughputs[grp.Workers[joinSeq]]
			}
			return 0
		},
	}, lis)
	if err != nil {
		_ = lis.Close()
		return nil, fmt.Errorf("%w: group %d: %v", ErrBadConfig, g, err)
	}
	up, err := transport.Dial(r.lis.Addr(), 10*time.Second)
	if err != nil {
		eng.Shutdown(false)
		return nil, err
	}
	if err := up.Send(&transport.Envelope{Type: transport.MsgHello, WorkerID: g}); err != nil {
		eng.Shutdown(false)
		_ = up.Close()
		return nil, err
	}
	gm := &groupMaster{
		root: r,
		g:    g,
		eng:  eng,
		up:   up,
		done: make(chan struct{}),
	}
	go gm.run()
	return gm, nil
}

// addr returns the group's worker listen address.
func (gm *groupMaster) addr() string { return gm.eng.Addr() }

// waitForWorkers blocks until the group's planned worker count has joined.
func (gm *groupMaster) waitForWorkers(timeout time.Duration) error {
	want := len(gm.root.plan.Groups[gm.g].Workers)
	if err := gm.eng.WaitForMembers(want, timeout); err != nil {
		return fmt.Errorf("%w: group %d: %v", ErrGroupFailed, gm.g, err)
	}
	return nil
}

// migrate builds the group's next epoch and delivers (epoch, assignment) to
// every member of it via the roster engine.
func (gm *groupMaster) migrate(iter int, reason string) (*elastic.Plan, error) {
	plan, err := gm.eng.Migrate(iter, reason)
	if err != nil {
		return nil, fmt.Errorf("%w: group %d: %v", ErrGroupFailed, gm.g, err)
	}
	return plan, nil
}

// run is the group master's main loop: it serves root broadcasts until
// shutdown, running one epoch-fenced group iteration per MsgParams and
// answering with the group's decoded sum as a single coalesced batch of
// chunks.
func (gm *groupMaster) run() {
	defer close(gm.done)
	var plan *elastic.Plan
	for {
		env, err := gm.up.Recv()
		if err != nil {
			gm.fatal(fmt.Errorf("group %d uplink: %w", gm.g, err))
			return
		}
		switch env.Type {
		case transport.MsgShutdown:
			gm.shutdown(true)
			return
		case transport.MsgParams:
			sum, epoch, err := gm.iteration(env.Iter, env.Vector, &plan)
			if err != nil {
				gm.fatal(err)
				return
			}
			gm.epochs = append(gm.epochs, epoch)
			tmpl := transport.Envelope{Iter: env.Iter, Epoch: epoch, WorkerID: gm.g}
			frames := transport.ChunkGradient(tmpl, sum, gm.root.cfg.ChunkLen)
			err = gm.up.SendBatch(frames)
			grad.PutBuffer(sum)
			if err != nil {
				gm.fatal(fmt.Errorf("group %d upload: %w", gm.g, err))
				return
			}
		}
	}
}

// iteration runs one group BSP iteration and returns the group's gradient
// sum (a pooled buffer the caller must PutBuffer) and the epoch it decoded
// under. Timeouts and fatal deaths force a group-local migration and a
// retry, bounded by MaxRetries.
func (gm *groupMaster) iteration(iter int, params []float64, planRef **elastic.Plan) (grad.Gradient, int, error) {
	cfg := &gm.root.cfg
	dim := len(params)
	if replan, reason := gm.eng.ShouldReplan(iter); replan {
		p, err := gm.migrate(iter, reason)
		if err != nil {
			return nil, 0, err
		}
		*planRef = p
	}
	retries := 0
	for {
		plan := *planRef
		gm.eng.BroadcastParams(plan, iter, params)
		coeffs, coded, ok := gm.eng.Collect(plan, iter, dim, cfg.IterTimeout, &gm.runStats)
		if ok {
			sum := grad.GetBuffer(dim)
			if err := grad.CombineInto(sum, coeffs, coded); err != nil {
				grad.PutBuffer(sum)
				return nil, 0, fmt.Errorf("group %d iter %d combine: %w", gm.g, iter, err)
			}
			return sum, plan.Epoch, nil
		}
		// The epoch cannot complete: group-local migrate + retry.
		retries++
		if retries > cfg.MaxRetries {
			return nil, 0, fmt.Errorf("%w: group %d iteration %d undecodable after %d migrations", ErrGroupFailed, gm.g, iter, retries-1)
		}
		p, err := gm.migrate(iter, "churn")
		if err != nil {
			return nil, 0, err
		}
		*planRef = p
	}
}

// fatal reports the error to the root and tears the group down (closing the
// uplink so the root's reader notices). It runs on the run-loop goroutine,
// so the graceful shutdown frames cannot race the loop's own sends.
func (gm *groupMaster) fatal(err error) {
	select {
	case gm.root.err <- err:
	default:
	}
	gm.shutdown(true)
}

// shutdown stops the group's workers and the uplink. graceful sends each
// worker a MsgShutdown frame first — only the run-loop goroutine may do
// that, because it is the connections' single writer; Root.Close runs
// concurrently with the loop and must close the connections cold instead.
func (gm *groupMaster) shutdown(graceful bool) {
	gm.eng.Shutdown(graceful)
	_ = gm.up.Close()
}

// close tears the group down from outside the run loop (Root.Close): no
// shutdown frames — closing a connection concurrently with its writer is
// safe, writing to it is not.
func (gm *groupMaster) close() {
	gm.shutdown(false)
}

// waitDone blocks until the run loop exited.
func (gm *groupMaster) waitDone() { <-gm.done }

// groupState summarises the group's durable state for a snapshot: its
// highest plan epoch and every member ID it admitted.
func (gm *groupMaster) groupState() checkpoint.GroupState {
	gs := checkpoint.GroupState{Group: gm.g, Epoch: gm.eng.Epoch()}
	for _, ms := range gm.eng.ControllerState().Members {
		gs.Members = append(gs.Members, ms.ID)
	}
	sort.Ints(gs.Members)
	return gs
}

// stats snapshots the group's counters after the run completed.
func (gm *groupMaster) stats() GroupStats {
	return GroupStats{
		Group:              gm.g,
		Workers:            len(gm.root.plan.Groups[gm.g].Workers),
		Epochs:             append([]int(nil), gm.epochs...),
		Replans:            gm.eng.Events(),
		StaleEpochRejected: gm.runStats.StaleEpochRejected,
		StaleConnRejected:  gm.runStats.StaleConnRejected,
		StragglersSkipped:  gm.runStats.StragglersSkipped,
		MalformedSkipped:   gm.runStats.MalformedSkipped,
		TelemetrySamples:   gm.runStats.TelemetrySamples,
		Joins:              gm.eng.Joins(),
		Deaths:             gm.eng.Deaths(),
	}
}
