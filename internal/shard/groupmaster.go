// The per-group master: an elastic BSP master scoped to one coding group.
// It admits the group's workers over TCP with the elastic worker protocol,
// keeps a group-local control plane (its own elastic.Controller, its own
// epoch counter), migrates only its own workers on drift or churn, decodes
// the group's gradient sum with the shared decode-plan cache and kernels,
// and streams that sum to the root as one coalesced chunked batch per
// iteration.
package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/transport"
)

type gmMember struct {
	id    int
	conn  *transport.Conn
	alive bool
	// gen counts reconnects; frames and death reports from a superseded
	// connection generation are fenced out.
	gen int
}

type gmMsg struct {
	memberID  int
	gen       int
	env       *transport.Envelope
	err       error
	malformed bool
}

// groupMaster runs one coding group.
type groupMaster struct {
	root  *Root
	g     int
	lis   *transport.Listener
	ctrl  *elastic.Controller
	up    *transport.Conn // uplink to the root (run loop is its only user)
	inbox chan gmMsg

	mu      sync.Mutex
	members map[int]*gmMember
	nextID  int
	joinSeq int

	joined    chan struct{}
	stop      chan struct{}
	readers   sync.WaitGroup
	accept    sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once

	// Run statistics (owned by the run loop except where noted).
	epochs             []int
	staleEpochRejected int
	stragglersSkipped  int
	malformedSkipped   int
	telemetrySamples   int
}

// newGroupMaster builds the group's control plane, starts its worker
// listener and dials the root.
func newGroupMaster(r *Root, g int) (*groupMaster, error) {
	grp := r.plan.Groups[g]
	ctrl, err := elastic.NewController(elastic.Config{
		K: len(grp.Parts), S: r.cfg.S, Scheme: r.cfg.Scheme,
		Alpha: r.cfg.Alpha, DriftThreshold: r.cfg.DriftThreshold,
		MinObservations: r.cfg.MinObservations, CooldownIters: r.cfg.CooldownIters,
		InitialRate: r.cfg.InitialRate,
	}, rand.New(rand.NewSource(r.cfg.Seed+int64(g)+1)))
	if err != nil {
		return nil, fmt.Errorf("%w: group %d: %v", ErrBadConfig, g, err)
	}
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	up, err := transport.Dial(r.lis.Addr(), 10*time.Second)
	if err != nil {
		_ = lis.Close()
		return nil, err
	}
	if err := up.Send(&transport.Envelope{Type: transport.MsgHello, WorkerID: g}); err != nil {
		_ = lis.Close()
		_ = up.Close()
		return nil, err
	}
	gm := &groupMaster{
		root:    r,
		g:       g,
		lis:     lis,
		ctrl:    ctrl,
		up:      up,
		inbox:   make(chan gmMsg, 2*len(grp.Workers)+8),
		members: make(map[int]*gmMember),
		nextID:  1,
		joined:  make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	gm.accept.Add(1)
	go gm.acceptLoop()
	go gm.run()
	return gm, nil
}

// acceptLoop admits the group's workers for the lifetime of the run.
func (gm *groupMaster) acceptLoop() {
	defer gm.accept.Done()
	for {
		conn, err := gm.lis.Accept()
		if err != nil {
			return
		}
		gm.accept.Add(1)
		go func() {
			defer gm.accept.Done()
			gm.handshake(conn)
		}()
	}
}

// handshake resolves a dialing worker's member identity (fresh join or
// rejoin via ResumeID) and registers it with the group's control plane. The
// prior throughput estimate is the planned estimate of the group's workers
// in join order — workers are fungible processes, telemetry corrects the
// rest.
func (gm *groupMaster) handshake(conn *transport.Conn) {
	_ = conn.SetDeadline(time.Now().Add(10 * time.Second))
	hello, err := conn.Recv()
	if err != nil || hello.Type != transport.MsgHello {
		_ = conn.Close()
		return
	}
	grp := gm.root.plan.Groups[gm.g]
	gm.mu.Lock()
	id, gen := 0, 0
	if prev, ok := gm.members[hello.WorkerID]; ok && !prev.alive {
		id = hello.WorkerID
		_ = prev.conn.Close()
		prev.conn = conn
		prev.alive = true
		prev.gen++
		gen = prev.gen
	} else {
		id = gm.nextID
		gm.nextID++
		gm.members[id] = &gmMember{id: id, conn: conn, alive: true}
	}
	prior := 0.0
	if gm.joinSeq < len(grp.Workers) {
		prior = gm.root.cfg.Throughputs[grp.Workers[gm.joinSeq]]
	}
	gm.joinSeq++
	gm.ctrl.AddMember(id, prior)
	ack := &transport.Envelope{Type: transport.MsgHello, WorkerID: id}
	if err := conn.Send(ack); err != nil {
		member := gm.members[id]
		member.alive = false
		gm.ctrl.RemoveMember(id)
		gm.mu.Unlock()
		_ = conn.Close()
		return
	}
	gm.mu.Unlock()
	_ = conn.SetDeadline(time.Time{})

	select {
	case gm.joined <- struct{}{}:
	default:
	}
	gm.readers.Add(1)
	go gm.readLoop(id, gen, conn)
}

// readLoop feeds one worker connection generation into the shared inbox.
func (gm *groupMaster) readLoop(id, gen int, conn *transport.Conn) {
	defer gm.readers.Done()
	for {
		env, err := conn.Recv()
		if err != nil {
			if errors.Is(err, transport.ErrMalformed) {
				select {
				case gm.inbox <- gmMsg{memberID: id, gen: gen, malformed: true}:
				case <-gm.stop:
					return
				}
				continue
			}
			select {
			case gm.inbox <- gmMsg{memberID: id, gen: gen, err: err}:
			case <-gm.stop:
			}
			return
		}
		switch env.Type {
		case transport.MsgGradient, transport.MsgTelemetry:
			select {
			case gm.inbox <- gmMsg{memberID: id, gen: gen, env: env}:
			case <-gm.stop:
				return
			}
		}
	}
}

// waitForWorkers blocks until the group's planned worker count has joined.
func (gm *groupMaster) waitForWorkers(timeout time.Duration) error {
	want := len(gm.root.plan.Groups[gm.g].Workers)
	deadline := time.After(timeout)
	for {
		gm.mu.Lock()
		n := len(gm.ctrl.AliveMembers())
		gm.mu.Unlock()
		if n >= want {
			return nil
		}
		select {
		case <-gm.joined:
		case <-deadline:
			return fmt.Errorf("%w: group %d has %d of %d workers", ErrGroupFailed, gm.g, n, want)
		}
	}
}

// sendTo writes one envelope under a write deadline.
func (gm *groupMaster) sendTo(conn *transport.Conn, env *transport.Envelope) error {
	_ = conn.SetWriteDeadline(time.Now().Add(gm.root.cfg.IterTimeout))
	err := conn.Send(env)
	_ = conn.SetWriteDeadline(time.Time{})
	return err
}

// noteDeath marks a member dead if the report is from its live generation.
func (gm *groupMaster) noteDeath(id, gen int) {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	if m, ok := gm.members[id]; ok && m.alive && m.gen == gen {
		m.alive = false
		gm.ctrl.RemoveMember(id)
	}
}

// migrate builds the group's next epoch and delivers (epoch, assignment) to
// every member of it. Partition indices in assignments are global (the
// worker fetches data by global partition ID); coefficients come from the
// group strategy's local rows.
func (gm *groupMaster) migrate(iter int, reason string) (*elastic.Plan, error) {
	grp := gm.root.plan.Groups[gm.g]
	for attempt := 0; ; attempt++ {
		gm.mu.Lock()
		total := len(gm.members)
		var plan *elastic.Plan
		var err error
		if attempt <= total+1 {
			plan, err = gm.ctrl.Replan(iter, reason)
		}
		gm.mu.Unlock()
		if attempt > total+1 {
			return nil, fmt.Errorf("%w: group %d: no stable membership after %d attempts", ErrGroupFailed, gm.g, attempt)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: group %d: %v", ErrGroupFailed, gm.g, err)
		}
		alloc := plan.Strategy.Allocation()
		failed := false
		for slot, id := range plan.Members {
			gm.mu.Lock()
			member := gm.members[id]
			conn, gen := member.conn, member.gen
			gm.mu.Unlock()
			row := plan.Strategy.Row(slot)
			localParts := alloc.Parts[slot]
			parts := make([]int, len(localParts))
			coeffs := make([]float64, len(localParts))
			for i, p := range localParts {
				parts[i] = grp.Parts[p] // local → global partition ID
				coeffs[i] = row[p]
			}
			env := &transport.Envelope{
				Type:  transport.MsgReassign,
				Epoch: plan.Epoch,
				Assign: &transport.Assignment{
					WorkerID:   slot,
					Partitions: parts,
					RowCoeffs:  coeffs,
					K:          gm.root.cfg.K, // global K: partition IDs are global
					S:          gm.root.cfg.S,
				},
			}
			if err := gm.sendTo(conn, env); err != nil {
				gm.noteDeath(id, gen)
				failed = true
			}
		}
		if !failed {
			return plan, nil
		}
		reason = "churn"
	}
}

// run is the group master's main loop: it serves root broadcasts until
// shutdown, running one epoch-fenced group iteration per MsgParams and
// answering with the group's decoded sum as a single coalesced batch of
// chunks.
func (gm *groupMaster) run() {
	defer close(gm.done)
	var plan *elastic.Plan
	for {
		env, err := gm.up.Recv()
		if err != nil {
			gm.fatal(fmt.Errorf("group %d uplink: %w", gm.g, err))
			return
		}
		switch env.Type {
		case transport.MsgShutdown:
			gm.shutdown(true)
			return
		case transport.MsgParams:
			sum, epoch, err := gm.iteration(env.Iter, env.Vector, &plan)
			if err != nil {
				gm.fatal(err)
				return
			}
			gm.epochs = append(gm.epochs, epoch)
			tmpl := transport.Envelope{Iter: env.Iter, Epoch: epoch, WorkerID: gm.g}
			frames := transport.ChunkGradient(tmpl, sum, gm.root.cfg.ChunkLen)
			err = gm.up.SendBatch(frames)
			grad.PutBuffer(sum)
			if err != nil {
				gm.fatal(fmt.Errorf("group %d upload: %w", gm.g, err))
				return
			}
		}
	}
}

// iteration runs one group BSP iteration and returns the group's gradient
// sum (a pooled buffer the caller must PutBuffer) and the epoch it decoded
// under. Timeouts and fatal deaths force a group-local migration and a
// retry, bounded by MaxRetries.
func (gm *groupMaster) iteration(iter int, params []float64, planRef **elastic.Plan) (grad.Gradient, int, error) {
	cfg := &gm.root.cfg
	dim := len(params)
	gm.mu.Lock()
	replan, reason := gm.ctrl.ShouldReplan(iter)
	gm.mu.Unlock()
	if replan {
		p, err := gm.migrate(iter, reason)
		if err != nil {
			return nil, 0, err
		}
		*planRef = p
	}
	retries := 0
	for {
		plan := *planRef
		m := plan.Strategy.M()
		for _, id := range plan.Members {
			gm.mu.Lock()
			member := gm.members[id]
			conn, live, gen := member.conn, member.alive, member.gen
			gm.mu.Unlock()
			if !live {
				continue
			}
			env := &transport.Envelope{Type: transport.MsgParams, Iter: iter, Epoch: plan.Epoch, Vector: params}
			if err := gm.sendTo(conn, env); err != nil {
				gm.noteDeath(id, gen)
			}
		}
		coded := make([]grad.Gradient, m)
		alive := make([]bool, m)
		var coeffs []float64
		viable := gm.epochViable(plan, alive)
		if viable {
			deadline := time.NewTimer(cfg.IterTimeout)
		collect:
			for coeffs == nil {
				select {
				case msg := <-gm.inbox:
					if msg.malformed {
						gm.malformedSkipped++
						continue
					}
					if msg.err != nil {
						gm.noteDeath(msg.memberID, msg.gen)
						if !gm.epochViable(plan, alive) {
							break collect
						}
						continue
					}
					env := msg.env
					switch env.Type {
					case transport.MsgTelemetry:
						if env.Telemetry != nil && env.Telemetry.Partitions > 0 && env.Telemetry.ComputeSeconds > 0 {
							gm.mu.Lock()
							err := gm.ctrl.Observe(msg.memberID, env.Telemetry.Partitions, env.Telemetry.ComputeSeconds)
							gm.mu.Unlock()
							if err == nil {
								gm.telemetrySamples++
							}
						}
					case transport.MsgGradient:
						if env.Epoch != plan.Epoch {
							gm.staleEpochRejected++
							continue
						}
						if env.Iter != iter {
							gm.stragglersSkipped++
							continue
						}
						slot := plan.SlotOf(msg.memberID)
						if slot < 0 {
							gm.stragglersSkipped++
							continue
						}
						if len(env.Vector) != dim || grad.InfOrNaN(env.Vector) {
							gm.malformedSkipped++
							continue
						}
						coded[slot] = env.Vector
						alive[slot] = true
						if cs, err := plan.Strategy.Decode(alive); err == nil {
							coeffs = cs
						}
					}
				case <-deadline.C:
					break collect
				}
			}
			deadline.Stop()
		}
		if coeffs != nil {
			sum := grad.GetBuffer(dim)
			if err := grad.CombineInto(sum, coeffs, coded); err != nil {
				grad.PutBuffer(sum)
				return nil, 0, fmt.Errorf("group %d iter %d combine: %w", gm.g, iter, err)
			}
			return sum, plan.Epoch, nil
		}
		// The epoch cannot complete: group-local migrate + retry.
		retries++
		if retries > cfg.MaxRetries {
			return nil, 0, fmt.Errorf("%w: group %d iteration %d undecodable after %d migrations", ErrGroupFailed, gm.g, iter, retries-1)
		}
		p, err := gm.migrate(iter, "churn")
		if err != nil {
			return nil, 0, err
		}
		*planRef = p
	}
}

// epochViable reports whether the plan can still decode if every live plan
// member eventually uploads.
func (gm *groupMaster) epochViable(plan *elastic.Plan, arrived []bool) bool {
	mask := make([]bool, len(plan.Members))
	gm.mu.Lock()
	for slot, id := range plan.Members {
		m, ok := gm.members[id]
		mask[slot] = arrived[slot] || (ok && m.alive)
	}
	gm.mu.Unlock()
	return plan.Strategy.CanDecode(mask)
}

// fatal reports the error to the root and tears the group down (closing the
// uplink so the root's reader notices). It runs on the run-loop goroutine,
// so the graceful shutdown frames cannot race the loop's own sends.
func (gm *groupMaster) fatal(err error) {
	select {
	case gm.root.err <- err:
	default:
	}
	gm.shutdown(true)
}

// shutdown stops the group's workers and the uplink. graceful sends each
// worker a MsgShutdown frame first — only the run-loop goroutine may do
// that, because it is the connections' single writer; Root.Close runs
// concurrently with the loop and must close the connections cold instead.
func (gm *groupMaster) shutdown(graceful bool) {
	gm.closeOnce.Do(func() {
		gm.mu.Lock()
		if graceful {
			for _, m := range gm.members {
				if m.alive {
					_ = m.conn.SetWriteDeadline(time.Now().Add(time.Second))
					_ = m.conn.Send(&transport.Envelope{Type: transport.MsgShutdown})
				}
			}
		}
		for _, m := range gm.members {
			_ = m.conn.Close()
		}
		gm.mu.Unlock()
		_ = gm.lis.Close()
		gm.accept.Wait()
		gm.mu.Lock()
		for _, m := range gm.members {
			_ = m.conn.Close()
		}
		gm.mu.Unlock()
		close(gm.stop)
		done := make(chan struct{})
		go func() {
			gm.readers.Wait()
			close(done)
		}()
		for {
			select {
			case <-gm.inbox:
			case <-done:
				_ = gm.up.Close()
				return
			}
		}
	})
}

// close tears the group down from outside the run loop (Root.Close): no
// shutdown frames — closing a connection concurrently with its writer is
// safe, writing to it is not.
func (gm *groupMaster) close() {
	gm.shutdown(false)
}

// waitDone blocks until the run loop exited.
func (gm *groupMaster) waitDone() { <-gm.done }

// stats snapshots the group's counters after the run completed.
func (gm *groupMaster) stats() GroupStats {
	gm.mu.Lock()
	defer gm.mu.Unlock()
	return GroupStats{
		Group:              gm.g,
		Workers:            len(gm.root.plan.Groups[gm.g].Workers),
		Epochs:             append([]int(nil), gm.epochs...),
		Replans:            gm.ctrl.Events(),
		StaleEpochRejected: gm.staleEpochRejected,
		StragglersSkipped:  gm.stragglersSkipped,
		MalformedSkipped:   gm.malformedSkipped,
		TelemetrySamples:   gm.telemetrySamples,
	}
}
