// The per-group master: an elastic BSP master scoped to one coding group.
// It admits the group's workers over TCP with the elastic worker protocol,
// keeps a group-local control plane (its own elastic.Controller, its own
// epoch counter), migrates only its own workers on drift or churn, decodes
// the group's gradient sum with the shared decode-plan cache and kernels,
// and streams that sum to the root as one coalesced chunked batch per
// iteration.
//
// Membership, generation fencing, migration delivery and the epoch-fenced
// collect are delegated to internal/roster — the same engine behind the
// flat runtime.ElasticMaster — so a fencing fix lands once and is verified
// against both runtimes by the shared conformance suite.
//
// Two deployments share this file's core. The in-process groupMaster is
// spawned by NewRoot and lives and dies with the root. The out-of-process
// GroupRunner (runner.go) wraps the same core in an adoption loop so the
// group survives root restarts and can itself be restarted from its own
// journal.
package shard

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"github.com/hetgc/hetgc/internal/checkpoint"
	"github.com/hetgc/hetgc/internal/dataplane"
	"github.com/hetgc/hetgc/internal/elastic"
	"github.com/hetgc/hetgc/internal/estimate"
	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/roster"
	"github.com/hetgc/hetgc/internal/transport"
)

// groupCore is the group BSP machinery shared by the in-process groupMaster
// and the restartable GroupRunner: one roster engine plus the epoch-fenced
// iterate/migrate/retry policy.
type groupCore struct {
	eng         *roster.Engine
	g           int
	iterTimeout time.Duration
	maxRetries  int
	obs         *obs.Metrics
	codec       grad.Codec // uplink codec negotiated at the last adoption

	// Run statistics (owned by the serving goroutine; read after it exits).
	epochs   []int
	runStats roster.Stats
	cache    obs.CacheTracker

	// Group-level phase spans of the last completed iteration, echoed on the
	// uplink's final chunk so the root stitches group children into its
	// trace (owned by the serving goroutine). lastUpSec (Float64bits) is the
	// previous uplink send's duration — the in-process master sends from a
	// dedicated uploader goroutine, hence atomic.
	lastSpans []transport.PhaseSpan
	lastUpSec atomic.Uint64
}

// migrate builds the group's next epoch and delivers (epoch, assignment) to
// every member of it via the roster engine.
func (gc *groupCore) migrate(iter int, reason string) (*elastic.Plan, error) {
	plan, err := gc.eng.Migrate(iter, reason)
	if err != nil {
		return nil, fmt.Errorf("%w: group %d: %v", ErrGroupFailed, gc.g, err)
	}
	return plan, nil
}

// iteration runs one group BSP iteration and returns the group's gradient
// sum (a pooled buffer the caller must PutBuffer) and the epoch it decoded
// under. Timeouts and fatal deaths force a group-local migration and a
// retry, bounded by maxRetries.
func (gc *groupCore) iteration(iter int, params []float64, planRef **elastic.Plan) (grad.Gradient, int, error) {
	dim := len(params)
	if replan, reason := gc.eng.ShouldReplan(iter); replan {
		p, err := gc.migrate(iter, reason)
		if err != nil {
			return nil, 0, err
		}
		*planRef = p
	}
	if *planRef == nil {
		// A session that starts without a plan — a runner re-adopting after
		// an uplink loss — must migrate before it can broadcast: the fresh
		// plan also lands above any epoch floor raised by the adoption ack.
		p, err := gc.migrate(iter, "adopt")
		if err != nil {
			return nil, 0, err
		}
		*planRef = p
	}
	retries := 0
	iterStart := time.Now()
	for {
		plan := *planRef
		gc.eng.BroadcastParams(plan, iter, params)
		coeffs, coded, ok := gc.eng.Collect(plan, iter, dim, gc.iterTimeout, &gc.runStats)
		if ok {
			// The group's worker child spans feed the attribution families
			// directly (the root's trace children are the groups themselves;
			// worker-level detail lives in the group-labeled metrics).
			for _, ms := range gc.eng.TakeContribs(iter) {
				gc.obs.OnMemberSpan(ms)
			}
			collectSec := time.Since(iterStart).Seconds()
			combineStart := time.Now()
			sum := grad.GetBuffer(dim)
			if err := grad.CombineInto(sum, coeffs, coded); err != nil {
				grad.PutBuffer(sum)
				return nil, 0, fmt.Errorf("group %d iter %d combine: %w", gc.g, iter, err)
			}
			// Group-level spans for the uplink echo: the gather (the group's
			// workers computing and uploading) reads as compute, the combine
			// as encode — the same span family workers report, so one trace
			// view renders both tiers.
			gc.lastSpans = []transport.PhaseSpan{
				{Phase: obs.PhaseCompute, Seconds: collectSec},
				{Phase: obs.PhaseEncode, Seconds: time.Since(combineStart).Seconds()},
			}
			if gc.obs != nil {
				cs := plan.Strategy.DecodeCacheStats()
				gc.cache.Fold(gc.obs, plan.Strategy, cs.Hits, cs.Misses)
			}
			return sum, plan.Epoch, nil
		}
		// The epoch cannot complete: group-local migrate + retry.
		retries++
		if retries > gc.maxRetries {
			return nil, 0, fmt.Errorf("%w: group %d iteration %d undecodable after %d migrations", ErrGroupFailed, gc.g, iter, retries-1)
		}
		p, err := gc.migrate(iter, "churn")
		if err != nil {
			return nil, 0, err
		}
		*planRef = p
	}
}

// uplinkSpans assembles the phase spans echoed on the group's uplink: the
// last iteration's group-level spans plus the PREVIOUS upload's send
// duration (a sender cannot time its own in-flight upload).
func (gc *groupCore) uplinkSpans() []transport.PhaseSpan {
	spans := append([]transport.PhaseSpan(nil), gc.lastSpans...)
	if prev := math.Float64frombits(gc.lastUpSec.Load()); prev > 0 {
		spans = append(spans, transport.PhaseSpan{Phase: obs.PhaseUpload, Seconds: prev})
	}
	return spans
}

// noteUplink records one uplink send's duration for the next iteration's
// upload span.
func (gc *groupCore) noteUplink(seconds float64) {
	gc.lastUpSec.Store(math.Float64bits(seconds))
}

// adopt performs the group side of the adoption handshake on a freshly
// dialed root connection: it announces the group's live epoch and members,
// and applies the root's reply — the epoch floor the root recorded for this
// group (reconciled into the controller so post-adoption plans fence every
// pre-adoption upload) and the root's lease generation. It returns the
// adopted generation and the iteration the root will serve next.
func (gc *groupCore) adopt(conn *transport.Conn, timeout time.Duration) (gen, nextIter int, err error) {
	members := gc.eng.MemberIDs()
	epoch := gc.eng.Epoch()
	if epoch < -1 {
		epoch = -1
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	advertised := grad.AdvertiseCodecs()
	err = conn.Send(&transport.Envelope{
		Type:   transport.MsgAdopt,
		Codecs: advertised,
		Adopt:  &transport.Adoption{Group: gc.g, Epoch: epoch, Members: members},
	})
	if err != nil {
		return 0, 0, fmt.Errorf("group %d adoption: %w", gc.g, err)
	}
	ack, err := conn.Recv()
	if err != nil {
		return 0, 0, fmt.Errorf("group %d adoption ack: %w", gc.g, err)
	}
	if ack.Type != transport.MsgAdopt || ack.Adopt == nil || ack.Adopt.Group != gc.g {
		return 0, 0, fmt.Errorf("%w: group %d: bad adoption ack %v", ErrBadConfig, gc.g, ack.Type)
	}
	// Honor the root's chosen uplink codec only if we advertised it — an old
	// root's zero value (or a bogus byte) means raw.
	gc.codec = grad.CodecRaw
	if c := grad.Codec(ack.Codec); c != grad.CodecRaw && c.Valid() {
		for _, adv := range advertised {
			if adv == ack.Codec {
				gc.codec = c
				break
			}
		}
	}
	gc.eng.RaiseEpochBase(ack.Adopt.Epoch + 1)
	gc.eng.SetRootGen(ack.RootGen)
	return ack.RootGen, ack.Iter, nil
}

// coreState summarises the group's durable state: its highest plan epoch,
// every member ID it admitted, and the live control-plane state (throughput
// estimates), so a resumed or promoted root re-plans from real history.
func (gc *groupCore) coreState() checkpoint.GroupState {
	gs := checkpoint.GroupState{Group: gc.g, Epoch: gc.eng.Epoch(), Ctrl: gc.eng.ControllerState()}
	for _, ms := range gs.Ctrl.Members {
		gs.Members = append(gs.Members, ms.ID)
	}
	sort.Ints(gs.Members)
	return gs
}

// coreStats snapshots the group's counters after the serving loop exited.
func (gc *groupCore) coreStats(workers int) GroupStats {
	return GroupStats{
		Group:              gc.g,
		Workers:            workers,
		Epochs:             append([]int(nil), gc.epochs...),
		Replans:            gc.eng.Events(),
		StaleEpochRejected: gc.runStats.StaleEpochRejected,
		StaleConnRejected:  gc.runStats.StaleConnRejected,
		StragglersSkipped:  gc.runStats.StragglersSkipped,
		MalformedSkipped:   gc.runStats.MalformedSkipped,
		FencedRejected:     gc.runStats.FencedRejected,
		TelemetrySamples:   gc.runStats.TelemetrySamples,
		Joins:              gc.eng.Joins(),
		Deaths:             gc.eng.Deaths(),
	}
}

// buildGroupController constructs (and, on resume, restores) one group's
// control plane. Recovery precedence: a snapshot-carried controller state —
// real throughput history — wins over the planned-throughput priors derived
// from member IDs alone. Every restored member starts dead (its connection
// died with the previous incarnation) and the epoch base is raised above
// everything the journal recorded.
func buildGroupController(cfg *Config, grp *Group, g int, ctrlState *elastic.ControllerState, memberIDs []int, epochFloor int, has bool) (*elastic.Controller, []int, error) {
	ctrl, err := elastic.NewController(elastic.Config{
		K: len(grp.Parts), S: cfg.S, Scheme: cfg.Scheme,
		Alpha: cfg.Alpha, DriftThreshold: cfg.DriftThreshold,
		MinObservations: cfg.MinObservations, CooldownIters: cfg.CooldownIters,
		InitialRate: cfg.InitialRate,
	}, rand.New(rand.NewSource(cfg.Seed+int64(g)+1)))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: group %d: %v", ErrBadConfig, g, err)
	}
	var recovered []int
	switch {
	case ctrlState != nil && len(ctrlState.Members) > 0:
		cs := &elastic.ControllerState{LastReplan: -1, Events: ctrlState.Events}
		seen := make(map[int]bool)
		for _, ms := range ctrlState.Members {
			ms.Alive = false
			cs.Members = append(cs.Members, ms)
			seen[ms.ID] = true
			recovered = append(recovered, ms.ID)
		}
		// Journal-only joiners (admitted after the snapshot) follow with cold
		// priors.
		for _, id := range memberIDs {
			if !seen[id] {
				cs.Members = append(cs.Members, elastic.MemberState{ID: id})
				recovered = append(recovered, id)
			}
		}
		if err := ctrl.Restore(cs); err != nil {
			return nil, nil, fmt.Errorf("%w: group %d: %v", ErrBadConfig, g, err)
		}
	case len(memberIDs) > 0:
		cs := &elastic.ControllerState{LastReplan: -1}
		for i, id := range memberIDs {
			prior := 0.0
			if i < len(grp.Workers) {
				prior = cfg.Throughputs[grp.Workers[i]]
			}
			cs.Members = append(cs.Members, elastic.MemberState{
				ID: id, Meter: estimate.MeterState{Prior: prior},
			})
		}
		if err := ctrl.Restore(cs); err != nil {
			return nil, nil, fmt.Errorf("%w: group %d: %v", ErrBadConfig, g, err)
		}
		recovered = memberIDs
	}
	if has {
		ctrl.SetEpochBase(epochFloor + 1)
	}
	sort.Ints(recovered)
	return ctrl, recovered, nil
}

// newGroupEngine builds the roster engine for one group on lis. Partition
// indices in assignments are global (the worker fetches data by global
// partition ID), so the engine translates through the group's partition
// slice and advertises the global K.
func newGroupEngine(cfg *Config, grp *Group, g int, ctrl *elastic.Controller, recovered []int, rec roster.Recorder, lis *transport.Listener) (*roster.Engine, error) {
	codec, _ := cfg.wireCodec() // validated with the rest of the config
	rcfg := roster.Config{
		Controller:   ctrl,
		WriteTimeout: cfg.IterTimeout,
		InboxSize:    2*len(grp.Workers) + 8,
		K:            cfg.K, // global K: partition IDs are global
		S:            cfg.S,
		Codec:        byte(codec),
		PartitionMap: grp.Parts,
		Recovered:    recovered,
		Recorder:     rec,
		Obs:          cfg.Obs,
		ObsGroup:     g,
		Prior: func(joinSeq int) float64 {
			if joinSeq < len(grp.Workers) {
				return cfg.Throughputs[grp.Workers[joinSeq]]
			}
			return 0
		},
	}
	if cfg.PartitionSource != nil {
		// The group master doubles as its workers' data plane. Partition
		// indices are global, so the root-wide source serves every group;
		// each engine caches only the blobs its own workers request.
		rcfg.PartitionBlob = dataplane.NewSource(cfg.PartitionSource, cfg.K).Blob
	}
	eng, err := roster.New(rcfg, lis)
	if err != nil {
		_ = lis.Close()
		return nil, fmt.Errorf("%w: group %d: %v", ErrBadConfig, g, err)
	}
	return eng, nil
}

// groupMaster runs one coding group in-process, under the root that spawned
// it.
type groupMaster struct {
	groupCore
	root    *Root
	up      *transport.Conn // uplink to the root (run loop is its only user)
	rootGen int             // the root lease generation adopted at construction

	done chan struct{}
}

// newGroupMaster builds the group's control plane, starts its worker
// listener, dials the root and performs the adoption handshake (announcing
// the recovered membership, adopting the root's lease generation).
func newGroupMaster(r *Root, g int) (*groupMaster, error) {
	grp := r.plan.Groups[g]
	var ctrlState *elastic.ControllerState
	var memberIDs []int
	epochFloor, has := 0, false
	if st := r.resume; st != nil {
		memberIDs = st.GroupMembers[g]
		if st.Snap != nil {
			for i := range st.Snap.Groups {
				if st.Snap.Groups[i].Group == g {
					ctrlState = st.Snap.Groups[i].Ctrl
				}
			}
		}
		if e, ok := st.GroupEpochs[g]; ok {
			epochFloor, has = e, true
		}
	}
	ctrl, recovered, err := buildGroupController(&r.cfg, grp, g, ctrlState, memberIDs, epochFloor, has)
	if err != nil {
		return nil, err
	}
	var rec roster.Recorder
	if r.store != nil {
		rec = r.store.GroupRecorder(g)
	}
	lis, err := transport.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	eng, err := newGroupEngine(&r.cfg, grp, g, ctrl, recovered, rec, lis)
	if err != nil {
		return nil, err
	}
	up, err := transport.Dial(r.lis.Addr(), 10*time.Second)
	if err != nil {
		eng.Shutdown(false)
		return nil, err
	}
	gm := &groupMaster{
		groupCore: groupCore{eng: eng, g: g, iterTimeout: r.cfg.IterTimeout, maxRetries: r.cfg.MaxRetries, obs: r.cfg.Obs},
		root:      r,
		up:        up,
		done:      make(chan struct{}),
	}
	gen, _, err := gm.adopt(up, 10*time.Second)
	if err != nil {
		eng.Shutdown(false)
		_ = up.Close()
		return nil, err
	}
	gm.rootGen = gen
	go gm.run()
	return gm, nil
}

// addr returns the group's worker listen address.
func (gm *groupMaster) addr() string { return gm.eng.Addr() }

// waitForWorkers blocks until the group's planned worker count has joined.
func (gm *groupMaster) waitForWorkers(timeout time.Duration) error {
	want := len(gm.root.plan.Groups[gm.g].Workers)
	if err := gm.eng.WaitForMembers(want, timeout); err != nil {
		return fmt.Errorf("%w: group %d: %v", ErrGroupFailed, gm.g, err)
	}
	return nil
}

// run is the group master's main loop: it serves root broadcasts until
// shutdown, running one epoch-fenced group iteration per MsgParams and
// answering with the group's decoded sum as a single coalesced batch of
// chunks, stamped with the adopted root generation. Chunking, quantization
// and the batched write happen on a dedicated uploader goroutine (the
// uplink's sole writer once the loop starts), so iteration k+1's collect
// overlaps the encode and send of sum k.
func (gm *groupMaster) run() {
	defer close(gm.done)
	upJobs := make(chan func() error, 1)
	upErr := make(chan error, 1)
	upDone := make(chan struct{})
	go func() {
		defer close(upDone)
		for job := range upJobs {
			if err := job(); err != nil {
				select {
				case upErr <- err:
				default:
				}
			}
		}
	}()
	defer func() { close(upJobs); <-upDone }()
	var plan *elastic.Plan
	for {
		env, err := gm.up.Recv()
		if err != nil {
			gm.fatal(fmt.Errorf("group %d uplink: %w", gm.g, err))
			return
		}
		switch env.Type {
		case transport.MsgShutdown:
			gm.shutdown(true)
			return
		case transport.MsgParams:
			if env.RootGen != gm.rootGen {
				// A frame from a root generation this group never adopted —
				// in-process that cannot happen, but the check is the same
				// one the restartable runner relies on.
				continue
			}
			select {
			case err := <-upErr:
				gm.fatal(fmt.Errorf("group %d upload: %w", gm.g, err))
				return
			default:
			}
			sum, epoch, err := gm.iteration(env.Iter, env.Vector, &plan)
			if err != nil {
				gm.fatal(err)
				return
			}
			gm.epochs = append(gm.epochs, epoch)
			// Echo the root's trace context and the group-level phase spans on
			// the uplink; ChunkGradient hoists both onto the final chunk.
			tmpl := transport.Envelope{Iter: env.Iter, Epoch: epoch, WorkerID: gm.g, RootGen: gm.rootGen, Trace: env.Trace, Spans: gm.uplinkSpans()}
			chunkLen, codec := gm.root.cfg.ChunkLen, gm.codec
			upJobs <- func() error {
				frames, err := transport.ChunkGradientQuant(tmpl, sum, chunkLen, codec)
				if err != nil {
					grad.PutBuffer(sum)
					return err
				}
				sendStart := time.Now()
				err = gm.up.SendBatch(frames)
				transport.ReleaseQuant(frames)
				grad.PutBuffer(sum)
				if err == nil {
					gm.noteUplink(time.Since(sendStart).Seconds())
				}
				return err
			}
		}
	}
}

// fatal reports the error to the root and tears the group down (closing the
// uplink so the root's reader notices). It runs on the run-loop goroutine,
// so the graceful shutdown frames cannot race the loop's own sends.
func (gm *groupMaster) fatal(err error) {
	select {
	case gm.root.err <- err:
	default:
	}
	gm.shutdown(true)
}

// shutdown stops the group's workers and the uplink. graceful sends each
// worker a MsgShutdown frame first — only the run-loop goroutine may do
// that, because it is the connections' single writer; Root.Close runs
// concurrently with the loop and must close the connections cold instead.
func (gm *groupMaster) shutdown(graceful bool) {
	gm.eng.Shutdown(graceful)
	_ = gm.up.Close()
}

// close tears the group down from outside the run loop (Root.Close): no
// shutdown frames — closing a connection concurrently with its writer is
// safe, writing to it is not.
func (gm *groupMaster) close() {
	gm.shutdown(false)
}

// waitDone blocks until the run loop exited.
func (gm *groupMaster) waitDone() { <-gm.done }

// groupState summarises the group's durable state for a root snapshot.
func (gm *groupMaster) groupState() checkpoint.GroupState { return gm.coreState() }

// stats snapshots the group's counters after the run completed.
func (gm *groupMaster) stats() GroupStats {
	return gm.coreStats(len(gm.root.plan.Groups[gm.g].Workers))
}
