// Reduction tree: the cross-group aggregation topology. Group masters are
// the leaves; each internal node sums up to FanIn child results; the root's
// sum is the fully aggregated gradient. Depth gives the number of
// aggregation hops a group result traverses — the latency the co-simulation
// charges per iteration — and Aggregate executes the same reduction over
// real vectors, with the nodes of each level summed concurrently.
package shard

import (
	"fmt"
	"sync"

	"github.com/hetgc/hetgc/internal/grad"
)

// Tree is a FanIn-ary reduction tree over a fixed number of leaves.
type Tree struct {
	// FanIn is the arity: children summed per node per hop.
	FanIn int
	// widths[l] is the node count at level l (level 0 = leaves); the last
	// level has a single root node.
	widths []int
}

// NewTree builds a reduction tree over `leaves` leaf nodes with the given
// fan-in (minimum 2).
func NewTree(leaves, fanIn int) *Tree {
	if leaves < 1 {
		leaves = 1
	}
	if fanIn < 2 {
		fanIn = 2
	}
	t := &Tree{FanIn: fanIn, widths: []int{leaves}}
	for w := leaves; w > 1; {
		w = (w + fanIn - 1) / fanIn
		t.widths = append(t.widths, w)
	}
	return t
}

// Leaves returns the leaf count.
func (t *Tree) Leaves() int { return t.widths[0] }

// Depth returns the number of aggregation hops from a leaf to the root
// (0 when a single group feeds the root directly).
func (t *Tree) Depth() int { return len(t.widths) - 1 }

// Aggregate reduces one vector per leaf to the root sum, level by level:
// node j of each level sums children j·FanIn … min((j+1)·FanIn, width)−1, so
// the summation order is fixed and the result deterministic. Levels with
// more than one node run their nodes concurrently. The returned slice is
// freshly allocated; inputs are not modified.
func (t *Tree) Aggregate(vectors [][]float64) ([]float64, error) {
	if len(vectors) != t.Leaves() {
		return nil, fmt.Errorf("shard tree: %d vectors for %d leaves", len(vectors), t.Leaves())
	}
	dim := len(vectors[0])
	cur := vectors
	for level := 1; level < len(t.widths); level++ {
		width := t.widths[level]
		next := make([][]float64, width)
		var wg sync.WaitGroup
		var firstErr error
		var mu sync.Mutex
		for j := 0; j < width; j++ {
			lo := j * t.FanIn
			hi := lo + t.FanIn
			if hi > len(cur) {
				hi = len(cur)
			}
			wg.Add(1)
			go func(j, lo, hi int) {
				defer wg.Done()
				dst := make([]float64, dim)
				gs := make([]grad.Gradient, hi-lo)
				for i := lo; i < hi; i++ {
					gs[i-lo] = cur[i]
				}
				if err := grad.SumInto(dst, gs); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				next[j] = dst
			}(j, lo, hi)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, fmt.Errorf("shard tree level %d: %w", level, firstErr)
		}
		cur = next
	}
	if len(t.widths) == 1 {
		// Single leaf: the "reduction" is a copy, keeping inputs unmodified.
		return append([]float64(nil), cur[0]...), nil
	}
	return cur[0], nil
}
