// Trace stitching under churn, sharded: the root's trace children are the
// group masters (Group -1), while worker-level stitching — including the
// partial "dead" span of a worker killed between broadcast and upload —
// happens at each group master and lands in the shared group-labeled
// attribution families.
package shard_test

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/clustercfg"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/obs"
	"github.com/hetgc/hetgc/internal/shard"
	"github.com/hetgc/hetgc/internal/testkit"
)

func TestTraceStitchingUnderChurnSharded(t *testing.T) {
	fx, err := testkit.NewFixture(8, 300)
	if err != nil {
		t.Fatal(err)
	}
	sc := &testkit.Scenario{
		Name: "trace-stitch-sharded", K: 8, S: 1, Workers: 8, GroupSize: 4, Iters: 20,
		IterTimeout: 5 * time.Second, InitialRate: 500,
		Alpha: 0.7, DriftThreshold: 2.0, MinObservations: 2, CooldownIters: 1 << 20,
		Behaviors: map[int]testkit.Behavior{
			0: {KillAtIter: 6},
			1: {KillAtIter: 6},
		},
	}
	thr := make([]float64, sc.Workers)
	for i := range thr {
		thr[i] = sc.InitialRate
	}
	tel := obs.New()
	root, err := shard.NewRoot(shard.Config{
		K: sc.K, S: sc.S,
		GroupSize:       sc.GroupSize,
		FanIn:           2,
		Throughputs:     thr,
		Model:           fx.Model,
		Optimizer:       &ml.SGD{LR: 0.5},
		InitialParams:   fx.Model.InitParams(nil),
		Iterations:      sc.Iters,
		SampleCount:     fx.Data.N(),
		IterTimeout:     sc.IterTimeout,
		ChunkLen:        4, // chunked uplinks: trace context must ride the final chunk
		Alpha:           sc.Alpha,
		DriftThreshold:  sc.DriftThreshold,
		MinObservations: sc.MinObservations,
		CooldownIters:   sc.CooldownIters,
		InitialRate:     sc.InitialRate,
		Seed:            1,
		TelemetryConfig: clustercfg.TelemetryConfig{Obs: tel},
	}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Close()

	groupAddrs := root.GroupAddrs()
	var addrs []string
	for g, grp := range root.Plan().Groups {
		for i := 0; i < len(grp.Workers); i++ {
			addrs = append(addrs, groupAddrs[g])
		}
	}
	var wg sync.WaitGroup
	var progress atomic.Int64
	testkit.DriveWorkers(sc, addrs, fx, &wg, &progress)
	if err := root.WaitForWorkers(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := root.Run()
	root.Close()
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	migrated := false
	for _, gs := range res.Groups {
		if n := len(gs.Epochs); n > 0 && gs.Epochs[n-1] >= 1 {
			migrated = true
		}
	}
	if !migrated {
		t.Fatal("no group migrated — the scenario lost its teeth")
	}

	traces := tel.Tracer().Recent(0)
	if len(traces) != sc.Iters {
		t.Fatalf("trace ring holds %d iterations, want %d", len(traces), sc.Iters)
	}
	for _, tr := range traces {
		// Root-tier trace context: epoch -1 (epochs are group-local), the
		// iteration encoded in the ID.
		if want := obs.TraceID(0, -1, tr.Iter); tr.TraceID != want {
			t.Fatalf("iter %d: trace id %#x, want %#x", tr.Iter, tr.TraceID, want)
		}
		if len(tr.Members) == 0 {
			t.Fatalf("iter %d: no group child spans stitched", tr.Iter)
		}
		for _, ms := range tr.Members {
			if ms.Group != -1 {
				t.Fatalf("iter %d: root-tier child labeled group %d, want -1 (members are group masters)", tr.Iter, ms.Group)
			}
			if !ms.Partial && ms.Arrival <= 0 {
				t.Fatalf("iter %d: group %d sum arrived with non-positive latency %v", tr.Iter, ms.Member, ms.Arrival)
			}
		}
	}

	// Worker-level stitching happened at the group masters: the killed
	// workers' partial spans reached the group-labeled erasure counter with
	// reason "dead", and full contributions fed the latency histogram.
	var sb strings.Builder
	if err := tel.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	exp := sb.String()
	if !strings.Contains(exp, `reason="`+obs.RDead+`"`) {
		t.Error("erasure counter has no dead-reason series — mid-iteration deaths were not stitched")
	}
	if !strings.Contains(exp, obs.MContribSeconds) {
		t.Error("contribution-latency histogram never observed a sample")
	}
}
