// Recovery conformance for the sharded hierarchy: kill the root (and with
// it every group master) mid-training, resume from the checkpoint
// directory, and hold it to the shared recovery invariants
// (testkit.RecoveryScenarios) — the same table the flat runtime is held to.
package shard_test

import (
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/shard"
	"github.com/hetgc/hetgc/internal/testkit"
)

type recoveryShard struct {
	sc   *testkit.RecoveryScenario
	root *shard.Root
}

func TestRecoveryConformanceSharded(t *testing.T) {
	testkit.RunRecoveryConformance(t, func(sc *testkit.RecoveryScenario, fx *testkit.Fixture, dir string, resume bool) (testkit.Cluster, error) {
		thr := make([]float64, sc.Workers)
		for i := range thr {
			thr[i] = sc.InitialRate
		}
		cfg := shard.Config{
			K: sc.K, S: sc.S,
			GroupSize:     sc.GroupSize,
			FanIn:         2,
			Throughputs:   thr,
			Model:         fx.Model,
			Optimizer:     &ml.SGD{LR: 0.5, Momentum: 0.5},
			InitialParams: fx.Model.InitParams(nil),
			Iterations:    sc.Iters,
			SampleCount:   fx.Data.N(),
			IterTimeout:   sc.IterTimeout,
			ChunkLen:      4,
			// Churn-only control plane, as in the flat recovery run.
			DriftThreshold: 2.0,
			CooldownIters:  1 << 20,
			InitialRate:    sc.InitialRate,
			Seed:           1,
			CheckpointDir:  dir,
			SnapshotEvery:  sc.SnapshotEvery,
			Resume:         resume,
		}
		root, err := shard.NewRoot(cfg, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		return &recoveryShard{sc: sc, root: root}, nil
	})
}

func (c *recoveryShard) Addrs() []string {
	groupAddrs := c.root.GroupAddrs()
	var addrs []string
	for g, grp := range c.root.Plan().Groups {
		for i := 0; i < len(grp.Workers); i++ {
			addrs = append(addrs, groupAddrs[g])
		}
	}
	return addrs
}

func (c *recoveryShard) Run() (*testkit.Outcome, error) {
	if err := c.root.WaitForWorkers(20 * time.Second); err != nil {
		return nil, err
	}
	res, err := c.root.Run()
	if err != nil {
		return nil, err
	}
	out := &testkit.Outcome{
		Iters:  len(res.IterTimes),
		Params: res.Params,
	}
	for _, gs := range res.Groups {
		out.StaleEpochRejected += gs.StaleEpochRejected
		out.StaleConnRejected += gs.StaleConnRejected
		out.StragglersSkipped += gs.StragglersSkipped
		out.MalformedSkipped += gs.MalformedSkipped
		out.TelemetrySamples += gs.TelemetrySamples
		out.Joins += gs.Joins
		out.Deaths += gs.Deaths
		if n := len(gs.Epochs); n > 0 && gs.Epochs[n-1] > out.FinalEpoch {
			out.FinalEpoch = gs.Epochs[n-1]
		}
	}
	return out, nil
}

func (c *recoveryShard) Close() { c.root.Close() }
