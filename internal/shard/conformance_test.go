// Conformance: the sharded hierarchy must survive the shared adversarial
// scenario table (testkit.Scenarios) — the same table the flat elastic
// master is held to. Worker slots are addressed group-by-group, so each
// scenario's scripted faults land inside one coding group and the
// invariants (migration, fencing, identity resumption) are enforced on the
// group masters through the same roster engine the flat runtime uses.
package shard_test

import (
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/shard"
	"github.com/hetgc/hetgc/internal/testkit"
)

// shardCluster adapts shard.Root to the conformance suite.
type shardCluster struct {
	sc   *testkit.Scenario
	root *shard.Root
}

func TestConformanceSharded(t *testing.T) {
	testkit.RunConformance(t, func(t *testing.T, sc *testkit.Scenario, fx *testkit.Fixture) testkit.Cluster {
		thr := make([]float64, sc.Workers)
		for i := range thr {
			thr[i] = sc.InitialRate
		}
		cfg := shard.Config{
			K: sc.K, S: sc.S,
			GroupSize:       sc.GroupSize,
			FanIn:           2,
			Throughputs:     thr,
			Model:           fx.Model,
			Optimizer:       &ml.SGD{LR: 0.5},
			InitialParams:   fx.Model.InitParams(nil),
			Iterations:      sc.Iters,
			SampleCount:     fx.Data.N(),
			IterTimeout:     sc.IterTimeout,
			ChunkLen:        4, // force real chunked batched uplinks
			Alpha:           sc.Alpha,
			DriftThreshold:  sc.DriftThreshold,
			MinObservations: sc.MinObservations,
			CooldownIters:   sc.CooldownIters,
			InitialRate:     sc.InitialRate,
			Seed:            1,
		}
		root, err := shard.NewRoot(cfg, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return &shardCluster{sc: sc, root: root}
	})
}

// Addrs orders worker slots group-by-group, so consecutive scenario slots
// land in the same coding group.
func (c *shardCluster) Addrs() []string {
	groupAddrs := c.root.GroupAddrs()
	var addrs []string
	for g, grp := range c.root.Plan().Groups {
		for i := 0; i < len(grp.Workers); i++ {
			addrs = append(addrs, groupAddrs[g])
		}
	}
	return addrs
}

func (c *shardCluster) Run() (*testkit.Outcome, error) {
	if err := c.root.WaitForWorkers(10 * time.Second); err != nil {
		return nil, err
	}
	res, err := c.root.Run()
	if err != nil {
		return nil, err
	}
	out := &testkit.Outcome{
		Iters:  len(res.IterTimes),
		Params: res.Params,
	}
	for _, gs := range res.Groups {
		out.StaleEpochRejected += gs.StaleEpochRejected
		out.StaleConnRejected += gs.StaleConnRejected
		out.StragglersSkipped += gs.StragglersSkipped
		out.MalformedSkipped += gs.MalformedSkipped
		out.TelemetrySamples += gs.TelemetrySamples
		out.Joins += gs.Joins
		out.Deaths += gs.Deaths
		if n := len(gs.Epochs); n > 0 && gs.Epochs[n-1] > out.FinalEpoch {
			out.FinalEpoch = gs.Epochs[n-1]
		}
	}
	return out, nil
}

func (c *shardCluster) Close() { c.root.Close() }
