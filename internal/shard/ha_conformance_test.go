// HA conformance for the sharded hierarchy: the root holds the lease, group
// 0 is served by an out-of-process GroupRunner that outlives every root,
// and the shared failover scenarios (testkit.RunHAConformance) kill, wedge
// and depose roots around it — the same table the flat runtime is held to
// in internal/testkit/ha_conformance_test.go. This is the only runtime with
// independently restartable group masters, so it also runs the
// group-master-restart-and-readoption scenario.
package shard_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/shard"
	"github.com/hetgc/hetgc/internal/testkit"
)

// haShardEnv owns the external group master. Runners deliberately outlive
// the clusters that started them — surviving a root's death is the property
// under test — so they live here, not in the cluster adapter.
type haShardEnv struct {
	mu     sync.Mutex
	cfg    shard.GroupRunnerConfig
	runner *shard.GroupRunner
}

func (e *haShardEnv) set(cfg shard.GroupRunnerConfig, rn *shard.GroupRunner) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cfg, e.runner = cfg, rn
}

func (e *haShardEnv) addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.runner.Addr()
}

func (e *haShardEnv) stopRunner() {
	e.mu.Lock()
	rn := e.runner
	e.runner = nil
	e.mu.Unlock()
	if rn != nil {
		rn.Stop()
	}
}

// restart kills the runner cold and rebuilds it from its own journal at a
// fresh address.
func (e *haShardEnv) restart() error {
	e.mu.Lock()
	rn, cfg := e.runner, e.cfg
	e.mu.Unlock()
	if rn == nil {
		return fmt.Errorf("no runner to restart")
	}
	rn.Stop()
	cfg.ResumeJournal = true
	next, err := shard.StartGroup(cfg)
	if err != nil {
		return err
	}
	e.set(cfg, next)
	return nil
}

type haShard struct {
	sc   *testkit.HAScenario
	root *shard.Root
	env  *haShardEnv
}

func TestHAConformanceSharded(t *testing.T) {
	env := &haShardEnv{}
	t.Cleanup(env.stopRunner)
	testkit.RunHAConformance(t, true, func(sc *testkit.HAScenario, fx *testkit.Fixture, dir string, resume bool, holder string) (testkit.HACluster, error) {
		thr := make([]float64, sc.Workers)
		for i := range thr {
			thr[i] = sc.InitialRate
		}
		cfg := shard.Config{
			K: sc.K, S: sc.S,
			GroupSize:     sc.GroupSize,
			FanIn:         2,
			Throughputs:   thr,
			Model:         fx.Model,
			Optimizer:     &ml.SGD{LR: 0.5, Momentum: 0.5},
			InitialParams: fx.Model.InitParams(nil),
			Iterations:    sc.Iters,
			SampleCount:   fx.Data.N(),
			IterTimeout:   sc.IterTimeout,
			ChunkLen:      4,
			// Churn-only control plane, as in the recovery conformance run.
			DriftThreshold: 2.0,
			CooldownIters:  1 << 20,
			InitialRate:    sc.InitialRate,
			Seed:           1,
			CheckpointDir:  dir,
			SnapshotEvery:  sc.SnapshotEvery,
			Resume:         resume,
			LeaseTTL:       sc.LeaseTTL,
			Holder:         holder,
			ExternalGroups: []int{0},
		}
		root, err := shard.NewRoot(cfg, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		if !resume {
			// A fresh scenario: retire any runner left over from the
			// previous one, then start group 0's master with its own
			// journal, discovering this root (and every successor) through
			// the lease token in dir.
			env.stopRunner()
			rcfg := shard.GroupRunnerConfig{
				Config: cfg, Group: 0, WorkerAddr: "127.0.0.1:0",
				RootDir: dir, JournalDir: dir + "-g0",
			}
			rn, err := shard.StartGroup(rcfg)
			if err != nil {
				root.Close()
				return nil, err
			}
			env.set(rcfg, rn)
		}
		return &haShard{sc: sc, root: root, env: env}, nil
	})
}

func (c *haShard) Addrs() []string {
	groupAddrs := c.root.GroupAddrs()
	var addrs []string
	for g, grp := range c.root.Plan().Groups {
		addr := groupAddrs[g]
		if addr == "" { // external group: workers dial the runner
			addr = c.env.addr()
		}
		for i := 0; i < len(grp.Workers); i++ {
			addrs = append(addrs, addr)
		}
	}
	return addrs
}

func (c *haShard) Run() (*testkit.Outcome, error) {
	if err := c.root.WaitForWorkers(20 * time.Second); err != nil {
		return nil, err
	}
	res, err := c.root.Run()
	if err != nil {
		return nil, err
	}
	out := &testkit.Outcome{
		Iters:         len(res.IterTimes),
		Params:        res.Params,
		FencedUploads: res.FencedSums,
		Readoptions:   res.Readoptions,
	}
	for _, gs := range res.Groups {
		out.FencedUploads += gs.FencedRejected
	}
	return out, nil
}

func (c *haShard) RootGen() int         { return c.root.RootGen() }
func (c *haShard) SuspendLeaseRenewal() { c.root.SuspendLeaseRenewal() }
func (c *haShard) Close()               { c.root.Close() }
func (c *haShard) RestartGroup(g int) error {
	if g != 0 {
		return fmt.Errorf("group %d is not external", g)
	}
	return c.env.restart()
}
