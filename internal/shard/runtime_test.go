package shard

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/hetgc/hetgc/internal/grad"
	"github.com/hetgc/hetgc/internal/ml"
	"github.com/hetgc/hetgc/internal/runtime"
)

type liveFixture struct {
	model *ml.Softmax
	data  *ml.Dataset
	parts []*ml.Dataset
}

func newLiveFixture(t *testing.T, k int) *liveFixture {
	t.Helper()
	data, err := ml.GaussianMixture(k*12, 4, 3, 3, rand.New(rand.NewSource(100)))
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Split(k)
	if err != nil {
		t.Fatal(err)
	}
	return &liveFixture{model: &ml.Softmax{InputDim: 4, NumClasses: 3}, data: data, parts: parts}
}

func (f *liveFixture) config(k, s, iters int, m int) Config {
	thr := make([]float64, m)
	for i := range thr {
		thr[i] = 1
	}
	return Config{
		K: k, S: s, GroupSize: 3, FanIn: 2,
		Throughputs:   thr,
		Model:         f.model,
		Optimizer:     &ml.SGD{LR: 0.5},
		InitialParams: f.model.InitParams(nil),
		Iterations:    iters,
		SampleCount:   f.data.N(),
		IterTimeout:   5 * time.Second,
		ChunkLen:      4, // force multi-chunk batched uploads even at dim 15
		Seed:          1,
	}
}

// spawnWorkers dials the planned number of elastic workers at every group
// address. delay(group, idx, iter) gives worker idx of a group its
// per-partition delay.
func spawnWorkers(t *testing.T, r *Root, wg *sync.WaitGroup, delay func(g, idx, iter int) time.Duration, fx *liveFixture) {
	t.Helper()
	addrs := r.GroupAddrs()
	for g, grp := range r.Plan().Groups {
		for idx := 0; idx < len(grp.Workers); idx++ {
			cfg := runtime.ElasticWorkerConfig{
				Model:         fx.model,
				PartitionData: func(p int) (*ml.Dataset, error) { return fx.parts[p], nil },
			}
			if delay != nil {
				g, idx := g, idx
				cfg.DelayPerPartition = func(iter int) time.Duration { return delay(g, idx, iter) }
			}
			// Dial sequentially so member IDs within a group are
			// deterministic (idx+1).
			w, err := runtime.DialElasticWorker(addrs[g], cfg)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = w.Run()
			}()
		}
	}
}

// TestShardedEndToEndExactTraining runs the full hierarchy live on loopback
// — 2 coding groups x 3 workers, chunked batched uplinks — and checks the
// result against serial full-batch SGD: the sharded decomposition must be
// exact, not approximate.
func TestShardedEndToEndExactTraining(t *testing.T) {
	const k, s, iters, m = 8, 1, 12, 6
	fx := newLiveFixture(t, k)
	cfg := fx.config(k, s, iters, m)

	var wg sync.WaitGroup
	res, err := RunSharded(cfg, "127.0.0.1:0", 5*time.Second, func(r *Root) {
		if r.Plan().NumGroups() != 2 {
			t.Errorf("plan has %d groups, want 2", r.Plan().NumGroups())
		}
		spawnWorkers(t, r, &wg, nil, fx)
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(res.IterTimes) != iters {
		t.Fatalf("got %d iterations, want %d", len(res.IterTimes), iters)
	}
	// One upload per group per iteration, and — with ChunkLen 4 forcing
	// multi-chunk uploads at dim 15 — every one a real coalesced batch.
	if want := 2 * iters; res.GroupUploads != want {
		t.Fatalf("root accepted %d group uploads, want %d", res.GroupUploads, want)
	}
	if res.BatchedFrames != res.GroupUploads {
		t.Fatalf("only %d of %d uploads arrived batched despite ChunkLen 4", res.BatchedFrames, res.GroupUploads)
	}

	// Serial full-batch SGD with the same partition split and step rule.
	params := fx.model.InitParams(nil)
	for iter := 0; iter < iters; iter++ {
		sum := make(grad.Gradient, fx.model.Dim())
		for _, part := range fx.parts {
			g, err := fx.model.Gradient(params, part)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sum {
				sum[i] += g[i]
			}
		}
		sum.Scale(1 / float64(fx.data.N()))
		if err := (&ml.SGD{LR: 0.5}).Step(params, sum); err != nil {
			t.Fatal(err)
		}
	}
	for i := range params {
		if math.Abs(params[i]-res.Params[i]) > 1e-8 {
			t.Fatalf("param %d: sharded %v vs serial %v — decomposition not exact", i, res.Params[i], params[i])
		}
	}

	for g, gs := range res.Groups {
		if len(gs.Epochs) != iters {
			t.Fatalf("group %d recorded %d epochs, want %d", g, len(gs.Epochs), iters)
		}
		if len(gs.Replans) == 0 || gs.Replans[0].Reason != "initial" {
			t.Fatalf("group %d missing initial plan: %+v", g, gs.Replans)
		}
	}
}

// TestShardedGroupLocalMigrationLive slows one group's worker mid-run: the
// drift must migrate that group alone — its epoch advances while the other
// group finishes the whole run on epoch 0.
func TestShardedGroupLocalMigrationLive(t *testing.T) {
	const k, s, iters, m = 8, 1, 30, 6
	fx := newLiveFixture(t, k)
	cfg := fx.config(k, s, iters, m)
	cfg.Alpha = 0.7
	cfg.DriftThreshold = 0.5
	cfg.MinObservations = 2
	cfg.CooldownIters = 2
	// Accurate priors: a 2ms/partition worker processes ~500 partitions/s.
	// (With wildly wrong priors every group would rightly replan once its
	// estimates warm up — warm-up drift is global, not group-local.)
	for i := range cfg.Throughputs {
		cfg.Throughputs[i] = 500
	}

	const (
		fastDelay = 2 * time.Millisecond
		slowDelay = 25 * time.Millisecond
		slowAt    = 6
	)
	var wg sync.WaitGroup
	res, err := RunSharded(cfg, "127.0.0.1:0", 5*time.Second, func(r *Root) {
		spawnWorkers(t, r, &wg, func(g, idx, iter int) time.Duration {
			if g == 0 && idx == 0 && iter >= slowAt {
				return slowDelay
			}
			return fastDelay
		}, fx)
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	g0 := res.Groups[0]
	g1 := res.Groups[1]
	if final := g0.Epochs[len(g0.Epochs)-1]; final == 0 {
		t.Fatalf("group 0 never migrated despite a 12x slowdown (epochs %v)", g0.Epochs)
	}
	drift := false
	for _, ev := range g0.Replans {
		if ev.Reason == "drift" {
			drift = true
		}
	}
	if !drift {
		t.Fatalf("group 0 has no drift replan: %+v", g0.Replans)
	}
	for i, e := range g1.Epochs {
		if e != 0 {
			t.Fatalf("group 1 epoch moved to %d at iteration %d — migration was not group-local", e, i)
		}
	}
	for _, ev := range g1.Replans {
		if ev.Reason != "initial" {
			t.Fatalf("group 1 replanned (%+v) though all churn was in group 0", ev)
		}
	}
}

// TestShardedRunFailsWhenGroupLosesQuorum kills a whole group's workers:
// the run must fail with ErrGroupFailed instead of hanging.
func TestShardedRunFailsWhenGroupLosesQuorum(t *testing.T) {
	const k, s, iters, m = 8, 1, 200, 6
	fx := newLiveFixture(t, k)
	cfg := fx.config(k, s, iters, m)
	cfg.IterTimeout = 500 * time.Millisecond

	var wg sync.WaitGroup
	var mu sync.Mutex
	var group0 []*runtime.ElasticWorker
	_, err := RunSharded(cfg, "127.0.0.1:0", 5*time.Second, func(r *Root) {
		addrs := r.GroupAddrs()
		for g, grp := range r.Plan().Groups {
			for idx := 0; idx < len(grp.Workers); idx++ {
				w, err := runtime.DialElasticWorker(addrs[g], runtime.ElasticWorkerConfig{
					Model:         fx.model,
					PartitionData: func(p int) (*ml.Dataset, error) { return fx.parts[p], nil },
					DelayPerPartition: func(int) time.Duration {
						return 2 * time.Millisecond
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				if g == 0 {
					mu.Lock()
					group0 = append(group0, w)
					mu.Unlock()
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = w.Run()
				}()
			}
		}
		// Kill every group-0 worker shortly after training starts.
		go func() {
			time.Sleep(300 * time.Millisecond)
			mu.Lock()
			for _, w := range group0 {
				_ = w.Close()
			}
			mu.Unlock()
		}()
	})
	if err == nil {
		t.Fatal("expected the run to fail after group 0 lost its quorum")
	}
	wg.Wait()
}
