// Package shard is the hierarchical group-sharded runtime: it partitions a
// large worker fleet into independently-coded groups, each running the
// paper's gradient-coding scheme over its own slice of the data partitions,
// and aggregates the per-group decoded sums up a configurable reduction tree
// into a root master. A flat deployment decodes one code over all m workers
// and can drop at most s stragglers cluster-wide; sharding multiplies the
// tolerable straggler count to one budget *per group* while keeping each
// group's decode at small-cluster cost, which is what lets the scheme scale
// from tens to hundreds of workers.
//
// The decomposition is exact, not approximate: group g owns a disjoint set
// of global partitions, its local decode recovers Σ_{p∈parts(g)} g_p, and
// the reduction tree sums the group results, so the root obtains the same
// aggregated gradient a flat master would have decoded.
package shard

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/hetgc/hetgc/internal/core"
	"github.com/hetgc/hetgc/internal/planner"
)

// ErrBadPlan marks invalid sharding configurations.
var ErrBadPlan = errors.New("shard: invalid plan config")

// PlanConfig parameterises the group-sharding planner.
type PlanConfig struct {
	// K is the global data-partition count; partitions are split across
	// groups proportionally to group capacity. S is the per-group straggler
	// budget: a sharded cluster of G groups tolerates up to S stragglers in
	// every group simultaneously.
	K, S int
	// GroupSize is the target number of workers per coding group
	// (default 10). The planner clamps the group count so that every group
	// keeps at least S+1 workers and at least one partition.
	GroupSize int
	// FanIn is the reduction-tree arity (default 4): how many child results
	// each aggregation node sums per hop.
	FanIn int
	// Scheme is the per-group strategy family: core.HeterAware (default) or
	// core.GroupBased.
	Scheme core.Kind
}

// DefaultGroupSize is the target coding-group size when none is configured —
// small enough that per-group decode stays on the fast path, large enough
// that the s-straggler budget is meaningful.
const DefaultGroupSize = 10

func (c *PlanConfig) withDefaults() PlanConfig {
	out := *c
	if out.GroupSize <= 0 {
		out.GroupSize = DefaultGroupSize
	}
	if out.FanIn <= 1 {
		out.FanIn = 4
	}
	if out.Scheme == 0 {
		out.Scheme = core.HeterAware
	}
	return out
}

// Group is one coding group of the sharded plan.
type Group struct {
	// Workers are the global worker indices of this group, in ascending
	// order; Strategy slot i belongs to Workers[i].
	Workers []int
	// Parts are the global partition IDs this group owns; the group
	// strategy's local partition j is global partition Parts[j].
	Parts []int
	// Strategy is the group's coding strategy: m = len(Workers) workers over
	// k = len(Parts) local partitions with the plan's per-group S. Nil in
	// layout-only plans (BuildPlanLayout), where the group's elastic
	// controller builds the strategy instead.
	Strategy *core.Strategy
}

// Plan is a full sharded deployment plan.
type Plan struct {
	// K and S echo the config.
	K, S int
	// Groups are the coding groups; global partition ranges are contiguous
	// in group order.
	Groups []*Group
	// Tree is the reduction tree over the groups.
	Tree *Tree

	groupOf []int // global worker index -> group index
}

// NumGroups returns the number of coding groups.
func (p *Plan) NumGroups() int { return len(p.Groups) }

// NumWorkers returns the total worker count across groups.
func (p *Plan) NumWorkers() int { return len(p.groupOf) }

// GroupOf returns the group index owning a global worker, or -1 when the
// worker is outside the plan.
func (p *Plan) GroupOf(worker int) int {
	if worker < 0 || worker >= len(p.groupOf) {
		return -1
	}
	return p.groupOf[worker]
}

// BuildPlanLayout shards m workers (identified by their index in
// throughputs) into coding groups without building per-group strategies —
// the layout half of the planner, fully deterministic:
//
//  1. The group count is ceil(m/GroupSize), clamped so every group keeps at
//     least S+1 workers and at least one partition.
//  2. Workers are dealt into groups snake-wise in descending-throughput
//     order, so group capacities stay balanced and workers within a group
//     have similar speeds (which keeps per-group load allocation feasible).
//  3. The K global partitions are split into contiguous per-group ranges
//     sized proportionally to group capacity (largest remainder, ≥ 1 each).
//
// Consumers that drive every group through its own elastic controller (the
// live runtime, the co-simulation) use the layout directly — the
// controller's initial replan builds each group's strategy; BuildPlan is
// the standalone variant that fills Group.Strategy in too.
func BuildPlanLayout(throughputs []float64, cfg PlanConfig) (*Plan, error) {
	c := cfg.withDefaults()
	m := len(throughputs)
	if m == 0 || c.K <= 0 || c.S < 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d s=%d", ErrBadPlan, m, c.K, c.S)
	}
	for i, t := range throughputs {
		if t <= 0 {
			return nil, fmt.Errorf("%w: throughput[%d]=%v", ErrBadPlan, i, t)
		}
	}
	if m < c.S+1 {
		return nil, fmt.Errorf("%w: %d workers cannot sustain s=%d (need ≥ s+1)", ErrBadPlan, m, c.S)
	}
	groups := groupWorkers(throughputs, m, c)
	caps := make([]float64, len(groups))
	total := 0.0
	for g, ws := range groups {
		for _, w := range ws {
			caps[g] += throughputs[w]
		}
		total += caps[g]
	}
	parts := splitPartitions(c.K, caps, total)

	plan := &Plan{K: c.K, S: c.S, groupOf: make([]int, m)}
	base := 0
	for g, ws := range groups {
		kg := parts[g]
		for _, w := range ws {
			plan.groupOf[w] = g
		}
		ids := make([]int, kg)
		for j := range ids {
			ids[j] = base + j
		}
		base += kg
		plan.Groups = append(plan.Groups, &Group{Workers: ws, Parts: ids})
	}
	plan.Tree = NewTree(len(groups), c.FanIn)
	return plan, nil
}

// BuildPlan is BuildPlanLayout plus per-group strategy construction via the
// shared online planner. The same rng drives every group's code
// construction in group order, so a fixed seed yields a bit-identical plan.
func BuildPlan(throughputs []float64, cfg PlanConfig, rng *rand.Rand) (*Plan, error) {
	if rng == nil {
		return nil, fmt.Errorf("%w: rng required (determinism)", ErrBadPlan)
	}
	c := cfg.withDefaults()
	plan, err := BuildPlanLayout(throughputs, cfg)
	if err != nil {
		return nil, err
	}
	for g, grp := range plan.Groups {
		gt := make([]float64, len(grp.Workers))
		for i, w := range grp.Workers {
			gt[i] = throughputs[w]
		}
		st, err := planner.BuildStrategy(c.Scheme, gt, len(grp.Parts), c.S, rng)
		if err != nil {
			return nil, fmt.Errorf("shard group %d (m=%d k=%d s=%d): %w", g, len(grp.Workers), len(grp.Parts), c.S, err)
		}
		grp.Strategy = st
	}
	return plan, nil
}

// groupWorkers deals workers into groups snake-wise by descending
// throughput. The group count honours GroupSize but never drops a group
// below S+1 workers or leaves a group without a partition.
func groupWorkers(throughputs []float64, m int, c PlanConfig) [][]int {
	g := (m + c.GroupSize - 1) / c.GroupSize
	if max := m / (c.S + 1); g > max {
		g = max
	}
	if g > c.K {
		g = c.K
	}
	if g < 1 {
		g = 1
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if throughputs[order[a]] != throughputs[order[b]] {
			return throughputs[order[a]] > throughputs[order[b]]
		}
		return order[a] < order[b]
	})
	groups := make([][]int, g)
	for i, w := range order {
		round, pos := i/g, i%g
		if round%2 == 1 {
			pos = g - 1 - pos
		}
		groups[pos] = append(groups[pos], w)
	}
	for _, ws := range groups {
		sort.Ints(ws)
	}
	return groups
}

// splitPartitions sizes each group's contiguous partition range
// proportionally to its capacity share, by largest remainder, with every
// group receiving at least one partition.
func splitPartitions(k int, caps []float64, total float64) []int {
	g := len(caps)
	counts := make([]int, g)
	rem := make([]float64, g)
	assigned := 0
	for i, c := range caps {
		ideal := float64(k) * c / total
		counts[i] = int(ideal)
		rem[i] = ideal - float64(counts[i])
		assigned += counts[i]
	}
	order := make([]int, g)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if rem[order[a]] != rem[order[b]] {
			return rem[order[a]] > rem[order[b]]
		}
		return order[a] < order[b]
	})
	for i := 0; assigned < k; i = (i + 1) % g {
		counts[order[i]]++
		assigned++
	}
	// Every group needs at least one partition: steal from the largest.
	for i := range counts {
		for counts[i] == 0 {
			maxAt := 0
			for j, n := range counts {
				if n > counts[maxAt] {
					maxAt = j
				}
			}
			counts[maxAt]--
			counts[i]++
		}
	}
	return counts
}
